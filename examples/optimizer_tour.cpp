//===- examples/optimizer_tour.cpp - Table 3 and Figure 6 live ------------===//
//
// Part of cmmex (see DESIGN.md).
//
// Walks through the optimizer story of Section 6 on the paper's own
// Figure 5 procedure: the Abstract C-- graph, its SSA numbering (Figure 6),
// what the standard passes do with the `also` edges present — and what
// goes wrong without them (the Hennessy scenario).
//
//===----------------------------------------------------------------------===//

#include "ir/IrPrinter.h"
#include "ir/Translate.h"
#include "opt/PassManager.h"
#include "opt/Ssa.h"
#include "sem/Machine.h"

#include <cstdio>

using namespace cmm;

int main() {
  // Figure 5 of the paper (g supplied so the program runs).
  const char *Fig5 = R"(
export f;
g() { return (1, 2); }
f(bits32 a) {
  bits32 b, c, d;
  b = a;
  c = a;
  b, c = g() also unwinds to k also aborts;
  c = b + c + a;
  return (c);
continuation k(d):
  return (b + d);
}
)";

  DiagnosticEngine Diags;
  std::unique_ptr<IrProgram> Prog = compileProgram({Fig5}, Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  IrProc *F = Prog->findProc("f");

  std::printf("=== Figure 5's procedure, translated to Abstract C-- "
              "(Section 5.3) ===\n%s\n",
              printProc(*F, *Prog->Names).c_str());

  std::printf("=== Its SSA numbering (Figure 6, Section 6) ===\n%s\n",
              computeSsa(*F, *Prog).print(*F, *Prog->Names).c_str());
  std::printf("Note how the handler k uses the *pre-call* version of b:\n"
              "the `also unwinds to` edge leaves the call, not the result\n"
              "CopyIn, so the dataflow is exact without special cases.\n\n");

  // The Hennessy scenario: y is used only by a cut-to handler.
  const char *Hennessy = R"(
export main;
global bits32 exn_top;
data exn_stack { bits32[8]; }
boom() {
  bits32 kv;
  kv = bits32[exn_top];
  exn_top = exn_top - sizeof(kv);
  cut to kv(1, 2);
}
f(bits32 x) {
  bits32 y, t, a, kv;
  y = x * 3;
  exn_top = exn_top + sizeof(kv);
  bits32[exn_top] = k;
  boom() also cuts to k also aborts;
  exn_top = exn_top - sizeof(kv);
  return (0);
continuation k(t, a):
  return (y + t + a);
}
main(bits32 x) {
  bits32 r;
  exn_top = exn_stack;
  r = f(x);
  return (r);
}
)";

  auto RunOnce = [&](bool WithEdges) {
    DiagnosticEngine D2;
    std::unique_ptr<IrProgram> P = compileProgram({Hennessy}, D2);
    OptOptions Opts;
    Opts.WithExceptionalEdges = WithEdges;
    Opts.PlaceCalleeSaves = true;
    OptReport R = optimizeProgram(*P, Opts);
    Machine M(*P);
    M.start("main", {Value::bits(32, 10)});
    MachineStatus St = M.run();
    std::printf("  %-22s removed %u assigns; run: %s",
                WithEdges ? "with also-edges:" : "without (ablation):",
                R.DeadCode.AssignsRemoved,
                St == MachineStatus::Halted ? "halted, result " : "WRONG: ");
    if (St == MachineStatus::Halted)
      std::printf("%llu\n",
                  static_cast<unsigned long long>(M.argArea()[0].Raw));
    else
      std::printf("%s\n", M.wrongReason().c_str());
  };

  std::printf("=== The optimizer and exceptions (Table 3) ===\n");
  std::printf("y = x*3 is used only by the handler continuation k.\n");
  RunOnce(true);
  RunOnce(false);
  std::printf("\nThe extra dataflow edges are all the optimizer needs to "
              "handle\nexceptions soundly — no special cases, no knowledge "
              "of any source\nlanguage's exception semantics.\n");
  return 0;
}
