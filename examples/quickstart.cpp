//===- examples/quickstart.cpp - Hello, C-- -------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
// The smallest complete use of the library: compile the paper's Figure 1
// programs from C-- source, run them on the abstract machine, and look at
// the cost counters. Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "ir/Translate.h"
#include "sem/Machine.h"

#include <cstdio>

using namespace cmm;

int main() {
  // Figure 1 of the paper: three ways to compute the sum and product of
  // 1..n — ordinary recursion with multiple results, tail recursion with
  // `jump`, and an explicit loop.
  const char *Source = R"(
export sp1, sp2, sp3;

/* Ordinary recursion */
sp1(bits32 n) {
  bits32 s, p;
  if n == 1 {
    return (1, 1);
  } else {
    s, p = sp1(n - 1);
    return (s + n, p * n);
  }
}

/* Tail recursion */
sp2(bits32 n) { jump sp2_help(n, 1, 1); }
sp2_help(bits32 n, bits32 s, bits32 p) {
  if n == 1 {
    return (s, p);
  } else {
    jump sp2_help(n - 1, s + n, p * n);
  }
}

/* Loops */
sp3(bits32 n) {
  bits32 s, p;
  s = 1; p = 1;
loop:
  if n == 1 {
    return (s, p);
  } else {
    s = s + n;
    p = p * n;
    n = n - 1;
    goto loop;
  }
}
)";

  DiagnosticEngine Diags;
  std::unique_ptr<IrProgram> Prog = compileProgram({Source}, Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  std::printf("Figure 1: sum and product of 1..10, three ways\n");
  std::printf("%-6s %8s %10s %8s %8s %8s\n", "proc", "sum", "product",
              "steps", "calls", "jumps");
  for (const char *Proc : {"sp1", "sp2", "sp3"}) {
    Machine M(*Prog);
    M.start(Proc, {Value::bits(32, 10)});
    if (M.run() != MachineStatus::Halted) {
      std::fprintf(stderr, "%s went wrong: %s\n", Proc,
                   M.wrongReason().c_str());
      return 1;
    }
    std::printf("%-6s %8llu %10llu %8llu %8llu %8llu\n", Proc,
                static_cast<unsigned long long>(M.argArea()[0].Raw),
                static_cast<unsigned long long>(M.argArea()[1].Raw),
                static_cast<unsigned long long>(M.stats().Steps),
                static_cast<unsigned long long>(M.stats().Calls),
                static_cast<unsigned long long>(M.stats().Jumps));
  }
  std::printf("\nNote the shapes: sp1 pushes a frame per level, sp2's tail"
              " calls reuse one\nactivation, and sp3 makes no calls at"
              " all.\n");
  return 0;
}
