//===- examples/modula3_exceptions.cpp - Figures 7-10 live ----------------===//
//
// Part of cmmex (see DESIGN.md).
//
// The paper's appendix compiles one Modula-3 procedure two ways: run-time
// stack unwinding (Figure 8, dispatched by Figure 9) and stack cutting
// (Figure 10). This example does it with the Mini-Modula-3 front end — the
// same source, three policies, identical answers, different generated C--
// and different cost profiles.
//
//===----------------------------------------------------------------------===//

#include "frontend/M3Driver.h"

#include <cstdio>

using namespace cmm;

int main(int Argc, char **Argv) {
  bool ShowCode = Argc > 1 && std::string(Argv[1]) == "--show-cmm";

  const char *Source = R"(
EXCEPTION BadMove(INTEGER);
EXCEPTION NoMoreTiles;
VAR movesTried: INTEGER;

PROCEDURE GetMove(player: INTEGER): INTEGER =
BEGIN
  RETURN player * 2 + 1;
END GetMove;

PROCEDURE MakeMove(move: INTEGER) =
BEGIN
  IF move = 7 THEN RAISE BadMove(move); END;
  IF move = 9 THEN RAISE NoMoreTiles; END;
END MakeMove;

PROCEDURE TryAMove(player: INTEGER): INTEGER =
VAR result: INTEGER;
BEGIN
  TRY
    MakeMove(GetMove(player));
    result := 1;
  EXCEPT
  | BadMove(why) => result := 100 + why;
  | NoMoreTiles => result := 200;
  END;
  movesTried := movesTried + 1;
  RETURN result;
END TryAMove;

PROCEDURE Main(player: INTEGER): INTEGER =
BEGIN
  RETURN TryAMove(player);
END Main;
)";

  std::printf("One Modula-3 TryAMove (Figure 7), three exception policies.\n"
              "player=1 moves normally; player=3 raises BadMove(7);\n"
              "player=4 raises NoMoreTiles.\n\n");

  for (ExnPolicy Policy :
       {ExnPolicy::StackCutting, ExnPolicy::RuntimeUnwinding,
        ExnPolicy::NativeUnwinding}) {
    DiagnosticEngine Diags;
    std::unique_ptr<M3Program> P = buildM3(Source, Policy, Diags);
    if (!P) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      return 1;
    }
    std::printf("=== policy: %s ===\n", exnPolicyName(Policy));
    if (ShowCode)
      std::printf("--- generated C-- ---\n%s---------------------\n",
                  P->CmmSource.c_str());
    std::printf("%-8s %-8s %8s %8s %8s %8s\n", "player", "result", "steps",
                "yields", "cuts", "walked");
    for (uint64_t Player : {1, 3, 4}) {
      M3RunResult R = runM3(*P, Player);
      if (!R.Ok) {
        std::fprintf(stderr, "run failed: %s\n", R.WrongReason.c_str());
        return 1;
      }
      std::printf("%-8llu %-8llu %8llu %8llu %8llu %8llu\n",
                  static_cast<unsigned long long>(Player),
                  static_cast<unsigned long long>(R.Value),
                  static_cast<unsigned long long>(R.MachineStats.Steps),
                  static_cast<unsigned long long>(R.MachineStats.Yields),
                  static_cast<unsigned long long>(R.MachineStats.Cuts),
                  static_cast<unsigned long long>(R.ActivationsWalked));
    }
    std::printf("\n");
  }
  std::printf("Run with --show-cmm to see the generated C-- for each"
              " policy\n(compare Figures 8 and 10 of the paper).\n");
  return 0;
}
