//===- examples/dispatch_strategies.cpp - The Figure 2 design space -------===//
//
// Part of cmmex (see DESIGN.md).
//
// Runs one raise/handle workload under all four implementation techniques
// of Section 2 (stack cutting, run-time unwinding, native-code unwinding,
// and continuation-passing style) — plus the run-time-system cut variant —
// and prints the cost matrix of Figure 2 as measured numbers.
//
//===----------------------------------------------------------------------===//

#include "costmodel/DispatchWorkloads.h"
#include "ir/Translate.h"
#include "rts/Dispatchers.h"
#include "sem/Machine.h"

#include <cstdio>

using namespace cmm;

namespace {

struct Row {
  uint64_t Result = 0;
  uint64_t Steps = 0;
  uint64_t Yields = 0;
  bool Ok = false;
};

Row run(DispatchTechnique T, uint64_t Depth, uint64_t DoRaise) {
  DiagnosticEngine Diags;
  std::unique_ptr<IrProgram> Prog =
      compileProgram({dispatchWorkloadSource(T)}, Diags);
  Row R;
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return R;
  }
  Machine M(*Prog);
  M.start("bench", {Value::bits(32, Depth), Value::bits(32, DoRaise)});
  MachineStatus St;
  if (T == DispatchTechnique::CutRuntime) {
    CuttingDispatcher D(M);
    St = runWithRuntime(M, std::ref(D));
  } else if (T == DispatchTechnique::UnwindRuntime) {
    UnwindingDispatcher D(M);
    St = runWithRuntime(M, std::ref(D));
  } else {
    St = M.run();
  }
  if (St != MachineStatus::Halted) {
    std::fprintf(stderr, "%s went wrong: %s\n", dispatchTechniqueName(T),
                 M.wrongReason().c_str());
    return R;
  }
  R.Ok = true;
  R.Result = M.argArea()[0].Raw;
  R.Steps = M.stats().Steps;
  R.Yields = M.stats().Yields;
  return R;
}

} // namespace

int main() {
  constexpr uint64_t Depth = 64;
  std::printf(
      "Figure 2's design space, measured. Workload: descend %llu\n"
      "activations, optionally raise; the handler sits at the top.\n\n",
      static_cast<unsigned long long>(Depth));
  std::printf("%-20s %10s %12s %12s %8s\n", "technique", "result",
              "steps(normal)", "steps(raise)", "yields");
  for (DispatchTechnique T : AllDispatchTechniques) {
    Row Normal = run(T, Depth, 0);
    Row Raise = run(T, Depth, 1);
    if (!Normal.Ok || !Raise.Ok)
      return 1;
    std::printf("%-20s %6llu/%-6llu %10llu %12llu %8llu\n",
                dispatchTechniqueName(T),
                static_cast<unsigned long long>(Normal.Result),
                static_cast<unsigned long long>(Raise.Result),
                static_cast<unsigned long long>(Normal.Steps),
                static_cast<unsigned long long>(Raise.Steps),
                static_cast<unsigned long long>(Raise.Yields));
  }
  std::printf(
      "\nReading the matrix (Section 4.2):\n"
      " - the cut variants raise in constant time but pay handler-stack\n"
      "   bookkeeping on every scope entry and kill callee-saves registers;\n"
      " - the unwind variants enter scopes for free and pay O(depth) to\n"
      "   raise, interpretively (runtime) or in generated code (return\n"
      "   <i/n> with the Figure 4 branch-table method);\n"
      " - CPS raises with a single tail call, paying instead for explicit\n"
      "   continuation closures on the success path.\n");
  return 0;
}
