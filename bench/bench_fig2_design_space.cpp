//===- bench/bench_fig2_design_space.cpp - Experiment F2 ------------------===//
//
// Part of cmmex (see DESIGN.md). Figure 2: the design space of control
// transfer for exceptions — {stack walk?} x {generated code vs run-time
// system} — plus continuation-passing style. One workload, five
// implementations (src/costmodel/DispatchWorkloads); the benchmark
// measures:
//
//  - raise cost as a function of stack depth (cut and CPS are O(1);
//    unwinding variants are O(depth), the runtime one with a larger
//    constant because the walk is interpretive);
//  - normal-path cost (unwinding variants are free; cutting pays handler-
//    stack bookkeeping per scope entry; CPS pays closure allocation);
//  - the crossover in total cost as the raise frequency varies.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "costmodel/DispatchWorkloads.h"
#include "rts/Dispatchers.h"

using namespace cmm;
using namespace cmm::bench;

namespace {

const IrProgram &benchProgram(DispatchTechnique T) {
  static std::unique_ptr<IrProgram> Progs[5];
  auto &Slot = Progs[static_cast<int>(T)];
  if (!Slot)
    Slot = compileOrDie({dispatchWorkloadSource(T)});
  return *Slot;
}

MachineStatus runWithPolicyRuntime(Machine &M, DispatchTechnique T) {
  if (T == DispatchTechnique::CutRuntime) {
    CuttingDispatcher D(M);
    return runWithRuntime(M, std::ref(D));
  }
  if (T == DispatchTechnique::UnwindRuntime) {
    UnwindingDispatcher D(M);
    return runWithRuntime(M, std::ref(D));
  }
  return M.run();
}

/// Raise (or not) across a stack of the given depth.
void BM_dispatch(benchmark::State &State) {
  auto T = static_cast<DispatchTechnique>(State.range(0));
  uint64_t Depth = static_cast<uint64_t>(State.range(1));
  uint64_t DoRaise = static_cast<uint64_t>(State.range(2));
  const IrProgram &Prog = benchProgram(T);

  uint64_t Steps = 0, Yields = 0, Pops = 0, Runs = 0;
  for (auto _ : State) {
    Machine M(Prog);
    M.start("bench", {b32(Depth), b32(DoRaise)});
    if (runWithPolicyRuntime(M, T) != MachineStatus::Halted) {
      State.SkipWithError("did not halt");
      return;
    }
    benchmark::DoNotOptimize(M.argArea()[0].Raw);
    Steps += M.stats().Steps;
    Yields += M.stats().Yields;
    Pops += M.stats().UnwindPops + M.stats().FramesCutOver;
    ++Runs;
  }
  State.SetLabel(dispatchTechniqueName(T));
  State.counters["steps"] = static_cast<double>(Steps) / Runs;
  State.counters["yields"] = static_cast<double>(Yields) / Runs;
  State.counters["frames_unwound_or_cut"] = static_cast<double>(Pops) / Runs;
}

/// Total cost as the raise frequency varies (period = iterations between
/// raises). The crossover between cutting and unwinding lives here.
void BM_sweep(benchmark::State &State) {
  auto T = static_cast<DispatchTechnique>(State.range(0));
  uint64_t Period = static_cast<uint64_t>(State.range(1));
  static std::unique_ptr<IrProgram> Progs[5];
  auto &Slot = Progs[static_cast<int>(T)];
  if (!Slot)
    Slot = compileOrDie({sweepWorkloadSource(T)});

  constexpr uint64_t Iters = 256, Depth = 6;
  uint64_t Steps = 0, Runs = 0;
  for (auto _ : State) {
    Machine M(*Slot);
    M.start("sweep", {b32(Iters), b32(Period), b32(Depth)});
    if (runWithPolicyRuntime(M, T) != MachineStatus::Halted) {
      State.SkipWithError("did not halt");
      return;
    }
    benchmark::DoNotOptimize(M.argArea()[0].Raw);
    Steps += M.stats().Steps;
    ++Runs;
  }
  State.SetLabel(dispatchTechniqueName(T));
  State.counters["steps_per_iter"] =
      static_cast<double>(Steps) / Runs / Iters;
}

} // namespace

// The 2x2 of Figure 2 plus CPS, at three depths, raise vs no raise.
static void dispatchArgs(benchmark::internal::Benchmark *B) {
  for (DispatchTechnique T : AllDispatchTechniques)
    for (int64_t Depth : {4, 32, 256})
      for (int64_t Raise : {0, 1})
        B->Args({static_cast<int64_t>(T), Depth, Raise});
}
BENCHMARK(BM_dispatch)->Apply(dispatchArgs);

static void sweepArgs(benchmark::internal::Benchmark *B) {
  for (DispatchTechnique T :
       {DispatchTechnique::CutGenerated, DispatchTechnique::UnwindGenerated,
        DispatchTechnique::UnwindRuntime})
    for (int64_t Period : {1, 2, 4, 8, 16, 32, 64, 128, 256})
      B->Args({static_cast<int64_t>(T), Period});
}
BENCHMARK(BM_sweep)->Apply(sweepArgs);

CMM_BENCH_MAIN(fig2_design_space);
