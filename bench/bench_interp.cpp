//===- bench/bench_interp.cpp - Experiment INTERP -------------------------===//
//
// Part of cmmex (see DESIGN.md). Three-way backend comparison: the same
// workloads, executed by the reference tree walker (sem/Machine.h), by the
// bytecode VM (vm/Vm.h), and by the threaded tier (vm/Threaded.h). All
// backends implement identical observable semantics (the differential
// harness holds them to it, counter for counter), so the wall-time ratios
// here are pure interpretation overhead: walk/vm measures what re-walking
// expression trees costs against register bytecode; vm/threaded measures
// what switch dispatch costs against token-threaded dispatch plus
// superinstruction fusion.
//
// Rows of one workload share a name prefix: interp/<workload>/walk, .../vm,
// .../threaded, and .../threaded_nofuse (the fusion ablation: the threaded
// loop over an unfused key stream, isolating dispatch gains from fusion
// gains). main() computes per-workload speedups and their geomeans into the
// BENCH_interp.json metadata block.
//
// Workloads cover the IR's cost centres: call/return frames (sp1), tail
// calls (sp2), straight-line expression loops (sp3), memory traffic
// (memrev), every Figure 2 exception-dispatch technique under its raising
// workload, and a mixed random program from the differential corpus.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "costmodel/RandomProgram.h"
#include "engine/Engine.h"
#include "rts/Dispatchers.h"
#include "vm/Threaded.h"
#include "vm/Vm.h"

#include <cmath>
#include <functional>

using namespace cmm;
using namespace cmm::bench;

namespace {

const char *sumProdSource() {
  return R"(
export sp1, sp2, sp3;
sp1(bits32 n) {
  bits32 s, p;
  if n == 1 { return (1, 1); } else {
    s, p = sp1(n - 1);
    return (s + n, p * n);
  }
}
sp2(bits32 n) { jump sp2_help(n, 1, 1); }
sp2_help(bits32 n, bits32 s, bits32 p) {
  if n == 1 { return (s, p); } else {
    jump sp2_help(n - 1, s + n, p * n);
  }
}
sp3(bits32 n) {
  bits32 s, p;
  s = 1; p = 1;
loop:
  if n == 1 { return (s, p); } else {
    s = s + n; p = p * n; n = n - 1;
    goto loop;
  }
}
)";
}

/// Writes n words into the data segment, then reverses them in place and
/// sums the result: a load/store-bound loop.
const char *memRevSource() {
  return R"(
export memrev;
data buf { bits32[256]; }
memrev(bits32 n) {
  bits32 i, j, t, u, s;
  i = 0;
fill:
  if i < n {
    bits32[buf + i * 4] = i * 3 + 1;
    i = i + 1;
    goto fill;
  }
  i = 0; j = n - 1;
swap:
  if i < j {
    t = bits32[buf + i * 4];
    u = bits32[buf + j * 4];
    bits32[buf + i * 4] = u;
    bits32[buf + j * 4] = t;
    i = i + 1; j = j - 1;
    goto swap;
  }
  i = 0; s = 0;
sum:
  if i < n {
    s = s + bits32[buf + i * 4];
    i = i + 1;
    goto sum;
  }
  return (s);
}
)";
}

/// One workload: a compiled program plus how to run it.
struct Workload {
  std::string Name;
  std::unique_ptr<IrProgram> Prog;
  std::string Entry;
  std::vector<Value> Args;
  /// Which dispatcher the workload's yields expect (none for most).
  DispatchTechnique Technique = DispatchTechnique::CutGenerated;
};

void runInterp(benchmark::State &State, const Workload &W,
               std::unique_ptr<Executor> Exec) {
  Executor &M = *Exec;
  uint64_t Steps = 0, Runs = 0;
  for (auto _ : State) {
    M.resetStats();
    M.start(W.Entry, W.Args);
    MachineStatus St;
    if (W.Technique == DispatchTechnique::CutRuntime) {
      CuttingDispatcher D(M);
      St = runWithRuntime(M, std::ref(D));
    } else if (W.Technique == DispatchTechnique::UnwindRuntime) {
      UnwindingDispatcher D(M);
      St = runWithRuntime(M, std::ref(D));
    } else {
      St = M.run();
    }
    if (St != MachineStatus::Halted) {
      State.SkipWithError("machine did not halt");
      return;
    }
    benchmark::DoNotOptimize(M.argArea()[0].Raw);
    Steps += M.stats().Steps;
    ++Runs;
  }
  State.counters["steps"] =
      benchmark::Counter(static_cast<double>(Steps) / Runs);
  State.counters["steps_per_sec"] = benchmark::Counter(
      static_cast<double>(Steps), benchmark::Counter::kIsRate);
}

std::vector<Workload> &workloads() {
  static std::vector<Workload> Ws = [] {
    std::vector<Workload> V;
    auto Add = [&](std::string Name, const std::string &Src,
                   std::string Entry, std::vector<Value> Args,
                   DispatchTechnique T = DispatchTechnique::CutGenerated) {
      Workload W;
      W.Name = std::move(Name);
      W.Prog = compileOrDie({Src});
      W.Entry = std::move(Entry);
      W.Args = std::move(Args);
      W.Technique = T;
      V.push_back(std::move(W));
    };
    Add("sp1_calls", sumProdSource(), "sp1", {b32(200)});
    Add("sp2_jumps", sumProdSource(), "sp2", {b32(200)});
    Add("sp3_loop", sumProdSource(), "sp3", {b32(200)});
    Add("memrev", memRevSource(), "memrev", {b32(256)});
    for (DispatchTechnique T : AllDispatchTechniques)
      Add(std::string("dispatch_") + dispatchTechniqueName(T),
          dispatchWorkloadSource(T), "bench", {b32(40), b32(1)}, T);
    {
      RandomProgramOptions G;
      G.NumProcs = 6;
      G.Strategy = DispatchTechnique::CutGenerated;
      Add("random_mixed", generateRandomProgram(7, G), "main", {b32(12)});
    }
    return V;
  }();
  return Ws;
}

void registerAll() {
  suiteMetadata()["backends"] = "walk,vm,threaded";
  suiteMetadata()["threaded_dispatch"] = threadedDispatchKind();
  suiteMetadata()["fusion"] = "all (ablation rows: none)";
  for (const Workload &W : workloads()) {
    for (engine::Backend B : engine::AllBackends)
      benchmark::RegisterBenchmark(
          ("interp/" + W.Name + "/" + std::string(engine::backendName(B)))
              .c_str(),
          [&W, B](benchmark::State &S) {
            runInterp(S, W, engine::makeExecutor(B, *W.Prog));
          });
    // The fusion ablation: the same threaded loop over a key stream with
    // every fusion pair disabled. threaded/threaded_nofuse isolates the
    // superinstruction gain; threaded_nofuse/vm isolates the dispatch gain.
    benchmark::RegisterBenchmark(
        ("interp/" + W.Name + "/threaded_nofuse").c_str(),
        [&W](benchmark::State &S) {
          auto BC =
              std::make_shared<const CompiledProgram>(compileToBytecode(*W.Prog));
          runInterp(S, W,
                    std::make_unique<ThreadedMachine>(
                        *W.Prog,
                        fuseProgram(std::move(BC), FusionTable::none())));
        });
  }
  // Bytecode compilation is a one-time, per-program cost; measured so the
  // speedup table can show how quickly the VM amortizes it.
  benchmark::RegisterBenchmark("interp/compile_bytecode",
                               [](benchmark::State &S) {
                                 const Workload &W = workloads().front();
                                 for (auto _ : S) {
                                   CompiledProgram CP =
                                       compileToBytecode(*W.Prog);
                                   benchmark::DoNotOptimize(CP.Procs.size());
                                 }
                               });
  // Same for the fusion pass, which the threaded tier adds on top.
  benchmark::RegisterBenchmark(
      "interp/fuse_threaded", [](benchmark::State &S) {
        const Workload &W = workloads().front();
        auto BC =
            std::make_shared<const CompiledProgram>(compileToBytecode(*W.Prog));
        for (auto _ : S) {
          auto TP = fuseProgram(BC);
          benchmark::DoNotOptimize(TP->Fusion.FusedSites);
        }
      });
}

[[maybe_unused]] const bool Registered = (registerAll(), true);

/// Per-iteration cpu time of run named <workload>/<suffix>, or 0.
double cpuPerIter(const JsonCaptureReporter &R, const std::string &Name) {
  for (const auto &Run : R.runs())
    if (Run.benchmark_name() == Name && Run.iterations > 0 &&
        !Run.error_occurred)
      return Run.cpu_accumulated_time / double(Run.iterations);
  return 0.0;
}

std::string fmt(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3f", V);
  return Buf;
}

/// Computes per-workload speedup ratios and their geomeans into the suite
/// metadata, so BENCH_interp.json carries the comparison, not just raw rows.
void annotateSpeedups(const JsonCaptureReporter &R) {
  struct Geo {
    double LogSum = 0;
    unsigned N = 0;
    void add(double Ratio) { LogSum += std::log(Ratio), ++N; }
    double mean() const { return N ? std::exp(LogSum / N) : 0.0; }
  };
  Geo VmOverWalk, ThreadedOverVm, ThreadedOverWalk, FusionGain;
  for (const Workload &W : workloads()) {
    double Walk = cpuPerIter(R, "interp/" + W.Name + "/walk");
    double Vm = cpuPerIter(R, "interp/" + W.Name + "/vm");
    double Thr = cpuPerIter(R, "interp/" + W.Name + "/threaded");
    double NoFuse = cpuPerIter(R, "interp/" + W.Name + "/threaded_nofuse");
    if (!Walk || !Vm || !Thr || !NoFuse)
      continue;
    VmOverWalk.add(Walk / Vm);
    ThreadedOverVm.add(Vm / Thr);
    ThreadedOverWalk.add(Walk / Thr);
    FusionGain.add(NoFuse / Thr);
    suiteMetadata()["speedup_" + W.Name] =
        "vm_over_walk=" + fmt(Walk / Vm) +
        " threaded_over_vm=" + fmt(Vm / Thr) +
        " fusion_gain=" + fmt(NoFuse / Thr);
  }
  suiteMetadata()["geomean_vm_over_walk"] = fmt(VmOverWalk.mean());
  suiteMetadata()["geomean_threaded_over_vm"] = fmt(ThreadedOverVm.mean());
  suiteMetadata()["geomean_threaded_over_walk"] = fmt(ThreadedOverWalk.mean());
  suiteMetadata()["geomean_fusion_gain"] = fmt(FusionGain.mean());
}

} // namespace

int main(int argc, char **argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  JsonCaptureReporter Reporter;
  ::benchmark::RunSpecifiedBenchmarks(&Reporter);
  annotateSpeedups(Reporter);
  if (!Reporter.writeJsonFile("interp"))
    std::fprintf(stderr, "warning: could not write BENCH_interp.json\n");
  ::benchmark::Shutdown();
  return 0;
}
