//===- bench/bench_interp.cpp - Experiment INTERP -------------------------===//
//
// Part of cmmex (see DESIGN.md). Walk-vs-VM backend comparison: the same
// workloads, executed by the reference tree walker (sem/Machine.h) and by
// the bytecode VM (vm/Vm.h). Both backends implement identical observable
// semantics (the differential harness holds them to it, counter for
// counter), so the wall-time ratio here is pure interpretation overhead:
// what re-walking expression trees and re-resolving environment symbols on
// every transition costs, against compiling each procedure to register
// bytecode once.
//
// Pairs of benchmarks share a workload name: interp/<workload>/walk and
// interp/<workload>/vm. The harness computes the per-workload speedup and
// its geomean from BENCH_interp.json.
//
// Workloads cover the IR's cost centres: call/return frames (sp1), tail
// calls (sp2), straight-line expression loops (sp3), memory traffic
// (memrev), every Figure 2 exception-dispatch technique under its raising
// workload, and a mixed random program from the differential corpus.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "costmodel/RandomProgram.h"
#include "engine/Engine.h"
#include "rts/Dispatchers.h"
#include "vm/Vm.h"

#include <functional>

using namespace cmm;
using namespace cmm::bench;

namespace {

const char *sumProdSource() {
  return R"(
export sp1, sp2, sp3;
sp1(bits32 n) {
  bits32 s, p;
  if n == 1 { return (1, 1); } else {
    s, p = sp1(n - 1);
    return (s + n, p * n);
  }
}
sp2(bits32 n) { jump sp2_help(n, 1, 1); }
sp2_help(bits32 n, bits32 s, bits32 p) {
  if n == 1 { return (s, p); } else {
    jump sp2_help(n - 1, s + n, p * n);
  }
}
sp3(bits32 n) {
  bits32 s, p;
  s = 1; p = 1;
loop:
  if n == 1 { return (s, p); } else {
    s = s + n; p = p * n; n = n - 1;
    goto loop;
  }
}
)";
}

/// Writes n words into the data segment, then reverses them in place and
/// sums the result: a load/store-bound loop.
const char *memRevSource() {
  return R"(
export memrev;
data buf { bits32[256]; }
memrev(bits32 n) {
  bits32 i, j, t, u, s;
  i = 0;
fill:
  if i < n {
    bits32[buf + i * 4] = i * 3 + 1;
    i = i + 1;
    goto fill;
  }
  i = 0; j = n - 1;
swap:
  if i < j {
    t = bits32[buf + i * 4];
    u = bits32[buf + j * 4];
    bits32[buf + i * 4] = u;
    bits32[buf + j * 4] = t;
    i = i + 1; j = j - 1;
    goto swap;
  }
  i = 0; s = 0;
sum:
  if i < n {
    s = s + bits32[buf + i * 4];
    i = i + 1;
    goto sum;
  }
  return (s);
}
)";
}

/// One workload: a compiled program plus how to run it.
struct Workload {
  std::string Name;
  std::unique_ptr<IrProgram> Prog;
  std::string Entry;
  std::vector<Value> Args;
  /// Which dispatcher the workload's yields expect (none for most).
  DispatchTechnique Technique = DispatchTechnique::CutGenerated;
};

void runInterp(benchmark::State &State, const Workload &W,
               engine::Backend B) {
  std::unique_ptr<Executor> Exec = engine::makeExecutor(B, *W.Prog);
  Executor &M = *Exec;
  uint64_t Steps = 0, Runs = 0;
  for (auto _ : State) {
    M.resetStats();
    M.start(W.Entry, W.Args);
    MachineStatus St;
    if (W.Technique == DispatchTechnique::CutRuntime) {
      CuttingDispatcher D(M);
      St = runWithRuntime(M, std::ref(D));
    } else if (W.Technique == DispatchTechnique::UnwindRuntime) {
      UnwindingDispatcher D(M);
      St = runWithRuntime(M, std::ref(D));
    } else {
      St = M.run();
    }
    if (St != MachineStatus::Halted) {
      State.SkipWithError("machine did not halt");
      return;
    }
    benchmark::DoNotOptimize(M.argArea()[0].Raw);
    Steps += M.stats().Steps;
    ++Runs;
  }
  State.counters["steps"] =
      benchmark::Counter(static_cast<double>(Steps) / Runs);
  State.counters["steps_per_sec"] = benchmark::Counter(
      static_cast<double>(Steps), benchmark::Counter::kIsRate);
}

std::vector<Workload> &workloads() {
  static std::vector<Workload> Ws = [] {
    std::vector<Workload> V;
    auto Add = [&](std::string Name, const std::string &Src,
                   std::string Entry, std::vector<Value> Args,
                   DispatchTechnique T = DispatchTechnique::CutGenerated) {
      Workload W;
      W.Name = std::move(Name);
      W.Prog = compileOrDie({Src});
      W.Entry = std::move(Entry);
      W.Args = std::move(Args);
      W.Technique = T;
      V.push_back(std::move(W));
    };
    Add("sp1_calls", sumProdSource(), "sp1", {b32(200)});
    Add("sp2_jumps", sumProdSource(), "sp2", {b32(200)});
    Add("sp3_loop", sumProdSource(), "sp3", {b32(200)});
    Add("memrev", memRevSource(), "memrev", {b32(256)});
    for (DispatchTechnique T : AllDispatchTechniques)
      Add(std::string("dispatch_") + dispatchTechniqueName(T),
          dispatchWorkloadSource(T), "bench", {b32(40), b32(1)}, T);
    {
      RandomProgramOptions G;
      G.NumProcs = 6;
      G.Strategy = DispatchTechnique::CutGenerated;
      Add("random_mixed", generateRandomProgram(7, G), "main", {b32(12)});
    }
    return V;
  }();
  return Ws;
}

void registerAll() {
  for (const Workload &W : workloads()) {
    for (engine::Backend B : engine::AllBackends)
      benchmark::RegisterBenchmark(
          ("interp/" + W.Name + "/" + std::string(engine::backendName(B)))
              .c_str(),
          [&W, B](benchmark::State &S) { runInterp(S, W, B); });
  }
  // Bytecode compilation is a one-time, per-program cost; measured so the
  // speedup table can show how quickly the VM amortizes it.
  benchmark::RegisterBenchmark("interp/compile_bytecode",
                               [](benchmark::State &S) {
                                 const Workload &W = workloads().front();
                                 for (auto _ : S) {
                                   CompiledProgram CP =
                                       compileToBytecode(*W.Prog);
                                   benchmark::DoNotOptimize(CP.Procs.size());
                                 }
                               });
}

[[maybe_unused]] const bool Registered = (registerAll(), true);

} // namespace

CMM_BENCH_MAIN(interp);
