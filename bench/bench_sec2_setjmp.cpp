//===- bench/bench_sec2_setjmp.cpp - Section 2 measurements ---------------===//
//
// Part of cmmex (see DESIGN.md). Section 2's quantitative comparison of
// setjmp/longjmp against a native-code stack cutter: jmp_buf sizes of 6
// (Pentium/Linux), 19 (Sparc/Solaris) and 84 (Alpha/Digital-Unix) pointers
// versus the cutter's 2, plus the SPARC register-window flush on longjmp.
// The benchmark regenerates the words-moved table for a workload of scope
// entries and raises.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "costmodel/SetjmpModel.h"

#include <benchmark/benchmark.h>

using namespace cmm;

namespace {

void BM_setjmp_vs_cutter(benchmark::State &State) {
  const SetjmpProfile &P = SetjmpProfiles[State.range(0)];
  uint64_t ScopeEntries = 100000;
  uint64_t Raises = static_cast<uint64_t>(State.range(1));

  NonLocalExitCost C{};
  for (auto _ : State) {
    C = nonLocalExitCost(P, ScopeEntries, Raises);
    benchmark::DoNotOptimize(C);
  }
  State.SetLabel(P.Name);
  State.counters["jmp_buf_ptrs"] = P.JmpBufPointers;
  State.counters["cutter_ptrs"] = P.NativeCutterPointers;
  State.counters["setjmp_words"] = static_cast<double>(C.SetjmpWordsSaved);
  State.counters["cutter_words"] = static_cast<double>(C.CutterWordsSaved);
  State.counters["save_ratio"] =
      static_cast<double>(C.SetjmpWordsSaved) / C.CutterWordsSaved;
  State.counters["longjmp_words"] =
      static_cast<double>(C.LongjmpWordsRestored);
}

} // namespace

static void profiles(benchmark::internal::Benchmark *B) {
  for (int64_t P : {0, 1, 2})
    for (int64_t Raises : {100, 10000})
      B->Args({P, Raises});
}
BENCHMARK(BM_setjmp_vs_cutter)->Apply(profiles);

CMM_BENCH_MAIN(sec2_setjmp);
