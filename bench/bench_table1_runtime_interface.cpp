//===- bench/bench_table1_runtime_interface.cpp - Experiment T1 -----------===//
//
// Part of cmmex (see DESIGN.md). Table 1: the C-- run-time interface. The
// benchmark suspends a thread under a stack of configurable depth and
// measures the operations a front-end runtime performs: the
// FirstActivation/NextActivation walk (linear in depth — this is exactly
// the interpretive cost of the run-time unwinding technique), descriptor
// retrieval, and the SetActivation/SetUnwindCont/FindContParam/Resume
// sequence.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "rts/RuntimeInterface.h"

using namespace cmm;
using namespace cmm::bench;

namespace {

const char *deepYieldSource() {
  return R"(
export main;

data desc_top {
  bits32 1;
  bits32 77; bits32 0; bits32 1;
}

deep(bits32 n) {
  bits32 r;
  if n == 0 {
    yield(77, 5) also aborts;
    return (0);
  }
  r = deep(n - 1) also aborts;
  return (r);
}

main(bits32 depth) {
  bits32 r, a;
  r = deep(depth) also unwinds to k also aborts descriptors desc_top;
  return (r);
continuation k(a):
  return (100 + a);
}
)";
}

const IrProgram &program() {
  static std::unique_ptr<IrProgram> P = compileOrDie({deepYieldSource()});
  return *P;
}

/// Suspends a machine with `depth` frames below the yield.
std::unique_ptr<Machine> suspendAtDepth(uint64_t Depth) {
  auto M = std::make_unique<Machine>(program());
  M->start("main", {b32(Depth)});
  M->run();
  if (M->status() != MachineStatus::Suspended)
    return nullptr;
  return M;
}

/// The full Figure 9 walk: first/next to the bottom, reading descriptors.
void BM_stack_walk(benchmark::State &State) {
  uint64_t Depth = static_cast<uint64_t>(State.range(0));
  std::unique_ptr<Machine> M = suspendAtDepth(Depth);
  if (!M) {
    State.SkipWithError("machine did not suspend");
    return;
  }
  uint64_t Visited = 0, Runs = 0;
  for (auto _ : State) {
    CmmRuntime Rt(*M);
    Activation A;
    Rt.firstActivation(A);
    uint64_t Descs = 0;
    do {
      if (Rt.getDescriptor(A, 0))
        ++Descs;
    } while (Rt.nextActivation(A));
    benchmark::DoNotOptimize(Descs);
    Visited += Rt.stats().ActivationsVisited;
    ++Runs;
  }
  State.counters["activations_visited"] =
      static_cast<double>(Visited) / Runs;
}

/// SetActivation + SetUnwindCont + FindContParam + Resume: one complete
/// dispatch, re-suspending each iteration.
void BM_unwind_and_resume(benchmark::State &State) {
  uint64_t Depth = static_cast<uint64_t>(State.range(0));
  uint64_t Steps = 0, Runs = 0;
  for (auto _ : State) {
    std::unique_ptr<Machine> M = suspendAtDepth(Depth);
    if (!M) {
      State.SkipWithError("machine did not suspend");
      return;
    }
    CmmRuntime Rt(*M);
    Activation A;
    Rt.firstActivation(A);
    // Walk to the bottom activation (main), which owns the handler.
    while (Rt.nextActivation(A)) {
    }
    A.Valid = true;
    A.IndexFromTop = Rt.stackDepth() - 1;
    if (!Rt.setActivation(A) || !Rt.setUnwindCont(0)) {
      State.SkipWithError("staging failed");
      return;
    }
    *Rt.findContParam(0) = b32(5);
    if (!Rt.resume() || M->run() != MachineStatus::Halted) {
      State.SkipWithError("resume failed");
      return;
    }
    benchmark::DoNotOptimize(M->argArea()[0].Raw);
    Steps += M->stats().UnwindPops;
    ++Runs;
  }
  State.counters["frames_unwound"] = static_cast<double>(Steps) / Runs;
}

} // namespace

BENCHMARK(BM_stack_walk)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_unwind_and_resume)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

CMM_BENCH_MAIN(table1_runtime_interface);
