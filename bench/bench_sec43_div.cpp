//===- bench/bench_sec43_div.cpp - Experiment §4.3 ------------------------===//
//
// Part of cmmex (see DESIGN.md). Section 4.3: primitive operations that can
// fail. %divu is the fast-but-dangerous variant (one "instruction");
// %%divu is the slow-but-solid library procedure that tests its divisor
// and maps failure into a yield. The benchmark measures the cost of the
// check on the success path and the full dispatch cost on failure.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "rts/Dispatchers.h"

using namespace cmm;
using namespace cmm::bench;

namespace {

const char *divSource() {
  return R"(
export fast_loop, solid_loop, solid_fail;

data d0 { bits32 1; bits32 53744; bits32 0; bits32 0; }

/* Sum of a/i for i in 1..n, fast variant. */
fast_loop(bits32 a, bits32 n) {
  bits32 i, acc;
  i = 1;
  acc = 0;
loop:
  if i > n { return (acc); }
  acc = acc + %divu(a, i);
  i = i + 1;
  goto loop;
}

/* Same, slow-but-solid variant. */
solid_loop(bits32 a, bits32 n) {
  bits32 i, acc, q;
  i = 1;
  acc = 0;
loop:
  if i > n { return (acc); }
  q = %%divu(a, i) also aborts;
  acc = acc + q;
  i = i + 1;
  goto loop;
}

/* One failing division, handled. */
solid_fail(bits32 a) {
  bits32 q;
  q = %%divu(a, 0) also unwinds to k also aborts descriptors d0;
  return (q);
continuation k:
  return (4294967295);
}
)";
}

const IrProgram &program() {
  static std::unique_ptr<IrProgram> P = compileOrDie({divSource()});
  return *P;
}

void BM_div(benchmark::State &State) {
  bool Solid = State.range(0) != 0;
  uint64_t N = static_cast<uint64_t>(State.range(1));
  uint64_t Steps = 0, Runs = 0;
  for (auto _ : State) {
    Machine M(program());
    M.start(Solid ? "solid_loop" : "fast_loop", {b32(1000000), b32(N)});
    if (M.run() != MachineStatus::Halted) {
      State.SkipWithError("did not halt");
      return;
    }
    benchmark::DoNotOptimize(M.argArea()[0].Raw);
    Steps += M.stats().Steps;
    ++Runs;
  }
  State.SetLabel(Solid ? "%%divu(checked)" : "%divu(fast)");
  State.counters["steps_per_div"] =
      static_cast<double>(Steps) / Runs / N;
}

void BM_div_failure_dispatch(benchmark::State &State) {
  uint64_t Steps = 0, Runs = 0;
  for (auto _ : State) {
    Machine M(program());
    M.start("solid_fail", {b32(42)});
    UnwindingDispatcher D(M);
    if (runWithRuntime(M, std::ref(D)) != MachineStatus::Halted) {
      State.SkipWithError("did not halt");
      return;
    }
    benchmark::DoNotOptimize(M.argArea()[0].Raw);
    Steps += M.stats().Steps;
    ++Runs;
  }
  State.counters["steps"] = static_cast<double>(Steps) / Runs;
}

} // namespace

static void divArgs(benchmark::internal::Benchmark *B) {
  for (int64_t Solid : {0, 1})
    for (int64_t N : {64, 1024})
      B->Args({Solid, N});
}
BENCHMARK(BM_div)->Apply(divArgs);
BENCHMARK(BM_div_failure_dispatch);

CMM_BENCH_MAIN(sec43_div);
