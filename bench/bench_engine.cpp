//===- bench/bench_engine.cpp - Experiment ENGINE -------------------------===//
//
// Part of cmmex (see DESIGN.md). The batch execution engine's two claims,
// measured:
//
//  - Thread scaling: one batch of independent jobs (pre-compiled random
//    programs, both backends) executed by Engine::run on 1, 2, 4, and 8
//    workers. Jobs are isolated (one fresh executor each) and share only
//    the immutable artifact, so throughput should scale with the pool.
//    engine/batch_jobs/<N> reports jobs_per_sec; the harness reads the
//    8-vs-1 ratio from BENCH_engine.json. engine/diff_sweep/<N> repeats
//    the measurement on the real workload — cmmdiff's differential seed
//    sweep via ThreadPool::parallelFor.
//
//  - The content-hash cache: engine/compile_cold forces a miss on every
//    lookup (a source corpus larger than the cache capacity, cycled), so
//    each iteration pays parse + typecheck + translate; engine/compile_warm
//    replays one request against a resident artifact, paying only the hash
//    and one map probe. The gap is the cache's value per compile.
//    engine/compile_disk_warm replays the cold sweep against a primed
//    on-disk artifact store (docs/ENGINE.md § "Persistent cache"): every
//    lookup still misses the RAM tier but deserializes a stored artifact
//    instead of recompiling, placing the persistent cache between the two.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "costmodel/DiffHarness.h"
#include "costmodel/RandomProgram.h"
#include "engine/Engine.h"

#include <chrono>
#include <filesystem>
#include <thread>

using namespace cmm;
using namespace cmm::bench;

namespace {

/// A small corpus of pre-compiled random programs; jobs share these
/// immutable artifacts, so the batch measures execution, not compilation.
std::vector<std::shared_ptr<const engine::ProgramArtifact>> &artifacts() {
  static std::vector<std::shared_ptr<const engine::ProgramArtifact>> Arts =
      [] {
        std::vector<std::shared_ptr<const engine::ProgramArtifact>> V;
        for (uint64_t Seed = 0; Seed < 8; ++Seed) {
          RandomProgramOptions G;
          G.NumProcs = 6;
          G.Strategy = DispatchTechnique::CutGenerated;
          engine::CompileRequest Req;
          Req.Sources = {generateRandomProgram(Seed, G)};
          std::shared_ptr<const engine::ProgramArtifact> A =
              engine::compileArtifact(Req);
          if (!A->ok()) {
            std::fprintf(stderr, "bench_engine: seed %llu failed: %s\n",
                         static_cast<unsigned long long>(Seed),
                         A->error().c_str());
            std::abort();
          }
          A->bytecode(); // pre-compile so VM jobs measure pure execution
          V.push_back(std::move(A));
        }
        return V;
      }();
  return Arts;
}

constexpr unsigned JobsPerBatch = 256;

void batchJobs(benchmark::State &State) {
  engine::EngineOptions EO;
  EO.Threads = static_cast<unsigned>(State.range(0));
  engine::Engine Eng(EO);
  const auto &Arts = artifacts();
  uint64_t Jobs = 0;
  for (auto _ : State) {
    std::vector<engine::Job> Batch;
    Batch.reserve(JobsPerBatch);
    for (unsigned I = 0; I < JobsPerBatch; ++I) {
      engine::Job J;
      J.Artifact = Arts[I % Arts.size()];
      J.B = (I & 1) ? engine::Backend::Vm : engine::Backend::Walk;
      J.Args = {b32(I % 13)};
      J.MaxSteps = 2'000'000;
      Batch.push_back(std::move(J));
    }
    std::vector<engine::JobResult> Res = Eng.run(std::move(Batch));
    for (const engine::JobResult &R : Res)
      if (!R.CompileError.empty()) {
        State.SkipWithError("job failed to compile");
        return;
      }
    benchmark::DoNotOptimize(Res.size());
    Jobs += JobsPerBatch;
  }
  State.counters["jobs_per_sec"] = benchmark::Counter(
      static_cast<double>(Jobs), benchmark::Counter::kIsRate);
}

/// The production workload: a short differential sweep (every strategy,
/// config, input, and backend per seed) sharded over the engine's pool.
void diffSweep(benchmark::State &State) {
  engine::EngineOptions EO;
  EO.Threads = static_cast<unsigned>(State.range(0));
  engine::Engine Eng(EO);
  DiffOptions Opts;
  Opts.Eng = &Eng;
  Opts.Gen.NumProcs = 4;
  uint64_t Seeds = 0, SweepBase = 0;
  for (auto _ : State) {
    // Fresh seeds every iteration so the artifact cache cannot turn later
    // iterations into pure replays of the first.
    const uint64_t Lo = 100000 + SweepBase, Hi = Lo + 8;
    SweepBase += 8;
    std::atomic<uint64_t> Unexpected{0};
    Eng.pool().parallelFor(Lo, Hi, [&](uint64_t Seed) {
      DiffSeedResult R = diffTestSeed(Seed, Opts);
      if (R.hasUnexpected())
        Unexpected.fetch_add(1, std::memory_order_relaxed);
    });
    if (Unexpected.load() != 0) {
      State.SkipWithError("differential sweep diverged");
      return;
    }
    Seeds += Hi - Lo;
  }
  State.counters["seeds_per_sec"] = benchmark::Counter(
      static_cast<double>(Seeds), benchmark::Counter::kIsRate);
}

/// One generated source per distinct key, deterministic and cheap to vary.
std::string variantSource(unsigned K) {
  return "export main;\n"
         "main(bits32 n) {\n"
         "  bits32 s, i;\n"
         "  s = " + std::to_string(K) + "; i = 0;\n"
         "loop:\n"
         "  if i == 16 { return (s); }\n"
         "  s = s + i * " + std::to_string(K % 7 + 1) + ";\n"
         "  i = i + 1;\n"
         "  goto loop;\n"
         "}\n";
}

/// Records \p F's wall time into \p Lat in microseconds.
template <typename Fn> void timeInto(Histogram &Lat, Fn &&F) {
  auto T0 = std::chrono::steady_clock::now();
  F();
  Lat.record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - T0)
          .count()));
}

/// The cold-sweep corpus: 512 distinct keys, far more than the 64-artifact
/// cache below holds, so cycling through it misses on every lookup.
const std::vector<std::string> &coldCorpus() {
  static const std::vector<std::string> Corpus = [] {
    std::vector<std::string> V;
    for (unsigned K = 0; K < 512; ++K)
      V.push_back(variantSource(K));
    return V;
  }();
  return Corpus;
}

void compileCold(benchmark::State &State) {
  // 512 distinct keys cycled through a 64-artifact cache: every lookup
  // misses and pays the full front end.
  const std::vector<std::string> &Corpus = coldCorpus();
  engine::EngineOptions EO;
  EO.Threads = 1;
  EO.CacheCapacity = 64;
  engine::Engine Eng(EO);
  Histogram Lat; // per-compile latency: cold tails are the interesting part
  size_t I = 0;
  for (auto _ : State) {
    engine::CompileRequest Req;
    Req.Sources = {Corpus[I++ % Corpus.size()]};
    std::shared_ptr<const engine::ProgramArtifact> A;
    timeInto(Lat, [&] { A = Eng.compile(Req); });
    if (!A->ok()) {
      State.SkipWithError("variant failed to compile");
      return;
    }
    benchmark::DoNotOptimize(A->program());
  }
  engine::CacheStats CS = Eng.cacheStats();
  State.counters["hit_ratio"] = benchmark::Counter(
      CS.Lookups ? static_cast<double>(CS.Hits) / CS.Lookups : 0);
  exportLatencyHistogram(State, Lat, "cold");
}

void compileDiskWarm(benchmark::State &State) {
  // The cold sweep replayed against a primed persistent store: the same
  // 512-key corpus through the same 64-artifact RAM cache, but with
  // --cache-dir set and every artifact already on disk. Each lookup misses
  // the RAM tier and loads the serialized artifact instead of recompiling;
  // the gap to compile_cold is what the disk tier saves per compile, the
  // gap to compile_warm is what deserialization costs over a map probe.
  const std::vector<std::string> &Corpus = coldCorpus();
  static const std::string Dir = [&] {
    std::filesystem::path P =
        std::filesystem::temp_directory_path() / "cmmex_bench_disk_warm";
    std::error_code Ec;
    std::filesystem::remove_all(P, Ec);
    engine::EngineOptions EO;
    EO.Threads = 1;
    EO.CacheCapacity = 64;
    EO.CacheDir = P.string();
    engine::Engine Prime(EO);
    for (const std::string &Src : coldCorpus()) {
      engine::CompileRequest Req;
      Req.Sources = {Src};
      Prime.compile(Req);
    }
    return P.string();
  }();
  engine::EngineOptions EO;
  EO.Threads = 1;
  EO.CacheCapacity = 64;
  EO.CacheDir = Dir;
  engine::Engine Eng(EO);
  Histogram Lat;
  size_t I = 0;
  for (auto _ : State) {
    engine::CompileRequest Req;
    Req.Sources = {Corpus[I++ % Corpus.size()]};
    std::shared_ptr<const engine::ProgramArtifact> A;
    timeInto(Lat, [&] { A = Eng.compile(Req); });
    if (!A->ok()) {
      State.SkipWithError("variant failed to load");
      return;
    }
    benchmark::DoNotOptimize(A->program());
  }
  engine::CacheStats CS = Eng.cacheStats();
  State.counters["hit_ratio"] = benchmark::Counter(
      CS.Lookups ? static_cast<double>(CS.Hits) / CS.Lookups : 0);
  State.counters["disk_hit_ratio"] = benchmark::Counter(
      CS.Misses ? static_cast<double>(CS.DiskHits) / CS.Misses : 0);
  if (CS.IrCompiles != 0) {
    State.SkipWithError("disk-warm sweep recompiled IR");
    return;
  }
  exportLatencyHistogram(State, Lat, "disk_warm");
}

void compileWarm(benchmark::State &State) {
  engine::EngineOptions EO;
  EO.Threads = 1;
  engine::Engine Eng(EO);
  engine::CompileRequest Req;
  Req.Sources = {variantSource(0)};
  Eng.compile(Req); // prime the cache; every timed lookup below hits
  Histogram Lat;
  for (auto _ : State) {
    std::shared_ptr<const engine::ProgramArtifact> A;
    timeInto(Lat, [&] { A = Eng.compile(Req); });
    if (!A->ok()) {
      State.SkipWithError("variant failed to compile");
      return;
    }
    benchmark::DoNotOptimize(A->program());
  }
  engine::CacheStats CS = Eng.cacheStats();
  State.counters["hit_ratio"] = benchmark::Counter(
      CS.Lookups ? static_cast<double>(CS.Hits) / CS.Lookups : 0);
  exportLatencyHistogram(State, Lat, "warm");
}

void registerAll() {
  // Facts a reader needs to interpret the scaling and cache numbers: how
  // many CPUs backed the thread args, and the cold sweep's cache shape.
  suiteMetadata()["cpus"] =
      std::to_string(std::thread::hardware_concurrency());
  suiteMetadata()["thread_args"] = "1,2,4,8";
  suiteMetadata()["jobs_per_batch"] = std::to_string(JobsPerBatch);
  suiteMetadata()["cold_cache_capacity"] = "64";
  suiteMetadata()["cold_corpus"] = "512";
  benchmark::RegisterBenchmark("engine/batch_jobs", batchJobs)
      ->Arg(1)
      ->Arg(2)
      ->Arg(4)
      ->Arg(8)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  benchmark::RegisterBenchmark("engine/diff_sweep", diffSweep)
      ->Arg(1)
      ->Arg(8)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  benchmark::RegisterBenchmark("engine/compile_cold", compileCold)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("engine/compile_disk_warm", compileDiskWarm)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("engine/compile_warm", compileWarm)
      ->Unit(benchmark::kMicrosecond);
}

[[maybe_unused]] const bool Registered = (registerAll(), true);

} // namespace

CMM_BENCH_MAIN(engine);
