//===- bench/bench_sec42_callee_saves.cpp - Experiment §4.2 ---------------===//
//
// Part of cmmex (see DESIGN.md). Section 4.2's register trade-off:
// "the stack-cutting technique ... reduces the utility of callee-saves
// registers: the callee-saves registers must be considered killed by flow
// edges from the call to any cut-to continuations", whereas "the unwinding
// technique allows callee-saves registers to be used at every call site".
//
// Measured over randomized exception-using programs:
//  - how many live-across-call variables the sound pass can place in
//    callee-saves registers, and how many the cut edges force back into the
//    frame (the cutting tax);
//  - the killed-live-value count of the unsound placement (the bug the
//    ablation run exhibits);
//  - execution outcomes of sound vs unsound placement.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "costmodel/RandomProgram.h"
#include "opt/PassManager.h"

using namespace cmm;
using namespace cmm::bench;

namespace {

void BM_placement(benchmark::State &State) {
  bool RespectCuts = State.range(0) != 0;
  constexpr uint64_t NumSeeds = 40;

  uint64_t Placed = 0, Excluded = 0, Killed = 0, WrongRuns = 0, Runs = 0;
  for (auto _ : State) {
    Placed = Excluded = Killed = WrongRuns = Runs = 0;
    for (uint64_t Seed = 1; Seed <= NumSeeds; ++Seed) {
      std::unique_ptr<IrProgram> P =
          compileOrDie({generateRandomProgram(Seed)});
      OptOptions Opts;
      Opts.PlaceCalleeSaves = true;
      Opts.CalleeSaves.RespectCutEdges = RespectCuts;
      OptReport R = optimizeProgram(*P, Opts);
      Placed += R.CalleeSaves.VarsPlaced;
      Excluded += R.CalleeSaves.VarsExcludedByCutEdges;
      for (const auto &Proc : P->Procs)
        Killed += countKilledLiveValues(*Proc, *P);
      for (uint64_t In : {1, 3, 7, 12}) {
        Machine M(*P);
        M.start("main", {b32(In)});
        ++Runs;
        if (M.run(2'000'000) == MachineStatus::Wrong)
          ++WrongRuns;
      }
    }
    benchmark::DoNotOptimize(Killed);
  }
  State.SetLabel(RespectCuts ? "sound(cut-edges-respected)"
                             : "unsound(ablation)");
  State.counters["vars_in_callee_saves"] = static_cast<double>(Placed);
  State.counters["vars_kept_in_frame_by_cut_edges"] =
      static_cast<double>(Excluded);
  State.counters["killed_live_values_static"] = static_cast<double>(Killed);
  State.counters["executions_gone_wrong"] = static_cast<double>(WrongRuns);
  State.counters["executions_total"] = static_cast<double>(Runs);
}

/// The flip side: with unwinding-only handlers (no cut edges), nothing is
/// excluded — "the unwinding technique allows callee-saves registers to be
/// used at every call site".
void BM_unwind_only_placement(benchmark::State &State) {
  // Programs whose handlers unwind rather than cut carry `also unwinds to`
  // edges, which do not kill callee-saves registers.
  const char *Src = R"(
export main;
data d0 { bits32 1; bits32 5; bits32 0; bits32 1; }
g(bits32 x) {
  if x == 0 { yield(5, 1) also aborts; }
  return (x);
}
main(bits32 x) {
  bits32 y, z, w, r, s;
  y = x * 3;
  z = x + 7;
  w = x ^ 9;
  r = g(x) also unwinds to k also aborts descriptors d0;
  return (y + z + w + r);
continuation k(s):
  return (y + z + w + s);
}
)";
  uint64_t Placed = 0, Excluded = 0;
  for (auto _ : State) {
    std::unique_ptr<IrProgram> P = compileOrDie({Src});
    OptOptions Opts;
    Opts.PlaceCalleeSaves = true;
    OptReport R = optimizeProgram(*P, Opts);
    Placed = R.CalleeSaves.VarsPlaced;
    Excluded = R.CalleeSaves.VarsExcludedByCutEdges;
    benchmark::DoNotOptimize(R);
  }
  State.counters["vars_in_callee_saves"] = static_cast<double>(Placed);
  State.counters["vars_excluded"] = static_cast<double>(Excluded);
}

} // namespace

BENCHMARK(BM_placement)->Arg(1)->Arg(0)->Iterations(1);
BENCHMARK(BM_unwind_only_placement);

CMM_BENCH_MAIN(sec42_callee_saves);
