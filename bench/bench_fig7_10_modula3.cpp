//===- bench/bench_fig7_10_modula3.cpp - Experiments F7-F10 ---------------===//
//
// Part of cmmex (see DESIGN.md). Figures 7-10: the same Modula-3 program
// compiled under the three policies the appendix sketches. Measured:
//
//  - normal-case cost per TryAMove (run-time unwinding has "zero dynamic
//    overhead for entering the scope of an exception handler"; Figure 10's
//    cutting adds a small per-scope cost);
//  - dispatch cost when the exception fires (cutting is constant time;
//    unwinding "may be considerable" and grows with depth);
//  - the machine/dispatcher counter breakdown behind both.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "frontend/M3Driver.h"

using namespace cmm;
using namespace cmm::bench;

namespace {

/// Figure 7's TryAMove, with a depth knob: the RAISE happens `depth` calls
/// below the TRY, and `iters` moves are tried per run.
const char *gameSource() {
  return R"(
EXCEPTION BadMove(INTEGER);
EXCEPTION NoMoreTiles;
VAR movesTried: INTEGER;

PROCEDURE MakeMoveAt(move: INTEGER, depth: INTEGER) =
BEGIN
  IF depth > 0 THEN
    MakeMoveAt(move, depth - 1);
    RETURN;
  END;
  IF move = 7 THEN RAISE BadMove(move); END;
  IF move = 9 THEN RAISE NoMoreTiles; END;
END MakeMoveAt;

PROCEDURE TryAMove(move: INTEGER, depth: INTEGER): INTEGER =
VAR result: INTEGER;
BEGIN
  TRY
    MakeMoveAt(move, depth);
    result := 1;
  EXCEPT
  | BadMove(why) => result := 100 + why;
  | NoMoreTiles => result := 200;
  END;
  movesTried := movesTried + 1;
  RETURN result;
END TryAMove;

PROCEDURE Main(x: INTEGER): INTEGER =
VAR move: INTEGER;
VAR depth: INTEGER;
VAR iters: INTEGER;
VAR i: INTEGER;
VAR acc: INTEGER;
BEGIN
  (* x encodes move*1000000 + depth*1000 + iters *)
  move := x DIV 1000000;
  depth := (x DIV 1000) MOD 1000;
  iters := x MOD 1000;
  i := 0;
  acc := 0;
  WHILE i < iters DO
    acc := acc + TryAMove(move, depth);
    i := i + 1;
  END;
  RETURN acc;
END Main;
)";
}

const M3Program &program(ExnPolicy P) {
  static std::unique_ptr<M3Program> Progs[3];
  auto &Slot = Progs[static_cast<int>(P)];
  if (!Slot) {
    DiagnosticEngine Diags;
    Slot = buildM3(gameSource(), P, Diags, /*Optimize=*/true);
    if (!Slot) {
      std::fprintf(stderr, "MiniM3 build failed: %s\n", Diags.str().c_str());
      std::abort();
    }
  }
  return *Slot;
}

void BM_try_a_move(benchmark::State &State) {
  auto Policy = static_cast<ExnPolicy>(State.range(0));
  uint64_t Move = static_cast<uint64_t>(State.range(1));
  uint64_t Depth = static_cast<uint64_t>(State.range(2));
  constexpr uint64_t Iters = 100;
  const M3Program &P = program(Policy);

  uint64_t Steps = 0, Stores = 0, Walked = 0, Runs = 0;
  for (auto _ : State) {
    M3RunResult R =
        runM3(P, Move * 1000000 + Depth * 1000 + Iters);
    if (!R.Ok) {
      State.SkipWithError("run failed");
      return;
    }
    benchmark::DoNotOptimize(R.Value);
    Steps += R.MachineStats.Steps;
    Stores += R.MachineStats.Stores;
    Walked += R.ActivationsWalked;
    ++Runs;
  }
  State.SetLabel(exnPolicyName(Policy));
  State.counters["steps_per_try"] =
      static_cast<double>(Steps) / Runs / Iters;
  State.counters["stores_per_try"] =
      static_cast<double>(Stores) / Runs / Iters;
  State.counters["walk_per_try"] =
      static_cast<double>(Walked) / Runs / Iters;
}

} // namespace

static void gameArgs(benchmark::internal::Benchmark *B) {
  for (int64_t Policy : {0, 1, 2})
    for (int64_t Move : {1, 7})      // 1 = normal move, 7 = raises BadMove
      for (int64_t Depth : {0, 8, 64})
        B->Args({Policy, Move, Depth});
}
BENCHMARK(BM_try_a_move)->Apply(gameArgs);

CMM_BENCH_MAIN(fig7_10_modula3);
