//===- bench/BenchUtil.h - Shared benchmark helpers -------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two layers:
///
///  - A benchmark-library-independent part (ManualSuite, suiteMetadata,
///    compileOrDie): anything that writes BENCH_<suite>.json. Tools that
///    measure externally driven workloads — tools/cmmload.cpp timing a live
///    cmmexd — use ManualSuite to emit rows in the exact schema the Google
///    Benchmark suites emit, so the harness and CI diff every BENCH file
///    the same way.
///
///  - The Google Benchmark integration (JsonCaptureReporter,
///    CMM_BENCH_MAIN, exportLatencyHistogram), compiled only when the
///    benchmark headers are on the include path (bench/ binaries link
///    benchmark::benchmark; tools do not).
///
//===----------------------------------------------------------------------===//

#ifndef CMM_BENCH_BENCHUTIL_H
#define CMM_BENCH_BENCHUTIL_H

#include "ir/Translate.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "sem/Machine.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace cmm::bench {

/// Suite-level metadata — host facts and workload shape (CPU count, worker
/// threads, cache configuration) that a reader of BENCH_<suite>.json needs
/// to interpret the numbers. Suites fill this before the benchmarks run
/// (typically alongside benchmark registration); CMM_BENCH_MAIN writes it
/// into the JSON header as "metadata".
inline std::map<std::string, std::string> &suiteMetadata() {
  static std::map<std::string, std::string> M;
  return M;
}

/// Compiles \p Sources or aborts the benchmark binary (benchmarks never run
/// on malformed inputs).
inline std::unique_ptr<IrProgram>
compileOrDie(const std::vector<std::string> &Sources) {
  DiagnosticEngine Diags;
  std::unique_ptr<IrProgram> Prog = compileProgram(Sources, Diags);
  if (!Prog) {
    std::fprintf(stderr, "benchmark program failed to compile:\n%s\n",
                 Diags.str().c_str());
    std::abort();
  }
  return Prog;
}

inline Value b32(uint64_t V) { return Value::bits(32, V); }

//===----------------------------------------------------------------------===//
// ManualSuite: BENCH_<suite>.json without Google Benchmark
//===----------------------------------------------------------------------===//

/// Accumulates benchmark rows measured by hand and renders them in the
/// same JSON shape as JsonCaptureReporter::json — {"suite", "metadata",
/// "benchmarks": [{"name", "iterations", "real_time_sec", "cpu_time_sec",
/// "error", "counters": {...}}]} — so downstream consumers cannot tell the
/// two producers apart.
class ManualSuite {
public:
  struct Row {
    std::string Name;
    uint64_t Iterations = 1;
    double RealSec = 0;
    double CpuSec = 0;
    bool Error = false;
    std::map<std::string, double> Counters;
  };

  explicit ManualSuite(std::string Suite) : Suite(std::move(Suite)) {}

  void meta(std::string Key, std::string V) {
    Metadata[std::move(Key)] = std::move(V);
  }

  Row &addRow(std::string Name) {
    Rows.emplace_back();
    Rows.back().Name = std::move(Name);
    return Rows.back();
  }

  std::string json() const {
    JsonWriter W;
    W.beginObject();
    W.field("suite", std::string_view(Suite));
    W.key("metadata");
    W.beginObject();
    for (const auto &[Name, V] : Metadata)
      W.field(std::string_view(Name), std::string_view(V));
    W.endObject();
    W.key("benchmarks");
    W.beginArray();
    for (const Row &R : Rows) {
      W.beginObject();
      W.field("name", std::string_view(R.Name));
      W.field("iterations", R.Iterations);
      W.field("real_time_sec", R.RealSec);
      W.field("cpu_time_sec", R.CpuSec);
      W.field("error", R.Error);
      W.key("counters");
      W.beginObject();
      for (const auto &[Name, V] : R.Counters)
        W.field(std::string_view(Name), V);
      W.endObject();
      W.endObject();
    }
    W.endArray();
    W.endObject();
    return W.take();
  }

  /// Writes BENCH_<suite>.json into the working directory (or \p Path when
  /// given).
  bool writeFile(const std::string &Path = "") const {
    std::string P = Path.empty() ? "BENCH_" + Suite + ".json" : Path;
    std::ofstream Out(P);
    if (!Out)
      return false;
    Out << json() << '\n';
    return bool(Out);
  }

private:
  std::string Suite;
  std::map<std::string, std::string> Metadata;
  std::vector<Row> Rows;
};

} // namespace cmm::bench

//===----------------------------------------------------------------------===//
// Google Benchmark integration (bench/ binaries only)
//===----------------------------------------------------------------------===//

// Non-benchmark binaries (tools/cmmload.cpp) define CMM_BENCH_NO_GBENCH
// before including this header: the benchmark headers may be visible on the
// system include path even when the binary does not link the library.
#if !defined(CMM_BENCH_NO_GBENCH) && __has_include(<benchmark/benchmark.h>)

#include <benchmark/benchmark.h>

namespace cmm::bench {

/// Exports a latency Histogram's summary as user counters under \p Prefix
/// (<prefix>_p50_us, _p90_us, _p99_us, _max_us), so the BENCH JSON rows
/// carry the distribution tail, not just Google Benchmark's mean.
inline void exportLatencyHistogram(benchmark::State &State,
                                   const Histogram &H,
                                   const std::string &Prefix) {
  State.counters[Prefix + "_p50_us"] = double(H.percentile(50));
  State.counters[Prefix + "_p90_us"] = double(H.percentile(90));
  State.counters[Prefix + "_p99_us"] = double(H.percentile(99));
  State.counters[Prefix + "_max_us"] = double(H.max());
}

/// A console reporter that additionally captures every run so the binary can
/// write a machine-readable BENCH_<suite>.json next to the usual table (the
/// bench harness and CI diff these instead of scraping stdout).
class JsonCaptureReporter : public benchmark::ConsoleReporter {
public:
  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs)
      Captured.push_back(R);
    benchmark::ConsoleReporter::ReportRuns(Runs);
  }

  /// Renders the captured runs: per-run wall time, iterations, and every
  /// user counter (machine Stats exported via benchmark::State::counters).
  std::string json(const std::string &Suite) const {
    JsonWriter W;
    W.beginObject();
    W.field("suite", std::string_view(Suite));
    W.key("metadata");
    W.beginObject();
    for (const auto &[Name, V] : suiteMetadata())
      W.field(std::string_view(Name), std::string_view(V));
    W.endObject();
    W.key("benchmarks");
    W.beginArray();
    for (const Run &R : Captured) {
      W.beginObject();
      W.field("name", std::string_view(R.benchmark_name()));
      W.field("iterations", uint64_t(R.iterations));
      W.field("real_time_sec", R.real_accumulated_time);
      W.field("cpu_time_sec", R.cpu_accumulated_time);
      W.field("error", R.error_occurred);
      W.key("counters");
      W.beginObject();
      for (const auto &[Name, C] : R.counters)
        W.field(std::string_view(Name), double(C));
      W.endObject();
      W.endObject();
    }
    W.endArray();
    W.endObject();
    return W.take();
  }

  /// The captured runs, for suites that post-process results (e.g.
  /// bench_interp's speedup-ratio metadata) before writeJsonFile.
  const std::vector<Run> &runs() const { return Captured; }

  bool writeJsonFile(const std::string &Suite) const {
    std::string Path = "BENCH_" + Suite + ".json";
    std::ofstream Out(Path);
    if (!Out)
      return false;
    Out << json(Suite) << '\n';
    return bool(Out);
  }

private:
  std::vector<Run> Captured;
};

} // namespace cmm::bench

/// Drop-in replacement for BENCHMARK_MAIN() that also writes
/// BENCH_<suite>.json into the working directory.
#define CMM_BENCH_MAIN(suite)                                                  \
  int main(int argc, char **argv) {                                            \
    ::benchmark::Initialize(&argc, argv);                                      \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))                  \
      return 1;                                                                \
    ::cmm::bench::JsonCaptureReporter Reporter;                                \
    ::benchmark::RunSpecifiedBenchmarks(&Reporter);                            \
    if (!Reporter.writeJsonFile(#suite))                                       \
      std::fprintf(stderr, "warning: could not write BENCH_" #suite ".json\n");\
    ::benchmark::Shutdown();                                                   \
    return 0;                                                                  \
  }                                                                            \
  int main(int, char **)

#endif // !CMM_BENCH_NO_GBENCH && __has_include(<benchmark/benchmark.h>)

#endif // CMM_BENCH_BENCHUTIL_H
