//===- bench/BenchUtil.h - Shared benchmark helpers -------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#ifndef CMM_BENCH_BENCHUTIL_H
#define CMM_BENCH_BENCHUTIL_H

#include "ir/Translate.h"
#include "sem/Machine.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

namespace cmm::bench {

/// Compiles \p Sources or aborts the benchmark binary (benchmarks never run
/// on malformed inputs).
inline std::unique_ptr<IrProgram>
compileOrDie(const std::vector<std::string> &Sources) {
  DiagnosticEngine Diags;
  std::unique_ptr<IrProgram> Prog = compileProgram(Sources, Diags);
  if (!Prog) {
    std::fprintf(stderr, "benchmark program failed to compile:\n%s\n",
                 Diags.str().c_str());
    std::abort();
  }
  return Prog;
}

inline Value b32(uint64_t V) { return Value::bits(32, V); }

} // namespace cmm::bench

#endif // CMM_BENCH_BENCHUTIL_H
