//===- bench/bench_sched.cpp - Experiment SCHED ---------------------------===//
//
// Part of cmmex (see DESIGN.md). The green-threads runtime's cost model,
// measured (docs/SCHEDULER.md, EXPERIMENTS.md § "SCHED"):
//
//  - sched/context_switch: one green thread yielding in a tight loop. Every
//    yield parks the thread, snapshots its continuation, and requeues it, so
//    switches_per_sec is the raw price of a cooperative context switch —
//    the headline number for the runtime.
//
//  - sched/ping_pong: two threads bouncing a token through a pair of
//    capacity-1 channels. Each round is two sends, two receives, and the
//    park/wake handoff between threads; rounds_per_sec prices the
//    cross-thread resume path the scheduler is built around.
//
//  - sched/spawn_join: spawn n trivial threads and join each. threads_per_sec
//    prices thread creation (fresh isolated Memory per thread) plus the
//    join rendezvous.
//
//  - sched/relay/<drivers>: the 16-worker relay pipeline under 1 and 2
//    drivers — the work-stealing configuration. Observables are identical
//    across driver counts (tests/SchedSoakTest.cpp pins this); the wall
//    clock difference is what host parallelism buys a channel-bound load.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "engine/Engine.h"
#include "engine/ThreadPool.h"
#include "rts/SchedFormat.h"
#include "sched/Scheduler.h"

#include <thread>

using namespace cmm;
using namespace cmm::bench;
using namespace cmm::sched;

namespace {

std::string T(uint64_t Tag) { return schedTagLiteral(Tag); }

const IrProgram &yieldLoopProgram() {
  static std::unique_ptr<IrProgram> Prog = compileOrDie(
      {"export main;\n"
       "main(bits32 n) {\n"
       "  bits32 i;\n"
       "  i = 0;\n"
       "loop:\n"
       "  if i == n { return (i); }\n"
       "  yield(" + T(SchedTagYield) + ");\n"
       "  i = i + 1;\n"
       "  goto loop;\n"
       "}\n"});
  return *Prog;
}

const IrProgram &pingPongProgram() {
  static std::unique_ptr<IrProgram> Prog = compileOrDie(
      {"export main;\n"
       "ponger(bits32 cin, bits32 cout) {\n"
       "  bits32 v;\n"
       "loop:\n"
       "  v = yield(" + T(SchedTagChanRecv) + ", cin);\n"
       "  if v == 0 { return (0); }\n"
       "  yield(" + T(SchedTagChanSend) + ", cout, v);\n"
       "  goto loop;\n"
       "}\n"
       "main(bits32 rounds) {\n"
       "  bits32 a, b, t, i, v;\n"
       "  a = yield(" + T(SchedTagChanNew) + ", 1);\n"
       "  b = yield(" + T(SchedTagChanNew) + ", 1);\n"
       "  t = yield(" + T(SchedTagSpawn) + ", ponger, a, b);\n"
       "  i = 0;\n"
       "loop:\n"
       "  if i == rounds { goto fin; }\n"
       "  yield(" + T(SchedTagChanSend) + ", a, i + 1);\n"
       "  v = yield(" + T(SchedTagChanRecv) + ", b);\n"
       "  i = i + 1;\n"
       "  goto loop;\n"
       "fin:\n"
       "  yield(" + T(SchedTagChanSend) + ", a, 0);\n"
       "  v = yield(" + T(SchedTagJoin) + ", t);\n"
       "  return (i);\n"
       "}\n"});
  return *Prog;
}

const IrProgram &spawnJoinProgram() {
  static std::unique_ptr<IrProgram> Prog = compileOrDie(
      {"export main;\n"
       "data tids { bits32[4096]; }\n"
       "worker(bits32 x) {\n"
       "  return (x + 1);\n"
       "}\n"
       "main(bits32 n) {\n"
       "  bits32 i, t, sum;\n"
       "  i = 0;\n"
       "spawnloop:\n"
       "  if i == n { goto joinall; }\n"
       "  t = yield(" + T(SchedTagSpawn) + ", worker, i);\n"
       "  bits32[tids + i * 4] = t;\n"
       "  i = i + 1;\n"
       "  goto spawnloop;\n"
       "joinall:\n"
       "  sum = 0;\n"
       "  i = 0;\n"
       "joinloop:\n"
       "  if i == n { return (sum); }\n"
       "  t = yield(" + T(SchedTagJoin) + ", bits32[tids + i * 4]);\n"
       "  sum = sum + t;\n"
       "  i = i + 1;\n"
       "  goto joinloop;\n"
       "}\n"});
  return *Prog;
}

const IrProgram &relayProgram() {
  static std::unique_ptr<IrProgram> Prog = compileOrDie(
      {"export main;\n"
       "data chans { bits32[128]; }\n"
       "worker(bits32 cin, bits32 cout) {\n"
       "  bits32 v;\n"
       "loop:\n"
       "  v = yield(" + T(SchedTagChanRecv) + ", cin);\n"
       "  if v == 999999 {\n"
       "    yield(" + T(SchedTagChanSend) + ", cout, v);\n"
       "    return (0);\n"
       "  }\n"
       "  yield(" + T(SchedTagChanSend) + ", cout, v + 1);\n"
       "  goto loop;\n"
       "}\n"
       "main(bits32 n, bits32 m) {\n"
       "  bits32 i, t, v, c, sum;\n"
       "  i = 0;\n"
       // Capacity 32 per channel: main feeds every token before draining,
       // so total pipeline capacity must exceed the token count or the
       // schedule deadlocks by design.
       "mkchan:\n"
       "  if i > n { goto spawn; }\n"
       "  c = yield(" + T(SchedTagChanNew) + ", 32);\n"
       "  bits32[chans + i * 4] = c;\n"
       "  i = i + 1;\n"
       "  goto mkchan;\n"
       "spawn:\n"
       "  i = 0;\n"
       "spawnloop:\n"
       "  if i == n { goto feed; }\n"
       "  t = yield(" + T(SchedTagSpawn) + ", worker,\n"
       "            bits32[chans + i * 4], bits32[chans + (i + 1) * 4]);\n"
       "  i = i + 1;\n"
       "  goto spawnloop;\n"
       "feed:\n"
       "  i = 0;\n"
       "feedloop:\n"
       "  if i == m { goto fin; }\n"
       "  yield(" + T(SchedTagChanSend) + ", bits32[chans], i);\n"
       "  i = i + 1;\n"
       "  goto feedloop;\n"
       "fin:\n"
       "  yield(" + T(SchedTagChanSend) + ", bits32[chans], 999999);\n"
       "  sum = 0;\n"
       "drain:\n"
       "  v = yield(" + T(SchedTagChanRecv) + ", bits32[chans + n * 4]);\n"
       "  if v == 999999 { goto done; }\n"
       "  sum = sum + v;\n"
       "  goto drain;\n"
       "done:\n"
       "  return (sum);\n"
       "}\n"});
  return *Prog;
}

SchedResult runOnce(const IrProgram &Prog, SchedOptions Opts,
                    std::vector<Value> Args,
                    Scheduler::SubmitFn Submit = {}) {
  Scheduler S(
      [&Prog] { return engine::makeExecutor(engine::Backend::Vm, Prog); },
      Opts, std::move(Submit));
  return S.run("main", std::move(Args));
}

void contextSwitch(benchmark::State &State) {
  const IrProgram &Prog = yieldLoopProgram();
  constexpr uint64_t Yields = 20'000;
  uint64_t Switches = 0;
  for (auto _ : State) {
    SchedResult R = runOnce(Prog, {}, {b32(Yields)});
    if (R.Status != MachineStatus::Halted) {
      State.SkipWithError("yield loop did not halt");
      return;
    }
    Switches += R.ContextSwitches;
    benchmark::DoNotOptimize(R.StepsTotal);
  }
  State.counters["switches_per_sec"] = benchmark::Counter(
      static_cast<double>(Switches), benchmark::Counter::kIsRate);
}

void pingPong(benchmark::State &State) {
  const IrProgram &Prog = pingPongProgram();
  constexpr uint64_t Rounds = 5'000;
  uint64_t Done = 0, Switches = 0;
  for (auto _ : State) {
    SchedResult R = runOnce(Prog, {}, {b32(Rounds)});
    if (R.Status != MachineStatus::Halted) {
      State.SkipWithError("ping-pong did not halt");
      return;
    }
    Done += Rounds;
    Switches += R.ContextSwitches;
    benchmark::DoNotOptimize(R.StepsTotal);
  }
  State.counters["rounds_per_sec"] = benchmark::Counter(
      static_cast<double>(Done), benchmark::Counter::kIsRate);
  State.counters["switches_per_sec"] = benchmark::Counter(
      static_cast<double>(Switches), benchmark::Counter::kIsRate);
}

void spawnJoin(benchmark::State &State) {
  const IrProgram &Prog = spawnJoinProgram();
  constexpr uint64_t Threads = 1'000;
  uint64_t Spawned = 0;
  for (auto _ : State) {
    SchedResult R = runOnce(Prog, {}, {b32(Threads)});
    if (R.Status != MachineStatus::Halted) {
      State.SkipWithError("spawn/join did not halt");
      return;
    }
    Spawned += R.ThreadsSpawned - 1; // exclude the main thread
    benchmark::DoNotOptimize(R.StepsTotal);
  }
  State.counters["threads_per_sec"] = benchmark::Counter(
      static_cast<double>(Spawned), benchmark::Counter::kIsRate);
}

void relay(benchmark::State &State) {
  const IrProgram &Prog = relayProgram();
  const unsigned Drivers = static_cast<unsigned>(State.range(0));
  constexpr uint64_t Workers = 16, Tokens = 400;
  engine::ThreadPool Pool(Drivers > 1 ? Drivers - 1 : 1);
  auto Submit = [&Pool](std::function<void()> Task) {
    Pool.submit(std::move(Task));
  };
  uint64_t Hops = 0;
  for (auto _ : State) {
    SchedOptions O;
    O.Drivers = Drivers;
    O.SliceFuel = 2048;
    SchedResult R = runOnce(Prog, O, {b32(Workers), b32(Tokens)},
                            Drivers > 1 ? Scheduler::SubmitFn(Submit)
                                        : Scheduler::SubmitFn());
    if (R.Status != MachineStatus::Halted) {
      State.SkipWithError("relay did not halt");
      return;
    }
    Hops += R.ChanSends;
    benchmark::DoNotOptimize(R.StepsTotal);
  }
  State.counters["hops_per_sec"] = benchmark::Counter(
      static_cast<double>(Hops), benchmark::Counter::kIsRate);
}

void registerAll() {
  suiteMetadata()["cpus"] =
      std::to_string(std::thread::hardware_concurrency());
  suiteMetadata()["backend"] = "vm";
  suiteMetadata()["relay_workers"] = "16";
  suiteMetadata()["relay_tokens"] = "400";
  benchmark::RegisterBenchmark("sched/context_switch", contextSwitch)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  benchmark::RegisterBenchmark("sched/ping_pong", pingPong)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  benchmark::RegisterBenchmark("sched/spawn_join", spawnJoin)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  benchmark::RegisterBenchmark("sched/relay", relay)
      ->Arg(1)
      ->Arg(2)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
}

[[maybe_unused]] const bool Registered = (registerAll(), true);

} // namespace

CMM_BENCH_MAIN(sched);
