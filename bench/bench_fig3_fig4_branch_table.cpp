//===- bench/bench_fig3_fig4_branch_table.cpp - Experiment F3/F4 ----------===//
//
// Part of cmmex (see DESIGN.md). Figures 3 and 4: the SPARC call-site
// instruction sequences for standard returns and the branch-table method,
// against the rejected test-and-branch alternative. The model reproduces
// the paper's claims: the branch-table method "has no dynamic overhead in
// the normal case" and costs one branch-to-a-branch on the abnormal case,
// "much cheaper than branch followed by test and conditional branch"; its
// space overhead is one word per alternate continuation per call site,
// which "may be considerable".
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "costmodel/CallSiteModel.h"

#include <benchmark/benchmark.h>

using namespace cmm;

namespace {

void BM_call_site(benchmark::State &State) {
  auto Scheme = static_cast<ReturnScheme>(State.range(0));
  unsigned AltConts = static_cast<unsigned>(State.range(1));

  // A synthetic program profile: many call sites, mostly normal returns.
  constexpr uint64_t CallSites = 10'000;
  constexpr uint64_t NormalReturns = 1'000'000;
  constexpr uint64_t AbnormalReturns = 10'000;

  ProgramCallCost Cost{};
  for (auto _ : State) {
    Cost = programCallCost(Scheme, CallSites, AltConts, NormalReturns,
                           AbnormalReturns);
    benchmark::DoNotOptimize(Cost);
  }
  const char *Name = Scheme == ReturnScheme::Standard ? "standard(fig3)"
                     : Scheme == ReturnScheme::BranchTable
                         ? "branch-table(fig4)"
                         : "test-and-branch";
  State.SetLabel(Name);
  CallSiteCost C = callSiteCost(Scheme, AltConts, AltConts ? AltConts - 1 : 0);
  State.counters["words_per_site"] = C.Words;
  State.counters["normal_extra_instrs"] = C.NormalReturnExtra;
  State.counters["abnormal_extra_instrs"] = C.AbnormalReturnExtra;
  State.counters["space_words_total"] =
      static_cast<double>(Cost.SpaceWords);
  State.counters["dyn_extra_instrs_total"] =
      static_cast<double>(Cost.ExtraInstructions);
}

} // namespace

static void schemes(benchmark::internal::Benchmark *B) {
  for (int64_t S : {0, 1, 2})          // Standard, BranchTable, TestAndBranch
    for (int64_t N : {0, 1, 2, 4, 8})  // alternate return continuations
      if (!(S == 0 && N != 0))         // standard sites have no alternates
        B->Args({S, N});
}
BENCHMARK(BM_call_site)->Apply(schemes);

CMM_BENCH_MAIN(fig3_fig4_branch_table);
