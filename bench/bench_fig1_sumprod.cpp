//===- bench/bench_fig1_sumprod.cpp - Experiment F1 -----------------------===//
//
// Part of cmmex (see DESIGN.md). Figure 1: the three sum-and-product
// procedures (ordinary recursion, tail recursion, explicit loop), executed
// on the abstract machine, unoptimized and optimized. The figure's point is
// that C-- expresses all three control idioms; the measurements show their
// relative costs on the reference interpreter (calls cost frames, jumps and
// loops do not).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "opt/PassManager.h"

using namespace cmm;
using namespace cmm::bench;

namespace {

const char *sumProdSource() {
  return R"(
export sp1, sp2, sp3;
sp1(bits32 n) {
  bits32 s, p;
  if n == 1 { return (1, 1); } else {
    s, p = sp1(n - 1);
    return (s + n, p * n);
  }
}
sp2(bits32 n) { jump sp2_help(n, 1, 1); }
sp2_help(bits32 n, bits32 s, bits32 p) {
  if n == 1 { return (s, p); } else {
    jump sp2_help(n - 1, s + n, p * n);
  }
}
sp3(bits32 n) {
  bits32 s, p;
  s = 1; p = 1;
loop:
  if n == 1 { return (s, p); } else {
    s = s + n; p = p * n; n = n - 1;
    goto loop;
  }
}
)";
}

const IrProgram &program(bool Optimized) {
  static std::unique_ptr<IrProgram> Plain = compileOrDie({sumProdSource()});
  static std::unique_ptr<IrProgram> Opt = [] {
    std::unique_ptr<IrProgram> P = compileOrDie({sumProdSource()});
    optimizeProgram(*P);
    return P;
  }();
  return Optimized ? *Opt : *Plain;
}

void runSumProd(benchmark::State &State, const char *Proc, bool Optimized) {
  const IrProgram &Prog = program(Optimized);
  uint64_t N = static_cast<uint64_t>(State.range(0));
  uint64_t Steps = 0, Frames = 0, Runs = 0;
  for (auto _ : State) {
    Machine M(Prog);
    M.start(Proc, {b32(N)});
    if (M.run() != MachineStatus::Halted) {
      State.SkipWithError("machine did not halt");
      return;
    }
    benchmark::DoNotOptimize(M.argArea()[0].Raw);
    Steps += M.stats().Steps;
    Frames += M.stats().MaxStackDepth;
    ++Runs;
  }
  State.counters["steps"] =
      benchmark::Counter(static_cast<double>(Steps) / Runs);
  State.counters["max_frames"] =
      benchmark::Counter(static_cast<double>(Frames) / Runs);
}

void BM_sp1(benchmark::State &S) { runSumProd(S, "sp1", false); }
void BM_sp2(benchmark::State &S) { runSumProd(S, "sp2", false); }
void BM_sp3(benchmark::State &S) { runSumProd(S, "sp3", false); }
void BM_sp1_opt(benchmark::State &S) { runSumProd(S, "sp1", true); }
void BM_sp2_opt(benchmark::State &S) { runSumProd(S, "sp2", true); }
void BM_sp3_opt(benchmark::State &S) { runSumProd(S, "sp3", true); }

} // namespace

BENCHMARK(BM_sp1)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(BM_sp2)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(BM_sp3)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(BM_sp1_opt)->Arg(1000);
BENCHMARK(BM_sp2_opt)->Arg(1000);
BENCHMARK(BM_sp3_opt)->Arg(1000);

CMM_BENCH_MAIN(fig1_sumprod);
