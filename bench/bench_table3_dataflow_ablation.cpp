//===- bench/bench_table3_dataflow_ablation.cpp - Experiment T3 -----------===//
//
// Part of cmmex (see DESIGN.md). Table 3: the dataflow rules, including the
// extra flow edges the `also` annotations introduce. Two measurements:
//
//  1. Optimizer throughput over randomized exception-using programs, with
//     and without the exceptional edges (the edges cost essentially
//     nothing to include).
//
//  2. The soundness ablation: running the optimized programs and counting
//     observable miscompilations. With the edges the count is zero; without
//     them, dead-code elimination and callee-saves placement break a large
//     fraction of the programs — the quantitative form of the paper's
//     argument (and of Hennessy 1981's warning).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "costmodel/RandomProgram.h"
#include "opt/PassManager.h"

using namespace cmm;
using namespace cmm::bench;

namespace {

struct Observation {
  MachineStatus Status = MachineStatus::Idle;
  uint64_t Result = 0;
  friend bool operator==(const Observation &A, const Observation &B) {
    return A.Status == B.Status && A.Result == B.Result;
  }
};

Observation observe(const IrProgram &Prog, uint64_t Input) {
  Machine M(Prog);
  M.start("main", {b32(Input)});
  Observation O;
  O.Status = M.run(2'000'000);
  if (O.Status == MachineStatus::Halted && !M.argArea().empty())
    O.Result = M.argArea()[0].Raw;
  return O;
}

void BM_optimize_throughput(benchmark::State &State) {
  bool WithEdges = State.range(0) != 0;
  std::vector<std::string> Sources;
  for (uint64_t Seed = 1; Seed <= 8; ++Seed)
    Sources.push_back(generateRandomProgram(Seed));

  uint64_t Removed = 0, Runs = 0;
  for (auto _ : State) {
    for (const std::string &Src : Sources) {
      State.PauseTiming();
      std::unique_ptr<IrProgram> P = compileOrDie({Src});
      State.ResumeTiming();
      OptOptions Opts;
      Opts.WithExceptionalEdges = WithEdges;
      Opts.PlaceCalleeSaves = true;
      OptReport R = optimizeProgram(*P, Opts);
      Removed += R.DeadCode.AssignsRemoved;
      benchmark::DoNotOptimize(R);
    }
    ++Runs;
  }
  State.SetLabel(WithEdges ? "with-also-edges" : "without-also-edges");
  State.counters["assigns_removed"] =
      static_cast<double>(Removed) / Runs / Sources.size();
}

/// Not a timing benchmark: a measurement of miscompilation rates, reported
/// through counters so the harness regenerates the ablation table.
void BM_soundness(benchmark::State &State) {
  bool WithEdges = State.range(0) != 0;
  constexpr uint64_t NumSeeds = 60;
  const uint64_t Inputs[] = {0, 1, 3, 7, 12, 100};

  uint64_t Miscompiled = 0, Total = 0, RaisingRuns = 0;
  for (auto _ : State) {
    Miscompiled = Total = RaisingRuns = 0;
    for (uint64_t Seed = 1; Seed <= NumSeeds; ++Seed) {
      std::string Src = generateRandomProgram(Seed);
      std::unique_ptr<IrProgram> Ref = compileOrDie({Src});
      std::unique_ptr<IrProgram> Opt = compileOrDie({Src});
      OptOptions Opts;
      Opts.WithExceptionalEdges = WithEdges;
      Opts.PlaceCalleeSaves = true;
      optimizeProgram(*Opt, Opts);
      for (uint64_t In : Inputs) {
        ++Total;
        Observation A = observe(*Ref, In);
        Observation B = observe(*Opt, In);
        if (!(A == B))
          ++Miscompiled;
        Machine Probe(*Ref);
        Probe.start("main", {b32(In)});
        Probe.run(2'000'000);
        if (Probe.stats().Cuts > 0)
          ++RaisingRuns;
      }
    }
    benchmark::DoNotOptimize(Miscompiled);
  }
  State.SetLabel(WithEdges ? "with-also-edges" : "without-also-edges");
  State.counters["executions"] = static_cast<double>(Total);
  State.counters["raising_executions"] = static_cast<double>(RaisingRuns);
  State.counters["miscompiled"] = static_cast<double>(Miscompiled);
  State.counters["miscompiled_pct"] =
      Total ? 100.0 * static_cast<double>(Miscompiled) / Total : 0;
}

} // namespace

BENCHMARK(BM_optimize_throughput)->Arg(1)->Arg(0);
BENCHMARK(BM_soundness)->Arg(1)->Arg(0)->Iterations(1);

CMM_BENCH_MAIN(table3_dataflow_ablation);
