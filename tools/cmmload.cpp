//===- tools/cmmload.cpp - cmmexd load generator --------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
// Drives a running cmmexd with sustained mixed traffic and reports
// latency/throughput, writing BENCH_service.json rows (bench/BenchUtil.h
// schema) for the bench harness and CI:
//
//   cmmload (--socket PATH | --tcp PORT) [options]
//
//   --clients N          concurrent connections (default 4)
//   --scale "1,2,4"      run a scaling curve over client counts instead
//   --pipeline D         requests in flight per connection (default 4)
//   --duration-ms X      sustained load per scale point (default 2000)
//   --mix H:C:Y          hot : cold : yield request weights (default 8:1:1)
//   --backend B          walk|vm|threaded|mix (default mix)
//   --tenant NAME        tenant all requests run as (default "load")
//   --bench-out FILE     BENCH JSON path (default BENCH_service.json)
//   --stats-out FILE     fetch a final ReqStats snapshot into FILE
//   --check              verify the service/engine metrics reconcile and
//                        zero requests failed; exit 1 otherwise
//   --shutdown           gracefully stop the server afterwards
//
// Traffic classes: "hot" runs one fixed program (artifact-cache hit after
// the first compile), "cold" embeds a fresh constant per request (forced
// compile), "yield" parks a dispatcher workload and resumes every yield
// over the wire (ResumeOp::Dispatch) until it halts. Every response is
// validated — wrong answers count as failures, and the tool's exit status
// is nonzero if any request fails.
//
//===----------------------------------------------------------------------===//

#define CMM_BENCH_NO_GBENCH 1
#include "bench/BenchUtil.h"
#include "costmodel/DispatchWorkloads.h"
#include "engine/Engine.h"
#include "support/MiniJson.h"
#include "svc/Client.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace cmm;
using cmm::bench::b32;
using SteadyClock = std::chrono::steady_clock;

namespace {

uint64_t steadyMicros() {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      SteadyClock::now().time_since_epoch())
                      .count());
}

enum class Class : int { Hot = 0, Cold = 1, Yield = 2 };
constexpr int NumClasses = 3;
const char *className(Class C) {
  switch (C) {
  case Class::Hot:
    return "hot";
  case Class::Cold:
    return "cold";
  default:
    return "yield";
  }
}

struct Options {
  std::string UnixPath;
  bool UseTcp = false;
  uint16_t TcpPort = 0;
  std::vector<unsigned> Scale{4};
  unsigned Pipeline = 4;
  double DurationMs = 2000;
  unsigned MixHot = 8, MixCold = 1, MixYield = 1;
  std::string Backend = "mix";
  std::string Tenant = "load";
  std::string BenchOut = "BENCH_service.json";
  std::string StatsOut;
  bool Check = false;
  bool Shutdown = false;
};

/// Per-class tallies one worker accumulates (merged after join).
struct WorkerResult {
  uint64_t Completed[NumClasses] = {0, 0, 0};
  uint64_t Failures = 0;
  uint64_t RoundTrips = 0;
  std::vector<uint64_t> LatencyMicros[NumClasses]; ///< per round trip
  bool TransportError = false;
};

/// Globally unique constants for cold-compile sources (across scale points
/// too, so a "cold" request never hits the artifact cache).
std::atomic<uint64_t> ColdSeq{1};

std::string hotSource() {
  return "export main;\nmain(bits32 n) { return (n + 1); }\n";
}

std::string coldSource(uint64_t K) {
  return "export main;\nmain(bits32 n) { return (n + " + std::to_string(K) +
         "); }\n";
}

uint8_t pickBackend(const std::string &Mode, uint64_t Seq) {
  if (Mode == "walk")
    return uint8_t(engine::Backend::Walk);
  if (Mode == "vm")
    return uint8_t(engine::Backend::Vm);
  if (Mode == "threaded")
    return uint8_t(engine::Backend::Threaded);
  return uint8_t(Seq % 3);
}

constexpr uint32_t YieldIters = 3;  ///< suspensions per yield job
constexpr uint32_t YieldDepth = 4;

struct Pending {
  Class C = Class::Hot;
  uint64_t SentMicros = 0;
  uint32_t Expected = 0;     ///< hot/cold: expected bits32 result
  uint64_t SessionId = 0;    ///< yield: session being driven
};

void worker(const Options &Opt, unsigned Idx, uint64_t DeadlineMicros,
            WorkerResult &Out) {
  std::string Err;
  std::unique_ptr<svc::Client> Cli =
      Opt.UseTcp ? svc::Client::connectTcp("127.0.0.1", Opt.TcpPort, &Err)
                 : svc::Client::connectUnix(Opt.UnixPath, &Err);
  if (!Cli) {
    std::fprintf(stderr, "cmmload: worker %u: %s\n", Idx, Err.c_str());
    Out.TransportError = true;
    return;
  }

  const std::string YieldSrc =
      sweepWorkloadSource(DispatchTechnique::UnwindRuntime);
  const unsigned MixTotal = Opt.MixHot + Opt.MixCold + Opt.MixYield;
  uint64_t Seq = uint64_t(Idx) << 32;
  std::map<uint64_t, Pending> InFlight;

  auto classFor = [&](uint64_t S) {
    unsigned R = unsigned(S % MixTotal);
    if (R < Opt.MixHot)
      return Class::Hot;
    if (R < Opt.MixHot + Opt.MixCold)
      return Class::Cold;
    return Class::Yield;
  };

  auto issue = [&] {
    Class C = classFor(Seq);
    svc::RunRequestMsg M;
    M.Tenant = Opt.Tenant;
    M.Backend = pickBackend(Opt.Backend, Seq);
    Pending P;
    P.C = C;
    switch (C) {
    case Class::Hot:
      M.Sources = {hotSource()};
      M.Args = {b32(41)};
      P.Expected = 42;
      break;
    case Class::Cold: {
      uint64_t K = ColdSeq.fetch_add(1);
      M.Sources = {coldSource(K)};
      M.Args = {b32(1)};
      P.Expected = uint32_t(1 + K);
      break;
    }
    case Class::Yield:
      M.Sources = {YieldSrc};
      M.Entry = "sweep";
      M.Args = {b32(YieldIters), b32(1), b32(YieldDepth)};
      M.Park = true; // every raise comes back over the wire
      break;
    }
    ++Seq;
    P.SentMicros = steadyMicros();
    InFlight.emplace(Cli->sendRun(std::move(M)), P);
  };

  auto resume = [&](const Pending &Prev, uint64_t SessionId) {
    svc::ResumeRequestMsg M;
    M.Tenant = Opt.Tenant;
    M.SessionId = SessionId;
    M.Op = svc::ResumeOp::Dispatch;
    M.Dispatcher = uint8_t(engine::DispatcherKind::Unwind);
    Pending P = Prev;
    P.SessionId = SessionId;
    P.SentMicros = steadyMicros();
    InFlight.emplace(Cli->sendResume(std::move(M)), P);
  };

  // Sustained pipeline: keep Opt.Pipeline requests in flight until the
  // deadline, then drain (yield sessions are driven to completion so none
  // leak past the run).
  for (;;) {
    bool Open = steadyMicros() < DeadlineMicros;
    while (Open && InFlight.size() < Opt.Pipeline) {
      issue();
      Open = steadyMicros() < DeadlineMicros;
    }
    if (InFlight.empty()) {
      if (!Open)
        break;
      continue;
    }
    std::optional<svc::Reply> R = Cli->waitAny();
    if (!R) {
      Out.Failures += InFlight.size();
      Out.TransportError = true;
      break;
    }
    auto It = InFlight.find(R->ReqId);
    if (It == InFlight.end()) {
      ++Out.Failures; // response to a request we never sent
      continue;
    }
    Pending P = It->second;
    InFlight.erase(It);
    ++Out.RoundTrips;
    Out.LatencyMicros[int(P.C)].push_back(steadyMicros() - P.SentMicros);

    if (R->Type != svc::MsgType::RespResult) {
      ++Out.Failures;
      continue;
    }
    const svc::ResultMsg &M = R->Result;
    if (!M.CompileError.empty()) {
      ++Out.Failures;
      continue;
    }
    MachineStatus St = MachineStatus(M.Status);
    if (St == MachineStatus::Suspended && M.SessionId != 0) {
      // A parked yield: drive it (even past the deadline — drain).
      if (P.C != Class::Yield || !M.DispatchHandled) {
        ++Out.Failures;
        continue;
      }
      resume(P, M.SessionId);
      continue;
    }
    if (St != MachineStatus::Halted) {
      ++Out.Failures;
      continue;
    }
    if (P.C != Class::Yield &&
        (M.Results.size() != 1 || M.Results[0] != b32(P.Expected))) {
      ++Out.Failures;
      continue;
    }
    ++Out.Completed[int(P.C)];
  }
}

struct ScalePoint {
  unsigned Clients = 0;
  double ElapsedSec = 0;
  uint64_t Completed[NumClasses] = {0, 0, 0};
  uint64_t Failures = 0;
  uint64_t RoundTrips = 0;
  std::vector<uint64_t> Latency[NumClasses];
};

ScalePoint runScalePoint(const Options &Opt, unsigned Clients) {
  ScalePoint SP;
  SP.Clients = Clients;
  std::vector<WorkerResult> Results(Clients);
  std::vector<std::thread> Threads;
  uint64_t T0 = steadyMicros();
  uint64_t Deadline = T0 + uint64_t(Opt.DurationMs * 1000.0);
  for (unsigned I = 0; I < Clients; ++I)
    Threads.emplace_back(worker, std::cref(Opt), I, Deadline,
                         std::ref(Results[I]));
  for (std::thread &T : Threads)
    T.join();
  SP.ElapsedSec = double(steadyMicros() - T0) / 1e6;
  for (WorkerResult &W : Results) {
    SP.Failures += W.Failures + (W.TransportError ? 1 : 0);
    SP.RoundTrips += W.RoundTrips;
    for (int C = 0; C < NumClasses; ++C) {
      SP.Completed[C] += W.Completed[C];
      SP.Latency[C].insert(SP.Latency[C].end(), W.LatencyMicros[C].begin(),
                           W.LatencyMicros[C].end());
    }
  }
  for (int C = 0; C < NumClasses; ++C)
    std::sort(SP.Latency[C].begin(), SP.Latency[C].end());
  return SP;
}

uint64_t percentile(const std::vector<uint64_t> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Idx = size_t(P / 100.0 * double(Sorted.size() - 1) + 0.5);
  return Sorted[std::min(Idx, Sorted.size() - 1)];
}

double counterIn(const JsonValue &Stats, const char *Section,
                 const std::string &Name) {
  const JsonValue *S = Stats.get(Section);
  if (!S || !S->isObject())
    return -1;
  const JsonValue *V = S->get(Name);
  return V && V->isNumber() ? V->number() : -1;
}

void usage() {
  std::fprintf(stderr,
               "usage: cmmload (--socket PATH | --tcp PORT) [options]\n"
               "run `cmmload --help` for the option list\n");
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opt;
  bool HaveEndpoint = false;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto next = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "cmmload: %s needs a value\n", Flag);
        std::exit(2);
      }
      return Argv[++I];
    };
    if (A == "--socket") {
      Opt.UnixPath = next("--socket");
      HaveEndpoint = true;
    } else if (A == "--tcp") {
      Opt.UseTcp = true;
      Opt.TcpPort = uint16_t(std::strtoul(next("--tcp"), nullptr, 10));
      HaveEndpoint = true;
    } else if (A == "--clients") {
      Opt.Scale = {unsigned(std::strtoul(next("--clients"), nullptr, 10))};
    } else if (A == "--scale") {
      Opt.Scale.clear();
      std::string S = next("--scale");
      size_t Pos = 0;
      while (Pos < S.size()) {
        size_t Comma = S.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = S.size();
        Opt.Scale.push_back(
            unsigned(std::strtoul(S.substr(Pos, Comma - Pos).c_str(),
                                  nullptr, 10)));
        Pos = Comma + 1;
      }
      if (Opt.Scale.empty() ||
          std::find(Opt.Scale.begin(), Opt.Scale.end(), 0u) !=
              Opt.Scale.end()) {
        std::fprintf(stderr, "cmmload: bad --scale list\n");
        return 2;
      }
    } else if (A == "--pipeline") {
      Opt.Pipeline = unsigned(std::strtoul(next("--pipeline"), nullptr, 10));
    } else if (A == "--duration-ms") {
      Opt.DurationMs = std::strtod(next("--duration-ms"), nullptr);
    } else if (A == "--mix") {
      if (std::sscanf(next("--mix"), "%u:%u:%u", &Opt.MixHot, &Opt.MixCold,
                      &Opt.MixYield) != 3 ||
          Opt.MixHot + Opt.MixCold + Opt.MixYield == 0) {
        std::fprintf(stderr, "cmmload: bad --mix (want H:C:Y)\n");
        return 2;
      }
    } else if (A == "--backend") {
      Opt.Backend = next("--backend");
    } else if (A == "--tenant") {
      Opt.Tenant = next("--tenant");
    } else if (A == "--bench-out") {
      Opt.BenchOut = next("--bench-out");
    } else if (A == "--stats-out") {
      Opt.StatsOut = next("--stats-out");
    } else if (A == "--check") {
      Opt.Check = true;
    } else if (A == "--shutdown") {
      Opt.Shutdown = true;
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "cmmload: unknown option '%s'\n", A.c_str());
      usage();
      return 2;
    }
  }
  if (!HaveEndpoint || Opt.Pipeline == 0) {
    usage();
    return 2;
  }

  // Readiness probe: one ping before unleashing the fleet.
  {
    std::string Err;
    std::unique_ptr<svc::Client> Probe =
        Opt.UseTcp ? svc::Client::connectTcp("127.0.0.1", Opt.TcpPort, &Err)
                   : svc::Client::connectUnix(Opt.UnixPath, &Err);
    if (!Probe || !Probe->ping()) {
      std::fprintf(stderr, "cmmload: server not reachable%s%s\n",
                   Err.empty() ? "" : ": ", Err.c_str());
      return 1;
    }
  }

  bench::ManualSuite Suite("service");
  Suite.meta("tool", "cmmload");
  Suite.meta("pipeline", std::to_string(Opt.Pipeline));
  Suite.meta("duration_ms", std::to_string(Opt.DurationMs));
  Suite.meta("mix", std::to_string(Opt.MixHot) + ":" +
                        std::to_string(Opt.MixCold) + ":" +
                        std::to_string(Opt.MixYield));
  Suite.meta("backend", Opt.Backend);
  Suite.meta("transport", Opt.UseTcp ? "tcp" : "unix");

  uint64_t TotalFailures = 0;
  std::printf("%-22s %10s %10s %10s %10s %10s %10s\n", "point", "done", "qps",
              "p50_us", "p90_us", "p99_us", "fail");
  for (unsigned Clients : Opt.Scale) {
    ScalePoint SP = runScalePoint(Opt, Clients);
    TotalFailures += SP.Failures;
    uint64_t TotalDone = 0;
    for (int C = 0; C < NumClasses; ++C) {
      TotalDone += SP.Completed[C];
      std::string Name = "svc/clients:" + std::to_string(Clients) + "/" +
                         className(Class(C));
      bench::ManualSuite::Row &Row = Suite.addRow(Name);
      Row.Iterations = SP.Completed[C];
      Row.RealSec = SP.ElapsedSec;
      Row.Counters["qps"] = SP.ElapsedSec > 0
                                ? double(SP.Completed[C]) / SP.ElapsedSec
                                : 0;
      Row.Counters["round_trips"] = double(SP.Latency[C].size());
      Row.Counters["lat_p50_us"] = double(percentile(SP.Latency[C], 50));
      Row.Counters["lat_p90_us"] = double(percentile(SP.Latency[C], 90));
      Row.Counters["lat_p99_us"] = double(percentile(SP.Latency[C], 99));
      Row.Counters["lat_max_us"] =
          SP.Latency[C].empty() ? 0 : double(SP.Latency[C].back());
      Row.Counters["failures"] = double(SP.Failures);
      std::printf("%-22s %10llu %10.0f %10llu %10llu %10llu %10llu\n",
                  Name.c_str(),
                  static_cast<unsigned long long>(SP.Completed[C]),
                  double(Row.Counters["qps"]),
                  static_cast<unsigned long long>(
                      percentile(SP.Latency[C], 50)),
                  static_cast<unsigned long long>(
                      percentile(SP.Latency[C], 90)),
                  static_cast<unsigned long long>(
                      percentile(SP.Latency[C], 99)),
                  static_cast<unsigned long long>(SP.Failures));
    }
    bench::ManualSuite::Row &Total =
        Suite.addRow("svc/clients:" + std::to_string(Clients) + "/total");
    Total.Iterations = TotalDone;
    Total.RealSec = SP.ElapsedSec;
    Total.Counters["qps"] =
        SP.ElapsedSec > 0 ? double(TotalDone) / SP.ElapsedSec : 0;
    Total.Counters["round_trips"] = double(SP.RoundTrips);
    Total.Counters["failures"] = double(SP.Failures);
  }

  // Final stats snapshot: optionally persisted, optionally reconciled.
  int Exit = TotalFailures ? 1 : 0;
  std::string StatsJson;
  {
    std::string Err;
    std::unique_ptr<svc::Client> Ctl =
        Opt.UseTcp ? svc::Client::connectTcp("127.0.0.1", Opt.TcpPort, &Err)
                   : svc::Client::connectUnix(Opt.UnixPath, &Err);
    if (Ctl) {
      if (std::optional<std::string> S = Ctl->statsJson())
        StatsJson = std::move(*S);
      if (Opt.Shutdown && !Ctl->shutdownServer()) {
        std::fprintf(stderr, "cmmload: shutdown request failed\n");
        Exit = 1;
      }
    } else {
      std::fprintf(stderr, "cmmload: stats fetch failed: %s\n", Err.c_str());
      Exit = 1;
    }
  }
  if (!Opt.StatsOut.empty() && !StatsJson.empty()) {
    std::ofstream Out(Opt.StatsOut);
    Out << StatsJson << '\n';
    if (!Out) {
      std::fprintf(stderr, "cmmload: cannot write %s\n", Opt.StatsOut.c_str());
      Exit = 1;
    }
  }

  if (Opt.Check) {
    // The reconciliation gate (docs/SERVICE.md § "Observability"): zero
    // failed requests, no protocol or server errors, every admitted run
    // became exactly one engine job, and no session leaked.
    auto check = [&](bool Cond, const char *What) {
      if (!Cond) {
        std::fprintf(stderr, "cmmload: check failed: %s\n", What);
        Exit = 1;
      }
    };
    check(TotalFailures == 0, "failed requests");
    std::optional<JsonValue> Stats = parseJson(StatsJson);
    check(Stats.has_value(), "stats snapshot unparseable");
    if (Stats) {
      check(counterIn(*Stats, "counters", "svc.errors") == 0,
            "svc.errors != 0");
      check(counterIn(*Stats, "counters", "svc.bad_frames") == 0,
            "svc.bad_frames != 0");
      check(counterIn(*Stats, "counters", "svc.requests_run") ==
                counterIn(*Stats, "counters", "engine.jobs"),
            "svc.requests_run != engine.jobs");
      check(counterIn(*Stats, "counters", "engine.jobs_wrong") == 0,
            "engine.jobs_wrong != 0");
      check(counterIn(*Stats, "counters", "engine.jobs_compile_error") == 0,
            "engine.jobs_compile_error != 0");
      check(counterIn(*Stats, "gauges", "svc.sessions_open") == 0,
            "svc.sessions_open != 0 (leaked sessions)");
      check(counterIn(*Stats, "gauges", "svc.inflight") == 0,
            "svc.inflight != 0");
    }
    if (Exit == 0)
      std::printf("cmmload: checks passed\n");
  }

  if (!Suite.writeFile(Opt.BenchOut))
    std::fprintf(stderr, "cmmload: cannot write %s\n", Opt.BenchOut.c_str());
  return Exit;
}
