//===- tools/cmmexd.cpp - The cmmex execution daemon ----------------------===//
//
// Part of cmmex (see DESIGN.md).
//
// A long-lived execution service: accepts framed binary requests
// (svc/Protocol.h) over a Unix or TCP socket and multiplexes them onto one
// batch Engine with per-tenant fuel / deadline / memory quotas
// (docs/SERVICE.md).
//
//   cmmexd --socket PATH [options]         Unix-domain socket
//   cmmexd --tcp PORT [options]            127.0.0.1:PORT (0 = ephemeral)
//
//   --threads N            engine worker threads (0 = hardware)
//   --cache-capacity N     artifact cache entries (default 1024)
//   --cache-dir DIR        persistent artifact cache directory
//   --session-ttl-ms X     idle parked-session expiry (default 60000)
//   --max-frame BYTES      largest accepted frame payload (default 16 MiB)
//   --quota-fuel N         per-segment transition budget ceiling
//   --quota-deadline-ms X  per-segment wall-clock ceiling
//   --quota-mem BYTES      executor memory-footprint ceiling
//   --quota-inflight N     concurrent requests per tenant
//   --quota-sessions N     parked sessions per tenant
//   --snapshots FILE       periodic metrics JSONL (cmmstat-readable)
//   --snapshot-every-ms X  snapshot interval (default 1000)
//   --port-file FILE       write the bound TCP port (for --tcp 0 scripts)
//
// On startup the daemon prints one "cmmexd: listening on ..." line to
// stdout and flushes it, so wrappers can synchronize on readiness. It exits
// on SIGINT/SIGTERM (graceful drain) or after a client ReqShutdown.
//
// Exit status: 0 on a clean shutdown, 1 on setup failure, 2 on usage
// errors.
//
//===----------------------------------------------------------------------===//

#include "svc/Server.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

using namespace cmm;

namespace {

std::atomic<bool> SignalStop{false};

void onSignal(int) { SignalStop.store(true); }

void usage() {
  std::fprintf(stderr,
               "usage: cmmexd (--socket PATH | --tcp PORT) [options]\n"
               "run `cmmexd --help` for the option list\n");
}

bool parseU64(const char *S, uint64_t &Out) {
  char *End = nullptr;
  Out = std::strtoull(S, &End, 10);
  return End && *End == '\0' && End != S;
}

bool parseF64(const char *S, double &Out) {
  char *End = nullptr;
  Out = std::strtod(S, &End);
  return End && *End == '\0' && End != S;
}

} // namespace

int main(int Argc, char **Argv) {
  svc::ServerOptions Opts;
  std::string SnapshotPath, PortFile;
  bool HaveEndpoint = false;

  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto next = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "cmmexd: %s needs a value\n", Flag);
        std::exit(2);
      }
      return Argv[++I];
    };
    auto nextU64 = [&](const char *Flag) {
      uint64_t V;
      if (!parseU64(next(Flag), V)) {
        std::fprintf(stderr, "cmmexd: bad value for %s\n", Flag);
        std::exit(2);
      }
      return V;
    };
    auto nextF64 = [&](const char *Flag) {
      double V;
      if (!parseF64(next(Flag), V)) {
        std::fprintf(stderr, "cmmexd: bad value for %s\n", Flag);
        std::exit(2);
      }
      return V;
    };
    if (A == "--socket") {
      Opts.UnixPath = next("--socket");
      HaveEndpoint = true;
    } else if (A == "--tcp") {
      Opts.UseTcp = true;
      Opts.TcpPort = uint16_t(nextU64("--tcp"));
      HaveEndpoint = true;
    } else if (A == "--threads") {
      Opts.Threads = unsigned(nextU64("--threads"));
    } else if (A == "--cache-capacity") {
      Opts.CacheCapacity = size_t(nextU64("--cache-capacity"));
    } else if (A == "--cache-dir") {
      Opts.CacheDir = next("--cache-dir");
    } else if (A == "--session-ttl-ms") {
      Opts.SessionTtlMillis = nextF64("--session-ttl-ms");
    } else if (A == "--max-frame") {
      Opts.MaxFramePayload = nextU64("--max-frame");
    } else if (A == "--quota-fuel") {
      Opts.Quota.MaxFuel = nextU64("--quota-fuel");
    } else if (A == "--quota-deadline-ms") {
      Opts.Quota.MaxDeadlineMillis = nextF64("--quota-deadline-ms");
    } else if (A == "--quota-mem") {
      Opts.Quota.MaxMemoryBytes = nextU64("--quota-mem");
    } else if (A == "--quota-inflight") {
      Opts.Quota.MaxInFlight = uint32_t(nextU64("--quota-inflight"));
    } else if (A == "--quota-sessions") {
      Opts.Quota.MaxSessions = uint32_t(nextU64("--quota-sessions"));
    } else if (A == "--snapshots") {
      SnapshotPath = next("--snapshots");
    } else if (A == "--snapshot-every-ms") {
      Opts.SnapshotIntervalMillis = nextF64("--snapshot-every-ms");
    } else if (A == "--port-file") {
      PortFile = next("--port-file");
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "cmmexd: unknown option '%s'\n", A.c_str());
      usage();
      return 2;
    }
  }
  if (!HaveEndpoint) {
    usage();
    return 2;
  }

  std::ofstream Snapshots;
  if (!SnapshotPath.empty()) {
    Snapshots.open(SnapshotPath);
    if (!Snapshots) {
      std::fprintf(stderr, "cmmexd: cannot open %s\n", SnapshotPath.c_str());
      return 1;
    }
    Opts.SnapshotTo = &Snapshots;
  }

  svc::Server Srv(std::move(Opts));
  std::string Err;
  if (!Srv.start(&Err)) {
    std::fprintf(stderr, "cmmexd: %s\n", Err.c_str());
    return 1;
  }

  if (Srv.unixPath().empty()) {
    std::printf("cmmexd: listening on 127.0.0.1:%u\n", unsigned(Srv.tcpPort()));
    if (!PortFile.empty()) {
      std::ofstream PF(PortFile);
      PF << Srv.tcpPort() << '\n';
    }
  } else {
    std::printf("cmmexd: listening on %s\n", Srv.unixPath().c_str());
  }
  std::fflush(stdout);

  struct sigaction SA {};
  SA.sa_handler = onSignal;
  sigaction(SIGINT, &SA, nullptr);
  sigaction(SIGTERM, &SA, nullptr);
  signal(SIGPIPE, SIG_IGN);

  // Serve until a signal arrives or a client ReqShutdown drains the
  // server.
  while (!SignalStop.load() && !Srv.stopped())
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

  if (!Srv.stopped())
    std::printf("cmmexd: draining...\n");
  Srv.requestStop();
  Srv.join();
  std::printf("cmmexd: stopped\n");
  return 0;
}
