//===- tools/cmmi.cpp - The C-- interpreter CLI ---------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
// Compile and run C-- source files on the Abstract C-- machine:
//
//   cmmi [options] file.cmm... [-- arg...]
//
//   --entry NAME     procedure to run (default: main)
//   --dispatcher D   front-end runtime for yields: none|unwind|cut
//                    (default: unwind)
//   --optimize       run the optimizer pipeline first
//   --no-stdlib      do not link the %%div standard library
//   --dump-ir        print the Abstract C-- graphs and exit
//   --stats          print machine counters after the run
//
// Exit status: 0 on normal termination, 1 on compile errors, 2 when the
// program goes wrong, 3 on an unhandled yield.
//
//===----------------------------------------------------------------------===//

#include "ir/IrPrinter.h"
#include "ir/Translate.h"
#include "ir/Validate.h"
#include "opt/PassManager.h"
#include "rts/Dispatchers.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace cmm;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: cmmi [options] file.cmm... [-- arg...]\n"
      "  --entry NAME     procedure to run (default: main)\n"
      "  --dispatcher D   none|unwind|cut (default: unwind)\n"
      "  --optimize       run the optimizer pipeline first\n"
      "  --no-stdlib      do not link the %%%%div standard library\n"
      "  --dump-ir        print the Abstract C-- graphs and exit\n"
      "  --stats          print machine counters after the run\n");
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Entry = "main";
  std::string Dispatcher = "unwind";
  bool Optimize = false, StdLib = true, DumpIr = false, ShowStats = false;
  std::vector<std::string> Files;
  std::vector<Value> Args;

  int I = 1;
  for (; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--") {
      ++I;
      break;
    }
    if (A == "--entry" && I + 1 < Argc) {
      Entry = Argv[++I];
    } else if (A == "--dispatcher" && I + 1 < Argc) {
      Dispatcher = Argv[++I];
    } else if (A == "--optimize") {
      Optimize = true;
    } else if (A == "--no-stdlib") {
      StdLib = false;
    } else if (A == "--dump-ir") {
      DumpIr = true;
    } else if (A == "--stats") {
      ShowStats = true;
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "cmmi: unknown option '%s'\n", A.c_str());
      usage();
      return 1;
    } else {
      Files.push_back(A);
    }
  }
  for (; I < Argc; ++I)
    Args.push_back(Value::bits(32, std::strtoull(Argv[I], nullptr, 0)));

  if (Files.empty()) {
    usage();
    return 1;
  }

  std::vector<std::string> Sources;
  for (const std::string &File : Files) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "cmmi: cannot open '%s'\n", File.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Sources.push_back(Buf.str());
  }

  DiagnosticEngine Diags;
  std::unique_ptr<IrProgram> Prog = compileProgram(Sources, Diags, StdLib);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  if (Optimize) {
    OptOptions Opts;
    Opts.PlaceCalleeSaves = true;
    optimizeProgram(*Prog, Opts);
    DiagnosticEngine VDiags;
    if (!validateProgram(*Prog, VDiags)) {
      std::fprintf(stderr, "internal: optimizer broke the graph\n%s",
                   VDiags.str().c_str());
      return 1;
    }
  }
  if (DumpIr) {
    std::printf("%s", printProgram(*Prog).c_str());
    return 0;
  }

  Machine M(*Prog);
  M.start(Entry, std::move(Args));

  MachineStatus St;
  if (Dispatcher == "unwind") {
    UnwindingDispatcher D(M);
    St = runWithRuntime(M, std::ref(D));
  } else if (Dispatcher == "cut") {
    CuttingDispatcher D(M);
    St = runWithRuntime(M, std::ref(D));
  } else if (Dispatcher == "none") {
    St = M.run();
  } else {
    std::fprintf(stderr, "cmmi: unknown dispatcher '%s'\n",
                 Dispatcher.c_str());
    return 1;
  }

  int Exit = 0;
  switch (St) {
  case MachineStatus::Halted: {
    std::string Sep;
    std::printf("%s returned (", Entry.c_str());
    for (const Value &V : M.argArea()) {
      std::printf("%s%s", Sep.c_str(), V.str().c_str());
      Sep = ", ";
    }
    std::printf(")\n");
    break;
  }
  case MachineStatus::Wrong:
    std::fprintf(stderr, "cmmi: program went wrong at %s: %s\n",
                 M.wrongLoc().str().c_str(), M.wrongReason().c_str());
    Exit = 2;
    break;
  case MachineStatus::Suspended:
    std::fprintf(stderr, "cmmi: unhandled yield (tag %llu)\n",
                 static_cast<unsigned long long>(
                     M.argArea().empty() ? 0 : M.argArea()[0].Raw));
    Exit = 3;
    break;
  default:
    std::fprintf(stderr, "cmmi: machine did not finish\n");
    Exit = 2;
  }

  if (ShowStats) {
    const Stats &S = M.stats();
    std::fprintf(stderr,
                 "steps=%llu calls=%llu jumps=%llu returns=%llu cuts=%llu "
                 "yields=%llu loads=%llu stores=%llu max_depth=%llu\n",
                 (unsigned long long)S.Steps, (unsigned long long)S.Calls,
                 (unsigned long long)S.Jumps, (unsigned long long)S.Returns,
                 (unsigned long long)S.Cuts, (unsigned long long)S.Yields,
                 (unsigned long long)S.Loads, (unsigned long long)S.Stores,
                 (unsigned long long)S.MaxStackDepth);
  }
  return Exit;
}
