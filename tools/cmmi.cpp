//===- tools/cmmi.cpp - The C-- interpreter CLI ---------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
// Compile and run C-- source files on the Abstract C-- machine:
//
//   cmmi [options] file.cmm... [-- arg...]
//
// The shared flags (--backend, --optimize, --trace*, --profile, --stats*)
// are parsed by support/Options.h; executors are constructed through
// engine::makeExecutor, the same facade every other tool and test uses.
// Tool-specific flags:
//
//   --entry NAME     procedure to run (default: main)
//   --dispatcher D   front-end runtime for yields: none|unwind|cut
//                    (default: unwind)
//   --no-stdlib      do not link the %%div standard library
//   --dump-ir        print the Abstract C-- graphs and exit
//   --dump-il        print the round-trippable textual IL and exit
//   --dump-bytecode  print the VM bytecode listing and exit
//   --opt-stats      print per-pass wall time and IR deltas (with
//                    --optimize)
//   --emit-artifact F  compile to a `.cmmart` artifact file and exit
//   --load-artifact F  run a `.cmmart` file instead of compiling sources
//   --cache-dir DIR  compile through the persistent artifact cache
//
// Exit status: 0 on normal termination, 1 on compile errors, 2 when the
// program goes wrong, 3 on an unhandled yield.
//
//===----------------------------------------------------------------------===//

#include "engine/ArtifactStore.h"
#include "engine/Engine.h"
#include "ir/IlText.h"
#include "ir/IrPrinter.h"
#include "ir/Translate.h"
#include "ir/Validate.h"
#include "obs/Profiler.h"
#include "obs/StatsJson.h"
#include "obs/Trace.h"
#include "opt/PassManager.h"
#include "rts/Dispatchers.h"
#include "support/Options.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

using namespace cmm;

namespace {

constexpr unsigned CmmiFlags =
    FG_Backend | FG_Trace | FG_Profile | FG_Stats | FG_Opt | FG_Cache;

void usage() {
  std::fprintf(stderr,
               "usage: cmmi [options] file.cmm... [-- arg...]\n"
               "  --entry NAME     procedure to run (default: main)\n"
               "  --dispatcher D   none|unwind|cut (default: unwind)\n"
               "  --no-stdlib      do not link the %%%%div standard library\n"
               "  --dump-ir        print the Abstract C-- graphs and exit\n"
               "  --dump-il        print the textual IL (parseable round-trip\n"
               "                   form) and exit\n"
               "  --emit-artifact F  compile (honouring --optimize) into the\n"
               "                   .cmmart artifact file F and exit\n"
               "  --load-artifact F  run the .cmmart artifact F instead of\n"
               "                   compiling sources\n"
               "  --dump-bytecode  print the VM bytecode listing and exit\n"
               "                   (with --backend=threaded: the fused\n"
               "                   stream with superinstruction names and\n"
               "                   fusion-site counts)\n"
               "%s",
               commonFlagsHelp(CmmiFlags).c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  CommonOptions Common;
  std::string Entry = "main";
  std::string Dispatcher = "unwind";
  bool StdLib = true, DumpIr = false, DumpIl = false, DumpBytecode = false;
  std::string EmitArtifact, LoadArtifact;
  std::vector<std::string> Files;
  std::vector<Value> Args;

  int I = 1;
  for (; I < Argc; ++I) {
    std::string Err;
    switch (parseCommonFlag(Common, CmmiFlags, I, Argc, Argv, Err)) {
    case FlagParse::Consumed:
      continue;
    case FlagParse::Error:
      std::fprintf(stderr, "cmmi: %s\n", Err.c_str());
      return 1;
    case FlagParse::NotMine:
      break;
    }
    std::string A = Argv[I];
    if (A == "--") {
      ++I;
      break;
    }
    if (A == "--entry" && I + 1 < Argc) {
      Entry = Argv[++I];
    } else if (A == "--dispatcher" && I + 1 < Argc) {
      Dispatcher = Argv[++I];
    } else if (A == "--no-stdlib") {
      StdLib = false;
    } else if (A == "--dump-ir") {
      DumpIr = true;
    } else if (A == "--dump-il") {
      DumpIl = true;
    } else if (A == "--emit-artifact" && I + 1 < Argc) {
      EmitArtifact = Argv[++I];
    } else if (A == "--load-artifact" && I + 1 < Argc) {
      LoadArtifact = Argv[++I];
    } else if (A == "--dump-bytecode") {
      DumpBytecode = true;
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "cmmi: unknown option '%s'\n", A.c_str());
      usage();
      return 1;
    } else {
      Files.push_back(A);
    }
  }
  for (; I < Argc; ++I)
    Args.push_back(Value::bits(32, std::strtoull(Argv[I], nullptr, 0)));

  if (Files.empty() && LoadArtifact.empty()) {
    usage();
    return 1;
  }
  if (!Files.empty() && !LoadArtifact.empty()) {
    std::fprintf(stderr,
                 "cmmi: --load-artifact replaces source files; pass one or "
                 "the other\n");
    return 1;
  }
  {
    std::string Err;
    if (!finalizeCommonOptions(Common, CmmiFlags, Err)) {
      std::fprintf(stderr, "cmmi: %s\n", Err.c_str());
      return 1;
    }
  }

  std::vector<std::string> Sources;
  for (const std::string &File : Files) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "cmmi: cannot open '%s'\n", File.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Sources.push_back(Buf.str());
  }

  // The run goes through the engine's job path — the same budgeted loop,
  // observer fan-in, and dispatcher wiring every embedder gets. The cache
  // is off by default (the hand-compiled program is passed directly via
  // Job::Program, keeping the OptReport available for --opt-stats);
  // --cache-dir turns it on so the persistent tier is consulted and
  // populated (docs/ENGINE.md § "Persistent cache").
  engine::EngineOptions EOpts;
  EOpts.Threads = 1;
  EOpts.EnableCache = !Common.CacheDir.empty();
  EOpts.CacheDir = Common.CacheDir;
  engine::Engine Eng(EOpts);

  std::shared_ptr<const engine::ProgramArtifact> Loaded;
  std::unique_ptr<IrProgram> Prog;
  OptReport OptR;
  if (!LoadArtifact.empty()) {
    std::ifstream In(LoadArtifact, std::ios::binary);
    if (!In) {
      std::fprintf(stderr, "cmmi: cannot open '%s'\n", LoadArtifact.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    std::string Bytes = Buf.str();
    std::string Err;
    Loaded = engine::ArtifactStore::deserialize(
        reinterpret_cast<const uint8_t *>(Bytes.data()), Bytes.size(),
        /*ExpectKey=*/nullptr, &Err);
    if (!Loaded) {
      std::fprintf(stderr, "cmmi: invalid artifact '%s': %s\n",
                   LoadArtifact.c_str(), Err.c_str());
      return 1;
    }
  } else if (!Common.CacheDir.empty()) {
    // Through the engine cache, so a repeated invocation loads the stored
    // artifact instead of recompiling. (--opt-stats reports nothing on
    // this path: artifacts do not keep the OptReport.)
    engine::CompileRequest Req;
    Req.Sources = Sources;
    Req.IncludeStdLib = StdLib;
    Req.Optimize = Common.Optimize;
    if (Common.Optimize)
      Req.Opt.PlaceCalleeSaves = true;
    Loaded = Eng.compile(Req);
    if (!Loaded->ok()) {
      std::fprintf(stderr, "%s", Loaded->error().c_str());
      return 1;
    }
  } else {
    // Compiled by hand rather than through engine::compileArtifact because
    // --opt-stats needs the OptReport, which artifacts do not keep.
    DiagnosticEngine Diags;
    Prog = compileProgram(Sources, Diags, StdLib);
    if (!Prog) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      return 1;
    }
    if (Common.Optimize) {
      OptOptions Opts;
      Opts.PlaceCalleeSaves = true;
      OptR = optimizeProgram(*Prog, Opts);
      DiagnosticEngine VDiags;
      if (!validateProgram(*Prog, VDiags)) {
        std::fprintf(stderr, "internal: optimizer broke the graph\n%s",
                     VDiags.str().c_str());
        return 1;
      }
    }
  }
  const IrProgram &ProgRef = Loaded ? *Loaded->program() : *Prog;

  if (!EmitArtifact.empty()) {
    // Compile through the artifact path (same key derivation as the
    // engine's cache) and write the container; --optimize carries the
    // PlaceCalleeSaves configuration cmmi always optimizes with.
    std::shared_ptr<const engine::ProgramArtifact> A = Loaded;
    if (!A) {
      engine::CompileRequest Req;
      Req.Sources = Sources;
      Req.IncludeStdLib = StdLib;
      Req.Optimize = Common.Optimize;
      if (Common.Optimize)
        Req.Opt.PlaceCalleeSaves = true;
      A = engine::compileArtifact(Req);
      if (!A->ok()) {
        std::fprintf(stderr, "cmmi: %s\n", A->error().c_str());
        return 1;
      }
    }
    std::vector<uint8_t> Blob = engine::ArtifactStore::serialize(*A);
    std::ofstream Out(EmitArtifact, std::ios::binary | std::ios::trunc);
    if (!Out ||
        !Out.write(reinterpret_cast<const char *>(Blob.data()),
                   std::streamsize(Blob.size()))) {
      std::fprintf(stderr, "cmmi: cannot write '%s'\n", EmitArtifact.c_str());
      return 1;
    }
    std::fprintf(stderr, "cmmi: wrote %zu bytes (key %s) to %s\n",
                 Blob.size(), A->key().str().c_str(), EmitArtifact.c_str());
    return 0;
  }
  if (DumpIr) {
    std::printf("%s", printProgram(ProgRef).c_str());
    return 0;
  }
  if (DumpIl) {
    std::printf("%s", printIl(ProgRef).c_str());
    return 0;
  }
  if (DumpBytecode) {
    if (Common.Backend == "threaded") {
      // The threaded view: the same listing over the fused key stream,
      // with superinstruction mnemonics and the fusion-site tally.
      auto TP = fuseProgram(std::make_shared<const CompiledProgram>(
          compileToBytecode(ProgRef)));
      for (uint32_t PI = 0; PI < TP->Bytecode->Procs.size(); ++PI)
        std::printf("%s",
                    disassembleThreaded(*TP, PI, *ProgRef.Names).c_str());
      std::printf("fusion: %llu sites fused, %llu candidate pairs unfused\n",
                  (unsigned long long)TP->Fusion.FusedSites,
                  (unsigned long long)TP->Fusion.MissedSites);
      for (const FusionPair &P : FusionTable::supportedPairs())
        if (uint64_t N = TP->Fusion.SitesByOp[size_t(P.Fused)])
          std::printf("  %-14s %llu\n", superOpName(P.Fused),
                      (unsigned long long)N);
      return 0;
    }
    CompiledProgram Compiled = compileToBytecode(ProgRef);
    for (const CompiledProc &C : Compiled.Procs)
      std::printf("%s", disassemble(C, *ProgRef.Names).c_str());
    return 0;
  }

  engine::DispatcherKind DK;
  if (Dispatcher == "unwind")
    DK = engine::DispatcherKind::Unwind;
  else if (Dispatcher == "cut")
    DK = engine::DispatcherKind::Cut;
  else if (Dispatcher == "none")
    DK = engine::DispatcherKind::None;
  else {
    std::fprintf(stderr, "cmmi: unknown dispatcher '%s'\n",
                 Dispatcher.c_str());
    return 1;
  }

  engine::Job J;
  if (Loaded)
    J.Artifact = Loaded;
  else
    J.Program = std::shared_ptr<const IrProgram>(std::move(Prog));
  J.B = *engine::parseBackend(Common.Backend);
  J.Entry = Entry;
  J.Args = std::move(Args);
  J.Dispatcher = DK;

  std::ofstream TraceFileStream;
  if (!Common.TraceFile.empty()) {
    std::ostream *TraceOS = &std::cout;
    if (Common.TraceFile != "-") {
      TraceFileStream.open(Common.TraceFile);
      if (!TraceFileStream) {
        std::fprintf(stderr, "cmmi: cannot write '%s'\n",
                     Common.TraceFile.c_str());
        return 1;
      }
      TraceOS = &TraceFileStream;
    }
    J.TraceTo = TraceOS;
    J.Trace.Fmt = Common.TraceFormat == "chrome"
                      ? TraceOptions::Format::Chrome
                      : TraceOptions::Format::Jsonl;
    J.Trace.IncludeSteps = Common.TraceSteps;
    J.Trace.RingCapacity = Common.TraceRing;
  }
  Profiler Prof;
  if (Common.Profile)
    J.Obs = &Prof; // caller-owned: cmmi needs the text report afterwards

  engine::JobResult R = Eng.runJob(J);
  MachineStatus St = R.Status;

  int Exit = 0;
  switch (St) {
  case MachineStatus::Halted: {
    std::string Sep;
    std::printf("%s returned (", Entry.c_str());
    for (const Value &V : R.Results) {
      std::printf("%s%s", Sep.c_str(), V.str().c_str());
      Sep = ", ";
    }
    std::printf(")\n");
    break;
  }
  case MachineStatus::Wrong:
    std::fprintf(stderr, "cmmi: program went wrong at %s: %s\n",
                 R.WrongLoc.str().c_str(), R.WrongReason.c_str());
    Exit = 2;
    break;
  case MachineStatus::Suspended:
    std::fprintf(stderr, "cmmi: unhandled yield (tag %llu)\n",
                 static_cast<unsigned long long>(
                     R.Results.empty() ? 0 : R.Results[0].Raw));
    Exit = 3;
    break;
  default:
    std::fprintf(stderr, "cmmi: machine did not finish\n");
    Exit = 2;
  }

  if (Common.ShowStats) {
    const Stats &S = R.MachineStats;
    std::fprintf(
        stderr,
        "steps=%llu calls=%llu jumps=%llu returns=%llu cuts=%llu "
        "frames_cut_over=%llu yields=%llu unwind_pops=%llu "
        "conts_bound=%llu loads=%llu stores=%llu callee_save_moves=%llu "
        "max_depth=%llu\n",
        (unsigned long long)S.Steps, (unsigned long long)S.Calls,
        (unsigned long long)S.Jumps, (unsigned long long)S.Returns,
        (unsigned long long)S.Cuts, (unsigned long long)S.FramesCutOver,
        (unsigned long long)S.Yields, (unsigned long long)S.UnwindPops,
        (unsigned long long)S.ContsBound, (unsigned long long)S.Loads,
        (unsigned long long)S.Stores,
        (unsigned long long)S.CalleeSaveMoves,
        (unsigned long long)S.MaxStackDepth);
  }
  if (Common.OptStats && Common.Optimize)
    std::fprintf(stderr, "%s", optReportText(OptR).c_str());
  if (Common.Profile)
    std::fprintf(stderr, "%s", Prof.report().c_str());

  if (!Common.StatsJsonFile.empty()) {
    JsonWriter W;
    W.beginObject();
    W.field("entry", std::string_view(Entry));
    W.field("dispatcher", std::string_view(Dispatcher));
    W.field("status",
            St == MachineStatus::Halted
                ? "halted"
                : (St == MachineStatus::Wrong ? "wrong" : "suspended"));
    W.key("stats");
    writeStatsJson(W, R.MachineStats);
    if (Dispatcher != "none") {
      W.key("rt");
      writeRtStatsJson(W, R.RtWalk, R.RtDispatches);
    }
    if (Common.Optimize) {
      W.key("opt");
      writeOptReportJson(W, OptR);
    }
    if (Common.Profile) {
      W.key("profile");
      Prof.writeJson(W);
    }
    W.endObject();
    if (Common.StatsJsonFile == "-") {
      std::printf("%s\n", W.str().c_str());
    } else {
      std::ofstream Out(Common.StatsJsonFile);
      if (!Out) {
        std::fprintf(stderr, "cmmi: cannot write '%s'\n",
                     Common.StatsJsonFile.c_str());
        return 1;
      }
      Out << W.str() << '\n';
    }
  }
  if (!Common.MetricsJsonFile.empty()) {
    std::string Json = Eng.metricsJson();
    if (Common.MetricsJsonFile == "-") {
      std::printf("%s\n", Json.c_str());
    } else {
      std::ofstream Out(Common.MetricsJsonFile);
      if (!Out) {
        std::fprintf(stderr, "cmmi: cannot write '%s'\n",
                     Common.MetricsJsonFile.c_str());
        return 1;
      }
      Out << Json << '\n';
    }
  }
  return Exit;
}
