//===- tools/cmmi.cpp - The C-- interpreter CLI ---------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
// Compile and run C-- source files on the Abstract C-- machine:
//
//   cmmi [options] file.cmm... [-- arg...]
//
//   --entry NAME     procedure to run (default: main)
//   --backend B      executor backend: walk (reference tree walker) or vm
//                    (bytecode VM; same observable semantics, see
//                    docs/BYTECODE.md). Default: walk
//   --dispatcher D   front-end runtime for yields: none|unwind|cut
//                    (default: unwind)
//   --optimize       run the optimizer pipeline first
//   --no-stdlib      do not link the %%div standard library
//   --dump-ir        print the Abstract C-- graphs and exit
//   --dump-bytecode  print the VM bytecode listing and exit
//   --stats          print all machine counters after the run
//   --stats-json F   write machine/opt/profile stats as JSON to F ("-" for
//                    stdout)
//   --profile        per-procedure and per-call-site profile report
//   --trace F        stream machine events to F ("-" for stdout)
//   --trace-format X jsonl (default) or chrome (chrome://tracing/Perfetto)
//   --trace-steps    include one trace event per machine transition
//   --trace-ring N   keep only the newest N events (flight recorder)
//   --opt-stats      print per-pass wall time and IR deltas (with
//                    --optimize)
//
// Exit status: 0 on normal termination, 1 on compile errors, 2 when the
// program goes wrong, 3 on an unhandled yield.
//
//===----------------------------------------------------------------------===//

#include "ir/IrPrinter.h"
#include "ir/Translate.h"
#include "ir/Validate.h"
#include "obs/Profiler.h"
#include "obs/StatsJson.h"
#include "obs/Trace.h"
#include "opt/PassManager.h"
#include "rts/Dispatchers.h"
#include "sem/Machine.h"
#include "vm/Vm.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

using namespace cmm;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: cmmi [options] file.cmm... [-- arg...]\n"
      "  --entry NAME     procedure to run (default: main)\n"
      "  --backend B      walk|vm (default: walk)\n"
      "  --dispatcher D   none|unwind|cut (default: unwind)\n"
      "  --optimize       run the optimizer pipeline first\n"
      "  --no-stdlib      do not link the %%%%div standard library\n"
      "  --dump-ir        print the Abstract C-- graphs and exit\n"
      "  --dump-bytecode  print the VM bytecode listing and exit\n"
      "  --stats          print all machine counters after the run\n"
      "  --stats-json F   write machine/opt/profile stats as JSON to F\n"
      "                   (\"-\" for stdout)\n"
      "  --profile        per-procedure / per-call-site profile report\n"
      "  --trace F        stream machine events to F (\"-\" for stdout)\n"
      "  --trace-format X jsonl (default) or chrome\n"
      "  --trace-steps    include one trace event per transition\n"
      "  --trace-ring N   keep only the newest N events\n"
      "  --opt-stats      per-pass wall time and IR deltas (needs "
      "--optimize)\n");
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Entry = "main";
  std::string Backend = "walk";
  std::string Dispatcher = "unwind";
  std::string TraceFile, TraceFormat = "jsonl", StatsJsonFile;
  bool Optimize = false, StdLib = true, DumpIr = false, ShowStats = false;
  bool DumpBytecode = false;
  bool Profile = false, TraceSteps = false, OptStats = false;
  size_t TraceRing = 0;
  std::vector<std::string> Files;
  std::vector<Value> Args;

  int I = 1;
  for (; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--") {
      ++I;
      break;
    }
    if (A == "--entry" && I + 1 < Argc) {
      Entry = Argv[++I];
    } else if (A == "--backend" && I + 1 < Argc) {
      Backend = Argv[++I];
    } else if (A.rfind("--backend=", 0) == 0) {
      Backend = A.substr(std::strlen("--backend="));
    } else if (A == "--dump-bytecode") {
      DumpBytecode = true;
    } else if (A == "--dispatcher" && I + 1 < Argc) {
      Dispatcher = Argv[++I];
    } else if (A == "--optimize") {
      Optimize = true;
    } else if (A == "--no-stdlib") {
      StdLib = false;
    } else if (A == "--dump-ir") {
      DumpIr = true;
    } else if (A == "--stats") {
      ShowStats = true;
    } else if (A == "--stats-json" && I + 1 < Argc) {
      StatsJsonFile = Argv[++I];
    } else if (A == "--profile") {
      Profile = true;
    } else if (A == "--trace" && I + 1 < Argc) {
      TraceFile = Argv[++I];
    } else if (A == "--trace-format" && I + 1 < Argc) {
      TraceFormat = Argv[++I];
    } else if (A == "--trace-steps") {
      TraceSteps = true;
    } else if (A == "--trace-ring" && I + 1 < Argc) {
      TraceRing = std::strtoull(Argv[++I], nullptr, 0);
    } else if (A == "--opt-stats") {
      OptStats = true;
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "cmmi: unknown option '%s'\n", A.c_str());
      usage();
      return 1;
    } else {
      Files.push_back(A);
    }
  }
  for (; I < Argc; ++I)
    Args.push_back(Value::bits(32, std::strtoull(Argv[I], nullptr, 0)));

  if (Files.empty()) {
    usage();
    return 1;
  }
  if (TraceFormat != "jsonl" && TraceFormat != "chrome") {
    std::fprintf(stderr, "cmmi: unknown trace format '%s'\n",
                 TraceFormat.c_str());
    return 1;
  }

  std::vector<std::string> Sources;
  for (const std::string &File : Files) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "cmmi: cannot open '%s'\n", File.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Sources.push_back(Buf.str());
  }

  DiagnosticEngine Diags;
  std::unique_ptr<IrProgram> Prog = compileProgram(Sources, Diags, StdLib);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  OptReport OptR;
  if (Optimize) {
    OptOptions Opts;
    Opts.PlaceCalleeSaves = true;
    OptR = optimizeProgram(*Prog, Opts);
    DiagnosticEngine VDiags;
    if (!validateProgram(*Prog, VDiags)) {
      std::fprintf(stderr, "internal: optimizer broke the graph\n%s",
                   VDiags.str().c_str());
      return 1;
    }
  }
  if (DumpIr) {
    std::printf("%s", printProgram(*Prog).c_str());
    return 0;
  }
  if (DumpBytecode) {
    CompiledProgram Compiled = compileToBytecode(*Prog);
    for (const CompiledProc &C : Compiled.Procs)
      std::printf("%s", disassemble(C, *Prog->Names).c_str());
    return 0;
  }

  if (Backend != "walk" && Backend != "vm") {
    std::fprintf(stderr, "cmmi: unknown backend '%s'\n", Backend.c_str());
    return 1;
  }
  std::unique_ptr<Executor> Exec;
  if (Backend == "vm")
    Exec = std::make_unique<VmMachine>(*Prog);
  else
    Exec = std::make_unique<Machine>(*Prog);
  Executor &M = *Exec;

  // Observability: trace sink and profiler fan in through one multiplexer
  // so the uninstrumented run keeps a null observer pointer.
  std::ofstream TraceFileStream;
  std::unique_ptr<TraceSink> Trace;
  if (!TraceFile.empty()) {
    std::ostream *TraceOS = &std::cout;
    if (TraceFile != "-") {
      TraceFileStream.open(TraceFile);
      if (!TraceFileStream) {
        std::fprintf(stderr, "cmmi: cannot write '%s'\n", TraceFile.c_str());
        return 1;
      }
      TraceOS = &TraceFileStream;
    }
    TraceOptions TO;
    TO.Fmt = TraceFormat == "chrome" ? TraceOptions::Format::Chrome
                                     : TraceOptions::Format::Jsonl;
    TO.IncludeSteps = TraceSteps;
    TO.RingCapacity = TraceRing;
    Trace = std::make_unique<TraceSink>(*TraceOS, TO);
  }
  Profiler Prof;
  MultiObserver Multi;
  if (Trace)
    Multi.add(Trace.get());
  if (Profile)
    Multi.add(&Prof);
  if (Multi.size() == 1)
    M.setObserver(Trace ? static_cast<MachineObserver *>(Trace.get())
                        : &Prof);
  else if (!Multi.empty())
    M.setObserver(&Multi);

  M.start(Entry, std::move(Args));

  MachineStatus St;
  RtStats Walk;
  uint64_t Dispatches = 0;
  if (Dispatcher == "unwind") {
    UnwindingDispatcher D(M);
    St = runWithRuntime(M, std::ref(D));
    Walk = D.walkStats();
    Dispatches = D.dispatches();
  } else if (Dispatcher == "cut") {
    CuttingDispatcher D(M);
    St = runWithRuntime(M, std::ref(D));
    Dispatches = D.dispatches();
  } else if (Dispatcher == "none") {
    St = M.run();
  } else {
    std::fprintf(stderr, "cmmi: unknown dispatcher '%s'\n",
                 Dispatcher.c_str());
    return 1;
  }
  if (Trace)
    Trace->finish();

  int Exit = 0;
  switch (St) {
  case MachineStatus::Halted: {
    std::string Sep;
    std::printf("%s returned (", Entry.c_str());
    for (const Value &V : M.argArea()) {
      std::printf("%s%s", Sep.c_str(), V.str().c_str());
      Sep = ", ";
    }
    std::printf(")\n");
    break;
  }
  case MachineStatus::Wrong:
    std::fprintf(stderr, "cmmi: program went wrong at %s: %s\n",
                 M.wrongLoc().str().c_str(), M.wrongReason().c_str());
    Exit = 2;
    break;
  case MachineStatus::Suspended:
    std::fprintf(stderr, "cmmi: unhandled yield (tag %llu)\n",
                 static_cast<unsigned long long>(
                     M.argArea().empty() ? 0 : M.argArea()[0].Raw));
    Exit = 3;
    break;
  default:
    std::fprintf(stderr, "cmmi: machine did not finish\n");
    Exit = 2;
  }

  if (ShowStats) {
    const Stats &S = M.stats();
    std::fprintf(
        stderr,
        "steps=%llu calls=%llu jumps=%llu returns=%llu cuts=%llu "
        "frames_cut_over=%llu yields=%llu unwind_pops=%llu "
        "conts_bound=%llu loads=%llu stores=%llu callee_save_moves=%llu "
        "max_depth=%llu\n",
        (unsigned long long)S.Steps, (unsigned long long)S.Calls,
        (unsigned long long)S.Jumps, (unsigned long long)S.Returns,
        (unsigned long long)S.Cuts, (unsigned long long)S.FramesCutOver,
        (unsigned long long)S.Yields, (unsigned long long)S.UnwindPops,
        (unsigned long long)S.ContsBound, (unsigned long long)S.Loads,
        (unsigned long long)S.Stores,
        (unsigned long long)S.CalleeSaveMoves,
        (unsigned long long)S.MaxStackDepth);
  }
  if (OptStats && Optimize)
    std::fprintf(stderr, "%s", optReportText(OptR).c_str());
  if (Profile)
    std::fprintf(stderr, "%s", Prof.report().c_str());

  if (!StatsJsonFile.empty()) {
    JsonWriter W;
    W.beginObject();
    W.field("entry", std::string_view(Entry));
    W.field("dispatcher", std::string_view(Dispatcher));
    W.field("status",
            St == MachineStatus::Halted
                ? "halted"
                : (St == MachineStatus::Wrong ? "wrong" : "suspended"));
    W.key("stats");
    writeStatsJson(W, M.stats());
    if (Dispatcher != "none") {
      W.key("rt");
      writeRtStatsJson(W, Walk, Dispatches);
    }
    if (Optimize) {
      W.key("opt");
      writeOptReportJson(W, OptR);
    }
    if (Profile) {
      W.key("profile");
      Prof.writeJson(W);
    }
    W.endObject();
    if (StatsJsonFile == "-") {
      std::printf("%s\n", W.str().c_str());
    } else {
      std::ofstream Out(StatsJsonFile);
      if (!Out) {
        std::fprintf(stderr, "cmmi: cannot write '%s'\n",
                     StatsJsonFile.c_str());
        return 1;
      }
      Out << W.str() << '\n';
    }
  }
  return Exit;
}
