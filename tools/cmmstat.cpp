//===- tools/cmmstat.cpp - Engine telemetry analyzer ----------------------===//
//
// Part of cmmex (see DESIGN.md).
//
// Reads the engine's telemetry outputs and prints a human report:
//
//   cmmstat [options] FILE...
//
//   --check    parse and validate only; print one line per file, exit
//              nonzero on any malformed input (the CI smoke test)
//   --json     emit the report as one JSON object instead of text
//
// File kinds are auto-detected per file:
//
//   - a metrics snapshot (cmmi/cmmdiff --metrics-json): a JSON object with
//     "counters"/"gauges"/"histograms";
//   - a snapshot time series (cmmdiff --snapshots): JSONL, one
//     {"t_ms":..,"seq":..,"metrics":{..}} object per line;
//   - a merged Chrome trace (cmmdiff --trace): a JSON array of trace
//     events, from which engine span latencies (queue/compile/run) are
//     re-aggregated into the same log-bucketed histograms the engine uses.
//
// The report covers compile/run latency percentiles, cache hit rates (as a
// curve over time when a series is given), and pool utilization.
//
// Exit status: 0 on success, 1 on malformed input, 2 on usage errors.
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "obs/Metrics.h"
#include "support/MiniJson.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace cmm;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: cmmstat [options] FILE...\n"
               "  --check    parse and validate only (one line per file)\n"
               "  --json     emit the report as JSON\n"
               "  FILE       --metrics-json output, --snapshots JSONL, or a\n"
               "             merged --trace Chrome trace (auto-detected)\n");
}

//===----------------------------------------------------------------------===//
// Parsed inputs
//===----------------------------------------------------------------------===//

/// One metrics snapshot, flattened for reporting.
struct Snapshot {
  double TMs = 0;
  bool Final = false; ///< untimed metrics object: sorts last, skips curve
  std::map<std::string, double> Counters; ///< probes included
  std::map<std::string, double> Gauges;
  /// name -> {count,sum,mean,min,max,p50,p90,p99}
  std::map<std::string, std::map<std::string, double>> Histograms;
};

/// Everything gathered across the input files.
struct Inputs {
  std::vector<Snapshot> Series; ///< time-ordered snapshots (last = final)
  /// Engine span latencies re-aggregated from traces: name -> histogram of
  /// "dur" microseconds, bucketed exactly as the engine buckets.
  std::map<std::string, Histogram> SpanMicros;
  /// Trace-side per-track busy time: tid -> total span micros (pid 0).
  std::map<uint64_t, double> TrackBusyMicros;
  double TraceEndMicros = 0; ///< latest span end seen in any trace
  uint64_t TraceEvents = 0;
  uint64_t MachineEvents = 0; ///< spliced per-job machine events (pid != 0)
};

bool flattenMetrics(const JsonValue &M, Snapshot &Out, std::string &Err) {
  const JsonValue *Counters = M.get("counters");
  const JsonValue *Gauges = M.get("gauges");
  const JsonValue *Hists = M.get("histograms");
  if (!Counters || !Counters->isObject() || !Gauges || !Gauges->isObject() ||
      !Hists || !Hists->isObject()) {
    Err = "metrics object missing counters/gauges/histograms";
    return false;
  }
  for (const auto &[Name, V] : Counters->object()) {
    if (!V.isNumber()) {
      Err = "counter '" + Name + "' is not a number";
      return false;
    }
    Out.Counters[Name] = V.number();
  }
  for (const auto &[Name, V] : Gauges->object()) {
    if (!V.isNumber()) {
      Err = "gauge '" + Name + "' is not a number";
      return false;
    }
    Out.Gauges[Name] = V.number();
  }
  for (const auto &[Name, V] : Hists->object()) {
    if (!V.isObject()) {
      Err = "histogram '" + Name + "' is not an object";
      return false;
    }
    for (const char *Field :
         {"count", "sum", "mean", "min", "max", "p50", "p90", "p99"}) {
      const JsonValue *F = V.get(Field);
      if (!F || !F->isNumber()) {
        Err = "histogram '" + Name + "' missing " + Field;
        return false;
      }
      Out.Histograms[Name][Field] = F->number();
    }
  }
  return true;
}

bool ingestTrace(const JsonValue &Doc, Inputs &In, std::string &Err) {
  const JsonValue *Events = Doc.isArray() ? &Doc : Doc.get("traceEvents");
  if (!Events || !Events->isArray()) {
    Err = "trace document has no event array";
    return false;
  }
  for (const JsonValue &E : Events->array()) {
    if (!E.isObject()) {
      Err = "trace event is not an object";
      return false;
    }
    ++In.TraceEvents;
    double Pid = E.numberAt("pid", 0);
    if (Pid != 0) {
      ++In.MachineEvents;
      continue;
    }
    if (E.strAt("ph") != "X")
      continue;
    double Dur = E.numberAt("dur");
    double End = E.numberAt("ts") + Dur;
    if (End > In.TraceEndMicros)
      In.TraceEndMicros = End;
    In.SpanMicros[E.strAt("name", "?")].record(uint64_t(Dur));
    In.TrackBusyMicros[uint64_t(E.numberAt("tid"))] += Dur;
  }
  return true;
}

/// Parses one file, auto-detecting its kind; appends into \p In.
bool ingestFile(const std::string &Path, Inputs &In, std::string &Err,
                std::string &Kind) {
  std::ifstream F(Path);
  if (!F) {
    Err = "cannot open";
    return false;
  }
  std::ostringstream Buf;
  Buf << F.rdbuf();
  std::string Text = Buf.str();

  // Whole-document parse first: a metrics object or a Chrome trace.
  std::string ParseErr;
  if (std::optional<JsonValue> Doc = parseJson(Text, &ParseErr)) {
    if (Doc->isObject() && Doc->get("counters")) {
      Kind = "metrics";
      Snapshot S;
      S.Final = true;
      if (!flattenMetrics(*Doc, S, Err))
        return false;
      In.Series.push_back(std::move(S));
      return true;
    }
    if (Doc->isArray() || (Doc->isObject() && Doc->get("traceEvents"))) {
      Kind = "trace";
      return ingestTrace(*Doc, In, Err);
    }
    Err = "unrecognized JSON document (no counters, no traceEvents)";
    return false;
  }

  // Not one document: try JSONL snapshot lines.
  Kind = "snapshots";
  std::istringstream Lines(Text);
  std::string Line;
  size_t LineNo = 0, Parsed = 0;
  std::vector<Snapshot> Local;
  while (std::getline(Lines, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    std::optional<JsonValue> Doc = parseJson(Line, &ParseErr);
    if (!Doc || !Doc->isObject()) {
      Err = "line " + std::to_string(LineNo) + ": " +
            (ParseErr.empty() ? "not an object" : ParseErr);
      return false;
    }
    const JsonValue *M = Doc->get("metrics");
    if (!M || !Doc->get("t_ms")) {
      Err = "line " + std::to_string(LineNo) + ": not a snapshot line";
      return false;
    }
    Snapshot S;
    S.TMs = Doc->numberAt("t_ms");
    if (!flattenMetrics(*M, S, Err)) {
      Err = "line " + std::to_string(LineNo) + ": " + Err;
      return false;
    }
    Local.push_back(std::move(S));
    ++Parsed;
  }
  if (Parsed == 0) {
    Err = ParseErr.empty() ? "empty input" : ParseErr;
    return false;
  }
  for (Snapshot &S : Local)
    In.Series.push_back(std::move(S));
  return true;
}

//===----------------------------------------------------------------------===//
// Report
//===----------------------------------------------------------------------===//

double counterOf(const Snapshot &S, const char *Name) {
  auto It = S.Counters.find(Name);
  return It == S.Counters.end() ? 0 : It->second;
}

void textReport(const Inputs &In) {
  if (!In.Series.empty()) {
    const Snapshot &S = In.Series.back();

    if (!S.Histograms.empty()) {
      std::printf("latency histograms (microseconds unless noted):\n");
      std::printf("  %-28s %10s %10s %10s %10s %10s %10s\n", "name", "count",
                  "mean", "p50", "p90", "p99", "max");
      for (const auto &[Name, H] : S.Histograms) {
        auto At = [&](const char *F) { return H.at(F); };
        if (At("count") == 0)
          continue;
        std::printf("  %-28s %10.0f %10.1f %10.0f %10.0f %10.0f %10.0f\n",
                    Name.c_str(), At("count"), At("mean"), At("p50"),
                    At("p90"), At("p99"), At("max"));
      }
    }

    double Lookups = counterOf(S, "cache.lookups");
    if (Lookups > 0) {
      double Hits = counterOf(S, "cache.hits");
      std::printf("\ncache: %.0f lookups, %.0f hits (%.1f%%), %.0f IR "
                  "compiles, %.0f bytecode compiles, %.0f evictions, %.0f "
                  "single-flight joins\n",
                  Lookups, Hits, 100.0 * Hits / Lookups,
                  counterOf(S, "cache.ir_compiles"),
                  counterOf(S, "cache.bytecode_compiles"),
                  counterOf(S, "cache.evictions"),
                  counterOf(S, "cache.singleflight_joins"));
    }

    // Threaded-tier fusion accounting (vm.threaded_* / vm.fusion_* probes;
    // vm.threaded_compile_micros is cumulative, not a histogram).
    double TCompiles = counterOf(S, "vm.threaded_compiles");
    if (TCompiles > 0) {
      double FH = counterOf(S, "vm.fusion_hits");
      double FM = counterOf(S, "vm.fusion_misses");
      std::printf("threaded tier: %.0f fusion passes (%.0f us total), %.0f "
                  "sites fused, %.0f candidate pairs unfused (%.1f%% fused)\n",
                  TCompiles, counterOf(S, "vm.threaded_compile_micros"), FH,
                  FM, FH + FM > 0 ? 100.0 * FH / (FH + FM) : 0.0);
    }

    double Busy = counterOf(S, "pool.busy_micros");
    double Idle = counterOf(S, "pool.idle_micros");
    if (Busy + Idle > 0) {
      auto G = [&](const char *N) {
        auto It = S.Gauges.find(N);
        return It == S.Gauges.end() ? 0.0 : It->second;
      };
      std::printf("pool: %.0f workers, %.0f tasks (%.0f stolen), "
                  "utilization %.1f%% (busy %.1fs / idle %.1fs)\n",
                  G("pool.workers"), counterOf(S, "pool.tasks_executed"),
                  counterOf(S, "pool.tasks_stolen"),
                  100.0 * Busy / (Busy + Idle), Busy / 1e6, Idle / 1e6);
    }

    double Jobs = counterOf(S, "engine.jobs");
    if (Jobs > 0) {
      std::printf("jobs: %.0f total — %.0f halted, %.0f wrong, %.0f "
                  "suspended, %.0f compile errors, %.0f timeouts, %.0f fuel "
                  "exhausted; %.0f resume cycles\n",
                  Jobs, counterOf(S, "engine.jobs_halted"),
                  counterOf(S, "engine.jobs_wrong"),
                  counterOf(S, "engine.jobs_suspended"),
                  counterOf(S, "engine.jobs_compile_error"),
                  counterOf(S, "engine.jobs_timeout"),
                  counterOf(S, "engine.jobs_fuel_exhausted"),
                  counterOf(S, "engine.resume_cycles"));
      // Per-backend buckets (engine.backend_*_jobs).
      double BW = counterOf(S, "engine.backend_walk_jobs");
      double BV = counterOf(S, "engine.backend_vm_jobs");
      double BT = counterOf(S, "engine.backend_threaded_jobs");
      if (BW + BV + BT > 0)
        std::printf("backends: walk %.0f (%.1f%%), vm %.0f (%.1f%%), "
                    "threaded %.0f (%.1f%%)\n",
                    BW, 100.0 * BW / (BW + BV + BT), BV,
                    100.0 * BV / (BW + BV + BT), BT,
                    100.0 * BT / (BW + BV + BT));
    }

    // Service front end (cmmexd), when the snapshot came from one. The
    // svc.requests_run / engine.jobs pair is the reconciliation invariant
    // docs/SERVICE.md defines: with zero errors they must match exactly.
    double SvcReqs = counterOf(S, "svc.requests");
    if (SvcReqs > 0) {
      std::printf("service: %.0f requests (%.0f run, %.0f resume, %.0f "
                  "compile, %.0f stats) over %.0f connections\n",
                  SvcReqs, counterOf(S, "svc.requests_run"),
                  counterOf(S, "svc.requests_resume"),
                  counterOf(S, "svc.requests_compile"),
                  counterOf(S, "svc.requests_stats"),
                  counterOf(S, "svc.connections"));
      std::printf("service errors: %.0f errors, %.0f bad frames, %.0f quota "
                  "rejects; sessions: %.0f parked, %.0f closed, %.0f "
                  "expired; bytes: %.0f in / %.0f out\n",
                  counterOf(S, "svc.errors"), counterOf(S, "svc.bad_frames"),
                  counterOf(S, "svc.quota_rejects"),
                  counterOf(S, "svc.sessions"),
                  counterOf(S, "svc.sessions_closed"),
                  counterOf(S, "svc.sessions_expired"),
                  counterOf(S, "svc.bytes_in"), counterOf(S, "svc.bytes_out"));
      double Run = counterOf(S, "svc.requests_run");
      if (Jobs > 0 && counterOf(S, "svc.errors") == 0 && Run != Jobs)
        std::printf("service RECONCILE FAIL: svc.requests_run %.0f != "
                    "engine.jobs %.0f with zero errors\n",
                    Run, Jobs);
    }

    // Green-threads schedules (sched.*; docs/SCHEDULER.md), when the
    // snapshot came from a scheduler-enabled run. The quiescence
    // invariant: once every schedule has completed, the live / runnable /
    // parked gauges must all have drained back to zero.
    double SchedRuns = counterOf(S, "sched.runs");
    if (SchedRuns > 0) {
      auto G = [&](const char *N) {
        auto It = S.Gauges.find(N);
        return It == S.Gauges.end() ? 0.0 : It->second;
      };
      std::printf("sched: %.0f schedules, %.0f green threads, %.0f context "
                  "switches; %.0f sends / %.0f recvs, %.0f timer waits, "
                  "%.0f joins, %.0f deadlocks\n",
                  SchedRuns, counterOf(S, "sched.threads_spawned"),
                  counterOf(S, "sched.context_switches"),
                  counterOf(S, "sched.chan_sends"),
                  counterOf(S, "sched.chan_recvs"),
                  counterOf(S, "sched.timer_waits"),
                  counterOf(S, "sched.joins"),
                  counterOf(S, "sched.deadlocks"));
      double Live = G("sched.threads_live"), Runnable = G("sched.runnable"),
             ParkedG = G("sched.parked");
      if (Live != 0 || Runnable != 0 || ParkedG != 0)
        std::printf("sched RECONCILE FAIL: quiescent gauges nonzero "
                    "(threads_live %.0f, runnable %.0f, parked %.0f)\n",
                    Live, Runnable, ParkedG);
    }

    // The time dimension: cumulative cache hit rate and queue depth per
    // snapshot. Only timed snapshots belong on the curve; untimed final
    // metrics objects would show up as a bogus t_ms=0 row.
    size_t Timed = 0;
    while (Timed < In.Series.size() && !In.Series[Timed].Final)
      ++Timed;
    if (Timed > 1) {
      std::printf("\ncache hit-rate / queue-depth curve (%zu snapshots):\n",
                  Timed);
      std::printf("  %10s %10s %10s %10s %10s\n", "t_ms", "lookups",
                  "hit%", "queued", "jobs");
      // Downsample to at most 16 rows, always keeping the last.
      size_t N = Timed;
      size_t Step = (N + 15) / 16;
      for (size_t I = 0; I < N; I += Step) {
        size_t Idx = (I + Step >= N) ? N - 1 : I;
        const Snapshot &T = In.Series[Idx];
        double L = counterOf(T, "cache.lookups");
        double H = counterOf(T, "cache.hits");
        auto QIt = T.Gauges.find("pool.queued");
        std::printf("  %10.0f %10.0f %10.1f %10.0f %10.0f\n", T.TMs, L,
                    L > 0 ? 100.0 * H / L : 0.0,
                    QIt == T.Gauges.end() ? 0.0 : QIt->second,
                    counterOf(T, "engine.jobs"));
        if (Idx == N - 1)
          break;
      }
    }
  }

  if (!In.SpanMicros.empty()) {
    std::printf("\ntrace spans (re-bucketed from %llu events, micros):\n",
                static_cast<unsigned long long>(In.TraceEvents));
    std::printf("  %-28s %10s %10s %10s %10s %10s\n", "span", "count",
                "mean", "p50", "p99", "max");
    for (const auto &[Name, H] : In.SpanMicros)
      std::printf("  %-28s %10llu %10.1f %10llu %10llu %10llu\n",
                  Name.c_str(),
                  static_cast<unsigned long long>(H.count()), H.mean(),
                  static_cast<unsigned long long>(H.percentile(50)),
                  static_cast<unsigned long long>(H.percentile(99)),
                  static_cast<unsigned long long>(H.max()));
    if (In.TraceEndMicros > 0 && !In.TrackBusyMicros.empty()) {
      std::printf("trace track occupancy over %.1fs:\n",
                  In.TraceEndMicros / 1e6);
      for (const auto &[Tid, Busy] : In.TrackBusyMicros)
        std::printf("  tid %2llu: %5.1f%%\n",
                    static_cast<unsigned long long>(Tid),
                    100.0 * Busy / In.TraceEndMicros);
    }
    if (In.MachineEvents)
      std::printf("machine events spliced from sampled jobs: %llu\n",
                  static_cast<unsigned long long>(In.MachineEvents));
  }
}

void jsonReport(const Inputs &In) {
  JsonWriter W;
  W.beginObject();
  if (!In.Series.empty()) {
    const Snapshot &S = In.Series.back();
    W.field("snapshots", uint64_t(In.Series.size()));
    W.key("final");
    W.beginObject();
    W.key("counters");
    W.beginObject();
    for (const auto &[Name, V] : S.Counters)
      W.field(Name, V);
    W.endObject();
    W.key("gauges");
    W.beginObject();
    for (const auto &[Name, V] : S.Gauges)
      W.field(Name, V);
    W.endObject();
    W.key("histograms");
    W.beginObject();
    for (const auto &[Name, H] : S.Histograms) {
      W.key(Name);
      W.beginObject();
      for (const auto &[F, V] : H)
        W.field(F, V);
      W.endObject();
    }
    W.endObject();
    W.endObject();
  }
  if (!In.SpanMicros.empty()) {
    W.key("trace_spans");
    W.beginObject();
    for (const auto &[Name, H] : In.SpanMicros) {
      W.key(Name);
      W.beginObject();
      W.field("count", H.count());
      W.field("mean", H.mean());
      W.field("p50", H.percentile(50));
      W.field("p99", H.percentile(99));
      W.field("max", H.max());
      W.endObject();
    }
    W.endObject();
    W.field("trace_events", In.TraceEvents);
    W.field("machine_events", In.MachineEvents);
  }
  W.endObject();
  std::printf("%s\n", W.take().c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  bool Check = false, Json = false;
  std::vector<std::string> Files;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--check") {
      Check = true;
    } else if (A == "--json") {
      Json = true;
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "cmmstat: unknown option '%s'\n", A.c_str());
      usage();
      return 2;
    } else {
      Files.push_back(A);
    }
  }
  if (Files.empty()) {
    usage();
    return 2;
  }

  Inputs In;
  bool AnyBad = false;
  for (const std::string &Path : Files) {
    std::string Err, Kind;
    if (!ingestFile(Path, In, Err, Kind)) {
      std::fprintf(stderr, "cmmstat: %s: %s\n", Path.c_str(), Err.c_str());
      AnyBad = true;
      continue;
    }
    if (Check)
      std::printf("%s: ok (%s)\n", Path.c_str(), Kind.c_str());
  }
  if (AnyBad)
    return 1;
  if (Check)
    return 0;

  // Snapshot series may arrive across files; keep them time-ordered.
  std::stable_sort(In.Series.begin(), In.Series.end(),
                   [](const Snapshot &A, const Snapshot &B) {
                     if (A.Final != B.Final)
                       return B.Final; // final metrics objects sort last
                     return A.TMs < B.TMs;
                   });
  if (Json)
    jsonReport(In);
  else
    textReport(In);
  return 0;
}
