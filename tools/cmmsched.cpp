//===- tools/cmmsched.cpp - Green-threads scheduler CLI -------------------===//
//
// Part of cmmex (see DESIGN.md).
//
// Run a C-- program as an M:N schedule of green threads
// (docs/SCHEDULER.md): the entry procedure becomes green thread 1, and the
// guest spawns, channels, sleeps, and joins through the yield vocabulary of
// rts/SchedFormat.h.
//
//   cmmsched [options] file.cmm... [-- arg...]
//
//   --entry NAME     procedure to run (default: main)
//   --drivers N      host driver threads (default: 1)
//   --slice-fuel N   transitions per cooperative slice (default: 16384)
//   --max-threads N  spawn guard (default: 1048576)
//   --dispatcher D   runtime for non-scheduler yields: none|unwind|cut
//                    (default: none)
//   --sched-stats    print schedule counters (threads, switches, steps,
//                    switch throughput) to stderr
//
// Exit status mirrors cmmi: 0 halted, 1 compile error, 2 went wrong (or
// deadlocked / fuel-exhausted), 3 unhandled yield.
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"
#include "support/Options.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace cmm;

namespace {

constexpr unsigned CmmschedFlags = FG_Backend | FG_Stats;

void usage() {
  std::fprintf(stderr,
               "usage: cmmsched [options] file.cmm... [-- arg...]\n"
               "  --entry NAME     procedure to run (default: main)\n"
               "  --drivers N      host driver threads (default: 1)\n"
               "  --slice-fuel N   transitions per cooperative slice\n"
               "                   (default: 16384)\n"
               "  --max-threads N  spawn guard (default: 1048576)\n"
               "  --dispatcher D   none|unwind|cut for non-scheduler yields\n"
               "                   (default: none)\n"
               "  --sched-stats    print schedule counters to stderr\n"
               "%s",
               commonFlagsHelp(CmmschedFlags).c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  CommonOptions Common;
  std::string Entry = "main";
  std::string Dispatcher = "none";
  unsigned Drivers = 1;
  uint64_t SliceFuel = 1 << 14;
  uint64_t MaxThreads = 1 << 20;
  bool SchedStats = false;
  std::vector<std::string> Files;
  std::vector<Value> Args;

  int I = 1;
  for (; I < Argc; ++I) {
    std::string Err;
    switch (parseCommonFlag(Common, CmmschedFlags, I, Argc, Argv, Err)) {
    case FlagParse::Consumed:
      continue;
    case FlagParse::Error:
      std::fprintf(stderr, "cmmsched: %s\n", Err.c_str());
      return 1;
    case FlagParse::NotMine:
      break;
    }
    std::string A = Argv[I];
    if (A == "--") {
      ++I;
      break;
    }
    if (A == "--entry" && I + 1 < Argc) {
      Entry = Argv[++I];
    } else if (A == "--drivers" && I + 1 < Argc) {
      Drivers = unsigned(std::strtoul(Argv[++I], nullptr, 0));
    } else if (A == "--slice-fuel" && I + 1 < Argc) {
      SliceFuel = std::strtoull(Argv[++I], nullptr, 0);
    } else if (A == "--max-threads" && I + 1 < Argc) {
      MaxThreads = std::strtoull(Argv[++I], nullptr, 0);
    } else if (A == "--dispatcher" && I + 1 < Argc) {
      Dispatcher = Argv[++I];
    } else if (A == "--sched-stats") {
      SchedStats = true;
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "cmmsched: unknown option '%s'\n", A.c_str());
      usage();
      return 1;
    } else {
      Files.push_back(A);
    }
  }
  for (; I < Argc; ++I)
    Args.push_back(Value::bits(32, std::strtoull(Argv[I], nullptr, 0)));

  if (Files.empty()) {
    usage();
    return 1;
  }
  if (Dispatcher != "none" && Dispatcher != "unwind" && Dispatcher != "cut") {
    std::fprintf(stderr, "cmmsched: unknown dispatcher '%s'\n",
                 Dispatcher.c_str());
    return 1;
  }
  {
    std::string Err;
    if (!finalizeCommonOptions(Common, CmmschedFlags, Err)) {
      std::fprintf(stderr, "cmmsched: %s\n", Err.c_str());
      return 1;
    }
  }

  engine::Job J;
  for (const std::string &File : Files) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "cmmsched: cannot open '%s'\n", File.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    J.Request.Sources.push_back(Buf.str());
  }
  J.B = *engine::parseBackend(Common.Backend);
  J.Entry = Entry;
  J.Args = std::move(Args);
  J.Dispatcher = Dispatcher == "unwind" ? engine::DispatcherKind::Unwind
                 : Dispatcher == "cut"  ? engine::DispatcherKind::Cut
                                        : engine::DispatcherKind::None;
  J.Sched.Enabled = true;
  J.Sched.Drivers = Drivers;
  J.Sched.SliceFuel = SliceFuel;
  J.Sched.MaxThreads = MaxThreads;

  engine::EngineOptions EOpts;
  EOpts.Threads = Drivers > 1 ? Drivers : 1;
  engine::Engine Eng(EOpts);

  auto T0 = std::chrono::steady_clock::now();
  engine::JobResult R = Eng.runJob(J);
  double Secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - T0)
                    .count();

  if (!R.CompileError.empty()) {
    std::fprintf(stderr, "%s", R.CompileError.c_str());
    return 1;
  }

  int Exit = 0;
  switch (R.Status) {
  case MachineStatus::Halted: {
    std::string Sep;
    std::printf("%s returned (", Entry.c_str());
    for (const Value &V : R.Results) {
      std::printf("%s%s", Sep.c_str(), V.str().c_str());
      Sep = ", ";
    }
    std::printf(")\n");
    break;
  }
  case MachineStatus::Wrong:
    std::fprintf(stderr, "cmmsched: schedule went wrong at %s: %s\n",
                 R.WrongLoc.str().c_str(), R.WrongReason.c_str());
    Exit = 2;
    break;
  case MachineStatus::Suspended:
    std::fprintf(stderr, "cmmsched: %s\n",
                 R.WrongReason.empty() ? "unhandled yield"
                                       : R.WrongReason.c_str());
    Exit = 3;
    break;
  default:
    std::fprintf(stderr, "cmmsched: %s\n",
                 R.Deadlocked ? R.WrongReason.c_str()
                              : "schedule exhausted its fuel");
    Exit = 2;
    break;
  }

  if (SchedStats || Common.ShowStats)
    std::fprintf(stderr,
                 "threads=%llu switches=%llu steps=%llu drivers=%u "
                 "run_secs=%.3f switches_per_sec=%.0f\n",
                 (unsigned long long)R.SchedThreads,
                 (unsigned long long)R.SchedSwitches,
                 (unsigned long long)R.MachineStats.Steps, Drivers, Secs,
                 Secs > 0 ? double(R.SchedSwitches) / Secs : 0.0);

  if (!Common.MetricsJsonFile.empty()) {
    std::string Json = Eng.metricsJson();
    if (Common.MetricsJsonFile == "-") {
      std::printf("%s\n", Json.c_str());
    } else {
      std::ofstream Out(Common.MetricsJsonFile);
      if (!Out) {
        std::fprintf(stderr, "cmmsched: cannot write '%s'\n",
                     Common.MetricsJsonFile.c_str());
        return 1;
      }
      Out << Json << '\n';
    }
  }
  return Exit;
}
