//===- tools/cmmdiff.cpp - Differential fuzzing driver --------------------===//
//
// Part of cmmex (see DESIGN.md).
//
// Cross-checks the paper's central claim: one seed, rendered under every
// exception-dispatch strategy and compiled under every optimizer
// configuration, must compute one answer (docs/DIFFTEST.md):
//
//   cmmdiff [options]
//
//   --seeds A..B       seed range, inclusive..exclusive (default 0..500)
//   --threads N        worker threads (default: hardware concurrency)
//   --cache-dir DIR    persistent artifact cache (docs/ENGINE.md)
//   --procs N          call-chain depth per program
//   --stmts N          statements per block
//   --raise-pct N      probability the leaf raises (percent)
//   --wrong-pct N      chance per statement of an unguarded division
//   --no-checked-div   disable %%divu/%%modu statements
//   --no-prims         disable %divu/%shra/... expressions
//   --no-handlers      generate raise-free programs
//   --no-vm            skip the bytecode-VM and threaded conformance columns
//   --scheduled        add the scheduled-vs-direct column (green threads)
//   --minimize SEED    shrink SEED's divergence to a small reproducer
//   --repro-out FILE   where --minimize writes the .cmm ("-" for stdout)
//   --require-ablation fail unless the also-edges ablation diverged
//   -v                 print every divergence as it is found
//
// Telemetry (docs/OBSERVABILITY.md § "Engine telemetry"; analyze the
// outputs with cmmstat):
//
//   --metrics-json F     final engine metrics snapshot ("-" for stdout)
//   --snapshots F        periodic metrics snapshots, one JSON line each
//   --snapshot-interval MS   snapshot period in milliseconds (default 500)
//   --trace F            merged Chrome trace of job lifecycle spans
//   --trace-sample N     with --trace: full machine events for every Nth job
//
// Exit status: 0 when every seed agrees (and, with --require-ablation, the
// Table 3 ablation was caught diverging at least once); 1 on unexpected
// divergences; 2 on usage errors.
//
//===----------------------------------------------------------------------===//

#include "costmodel/DiffHarness.h"
#include "engine/Engine.h"
#include "support/Options.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

using namespace cmm;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: cmmdiff [options]\n"
      "  --seeds A..B       seed range, inclusive..exclusive (default "
      "0..500)\n"
      "  --threads N        worker threads (default: hardware concurrency)\n"
      "  --cache-dir DIR    persistent artifact cache directory\n"
      "  --procs N          call-chain depth per program\n"
      "  --stmts N          statements per block\n"
      "  --raise-pct N      probability the leaf raises (percent)\n"
      "  --wrong-pct N      chance per statement of an unguarded division\n"
      "  --no-checked-div   disable %%%%divu/%%%%modu statements\n"
      "  --no-prims         disable %%divu/%%shra/... expressions\n"
      "  --no-handlers      generate raise-free programs\n"
      "  --no-vm            skip the bytecode-VM and threaded conformance columns\n"
      "  --scheduled        add the scheduled-vs-direct column: each seed\n"
      "                     also runs as a green thread under the M:N\n"
      "                     scheduler and must match the direct outcome\n"
      "  --minimize SEED    shrink SEED's divergence to a reproducer\n"
      "  --repro-out FILE   where --minimize writes the .cmm (\"-\" "
      "stdout)\n"
      "  --require-ablation fail unless the also-edges ablation diverged\n"
      "  -v                 print every divergence as it is found\n"
      "  --metrics-json F   final engine metrics snapshot (\"-\" stdout)\n"
      "  --snapshots F      periodic metrics snapshots (JSONL)\n"
      "  --snapshot-interval MS  snapshot period (default 500)\n"
      "  --trace F          merged Chrome trace of job lifecycle spans\n"
      "  --trace-sample N   with --trace: machine events for every Nth "
      "job\n");
}

bool parseRange(const std::string &Spec, uint64_t &Lo, uint64_t &Hi) {
  size_t Dots = Spec.find("..");
  if (Dots == std::string::npos)
    return false;
  char *End = nullptr;
  Lo = std::strtoull(Spec.c_str(), &End, 0);
  if (End != Spec.c_str() + Dots)
    return false;
  const char *HiStr = Spec.c_str() + Dots + 2;
  Hi = std::strtoull(HiStr, &End, 0);
  return *End == '\0' && Lo < Hi;
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t SeedLo = 0, SeedHi = 500;
  CommonOptions Common;
  DiffOptions Opts;
  bool Verbose = false, RequireAblation = false;
  bool Minimize = false;
  uint64_t MinimizeSeed = 0;
  std::string ReproOut = "-";
  std::string MetricsJson, SnapshotsFile, TraceFile;
  double SnapshotIntervalMs = 500;
  uint64_t TraceSample = 0;

  for (int I = 1; I < Argc; ++I) {
    std::string Err;
    switch (parseCommonFlag(Common, FG_Threads | FG_Cache, I, Argc, Argv,
                            Err)) {
    case FlagParse::Consumed:
      continue;
    case FlagParse::Error:
      std::fprintf(stderr, "cmmdiff: %s\n", Err.c_str());
      return 2;
    case FlagParse::NotMine:
      break;
    }
    std::string A = Argv[I];
    auto NextArg = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (A == "--seeds") {
      const char *V = NextArg();
      if (!V || !parseRange(V, SeedLo, SeedHi)) {
        std::fprintf(stderr, "cmmdiff: --seeds wants A..B with A < B\n");
        return 2;
      }
    } else if (A == "--procs") {
      const char *V = NextArg();
      if (!V) {
        usage();
        return 2;
      }
      Opts.Gen.NumProcs = static_cast<unsigned>(std::strtoul(V, nullptr, 0));
      if (Opts.Gen.NumProcs < 2)
        Opts.Gen.NumProcs = 2;
    } else if (A == "--stmts") {
      const char *V = NextArg();
      if (!V) {
        usage();
        return 2;
      }
      Opts.Gen.StmtsPerBlock =
          static_cast<unsigned>(std::strtoul(V, nullptr, 0));
    } else if (A == "--raise-pct") {
      const char *V = NextArg();
      if (!V) {
        usage();
        return 2;
      }
      Opts.Gen.RaiseChancePct =
          static_cast<unsigned>(std::strtoul(V, nullptr, 0));
    } else if (A == "--wrong-pct") {
      const char *V = NextArg();
      if (!V) {
        usage();
        return 2;
      }
      Opts.Gen.WrongChancePct =
          static_cast<unsigned>(std::strtoul(V, nullptr, 0));
    } else if (A == "--no-checked-div") {
      Opts.Gen.UseCheckedDiv = false;
    } else if (A == "--no-prims") {
      Opts.Gen.UsePrims = false;
    } else if (A == "--no-handlers") {
      Opts.Gen.UseHandlers = false;
    } else if (A == "--no-vm") {
      Opts.CheckVm = false;
    } else if (A == "--scheduled") {
      Opts.CheckScheduled = true;
    } else if (A == "--minimize") {
      const char *V = NextArg();
      if (!V) {
        usage();
        return 2;
      }
      Minimize = true;
      MinimizeSeed = std::strtoull(V, nullptr, 0);
    } else if (A == "--repro-out") {
      const char *V = NextArg();
      if (!V) {
        usage();
        return 2;
      }
      ReproOut = V;
    } else if (A == "--metrics-json") {
      const char *V = NextArg();
      if (!V) {
        usage();
        return 2;
      }
      MetricsJson = V;
    } else if (A == "--snapshots") {
      const char *V = NextArg();
      if (!V) {
        usage();
        return 2;
      }
      SnapshotsFile = V;
    } else if (A == "--snapshot-interval") {
      const char *V = NextArg();
      if (!V) {
        usage();
        return 2;
      }
      SnapshotIntervalMs = std::strtod(V, nullptr);
    } else if (A == "--trace") {
      const char *V = NextArg();
      if (!V) {
        usage();
        return 2;
      }
      TraceFile = V;
    } else if (A == "--trace-sample") {
      const char *V = NextArg();
      if (!V) {
        usage();
        return 2;
      }
      TraceSample = std::strtoull(V, nullptr, 0);
    } else if (A == "--require-ablation") {
      RequireAblation = true;
    } else if (A == "-v" || A == "--verbose") {
      Verbose = true;
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "cmmdiff: unknown option '%s'\n", A.c_str());
      usage();
      return 2;
    }
  }

  if (Minimize) {
    std::optional<DiffRepro> R = minimizeDivergence(MinimizeSeed, Opts);
    if (!R) {
      std::fprintf(stderr, "cmmdiff: seed %llu does not diverge\n",
                   static_cast<unsigned long long>(MinimizeSeed));
      return 1;
    }
    std::fprintf(stderr,
                 "cmmdiff: minimized seed %llu to procs=%u stmts=%u "
                 "[%s / %s]\n  %s\n",
                 static_cast<unsigned long long>(MinimizeSeed),
                 R->Gen.NumProcs, R->Gen.StmtsPerBlock,
                 dispatchTechniqueName(R->Strategy), R->Config.c_str(),
                 R->Detail.c_str());
    if (ReproOut == "-") {
      std::printf("%s", R->Source.c_str());
    } else {
      std::ofstream Out(ReproOut);
      if (!Out) {
        std::fprintf(stderr, "cmmdiff: cannot write '%s'\n",
                     ReproOut.c_str());
        return 2;
      }
      Out << R->Source;
      std::fprintf(stderr, "cmmdiff: wrote %s\n", ReproOut.c_str());
    }
    return 0;
  }

  // The sweep runs on the batch engine: its work-stealing pool claims seeds
  // from one shared cursor (so slow seeds don't stall a fixed-stride
  // partition), and its content-hash cache interns each (strategy, config)
  // cell's compile across the inputs and backends of a seed. Every cell run
  // goes through Engine::runJob, so the telemetry streams below see real
  // job lifecycles.
  std::ofstream SnapshotStream, TraceStream;
  engine::EngineOptions EOpts;
  EOpts.Threads = Common.Threads;
  EOpts.CacheDir = Common.CacheDir;
  if (!SnapshotsFile.empty()) {
    SnapshotStream.open(SnapshotsFile);
    if (!SnapshotStream) {
      std::fprintf(stderr, "cmmdiff: cannot write '%s'\n",
                   SnapshotsFile.c_str());
      return 2;
    }
    EOpts.SnapshotTo = &SnapshotStream;
    EOpts.SnapshotIntervalMillis = SnapshotIntervalMs;
  }
  if (!TraceFile.empty()) {
    TraceStream.open(TraceFile);
    if (!TraceStream) {
      std::fprintf(stderr, "cmmdiff: cannot write '%s'\n", TraceFile.c_str());
      return 2;
    }
    EOpts.TraceTo = &TraceStream;
    EOpts.TraceMachineSample = unsigned(TraceSample);
  }
  engine::Engine Eng(EOpts);
  Opts.Eng = &Eng;

  std::mutex Mu;
  uint64_t SeedsRun = 0, RunsExecuted = 0, AblationSeeds = 0;
  std::vector<DiffDivergence> Unexpected;
  std::vector<uint64_t> UnexpectedSeeds;

  Eng.pool().parallelFor(SeedLo, SeedHi, [&](uint64_t Seed) {
    DiffSeedResult R = diffTestSeed(Seed, Opts);
    std::lock_guard<std::mutex> Lock(Mu);
    ++SeedsRun;
    RunsExecuted += R.RunsExecuted;
    if (R.ablationDiverged())
      ++AblationSeeds;
    bool SeedHadUnexpected = false;
    for (DiffDivergence &D : R.Divergences) {
      if (Verbose || !D.Expected)
        std::fprintf(stderr, "%s\n", D.str().c_str());
      if (!D.Expected) {
        SeedHadUnexpected = true;
        Unexpected.push_back(std::move(D));
      }
    }
    if (SeedHadUnexpected)
      UnexpectedSeeds.push_back(Seed);
  });

  std::fprintf(stderr,
               "cmmdiff: %llu seeds, %llu runs (%zu strategies x %zu "
               "configs x %d backends), %zu unexpected divergences, "
               "ablation diverged on %llu seeds\n",
               static_cast<unsigned long long>(SeedsRun),
               static_cast<unsigned long long>(RunsExecuted),
               std::size(AllDispatchTechniques), diffOptConfigs().size(),
               Opts.CheckVm ? 3 : 1, Unexpected.size(),
               static_cast<unsigned long long>(AblationSeeds));
  engine::CacheStats CS = Eng.cacheStats();
  std::fprintf(stderr,
               "cmmdiff: artifact cache: %llu lookups, %llu hits, %llu "
               "misses (%llu single-flight joins), %llu IR compiles, %llu "
               "bytecode compiles, %llu fusion passes\n",
               static_cast<unsigned long long>(CS.Lookups),
               static_cast<unsigned long long>(CS.Hits),
               static_cast<unsigned long long>(CS.Misses),
               static_cast<unsigned long long>(CS.SingleFlightJoins),
               static_cast<unsigned long long>(CS.IrCompiles),
               static_cast<unsigned long long>(CS.BytecodeCompiles),
               static_cast<unsigned long long>(CS.ThreadedCompiles));
  if (!Common.CacheDir.empty())
    std::fprintf(stderr,
                 "cmmdiff: disk tier (%s): %llu hits, %llu writes, %llu "
                 "errors\n",
                 Common.CacheDir.c_str(),
                 static_cast<unsigned long long>(CS.DiskHits),
                 static_cast<unsigned long long>(CS.DiskWrites),
                 static_cast<unsigned long long>(CS.DiskErrors));
  std::fprintf(stderr,
               "cmmdiff: pool: %u workers, %llu tasks (%llu stolen)\n",
               Eng.threadCount(),
               static_cast<unsigned long long>(Eng.pool().executed()),
               static_cast<unsigned long long>(Eng.pool().stolen()));
  if (!MetricsJson.empty()) {
    std::string Json = Eng.metricsJson();
    if (MetricsJson == "-") {
      std::printf("%s\n", Json.c_str());
    } else {
      std::ofstream Out(MetricsJson);
      if (!Out) {
        std::fprintf(stderr, "cmmdiff: cannot write '%s'\n",
                     MetricsJson.c_str());
        return 2;
      }
      Out << Json << '\n';
    }
  }
  if (!UnexpectedSeeds.empty()) {
    std::string List;
    for (size_t I = 0; I < UnexpectedSeeds.size() && I < 20; ++I)
      List += (I ? ", " : "") + std::to_string(UnexpectedSeeds[I]);
    std::fprintf(stderr,
                 "cmmdiff: diverging seeds: %s%s\n"
                 "cmmdiff: shrink one with --minimize SEED\n",
                 List.c_str(), UnexpectedSeeds.size() > 20 ? ", ..." : "");
    return 1;
  }
  if (RequireAblation && AblationSeeds == 0) {
    std::fprintf(stderr,
                 "cmmdiff: the also-edges ablation never diverged — the "
                 "Table 3 soundness check has lost its teeth\n");
    return 1;
  }
  return 0;
}
