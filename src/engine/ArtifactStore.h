//===- engine/ArtifactStore.h - On-disk artifact store ----------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent tier of the artifact cache: content-addressed `.cmmart`
/// files in a caller-chosen directory (EngineOptions::CacheDir,
/// docs/ENGINE.md § "Persistent cache"). One file per cache key, named by
/// the key's 32-hex-digit spelling, holding the `cmmex-artifact-v2`
/// container: the canonical IR encoding (ir/Serialize.h) plus the compiled
/// bytecode (vm/BytecodeIO.h), checksummed and key-stamped.
///
/// The store is deliberately forgiving on the read side — a missing,
/// truncated, corrupt, stale-version, or wrong-key file is reported as "not
/// in the store" and the caller recompiles — and strict on the write side:
/// files appear atomically (write to a temp name, then rename), so a
/// concurrent reader sees either nothing or a complete artifact, and only
/// ok() artifacts are ever written (errored compiles never poison the
/// store).
///
//===----------------------------------------------------------------------===//

#ifndef CMM_ENGINE_ARTIFACTSTORE_H
#define CMM_ENGINE_ARTIFACTSTORE_H

#include "engine/Engine.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cmm::engine {

class ArtifactStore {
public:
  /// The container tag; also the first bytes of every `.cmmart` file.
  /// Bumped together with IrFormatVersion / BytecodeFormatVersion whenever
  /// any layer of the encoding changes.
  static constexpr char Magic[] = "cmmex-artifact-v2";
  static constexpr uint32_t ContainerVersion = 2;

  /// File name for \p Key within a store directory: `<keyhex>.cmmart`.
  static std::string fileName(const CacheKey &Key);
  /// Full path of \p Key 's artifact under \p Dir.
  static std::string filePath(const std::string &Dir, const CacheKey &Key);

  /// Encodes \p A as one self-contained container blob. Precondition:
  /// A.ok(). Compiles the bytecode eagerly (through A.bytecode()) so a
  /// disk-warm load skips both the front end and the bytecode compiler.
  static std::vector<uint8_t> serialize(const ProgramArtifact &A);

  /// Decodes a container blob. When \p ExpectKey is non-null the stamped
  /// key must match it. Returns null with \p Err set (when non-null) on any
  /// validation failure. \p BcCounter / \p TCounters seed the artifact's
  /// shared accounting blocks exactly as populateArtifact does for compiled
  /// artifacts. Decoding interns symbols into the program's interner, so
  /// call this before publishing the artifact to other threads.
  static std::shared_ptr<ProgramArtifact>
  deserialize(const uint8_t *Data, size_t Size, const CacheKey *ExpectKey,
              std::string *Err = nullptr,
              std::shared_ptr<std::atomic<uint64_t>> BcCounter = nullptr,
              std::shared_ptr<ThreadedCounters> TCounters = nullptr);

  /// Serializes \p A (which must be ok()) into `Dir/<keyhex>.cmmart`,
  /// creating \p Dir as needed. The file is written to a temporary name and
  /// renamed into place, so readers never observe a partial artifact.
  /// Returns false with \p Err set (when non-null) on I/O failure.
  static bool writeFile(const std::string &Dir, const ProgramArtifact &A,
                        std::string *Err = nullptr);

  /// Loads `Dir/<keyhex>.cmmart` if present and valid. Returns null either
  /// way otherwise; \p Err (when non-null) is set only when the file
  /// existed but failed validation — a plain miss leaves it empty, so
  /// callers can count corruption separately from cold starts.
  static std::shared_ptr<ProgramArtifact>
  loadFile(const std::string &Dir, const CacheKey &Key,
           std::string *Err = nullptr,
           std::shared_ptr<std::atomic<uint64_t>> BcCounter = nullptr,
           std::shared_ptr<ThreadedCounters> TCounters = nullptr);
};

} // namespace cmm::engine

#endif // CMM_ENGINE_ARTIFACTSTORE_H
