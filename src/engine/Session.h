//===- engine/Session.h - Parked suspended jobs -----------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A JobSession is a job whose executor outlives its first run segment:
/// Engine::startSession runs a Job exactly like Engine::runJob, but when
/// the program yields and no in-process dispatcher services the suspension,
/// the live executor is parked here instead of discarded. The caller then
/// plays the role of the front-end run-time system — one Table 1 operation
/// at a time, possibly from another thread, possibly across a protocol
/// boundary (src/svc resumes sessions over the wire; docs/SERVICE.md
/// § "Sessions").
///
/// A session advances in segments. Each segment call takes a RunBudget
/// (fuel / deadline / memory quota, engine/RunBudget.h) and returns a
/// JobResult describing where the job now stands:
///
///   - resumeRaw: one Table 1 resume (return / also-unwinds / cut), then
///     run until the next suspension, a terminal status, or the budget.
///   - unwindTop: the Table 1 stack-walk primitive — pops activations while
///     staying suspended (no execution).
///   - dispatchOnce: service the current yield with one of the engine's
///     built-in dispatchers (rts/Dispatchers.h), then run to the next
///     suspension. Driving every yield through dispatchOnce produces
///     byte-identical observables to Engine::runJob with the same
///     DispatcherKind — the wire-parity contract tests/ServiceTest.cpp
///     pins. The dispatcher object persists across segments, so its
///     cumulative walk statistics match the in-process run too.
///   - continueRun: no resume, just more budget (a segment that stopped on
///     fuel/deadline/memory picks up where it left off).
///
/// Sessions are NOT thread-safe: like the executor they wrap, a session is
/// one C-- thread and must be driven by one host thread at a time (the
/// service layer serializes per-session access). A session must not
/// outlive its Engine. Metrics: a session counts one engine.jobs at start
/// and exactly one outcome counter when it finishes — at its terminal
/// segment, or at destruction for sessions abandoned mid-flight.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_ENGINE_SESSION_H
#define CMM_ENGINE_SESSION_H

#include "engine/Engine.h"
#include "engine/RunBudget.h"
#include "rts/Dispatchers.h"

#include <memory>

namespace cmm::engine {

class JobSession {
public:
  ~JobSession();
  JobSession(const JobSession &) = delete;
  JobSession &operator=(const JobSession &) = delete;

  /// The engine-wide job id (same id space as submitted jobs).
  uint64_t id() const { return Id; }
  Backend backend() const { return B; }

  /// True once the job reached Halted or Wrong; no further segment may run.
  bool done() const { return Done; }
  MachineStatus status() const { return Exec->status(); }

  /// The live executor (argArea() carries the pending yield request while
  /// Suspended). Callers must respect the one-thread-at-a-time contract.
  Executor &exec() { return *Exec; }
  const Executor &exec() const { return *Exec; }

  /// Serviced yields so far (across all segments).
  uint64_t resumeCycles() const { return Cycles; }
  /// Current memory footprint in bytes (page-granular).
  uint64_t memoryBytes() const { return detail::memoryBytesOf(*Exec); }

  /// Whether the last dispatchOnce found a handler. A false value with the
  /// session still Suspended means the yield is not serviceable by that
  /// dispatcher — resuming again with the same kind cannot make progress.
  bool lastDispatchHandled() const { return LastHandled; }

  /// One raw Table 1 resume, then run under \p Budget. Precondition:
  /// status() == Suspended (violations leave the executor untouched and
  /// return the current state).
  JobResult resumeRaw(const ResumeChoice &Choice, std::vector<Value> Params,
                      const RunBudget &Budget);

  /// Pops \p Count suspended activations (rtUnwindTop); every popped call
  /// site must be annotated `also aborts`, else the executor goes Wrong.
  /// Does not execute any transition. Precondition: status() == Suspended.
  JobResult unwindTop(size_t Count, const RunBudget &Budget);

  /// Services the current yield with the engine dispatcher for \p K (None
  /// is invalid), then runs under \p Budget. Precondition: status() ==
  /// Suspended.
  JobResult dispatchOnce(DispatcherKind K, const RunBudget &Budget);

  /// Runs under \p Budget without resuming anything — continues a segment
  /// that stopped on fuel, deadline, or memory. Precondition: status() ==
  /// Running.
  JobResult continueRun(const RunBudget &Budget);

private:
  friend class Engine;
  JobSession(Engine &Eng, uint64_t Id, Backend B,
             std::shared_ptr<const ProgramArtifact> Art,
             std::shared_ptr<const IrProgram> Prog,
             std::unique_ptr<Executor> Exec, uint64_t StartMicros);

  /// First segment: start(Entry, Args) and run with the job's own
  /// dispatcher (persisted for later dispatchOnce calls).
  JobResult startSegment(const Job &J);
  /// Runs the budgeted loop with no handler and wraps up the segment.
  JobResult runSegment(const RunBudget &Budget);
  /// Builds the segment result and, on a terminal status, counts the job's
  /// outcome exactly once.
  JobResult finishSegment(MachineStatus St, const BudgetOutcome &Out,
                          double RunMillis);
  /// Counts the final outcome into the engine's job metrics (idempotent).
  void countOutcome(MachineStatus St, const BudgetOutcome &Out);

  Engine &Eng;
  uint64_t Id = 0;
  Backend B = Backend::Walk;
  /// Keep-alives: the artifact (cache-interned path) or the caller's
  /// program (Job::Program path) must outlive the executor.
  std::shared_ptr<const ProgramArtifact> Art;
  std::shared_ptr<const IrProgram> Prog;
  std::unique_ptr<Executor> Exec;
  /// Persistent dispatchers, created on first use so their cumulative
  /// statistics span the whole job like Engine::runJob's locals do.
  std::unique_ptr<UnwindingDispatcher> Unw;
  std::unique_ptr<CuttingDispatcher> Cut;
  uint64_t Cycles = 0;
  uint64_t StartMicros = 0;
  bool Done = false;
  bool Counted = false;
  bool LastHandled = true;
  /// Last segment's stop condition, for the destructor's final accounting
  /// of abandoned sessions.
  MachineStatus LastStatus = MachineStatus::Idle;
  BudgetOutcome LastOutcome;
};

} // namespace cmm::engine

#endif // CMM_ENGINE_SESSION_H
