//===- engine/ThreadPool.h - Work-stealing thread pool ----------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch engine's worker pool. Each worker owns a deque: new work is
/// distributed round-robin across the deques, a worker pops from the front
/// of its own deque, and an idle worker steals from the back of a victim's.
/// Stealing keeps the pool busy when task costs are wildly uneven (one slow
/// differential seed must not stall the queue behind it), which is exactly
/// the shape of the cmmdiff sweep workload.
///
/// Tasks may themselves submit tasks. Tasks must not block waiting for a
/// task that has not started yet (the pool has no dependency scheduler);
/// waiting on the single-flight compile of engine/Cache.h is fine, because
/// the compiling thread runs the compile inline rather than queueing it.
///
/// Telemetry: the pool reports queue depth (queuedApprox(), a gauge that
/// can never go negative — the count is raised strictly before a task
/// becomes stealable and lowered at the single point a task is popped),
/// tasks executed and stolen, and cumulative per-worker busy/idle time,
/// all through an obs/Metrics registry. Constructed without one, the pool
/// records into MetricsRegistry::null() — same one-relaxed-add cost,
/// nothing exported.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_ENGINE_THREADPOOL_H
#define CMM_ENGINE_THREADPOOL_H

#include "obs/Metrics.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cmm::engine {

class ThreadPool {
public:
  /// Spawns \p Threads workers (0 means std::thread::hardware_concurrency,
  /// with a floor of 1). Metrics land in \p Reg when given (the engine
  /// passes its registry), in MetricsRegistry::null() otherwise.
  explicit ThreadPool(unsigned Threads = 0, MetricsRegistry *Reg = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned threadCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Enqueues \p Task. Never blocks; safe from any thread, including pool
  /// workers.
  void submit(std::function<void()> Task);

  /// Runs Body(I) for every I in [Lo, Hi) across the pool, claiming indices
  /// from one shared cursor (so slow indices never stall a fixed-stride
  /// partition). The calling thread participates; returns when every index
  /// has finished.
  void parallelFor(uint64_t Lo, uint64_t Hi,
                   const std::function<void(uint64_t)> &Body);

  /// Tasks executed so far (counted at dequeue, before the task body runs,
  /// so anything a task's side effects wake already sees it).
  uint64_t tasksExecuted() const { return ExecutedC.value(); }
  /// Tasks an idle worker took from another worker's deque.
  uint64_t stolen() const { return StolenC.value(); }
  /// Tasks submitted but not yet popped by any worker. An instantaneous
  /// snapshot (hence "approx" — it may be stale by the time you read it),
  /// but never negative: the count is incremented before the task is
  /// published and decremented exactly once, at the pop.
  uint64_t queuedApprox() const {
    int64_t Q = QueuedG.value();
    return Q > 0 ? uint64_t(Q) : 0;
  }
  uint64_t executed() const { return tasksExecuted(); }

  /// The calling thread's worker index within its pool, or -1 off-pool.
  /// The engine uses this to put job spans on per-worker trace tracks.
  static int currentWorker();

private:
  struct Worker {
    std::mutex Mu;
    std::deque<std::function<void()>> Q;
  };

  /// Pops own front, then steals a victim's back. Returns false when every
  /// deque was empty at the time it was inspected. The queue gauge is
  /// decremented here — the single point where a task leaves a deque.
  bool findTask(unsigned Self, std::function<void()> &Task);
  void workerLoop(unsigned Self);

  std::vector<std::unique_ptr<Worker>> Workers;
  std::vector<std::thread> Threads;
  std::mutex SleepMu;
  std::condition_variable SleepCv;
  MetricsRegistry &Reg;
  /// Queued-not-yet-popped; doubles as the sleep predicate (a worker
  /// blocks only while the gauge reads zero).
  Gauge &QueuedG;
  Counter &ExecutedC;
  Counter &StolenC;
  Counter &BusyMicrosC;
  Counter &IdleMicrosC;
  std::atomic<uint64_t> NextQueue{0};
  std::atomic<bool> Stopping{false};
};

} // namespace cmm::engine

#endif // CMM_ENGINE_THREADPOOL_H
