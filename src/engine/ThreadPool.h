//===- engine/ThreadPool.h - Work-stealing thread pool ----------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch engine's worker pool. Each worker owns a deque: new work is
/// distributed round-robin across the deques, a worker pops from the front
/// of its own deque, and an idle worker steals from the back of a victim's.
/// Stealing keeps the pool busy when task costs are wildly uneven (one slow
/// differential seed must not stall the queue behind it), which is exactly
/// the shape of the cmmdiff sweep workload.
///
/// Tasks may themselves submit tasks. Tasks must not block waiting for a
/// task that has not started yet (the pool has no dependency scheduler);
/// waiting on the single-flight compile of engine/Cache.h is fine, because
/// the compiling thread runs the compile inline rather than queueing it.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_ENGINE_THREADPOOL_H
#define CMM_ENGINE_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cmm::engine {

class ThreadPool {
public:
  /// Spawns \p Threads workers (0 means std::thread::hardware_concurrency,
  /// with a floor of 1).
  explicit ThreadPool(unsigned Threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned threadCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Enqueues \p Task. Never blocks; safe from any thread, including pool
  /// workers.
  void submit(std::function<void()> Task);

  /// Runs Body(I) for every I in [Lo, Hi) across the pool, claiming indices
  /// from one shared cursor (so slow indices never stall a fixed-stride
  /// partition). The calling thread participates; returns when every index
  /// has finished.
  void parallelFor(uint64_t Lo, uint64_t Hi,
                   const std::function<void(uint64_t)> &Body);

  /// Tasks executed so far (for tests and engine stats).
  uint64_t tasksExecuted() const {
    return Executed.load(std::memory_order_relaxed);
  }

private:
  struct Worker {
    std::mutex Mu;
    std::deque<std::function<void()>> Q;
  };

  /// Pops own front, then steals a victim's back. Returns false when every
  /// deque was empty at the time it was inspected.
  bool findTask(unsigned Self, std::function<void()> &Task);
  void workerLoop(unsigned Self);

  std::vector<std::unique_ptr<Worker>> Workers;
  std::vector<std::thread> Threads;
  std::mutex SleepMu;
  std::condition_variable SleepCv;
  std::atomic<uint64_t> Pending{0}; ///< queued, not yet started
  std::atomic<uint64_t> Executed{0};
  std::atomic<uint64_t> NextQueue{0};
  std::atomic<bool> Stopping{false};
};

} // namespace cmm::engine

#endif // CMM_ENGINE_THREADPOOL_H
