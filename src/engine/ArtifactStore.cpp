//===- engine/ArtifactStore.cpp - On-disk artifact store ------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
//
// Container layout (all integers little-endian, support/ByteIO.h):
//
//   17 bytes  magic "cmmex-artifact-v2"
//   u32       ContainerVersion
//   u64       key Hi, u64 key Lo        — must match the file's address
//   u64       payload length
//   payload:  u64 IR blob length,  IR blob  (ir/Serialize.h)
//             u64 bytecode length, bytecode (vm/BytecodeIO.h)
//   u64       FNV-1a 64 checksum of the payload bytes
//
// The checksum is the last line of defence against torn or bit-flipped
// files; the per-layer format versions inside the blobs reject stale
// encodings that happen to checksum correctly.
//
//===----------------------------------------------------------------------===//

#include "engine/ArtifactStore.h"

#include "ir/Serialize.h"
#include "support/ByteIO.h"
#include "vm/BytecodeIO.h"

#include <cstdio>
#include <filesystem>
#include <unistd.h>

using namespace cmm;
using namespace cmm::engine;

namespace fs = std::filesystem;

namespace {

constexpr size_t MagicLen = sizeof(ArtifactStore::Magic) - 1;

uint64_t fnv64(const uint8_t *Data, size_t Size) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (size_t I = 0; I < Size; ++I) {
    H ^= Data[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

bool setErr(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

} // namespace

std::string ArtifactStore::fileName(const CacheKey &Key) {
  return Key.str() + ".cmmart";
}

std::string ArtifactStore::filePath(const std::string &Dir,
                                    const CacheKey &Key) {
  return (fs::path(Dir) / fileName(Key)).string();
}

std::vector<uint8_t> ArtifactStore::serialize(const ProgramArtifact &A) {
  ByteWriter Payload;
  {
    ByteWriter Ir;
    serializeIr(*A.program(), Ir);
    Payload.u64(Ir.size());
    Payload.bytes(Ir.buffer().data(), Ir.size());
  }
  {
    ByteWriter Bc;
    serializeBytecode(*A.bytecode(), *A.program(), Bc);
    Payload.u64(Bc.size());
    Payload.bytes(Bc.buffer().data(), Bc.size());
  }

  ByteWriter W;
  W.bytes(Magic, MagicLen);
  W.u32(ContainerVersion);
  W.u64(A.key().Hi);
  W.u64(A.key().Lo);
  W.u64(Payload.size());
  W.bytes(Payload.buffer().data(), Payload.size());
  W.u64(fnv64(Payload.buffer().data(), Payload.size()));
  return W.take();
}

std::shared_ptr<ProgramArtifact>
ArtifactStore::deserialize(const uint8_t *Data, size_t Size,
                           const CacheKey *ExpectKey, std::string *Err,
                           std::shared_ptr<std::atomic<uint64_t>> BcCounter,
                           std::shared_ptr<ThreadedCounters> TCounters) {
  auto Fail = [&](const char *Msg) -> std::shared_ptr<ProgramArtifact> {
    setErr(Err, Msg);
    return nullptr;
  };

  ByteReader R(Data, Size);
  R.expect(std::string_view(Magic, MagicLen));
  if (!R.ok())
    return Fail("bad artifact magic");
  uint32_t Version = R.u32();
  if (!R.ok() || Version != ContainerVersion)
    return Fail("artifact container version mismatch");
  CacheKey Key;
  Key.Hi = R.u64();
  Key.Lo = R.u64();
  if (!R.ok())
    return Fail("truncated artifact header");
  if (ExpectKey && !(Key == *ExpectKey))
    return Fail("artifact key mismatch");

  uint64_t PayloadLen = R.u64();
  if (!R.ok() || PayloadLen > R.remaining())
    return Fail("truncated artifact payload");
  const uint8_t *Payload = Data + R.position();
  ByteReader PR(Payload, size_t(PayloadLen));

  // Verify the checksum before parsing anything out of the payload.
  ByteReader Tail(Data + R.position() + size_t(PayloadLen),
                  Size - R.position() - size_t(PayloadLen));
  uint64_t Sum = Tail.u64();
  if (!Tail.ok() || Sum != fnv64(Payload, size_t(PayloadLen)))
    return Fail("artifact checksum mismatch");

  uint64_t IrLen = PR.u64();
  if (!PR.ok() || IrLen > PR.remaining())
    return Fail("truncated IR blob");
  ByteReader IrR(Payload + PR.position(), size_t(IrLen));
  std::string SubErr;
  std::unique_ptr<IrProgram> Prog = deserializeIr(IrR, &SubErr);
  if (!Prog)
    return Fail(SubErr.empty() ? "malformed IR blob" : SubErr.c_str());

  ByteReader BcHdr(Payload + PR.position() + size_t(IrLen),
                   size_t(PayloadLen) - PR.position() - size_t(IrLen));
  uint64_t BcLen = BcHdr.u64();
  if (!BcHdr.ok() || BcLen > BcHdr.remaining())
    return Fail("truncated bytecode blob");
  ByteReader BcR(Payload + PR.position() + size_t(IrLen) + 8, size_t(BcLen));
  std::unique_ptr<CompiledProgram> Bc = deserializeBytecode(BcR, *Prog, &SubErr);
  if (!Bc)
    return Fail(SubErr.empty() ? "malformed bytecode blob" : SubErr.c_str());

  auto A = std::make_shared<ProgramArtifact>();
  A->Key = Key;
  A->Prog = std::shared_ptr<const IrProgram>(std::move(Prog));
  A->Bc = std::shared_ptr<const CompiledProgram>(std::move(Bc));
  A->BcCompiles = std::move(BcCounter);
  A->TCnt = std::move(TCounters);
  return A;
}

bool ArtifactStore::writeFile(const std::string &Dir,
                              const ProgramArtifact &A, std::string *Err) {
  std::vector<uint8_t> Blob = serialize(A);

  std::error_code Ec;
  fs::create_directories(fs::path(Dir), Ec);
  if (Ec)
    return setErr(Err, "cannot create cache dir: " + Ec.message());

  std::string Final = filePath(Dir, A.key());
  std::string Tmp = Final + ".tmp." + std::to_string(::getpid());
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return setErr(Err, "cannot open " + Tmp);
  size_t Written = std::fwrite(Blob.data(), 1, Blob.size(), F);
  bool Flushed = std::fclose(F) == 0;
  if (Written != Blob.size() || !Flushed) {
    fs::remove(fs::path(Tmp), Ec);
    return setErr(Err, "short write to " + Tmp);
  }
  fs::rename(fs::path(Tmp), fs::path(Final), Ec);
  if (Ec) {
    fs::remove(fs::path(Tmp), Ec);
    return setErr(Err, "cannot rename into " + Final);
  }
  return true;
}

std::shared_ptr<ProgramArtifact>
ArtifactStore::loadFile(const std::string &Dir, const CacheKey &Key,
                        std::string *Err,
                        std::shared_ptr<std::atomic<uint64_t>> BcCounter,
                        std::shared_ptr<ThreadedCounters> TCounters) {
  std::string Path = filePath(Dir, Key);
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return nullptr; // plain miss: Err stays empty

  std::vector<uint8_t> Blob;
  uint8_t Buf[1 << 16];
  for (;;) {
    size_t N = std::fread(Buf, 1, sizeof Buf, F);
    Blob.insert(Blob.end(), Buf, Buf + N);
    if (N < sizeof Buf)
      break;
  }
  bool ReadOk = std::ferror(F) == 0;
  std::fclose(F);
  if (!ReadOk) {
    setErr(Err, "read error on " + Path);
    return nullptr;
  }
  return deserialize(Blob.data(), Blob.size(), &Key, Err,
                     std::move(BcCounter), std::move(TCounters));
}
