//===- engine/ThreadPool.cpp ----------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "engine/ThreadPool.h"

using namespace cmm::engine;

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = std::thread::hardware_concurrency();
  if (NumThreads == 0)
    NumThreads = 1;
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I < NumThreads; ++I)
    Workers.push_back(std::make_unique<Worker>());
  Threads.reserve(NumThreads);
  for (unsigned I = 0; I < NumThreads; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(SleepMu);
    Stopping.store(true, std::memory_order_release);
  }
  SleepCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  unsigned Idx = static_cast<unsigned>(
      NextQueue.fetch_add(1, std::memory_order_relaxed) % Workers.size());
  {
    std::lock_guard<std::mutex> Lock(Workers[Idx]->Mu);
    Workers[Idx]->Q.push_back(std::move(Task));
  }
  {
    // The increment must be ordered against a sleeper's predicate check by
    // SleepMu: done outside it, the add + notify can land inside a worker's
    // check-to-block window and the wakeup is lost with a task queued.
    std::lock_guard<std::mutex> Lock(SleepMu);
    Pending.fetch_add(1, std::memory_order_release);
  }
  SleepCv.notify_one();
}

bool ThreadPool::findTask(unsigned Self, std::function<void()> &Task) {
  // Own queue first (front: oldest of my work)...
  {
    Worker &W = *Workers[Self];
    std::lock_guard<std::mutex> Lock(W.Mu);
    if (!W.Q.empty()) {
      Task = std::move(W.Q.front());
      W.Q.pop_front();
      return true;
    }
  }
  // ...then steal from a victim's back.
  for (size_t Off = 1; Off < Workers.size(); ++Off) {
    Worker &V = *Workers[(Self + Off) % Workers.size()];
    std::lock_guard<std::mutex> Lock(V.Mu);
    if (!V.Q.empty()) {
      Task = std::move(V.Q.back());
      V.Q.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::workerLoop(unsigned Self) {
  for (;;) {
    std::function<void()> Task;
    if (findTask(Self, Task)) {
      Pending.fetch_sub(1, std::memory_order_acquire);
      // Counted before running: anyone a task's side effects wake must
      // already see it in tasksExecuted().
      Executed.fetch_add(1, std::memory_order_relaxed);
      Task();
      continue;
    }
    std::unique_lock<std::mutex> Lock(SleepMu);
    SleepCv.wait(Lock, [this] {
      return Stopping.load(std::memory_order_acquire) ||
             Pending.load(std::memory_order_acquire) != 0;
    });
    if (Stopping.load(std::memory_order_acquire) &&
        Pending.load(std::memory_order_acquire) == 0)
      return;
  }
}

void ThreadPool::parallelFor(uint64_t Lo, uint64_t Hi,
                             const std::function<void(uint64_t)> &Body) {
  if (Lo >= Hi)
    return;
  auto Cursor = std::make_shared<std::atomic<uint64_t>>(Lo);
  struct Sync {
    std::mutex Mu;
    std::condition_variable Cv;
    uint64_t Live = 0;
  };
  auto S = std::make_shared<Sync>();
  auto Runner = [Cursor, Hi, &Body, S] {
    for (;;) {
      uint64_t I = Cursor->fetch_add(1, std::memory_order_relaxed);
      if (I >= Hi)
        break;
      Body(I);
    }
    std::lock_guard<std::mutex> Lock(S->Mu);
    if (--S->Live == 0)
      S->Cv.notify_all();
  };
  // One runner per worker plus the calling thread, capped by the number of
  // indices; the shared cursor is the actual scheduler.
  uint64_t Runners = std::min<uint64_t>(threadCount() + 1, Hi - Lo);
  S->Live = Runners;
  for (uint64_t R = 0; R + 1 < Runners; ++R)
    submit(Runner);
  Runner(); // the calling thread participates
  std::unique_lock<std::mutex> Lock(S->Mu);
  S->Cv.wait(Lock, [&] { return S->Live == 0; });
}
