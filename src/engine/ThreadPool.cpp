//===- engine/ThreadPool.cpp ----------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "engine/ThreadPool.h"

using namespace cmm::engine;

namespace {
/// Worker index of the calling thread within the pool that spawned it
/// (workerLoop sets it); -1 for every other thread. A plain index, not a
/// pool pointer: its only consumer is trace-track assignment, where a stale
/// index from a destroyed pool would merely mislabel a track.
thread_local int ThisWorker = -1;
} // namespace

int ThreadPool::currentWorker() { return ThisWorker; }

ThreadPool::ThreadPool(unsigned NumThreads, MetricsRegistry *RegIn)
    : Reg(RegIn ? *RegIn : MetricsRegistry::null()),
      QueuedG(Reg.gauge("pool.queued")),
      ExecutedC(Reg.counter("pool.tasks_executed")),
      StolenC(Reg.counter("pool.tasks_stolen")),
      BusyMicrosC(Reg.counter("pool.busy_micros")),
      IdleMicrosC(Reg.counter("pool.idle_micros")) {
  if (NumThreads == 0)
    NumThreads = std::thread::hardware_concurrency();
  if (NumThreads == 0)
    NumThreads = 1;
  Reg.gauge("pool.workers").set(int64_t(NumThreads));
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I < NumThreads; ++I)
    Workers.push_back(std::make_unique<Worker>());
  Threads.reserve(NumThreads);
  for (unsigned I = 0; I < NumThreads; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(SleepMu);
    Stopping.store(true, std::memory_order_release);
  }
  SleepCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  unsigned Idx = static_cast<unsigned>(
      NextQueue.fetch_add(1, std::memory_order_relaxed) % Workers.size());
  // Raise the gauge BEFORE publishing the task: once it's in the deque a
  // concurrent pop may decrement immediately, and decrement-before-increment
  // would swing the gauge negative. The cost is a benign window where the
  // gauge reads one high and a spinning worker retries findTask once.
  QueuedG.add(1);
  {
    std::lock_guard<std::mutex> Lock(Workers[Idx]->Mu);
    Workers[Idx]->Q.push_back(std::move(Task));
  }
  {
    // The gauge update must be ordered against a sleeper's predicate check
    // by SleepMu: done entirely outside it, the add + notify can land inside
    // a worker's check-to-block window and the wakeup is lost with a task
    // queued. Locking (then releasing) SleepMu here after the add ensures
    // any worker that blocks afterwards re-checks a predicate that sees it.
    std::lock_guard<std::mutex> Lock(SleepMu);
  }
  SleepCv.notify_one();
}

bool ThreadPool::findTask(unsigned Self, std::function<void()> &Task) {
  // Own queue first (front: oldest of my work)...
  {
    Worker &W = *Workers[Self];
    std::lock_guard<std::mutex> Lock(W.Mu);
    if (!W.Q.empty()) {
      Task = std::move(W.Q.front());
      W.Q.pop_front();
      QueuedG.sub(1);
      return true;
    }
  }
  // ...then steal from a victim's back.
  for (size_t Off = 1; Off < Workers.size(); ++Off) {
    Worker &V = *Workers[(Self + Off) % Workers.size()];
    std::lock_guard<std::mutex> Lock(V.Mu);
    if (!V.Q.empty()) {
      Task = std::move(V.Q.back());
      V.Q.pop_back();
      QueuedG.sub(1);
      StolenC.add(1);
      return true;
    }
  }
  return false;
}

void ThreadPool::workerLoop(unsigned Self) {
  ThisWorker = int(Self);
  using Clock = std::chrono::steady_clock;
  for (;;) {
    std::function<void()> Task;
    if (findTask(Self, Task)) {
      // Counted before running: anyone a task's side effects wake must
      // already see it in tasksExecuted().
      ExecutedC.add(1);
      Clock::time_point T0 = Clock::now();
      Task();
      BusyMicrosC.add(
          uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                       Clock::now() - T0)
                       .count()));
      continue;
    }
    Clock::time_point T0 = Clock::now();
    std::unique_lock<std::mutex> Lock(SleepMu);
    SleepCv.wait(Lock, [this] {
      return Stopping.load(std::memory_order_acquire) ||
             QueuedG.value() != 0;
    });
    Lock.unlock();
    IdleMicrosC.add(
        uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                     Clock::now() - T0)
                     .count()));
    if (Stopping.load(std::memory_order_acquire) && QueuedG.value() == 0)
      return;
  }
}

void ThreadPool::parallelFor(uint64_t Lo, uint64_t Hi,
                             const std::function<void(uint64_t)> &Body) {
  if (Lo >= Hi)
    return;
  auto Cursor = std::make_shared<std::atomic<uint64_t>>(Lo);
  struct Sync {
    std::mutex Mu;
    std::condition_variable Cv;
    uint64_t Live = 0;
  };
  auto S = std::make_shared<Sync>();
  auto Runner = [Cursor, Hi, &Body, S] {
    for (;;) {
      uint64_t I = Cursor->fetch_add(1, std::memory_order_relaxed);
      if (I >= Hi)
        break;
      Body(I);
    }
    std::lock_guard<std::mutex> Lock(S->Mu);
    if (--S->Live == 0)
      S->Cv.notify_all();
  };
  // One runner per worker plus the calling thread, capped by the number of
  // indices; the shared cursor is the actual scheduler.
  uint64_t Runners = std::min<uint64_t>(threadCount() + 1, Hi - Lo);
  S->Live = Runners;
  for (uint64_t R = 0; R + 1 < Runners; ++R)
    submit(Runner);
  Runner(); // the calling thread participates
  std::unique_lock<std::mutex> Lock(S->Mu);
  S->Cv.wait(Lock, [&] { return S->Live == 0; });
}
