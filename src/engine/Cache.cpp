//===- engine/Cache.cpp ---------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "engine/Cache.h"

#include "engine/ArtifactStore.h"
#include "ir/Translate.h"
#include "ir/Validate.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace cmm;
using namespace cmm::engine;

//===----------------------------------------------------------------------===//
// Content hashing
//===----------------------------------------------------------------------===//

namespace {

/// FNV-1a 64. Two lanes give the 128-bit key. FNV-1a is affine in its
/// basis, so two lanes that hash the *same* byte stream from different
/// bases differ only by a function of the basis pair and the length — the
/// key would carry ~64 bits of entropy, not 128. The salted lane therefore
/// interleaves a running byte-position salt into its input stream, making
/// the two hashed strings genuinely different, and the lanes are entangled
/// in cacheKeyFor. Multi-byte values are absorbed LSB-first explicitly, so
/// keys (and the artifact files named after them) are host-independent.
struct Fnv {
  uint64_t H;
  uint64_t Pos = 0;
  bool Salted;
  explicit Fnv(uint64_t Basis, bool Salted = false)
      : H(Basis), Salted(Salted) {}
  void byte(uint8_t B) {
    H ^= B;
    H *= 0x100000001b3ull;
    if (Salted) {
      H ^= uint8_t(Pos++);
      H *= 0x100000001b3ull;
    }
  }
  void bytes(const void *P, size_t N) {
    const uint8_t *B = static_cast<const uint8_t *>(P);
    for (size_t I = 0; I < N; ++I)
      byte(B[I]);
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      byte(uint8_t(V >> (8 * I)));
  }
  void u8(uint8_t V) { byte(V); }
  void str(const std::string &S) {
    u64(S.size()); // length-prefixed: {"ab","c"} != {"a","bc"}
    bytes(S.data(), S.size());
  }
};

void hashRequest(Fnv &F, const CompileRequest &Req) {
  F.bytes("cmmex-artifact-v2", 17);
  F.u8(Req.IncludeStdLib);
  F.u8(Req.Optimize);
  // Every semantically meaningful optimizer field. Verbose is excluded: it
  // only changes stderr chatter, never the artifact.
  const OptOptions &O = Req.Opt;
  F.u8(O.WithExceptionalEdges);
  F.u64(O.Rounds);
  F.u8(O.RunConstProp);
  F.u8(O.RunCopyProp);
  F.u8(O.RunDeadCode);
  F.u8(O.PlaceCalleeSaves);
  F.u64(O.CalleeSaves.NumRegisters);
  F.u8(O.CalleeSaves.RespectCutEdges);
  F.u8(O.ValidateEachPass);
  F.u64(Req.Sources.size());
  for (const std::string &S : Req.Sources)
    F.str(S);
}

} // namespace

CacheKey cmm::engine::cacheKeyFor(const CompileRequest &Req) {
  Fnv A(0xcbf29ce484222325ull);
  Fnv B(0x84222325cbf29ce4ull, /*Salted=*/true);
  hashRequest(A, Req);
  hashRequest(B, Req);
  B.u64(A.H); // entangle the lanes
  return {A.H, B.H};
}

std::string CacheKey::str() const {
  char Buf[36];
  std::snprintf(Buf, sizeof Buf, "%016llx%016llx",
                static_cast<unsigned long long>(Hi),
                static_cast<unsigned long long>(Lo));
  return Buf;
}

//===----------------------------------------------------------------------===//
// Artifact compilation
//===----------------------------------------------------------------------===//

namespace cmm::engine {

/// The one compile path (cached and uncached callers both land here): parse
/// + translate + link, optionally optimize, then re-validate. Error strings
/// keep the phase-prefixed form the differential harness reports.
void populateArtifact(ProgramArtifact &A, const CompileRequest &Req,
                      std::shared_ptr<std::atomic<uint64_t>> BcCounter,
                      std::shared_ptr<ThreadedCounters> TCounters) {
  A.Key = cacheKeyFor(Req);
  A.BcCompiles = std::move(BcCounter);
  A.TCnt = std::move(TCounters);
  DiagnosticEngine Diags;
  std::unique_ptr<IrProgram> Prog =
      compileProgram(Req.Sources, Diags, Req.IncludeStdLib);
  if (!Prog) {
    A.Error = "compile failed: " + Diags.str();
    return;
  }
  if (Req.Optimize) {
    OptReport R = optimizeProgram(*Prog, Req.Opt);
    if (!R.ValidationErrors.empty()) {
      A.Error = "pass validation failed: " + R.ValidationErrors.front();
      return;
    }
    DiagnosticEngine VDiags;
    if (!validateProgram(*Prog, VDiags)) {
      A.Error = "post-pipeline validation failed: " + VDiags.str();
      return;
    }
  }
  // Published const from here on: jobs on any thread may now share it.
  A.Prog = std::shared_ptr<const IrProgram>(std::move(Prog));
}

} // namespace cmm::engine

void ProgramArtifact::failErrored(const char *What) const {
  // A null program here means the caller ignored error() and asked an
  // errored artifact to run anyway; dereferencing would be silent UB.
  std::fprintf(stderr,
               "cmmex: ProgramArtifact::%s called on an errored artifact "
               "(check ok() first): %s\n",
               What, Error.empty() ? "<no error recorded>" : Error.c_str());
  std::abort();
}

std::shared_ptr<const CompiledProgram> ProgramArtifact::bytecode() const {
  if (!Prog)
    failErrored("bytecode");
  std::lock_guard<std::mutex> Lock(BcMu);
  if (!Bc) {
    Bc = std::make_shared<const CompiledProgram>(compileToBytecode(*Prog));
    if (BcCompiles)
      BcCompiles->fetch_add(1, std::memory_order_relaxed);
  }
  return Bc;
}

std::shared_ptr<const ThreadedProgram> ProgramArtifact::threaded() const {
  if (!Prog)
    failErrored("threaded");
  // bytecode() first, outside TMu: it takes its own lock, and the fused
  // stream is a pure function of the bytecode.
  std::shared_ptr<const CompiledProgram> B = bytecode();
  std::lock_guard<std::mutex> Lock(TMu);
  if (!Tp) {
    auto T0 = std::chrono::steady_clock::now();
    Tp = fuseProgram(std::move(B));
    if (TCnt) {
      TCnt->Compiles.fetch_add(1, std::memory_order_relaxed);
      TCnt->FusionHits.fetch_add(Tp->Fusion.FusedSites,
                                 std::memory_order_relaxed);
      TCnt->FusionMisses.fetch_add(Tp->Fusion.MissedSites,
                                   std::memory_order_relaxed);
      TCnt->Micros.fetch_add(
          uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - T0)
                       .count()),
          std::memory_order_relaxed);
    }
  }
  return Tp;
}

std::unique_ptr<Executor> ProgramArtifact::newExecutor(Backend B) const {
  if (!Prog)
    failErrored("newExecutor");
  switch (B) {
  case Backend::Vm:
    return makeExecutor(B, *Prog, bytecode());
  case Backend::Threaded:
    return makeExecutor(B, *Prog, nullptr, threaded());
  case Backend::Walk:
    break;
  }
  return makeExecutor(B, *Prog, nullptr);
}

std::shared_ptr<const ProgramArtifact>
cmm::engine::compileArtifact(const CompileRequest &Req) {
  auto A = std::make_shared<ProgramArtifact>();
  populateArtifact(*A, Req, nullptr, nullptr);
  return A;
}

//===----------------------------------------------------------------------===//
// ModuleCache
//===----------------------------------------------------------------------===//

namespace {
MetricsRegistry &regOrNull(MetricsRegistry *Reg) {
  return Reg ? *Reg : MetricsRegistry::null();
}
} // namespace

// Handles are wired once at construction; every event after is one relaxed
// atomic add (the registry mutex is never touched on the lookup path).
ModuleCache::ModuleCache(size_t Capacity, MetricsRegistry *RegIn,
                         std::string CacheDirIn)
    : Capacity(Capacity), CacheDir(std::move(CacheDirIn)),
      LookupsC(regOrNull(RegIn).counter("cache.lookups")),
      HitsC(regOrNull(RegIn).counter("cache.hits")),
      MissesC(regOrNull(RegIn).counter("cache.misses")),
      IrCompilesC(regOrNull(RegIn).counter("cache.ir_compiles")),
      EvictionsC(regOrNull(RegIn).counter("cache.evictions")),
      JoinsC(regOrNull(RegIn).counter("cache.singleflight_joins")),
      DiskHitsC(regOrNull(RegIn).counter("cache.disk_hits")),
      DiskWritesC(regOrNull(RegIn).counter("cache.disk_writes")),
      DiskErrorsC(regOrNull(RegIn).counter("cache.disk_errors")),
      CompileMicrosH(regOrNull(RegIn).histogram("cache.compile_micros")) {
  // Bytecode compiles are counted in the artifacts themselves (they may
  // outlive this cache), so the registry samples them through a probe that
  // co-owns the counter.
  auto Bc = BcCompiles;
  regOrNull(RegIn).probe("cache.bytecode_compiles", [Bc] {
    return Bc->load(std::memory_order_relaxed);
  });
  // Threaded-tier accounting lives in the same shared block; each probe
  // co-owns it. vm.threaded_compile_micros is cumulative microseconds (a
  // real Histogram reference could not safely outlive the registry the way
  // artifacts outlive the engine).
  auto T = TCnt;
  regOrNull(RegIn).probe("vm.threaded_compiles", [T] {
    return T->Compiles.load(std::memory_order_relaxed);
  });
  regOrNull(RegIn).probe("vm.fusion_hits", [T] {
    return T->FusionHits.load(std::memory_order_relaxed);
  });
  regOrNull(RegIn).probe("vm.fusion_misses", [T] {
    return T->FusionMisses.load(std::memory_order_relaxed);
  });
  regOrNull(RegIn).probe("vm.threaded_compile_micros", [T] {
    return T->Micros.load(std::memory_order_relaxed);
  });
}

std::shared_ptr<const ProgramArtifact>
ModuleCache::getOrCompile(const CompileRequest &Req, bool *WasHit) {
  const CacheKey Key = cacheKeyFor(Req);
  LookupsC.add(1);

  std::shared_ptr<Slot> S;
  bool Owner = false;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Map.find(Key);
    if (It != Map.end()) {
      HitsC.add(1);
      Lru.splice(Lru.begin(), Lru, It->second.LruIt); // touch
      S = It->second.S;
    } else {
      MissesC.add(1);
      S = std::make_shared<Slot>();
      Lru.push_front(Key);
      Map.emplace(Key, Entry{S, Lru.begin()});
      Owner = true;
      // Evict from the cold end, skipping in-flight slots (their owner
      // still needs to publish into the map's entry... they are removed
      // from the index but stay alive through the waiters' shared_ptr).
      if (Capacity != 0 && Map.size() > Capacity) {
        for (auto Victim = std::prev(Lru.end()); Victim != Lru.begin();) {
          auto Prev = std::prev(Victim);
          auto VIt = Map.find(*Victim);
          bool VictimReady;
          {
            std::lock_guard<std::mutex> SLock(VIt->second.S->Mu);
            VictimReady = VIt->second.S->Ready;
          }
          if (VictimReady) {
            Map.erase(VIt);
            Lru.erase(Victim);
            EvictionsC.add(1);
            break;
          }
          Victim = Prev;
        }
      }
    }
  }
  if (WasHit)
    *WasHit = !Owner;

  if (Owner) {
    // Single-flight: compile outside the index lock; racers block on the
    // slot, not on the whole cache. The persistent tier is consulted first:
    // a valid on-disk artifact replaces the whole front-end + bytecode run.
    if (!CacheDir.empty()) {
      std::string DiskErr;
      if (std::shared_ptr<ProgramArtifact> FromDisk = ArtifactStore::loadFile(
              CacheDir, Key, &DiskErr, BcCompiles, TCnt)) {
        DiskHitsC.add(1);
        return publish(Key, S, std::move(FromDisk));
      }
      if (!DiskErr.empty())
        DiskErrorsC.add(1); // file existed but failed validation
    }

    auto T0 = std::chrono::steady_clock::now();
    auto Art = std::make_shared<ProgramArtifact>();
    populateArtifact(*Art, Req, BcCompiles, TCnt);
    IrCompilesC.add(1);
    CompileMicrosH.record(
        uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - T0)
                     .count()));
    // Only good artifacts are persisted: an errored artifact on disk would
    // replay a possibly transient failure into every later process.
    if (!CacheDir.empty() && Art->ok()) {
      if (ArtifactStore::writeFile(CacheDir, *Art))
        DiskWritesC.add(1);
      else
        DiskErrorsC.add(1);
    }
    return publish(Key, S, std::move(Art));
  }

  std::unique_lock<std::mutex> SLock(S->Mu);
  if (!S->Ready) {
    // A hit on a slot whose owner is still compiling: this caller joined
    // the single flight rather than finding a finished artifact.
    JoinsC.add(1);
    S->Cv.wait(SLock, [&] { return S->Ready; });
  }
  return S->Art;
}

std::shared_ptr<const ProgramArtifact>
ModuleCache::publish(const CacheKey &Key, const std::shared_ptr<Slot> &S,
                     std::shared_ptr<const ProgramArtifact> Art) {
  {
    std::lock_guard<std::mutex> SLock(S->Mu);
    S->Art = Art;
    S->Ready = true;
  }
  S->Cv.notify_all();
  // Never cache failures: waiters already joined this flight get the error
  // (correct — they raced the same request), but the index entry is dropped
  // so the next lookup recompiles instead of being poisoned forever. The
  // identity check guards against this key having been evicted and
  // re-populated by an unrelated flight while we compiled.
  if (!Art->ok()) {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Map.find(Key);
    if (It != Map.end() && It->second.S == S) {
      Lru.erase(It->second.LruIt);
      Map.erase(It);
    }
  }
  return Art;
}

CacheStats ModuleCache::stats() const {
  CacheStats St;
  St.Lookups = LookupsC.value();
  St.Hits = HitsC.value();
  St.Misses = MissesC.value();
  St.IrCompiles = IrCompilesC.value();
  St.BytecodeCompiles = BcCompiles->load(std::memory_order_relaxed);
  St.ThreadedCompiles = TCnt->Compiles.load(std::memory_order_relaxed);
  St.Evictions = EvictionsC.value();
  St.SingleFlightJoins = JoinsC.value();
  St.DiskHits = DiskHitsC.value();
  St.DiskWrites = DiskWritesC.value();
  St.DiskErrors = DiskErrorsC.value();
  return St;
}
