//===- engine/RunBudget.h - Per-segment execution budgets -------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three per-segment execution budgets every engine-run job carries —
/// fuel (abstract-machine transitions per resume segment), a wall-clock
/// deadline, and a memory quota — plus the budgeted run loop shared by
/// Engine::runJob and JobSession (engine/Session.h). The loop slices
/// execution into Engine::DeadlineSliceSteps-transition chunks whenever a
/// deadline or memory quota is armed, so enforcement granularity is one
/// slice, and it consults the budgets between suspend/resume cycles as well
/// (a yield-heavy program whose dispatcher always resumes never completes a
/// Running slice).
///
/// This header is internal to the engine library; embedders see the budget
/// fields on engine::Job and the outcome flags on engine::JobResult.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_ENGINE_RUNBUDGET_H
#define CMM_ENGINE_RUNBUDGET_H

#include "sem/Executor.h"
#include "sem/Memory.h"

#include <algorithm>
#include <chrono>
#include <cstdint>

namespace cmm::engine {

/// Budgets for one execution segment (submit-to-suspension, or
/// resume-to-suspension). Zero / all-ones fields disable their check.
struct RunBudget {
  /// Abstract-machine transitions for this segment (the runWithRuntime
  /// fuel). Exhaustion leaves the executor Running.
  uint64_t MaxSteps = ~uint64_t(0);
  /// Wall-clock deadline in milliseconds from segment start; 0 disables.
  double DeadlineMillis = 0;
  /// Memory quota in bytes (page-granular: an executor's footprint is its
  /// page count times Memory::PageSize); 0 disables.
  uint64_t MaxMemoryBytes = 0;
};

/// How a budgeted segment stopped early (all false when it ran to a
/// terminal status or out of fuel).
struct BudgetOutcome {
  bool TimedOut = false;    ///< DeadlineMillis exceeded
  bool MemExceeded = false; ///< MaxMemoryBytes exceeded
};

namespace detail {

inline double millisSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

inline uint64_t memoryBytesOf(const Executor &M) {
  return uint64_t(M.memory().pageCount()) * Memory::PageSize;
}

/// runWithRuntime (rts/RuntimeInterface.h) with the engine's budgets
/// layered in. \p SliceSteps is Engine::DeadlineSliceSteps (passed in so
/// this header need not see Engine). \p Handler services one suspension and
/// returns true when the executor was resumed. Increments \p ResumeCycles
/// once per serviced yield.
template <typename HandlerFn>
MachineStatus runBudgeted(Executor &M, HandlerFn Handler, const RunBudget &B,
                          uint64_t SliceSteps, BudgetOutcome &Out,
                          uint64_t &ResumeCycles) {
  auto T0 = std::chrono::steady_clock::now();
  const bool Sliced = B.DeadlineMillis > 0 || B.MaxMemoryBytes > 0;
  auto overBudget = [&] {
    if (B.DeadlineMillis > 0 && millisSince(T0) >= B.DeadlineMillis) {
      Out.TimedOut = true;
      return true;
    }
    if (B.MaxMemoryBytes > 0 && memoryBytesOf(M) > B.MaxMemoryBytes) {
      Out.MemExceeded = true;
      return true;
    }
    return false;
  };
  for (;;) {
    // Checked here as well as inside the slice loop: the suspend/resume
    // cycle itself must consult the budgets.
    if (overBudget())
      return MachineStatus::Running;
    uint64_t Remaining = B.MaxSteps;
    MachineStatus St;
    for (;;) {
      uint64_t Slice = Remaining;
      if (Sliced)
        Slice = std::min<uint64_t>(Slice, SliceSteps);
      St = M.run(Slice);
      if (St != MachineStatus::Running)
        break;
      Remaining -= Slice;
      if (Remaining == 0)
        return MachineStatus::Running; // fuel exhausted
      if (overBudget())
        return MachineStatus::Running;
    }
    if (St != MachineStatus::Suspended)
      return St;
    if (!Handler(M))
      return MachineStatus::Suspended; // unhandled yield
    if (M.status() == MachineStatus::Suspended)
      return MachineStatus::Suspended; // handler did not actually resume
    ++ResumeCycles; // one serviced yield, machine running again
  }
}

} // namespace detail

} // namespace cmm::engine

#endif // CMM_ENGINE_RUNBUDGET_H
