//===- engine/RunBudget.h - Per-segment execution budgets -------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compatibility aliases: the budget types and the budgeted run loop moved
/// down into the sem layer (sem/Continuation.h) when the first-class
/// Continuation handle was introduced, so that anything holding an Executor
/// — not just the engine — can run it under fuel / deadline / memory
/// budgets. Engine code and embedders keep their old spellings through the
/// aliases below; new code should include sem/Continuation.h directly.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_ENGINE_RUNBUDGET_H
#define CMM_ENGINE_RUNBUDGET_H

#include "sem/Continuation.h"

namespace cmm::engine {

/// Budgets for one execution segment (submit-to-suspension, or
/// resume-to-suspension). Zero / all-ones fields disable their check.
using RunBudget = cmm::ResumeBudget;

/// How a budgeted segment stopped early (all false when it ran to a
/// terminal status or out of fuel).
using BudgetOutcome = cmm::ResumeOutcome;

namespace detail {

using cmm::detail::memoryBytesOf;
using cmm::detail::millisSince;
using cmm::detail::runBudgeted;

} // namespace detail

} // namespace cmm::engine

#endif // CMM_ENGINE_RUNBUDGET_H
