//===- engine/Engine.cpp --------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"

#include "engine/Cache.h"
#include "obs/Json.h"
#include "obs/Profiler.h"
#include "rts/Dispatchers.h"
#include "rts/RuntimeInterface.h"
#include "sem/Machine.h"
#include "vm/Vm.h"

#include <chrono>

using namespace cmm;
using namespace cmm::engine;

//===----------------------------------------------------------------------===//
// Backends
//===----------------------------------------------------------------------===//

std::string_view cmm::engine::backendName(Backend B) {
  return B == Backend::Vm ? "vm" : "walk";
}

std::optional<Backend> cmm::engine::parseBackend(std::string_view Name) {
  if (Name == "walk")
    return Backend::Walk;
  if (Name == "vm")
    return Backend::Vm;
  return std::nullopt;
}

std::unique_ptr<Executor> cmm::engine::makeExecutor(Backend B,
                                                    const IrProgram &Prog) {
  return makeExecutor(B, Prog, nullptr);
}

std::unique_ptr<Executor>
cmm::engine::makeExecutor(Backend B, const IrProgram &Prog,
                          std::shared_ptr<const CompiledProgram> Bytecode) {
  switch (B) {
  case Backend::Walk:
    return std::make_unique<Machine>(Prog);
  case Backend::Vm:
    if (Bytecode)
      return std::make_unique<VmMachine>(Prog, std::move(Bytecode));
    return std::make_unique<VmMachine>(Prog);
  }
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Engine
//===----------------------------------------------------------------------===//

Engine::Engine(EngineOptions Opts)
    : Opts(Opts),
      Cache(Opts.EnableCache ? std::make_unique<ModuleCache>(Opts.CacheCapacity)
                             : nullptr),
      Pool(Opts.Threads) {}

Engine::~Engine() = default;

std::shared_ptr<const ProgramArtifact>
Engine::compile(const CompileRequest &Req) {
  if (Cache)
    return Cache->getOrCompile(Req);
  return compileArtifact(Req);
}

CacheStats Engine::cacheStats() const {
  return Cache ? Cache->stats() : CacheStats{};
}

namespace {

double millisSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

/// runWithRuntime (rts/RuntimeInterface.h) with the engine's two budgets
/// layered in: \p MaxSteps is the per-resume-segment fuel, exactly as
/// runWithRuntime interprets it, and \p DeadlineMillis is a wall-clock
/// bound checked every Engine::DeadlineSliceSteps transitions.
template <typename HandlerFn>
MachineStatus runBudgeted(Executor &M, HandlerFn Handler, uint64_t MaxSteps,
                          double DeadlineMillis, bool &TimedOut) {
  auto T0 = std::chrono::steady_clock::now();
  for (;;) {
    // Checked here as well as inside the slice loop: a yield-heavy program
    // whose dispatcher always resumes never completes a Running slice, so
    // the suspend/resume cycle itself must consult the deadline.
    if (DeadlineMillis > 0 && millisSince(T0) >= DeadlineMillis) {
      TimedOut = true;
      return MachineStatus::Running;
    }
    uint64_t Remaining = MaxSteps;
    MachineStatus St;
    for (;;) {
      uint64_t Slice = Remaining;
      if (DeadlineMillis > 0)
        Slice = std::min<uint64_t>(Slice, Engine::DeadlineSliceSteps);
      St = M.run(Slice);
      if (St != MachineStatus::Running)
        break;
      Remaining -= Slice;
      if (Remaining == 0)
        return MachineStatus::Running; // fuel exhausted
      if (DeadlineMillis > 0 && millisSince(T0) >= DeadlineMillis) {
        TimedOut = true;
        return MachineStatus::Running;
      }
    }
    if (St != MachineStatus::Suspended)
      return St;
    if (!Handler(M))
      return MachineStatus::Suspended; // unhandled yield
    if (M.status() == MachineStatus::Suspended)
      return MachineStatus::Suspended; // handler did not actually resume
  }
}

} // namespace

JobResult Engine::runJob(const Job &J, uint64_t Id) {
  JobResult R;
  R.Id = Id;

  // Resolve the program: pre-interned artifact, or compile via the cache.
  std::shared_ptr<const ProgramArtifact> Art = J.Artifact;
  if (!Art) {
    auto C0 = std::chrono::steady_clock::now();
    if (Cache)
      Art = Cache->getOrCompile(J.Request, &R.CacheHit);
    else
      Art = compileArtifact(J.Request);
    R.CompileMillis = millisSince(C0);
  } else {
    R.CacheHit = true; // the caller interned it; no compile ran here
  }
  if (!Art->ok()) {
    R.CompileError = Art->error();
    return R;
  }

  std::unique_ptr<Executor> Exec = Art->newExecutor(J.B);
  Executor &M = *Exec;

  // Per-job observability: every event stream is tagged with the job id.
  std::unique_ptr<TraceSink> Trace;
  if (J.TraceTo) {
    TraceOptions TO = J.Trace;
    TO.JobId = Id;
    Trace = std::make_unique<TraceSink>(*J.TraceTo, TO);
  }
  Profiler Prof;
  Prof.JobId = Id;
  MultiObserver Multi;
  if (Trace)
    Multi.add(Trace.get());
  if (J.CollectProfile)
    Multi.add(&Prof);
  Multi.add(J.Obs);
  if (Multi.size() == 1)
    M.setObserver(Trace ? static_cast<MachineObserver *>(Trace.get())
                        : (J.CollectProfile
                               ? static_cast<MachineObserver *>(&Prof)
                               : J.Obs));
  else if (!Multi.empty())
    M.setObserver(&Multi);

  auto R0 = std::chrono::steady_clock::now();
  M.start(J.Entry, J.Args);

  MachineStatus St;
  switch (J.Dispatcher) {
  case DispatcherKind::Unwind: {
    UnwindingDispatcher D(M);
    St = runBudgeted(
        M, [&](Executor &) { return D.dispatch() == DispatchResult::Handled; },
        J.MaxSteps, J.DeadlineMillis, R.TimedOut);
    break;
  }
  case DispatcherKind::Cut: {
    CuttingDispatcher D(M);
    St = runBudgeted(
        M, [&](Executor &) { return D.dispatch() == DispatchResult::Handled; },
        J.MaxSteps, J.DeadlineMillis, R.TimedOut);
    break;
  }
  case DispatcherKind::None:
  default:
    St = runBudgeted(M, [](Executor &) { return false; }, J.MaxSteps,
                     J.DeadlineMillis, R.TimedOut);
    break;
  }
  R.RunMillis = millisSince(R0);

  R.Status = St;
  R.MachineStats = M.stats();
  if (St == MachineStatus::Halted)
    R.Results = M.argArea();
  else if (St == MachineStatus::Wrong) {
    R.WrongReason = M.wrongReason();
    R.WrongLoc = M.wrongLoc();
  }
  if (Trace)
    Trace->finish();
  if (J.CollectProfile) {
    JsonWriter W;
    Prof.writeJson(W);
    R.ProfileJson = W.take();
  }
  return R;
}

uint64_t Engine::submit(Job J) {
  uint64_t Id = NextId.fetch_add(1, std::memory_order_relaxed);
  auto Shared = std::make_shared<Job>(std::move(J));
  Pool.submit([this, Shared, Id] {
    JobResult R = runJob(*Shared, Id);
    {
      std::lock_guard<std::mutex> Lock(ResMu);
      Results.emplace(Id, std::move(R));
    }
    ResCv.notify_all();
  });
  return Id;
}

JobResult Engine::wait(uint64_t Id) {
  std::unique_lock<std::mutex> Lock(ResMu);
  ResCv.wait(Lock, [&] { return Results.count(Id) != 0; });
  auto It = Results.find(Id);
  JobResult R = std::move(It->second);
  Results.erase(It);
  return R;
}

std::vector<JobResult> Engine::run(std::vector<Job> Jobs) {
  std::vector<uint64_t> Ids;
  Ids.reserve(Jobs.size());
  for (Job &J : Jobs)
    Ids.push_back(submit(std::move(J)));
  std::vector<JobResult> Out;
  Out.reserve(Ids.size());
  for (uint64_t Id : Ids)
    Out.push_back(wait(Id));
  return Out;
}
