//===- engine/Engine.cpp --------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"

#include "engine/Cache.h"
#include "engine/RunBudget.h"
#include "engine/Session.h"
#include "obs/Json.h"
#include "obs/Profiler.h"
#include "rts/Dispatchers.h"
#include "rts/RuntimeInterface.h"
#include "sched/Scheduler.h"
#include "sem/Machine.h"
#include "vm/Threaded.h"
#include "vm/Vm.h"

#include <chrono>
#include <sstream>

using namespace cmm;
using namespace cmm::engine;

//===----------------------------------------------------------------------===//
// Backends
//===----------------------------------------------------------------------===//

std::string_view cmm::engine::backendName(Backend B) {
  switch (B) {
  case Backend::Vm:
    return "vm";
  case Backend::Threaded:
    return "threaded";
  case Backend::Walk:
    break;
  }
  return "walk";
}

std::optional<Backend> cmm::engine::parseBackend(std::string_view Name) {
  if (Name == "walk")
    return Backend::Walk;
  if (Name == "vm")
    return Backend::Vm;
  if (Name == "threaded")
    return Backend::Threaded;
  return std::nullopt;
}

std::unique_ptr<Executor> cmm::engine::makeExecutor(Backend B,
                                                    const IrProgram &Prog) {
  return makeExecutor(B, Prog, nullptr);
}

std::unique_ptr<Executor>
cmm::engine::makeExecutor(Backend B, const IrProgram &Prog,
                          std::shared_ptr<const CompiledProgram> Bytecode,
                          std::shared_ptr<const ThreadedProgram> Threaded) {
  switch (B) {
  case Backend::Walk:
    return std::make_unique<Machine>(Prog);
  case Backend::Vm:
    if (Bytecode)
      return std::make_unique<VmMachine>(Prog, std::move(Bytecode));
    return std::make_unique<VmMachine>(Prog);
  case Backend::Threaded:
    if (Threaded)
      return std::make_unique<ThreadedMachine>(Prog, std::move(Threaded));
    if (Bytecode)
      return std::make_unique<ThreadedMachine>(Prog,
                                               fuseProgram(std::move(Bytecode)));
    return std::make_unique<ThreadedMachine>(Prog);
  }
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Engine
//===----------------------------------------------------------------------===//

Engine::Engine(EngineOptions OptsIn)
    : Opts(OptsIn), JM(Registry),
      Cache(Opts.EnableCache
                ? std::make_unique<ModuleCache>(Opts.CacheCapacity, &Registry,
                                                Opts.CacheDir)
                : nullptr),
      Epoch(std::chrono::steady_clock::now()), Pool(Opts.Threads, &Registry) {
  if (Opts.TraceTo) {
    // The merged trace: one Chrome document on one wall-clock timeline.
    // Job lifecycle spans live in pid 0 (one tid per pool worker); sampled
    // jobs splice their machine events in under their own pid.
    TraceOptions TO;
    TO.Fmt = TraceOptions::Format::Chrome;
    TO.WallClock = true;
    TO.Epoch = Epoch;
    TO.Pid = 0;
    EngTrace = std::make_unique<TraceSink>(*Opts.TraceTo, TO);
    // Name the tracks up front (Chrome metadata events).
    auto Meta = [&](uint64_t Tid, std::string_view Name) {
      JsonWriter W;
      W.beginObject();
      W.field("name", "thread_name");
      W.field("ph", "M");
      W.field("pid", uint64_t(0));
      W.field("tid", Tid);
      W.key("args");
      W.beginObject();
      W.field("name", Name);
      W.endObject();
      W.endObject();
      EngTrace->emitRaw(W.take());
    };
    {
      JsonWriter W;
      W.beginObject();
      W.field("name", "process_name");
      W.field("ph", "M");
      W.field("pid", uint64_t(0));
      W.key("args");
      W.beginObject();
      W.field("name", "cmmex engine");
      W.endObject();
      W.endObject();
      EngTrace->emitRaw(W.take());
    }
    Meta(0, "caller");
    for (unsigned I = 0; I < Pool.threadCount(); ++I)
      Meta(I + 1, "worker-" + std::to_string(I));
  }
  if (Opts.SnapshotTo)
    Exporter = std::make_unique<MetricsExporter>(Registry, *Opts.SnapshotTo,
                                                 Opts.SnapshotIntervalMillis);
}

// Destruction order (reverse declaration): the pool joins first, so no job
// is in flight when the exporter writes its final snapshot and the merged
// trace closes its JSON document; the registry goes last.
Engine::~Engine() = default;

uint64_t Engine::nowMicros() const {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - Epoch)
                      .count());
}

bool Engine::sampledForTrace(uint64_t Id) const {
  return EngTrace && Opts.TraceMachineSample != 0 && Id != 0 &&
         Id % Opts.TraceMachineSample == 0;
}

void Engine::emitEngineEvent(std::string Line) {
  if (!EngTrace)
    return;
  std::lock_guard<std::mutex> Lock(TraceMu);
  EngTrace->emitRaw(std::move(Line));
}

void Engine::emitEngineSpan(std::string_view Name, uint64_t JobId,
                            unsigned Tid, uint64_t TsMicros,
                            uint64_t DurMicros) {
  if (!EngTrace)
    return;
  JsonWriter W;
  W.beginObject();
  W.field("name", Name);
  W.field("cat", "engine");
  W.field("ph", "X");
  W.field("ts", TsMicros);
  W.field("dur", DurMicros);
  W.field("pid", uint64_t(0));
  W.field("tid", uint64_t(Tid));
  W.key("args");
  W.beginObject();
  W.field("job", JobId);
  W.endObject();
  W.endObject();
  emitEngineEvent(W.take());
}

std::shared_ptr<const ProgramArtifact>
Engine::compile(const CompileRequest &Req) {
  if (Cache)
    return Cache->getOrCompile(Req);
  return compileArtifact(Req);
}

CacheStats Engine::cacheStats() const {
  return Cache ? Cache->stats() : CacheStats{};
}

using cmm::engine::detail::millisSince;

const IrProgram *
Engine::resolveProgram(const Job &J, uint64_t Id, unsigned Tid,
                       uint64_t JobT0, JobResult &R,
                       std::shared_ptr<const ProgramArtifact> &Art) {
  if (J.Program)
    return J.Program.get();
  auto C0 = std::chrono::steady_clock::now();
  Art = J.Artifact;
  if (Art) {
    R.CacheHit = true; // the caller interned it; no compile ran here
  } else {
    if (Cache)
      Art = Cache->getOrCompile(J.Request, &R.CacheHit);
    else
      Art = compileArtifact(J.Request);
    R.CompileMillis = millisSince(C0);
    // Per-job artifact-resolution latency: near-zero on a hit, a real
    // compile on a miss, the owner's compile time on a single-flight
    // join. cache.compile_micros holds actual compiles only.
    uint64_t CompileUs = uint64_t(R.CompileMillis * 1000.0);
    JM.CompileMicros.record(CompileUs);
    emitEngineSpan("compile", Id, Tid, JobT0, CompileUs);
  }
  if (!Art->ok()) {
    R.CompileError = Art->error();
    JM.CompileErrors.add(1);
    return nullptr;
  }
  return Art->program();
}

JobResult Engine::runScheduled(const Job &J,
                               const std::shared_ptr<const ProgramArtifact> &Art,
                               JobResult R) {
  sched::SchedOptions SO;
  SO.SliceFuel = J.Sched.SliceFuel;
  SO.Drivers = J.Sched.Drivers;
  SO.MaxThreads = J.Sched.MaxThreads;
  SO.MaxStepsPerThread = J.MaxSteps;
  SO.Exn = J.Dispatcher == DispatcherKind::Unwind ? sched::ExnDispatch::Unwind
           : J.Dispatcher == DispatcherKind::Cut  ? sched::ExnDispatch::Cut
                                                  : sched::ExnDispatch::None;
  // The factory co-owns the program so a schedule's executors stay valid
  // even if the caller drops its reference mid-run.
  Backend B = J.B;
  sched::Scheduler::ExecutorFactory F;
  if (Art)
    F = [Art, B] { return Art->newExecutor(B); };
  else {
    std::shared_ptr<const IrProgram> Prog = J.Program;
    F = [Prog, B] { return makeExecutor(B, *Prog); };
  }
  sched::Scheduler S(
      std::move(F), SO,
      [this](std::function<void()> T) { Pool.submit(std::move(T)); },
      &Registry);

  auto R0 = std::chrono::steady_clock::now();
  sched::SchedResult SR = S.run(J.Entry, J.Args);
  R.RunMillis = millisSince(R0);
  R.Status = SR.Status;
  R.Results = SR.Results;
  R.WrongReason = SR.WrongReason;
  R.WrongLoc = SR.WrongLoc;
  R.Deadlocked = SR.Deadlocked;
  R.MachineStats = SR.MachineStats;
  R.SchedThreads = SR.ThreadsSpawned;
  R.SchedSwitches = SR.ContextSwitches;
  switch (R.Status) {
  case MachineStatus::Halted:
    JM.Halted.add(1);
    break;
  case MachineStatus::Wrong:
    JM.Wrong.add(1);
    break;
  case MachineStatus::Suspended:
    JM.Suspended.add(1);
    break;
  case MachineStatus::Running:
    // Deadlocks land here too (sched.deadlocks disambiguates).
    JM.FuelExhausted.add(1);
    break;
  default:
    break;
  }
  return R;
}

JobResult Engine::runJob(const Job &J, uint64_t Id) {
  // Synchronous callers pass Id 0; give the job a real id anyway when the
  // merged trace is on, so its spans are distinguishable (and samplable).
  if (Id == 0 && EngTrace)
    Id = NextId.fetch_add(1, std::memory_order_relaxed);
  JobResult R;
  R.Id = Id;
  unsigned Tid = unsigned(ThreadPool::currentWorker() + 1); // 0 = off-pool
  JM.Jobs.add(1);
  (J.B == Backend::Walk   ? JM.BackendWalk
   : J.B == Backend::Vm   ? JM.BackendVm
                          : JM.BackendThreaded)
      .add(1);
  JM.Running.add(1);
  uint64_t JobT0 = nowMicros();

  // Resolve the program: caller-compiled IR, pre-interned artifact, or a
  // request compiled through the cache.
  std::shared_ptr<const ProgramArtifact> Art;
  const IrProgram *Prog = resolveProgram(J, Id, Tid, JobT0, R, Art);
  if (!Prog) {
    JM.Running.sub(1);
    JM.JobMicros.record(nowMicros() - JobT0);
    return R;
  }

  if (J.Sched.Enabled) {
    JobResult SR = runScheduled(J, Art, R);
    JM.RunMicros.record(uint64_t(SR.RunMillis * 1000.0));
    JM.JobMicros.record(nowMicros() - JobT0);
    JM.Running.sub(1);
    if (EngTrace)
      emitEngineSpan("run", Id, Tid, JobT0, uint64_t(SR.RunMillis * 1000.0));
    return SR;
  }

  std::unique_ptr<Executor> Exec =
      Art ? Art->newExecutor(J.B) : makeExecutor(J.B, *Prog);
  Executor &M = *Exec;

  // Per-job observability: every event stream is tagged with the job id.
  std::unique_ptr<TraceSink> Trace;
  if (J.TraceTo) {
    TraceOptions TO = J.Trace;
    TO.JobId = Id;
    Trace = std::make_unique<TraceSink>(*J.TraceTo, TO);
  }
  // Sampled jobs additionally buffer their machine events (bare Chrome
  // lines, wall-clock timestamps, their own pid) for splicing into the
  // merged engine trace when the job completes.
  std::ostringstream SampleBuf;
  std::unique_ptr<TraceSink> Sample;
  if (sampledForTrace(Id)) {
    TraceOptions TO;
    TO.Fmt = TraceOptions::Format::Chrome;
    TO.WallClock = true;
    TO.Epoch = Epoch;
    TO.Pid = Id;
    TO.JobId = Id;
    TO.BareLines = true;
    Sample = std::make_unique<TraceSink>(SampleBuf, TO);
  }
  Profiler Prof;
  Prof.JobId = Id;
  MultiObserver Multi;
  if (Trace)
    Multi.add(Trace.get());
  if (Sample)
    Multi.add(Sample.get());
  if (J.CollectProfile)
    Multi.add(&Prof);
  Multi.add(J.Obs);
  if (Multi.size() == 1)
    M.setObserver(Multi.front());
  else if (!Multi.empty())
    M.setObserver(&Multi);

  auto R0 = std::chrono::steady_clock::now();
  uint64_t RunT0 = nowMicros();
  M.start(J.Entry, J.Args);

  RunBudget Budget{J.MaxSteps, J.DeadlineMillis, J.MaxMemoryBytes};
  BudgetOutcome Out;
  MachineStatus St;
  switch (J.Dispatcher) {
  case DispatcherKind::Unwind: {
    UnwindingDispatcher D(M);
    St = detail::runBudgeted(
        M, [&](Executor &) { return D.dispatch() == DispatchResult::Handled; },
        Budget, DeadlineSliceSteps, Out, R.ResumeCycles);
    R.RtWalk = D.walkStats();
    R.RtDispatches = D.dispatches();
    break;
  }
  case DispatcherKind::Cut: {
    CuttingDispatcher D(M);
    St = detail::runBudgeted(
        M, [&](Executor &) { return D.dispatch() == DispatchResult::Handled; },
        Budget, DeadlineSliceSteps, Out, R.ResumeCycles);
    R.RtDispatches = D.dispatches();
    break;
  }
  case DispatcherKind::None:
  default:
    St = detail::runBudgeted(M, [](Executor &) { return false; }, Budget,
                             DeadlineSliceSteps, Out, R.ResumeCycles);
    break;
  }
  R.TimedOut = Out.TimedOut;
  R.MemExceeded = Out.MemExceeded;
  R.RunMillis = millisSince(R0);

  R.Status = St;
  R.MachineStats = M.stats();
  if (St == MachineStatus::Halted || St == MachineStatus::Suspended)
    R.Results = M.argArea();
  if (St == MachineStatus::Wrong) {
    R.WrongReason = M.wrongReason();
    R.WrongLoc = M.wrongLoc();
  }
  if (Trace)
    Trace->finish();
  if (J.CollectProfile) {
    JsonWriter W;
    Prof.writeJson(W);
    R.ProfileJson = W.take();
  }

  // Lifecycle accounting.
  switch (St) {
  case MachineStatus::Halted:
    JM.Halted.add(1);
    break;
  case MachineStatus::Wrong:
    JM.Wrong.add(1);
    break;
  case MachineStatus::Suspended:
    JM.Suspended.add(1);
    break;
  case MachineStatus::Running:
    (R.TimedOut      ? JM.Timeouts
     : R.MemExceeded ? JM.MemExceeded
                     : JM.FuelExhausted)
        .add(1);
    break;
  default:
    break;
  }
  JM.ResumeCycles.add(R.ResumeCycles);
  JM.ResumeCyclesPerJob.record(R.ResumeCycles);
  uint64_t RunUs = uint64_t(R.RunMillis * 1000.0);
  JM.RunMicros.record(RunUs);
  JM.JobMicros.record(nowMicros() - JobT0);
  JM.Running.sub(1);

  // Merged trace: the run span, then the buffered machine events (under
  // one lock so a job's events stay contiguous in the file).
  if (EngTrace) {
    emitEngineSpan("run", Id, Tid, RunT0, RunUs);
    if (Sample) {
      Sample->finish();
      std::lock_guard<std::mutex> Lock(TraceMu);
      {
        JsonWriter W;
        W.beginObject();
        W.field("name", "process_name");
        W.field("ph", "M");
        W.field("pid", Id);
        W.key("args");
        W.beginObject();
        W.field("name", "job " + std::to_string(Id) + " machine");
        W.endObject();
        W.endObject();
        EngTrace->emitRaw(W.take());
      }
      std::string Buf = SampleBuf.str();
      size_t Pos = 0;
      while (Pos < Buf.size()) {
        size_t Nl = Buf.find('\n', Pos);
        if (Nl == std::string::npos)
          Nl = Buf.size();
        if (Nl > Pos)
          EngTrace->emitRaw(Buf.substr(Pos, Nl - Pos));
        Pos = Nl + 1;
      }
    }
  }
  return R;
}

uint64_t Engine::submit(Job J) {
  uint64_t Id = NextId.fetch_add(1, std::memory_order_relaxed);
  auto Shared = std::make_shared<Job>(std::move(J));
  JM.Queued.add(1);
  auto SubmitT = std::chrono::steady_clock::now();
  uint64_t SubmitUs = nowMicros();
  Pool.submit([this, Shared, Id, SubmitT, SubmitUs] {
    JM.Queued.sub(1);
    double QueueMs = millisSince(SubmitT);
    uint64_t QueueUs = uint64_t(QueueMs * 1000.0);
    JM.QueueMicros.record(QueueUs);
    emitEngineSpan("queue", Id,
                   unsigned(ThreadPool::currentWorker() + 1), SubmitUs,
                   QueueUs);
    JobResult R = runJob(*Shared, Id);
    R.QueueMillis = QueueMs;
    {
      std::lock_guard<std::mutex> Lock(ResMu);
      Results.emplace(Id, std::move(R));
    }
    ResCv.notify_all();
  });
  return Id;
}

JobResult Engine::wait(uint64_t Id) {
  std::unique_lock<std::mutex> Lock(ResMu);
  ResCv.wait(Lock, [&] { return Results.count(Id) != 0; });
  auto It = Results.find(Id);
  JobResult R = std::move(It->second);
  Results.erase(It);
  return R;
}

std::vector<JobResult> Engine::run(std::vector<Job> Jobs) {
  std::vector<uint64_t> Ids;
  Ids.reserve(Jobs.size());
  for (Job &J : Jobs)
    Ids.push_back(submit(std::move(J)));
  std::vector<JobResult> Out;
  Out.reserve(Ids.size());
  for (uint64_t Id : Ids)
    Out.push_back(wait(Id));
  return Out;
}
