//===- engine/Cache.h - Content-hash artifact cache -------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine's artifact cache: CompileRequest -> ProgramArtifact, keyed by
/// the 128-bit content hash of cacheKeyFor (docs/ENGINE.md). Concurrent
/// requests for one key are deduplicated single-flight — the first caller
/// compiles inline while the rest block on the slot's condition variable —
/// and a bounded LRU evicts cold entries (holders keep evicted artifacts
/// alive through their shared_ptr, so eviction is invisible to in-flight
/// jobs).
///
/// Internal to src/engine; embedders go through Engine::compile.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_ENGINE_CACHE_H
#define CMM_ENGINE_CACHE_H

#include "engine/Engine.h"

#include <list>

namespace cmm::engine {

class ModuleCache {
public:
  /// \p Capacity in artifacts; 0 = unbounded.
  explicit ModuleCache(size_t Capacity);

  /// The cached artifact for \p Req, compiling it (once, whatever the
  /// concurrency) on first use. Never null. \p WasHit, when non-null,
  /// reports whether the artifact existed (or was already in flight)
  /// before this call.
  std::shared_ptr<const ProgramArtifact>
  getOrCompile(const CompileRequest &Req, bool *WasHit = nullptr);

  CacheStats stats() const;

private:
  struct Slot {
    std::mutex Mu;
    std::condition_variable Cv;
    bool Ready = false;
    std::shared_ptr<const ProgramArtifact> Art;
  };

  /// Map value: the slot plus this key's position in the LRU list.
  struct Entry {
    std::shared_ptr<Slot> S;
    std::list<CacheKey>::iterator LruIt;
  };

  mutable std::mutex Mu;
  std::unordered_map<CacheKey, Entry, CacheKeyHash> Map;
  std::list<CacheKey> Lru; ///< front = most recently used
  size_t Capacity;

  std::atomic<uint64_t> Lookups{0}, Hits{0}, IrCompiles{0}, Evictions{0};
  /// Shared with every artifact this cache compiles, so an artifact that
  /// outlives the cache can still count its first bytecode() compile.
  std::shared_ptr<std::atomic<uint64_t>> BcCompiles =
      std::make_shared<std::atomic<uint64_t>>(0);
};

} // namespace cmm::engine

#endif // CMM_ENGINE_CACHE_H
