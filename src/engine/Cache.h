//===- engine/Cache.h - Content-hash artifact cache -------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine's artifact cache: CompileRequest -> ProgramArtifact, keyed by
/// the 128-bit content hash of cacheKeyFor (docs/ENGINE.md). Concurrent
/// requests for one key are deduplicated single-flight — the first caller
/// compiles inline while the rest block on the slot's condition variable —
/// and a bounded LRU evicts cold entries (holders keep evicted artifacts
/// alive through their shared_ptr, so eviction is invisible to in-flight
/// jobs).
///
/// Internal to src/engine; embedders go through Engine::compile.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_ENGINE_CACHE_H
#define CMM_ENGINE_CACHE_H

#include "engine/Engine.h"
#include "obs/Metrics.h"

#include <list>

namespace cmm::engine {

class ModuleCache {
public:
  /// \p Capacity in artifacts; 0 = unbounded. Metrics (lookups, hits,
  /// misses, evictions, single-flight joins, compile latency, disk tier)
  /// land in \p Reg when given, in MetricsRegistry::null() otherwise — the
  /// engine passes its registry so the counters appear in snapshots.
  /// A non-empty \p CacheDir enables the persistent tier (ArtifactStore):
  /// misses consult `<CacheDir>/<keyhex>.cmmart` before compiling, and
  /// successful compiles are written back.
  explicit ModuleCache(size_t Capacity, MetricsRegistry *Reg = nullptr,
                       std::string CacheDir = {});

  /// The cached artifact for \p Req, compiling it (once, whatever the
  /// concurrency) on first use. Never null. \p WasHit, when non-null,
  /// reports whether the artifact existed (or was already in flight)
  /// before this call.
  std::shared_ptr<const ProgramArtifact>
  getOrCompile(const CompileRequest &Req, bool *WasHit = nullptr);

  CacheStats stats() const;

private:
  struct Slot {
    std::mutex Mu;
    std::condition_variable Cv;
    bool Ready = false;
    std::shared_ptr<const ProgramArtifact> Art;
  };

  /// Map value: the slot plus this key's position in the LRU list.
  struct Entry {
    std::shared_ptr<Slot> S;
    std::list<CacheKey>::iterator LruIt;
  };

  /// Publishes the owner's result into \p S, wakes the waiters, and — when
  /// the compile failed — removes the key from the index again so the next
  /// request retries instead of being served the cached error forever.
  std::shared_ptr<const ProgramArtifact>
  publish(const CacheKey &Key, const std::shared_ptr<Slot> &S,
          std::shared_ptr<const ProgramArtifact> Art);

  mutable std::mutex Mu;
  std::unordered_map<CacheKey, Entry, CacheKeyHash> Map;
  std::list<CacheKey> Lru; ///< front = most recently used
  size_t Capacity;
  /// Persistent-tier directory; empty = memory-only.
  std::string CacheDir;

  // Metric name catalog: docs/OBSERVABILITY.md § "Engine telemetry".
  Counter &LookupsC;    ///< cache.lookups
  Counter &HitsC;       ///< cache.hits
  Counter &MissesC;     ///< cache.misses
  Counter &IrCompilesC; ///< cache.ir_compiles
  Counter &EvictionsC;  ///< cache.evictions
  Counter &JoinsC;      ///< cache.singleflight_joins
  Counter &DiskHitsC;   ///< cache.disk_hits
  Counter &DiskWritesC; ///< cache.disk_writes
  Counter &DiskErrorsC; ///< cache.disk_errors
  Histogram &CompileMicrosH; ///< cache.compile_micros
  /// Shared with every artifact this cache compiles, so an artifact that
  /// outlives the cache can still count its first bytecode() compile. The
  /// registry sees it as the cache.bytecode_compiles probe (the probe holds
  /// its own shared_ptr, so it stays readable after the cache dies; the
  /// engine destroys its registry last).
  std::shared_ptr<std::atomic<uint64_t>> BcCompiles =
      std::make_shared<std::atomic<uint64_t>>(0);
  /// Threaded-tier accounting, shared the same way; surfaced as the
  /// vm.threaded_compiles / vm.fusion_hits / vm.fusion_misses /
  /// vm.threaded_compile_micros probes.
  std::shared_ptr<ThreadedCounters> TCnt =
      std::make_shared<ThreadedCounters>();
};

} // namespace cmm::engine

#endif // CMM_ENGINE_CACHE_H
