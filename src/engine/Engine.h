//===- engine/Engine.h - Batch execution engine -----------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The embedding API of cmmex (docs/ENGINE.md): one facade over everything a
/// host needs to compile and run Abstract C-- programs at scale.
///
///  - makeExecutor(Backend, Prog): the one way to construct an executor.
///    Every consumer — cmmi, cmmdiff, the differential harness, the test
///    suites, the benches — goes through it instead of naming Machine or
///    VmMachine directly, so adding a backend is a one-line change here.
///
///  - ProgramArtifact: an immutable compiled unit (checked IR plus lazily
///    compiled VM bytecode, or a structured compile error). Artifacts are
///    interned by a content-hash cache with single-flight compilation: when
///    N threads request the same (sources, options) key, exactly one
///    compiles and the rest wait for its result.
///
///  - Engine: a thread-sharded batch runner. submit(Job) enqueues one run
///    (program + backend + entry + args + dispatcher + fuel/deadline) on a
///    work-stealing pool; wait(id) returns its JobResult. Jobs are
///    isolated: each gets a fresh executor, and a job that fails to
///    compile, goes wrong, or exhausts its fuel reports that in its result
///    without disturbing the rest of the batch.
///
/// Thread-safety: Engine, its cache, and ProgramArtifact are thread-safe.
/// Executors are not — one executor is one C-- thread and must be driven by
/// one host thread at a time (see sem/Memory.h); the engine enforces this
/// by construction, giving every job its own executor.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_ENGINE_ENGINE_H
#define CMM_ENGINE_ENGINE_H

#include "engine/ThreadPool.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "opt/PassManager.h"
#include "rts/RuntimeInterface.h"
#include "sem/Executor.h"
#include "vm/Bytecode.h"
#include "vm/Fuse.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace cmm::engine {

class JobSession;
class ModuleCache;

//===----------------------------------------------------------------------===//
// Backends
//===----------------------------------------------------------------------===//

/// The executor backends (sem/Executor.h lists their contracts).
enum class Backend : uint8_t { Walk, Vm, Threaded };

inline constexpr Backend AllBackends[] = {Backend::Walk, Backend::Vm,
                                          Backend::Threaded};

std::string_view backendName(Backend B);
std::optional<Backend> parseBackend(std::string_view Name);

/// Constructs an executor for \p Prog. The single construction point every
/// tool and test shares.
std::unique_ptr<Executor> makeExecutor(Backend B, const IrProgram &Prog);

/// As above, but the VM and threaded backends reuse \p Bytecode instead of
/// recompiling, and the threaded backend reuses a pre-fused \p Threaded
/// stream instead of re-running the fusion pass (null falls back to
/// compiling/fusing; the walker ignores both).
std::unique_ptr<Executor>
makeExecutor(Backend B, const IrProgram &Prog,
             std::shared_ptr<const CompiledProgram> Bytecode,
             std::shared_ptr<const ThreadedProgram> Threaded = nullptr);

//===----------------------------------------------------------------------===//
// Compilation artifacts and the content-hash cache
//===----------------------------------------------------------------------===//

/// Everything that determines a compiled artifact. Two requests with equal
/// cacheKeyFor() are interchangeable.
struct CompileRequest {
  std::vector<std::string> Sources;
  bool IncludeStdLib = true;
  bool Optimize = false;
  /// Optimizer configuration; only read when Optimize is set, but hashed
  /// unconditionally (the key is a pure function of the struct).
  OptOptions Opt;
};

/// 128-bit content hash identifying a CompileRequest (docs/ENGINE.md
/// documents the exact key definition).
struct CacheKey {
  uint64_t Hi = 0, Lo = 0;
  bool operator==(const CacheKey &O) const { return Hi == O.Hi && Lo == O.Lo; }
  std::string str() const;
};

struct CacheKeyHash {
  size_t operator()(const CacheKey &K) const {
    return static_cast<size_t>(K.Hi ^ (K.Lo * 0x9e3779b97f4a7c15ull));
  }
};

/// The content hash of \p Req: every source text, the stdlib flag, and the
/// full optimizer configuration.
CacheKey cacheKeyFor(const CompileRequest &Req);

/// Threaded-tier compile accounting, shared between a cache and the
/// artifacts it interned. Same ownership story as the artifact's bytecode
/// counter: artifacts are handed to embedders and may outlive their Engine,
/// so the cache's metric probes co-own this block instead of artifacts
/// holding registry references.
struct ThreadedCounters {
  std::atomic<uint64_t> Compiles{0};     ///< actual fusion-pass runs
  std::atomic<uint64_t> FusionHits{0};   ///< fused sites, summed over runs
  std::atomic<uint64_t> FusionMisses{0}; ///< unfused candidate sites
  std::atomic<uint64_t> Micros{0};       ///< cumulative fusion-pass time
};

/// One compiled unit: checked (and possibly optimized) IR, or a structured
/// compile error. Immutable once published, so any number of threads may
/// run executors over it concurrently; the VM bytecode and the threaded
/// tier's fused stream are each compiled on first use, once, under their
/// own single-flight locks.
class ProgramArtifact {
public:
  ProgramArtifact() = default;

  /// Null exactly when error() is non-empty.
  const IrProgram *program() const { return Prog.get(); }
  /// Compile / optimizer-validation failure, in the phase-prefixed form the
  /// differential harness reports ("compile failed: ...").
  const std::string &error() const { return Error; }
  bool ok() const { return Prog != nullptr; }
  const CacheKey &key() const { return Key; }

  /// The VM bytecode for program(), compiled at most once per artifact.
  /// Precondition: ok().
  std::shared_ptr<const CompiledProgram> bytecode() const;

  /// The threaded tier's fused stream over bytecode(), built at most once
  /// per artifact (under the default FusionTable::all()). Precondition:
  /// ok().
  std::shared_ptr<const ThreadedProgram> threaded() const;

  /// Fresh executor over this artifact; the VM backend shares bytecode(),
  /// the threaded backend shares threaded(). Precondition: ok().
  std::unique_ptr<Executor> newExecutor(Backend B) const;

private:
  friend void
  populateArtifact(ProgramArtifact &A, const CompileRequest &Req,
                   std::shared_ptr<std::atomic<uint64_t>> BcCounter,
                   std::shared_ptr<ThreadedCounters> TCounters);
  /// The persistent tier deserializes directly into the private fields
  /// (Key, Prog, and a pre-compiled Bc), bypassing the front end.
  friend class ArtifactStore;
  /// Reports a precondition violation — bytecode()/threaded()/newExecutor()
  /// on an artifact whose compile failed — and aborts with the compile
  /// error instead of dereferencing the null program.
  [[noreturn]] void failErrored(const char *What) const;
  CacheKey Key;
  std::shared_ptr<const IrProgram> Prog;
  std::string Error;
  mutable std::mutex BcMu;
  mutable std::shared_ptr<const CompiledProgram> Bc;
  mutable std::mutex TMu;
  mutable std::shared_ptr<const ThreadedProgram> Tp;
  /// Bytecode-compile counter, shared with the cache that interned this
  /// artifact (null outside a cache). Shared ownership, not a raw pointer:
  /// artifacts are handed to embedders and may outlive their Engine.
  std::shared_ptr<std::atomic<uint64_t>> BcCompiles;
  /// Threaded-tier accounting, same sharing story (null outside a cache).
  std::shared_ptr<ThreadedCounters> TCnt;
};

/// Compiles \p Req outside any cache (one-shot embedders, tests).
std::shared_ptr<const ProgramArtifact>
compileArtifact(const CompileRequest &Req);

/// Cache observability (EngineTest pins the single-flight guarantee on
/// these).
struct CacheStats {
  uint64_t Lookups = 0;
  uint64_t Hits = 0;
  /// Lookups that found no entry (Lookups = Hits + Misses; misses include
  /// the lookups served by the disk tier without an IR compile).
  uint64_t Misses = 0;
  uint64_t IrCompiles = 0;       ///< actual front-end + optimizer runs
  uint64_t BytecodeCompiles = 0; ///< actual IR-to-bytecode runs
  uint64_t ThreadedCompiles = 0; ///< actual fusion-pass runs
  uint64_t Evictions = 0;
  /// Lookups that found another thread's compile of the same key in flight
  /// and blocked for its result (counted within Hits).
  uint64_t SingleFlightJoins = 0;
  /// Persistent tier (EngineOptions::CacheDir; all zero without one).
  uint64_t DiskHits = 0;   ///< misses served by a valid on-disk artifact
  uint64_t DiskWrites = 0; ///< artifacts persisted after a compile
  uint64_t DiskErrors = 0; ///< invalid/corrupt files or failed writes
};

//===----------------------------------------------------------------------===//
// Jobs
//===----------------------------------------------------------------------===//

/// Which front-end run-time system services yields during a job.
enum class DispatcherKind : uint8_t { None, Unwind, Cut };

/// One unit of batch work: run Entry(Args) of a program on a backend.
struct Job {
  /// The program, in decreasing precedence: an already-checked IR program
  /// the caller compiled itself (bypasses the cache entirely; used by cmmi,
  /// which compiles by hand to keep the OptReport)...
  std::shared_ptr<const IrProgram> Program;
  /// ...or pre-interned as an artifact...
  std::shared_ptr<const ProgramArtifact> Artifact;
  /// ...or described by a request the engine compiles through its cache.
  CompileRequest Request;

  Backend B = Backend::Walk;
  std::string Entry = "main";
  std::vector<Value> Args;
  DispatcherKind Dispatcher = DispatcherKind::None;

  /// Fuel: abstract-machine transitions per resume segment (the
  /// runWithRuntime budget). Exhaustion leaves Status == Running.
  uint64_t MaxSteps = ~uint64_t(0);
  /// Wall-clock deadline in milliseconds; 0 disables. Checked between
  /// execution slices, so enforcement granularity is DeadlineSliceSteps.
  double DeadlineMillis = 0;
  /// Memory quota in bytes (page-granular; 0 disables). Checked between
  /// execution slices like the deadline; exceeding it stops the job with
  /// JobResult::MemExceeded set and Status == Running.
  uint64_t MaxMemoryBytes = 0;

  /// Green-threads scheduling (src/sched, docs/SCHEDULER.md). When Enabled,
  /// Entry(Args) runs as green thread 1 of an M:N schedule instead of as a
  /// lone executor: the guest may spawn further threads, talk over bounded
  /// channels, sleep on the virtual clock, and join, through the yield
  /// vocabulary of rts/SchedFormat.h. Job::MaxSteps becomes the per-thread
  /// fuel, Job::Dispatcher services non-scheduler yields inside every green
  /// thread, and extra drivers ride the engine's pool. Per-job observers,
  /// traces, profiles, deadlines, and memory quotas do not apply to
  /// scheduled jobs (a schedule is many executors); sched.* metrics in the
  /// engine registry cover them instead.
  struct SchedSpec {
    bool Enabled = false;
    /// Transitions per cooperative slice.
    uint64_t SliceFuel = 1 << 14;
    /// Host drivers including the submitting one; extras ride the pool.
    unsigned Drivers = 1;
    /// Spawn guard: more live threads than this fails the schedule.
    uint64_t MaxThreads = 1 << 20;
  };
  SchedSpec Sched;

  /// Caller-owned observer, used by this job only (observers are not
  /// thread-safe; never share one across concurrently submitted jobs).
  MachineObserver *Obs = nullptr;
  /// When set, the engine attaches a per-job TraceSink writing here, with
  /// Trace.JobId filled in from the assigned job id (caller-owned stream,
  /// exclusive to this job).
  std::ostream *TraceTo = nullptr;
  TraceOptions Trace;
  /// Attach a per-job Profiler and return its JSON in the result.
  bool CollectProfile = false;
};

/// Everything one job produced. Errors travel through the result — a
/// failing job never aborts its batch.
struct JobResult {
  uint64_t Id = 0;
  /// Compile/validation failure; when non-empty the job never ran.
  std::string CompileError;
  MachineStatus Status = MachineStatus::Idle;
  /// Argument area after Halted (the returned values) or Suspended (the
  /// unhandled yield request, tag first).
  std::vector<Value> Results;
  std::string WrongReason;    ///< after Wrong
  SourceLoc WrongLoc;         ///< after Wrong
  Stats MachineStats;
  /// Dispatcher-side runtime statistics (meaningful when Job::Dispatcher
  /// != None; RtWalk is populated by the unwinding dispatcher only).
  RtStats RtWalk;
  uint64_t RtDispatches = 0;
  /// Completed suspend/resume cycles (yields the dispatcher serviced and
  /// resumed from).
  uint64_t ResumeCycles = 0;
  bool CacheHit = false; ///< artifact came from the cache already compiled
  bool TimedOut = false; ///< stopped by DeadlineMillis
  bool MemExceeded = false; ///< stopped by MaxMemoryBytes
  /// Scheduled jobs (Job::Sched): the schedule quiesced with live parked
  /// threads (Status == Running, reported loudly instead of hanging).
  bool Deadlocked = false;
  uint64_t SchedThreads = 0;  ///< green threads spawned, incl. the main one
  uint64_t SchedSwitches = 0; ///< scheduler slices dispatched
  std::string ProfileJson; ///< with Job::CollectProfile
  double CompileMillis = 0;
  double RunMillis = 0;
  /// Time spent queued between submit() and a worker picking the job up
  /// (0 for synchronous runJob calls).
  double QueueMillis = 0;

  bool ok() const {
    return CompileError.empty() && Status == MachineStatus::Halted;
  }
};

//===----------------------------------------------------------------------===//
// Engine
//===----------------------------------------------------------------------===//

struct EngineOptions {
  /// Worker threads; 0 = hardware concurrency.
  unsigned Threads = 0;
  /// Intern compiled artifacts across jobs. Disabling never changes
  /// results, only throughput (EngineTest pins this).
  bool EnableCache = true;
  /// Cache capacity in artifacts, evicted LRU; 0 = unbounded.
  size_t CacheCapacity = 1024;
  /// Persistent cache directory (docs/ENGINE.md § "Persistent cache").
  /// When non-empty, compiled artifacts are also written to
  /// `<CacheDir>/<keyhex>.cmmart` and cache misses consult the directory
  /// before compiling, so a second process with the same CacheDir starts
  /// disk-warm. Empty disables the disk tier. Requires EnableCache.
  std::string CacheDir;

  /// Engine-wide merged trace (docs/OBSERVABILITY.md § "Engine telemetry").
  /// When set, every job's lifecycle (queue / compile / run spans, on one
  /// wall-clock timeline, one Chrome track per pool worker) is written
  /// here; the stream is caller-owned, must outlive the engine, and is
  /// written under an engine lock, so it must not be shared with per-job
  /// Job::TraceTo sinks. The format is always Chrome trace_event JSON.
  std::ostream *TraceTo = nullptr;
  /// With TraceTo: also record full machine-event traces for every Nth
  /// job (1 = all jobs, 0 = lifecycle spans only). Sampled jobs buffer
  /// their events and splice them into the merged trace at completion,
  /// each under its own Chrome pid.
  unsigned TraceMachineSample = 0;

  /// Periodic metrics snapshots: when set, a MetricsExporter thread
  /// appends one JSON snapshot line to this caller-owned stream every
  /// SnapshotIntervalMillis (plus a final line at engine destruction).
  std::ostream *SnapshotTo = nullptr;
  double SnapshotIntervalMillis = 1000;
};

/// The batch execution engine. One Engine per embedding host; all methods
/// are thread-safe.
class Engine {
public:
  explicit Engine(EngineOptions Opts = {});
  ~Engine();

  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  /// Compiles \p Req through the content-hash cache (single-flight: when N
  /// threads race on one key, exactly one compiles). With the cache
  /// disabled, compiles directly. Never returns null — failures are inside
  /// the artifact.
  std::shared_ptr<const ProgramArtifact> compile(const CompileRequest &Req);

  /// Enqueues \p J; returns the job id to wait on.
  uint64_t submit(Job J);

  /// Blocks until job \p Id finishes and returns (and forgets) its result.
  JobResult wait(uint64_t Id);

  /// submit() all of \p Jobs, wait for all, and return results in the
  /// submission order.
  std::vector<JobResult> run(std::vector<Job> Jobs);

  /// Runs one job synchronously on the calling thread (no pool hop). Used
  /// by the workers and by single-run embedders (cmmi, the harness).
  JobResult runJob(const Job &J, uint64_t Id = 0);

  /// Runs \p J synchronously like runJob, but when it stops Suspended with
  /// an unserviced yield, parks the live executor in a JobSession instead
  /// of discarding it: the caller becomes the dispatcher and continues the
  /// job later through JobSession::resumeRaw / dispatchOnce — possibly from
  /// a different thread, possibly across a protocol boundary (src/svc runs
  /// yields over the wire this way). \p R receives the first segment's
  /// result either way; the session is null when the job already reached a
  /// terminal status (or failed to compile). Sessions must not outlive the
  /// engine. docs/SERVICE.md § "Sessions" describes the lifecycle.
  std::unique_ptr<JobSession> startSession(const Job &J, JobResult &R);

  CacheStats cacheStats() const;
  unsigned threadCount() const { return Pool.threadCount(); }
  ThreadPool &pool() { return Pool; }

  /// The engine's metrics registry (cache, pool, and job metrics all land
  /// here; docs/OBSERVABILITY.md lists the name catalog). Live — counters
  /// keep moving while jobs run.
  MetricsRegistry &metrics() { return Registry; }
  /// One JSON snapshot of metrics(): {"counters":{..},"gauges":{..},
  /// "histograms":{..}}.
  std::string metricsJson() const { return Registry.json(); }

  /// Deadline-check granularity, exposed for the fuel/deadline tests.
  static constexpr uint64_t DeadlineSliceSteps = 1 << 16;

private:
  /// Wired handles for the per-job metrics (the registry mutex is touched
  /// once, here, never per job).
  struct JobMetrics {
    Counter &Jobs, &Halted, &Wrong, &Suspended, &CompileErrors, &Timeouts,
        &FuelExhausted, &MemExceeded, &ResumeCycles;
    /// Session lifecycle (Engine::startSession / engine/Session.h):
    /// sessions opened, wire-level resumes serviced, sessions still parked.
    Counter &Sessions, &SessionResumes;
    Gauge &SessionsOpen;
    /// Per-backend job counts (engine.backend_* — cmmstat buckets these
    /// into its backends report). Indexed by Backend.
    Counter &BackendWalk, &BackendVm, &BackendThreaded;
    Gauge &Queued, &Running;
    Histogram &QueueMicros, &CompileMicros, &RunMicros, &JobMicros,
        &ResumeCyclesPerJob;
    explicit JobMetrics(MetricsRegistry &R)
        : Jobs(R.counter("engine.jobs")),
          Halted(R.counter("engine.jobs_halted")),
          Wrong(R.counter("engine.jobs_wrong")),
          Suspended(R.counter("engine.jobs_suspended")),
          CompileErrors(R.counter("engine.jobs_compile_error")),
          Timeouts(R.counter("engine.jobs_timeout")),
          FuelExhausted(R.counter("engine.jobs_fuel_exhausted")),
          MemExceeded(R.counter("engine.jobs_mem_exceeded")),
          ResumeCycles(R.counter("engine.resume_cycles")),
          Sessions(R.counter("engine.sessions")),
          SessionResumes(R.counter("engine.session_resumes")),
          SessionsOpen(R.gauge("engine.sessions_open")),
          BackendWalk(R.counter("engine.backend_walk_jobs")),
          BackendVm(R.counter("engine.backend_vm_jobs")),
          BackendThreaded(R.counter("engine.backend_threaded_jobs")),
          Queued(R.gauge("engine.jobs_queued")),
          Running(R.gauge("engine.jobs_running")),
          QueueMicros(R.histogram("engine.queue_micros")),
          CompileMicros(R.histogram("engine.compile_micros")),
          RunMicros(R.histogram("engine.run_micros")),
          JobMicros(R.histogram("engine.job_micros")),
          ResumeCyclesPerJob(R.histogram("engine.resume_cycles_per_job")) {}
  };

  /// Sessions count their segments into JM and allocate ids from NextId.
  friend class JobSession;

  /// Resolves a job's program — caller-compiled IR, pre-interned artifact,
  /// or a request compiled through the cache — filling the result's
  /// CacheHit / CompileMillis / CompileError fields and the compile
  /// metrics. Returns null exactly when the compile failed (the error is
  /// in \p R and the failure metrics are already counted).
  const IrProgram *resolveProgram(const Job &J, uint64_t Id, unsigned Tid,
                                  uint64_t JobT0, JobResult &R,
                                  std::shared_ptr<const ProgramArtifact> &Art);

  /// Runs a Job::Sched job as an M:N schedule over the pool: builds an
  /// executor factory from the resolved program, maps the job's fuel and
  /// dispatcher onto SchedOptions, and folds the SchedResult (plus its
  /// outcome accounting) into \p R. \p R already carries the compile
  /// fields.
  JobResult runScheduled(const Job &J,
                         const std::shared_ptr<const ProgramArtifact> &Art,
                         JobResult R);

  /// True when job \p Id 's machine events are recorded into the merged
  /// trace (EngineOptions::TraceMachineSample).
  bool sampledForTrace(uint64_t Id) const;
  /// Splices one pre-rendered Chrome event into the merged trace (no-op
  /// without one). Takes TraceMu.
  void emitEngineEvent(std::string Line);
  /// Emits a Chrome complete-span ("ph":"X") into the merged trace.
  void emitEngineSpan(std::string_view Name, uint64_t JobId, unsigned Tid,
                      uint64_t TsMicros, uint64_t DurMicros);
  /// Microseconds since the engine's construction (the merged-trace
  /// timeline).
  uint64_t nowMicros() const;

  /// Declared first: everything below holds handles into it, so it must be
  /// destroyed last.
  MetricsRegistry Registry;
  EngineOptions Opts;
  JobMetrics JM;
  std::unique_ptr<ModuleCache> Cache;

  /// Merged-trace state (EngineOptions::TraceTo). Jobs on any worker splice
  /// completed spans under TraceMu; the sink itself is not thread-safe.
  std::chrono::steady_clock::time_point Epoch;
  std::mutex TraceMu;
  std::unique_ptr<TraceSink> EngTrace;

  std::mutex ResMu;
  std::condition_variable ResCv;
  std::unordered_map<uint64_t, JobResult> Results;
  std::atomic<uint64_t> NextId{1};

  /// The snapshot thread reads Registry; declared after it, destroyed (and
  /// stopped) before it goes away.
  std::unique_ptr<MetricsExporter> Exporter;

  /// Declared last: its destructor joins the workers, which touch the
  /// members above, so it must be destroyed first.
  ThreadPool Pool;
};

} // namespace cmm::engine

#endif // CMM_ENGINE_ENGINE_H
