//===- engine/Engine.h - Batch execution engine -----------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The embedding API of cmmex (docs/ENGINE.md): one facade over everything a
/// host needs to compile and run Abstract C-- programs at scale.
///
///  - makeExecutor(Backend, Prog): the one way to construct an executor.
///    Every consumer — cmmi, cmmdiff, the differential harness, the test
///    suites, the benches — goes through it instead of naming Machine or
///    VmMachine directly, so adding a backend is a one-line change here.
///
///  - ProgramArtifact: an immutable compiled unit (checked IR plus lazily
///    compiled VM bytecode, or a structured compile error). Artifacts are
///    interned by a content-hash cache with single-flight compilation: when
///    N threads request the same (sources, options) key, exactly one
///    compiles and the rest wait for its result.
///
///  - Engine: a thread-sharded batch runner. submit(Job) enqueues one run
///    (program + backend + entry + args + dispatcher + fuel/deadline) on a
///    work-stealing pool; wait(id) returns its JobResult. Jobs are
///    isolated: each gets a fresh executor, and a job that fails to
///    compile, goes wrong, or exhausts its fuel reports that in its result
///    without disturbing the rest of the batch.
///
/// Thread-safety: Engine, its cache, and ProgramArtifact are thread-safe.
/// Executors are not — one executor is one C-- thread and must be driven by
/// one host thread at a time (see sem/Memory.h); the engine enforces this
/// by construction, giving every job its own executor.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_ENGINE_ENGINE_H
#define CMM_ENGINE_ENGINE_H

#include "engine/ThreadPool.h"
#include "obs/Trace.h"
#include "opt/PassManager.h"
#include "sem/Executor.h"
#include "vm/Bytecode.h"

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace cmm::engine {

class ModuleCache;

//===----------------------------------------------------------------------===//
// Backends
//===----------------------------------------------------------------------===//

/// The executor backends (sem/Executor.h lists their contracts).
enum class Backend : uint8_t { Walk, Vm };

inline constexpr Backend AllBackends[] = {Backend::Walk, Backend::Vm};

std::string_view backendName(Backend B);
std::optional<Backend> parseBackend(std::string_view Name);

/// Constructs an executor for \p Prog. The single construction point every
/// tool and test shares.
std::unique_ptr<Executor> makeExecutor(Backend B, const IrProgram &Prog);

/// As above, but the VM backend reuses \p Bytecode instead of recompiling
/// (null falls back to compiling; the walker ignores it).
std::unique_ptr<Executor>
makeExecutor(Backend B, const IrProgram &Prog,
             std::shared_ptr<const CompiledProgram> Bytecode);

//===----------------------------------------------------------------------===//
// Compilation artifacts and the content-hash cache
//===----------------------------------------------------------------------===//

/// Everything that determines a compiled artifact. Two requests with equal
/// cacheKeyFor() are interchangeable.
struct CompileRequest {
  std::vector<std::string> Sources;
  bool IncludeStdLib = true;
  bool Optimize = false;
  /// Optimizer configuration; only read when Optimize is set, but hashed
  /// unconditionally (the key is a pure function of the struct).
  OptOptions Opt;
};

/// 128-bit content hash identifying a CompileRequest (docs/ENGINE.md
/// documents the exact key definition).
struct CacheKey {
  uint64_t Hi = 0, Lo = 0;
  bool operator==(const CacheKey &O) const { return Hi == O.Hi && Lo == O.Lo; }
  std::string str() const;
};

struct CacheKeyHash {
  size_t operator()(const CacheKey &K) const {
    return static_cast<size_t>(K.Hi ^ (K.Lo * 0x9e3779b97f4a7c15ull));
  }
};

/// The content hash of \p Req: every source text, the stdlib flag, and the
/// full optimizer configuration.
CacheKey cacheKeyFor(const CompileRequest &Req);

/// One compiled unit: checked (and possibly optimized) IR, or a structured
/// compile error. Immutable once published, so any number of threads may
/// run executors over it concurrently; the VM bytecode is compiled on first
/// use, once, under its own single-flight lock.
class ProgramArtifact {
public:
  ProgramArtifact() = default;

  /// Null exactly when error() is non-empty.
  const IrProgram *program() const { return Prog.get(); }
  /// Compile / optimizer-validation failure, in the phase-prefixed form the
  /// differential harness reports ("compile failed: ...").
  const std::string &error() const { return Error; }
  bool ok() const { return Prog != nullptr; }
  const CacheKey &key() const { return Key; }

  /// The VM bytecode for program(), compiled at most once per artifact.
  /// Precondition: ok().
  std::shared_ptr<const CompiledProgram> bytecode() const;

  /// Fresh executor over this artifact; the VM backend shares bytecode().
  /// Precondition: ok().
  std::unique_ptr<Executor> newExecutor(Backend B) const;

private:
  friend void
  populateArtifact(ProgramArtifact &A, const CompileRequest &Req,
                   std::shared_ptr<std::atomic<uint64_t>> BcCounter);
  CacheKey Key;
  std::shared_ptr<const IrProgram> Prog;
  std::string Error;
  mutable std::mutex BcMu;
  mutable std::shared_ptr<const CompiledProgram> Bc;
  /// Bytecode-compile counter, shared with the cache that interned this
  /// artifact (null outside a cache). Shared ownership, not a raw pointer:
  /// artifacts are handed to embedders and may outlive their Engine.
  std::shared_ptr<std::atomic<uint64_t>> BcCompiles;
};

/// Compiles \p Req outside any cache (one-shot embedders, tests).
std::shared_ptr<const ProgramArtifact>
compileArtifact(const CompileRequest &Req);

/// Cache observability (EngineTest pins the single-flight guarantee on
/// these).
struct CacheStats {
  uint64_t Lookups = 0;
  uint64_t Hits = 0;
  uint64_t IrCompiles = 0;       ///< actual front-end + optimizer runs
  uint64_t BytecodeCompiles = 0; ///< actual IR-to-bytecode runs
  uint64_t Evictions = 0;
};

//===----------------------------------------------------------------------===//
// Jobs
//===----------------------------------------------------------------------===//

/// Which front-end run-time system services yields during a job.
enum class DispatcherKind : uint8_t { None, Unwind, Cut };

/// One unit of batch work: run Entry(Args) of a program on a backend.
struct Job {
  /// The program, either pre-interned... (takes precedence when set)
  std::shared_ptr<const ProgramArtifact> Artifact;
  /// ...or described by a request the engine compiles through its cache.
  CompileRequest Request;

  Backend B = Backend::Walk;
  std::string Entry = "main";
  std::vector<Value> Args;
  DispatcherKind Dispatcher = DispatcherKind::None;

  /// Fuel: abstract-machine transitions per resume segment (the
  /// runWithRuntime budget). Exhaustion leaves Status == Running.
  uint64_t MaxSteps = ~uint64_t(0);
  /// Wall-clock deadline in milliseconds; 0 disables. Checked between
  /// execution slices, so enforcement granularity is DeadlineSliceSteps.
  double DeadlineMillis = 0;

  /// Caller-owned observer, used by this job only (observers are not
  /// thread-safe; never share one across concurrently submitted jobs).
  MachineObserver *Obs = nullptr;
  /// When set, the engine attaches a per-job TraceSink writing here, with
  /// Trace.JobId filled in from the assigned job id (caller-owned stream,
  /// exclusive to this job).
  std::ostream *TraceTo = nullptr;
  TraceOptions Trace;
  /// Attach a per-job Profiler and return its JSON in the result.
  bool CollectProfile = false;
};

/// Everything one job produced. Errors travel through the result — a
/// failing job never aborts its batch.
struct JobResult {
  uint64_t Id = 0;
  /// Compile/validation failure; when non-empty the job never ran.
  std::string CompileError;
  MachineStatus Status = MachineStatus::Idle;
  std::vector<Value> Results; ///< argument area after Halted
  std::string WrongReason;    ///< after Wrong
  SourceLoc WrongLoc;         ///< after Wrong
  Stats MachineStats;
  bool CacheHit = false; ///< artifact came from the cache already compiled
  bool TimedOut = false; ///< stopped by DeadlineMillis
  std::string ProfileJson; ///< with Job::CollectProfile
  double CompileMillis = 0;
  double RunMillis = 0;

  bool ok() const {
    return CompileError.empty() && Status == MachineStatus::Halted;
  }
};

//===----------------------------------------------------------------------===//
// Engine
//===----------------------------------------------------------------------===//

struct EngineOptions {
  /// Worker threads; 0 = hardware concurrency.
  unsigned Threads = 0;
  /// Intern compiled artifacts across jobs. Disabling never changes
  /// results, only throughput (EngineTest pins this).
  bool EnableCache = true;
  /// Cache capacity in artifacts, evicted LRU; 0 = unbounded.
  size_t CacheCapacity = 1024;
};

/// The batch execution engine. One Engine per embedding host; all methods
/// are thread-safe.
class Engine {
public:
  explicit Engine(EngineOptions Opts = {});
  ~Engine();

  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  /// Compiles \p Req through the content-hash cache (single-flight: when N
  /// threads race on one key, exactly one compiles). With the cache
  /// disabled, compiles directly. Never returns null — failures are inside
  /// the artifact.
  std::shared_ptr<const ProgramArtifact> compile(const CompileRequest &Req);

  /// Enqueues \p J; returns the job id to wait on.
  uint64_t submit(Job J);

  /// Blocks until job \p Id finishes and returns (and forgets) its result.
  JobResult wait(uint64_t Id);

  /// submit() all of \p Jobs, wait for all, and return results in the
  /// submission order.
  std::vector<JobResult> run(std::vector<Job> Jobs);

  /// Runs one job synchronously on the calling thread (no pool hop). Used
  /// by the workers and by single-run embedders (cmmi, the harness).
  JobResult runJob(const Job &J, uint64_t Id = 0);

  CacheStats cacheStats() const;
  unsigned threadCount() const { return Pool.threadCount(); }
  ThreadPool &pool() { return Pool; }

  /// Deadline-check granularity, exposed for the fuel/deadline tests.
  static constexpr uint64_t DeadlineSliceSteps = 1 << 16;

private:
  EngineOptions Opts;
  std::unique_ptr<ModuleCache> Cache;

  std::mutex ResMu;
  std::condition_variable ResCv;
  std::unordered_map<uint64_t, JobResult> Results;
  std::atomic<uint64_t> NextId{1};

  /// Declared last: its destructor joins the workers, which touch the
  /// members above, so it must be destroyed first.
  ThreadPool Pool;
};

} // namespace cmm::engine

#endif // CMM_ENGINE_ENGINE_H
