//===- engine/Session.cpp -------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "engine/Session.h"

#include "sem/Continuation.h"

using namespace cmm;
using namespace cmm::engine;
using cmm::engine::detail::millisSince;
using cmm::engine::detail::runBudgeted;

//===----------------------------------------------------------------------===//
// Engine::startSession
//===----------------------------------------------------------------------===//

std::unique_ptr<JobSession> Engine::startSession(const Job &J, JobResult &R) {
  uint64_t Id = NextId.fetch_add(1, std::memory_order_relaxed);
  R = JobResult{};
  R.Id = Id;
  unsigned Tid = unsigned(ThreadPool::currentWorker() + 1);
  JM.Jobs.add(1);
  (J.B == Backend::Walk   ? JM.BackendWalk
   : J.B == Backend::Vm   ? JM.BackendVm
                          : JM.BackendThreaded)
      .add(1);
  uint64_t JobT0 = nowMicros();

  std::shared_ptr<const ProgramArtifact> Art;
  const IrProgram *Prog = resolveProgram(J, Id, Tid, JobT0, R, Art);
  if (!Prog) {
    JM.JobMicros.record(nowMicros() - JobT0);
    return nullptr;
  }

  std::unique_ptr<Executor> Exec =
      Art ? Art->newExecutor(J.B) : makeExecutor(J.B, *Prog);
  std::unique_ptr<JobSession> S(new JobSession(
      *this, Id, J.B, std::move(Art), J.Program, std::move(Exec), JobT0));
  JM.Sessions.add(1);
  JM.SessionsOpen.add(1);
  R = S->startSegment(J);
  if (S->done())
    S.reset(); // outcome already counted by finishSegment
  return S;
}

//===----------------------------------------------------------------------===//
// JobSession
//===----------------------------------------------------------------------===//

JobSession::JobSession(Engine &Eng, uint64_t Id, Backend B,
                       std::shared_ptr<const ProgramArtifact> Art,
                       std::shared_ptr<const IrProgram> Prog,
                       std::unique_ptr<Executor> Exec, uint64_t StartMicros)
    : Eng(Eng), Id(Id), B(B), Art(std::move(Art)), Prog(std::move(Prog)),
      Exec(std::move(Exec)), StartMicros(StartMicros) {}

JobSession::~JobSession() {
  // Abandoned mid-flight (client went away, TTL eviction, shutdown): the
  // job still finishes in exactly one outcome bucket.
  countOutcome(LastStatus == MachineStatus::Idle ? MachineStatus::Suspended
                                                 : LastStatus,
               LastOutcome);
  Eng.JM.SessionsOpen.sub(1);
}

void JobSession::countOutcome(MachineStatus St, const BudgetOutcome &Out) {
  if (Counted)
    return;
  Counted = true;
  switch (St) {
  case MachineStatus::Halted:
    Eng.JM.Halted.add(1);
    break;
  case MachineStatus::Wrong:
    Eng.JM.Wrong.add(1);
    break;
  case MachineStatus::Running:
    (Out.TimedOut      ? Eng.JM.Timeouts
     : Out.MemExceeded ? Eng.JM.MemExceeded
                       : Eng.JM.FuelExhausted)
        .add(1);
    break;
  default:
    Eng.JM.Suspended.add(1);
    break;
  }
  Eng.JM.ResumeCycles.add(Cycles);
  Eng.JM.ResumeCyclesPerJob.record(Cycles);
  Eng.JM.JobMicros.record(Eng.nowMicros() - StartMicros);
}

JobResult JobSession::finishSegment(MachineStatus St, const BudgetOutcome &Out,
                                    double RunMillis) {
  LastStatus = St;
  LastOutcome = Out;
  JobResult R;
  R.Id = Id;
  R.Status = St;
  R.TimedOut = Out.TimedOut;
  R.MemExceeded = Out.MemExceeded;
  R.RunMillis = RunMillis;
  R.ResumeCycles = Cycles;
  R.MachineStats = Exec->stats();
  if (St == MachineStatus::Halted || St == MachineStatus::Suspended)
    R.Results = Exec->argArea();
  if (St == MachineStatus::Wrong) {
    R.WrongReason = Exec->wrongReason();
    R.WrongLoc = Exec->wrongLoc();
  }
  if (Unw) {
    R.RtWalk = Unw->walkStats();
    R.RtDispatches += Unw->dispatches();
  }
  if (Cut)
    R.RtDispatches += Cut->dispatches();
  if (St == MachineStatus::Halted || St == MachineStatus::Wrong) {
    Done = true;
    countOutcome(St, Out);
  }
  uint64_t RunUs = uint64_t(RunMillis * 1000.0);
  Eng.JM.RunMicros.record(RunUs);
  return R;
}

JobResult JobSession::startSegment(const Job &J) {
  auto R0 = std::chrono::steady_clock::now();
  Eng.JM.Running.add(1);
  Exec->start(J.Entry, J.Args);
  RunBudget Budget{J.MaxSteps, J.DeadlineMillis, J.MaxMemoryBytes};
  BudgetOutcome Out;
  MachineStatus St;
  switch (J.Dispatcher) {
  case DispatcherKind::Unwind:
    Unw = std::make_unique<UnwindingDispatcher>(*Exec);
    St = runBudgeted(
        *Exec,
        [&](Executor &) { return Unw->dispatch() == DispatchResult::Handled; },
        Budget, Engine::DeadlineSliceSteps, Out, Cycles);
    break;
  case DispatcherKind::Cut:
    Cut = std::make_unique<CuttingDispatcher>(*Exec);
    St = runBudgeted(
        *Exec,
        [&](Executor &) { return Cut->dispatch() == DispatchResult::Handled; },
        Budget, Engine::DeadlineSliceSteps, Out, Cycles);
    break;
  case DispatcherKind::None:
  default:
    St = runBudgeted(*Exec, [](Executor &) { return false; }, Budget,
                     Engine::DeadlineSliceSteps, Out, Cycles);
    break;
  }
  Eng.JM.Running.sub(1);
  return finishSegment(St, Out, millisSince(R0));
}

JobResult JobSession::runSegment(const RunBudget &Budget) {
  auto R0 = std::chrono::steady_clock::now();
  Eng.JM.Running.add(1);
  BudgetOutcome Out;
  MachineStatus St =
      runBudgeted(*Exec, [](Executor &) { return false; }, Budget,
                  Engine::DeadlineSliceSteps, Out, Cycles);
  Eng.JM.Running.sub(1);
  return finishSegment(St, Out, millisSince(R0));
}

JobResult JobSession::resumeRaw(const ResumeChoice &Choice,
                                std::vector<Value> Params,
                                const RunBudget &Budget) {
  // One first-class Continuation per wire resume (sem/Continuation.h): the
  // capture refuses anything but a Suspended executor, the resume consumes
  // the handle, and the budgeted run is the handle's own.
  Continuation C = Continuation::capture(*Exec);
  if (Done || C.state() != Continuation::State::Suspended)
    return finishSegment(Exec->status(), LastOutcome, 0);
  Eng.JM.SessionResumes.add(1);
  C.setBudget(Budget);
  auto R0 = std::chrono::steady_clock::now();
  Eng.JM.Running.add(1);
  Continuation::Result Res = C.resume(Choice, std::move(Params));
  Eng.JM.Running.sub(1);
  if (Res.Transferred)
    // A refused transfer (rule violation, executor Wrong before any
    // transition) is not a serviced yield; everything else is one cycle.
    ++Cycles;
  return finishSegment(Res.Status, Res.Outcome, millisSince(R0));
}

JobResult JobSession::unwindTop(size_t Count, const RunBudget &) {
  Continuation C = Continuation::capture(*Exec);
  if (Done || C.state() != Continuation::State::Suspended)
    return finishSegment(Exec->status(), LastOutcome, 0);
  Eng.JM.SessionResumes.add(1);
  C.unwindTop(Count);
  // Still suspended on success; Wrong on an un-abortable call site.
  return finishSegment(Exec->status(), BudgetOutcome{}, 0);
}

JobResult JobSession::dispatchOnce(DispatcherKind K, const RunBudget &Budget) {
  if (Done || Exec->status() != MachineStatus::Suspended ||
      K == DispatcherKind::None)
    return finishSegment(Exec->status(), LastOutcome, 0);
  Eng.JM.SessionResumes.add(1);
  DispatchResult D;
  if (K == DispatcherKind::Unwind) {
    if (!Unw)
      Unw = std::make_unique<UnwindingDispatcher>(*Exec);
    D = Unw->dispatch();
  } else {
    if (!Cut)
      Cut = std::make_unique<CuttingDispatcher>(*Exec);
    D = Cut->dispatch();
  }
  LastHandled = D == DispatchResult::Handled;
  if (!LastHandled || Exec->status() == MachineStatus::Suspended)
    // Unhandled (or the dispatcher went wrong): report where we stand.
    return finishSegment(Exec->status(), BudgetOutcome{}, 0);
  ++Cycles;
  return runSegment(Budget);
}

JobResult JobSession::continueRun(const RunBudget &Budget) {
  // A fuel/deadline/memory stop captures as a Paused continuation; resuming
  // it is "just more budget".
  Continuation C = Continuation::capture(*Exec);
  if (Done || C.state() != Continuation::State::Paused)
    return finishSegment(Exec->status(), LastOutcome, 0);
  C.setBudget(Budget);
  auto R0 = std::chrono::steady_clock::now();
  Eng.JM.Running.add(1);
  Continuation::Result Res = C.resume();
  Eng.JM.Running.sub(1);
  return finishSegment(Res.Status, Res.Outcome, millisSince(R0));
}
