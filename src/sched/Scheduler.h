//===- sched/Scheduler.h - M:N green-thread scheduler -----------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The green-threads runtime (docs/SCHEDULER.md): M guest C-- threads —
/// each one an Executor whose pauses are held as first-class Continuation
/// handles (sem/Continuation.h) — cooperatively multiplexed over N host
/// drivers. Guests request scheduling operations through the yield-tag
/// vocabulary of rts/SchedFormat.h: spawn, cooperative yield, virtual-time
/// sleep, bounded channels (send/recv park the green thread when full/
/// empty), join, and self.
///
/// Execution model — driver participation. run() submits up to Drivers-1
/// driver tasks through the caller-supplied submit hook (the engine passes
/// its work-stealing ThreadPool) and then drives the schedule on the
/// calling thread too. Every driver loops: pop a runnable thread, run one
/// fuel-bounded slice outside the scheduler lock, service the resulting
/// suspension under it, repeat. This shape never blocks a pool worker on a
/// task that has not started (the pool's contract, engine/ThreadPool.h):
/// the calling driver alone can always finish the schedule, and a driver
/// task that starts late — even after run() returned — finds the schedule
/// finished and exits without touching anything but the shared core. A
/// parked thread woken by one driver may run its next slice on any other:
/// cross-thread resume is the normal case, not a special one.
///
/// Invariants (tests/SchedTest.cpp pins these):
///   - A schedule completes when every green thread has Halted; the main
///     thread's results are the schedule's results.
///   - Any thread going Wrong fails the whole schedule with that thread's
///     reason — exactly the observable a direct (unscheduled) run of the
///     same computation produces, which is what cmmdiff's scheduled-vs-
///     direct oracle checks.
///   - No runnable thread, no running slice, no armed timer, but live
///     threads parked => deadlock, reported loudly (never a hang).
///   - Timers use virtual time: when the schedule quiesces with armed
///     timers, the clock jumps to the earliest deadline. Sleeps are
///     deterministic and cost zero wall-clock.
///   - Channel values are plain machine values; channels are the only
///     communication between green threads (each has its own isolated
///     Memory, so there is no shared guest state to race on).
///
/// Fuel: each slice runs at most SliceFuel transitions (through the
/// continuation's ResumeBudget); a thread that exceeds MaxStepsPerThread
/// fails the schedule as fuel-exhausted, mirroring the engine's per-job
/// fuel outcome.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SCHED_SCHEDULER_H
#define CMM_SCHED_SCHEDULER_H

#include "obs/Metrics.h"
#include "sem/Continuation.h"
#include "sem/Executor.h"
#include "sem/Stats.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace cmm::sched {

/// Which exception dispatcher services non-scheduler yields inside green
/// threads (rts/Dispatchers.h), so exception-strategy renderings run
/// unchanged under the scheduler. Mirrors engine::DispatcherKind without
/// depending on the engine (the engine depends on this library).
enum class ExnDispatch : uint8_t { None, Unwind, Cut };

struct SchedOptions {
  /// Abstract-machine transitions per run slice (the cooperative quantum).
  uint64_t SliceFuel = 1 << 14;
  /// Host drivers, including the calling thread; extra drivers run on the
  /// submit hook. Clamped to at least 1. More drivers than runnable
  /// threads is wasted but harmless.
  unsigned Drivers = 1;
  /// Spawn guard: a spawn beyond this many live threads fails the
  /// schedule (a runaway spawner must be loud, not an OOM).
  uint64_t MaxThreads = 1 << 20;
  /// Per-green-thread fuel (lifetime transitions); ~0 disables. Mirrors
  /// Job::MaxSteps of a direct run.
  uint64_t MaxStepsPerThread = ~uint64_t(0);
  /// Fallback dispatcher for non-scheduler yields (exception requests).
  ExnDispatch Exn = ExnDispatch::None;
};

/// Everything one schedule produced.
struct SchedResult {
  /// Halted: every thread halted. Wrong: some thread went wrong (reason /
  /// loc below). Running: fuel-exhausted or deadlocked (flags below).
  MachineStatus Status = MachineStatus::Idle;
  std::vector<Value> Results; ///< main thread's argArea after Halted
  std::string WrongReason;
  SourceLoc WrongLoc;
  bool Deadlocked = false;
  bool FuelExhausted = false;
  uint64_t ThreadsSpawned = 0;  ///< including the main thread
  uint64_t ContextSwitches = 0; ///< slices dispatched to drivers
  uint64_t StepsTotal = 0;      ///< transitions across all threads
  uint64_t ChanSends = 0;
  uint64_t ChanRecvs = 0;
  uint64_t TimerWaits = 0;
  /// Machine counters summed over every terminated thread.
  Stats MachineStats;

  bool ok() const { return Status == MachineStatus::Halted; }
};

/// One M:N scheduler instance. Construct, run() once (or repeatedly —
/// each run is an independent schedule), destroy. The object itself is
/// driven by one thread; the schedule inside a run is multi-driver.
class Scheduler {
public:
  /// Makes one fresh executor per green thread (the engine passes
  /// ProgramArtifact::newExecutor; tests pass makeExecutor over a shared
  /// program). Must be callable from any driver concurrently.
  using ExecutorFactory = std::function<std::unique_ptr<Executor>()>;
  /// Hands a driver task to the host's pool. Must never block; the task
  /// may run at any later time, or only after run() returns. Empty means
  /// single-driver regardless of SchedOptions::Drivers.
  using SubmitFn = std::function<void(std::function<void()>)>;

  /// Metrics land in \p Reg when given (the engine passes its registry),
  /// in MetricsRegistry::null() otherwise — the sched.* catalog
  /// (docs/OBSERVABILITY.md): threads_spawned, threads_live, runnable,
  /// parked, context_switches, chan_sends, chan_recvs, timer_waits,
  /// joins, deadlocks, runs, run_slice_micros.
  Scheduler(ExecutorFactory Factory, SchedOptions Opts = {},
            SubmitFn Submit = {}, MetricsRegistry *Reg = nullptr);

  /// Runs Entry(Args) as green thread 1 and drives the schedule to
  /// completion on the calling thread (plus up to Drivers-1 submitted
  /// drivers). Returns when the schedule finished; stragglers among the
  /// submitted driver tasks are self-cleaning no-ops.
  SchedResult run(std::string_view Entry, std::vector<Value> Args = {});

private:
  struct Core;
  struct Green;
  struct Channel;
  /// Wired metric handles, copied into the core by value so a late driver
  /// task never reaches through a destroyed Scheduler.
  struct Metrics {
    Counter *Spawned, *Switches, *Sends, *Recvs, *TimerWaits, *Joins,
        *Deadlocks, *Runs;
    Gauge *Live, *Runnable, *Parked;
    Histogram *SliceMicros;
  };

  static void driverLoop(const std::shared_ptr<Core> &C);
  static void runSlice(Core &C, Green &G);
  /// Services one decoded scheduler request (under the core lock).
  /// Returns true when \p G should keep running in the current slice
  /// (resume-in-place with \p Params), false when it parked / requeued /
  /// the schedule failed.
  static bool handleRequest(Core &C, Green &G, std::vector<Value> &Params);

  ExecutorFactory Factory;
  SchedOptions Opts;
  SubmitFn Submit;
  Metrics M;
};

} // namespace cmm::sched

#endif // CMM_SCHED_SCHEDULER_H
