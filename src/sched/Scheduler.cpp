//===- sched/Scheduler.cpp ------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "sched/Scheduler.h"

#include "rts/Dispatchers.h"
#include "rts/SchedFormat.h"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <queue>
#include <unordered_map>

using namespace cmm;
using namespace cmm::sched;

namespace {

void addStats(Stats &A, const Stats &S) {
  A.Steps += S.Steps;
  A.Calls += S.Calls;
  A.Jumps += S.Jumps;
  A.Returns += S.Returns;
  A.Cuts += S.Cuts;
  A.FramesCutOver += S.FramesCutOver;
  A.Yields += S.Yields;
  A.UnwindPops += S.UnwindPops;
  A.ContsBound += S.ContsBound;
  A.Loads += S.Loads;
  A.Stores += S.Stores;
  A.CalleeSaveMoves += S.CalleeSaveMoves;
  A.MaxStackDepth = std::max(A.MaxStackDepth, S.MaxStackDepth);
}

} // namespace

//===----------------------------------------------------------------------===//
// Core state
//===----------------------------------------------------------------------===//

/// One green thread. Owned by the core; its executor is touched only by
/// the driver currently running its slice (the core lock hands threads
/// between drivers, so cross-thread migration needs no further sync).
struct Scheduler::Green {
  enum class State : uint8_t { Runnable, Running, Parked, Done };
  /// What the next slice must do first.
  enum class Pending : uint8_t { Start, Continue, Resume };

  uint64_t Tid = 0;
  std::unique_ptr<Executor> M;
  State St = State::Runnable;
  Pending Pend = Pending::Start;
  std::vector<Value> ResumeParams; ///< for Pending::Resume
  std::string StartProc;
  std::vector<Value> StartArgs;
  uint64_t Steps = 0; ///< lifetime transitions (fuel accounting)
  std::vector<Value> Results;
  std::vector<uint64_t> Joiners; ///< tids parked in join on this thread
  Value SendVal;                 ///< pending value while parked in send
  /// Per-thread exception dispatchers (created on first non-sched yield).
  std::unique_ptr<UnwindingDispatcher> Unw;
  std::unique_ptr<CuttingDispatcher> Cut;
};

/// A bounded channel. Senders park when the queue is full, receivers when
/// it is empty and no sender waits; FIFO in both directions.
struct Scheduler::Channel {
  uint64_t Cap = 1;
  std::deque<Value> Q;
  std::deque<uint64_t> SendWaiters;
  std::deque<uint64_t> RecvWaiters;
};

/// The shared schedule state. Reference-counted so driver tasks that start
/// after the schedule finished (or after the Scheduler object died) still
/// have something safe to look at.
struct Scheduler::Core {
  // Immutable after construction.
  SchedOptions Opts;
  ExecutorFactory Factory;
  Metrics M; ///< by value; never reaches through the Scheduler object

  std::mutex Mu;
  std::condition_variable Cv;
  std::unordered_map<uint64_t, std::unique_ptr<Green>> Threads;
  std::deque<uint64_t> RunQ;
  uint64_t NextTid = 1;
  uint64_t NextChan = 1;
  std::unordered_map<uint64_t, Channel> Channels;
  /// Armed virtual-time timers: (deadline, tid), earliest first.
  std::priority_queue<std::pair<uint64_t, uint64_t>,
                      std::vector<std::pair<uint64_t, uint64_t>>,
                      std::greater<>>
      Timers;
  uint64_t VNow = 0; ///< virtual clock (sleep ticks)

  uint64_t Live = 0;   ///< threads not yet Done
  uint64_t Parked = 0; ///< threads in State::Parked
  unsigned ActiveSlices = 0;
  bool Finished = false;

  // Outcome (valid once Finished).
  MachineStatus Status = MachineStatus::Idle;
  std::vector<Value> MainResults;
  std::string WrongReason;
  SourceLoc WrongLoc;
  bool Deadlocked = false;
  bool FuelExhausted = false;

  // Counters mirrored into SchedResult.
  uint64_t Spawned = 0, Switches = 0, StepsTotal = 0, Sends = 0, Recvs = 0,
           TimerWaits = 0;
  Stats Agg;

  Green *get(uint64_t Tid) {
    auto It = Threads.find(Tid);
    return It == Threads.end() ? nullptr : It->second.get();
  }

  void gauges() {
    M.Runnable->set(int64_t(RunQ.size()));
    M.Parked->set(int64_t(Parked));
    M.Live->set(int64_t(Live));
  }

  /// Fails the whole schedule (lock held). Idempotent: the first failure
  /// (or completion) wins, later slices see Finished and stand down.
  void fail(MachineStatus St, std::string Reason, SourceLoc Loc,
            bool DeadlockFlag, bool FuelFlag) {
    if (Finished)
      return;
    Finished = true;
    Status = St;
    WrongReason = std::move(Reason);
    WrongLoc = Loc;
    Deadlocked = DeadlockFlag;
    FuelExhausted = FuelFlag;
    if (DeadlockFlag)
      M.Deadlocks->add(1);
    Cv.notify_all();
  }

  /// Makes \p G runnable with a pending resume of \p Params (lock held).
  void wake(Green &G, std::vector<Value> Params) {
    if (G.St == Green::State::Parked)
      --Parked;
    G.St = Green::State::Runnable;
    G.Pend = Green::Pending::Resume;
    G.ResumeParams = std::move(Params);
    RunQ.push_back(G.Tid);
    Cv.notify_one();
  }

  /// Retires \p G (lock held): records results, folds its machine counters
  /// into the aggregate, releases its executor (10k parked executors are
  /// cheap; 10k dead ones need not keep their memories alive), and wakes
  /// its joiners with its first result.
  void retire(Green &G) {
    G.St = Green::State::Done;
    G.Results = G.M->argArea();
    addStats(Agg, G.M->stats());
    G.M.reset();
    --Live;
    Value R = G.Results.empty() ? Value::bits(32, 0) : G.Results[0];
    for (uint64_t J : G.Joiners)
      if (Green *W = get(J))
        wake(*W, {R});
    G.Joiners.clear();
  }
};

//===----------------------------------------------------------------------===//
// Scheduler
//===----------------------------------------------------------------------===//

Scheduler::Scheduler(ExecutorFactory F, SchedOptions O, SubmitFn S,
                     MetricsRegistry *Reg)
    : Factory(std::move(F)), Opts(O), Submit(std::move(S)) {
  MetricsRegistry &R = Reg ? *Reg : MetricsRegistry::null();
  M.Spawned = &R.counter("sched.threads_spawned");
  M.Switches = &R.counter("sched.context_switches");
  M.Sends = &R.counter("sched.chan_sends");
  M.Recvs = &R.counter("sched.chan_recvs");
  M.TimerWaits = &R.counter("sched.timer_waits");
  M.Joins = &R.counter("sched.joins");
  M.Deadlocks = &R.counter("sched.deadlocks");
  M.Runs = &R.counter("sched.runs");
  M.Live = &R.gauge("sched.threads_live");
  M.Runnable = &R.gauge("sched.runnable");
  M.Parked = &R.gauge("sched.parked");
  M.SliceMicros = &R.histogram("sched.run_slice_micros");
}

SchedResult Scheduler::run(std::string_view Entry, std::vector<Value> Args) {
  auto C = std::make_shared<Core>();
  C->Opts = Opts;
  C->Opts.Drivers = std::max(1u, Opts.Drivers);
  C->Opts.SliceFuel = std::max<uint64_t>(1, Opts.SliceFuel);
  C->Factory = Factory;
  C->M = M;
  M.Runs->add(1);

  {
    std::lock_guard<std::mutex> Lock(C->Mu);
    auto G = std::make_unique<Green>();
    G->Tid = C->NextTid++;
    G->M = C->Factory();
    G->Pend = Green::Pending::Start;
    G->StartProc = std::string(Entry);
    G->StartArgs = std::move(Args);
    C->RunQ.push_back(G->Tid);
    C->Threads.emplace(G->Tid, std::move(G));
    ++C->Live;
    ++C->Spawned;
    M.Spawned->add(1);
    C->gauges();
  }

  // Extra drivers ride the host pool; each holds the core alive. The
  // calling thread is always a driver too, so the schedule finishes even
  // if none of these ever starts (a saturated one-worker pool).
  if (Submit)
    for (unsigned I = 1; I < C->Opts.Drivers; ++I)
      Submit([C] { driverLoop(C); });
  driverLoop(C);

  SchedResult R;
  std::lock_guard<std::mutex> Lock(C->Mu);
  R.Status = C->Status;
  R.Results = C->MainResults;
  R.WrongReason = C->WrongReason;
  R.WrongLoc = C->WrongLoc;
  R.Deadlocked = C->Deadlocked;
  R.FuelExhausted = C->FuelExhausted;
  R.ThreadsSpawned = C->Spawned;
  R.ContextSwitches = C->Switches;
  R.StepsTotal = C->StepsTotal;
  R.ChanSends = C->Sends;
  R.ChanRecvs = C->Recvs;
  R.TimerWaits = C->TimerWaits;
  R.MachineStats = C->Agg;
  return R;
}

void Scheduler::driverLoop(const std::shared_ptr<Core> &CP) {
  Core &C = *CP;
  std::unique_lock<std::mutex> Lock(C.Mu);
  for (;;) {
    if (C.Finished)
      break;
    if (!C.RunQ.empty()) {
      Green *G = C.get(C.RunQ.front());
      C.RunQ.pop_front();
      if (!G || G->St != Green::State::Runnable)
        continue; // stale queue entry
      G->St = Green::State::Running;
      ++C.Switches;
      C.M.Switches->add(1);
      ++C.ActiveSlices;
      C.gauges();
      Lock.unlock();
      runSlice(C, *G);
      Lock.lock();
      --C.ActiveSlices;
      if (C.ActiveSlices == 0)
        // Quiescence may be decidable now — every waiter must re-check.
        C.Cv.notify_all();
      continue;
    }
    if (C.ActiveSlices > 0) {
      // Another driver's slice may enqueue work (or finish the schedule).
      C.Cv.wait(Lock);
      continue;
    }
    // Quiescent: nothing runnable, nothing running.
    if (!C.Timers.empty()) {
      // Virtual time jumps to the earliest deadline; wake everything due.
      C.VNow = C.Timers.top().first;
      while (!C.Timers.empty() && C.Timers.top().first <= C.VNow) {
        uint64_t Tid = C.Timers.top().second;
        C.Timers.pop();
        if (Green *G = C.get(Tid))
          C.wake(*G, {});
      }
      C.gauges();
      continue;
    }
    if (C.Live > 0) {
      C.fail(MachineStatus::Running,
             "deadlock: " + std::to_string(C.Live) +
                 " green thread(s) parked with no runnable thread and no "
                 "armed timer",
             SourceLoc(), /*Deadlock=*/true, /*Fuel=*/false);
      break;
    }
    // Every thread halted: the schedule completed.
    if (!C.Finished) {
      C.Finished = true;
      C.Status = MachineStatus::Halted;
      if (Green *Main = C.get(1))
        C.MainResults = Main->Results;
      C.Cv.notify_all();
    }
    break;
  }
  C.Cv.notify_all();
}

void Scheduler::runSlice(Core &C, Green &G) {
  auto T0 = std::chrono::steady_clock::now();
  Executor &M = *G.M;
  uint64_t Fuel = C.Opts.SliceFuel;
  bool Requeue = false; // cooperative yield: back of the queue

  auto Spend = [&] {
    // Charge transitions executed since the last checkpoint against the
    // slice and the thread's lifetime fuel.
    uint64_t Total = M.stats().Steps;
    uint64_t Used = Total - G.Steps;
    G.Steps = Total;
    Fuel = Used >= Fuel ? 0 : Fuel - Used;
  };

  if (G.Pend == Green::Pending::Start)
    M.start(G.StartProc, std::move(G.StartArgs));

  for (;;) {
    MachineStatus St = M.status();
    if (St == MachineStatus::Running || St == MachineStatus::Idle) {
      // Continue (or freshly started): burn the remaining slice.
      Continuation Cn = Continuation::capture(M);
      Cn.setBudget({Fuel, 0, 0});
      St = Cn.resume().Status;
      Spend();
    } else if (St == MachineStatus::Suspended &&
               G.Pend == Green::Pending::Resume) {
      Continuation Cn = Continuation::capture(M);
      Cn.setBudget({Fuel, 0, 0});
      St = Cn.resume(ResumeChoice::ret(unsigned(
                         M.frameCallSite(0)->Bundle.ReturnsTo.size() - 1)),
                     std::move(G.ResumeParams))
               .Status;
      G.ResumeParams.clear();
      Spend();
    }
    G.Pend = Green::Pending::Continue;

    if (St == MachineStatus::Halted || St == MachineStatus::Wrong) {
      std::lock_guard<std::mutex> Lock(C.Mu);
      if (C.Finished)
        return;
      if (St == MachineStatus::Wrong) {
        C.fail(MachineStatus::Wrong, M.wrongReason(), M.wrongLoc(), false,
               false);
        return;
      }
      C.retire(G);
      C.StepsTotal += G.Steps;
      C.gauges();
      break;
    }

    if (St == MachineStatus::Running) {
      // Slice fuel exhausted mid-run.
      std::lock_guard<std::mutex> Lock(C.Mu);
      if (C.Finished)
        return;
      if (G.Steps >= C.Opts.MaxStepsPerThread) {
        C.fail(MachineStatus::Running,
               "green thread " + std::to_string(G.Tid) +
                   " exhausted its fuel",
               SourceLoc(), false, /*Fuel=*/true);
        return;
      }
      G.St = Green::State::Runnable;
      G.Pend = Green::Pending::Continue;
      C.RunQ.push_back(G.Tid);
      C.Cv.notify_one();
      C.gauges();
      break;
    }

    // Suspended: decode and service the request.
    SchedRequest Req = readSchedRequest(M);
    if (!Req.Valid) {
      // Not a scheduler request: delegate to the thread's exception
      // dispatcher, like a direct run under the same DispatcherKind would.
      DispatchResult D = DispatchResult::Unhandled;
      if (C.Opts.Exn == ExnDispatch::Unwind) {
        if (!G.Unw)
          G.Unw = std::make_unique<UnwindingDispatcher>(M);
        D = G.Unw->dispatch();
      } else if (C.Opts.Exn == ExnDispatch::Cut) {
        if (!G.Cut)
          G.Cut = std::make_unique<CuttingDispatcher>(M);
        D = G.Cut->dispatch();
      }
      if (D == DispatchResult::Handled && Fuel > 0)
        continue; // resumed in place; spend the rest of the slice
      if (D == DispatchResult::Handled) {
        // Handled but out of fuel: back of the queue.
        std::lock_guard<std::mutex> Lock(C.Mu);
        if (C.Finished)
          return;
        G.St = Green::State::Runnable;
        C.RunQ.push_back(G.Tid);
        C.Cv.notify_one();
        C.gauges();
        break;
      }
      if (M.status() == MachineStatus::Wrong)
        continue; // the dispatcher went wrong; report that reason
      YieldRequest Y = readYieldRequest(M);
      std::lock_guard<std::mutex> Lock(C.Mu);
      C.fail(MachineStatus::Suspended,
             "unhandled yield (tag " + std::to_string(Y.Tag) +
                 ") in green thread " + std::to_string(G.Tid),
             SourceLoc(), false, false);
      return;
    }

    std::vector<Value> Params;
    bool KeepRunning;
    {
      std::lock_guard<std::mutex> Lock(C.Mu);
      if (C.Finished)
        return;
      KeepRunning = handleRequest(C, G, Params);
      if (G.St == Green::State::Running && !KeepRunning) {
        // handleRequest decided park (state already Parked) or requeue —
        // requeue is signalled by leaving the thread Running with a
        // pending resume; translate that here.
        Requeue = true;
        G.St = Green::State::Runnable;
        G.Pend = Green::Pending::Resume;
        G.ResumeParams = std::move(Params);
        C.RunQ.push_back(G.Tid);
        C.Cv.notify_one();
      }
      C.gauges();
    }
    if (!KeepRunning)
      break;
    if (Fuel == 0) {
      // Resume-in-place granted but the slice is spent: carry the resume
      // parameters to the next slice instead.
      std::lock_guard<std::mutex> Lock(C.Mu);
      if (C.Finished)
        return;
      G.St = Green::State::Runnable;
      G.Pend = Green::Pending::Resume;
      G.ResumeParams = std::move(Params);
      C.RunQ.push_back(G.Tid);
      C.Cv.notify_one();
      C.gauges();
      break;
    }
    G.Pend = Green::Pending::Resume;
    G.ResumeParams = std::move(Params);
  }

  (void)Requeue;
  C.M.SliceMicros->record(uint64_t(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - T0)
          .count()));
}

/// Lock held. Returns true to resume \p G in place with \p Params; false
/// when the thread parked (G.St == Parked), must be requeued (G.St left
/// Running, Params are the eventual resume values), or the schedule
/// failed (C.Finished).
bool Scheduler::handleRequest(Core &C, Green &G, std::vector<Value> &Params) {
  Executor &M = *G.M;
  SchedRequest Req = readSchedRequest(M);
  auto Park = [&] {
    G.St = Green::State::Parked;
    ++C.Parked;
  };
  auto Fail = [&](std::string Why) {
    C.fail(MachineStatus::Wrong,
           std::move(Why) + " in green thread " + std::to_string(G.Tid),
           SourceLoc(), false, false);
    return false;
  };

  switch (Req.Tag) {
  case SchedTagSpawn: {
    if (Req.Operands.empty() || !Req.Operands[0].isCode())
      return Fail("scheduler spawn of a non-procedure value");
    const IrProgram &Prog = M.program();
    uint64_t Idx = Req.Operands[0].codeIndex();
    if (Idx >= Prog.Procs.size())
      return Fail("scheduler spawn of an unknown procedure");
    if (C.Live >= C.Opts.MaxThreads)
      return Fail("scheduler thread limit (" +
                  std::to_string(C.Opts.MaxThreads) + ") exceeded by spawn");
    auto NG = std::make_unique<Green>();
    NG->Tid = C.NextTid++;
    NG->M = C.Factory();
    NG->Pend = Green::Pending::Start;
    NG->StartProc = Prog.Names->spelling(Prog.Procs[Idx]->Name);
    NG->StartArgs.assign(Req.Operands.begin() + 1, Req.Operands.end());
    uint64_t Tid = NG->Tid;
    C.RunQ.push_back(Tid);
    C.Threads.emplace(Tid, std::move(NG));
    ++C.Live;
    ++C.Spawned;
    C.M.Spawned->add(1);
    C.Cv.notify_one();
    Params = {Value::bits(32, Tid)};
    return true;
  }
  case SchedTagYield:
    Params.clear();
    return false; // requeue at the back: the cooperative quantum point
  case SchedTagSleep: {
    uint64_t Ticks =
        !Req.Operands.empty() && Req.Operands[0].isBits() ? Req.Operands[0].Raw
                                                          : 0;
    ++C.TimerWaits;
    C.M.TimerWaits->add(1);
    if (Ticks == 0) {
      Params.clear();
      return false; // sleep(0) is a plain yield
    }
    Park();
    C.Timers.emplace(C.VNow + Ticks, G.Tid);
    return false;
  }
  case SchedTagChanNew: {
    uint64_t Cap = !Req.Operands.empty() && Req.Operands[0].isBits()
                       ? Req.Operands[0].Raw
                       : 1;
    uint64_t H = C.NextChan++;
    Channel &Ch = C.Channels[H];
    Ch.Cap = std::max<uint64_t>(1, Cap);
    Params = {Value::bits(32, H)};
    return true;
  }
  case SchedTagChanSend: {
    if (Req.Operands.size() < 2 || !Req.Operands[0].isBits())
      return Fail("malformed channel send");
    auto It = C.Channels.find(Req.Operands[0].Raw);
    if (It == C.Channels.end())
      return Fail("send on unknown channel");
    Channel &Ch = It->second;
    Value V = Req.Operands[1];
    ++C.Sends;
    C.M.Sends->add(1);
    // Hand off directly to the oldest parked receiver if any; otherwise
    // queue if there is room; otherwise park.
    while (!Ch.RecvWaiters.empty()) {
      uint64_t R = Ch.RecvWaiters.front();
      Ch.RecvWaiters.pop_front();
      if (Green *W = C.get(R)) {
        C.wake(*W, {V});
        Params.clear();
        return true;
      }
    }
    if (Ch.Q.size() < Ch.Cap) {
      Ch.Q.push_back(V);
      Params.clear();
      return true;
    }
    G.SendVal = V;
    Park();
    Ch.SendWaiters.push_back(G.Tid);
    return false;
  }
  case SchedTagChanRecv: {
    if (Req.Operands.empty() || !Req.Operands[0].isBits())
      return Fail("malformed channel receive");
    auto It = C.Channels.find(Req.Operands[0].Raw);
    if (It == C.Channels.end())
      return Fail("receive on unknown channel");
    Channel &Ch = It->second;
    ++C.Recvs;
    C.M.Recvs->add(1);
    if (!Ch.Q.empty()) {
      Value V = Ch.Q.front();
      Ch.Q.pop_front();
      // A parked sender's value takes the freed slot, preserving order.
      while (!Ch.SendWaiters.empty()) {
        uint64_t S = Ch.SendWaiters.front();
        Ch.SendWaiters.pop_front();
        if (Green *W = C.get(S)) {
          Ch.Q.push_back(W->SendVal);
          C.wake(*W, {});
          break;
        }
      }
      Params = {V};
      return true;
    }
    Park();
    Ch.RecvWaiters.push_back(G.Tid);
    return false;
  }
  case SchedTagJoin: {
    if (Req.Operands.empty() || !Req.Operands[0].isBits())
      return Fail("malformed join");
    Green *T = C.get(Req.Operands[0].Raw);
    if (!T)
      return Fail("join on unknown thread " +
                  std::to_string(Req.Operands.empty() ? 0
                                                      : Req.Operands[0].Raw));
    C.M.Joins->add(1);
    if (T->St == Green::State::Done) {
      Params = {T->Results.empty() ? Value::bits(32, 0) : T->Results[0]};
      return true;
    }
    Park();
    T->Joiners.push_back(G.Tid);
    return false;
  }
  case SchedTagSelf:
    Params = {Value::bits(32, G.Tid)};
    return true;
  default:
    return Fail("unknown scheduler request tag " + std::to_string(Req.Tag));
  }
}
