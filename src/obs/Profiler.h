//===- obs/Profiler.h - Per-procedure / per-call-site profiling -*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A MachineObserver that aggregates the machine's event stream into the
/// quantities the paper's Figure 2 design space is about, attributed to
/// where they arise:
///
///  - per procedure: abstract-machine steps executed while the procedure
///    held control, calls in/out, tail calls, returns, cuts landed,
///    frames discarded, unwind pops, yields raised;
///
///  - per call site: calls made, normal and alternate returns taken,
///    frames cut over while suspended here, unwind pops while suspended
///    here — the "dispatch cost lands at this call site" view;
///
///  - per dispatch: a histogram of unwind pops per dispatch and the
///    dispatcher's interpretive walk cost (activations visited). The
///    machine's step clock is stopped while the run-time system works, so
///    yield-to-handler latency is measured in run-time-system events, not
///    steps.
///
/// The profiler's totals agree exactly with Machine::stats(): the guard
/// test in tests/ObserverTest.cpp relies on that.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_OBS_PROFILER_H
#define CMM_OBS_PROFILER_H

#include "sem/Observer.h"

#include <map>
#include <string>
#include <unordered_map>

namespace cmm {

class JsonWriter;

/// Counters attributed to one procedure.
struct ProcProfile {
  uint64_t Steps = 0;     ///< transitions executed while in control
  uint64_t CallsIn = 0;   ///< times entered by a Call
  uint64_t CallsOut = 0;  ///< Call transitions executed
  uint64_t JumpsIn = 0;   ///< times entered by a Jump (tail call)
  uint64_t JumpsOut = 0;  ///< Jump transitions executed
  uint64_t Returns = 0;   ///< Exit transitions executed
  uint64_t CutsLanded = 0;      ///< cuts that resumed a continuation here
  uint64_t FramesDiscarded = 0; ///< this procedure's frames cut over
  uint64_t UnwindPops = 0;      ///< this procedure's frames unwind-popped
  uint64_t Yields = 0;          ///< yields raised from this procedure
};

/// Counters attributed to one call site.
struct CallSiteProfile {
  std::string Owner;  ///< procedure containing the call
  std::string Callee; ///< last observed callee (call targets are values)
  SourceLoc Loc;
  uint64_t Calls = 0;
  uint64_t Returns = 0;    ///< normal returns through this site
  uint64_t AltReturns = 0; ///< return <i/n> with i > 0
  uint64_t CutsOver = 0;   ///< frames discarded while suspended here
  uint64_t UnwindPops = 0; ///< unwind pops while suspended here
};

/// Aggregate dispatcher-side costs.
struct DispatchProfile {
  uint64_t Dispatches = 0;
  uint64_t Handled = 0;
  uint64_t ActivationsVisited = 0; ///< total interpretive walk length
  uint64_t ActivationsMax = 0;
  /// unwind pops per dispatch window -> number of dispatches.
  std::map<uint64_t, uint64_t> UnwindPopHistogram;
};

/// Aggregating observer. Attach with Machine::setObserver (possibly behind
/// a MultiObserver) and read the report after the run.
class Profiler final : public MachineObserver {
public:
  /// Engine job id: when nonzero, report() and writeJson() tag their
  /// output with it so per-job profiles of one batch stay attributable
  /// (src/engine sets this on the profilers it creates).
  uint64_t JobId = 0;

  /// Renders the sorted text report (procedures by steps, call sites by
  /// calls, then the dispatch section).
  std::string report() const;

  /// Emits the same data as a JSON object onto \p W.
  void writeJson(JsonWriter &W) const;

  const DispatchProfile &dispatchProfile() const { return Dispatch; }
  const std::unordered_map<const IrProc *, ProcProfile> &procs() const {
    return Procs;
  }
  const std::unordered_map<const CallNode *, CallSiteProfile> &sites() const {
    return Sites;
  }

  // MachineObserver
  void onStep(const Executor &M, const Node *N) override;
  void onCall(const Executor &M, const CallNode *Site, const IrProc *Caller,
              const IrProc *Callee) override;
  void onJump(const Executor &M, const JumpNode *Site, const IrProc *Caller,
              const IrProc *Callee) override;
  void onReturn(const Executor &M, const CallNode *Site, const IrProc *Callee,
                const IrProc *Caller, unsigned ContIndex) override;
  void onCutFrameDiscarded(const Executor &M, const CallNode *Site,
                           const IrProc *Owner) override;
  void onCut(const Executor &M, const CutToNode *From, const IrProc *Target,
             uint64_t FramesDiscarded, bool SameActivation) override;
  void onYield(const Executor &M) override;
  void onUnwindPop(const Executor &M, const CallNode *Site,
                   const IrProc *Owner, bool Resumed) override;
  void onDispatchBegin(const Executor &M, std::string_view Dispatcher,
                       uint64_t Tag) override;
  void onDispatchEnd(const Executor &M, std::string_view Dispatcher,
                     bool Handled, uint64_t ActivationsVisited) override;

private:
  std::string procName(const Executor &M, const IrProc *P);
  CallSiteProfile &site(const Executor &M, const CallNode *Site,
                        const IrProc *Owner);

  std::unordered_map<const IrProc *, ProcProfile> Procs;
  std::unordered_map<const IrProc *, std::string> ProcNames;
  std::unordered_map<const CallNode *, CallSiteProfile> Sites;
  DispatchProfile Dispatch;
  uint64_t PopsThisDispatch = 0;
  bool InDispatch = false;
};

} // namespace cmm

#endif // CMM_OBS_PROFILER_H
