//===- obs/Metrics.h - Engine-wide metrics registry -------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lock-cheap metrics substrate for the batch engine (docs/OBSERVABILITY.md
/// § "Engine telemetry"): atomic counters, gauges, and log-bucketed latency
/// histograms, collected into a named registry that renders snapshots as
/// JSON via obs/Json.
///
/// Cost discipline, mirroring MachineObserver's null-observer contract: the
/// hot path never takes a lock and never branches on "is anyone watching".
/// A component obtains its metric handles once, at wiring time (the only
/// moment the registry mutex is touched), and every subsequent event costs
/// one relaxed atomic add — whether or not the registry is ever exported.
/// Components constructed without a registry are handed the process-wide
/// MetricsRegistry::null() sink, so the update code is branch-free too; the
/// null registry is simply never rendered.
///
/// Histograms are log-bucketed (power-of-two octaves split into 2^SubBits
/// linear sub-buckets, the HdrHistogram arrangement): recording is one
/// bucket add plus count/sum/min/max maintenance, all relaxed; percentile
/// extraction walks the buckets and is exact to one sub-bucket (relative
/// error <= 2^-SubBits = 1/16), while min(), max(), count() and sum() are
/// exact. tests/MetricsTest.cpp pins the bucket boundaries and checks the
/// percentiles against a reference sort.
///
/// MetricsExporter turns a registry into a time series: a background thread
/// appends one self-contained JSON snapshot line to a stream at a fixed
/// interval (plus one final line at stop()), so a long sweep produces
/// JSONL that tools/cmmstat.cpp can plot instead of one terminal blob.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_OBS_METRICS_H
#define CMM_OBS_METRICS_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace cmm {

class JsonWriter;

//===----------------------------------------------------------------------===//
// Metric primitives
//===----------------------------------------------------------------------===//

/// A monotonically increasing event count. One relaxed add per event.
class Counter {
public:
  void add(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// A level that rises and falls (queue depth, in-flight jobs). Signed so a
/// bookkeeping bug shows up as a negative snapshot instead of 2^64-ish
/// garbage; the ThreadPool contract (engine/ThreadPool.h) is that its
/// queue gauge can never actually go below zero.
class Gauge {
public:
  void add(int64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  void sub(int64_t N = 1) { V.fetch_sub(N, std::memory_order_relaxed); }
  void set(int64_t N) { V.store(N, std::memory_order_relaxed); }
  int64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// A log-bucketed distribution of non-negative samples (latencies in
/// microseconds, cycle counts). Thread-safe; every record() is a handful of
/// relaxed atomic operations.
class Histogram {
public:
  /// Linear sub-buckets per power-of-two octave: 2^4 = 16, giving a
  /// relative bucket resolution of 1/16 (6.25%).
  static constexpr unsigned SubBits = 4;
  static constexpr unsigned SubBuckets = 1u << SubBits;
  /// Values below SubBuckets get exact unit-width buckets; each of the
  /// remaining 64-SubBits octaves contributes SubBuckets buckets.
  static constexpr unsigned NumBuckets = (64 - SubBits + 1) * SubBuckets;

  void record(uint64_t V) {
    Buckets[bucketIndex(V)].fetch_add(1, std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(V, std::memory_order_relaxed);
    relaxedMin(Min, V);
    relaxedMax(Max, V);
  }

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  /// Exact smallest / largest recorded sample (0 when empty).
  uint64_t min() const {
    uint64_t M = Min.load(std::memory_order_relaxed);
    return M == ~uint64_t(0) ? 0 : M;
  }
  uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  double mean() const {
    uint64_t C = count();
    return C ? double(sum()) / double(C) : 0.0;
  }

  /// The value at percentile \p P (0..100): the lower bound of the bucket
  /// containing the rank-ceil(P/100*count) sample, clamped into
  /// [min(), max()]. Exact for samples < SubBuckets; within one sub-bucket
  /// (relative error <= 1/16) elsewhere. P >= 100 returns max() exactly.
  uint64_t percentile(double P) const;

  /// Bucket geometry, exposed so tests can pin the boundaries and cmmstat
  /// can rebucket trace durations identically.
  static unsigned bucketIndex(uint64_t V) {
    if (V < SubBuckets)
      return unsigned(V);
    unsigned E = 63 - unsigned(countLeadingZeros(V)); // position of the MSB
    unsigned Sub = unsigned((V >> (E - SubBits)) & (SubBuckets - 1));
    return (E - SubBits + 1) * SubBuckets + Sub;
  }
  /// Smallest value mapping to bucket \p Idx (inverse of bucketIndex on
  /// bucket lower bounds).
  static uint64_t bucketLowerBound(unsigned Idx) {
    if (Idx < SubBuckets)
      return Idx;
    unsigned Chunk = Idx / SubBuckets; // >= 1
    unsigned E = Chunk + SubBits - 1;
    uint64_t Sub = Idx % SubBuckets;
    return (uint64_t(1) << E) | (Sub << (E - SubBits));
  }

  /// Calls \p Fn(lowerBound, count) for every non-empty bucket, in
  /// ascending value order.
  void forEachBucket(
      const std::function<void(uint64_t, uint64_t)> &Fn) const;

  /// {"count":..,"sum":..,"mean":..,"min":..,"max":..,"p50":..,"p90":..,
  ///  "p99":..} — the distribution summary every snapshot carries.
  void writeJson(JsonWriter &W) const;

private:
  static int countLeadingZeros(uint64_t V) { return __builtin_clzll(V); }
  static void relaxedMin(std::atomic<uint64_t> &A, uint64_t V) {
    uint64_t Cur = A.load(std::memory_order_relaxed);
    while (V < Cur &&
           !A.compare_exchange_weak(Cur, V, std::memory_order_relaxed)) {
    }
  }
  static void relaxedMax(std::atomic<uint64_t> &A, uint64_t V) {
    uint64_t Cur = A.load(std::memory_order_relaxed);
    while (V > Cur &&
           !A.compare_exchange_weak(Cur, V, std::memory_order_relaxed)) {
    }
  }

  std::atomic<uint64_t> Buckets[NumBuckets] = {};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Min{~uint64_t(0)};
  std::atomic<uint64_t> Max{0};
};

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

/// Named metrics with stable addresses. counter()/gauge()/histogram() are
/// get-or-create and thread-safe (they take the registry mutex — wiring
/// cost, paid once per handle, never on the event path); the returned
/// references stay valid for the registry's lifetime. Snapshots render the
/// whole registry as one JSON object with deterministic (sorted) key order.
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  Counter &counter(std::string_view Name);
  Gauge &gauge(std::string_view Name);
  Histogram &histogram(std::string_view Name);

  /// Registers a read-only probe rendered among the counters: a callback
  /// sampled at snapshot time, for values whose source of truth lives
  /// elsewhere (e.g. the cache's bytecode-compile count, which must survive
  /// the cache itself — see engine/Cache.h). \p Fn must stay callable for
  /// the registry's lifetime and be safe to call from any thread.
  void probe(std::string_view Name, std::function<uint64_t()> Fn);

  /// {"counters":{...},"gauges":{...},"histograms":{name:{summary}}}.
  void writeJson(JsonWriter &W) const;
  std::string json() const;

  /// The process-wide sink for components wired without a registry: updates
  /// land in real atomics (same cost, no branches) but are never exported.
  static MetricsRegistry &null();

private:
  mutable std::mutex Mu;
  // std::map for sorted, deterministic JSON; std::deque for stable element
  // addresses across growth.
  std::deque<Counter> CounterStore;
  std::deque<Gauge> GaugeStore;
  std::deque<Histogram> HistogramStore;
  std::map<std::string, Counter *, std::less<>> Counters;
  std::map<std::string, Gauge *, std::less<>> Gauges;
  std::map<std::string, Histogram *, std::less<>> Histograms;
  std::map<std::string, std::function<uint64_t()>, std::less<>> Probes;
};

//===----------------------------------------------------------------------===//
// MetricsExporter
//===----------------------------------------------------------------------===//

/// Writes one JSON snapshot line per interval to a stream (JSONL):
///
///   {"t_ms":<since construction>,"seq":N,"metrics":{<registry JSON>}}
///
/// plus one final line at stop()/destruction, so even a run shorter than
/// one interval yields a parseable time series. The stream is owned by the
/// caller, must outlive the exporter, and is used exclusively by the
/// exporter thread until stop() returns.
class MetricsExporter {
public:
  MetricsExporter(const MetricsRegistry &Reg, std::ostream &OS,
                  double IntervalMillis);
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter &) = delete;
  MetricsExporter &operator=(const MetricsExporter &) = delete;

  /// Joins the exporter thread after writing a final snapshot. Idempotent.
  void stop();

  uint64_t snapshotsWritten() const {
    return Written.load(std::memory_order_relaxed);
  }

private:
  void writeSnapshot();
  void loop();

  const MetricsRegistry &Reg;
  std::ostream &OS;
  double IntervalMillis;
  std::chrono::steady_clock::time_point Epoch;
  std::mutex Mu;
  std::condition_variable Cv;
  bool Stopping = false;
  bool Stopped = false;
  std::atomic<uint64_t> Written{0};
  std::thread Thread;
};

} // namespace cmm

#endif // CMM_OBS_METRICS_H
