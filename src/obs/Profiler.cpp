//===- obs/Profiler.cpp ---------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "obs/Profiler.h"

#include "obs/Json.h"

#include <algorithm>
#include <cstdio>

using namespace cmm;

std::string Profiler::procName(const Executor &M, const IrProc *P) {
  if (!P)
    return "?";
  auto It = ProcNames.find(P);
  if (It != ProcNames.end())
    return It->second;
  const std::string &Name = M.program().Names->spelling(P->Name);
  ProcNames.emplace(P, Name);
  return Name;
}

CallSiteProfile &Profiler::site(const Executor &M, const CallNode *Site,
                                const IrProc *Owner) {
  CallSiteProfile &P = Sites[Site];
  if (P.Owner.empty()) {
    P.Owner = procName(M, Owner);
    P.Loc = Site->Loc;
  }
  return P;
}

void Profiler::onStep(const Executor &M, const Node *N) {
  (void)N;
  ++Procs[M.currentProc()].Steps;
}

void Profiler::onCall(const Executor &M, const CallNode *Site,
                      const IrProc *Caller, const IrProc *Callee) {
  ++Procs[Caller].CallsOut;
  ++Procs[Callee].CallsIn;
  CallSiteProfile &S = site(M, Site, Caller);
  ++S.Calls;
  S.Callee = procName(M, Callee);
}

void Profiler::onJump(const Executor &M, const JumpNode *Site,
                      const IrProc *Caller, const IrProc *Callee) {
  (void)Site;
  ++Procs[Caller].JumpsOut;
  ++Procs[Callee].JumpsIn;
  (void)M;
}

void Profiler::onReturn(const Executor &M, const CallNode *Site,
                        const IrProc *Callee, const IrProc *Caller,
                        unsigned ContIndex) {
  ++Procs[Callee].Returns;
  CallSiteProfile &S = site(M, Site, Caller);
  // The normal return continuation is the last one; with n alternates the
  // bundle has n+1 entries and index n is "normal". Index semantics here:
  // ContIndex 0 with no alternates is normal too, so compare against the
  // bundle size.
  if (ContIndex + 1 == Site->Bundle.ReturnsTo.size())
    ++S.Returns;
  else
    ++S.AltReturns;
}

void Profiler::onCutFrameDiscarded(const Executor &M, const CallNode *Site,
                                   const IrProc *Owner) {
  ++Procs[Owner].FramesDiscarded;
  ++site(M, Site, Owner).CutsOver;
}

void Profiler::onCut(const Executor &M, const CutToNode *From,
                     const IrProc *Target, uint64_t FramesDiscarded,
                     bool SameActivation) {
  (void)From;
  (void)FramesDiscarded;
  (void)SameActivation;
  (void)M;
  ++Procs[Target].CutsLanded;
}

void Profiler::onYield(const Executor &M) {
  // Control sits in the yield intrinsic; attribute the raise to the
  // procedure that called yield (the topmost suspended frame).
  const IrProc *Raiser =
      M.stackDepth() > 0 ? M.frameProc(0) : M.currentProc();
  ++Procs[Raiser].Yields;
}

void Profiler::onUnwindPop(const Executor &M, const CallNode *Site,
                           const IrProc *Owner, bool Resumed) {
  (void)Resumed;
  ++Procs[Owner].UnwindPops;
  ++site(M, Site, Owner).UnwindPops;
  if (InDispatch)
    ++PopsThisDispatch;
}

void Profiler::onDispatchBegin(const Executor &M, std::string_view Dispatcher,
                               uint64_t Tag) {
  (void)M;
  (void)Dispatcher;
  (void)Tag;
  InDispatch = true;
  PopsThisDispatch = 0;
}

void Profiler::onDispatchEnd(const Executor &M, std::string_view Dispatcher,
                             bool Handled, uint64_t ActivationsVisited) {
  (void)M;
  (void)Dispatcher;
  ++Dispatch.Dispatches;
  if (Handled)
    ++Dispatch.Handled;
  Dispatch.ActivationsVisited += ActivationsVisited;
  Dispatch.ActivationsMax =
      std::max(Dispatch.ActivationsMax, ActivationsVisited);
  ++Dispatch.UnwindPopHistogram[PopsThisDispatch];
  InDispatch = false;
  PopsThisDispatch = 0;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

namespace {

std::string siteLabel(const CallSiteProfile &S) {
  std::string L = S.Owner + " @ " + S.Loc.str();
  if (!S.Callee.empty())
    L += " -> " + S.Callee;
  return L;
}

} // namespace

std::string Profiler::report() const {
  std::vector<std::pair<std::string, const ProcProfile *>> ProcRows;
  for (const auto &[P, Prof] : Procs) {
    auto It = ProcNames.find(P);
    ProcRows.emplace_back(It != ProcNames.end() ? It->second : "?", &Prof);
  }
  std::sort(ProcRows.begin(), ProcRows.end(), [](const auto &A,
                                                 const auto &B) {
    if (A.second->Steps != B.second->Steps)
      return A.second->Steps > B.second->Steps;
    return A.first < B.first;
  });

  std::vector<const CallSiteProfile *> SiteRows;
  for (const auto &[N, Prof] : Sites) {
    (void)N;
    SiteRows.push_back(&Prof);
  }
  std::sort(SiteRows.begin(), SiteRows.end(),
            [](const CallSiteProfile *A, const CallSiteProfile *B) {
              if (A->Calls != B->Calls)
                return A->Calls > B->Calls;
              return siteLabel(*A) < siteLabel(*B);
            });

  std::string Out;
  char Buf[256];
  Out += "=== cmmex profile ===\n";
  if (JobId != 0)
    Out += "job " + std::to_string(JobId) + "\n";
  Out += "procedures (sorted by steps):\n";
  Out += "       steps  calls-in calls-out     jumps   returns      cuts"
         "  cut-over   unwinds    yields  procedure\n";
  for (const auto &[Name, P] : ProcRows) {
    std::snprintf(Buf, sizeof(Buf),
                  "%12llu %9llu %9llu %9llu %9llu %9llu %9llu %9llu %9llu"
                  "  %s\n",
                  (unsigned long long)P->Steps,
                  (unsigned long long)P->CallsIn,
                  (unsigned long long)P->CallsOut,
                  (unsigned long long)(P->JumpsIn + P->JumpsOut),
                  (unsigned long long)P->Returns,
                  (unsigned long long)P->CutsLanded,
                  (unsigned long long)P->FramesDiscarded,
                  (unsigned long long)P->UnwindPops,
                  (unsigned long long)P->Yields, Name.c_str());
    Out += Buf;
  }
  Out += "call sites (sorted by calls):\n";
  Out += "       calls   returns  alt-rets  cut-over   unwinds  site\n";
  for (const CallSiteProfile *S : SiteRows) {
    std::snprintf(Buf, sizeof(Buf),
                  "%12llu %9llu %9llu %9llu %9llu  %s\n",
                  (unsigned long long)S->Calls,
                  (unsigned long long)S->Returns,
                  (unsigned long long)S->AltReturns,
                  (unsigned long long)S->CutsOver,
                  (unsigned long long)S->UnwindPops,
                  siteLabel(*S).c_str());
    Out += Buf;
  }
  if (Dispatch.Dispatches != 0) {
    double Mean = static_cast<double>(Dispatch.ActivationsVisited) /
                  static_cast<double>(Dispatch.Dispatches);
    std::snprintf(Buf, sizeof(Buf),
                  "dispatch: n=%llu handled=%llu activations"
                  " total=%llu max=%llu mean=%.2f\n",
                  (unsigned long long)Dispatch.Dispatches,
                  (unsigned long long)Dispatch.Handled,
                  (unsigned long long)Dispatch.ActivationsVisited,
                  (unsigned long long)Dispatch.ActivationsMax, Mean);
    Out += Buf;
    Out += "unwind pops per dispatch:";
    for (const auto &[Depth, Count] : Dispatch.UnwindPopHistogram) {
      std::snprintf(Buf, sizeof(Buf), " %llu:%llu",
                    (unsigned long long)Depth, (unsigned long long)Count);
      Out += Buf;
    }
    Out += "\n";
  }
  return Out;
}

void Profiler::writeJson(JsonWriter &W) const {
  std::vector<std::pair<std::string, const ProcProfile *>> ProcRows;
  for (const auto &[P, Prof] : Procs) {
    auto It = ProcNames.find(P);
    ProcRows.emplace_back(It != ProcNames.end() ? It->second : "?", &Prof);
  }
  std::sort(ProcRows.begin(), ProcRows.end(),
            [](const auto &A, const auto &B) {
              if (A.second->Steps != B.second->Steps)
                return A.second->Steps > B.second->Steps;
              return A.first < B.first;
            });
  std::vector<const CallSiteProfile *> SiteRows;
  for (const auto &[N, Prof] : Sites) {
    (void)N;
    SiteRows.push_back(&Prof);
  }
  std::sort(SiteRows.begin(), SiteRows.end(),
            [](const CallSiteProfile *A, const CallSiteProfile *B) {
              if (A->Calls != B->Calls)
                return A->Calls > B->Calls;
              return siteLabel(*A) < siteLabel(*B);
            });

  W.beginObject();
  if (JobId != 0)
    W.field("job", JobId);
  W.key("procs");
  W.beginArray();
  for (const auto &[Name, P] : ProcRows) {
    W.beginObject();
    W.field("proc", std::string_view(Name));
    W.field("steps", P->Steps).field("calls_in", P->CallsIn);
    W.field("calls_out", P->CallsOut).field("jumps_in", P->JumpsIn);
    W.field("jumps_out", P->JumpsOut).field("returns", P->Returns);
    W.field("cuts_landed", P->CutsLanded);
    W.field("frames_discarded", P->FramesDiscarded);
    W.field("unwind_pops", P->UnwindPops).field("yields", P->Yields);
    W.endObject();
  }
  W.endArray();
  W.key("sites");
  W.beginArray();
  for (const CallSiteProfile *S : SiteRows) {
    W.beginObject();
    W.field("owner", std::string_view(S->Owner));
    W.field("loc", S->Loc.str());
    W.field("callee", std::string_view(S->Callee));
    W.field("calls", S->Calls).field("returns", S->Returns);
    W.field("alt_returns", S->AltReturns).field("cut_over", S->CutsOver);
    W.field("unwind_pops", S->UnwindPops);
    W.endObject();
  }
  W.endArray();
  W.key("dispatch");
  W.beginObject();
  W.field("dispatches", Dispatch.Dispatches);
  W.field("handled", Dispatch.Handled);
  W.field("activations_visited", Dispatch.ActivationsVisited);
  W.field("activations_max", Dispatch.ActivationsMax);
  W.key("unwind_pop_histogram");
  W.beginArray();
  for (const auto &[Depth, Count] : Dispatch.UnwindPopHistogram) {
    W.beginObject();
    W.field("pops", Depth).field("dispatches", Count);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  W.endObject();
}
