//===- obs/Trace.cpp ------------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "obs/Json.h"

using namespace cmm;

const char *cmm::nodeKindName(Node::Kind K) {
  switch (K) {
  case Node::Kind::Entry:
    return "Entry";
  case Node::Kind::Exit:
    return "Exit";
  case Node::Kind::CopyIn:
    return "CopyIn";
  case Node::Kind::CopyOut:
    return "CopyOut";
  case Node::Kind::CalleeSaves:
    return "CalleeSaves";
  case Node::Kind::Assign:
    return "Assign";
  case Node::Kind::Store:
    return "Store";
  case Node::Kind::Branch:
    return "Branch";
  case Node::Kind::Call:
    return "Call";
  case Node::Kind::Jump:
    return "Jump";
  case Node::Kind::CutTo:
    return "CutTo";
  case Node::Kind::Yield:
    return "Yield";
  }
  return "?";
}

namespace {

std::string procName(const Executor &M, const IrProc *P) {
  if (!P)
    return "?";
  return M.program().Names->spelling(P->Name);
}

/// First yield argument, when the run follows the (tag, arg?) convention.
uint64_t yieldTag(const Executor &M) {
  const std::vector<Value> &A = M.argArea();
  return (!A.empty() && A[0].isBits()) ? A[0].Raw : 0;
}

} // namespace

TraceSink::TraceSink(std::ostream &OS, TraceOptions Opts)
    : OS(OS), Opts(Opts) {}

TraceSink::~TraceSink() { finish(); }

uint64_t TraceSink::timestamp(const Executor &M) const {
  if (!Opts.WallClock)
    return M.stats().Steps;
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - Opts.Epoch)
                      .count());
}

void TraceSink::writeDirect(const std::string &Line) {
  if (Opts.BareLines) {
    OS << Line << '\n';
    return;
  }
  if (jsonl()) {
    OS << Line << '\n';
    return;
  }
  if (!WroteHeader) {
    OS << "{\"traceEvents\":[\n";
    WroteHeader = true;
  } else {
    OS << ",\n";
  }
  OS << Line;
}

void TraceSink::emit(std::string Line) {
  // One injection point covers every event in both formats: each line is a
  // complete JSON object, so the job tag goes right after its brace.
  if (Opts.JobId != 0 && Line.size() > 2 && Line.front() == '{')
    Line.insert(1, "\"job\":" + std::to_string(Opts.JobId) + ",");
  ++Emitted;
  if (Opts.RingCapacity != 0) {
    if (Ring.size() == Opts.RingCapacity) {
      Ring.pop_front();
      ++Dropped;
    }
    Ring.push_back(std::move(Line));
    return;
  }
  writeDirect(Line);
}

void TraceSink::finish() {
  if (Finished)
    return;
  Finished = true;
  // Close spans still open (machine running, wrong, or suspended). These
  // E events go through emit() so the ring sees them too.
  if (!jsonl()) {
    while (RtsSpans > 0) {
      --RtsSpans;
      JsonWriter W;
      W.beginObject();
      W.field("ph", "E").field("ts", LastStep).field("pid", Opts.Pid);
      W.field("tid", uint64_t(1));
      W.endObject();
      emit(W.take());
    }
    while (!MutatorSpans.empty()) {
      MutatorSpans.pop_back();
      JsonWriter W;
      W.beginObject();
      W.field("ph", "E").field("ts", LastStep).field("pid", Opts.Pid);
      W.field("tid", uint64_t(0));
      W.endObject();
      emit(W.take());
    }
  }
  for (const std::string &Line : Ring)
    writeDirect(Line);
  Ring.clear();
  if (!jsonl() && !Opts.BareLines) {
    if (!WroteHeader)
      OS << "{\"traceEvents\":[\n";
    OS << "\n]}\n";
  }
  OS.flush();
}

//===----------------------------------------------------------------------===//
// Chrome-format span plumbing
//===----------------------------------------------------------------------===//

void TraceSink::spanBegin(const Executor &M, std::string Name,
                          const char *Cat, std::string Args, unsigned Tid) {
  LastStep = timestamp(M);
  JsonWriter W;
  W.beginObject();
  W.field("name", std::string_view(Name)).field("cat", Cat);
  W.field("ph", "B").field("ts", LastStep).field("pid", Opts.Pid);
  W.field("tid", uint64_t(Tid));
  W.endObject();
  std::string Line = W.take();
  if (!Args.empty()) {
    // Args arrives as pre-rendered "key":value,... object content.
    Line.pop_back(); // '}'
    Line += ",\"args\":{";
    Line += Args;
    Line += "}}";
  }
  if (Tid == 0)
    MutatorSpans.push_back(std::move(Name));
  else
    ++RtsSpans;
  emit(std::move(Line));
}

void TraceSink::spanEnd(const Executor &M, unsigned Tid) {
  if (Tid == 0) {
    if (MutatorSpans.empty())
      return; // unbalanced (e.g. trace attached mid-run); drop
    MutatorSpans.pop_back();
  } else {
    if (RtsSpans == 0)
      return;
    --RtsSpans;
  }
  LastStep = timestamp(M);
  JsonWriter W;
  W.beginObject();
  W.field("ph", "E").field("ts", LastStep).field("pid", Opts.Pid);
  W.field("tid", uint64_t(Tid));
  W.endObject();
  emit(W.take());
}

void TraceSink::instant(const Executor &M, std::string_view Name,
                        const char *Cat, std::string Args, unsigned Tid) {
  LastStep = timestamp(M);
  JsonWriter W;
  W.beginObject();
  W.field("name", Name).field("cat", Cat).field("ph", "i");
  W.field("ts", LastStep).field("pid", Opts.Pid);
  W.field("tid", uint64_t(Tid)).field("s", "t");
  W.endObject();
  std::string Line = W.take();
  if (!Args.empty()) {
    Line.pop_back(); // '}'
    Line += ",\"args\":{";
    Line += Args;
    Line += "}}";
  }
  emit(std::move(Line));
}

//===----------------------------------------------------------------------===//
// Events
//===----------------------------------------------------------------------===//

void TraceSink::onStart(const Executor &M, const IrProc *Entry) {
  LastStep = timestamp(M);
  if (jsonl()) {
    JsonWriter W;
    W.beginObject();
    W.field("ev", "start").field("step", LastStep);
    W.field("depth", uint64_t(M.stackDepth()));
    W.field("proc", procName(M, Entry));
    W.endObject();
    emit(W.take());
    return;
  }
  spanBegin(M, procName(M, Entry), "proc", "");
}

void TraceSink::onHalt(const Executor &M) {
  LastStep = timestamp(M);
  if (jsonl()) {
    JsonWriter W;
    W.beginObject();
    W.field("ev", "halt").field("step", LastStep);
    W.field("results", uint64_t(M.argArea().size()));
    W.endObject();
    emit(W.take());
    return;
  }
  spanEnd(M); // the root activation
  instant(M, "halt", "machine", "");
}

void TraceSink::onStep(const Executor &M, const Node *N) {
  if (!Opts.IncludeSteps)
    return;
  LastStep = timestamp(M);
  if (jsonl()) {
    JsonWriter W;
    W.beginObject();
    W.field("ev", "step").field("step", LastStep);
    W.field("depth", uint64_t(M.stackDepth()));
    W.field("proc", procName(M, M.currentProc()));
    W.field("node", nodeKindName(N->kind()));
    W.field("loc", N->Loc.str());
    W.endObject();
    emit(W.take());
    return;
  }
  instant(M, nodeKindName(N->kind()), "step", "");
}

void TraceSink::onCall(const Executor &M, const CallNode *Site,
                       const IrProc *Caller, const IrProc *Callee) {
  LastStep = timestamp(M);
  if (jsonl()) {
    JsonWriter W;
    W.beginObject();
    W.field("ev", "call").field("step", LastStep);
    W.field("depth", uint64_t(M.stackDepth()));
    W.field("caller", procName(M, Caller));
    W.field("callee", procName(M, Callee));
    W.field("site", Site->Loc.str());
    W.endObject();
    emit(W.take());
    return;
  }
  spanBegin(M, procName(M, Callee), "call",
            "\"site\":\"" + jsonEscape(Site->Loc.str()) + "\"");
}

void TraceSink::onJump(const Executor &M, const JumpNode *Site,
                       const IrProc *Caller, const IrProc *Callee) {
  LastStep = timestamp(M);
  if (jsonl()) {
    JsonWriter W;
    W.beginObject();
    W.field("ev", "jump").field("step", LastStep);
    W.field("depth", uint64_t(M.stackDepth()));
    W.field("caller", procName(M, Caller));
    W.field("callee", procName(M, Callee));
    W.field("site", Site->Loc.str());
    W.endObject();
    emit(W.take());
    return;
  }
  // A tail call replaces the current span.
  spanEnd(M);
  spanBegin(M, procName(M, Callee), "jump", "");
}

void TraceSink::onReturn(const Executor &M, const CallNode *Site,
                         const IrProc *Callee, const IrProc *Caller,
                         unsigned ContIndex) {
  LastStep = timestamp(M);
  if (jsonl()) {
    JsonWriter W;
    W.beginObject();
    W.field("ev", "return").field("step", LastStep);
    W.field("depth", uint64_t(M.stackDepth()));
    W.field("callee", procName(M, Callee));
    W.field("to", procName(M, Caller));
    W.field("site", Site->Loc.str());
    W.field("cont", uint64_t(ContIndex));
    W.endObject();
    emit(W.take());
    return;
  }
  spanEnd(M);
}

void TraceSink::onCutFrameDiscarded(const Executor &M, const CallNode *Site,
                                    const IrProc *Owner) {
  LastStep = timestamp(M);
  if (jsonl()) {
    JsonWriter W;
    W.beginObject();
    W.field("ev", "cut_frame").field("step", LastStep);
    W.field("depth", uint64_t(M.stackDepth()));
    W.field("proc", procName(M, Owner));
    W.field("site", Site->Loc.str());
    W.endObject();
    emit(W.take());
    return;
  }
  spanEnd(M);
}

void TraceSink::onCut(const Executor &M, const CutToNode *From,
                      const IrProc *Target, uint64_t FramesDiscarded,
                      bool SameActivation) {
  LastStep = timestamp(M);
  if (jsonl()) {
    JsonWriter W;
    W.beginObject();
    W.field("ev", "cut").field("step", LastStep);
    W.field("depth", uint64_t(M.stackDepth()));
    W.field("target", procName(M, Target));
    W.field("frames", FramesDiscarded);
    W.field("same", SameActivation);
    W.field("from", From ? From->Loc.str() : std::string("rts"));
    W.endObject();
    emit(W.take());
    return;
  }
  if (!SameActivation)
    spanEnd(M); // the activation abandoned by the cut
  instant(M, "cut", "exn",
          "\"target\":\"" + jsonEscape(procName(M, Target)) +
              "\",\"frames\":" + std::to_string(FramesDiscarded));
}

void TraceSink::onYield(const Executor &M) {
  LastStep = timestamp(M);
  if (jsonl()) {
    JsonWriter W;
    W.beginObject();
    W.field("ev", "yield").field("step", LastStep);
    W.field("depth", uint64_t(M.stackDepth()));
    W.field("tag", yieldTag(M));
    W.field("args", uint64_t(M.argArea().size()));
    W.endObject();
    emit(W.take());
    return;
  }
  instant(M, "yield", "exn", "\"tag\":" + std::to_string(yieldTag(M)));
}

void TraceSink::onUnwindPop(const Executor &M, const CallNode *Site,
                            const IrProc *Owner, bool Resumed) {
  LastStep = timestamp(M);
  if (jsonl()) {
    JsonWriter W;
    W.beginObject();
    W.field("ev", "unwind_pop").field("step", LastStep);
    W.field("depth", uint64_t(M.stackDepth()));
    W.field("proc", procName(M, Owner));
    W.field("site", Site->Loc.str());
    W.field("resumed", Resumed);
    W.endObject();
    emit(W.take());
    return;
  }
  // The resuming pop does not close its span: control continues inside
  // that very activation at its unwind continuation.
  if (!Resumed)
    spanEnd(M);
}

void TraceSink::onResume(const Executor &M, ResumeChoice::Kind K,
                         unsigned Index) {
  LastStep = timestamp(M);
  if (jsonl()) {
    JsonWriter W;
    W.beginObject();
    W.field("ev", "resume").field("step", LastStep);
    W.field("depth", uint64_t(M.stackDepth()));
    W.field("kind",
            K == ResumeChoice::Kind::Return
                ? "return"
                : (K == ResumeChoice::Kind::Unwind ? "unwind" : "cut"));
    W.field("index", uint64_t(Index));
    W.endObject();
    emit(W.take());
    return;
  }
  // The suspended activation (the yield intrinsic) is abandoned.
  spanEnd(M);
}

void TraceSink::onWrong(const Executor &M, const std::string &Reason,
                        SourceLoc Loc) {
  LastStep = timestamp(M);
  if (jsonl()) {
    JsonWriter W;
    W.beginObject();
    W.field("ev", "wrong").field("step", LastStep);
    W.field("reason", Reason);
    W.field("loc", Loc.str());
    W.endObject();
    emit(W.take());
    return;
  }
  instant(M, "wrong", "machine",
          "\"reason\":\"" + jsonEscape(Reason) + "\"");
}

void TraceSink::onDispatchBegin(const Executor &M, std::string_view Dispatcher,
                                uint64_t Tag) {
  LastStep = timestamp(M);
  if (jsonl()) {
    JsonWriter W;
    W.beginObject();
    W.field("ev", "dispatch_begin").field("step", LastStep);
    W.field("dispatcher", Dispatcher);
    W.field("tag", Tag);
    W.endObject();
    emit(W.take());
    return;
  }
  spanBegin(M, "dispatch:" + std::string(Dispatcher), "rts",
            "\"tag\":" + std::to_string(Tag), /*Tid=*/1);
}

void TraceSink::onDispatchEnd(const Executor &M, std::string_view Dispatcher,
                              bool Handled, uint64_t ActivationsVisited) {
  LastStep = timestamp(M);
  if (jsonl()) {
    JsonWriter W;
    W.beginObject();
    W.field("ev", "dispatch_end").field("step", LastStep);
    W.field("dispatcher", Dispatcher);
    W.field("handled", Handled);
    W.field("visited", ActivationsVisited);
    W.endObject();
    emit(W.take());
    return;
  }
  spanEnd(M, /*Tid=*/1);
}
