//===- obs/Json.cpp -------------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <cmath>
#include <cstdio>

using namespace cmm;

std::string cmm::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C & 0x1f);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

JsonWriter &JsonWriter::value(double V) {
  comma();
  if (!std::isfinite(V)) {
    Out += "null"; // JSON has no Inf/NaN
    return *this;
  }
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  Out += Buf;
  return *this;
}
