//===- obs/Trace.h - Machine event trace sinks ------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TraceSink streams MachineObserver events to an output stream in one of
/// two formats:
///
///  - JSONL: one self-describing JSON object per line (the schema is
///    documented in docs/OBSERVABILITY.md), suitable for jq/grep and for
///    the golden-file tests;
///
///  - Chrome trace_event JSON: open the file directly in chrome://tracing
///    or https://ui.perfetto.dev. Mutator activations become B/E duration
///    spans on track 0 (the abstract-machine step counter is the
///    timestamp), dispatcher work appears as spans on track 1, and yields,
///    cuts and wrong-states become instant events.
///
/// A bounded ring-buffer mode (TraceOptions::RingCapacity) keeps only the
/// last N events in memory and writes them at finish(), so long runs can be
/// traced with O(1) memory — the usual "flight recorder" arrangement.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_OBS_TRACE_H
#define CMM_OBS_TRACE_H

#include "sem/Observer.h"

#include <chrono>
#include <deque>
#include <ostream>
#include <string>
#include <vector>

namespace cmm {

/// Configures a TraceSink.
struct TraceOptions {
  enum class Format : uint8_t { Jsonl, Chrome };
  Format Fmt = Format::Jsonl;
  /// Emit one event per machine transition. Off by default: a step event
  /// per transition multiplies trace volume by ~10x.
  bool IncludeSteps = false;
  /// Keep only the newest N events, written at finish(). 0 streams every
  /// event immediately (unbounded).
  size_t RingCapacity = 0;
  /// Engine job id: when nonzero every event carries a "job":N field, so
  /// the merged trace of a batch can be split back into per-job streams
  /// (src/engine sets this on the sinks it creates).
  uint64_t JobId = 0;
  /// Timestamp source. By default `ts` is the abstract machine's step
  /// counter (the paper's cost model). With WallClock set, `ts` is
  /// microseconds since Epoch, so events from many jobs land on one real
  /// timeline — this is how the engine merges per-job machine activity
  /// with its wall-clock job lifecycle spans (docs/OBSERVABILITY.md).
  bool WallClock = false;
  std::chrono::steady_clock::time_point Epoch{};
  /// Chrome `pid` for every event this sink emits (default 1). The engine
  /// gives each sampled job its own pid so per-job span stacks do not
  /// interleave in the viewer.
  uint64_t Pid = 1;
  /// Emit each event as one bare newline-terminated JSON object with no
  /// document header/footer or separators, in BOTH formats. Used to buffer
  /// a sink's events for splicing into another sink via emitRaw().
  bool BareLines = false;
};

/// Streams machine events to \p OS. Call finish() (or destroy the sink)
/// after the run to close open spans and complete the output; for the
/// Chrome format the file is not valid JSON until then.
class TraceSink final : public MachineObserver {
public:
  explicit TraceSink(std::ostream &OS, TraceOptions Opts = {});
  ~TraceSink() override;

  /// Flushes the ring buffer, closes still-open spans (machine still
  /// running, or wrong) and completes the JSON document. Idempotent.
  void finish();

  uint64_t eventsEmitted() const { return Emitted; }
  uint64_t eventsDropped() const { return Dropped; }

  /// Injects one pre-rendered event object (a complete JSON object, no
  /// trailing newline) into this sink's stream, through the same ring/
  /// format plumbing as observer events. The engine uses this to splice
  /// job lifecycle spans and buffered per-job machine events into one
  /// merged trace file. Not thread-safe; callers serialize externally.
  void emitRaw(std::string Line) { emit(std::move(Line)); }

  // MachineObserver
  void onStart(const Executor &M, const IrProc *Entry) override;
  void onHalt(const Executor &M) override;
  void onStep(const Executor &M, const Node *N) override;
  void onCall(const Executor &M, const CallNode *Site, const IrProc *Caller,
              const IrProc *Callee) override;
  void onJump(const Executor &M, const JumpNode *Site, const IrProc *Caller,
              const IrProc *Callee) override;
  void onReturn(const Executor &M, const CallNode *Site, const IrProc *Callee,
                const IrProc *Caller, unsigned ContIndex) override;
  void onCutFrameDiscarded(const Executor &M, const CallNode *Site,
                           const IrProc *Owner) override;
  void onCut(const Executor &M, const CutToNode *From, const IrProc *Target,
             uint64_t FramesDiscarded, bool SameActivation) override;
  void onYield(const Executor &M) override;
  void onUnwindPop(const Executor &M, const CallNode *Site,
                   const IrProc *Owner, bool Resumed) override;
  void onResume(const Executor &M, ResumeChoice::Kind K,
                unsigned Index) override;
  void onWrong(const Executor &M, const std::string &Reason,
               SourceLoc Loc) override;
  void onDispatchBegin(const Executor &M, std::string_view Dispatcher,
                       uint64_t Tag) override;
  void onDispatchEnd(const Executor &M, std::string_view Dispatcher,
                     bool Handled, uint64_t ActivationsVisited) override;

private:
  bool jsonl() const { return Opts.Fmt == TraceOptions::Format::Jsonl; }
  /// The event timestamp: machine steps, or wall-clock microseconds since
  /// Opts.Epoch when Opts.WallClock is set.
  uint64_t timestamp(const Executor &M) const;
  /// Routes one formatted event line to the ring or the stream.
  void emit(std::string Line);
  void writeDirect(const std::string &Line);

  // Chrome-format span helpers (track 0 = mutator, track 1 = rts).
  void spanBegin(const Executor &M, std::string Name, const char *Cat,
                 std::string Args, unsigned Tid = 0);
  void spanEnd(const Executor &M, unsigned Tid = 0);
  void instant(const Executor &M, std::string_view Name, const char *Cat,
               std::string Args, unsigned Tid = 0);

  std::ostream &OS;
  TraceOptions Opts;
  std::deque<std::string> Ring;
  std::vector<std::string> MutatorSpans; ///< open B spans on track 0
  unsigned RtsSpans = 0;                 ///< open B spans on track 1
  uint64_t Emitted = 0;
  uint64_t Dropped = 0;
  uint64_t LastStep = 0;
  bool WroteHeader = false;
  bool WroteAnyEvent = false;
  bool Finished = false;
};

/// Printable name of a node kind (used in step events and diagnostics).
const char *nodeKindName(Node::Kind K);

} // namespace cmm

#endif // CMM_OBS_TRACE_H
