//===- obs/StatsJson.h - Machine-readable stats writers ---------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JSON renderings of the repo's counter structs: the machine's Stats (all
/// thirteen fields — the cost model of the reproduction), the optimizer's
/// OptReport (per-pass wall time and IR deltas), and the dispatchers' walk
/// statistics. Shared by `cmmi --stats-json`, the benchmark JSON emitters
/// and the tests, so every tool spells the field names the same way.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_OBS_STATSJSON_H
#define CMM_OBS_STATSJSON_H

#include "obs/Json.h"
#include "opt/PassManager.h"
#include "rts/RuntimeInterface.h"
#include "sem/Stats.h"

namespace cmm {

/// Emits \p S as a JSON object (all 13 counters) onto \p W.
void writeStatsJson(JsonWriter &W, const Stats &S);

/// Convenience: \p S as a standalone JSON object string.
std::string statsToJson(const Stats &S);

/// Emits \p R (per-pass instrumentation included) as a JSON object.
void writeOptReportJson(JsonWriter &W, const OptReport &R);

/// Emits dispatcher-side walk statistics as a JSON object.
void writeRtStatsJson(JsonWriter &W, const RtStats &S, uint64_t Dispatches);

} // namespace cmm

#endif // CMM_OBS_STATSJSON_H
