//===- obs/Metrics.cpp ----------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "obs/Json.h"

using namespace cmm;

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

uint64_t Histogram::percentile(double P) const {
  uint64_t Mx = max();
  if (P >= 100.0)
    return Mx;
  if (P < 0.0)
    P = 0.0;
  // Total from the buckets themselves, not Count: a racing record() may
  // have bumped one but not yet the other, and the walk must be
  // self-consistent.
  uint64_t Total = 0;
  uint64_t Counts[NumBuckets];
  for (unsigned I = 0; I < NumBuckets; ++I) {
    Counts[I] = Buckets[I].load(std::memory_order_relaxed);
    Total += Counts[I];
  }
  if (Total == 0)
    return 0;
  // Rank of the percentile sample, 1-based: ceil(P/100 * Total), floored
  // at 1 so p0 is the smallest sample.
  uint64_t Rank = uint64_t(P / 100.0 * double(Total) + 0.9999999);
  if (Rank < 1)
    Rank = 1;
  if (Rank > Total)
    Rank = Total;
  uint64_t Seen = 0;
  for (unsigned I = 0; I < NumBuckets; ++I) {
    Seen += Counts[I];
    if (Seen >= Rank) {
      uint64_t V = bucketLowerBound(I);
      uint64_t Mn = min();
      if (V < Mn)
        V = Mn;
      if (Mx != 0 && V > Mx)
        V = Mx;
      return V;
    }
  }
  return Mx;
}

void Histogram::forEachBucket(
    const std::function<void(uint64_t, uint64_t)> &Fn) const {
  for (unsigned I = 0; I < NumBuckets; ++I) {
    uint64_t C = Buckets[I].load(std::memory_order_relaxed);
    if (C != 0)
      Fn(bucketLowerBound(I), C);
  }
}

void Histogram::writeJson(JsonWriter &W) const {
  W.beginObject();
  W.field("count", count());
  W.field("sum", sum());
  W.field("mean", mean());
  W.field("min", min());
  W.field("max", max());
  W.field("p50", percentile(50));
  W.field("p90", percentile(90));
  W.field("p99", percentile(99));
  W.endObject();
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

Counter &MetricsRegistry::counter(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counters.find(Name);
  if (It != Counters.end())
    return *It->second;
  CounterStore.emplace_back();
  Counter *C = &CounterStore.back();
  Counters.emplace(std::string(Name), C);
  return *C;
}

Gauge &MetricsRegistry::gauge(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Gauges.find(Name);
  if (It != Gauges.end())
    return *It->second;
  GaugeStore.emplace_back();
  Gauge *G = &GaugeStore.back();
  Gauges.emplace(std::string(Name), G);
  return *G;
}

Histogram &MetricsRegistry::histogram(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Histograms.find(Name);
  if (It != Histograms.end())
    return *It->second;
  HistogramStore.emplace_back();
  Histogram *H = &HistogramStore.back();
  Histograms.emplace(std::string(Name), H);
  return *H;
}

void MetricsRegistry::probe(std::string_view Name,
                            std::function<uint64_t()> Fn) {
  std::lock_guard<std::mutex> Lock(Mu);
  Probes.insert_or_assign(std::string(Name), std::move(Fn));
}

void MetricsRegistry::writeJson(JsonWriter &W) const {
  std::lock_guard<std::mutex> Lock(Mu);
  W.beginObject();
  W.key("counters");
  W.beginObject();
  // Owned counters and probes render interleaved in one sorted object;
  // both are monotonic counts to a consumer.
  auto CIt = Counters.begin();
  auto PIt = Probes.begin();
  while (CIt != Counters.end() || PIt != Probes.end()) {
    bool TakeCounter =
        PIt == Probes.end() ||
        (CIt != Counters.end() && CIt->first < PIt->first);
    if (TakeCounter) {
      W.field(CIt->first, CIt->second->value());
      ++CIt;
    } else {
      W.field(PIt->first, PIt->second());
      ++PIt;
    }
  }
  W.endObject();
  W.key("gauges");
  W.beginObject();
  for (const auto &[Name, G] : Gauges)
    W.field(Name, int64_t(G->value()));
  W.endObject();
  W.key("histograms");
  W.beginObject();
  for (const auto &[Name, H] : Histograms) {
    W.key(Name);
    H->writeJson(W);
  }
  W.endObject();
  W.endObject();
}

std::string MetricsRegistry::json() const {
  JsonWriter W;
  writeJson(W);
  return W.take();
}

MetricsRegistry &MetricsRegistry::null() {
  static MetricsRegistry R;
  return R;
}

//===----------------------------------------------------------------------===//
// MetricsExporter
//===----------------------------------------------------------------------===//

MetricsExporter::MetricsExporter(const MetricsRegistry &Reg, std::ostream &OS,
                                 double IntervalMillis)
    : Reg(Reg), OS(OS),
      IntervalMillis(IntervalMillis > 0 ? IntervalMillis : 1000),
      Epoch(std::chrono::steady_clock::now()),
      Thread([this] { loop(); }) {}

MetricsExporter::~MetricsExporter() { stop(); }

void MetricsExporter::writeSnapshot() {
  double TMs = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - Epoch)
                   .count();
  JsonWriter W;
  W.beginObject();
  W.field("t_ms", TMs);
  W.field("seq", Written.load(std::memory_order_relaxed));
  W.key("metrics");
  Reg.writeJson(W);
  W.endObject();
  OS << W.str() << '\n';
  Written.fetch_add(1, std::memory_order_relaxed);
}

void MetricsExporter::loop() {
  std::unique_lock<std::mutex> Lock(Mu);
  for (;;) {
    Cv.wait_for(Lock,
                std::chrono::duration<double, std::milli>(IntervalMillis),
                [this] { return Stopping; });
    if (Stopping)
      return; // stop() writes the final snapshot after the join
    writeSnapshot();
  }
}

void MetricsExporter::stop() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Stopped) {
      // Already stopped; nothing left to join or write.
      return;
    }
    Stopping = true;
  }
  Cv.notify_all();
  if (Thread.joinable())
    Thread.join();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Stopped)
      return;
    Stopped = true;
  }
  writeSnapshot();
  OS.flush();
}
