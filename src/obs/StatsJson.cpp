//===- obs/StatsJson.cpp --------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "obs/StatsJson.h"

using namespace cmm;

void cmm::writeStatsJson(JsonWriter &W, const Stats &S) {
  W.beginObject();
  W.field("steps", S.Steps);
  W.field("calls", S.Calls);
  W.field("jumps", S.Jumps);
  W.field("returns", S.Returns);
  W.field("cuts", S.Cuts);
  W.field("frames_cut_over", S.FramesCutOver);
  W.field("yields", S.Yields);
  W.field("unwind_pops", S.UnwindPops);
  W.field("conts_bound", S.ContsBound);
  W.field("loads", S.Loads);
  W.field("stores", S.Stores);
  W.field("callee_save_moves", S.CalleeSaveMoves);
  W.field("max_stack_depth", S.MaxStackDepth);
  W.endObject();
}

std::string cmm::statsToJson(const Stats &S) {
  JsonWriter W;
  writeStatsJson(W, S);
  return W.take();
}

void cmm::writeOptReportJson(JsonWriter &W, const OptReport &R) {
  W.beginObject();
  W.key("passes");
  W.beginArray();
  for (size_t I = 0; I < NumPassIds; ++I) {
    const PassStat &S = R.Passes[I];
    W.beginObject();
    W.field("pass", passName(static_cast<PassId>(I)));
    W.field("runs", S.Runs);
    W.field("millis", S.Millis);
    W.field("changes", S.Changes);
    W.field("nodes_delta", S.NodesDelta);
    W.field("also_edges_delta", S.AlsoEdgesDelta);
    W.endObject();
  }
  W.endArray();
  W.field("total_millis", R.TotalMillis);
  W.key("rewrites");
  W.beginObject();
  W.field("constprop_exprs", uint64_t(R.ConstProp.ExprsRewritten));
  W.field("constprop_branches", uint64_t(R.ConstProp.BranchesResolved));
  W.field("copyprop_uses", uint64_t(R.CopyProp.UsesRewritten));
  W.field("deadcode_assigns", uint64_t(R.DeadCode.AssignsRemoved));
  W.field("calleesaves_calls_annotated",
          uint64_t(R.CalleeSaves.CallsAnnotated));
  W.field("calleesaves_vars_placed", uint64_t(R.CalleeSaves.VarsPlaced));
  W.field("calleesaves_vars_excluded_by_cut_edges",
          uint64_t(R.CalleeSaves.VarsExcludedByCutEdges));
  W.field("calleesaves_vars_spilled_for_pressure",
          uint64_t(R.CalleeSaves.VarsSpilledForPressure));
  W.endObject();
  W.endObject();
}

void cmm::writeRtStatsJson(JsonWriter &W, const RtStats &S,
                           uint64_t Dispatches) {
  W.beginObject();
  W.field("dispatches", Dispatches);
  W.field("activations_visited", S.ActivationsVisited);
  W.field("descriptor_reads", S.DescriptorReads);
  W.field("resumes", S.Resumes);
  W.endObject();
}
