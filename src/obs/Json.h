//===- obs/Json.h - Minimal JSON emission -----------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny append-only JSON writer shared by the trace sinks, the profiler,
/// the stats writers and the benchmark reporters. No parsing, no DOM, no
/// allocation beyond the output string; enough structure that every emitter
/// in the repo produces syntactically valid JSON the same way.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_OBS_JSON_H
#define CMM_OBS_JSON_H

#include <cstdint>
#include <string>
#include <string_view>

namespace cmm {

/// Escapes \p S for inclusion inside a JSON string literal (quotes not
/// included).
std::string jsonEscape(std::string_view S);

/// Streaming writer for one JSON value. Keys and values must be emitted in
/// a legal order (object -> key -> value ...); commas are inserted
/// automatically. The writer never fails: misuse shows up as malformed
/// output, which the golden-file tests catch.
class JsonWriter {
public:
  void beginObject() { open('{'); }
  void endObject() { close('}'); }
  void beginArray() { open('['); }
  void endArray() { close(']'); }

  JsonWriter &key(std::string_view K) {
    comma();
    Out += '"';
    Out += jsonEscape(K);
    Out += "\":";
    JustWroteKey = true;
    return *this;
  }

  JsonWriter &value(std::string_view S) {
    comma();
    Out += '"';
    Out += jsonEscape(S);
    Out += '"';
    return *this;
  }
  JsonWriter &value(const char *S) { return value(std::string_view(S)); }
  JsonWriter &value(uint64_t V) {
    comma();
    Out += std::to_string(V);
    return *this;
  }
  JsonWriter &value(int64_t V) {
    comma();
    Out += std::to_string(V);
    return *this;
  }
  JsonWriter &value(unsigned V) { return value(uint64_t(V)); }
  JsonWriter &value(int V) { return value(int64_t(V)); }
  JsonWriter &value(double V);
  JsonWriter &value(bool V) {
    comma();
    Out += V ? "true" : "false";
    return *this;
  }

  /// key(K) followed by value(V), for the common case.
  template <typename T> JsonWriter &field(std::string_view K, T V) {
    key(K);
    return value(V);
  }

  const std::string &str() const { return Out; }
  std::string take() { return std::move(Out); }

private:
  void open(char C) {
    comma();
    Out += C;
    NeedComma = false;
  }
  void close(char C) {
    Out += C;
    NeedComma = true;
    JustWroteKey = false;
  }
  void comma() {
    if (JustWroteKey) {
      JustWroteKey = false;
      return;
    }
    if (NeedComma)
      Out += ',';
    NeedComma = true;
  }

  std::string Out;
  bool NeedComma = false;
  bool JustWroteKey = false;
};

} // namespace cmm

#endif // CMM_OBS_JSON_H
