//===- costmodel/CallSiteModel.cpp ----------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "costmodel/CallSiteModel.h"

#include "support/Assert.h"

using namespace cmm;

CallSiteCost cmm::callSiteCost(ReturnScheme Scheme, unsigned NumAltConts,
                               unsigned AltIndex) {
  CallSiteCost C;
  switch (Scheme) {
  case ReturnScheme::Standard:
    // Figure 3: call + delay slot; jmp %i7+8 to return.
    C.Words = 2;
    C.NormalReturnExtra = 0;
    C.AbnormalReturnExtra = 0; // no abnormal returns possible
    return C;
  case ReturnScheme::BranchTable:
    // Figure 4: call + delay slot + one "ba,a k_i" per alternate
    // continuation. Normal return jumps past the table — no dynamic
    // overhead; an abnormal return executes exactly one extra branch (the
    // table entry), regardless of which continuation is chosen.
    C.Words = 2 + NumAltConts;
    C.NormalReturnExtra = 0;
    C.AbnormalReturnExtra = NumAltConts == 0 ? 0 : 1;
    return C;
  case ReturnScheme::TestAndBranch:
    // The rejected alternative: the callee returns a selector value; the
    // caller compares and conditionally branches, once per alternate
    // continuation in the worst case. The test runs on *every* return.
    C.Words = 2 + 2 * NumAltConts; // one compare + one branch per alternate
    C.NormalReturnExtra = NumAltConts == 0 ? 0 : 2 * NumAltConts;
    C.AbnormalReturnExtra = 2 * (AltIndex + 1);
    return C;
  }
  cmm_unreachable("unknown return scheme");
}

ProgramCallCost cmm::programCallCost(ReturnScheme Scheme, uint64_t CallSites,
                                     unsigned NumAltConts,
                                     uint64_t NormalReturns,
                                     uint64_t AbnormalReturns) {
  ProgramCallCost P;
  CallSiteCost C = callSiteCost(Scheme, NumAltConts, NumAltConts ? NumAltConts / 2 : 0);
  P.SpaceWords = CallSites * C.Words;
  P.ExtraInstructions = NormalReturns * C.NormalReturnExtra +
                        AbnormalReturns * C.AbnormalReturnExtra;
  return P;
}
