//===- costmodel/DiffHarness.h - Differential testing -----------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential oracle behind the `cmmdiff` tool and the `diff_tests`
/// suite. One seed is rendered under every dispatch strategy
/// (RandomProgram.h) and compiled under every optimizer configuration; the
/// paper's central claim — one IR, four exception implementations, one
/// optimizer — predicts that every (strategy, configuration) cell computes
/// the same answer. The harness checks:
///
///  - cross-strategy agreement of the unoptimized renderings (final values,
///    goes-wrong outcomes with matching reasons);
///  - per-strategy agreement of every optimizer configuration with that
///    strategy's unoptimized reference (when the reference halts; a program
///    that goes wrong has unspecified behaviour, so the optimizer owes it
///    nothing);
///  - Machine::stats() invariants that characterize each technique (e.g.
///    the compiled-unwinding rendering must never yield or cut);
///  - structural IR validity after every single pass execution;
///  - the printer round trip (print . parse . print is a fixed point), so
///    every reproducer the minimizer writes is guaranteed loadable;
///  - the artifact serialization round trip (ir/Serialize.h, ir/IlText.h):
///    the canonical binary encoding must be a fixed point of
///    serialize . deserialize and the textual IL a fixed point of
///    print . parse, so every program the persistent cache stores is
///    guaranteed to read back as the identical program.
///
/// The `also`-edges-dropped ablation is part of the matrix and MUST diverge
/// on some seeds (Table 3); its divergences are recorded as Expected and
/// never fail a run.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_COSTMODEL_DIFFHARNESS_H
#define CMM_COSTMODEL_DIFFHARNESS_H

#include "costmodel/RandomProgram.h"
#include "opt/PassManager.h"
#include "sem/Machine.h"

#include <optional>
#include <string>
#include <vector>

namespace cmm::engine {
class Engine;
} // namespace cmm::engine

namespace cmm {

/// One optimizer configuration of the differential matrix.
struct DiffOptConfig {
  std::string Name;
  /// False for the unoptimized reference cell.
  bool Optimize = false;
  OptOptions Opts;
  /// True for the Table 3 ablation: its divergences are expected and do
  /// not fail the run — in fact the harness *wants* to see them.
  bool ExpectDivergence = false;
};

/// The matrix columns: unoptimized reference, each scalar pass alone,
/// callee-saves alone, the full pipeline, and the full pipeline without
/// `also` edges (the ablation).
std::vector<DiffOptConfig> diffOptConfigs();

/// Observed outcome of running one rendering of one seed on one input.
struct DiffOutcome {
  MachineStatus Status = MachineStatus::Idle;
  std::vector<Value> Results; ///< the argument area after Halted
  std::string WrongReason;    ///< after Wrong (no source location)
  Stats MachineStats;

  bool comparable(const DiffOutcome &O) const;
  std::string str() const;
};

/// One disagreement found while checking a seed.
struct DiffDivergence {
  uint64_t Seed = 0;
  DispatchTechnique Strategy = DispatchTechnique::CutGenerated;
  std::string Config; ///< optimizer configuration, or a check label
  bool Expected = false;
  std::string Detail;

  std::string str() const;
};

/// Harness parameters. Gen.Strategy is ignored — the harness renders every
/// strategy itself.
struct DiffOptions {
  RandomProgramOptions Gen;
  /// main(x) inputs tried per rendering.
  std::vector<uint64_t> Inputs = {0, 1, 3, 7, 12, 100};
  /// Step budget per resume segment; generated programs are loop-bounded
  /// and finish far below this, so hitting it marks the seed inconclusive
  /// rather than divergent.
  uint64_t MaxSteps = 2000000;
  bool CheckStats = true;
  bool CheckRoundTrip = true;
  /// Check the artifact serialization oracles on compiled cells: binary
  /// serialize-deserialize-serialize must be byte-identical and the textual
  /// IL print-parse-print a fixed point. Bounded to the unoptimized
  /// reference and full-pipeline configurations of each strategy.
  bool CheckSerialize = true;
  /// Run every cell on the bytecode VM and the threaded tier as well and
  /// require the full observable outcome — status, results, goes-wrong
  /// reason, and every Stats counter — to match the tree walker's.
  bool CheckVm = true;
  /// Scheduled-vs-direct dimension: render each strategy's computation a
  /// second time wrapped for the green-threads scheduler
  /// (RandomProgramOptions::Scheduled) and run it as a one-thread schedule
  /// on a single driver. The schedule's status, results, and goes-wrong
  /// reason must match the direct unoptimized reference run; machine
  /// counters are excluded (the spawn/join wrapper adds steps and yields
  /// by design). Bounded to the unoptimized configuration.
  bool CheckScheduled = false;
  /// When set, (strategy, configuration) cells compile through this
  /// engine's content-hash artifact cache — one IR (and one bytecode)
  /// compile per cell, shared across inputs, backends, and any other
  /// thread sweeping the same corpus. Null compiles each cell uncached.
  engine::Engine *Eng = nullptr;
};

/// Everything the harness learned about one seed.
struct DiffSeedResult {
  uint64_t Seed = 0;
  unsigned RunsExecuted = 0;
  std::vector<DiffDivergence> Divergences; ///< expected and unexpected

  bool hasUnexpected() const;
  /// The ablation produced at least one (expected) divergence.
  bool ablationDiverged() const;
};

/// Runs the full strategy x configuration x input matrix for one seed.
DiffSeedResult diffTestSeed(uint64_t Seed, const DiffOptions &Opts = {});

/// A shrunk failing case, ready to check in under tests/.
struct DiffRepro {
  uint64_t Seed = 0;
  RandomProgramOptions Gen; ///< minimized generator options
  DispatchTechnique Strategy = DispatchTechnique::CutGenerated;
  std::string Config;
  std::string Detail;
  /// The reproducer: a header comment recording seed, options and the
  /// divergence, followed by the rendered C-- module.
  std::string Source;
};

/// Greedy options-space minimizer: shrinks the generator parameters while
/// the seed keeps diverging (matching the unexpected/expected class of the
/// original divergence), then renders the smallest still-failing program.
/// Returns nullopt when the seed does not diverge at all.
std::optional<DiffRepro> minimizeDivergence(uint64_t Seed,
                                            const DiffOptions &Opts = {});

} // namespace cmm

#endif // CMM_COSTMODEL_DIFFHARNESS_H
