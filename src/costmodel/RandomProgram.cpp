//===- costmodel/RandomProgram.cpp ----------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
// Two phases keep the five renderings of one seed equivalent:
//
//  1. The *shape* phase makes every random draw (expressions, statement
//     scripts, raise sites, handler constants) without ever consulting the
//     strategy, and stores the results as strategy-independent C-- text
//     fragments over the shared variable pool {x, a, b, c, d}.
//
//  2. The *emit* phase renders the shape under one strategy, adding only
//     fixed scaffolding text (handler-stack pushes, yields, abnormal
//     returns, descriptors, or CPS closures). No emit-phase decision
//     consumes randomness, so the computation the handler and the normal
//     path observe is bit-identical across strategies.
//
//===----------------------------------------------------------------------===//

#include "costmodel/RandomProgram.h"

#include "rts/ExnFormat.h"
#include "rts/SchedFormat.h"
#include "support/Assert.h"
#include "support/Rng.h"

#include <vector>

using namespace cmm;

namespace {

/// One statement rendered as indent-relative lines, usable verbatim in any
/// strategy (and, for CPS, in the continuation procedure that holds the
/// post-call half of a frame).
struct TextBlock {
  std::vector<std::pair<unsigned, std::string>> Lines;

  void line(unsigned Indent, std::string Text) {
    Lines.emplace_back(Indent, std::move(Text));
  }
};

/// The strategy-independent description of one chain procedure.
struct ProcShape {
  bool IsLeaf = false;
  bool HasHandler = false;
  std::string InitA, InitB, InitC, InitD; ///< right-hand sides
  TextBlock Pre;                          ///< statements before the call
  // Leaf only.
  bool MayRaise = false;
  std::string RaiseCond;
  unsigned RaiseTag = RandomRaiseTagBase;
  std::string RaisePayload;
  std::string LeafRet;
  // Non-leaf only.
  std::string CallArg;
  TextBlock Post; ///< statements between the call and the return
  std::string RetExpr;
  unsigned HandlerConst = 0;
};

struct ProgramShape {
  std::vector<ProcShape> Procs;
};

//===----------------------------------------------------------------------===//
// Shape phase: all randomness lives here
//===----------------------------------------------------------------------===//

class ShapeBuilder {
public:
  ShapeBuilder(uint64_t Seed, const RandomProgramOptions &Opts)
      : R(Seed), Opts(Opts) {}

  ProgramShape run() {
    ProgramShape S;
    for (unsigned I = 0; I < Opts.NumProcs; ++I)
      S.Procs.push_back(proc(I));
    return S;
  }

private:
  std::string var() {
    static const char *Pool[] = {"x", "a", "b", "c", "d"};
    return Pool[R.below(5)];
  }

  /// A variable safe to assign inside a bounded loop body (never the loop
  /// counter c: a loop body that reassigns c could run for billions of
  /// iterations, and the strategies would then disagree on whether the
  /// step budget expires before the program halts).
  std::string loopBodyVar() {
    static const char *Pool[] = {"x", "a", "b", "d"};
    return Pool[R.below(4)];
  }

  std::string expr(unsigned Depth) {
    if (Depth == 0 || R.chance(2, 5)) {
      if (R.chance(2, 5))
        return std::to_string(R.below(10));
      return var();
    }
    if (Opts.UsePrims && R.chance(1, 6))
      return primExpr(Depth);
    static const char *Ops[] = {"+", "-", "*", "&", "|", "^"};
    return "(" + expr(Depth - 1) + " " + Ops[R.below(6)] + " " +
           expr(Depth - 1) + ")";
  }

  /// A primitive-operation expression that provably cannot fail: the
  /// division family gets a divisor forced odd (hence nonzero).
  std::string primExpr(unsigned Depth) {
    switch (R.below(7)) {
    case 0:
      return "%divu(" + expr(Depth - 1) + ", (" + expr(Depth - 1) + ") | 1)";
    case 1:
      return "%modu(" + expr(Depth - 1) + ", (" + expr(Depth - 1) + ") | 1)";
    case 2:
      return "%shra(" + expr(Depth - 1) + ", " + std::to_string(R.below(40)) +
             ")";
    case 3:
      return "%ltu(" + expr(Depth - 1) + ", " + expr(Depth - 1) + ")";
    case 4:
      return "%geu(" + expr(Depth - 1) + ", " + expr(Depth - 1) + ")";
    case 5:
      // Widen, combine at 64 bits, narrow back: exercises the width
      // conversions without leaving the bits32 variable pool.
      return "%lo32(%zx64(" + expr(Depth - 1) + ") + %sx64(" +
             expr(Depth - 1) + "))";
    default:
      return "%leu(" + expr(Depth - 1) + ", " + expr(Depth - 1) + ")";
    }
  }

  std::string cond() {
    static const char *Cmps[] = {"<", "<=", ">", ">=", "==", "!="};
    return "(" + expr(1) + ") " + Cmps[R.below(6)] + " (" + expr(1) + ")";
  }

  void assigns(TextBlock &B, unsigned Count) {
    for (unsigned I = 0; I < Count; ++I) {
      if (Opts.WrongChancePct != 0 && R.chance(Opts.WrongChancePct, 100)) {
        // Fast-path division with a free divisor: for inputs where the
        // divisor is zero the program goes wrong, and it must go wrong
        // identically under every strategy and stay wrong (or better) under
        // every optimization level.
        const char *Op = R.chance(1, 2) ? "%divu" : "%mods";
        B.line(0, var() + " = " + std::string(Op) + "(" + expr(1) + ", " +
                      expr(1) + ");");
        continue;
      }
      if (Opts.UseCheckedDiv && R.chance(1, 6)) {
        // The slow-but-solid library procedure; the divisor is forced odd
        // so its yield path never triggers and the call returns normally
        // under every strategy.
        const char *Op = R.chance(1, 2) ? "%%divu" : "%%modu";
        B.line(0, var() + " = " + std::string(Op) + "(" + expr(1) + ", (" +
                      expr(1) + ") | 1) also aborts;");
        continue;
      }
      if (R.chance(1, 5)) {
        // A bounded loop: c = k; L: if c > 0 { ...; c = c - 1; goto L; }
        std::string Label = "loop" + std::to_string(NextLabel++);
        B.line(0, "c = " + std::to_string(2 + R.below(4)) + ";");
        B.line(0, Label + ":");
        B.line(0, "if (c) > (0) {");
        B.line(1, loopBodyVar() + " = " + expr(2) + ";");
        B.line(1, "c = c - 1;");
        B.line(1, "goto " + Label + ";");
        B.line(0, "}");
        continue;
      }
      if (R.chance(1, 4)) {
        B.line(0, "if " + cond() + " {");
        B.line(1, var() + " = " + expr(2) + ";");
        B.line(0, "} else {");
        B.line(1, var() + " = " + expr(2) + ";");
        B.line(0, "}");
        continue;
      }
      B.line(0, var() + " = " + expr(2) + ";");
    }
  }

  ProcShape proc(unsigned I) {
    ProcShape P;
    P.IsLeaf = I + 1 == Opts.NumProcs;
    // The outermost procedure always installs a handler so a raising leaf
    // always has a live target.
    P.HasHandler = !P.IsLeaf && Opts.UseHandlers && (I == 0 || R.chance(1, 2));
    P.InitA = "x + " + std::to_string(R.below(5));
    P.InitB = "x * " + std::to_string(1 + R.below(4));
    P.InitC = "(x ^ " + std::to_string(R.below(9)) + ") & 7";
    P.InitD = "x - " + std::to_string(R.below(6));
    assigns(P.Pre, Opts.StmtsPerBlock);
    if (P.IsLeaf) {
      P.MayRaise = Opts.UseHandlers && R.chance(Opts.RaiseChancePct, 100);
      P.RaiseCond = "((" + expr(1) + ") & 3) == (0)";
      P.RaiseTag = RandomRaiseTagBase +
                   static_cast<unsigned>(R.below(RandomRaiseTagCount));
      P.RaisePayload = expr(1);
      P.LeafRet = expr(2);
      return P;
    }
    P.CallArg = expr(1);
    assigns(P.Post, Opts.StmtsPerBlock / 2 + 1);
    P.RetExpr = expr(2);
    P.HandlerConst = static_cast<unsigned>(R.below(100));
    return P;
  }

  Rng R;
  const RandomProgramOptions &Opts;
  unsigned NextLabel = 0;
};

//===----------------------------------------------------------------------===//
// Emit phase: fixed scaffolding per strategy
//===----------------------------------------------------------------------===//

class Emitter {
public:
  Emitter(const ProgramShape &S, const RandomProgramOptions &Opts)
      : S(S), Opts(Opts), T(Opts.Strategy) {}

  std::string run();

private:
  void line(const std::string &Text) {
    Out.append(Indent * 2, ' ');
    Out += Text;
    Out += '\n';
  }

  void block(const TextBlock &B, unsigned Base) {
    for (const auto &[Rel, Text] : B.Lines) {
      Out.append((Base + Rel) * 2, ' ');
      Out += Text;
      Out += '\n';
    }
  }

  bool isCutStrategy() const {
    return T == DispatchTechnique::CutGenerated ||
           T == DispatchTechnique::CutRuntime;
  }

  std::string normalReturn(const std::string &E) const {
    // Under the abnormal-returns rendering every chain procedure returns
    // through a 1-alternate bundle; index 1 is the normal return.
    if (T == DispatchTechnique::UnwindGenerated && Opts.UseHandlers)
      return "return <1/1> (" + E + ");";
    return "return (" + E + ");";
  }

  void header();
  void directProc(unsigned I);
  void cpsProc(unsigned I);
  void mainProc();

  const ProgramShape &S;
  const RandomProgramOptions &Opts;
  DispatchTechnique T;
  std::string Out;
  unsigned Indent = 0;
};

void Emitter::header() {
  line("export main;");
  switch (T) {
  case DispatchTechnique::CutGenerated:
  case DispatchTechnique::CutRuntime:
    line("global bits32 exn_top;");
    line("data exn_stack { bits32[64]; }");
    break;
  case DispatchTechnique::UnwindRuntime: {
    // One shared descriptor: every handler scope handles every tag the
    // leaf can raise, mapping tag base+i to the i'th `also unwinds to`
    // continuation (which re-materializes the tag statically).
    std::vector<ExnHandler> Handlers;
    for (unsigned I = 0; I < RandomRaiseTagCount; ++I)
      Handlers.push_back({RandomRaiseTagBase + I, I, /*TakesArg=*/true});
    Out += emitExnDescriptor("desc_all", Handlers);
    break;
  }
  case DispatchTechnique::Cps:
    line("global bits32 hp;");
    line("data cps_frames { bits32[2048]; }");
    break;
  case DispatchTechnique::UnwindGenerated:
    break;
  }
}

/// Renders chain procedure \p I for the four non-CPS strategies.
void Emitter::directProc(unsigned I) {
  const ProcShape &P = S.Procs[I];
  line("f" + std::to_string(I) + "(bits32 x) {");
  ++Indent;
  // Initialize the whole variable pool before any random statement so the
  // generated program never reads an unbound variable (which would go
  // wrong, and optimizing a wrong program is not required to preserve its
  // behaviour).
  line("bits32 a, b, c, d, t, u, kv, r;");
  line("a = " + P.InitA + ";");
  line("b = " + P.InitB + ";");
  line("c = " + P.InitC + ";");
  line("d = " + P.InitD + ";");
  block(P.Pre, Indent);

  if (P.IsLeaf) {
    if (P.MayRaise) {
      std::string Tag = std::to_string(P.RaiseTag);
      line("if " + P.RaiseCond + " {");
      ++Indent;
      switch (T) {
      case DispatchTechnique::CutGenerated:
        line("kv = bits32[exn_top];");
        line("exn_top = exn_top - 4;");
        line("cut to kv(" + Tag + ", " + P.RaisePayload + ");");
        break;
      case DispatchTechnique::CutRuntime:
      case DispatchTechnique::UnwindRuntime:
        line("yield(" + Tag + ", " + P.RaisePayload + ") also aborts;");
        break;
      case DispatchTechnique::UnwindGenerated:
        line("return <0/1> (" + Tag + ", " + P.RaisePayload + ");");
        break;
      case DispatchTechnique::Cps:
        cmm_unreachable("CPS renders through cpsProc");
      }
      --Indent;
      line("}");
    }
    line(normalReturn(P.LeafRet));
    --Indent;
    line("}");
    return;
  }

  std::string Call = "f" + std::to_string(I + 1) + "(" + P.CallArg + ")";
  if (!Opts.UseHandlers) {
    line("r = " + Call + ";");
  } else if (isCutStrategy()) {
    if (P.HasHandler) {
      line("exn_top = exn_top + 4;");
      line("bits32[exn_top] = k;");
      line("r = " + Call + " also cuts to k also aborts;");
      line("exn_top = exn_top - 4;");
    } else {
      line("r = " + Call + " also aborts;");
    }
  } else if (T == DispatchTechnique::UnwindGenerated) {
    // Every frame participates in the branch-table method: non-handler
    // frames propagate the abnormal return, handler frames intercept it.
    line("r = " + Call + " also returns to k;");
  } else { // UnwindRuntime
    if (P.HasHandler)
      line("r = " + Call +
           " also unwinds to h0, h1, h2 also aborts descriptors desc_all;");
    else
      line("r = " + Call + " also aborts;");
  }
  block(P.Post, Indent);
  line(normalReturn("(r + " + P.RetExpr + ") ^ b"));

  // The handler mentions values computed before the call — the shape that
  // makes naive callee-saves placement and dead-code elimination unsound.
  std::string HandlerBody1 = "d = ((a + b) ^ t) + (u * 3);";
  std::string HandlerRet = normalReturn("d + " + std::to_string(P.HandlerConst));
  if (Opts.UseHandlers && isCutStrategy() && P.HasHandler) {
    line("continuation k(t, u):");
    ++Indent;
    line(HandlerBody1);
    line(HandlerRet);
    --Indent;
  } else if (T == DispatchTechnique::UnwindGenerated && Opts.UseHandlers) {
    line("continuation k(t, u):");
    ++Indent;
    if (P.HasHandler) {
      line(HandlerBody1);
      line(HandlerRet);
    } else {
      line("return <0/1> (t, u);");
    }
    --Indent;
  } else if (T == DispatchTechnique::UnwindRuntime && P.HasHandler) {
    // The dispatcher delivers only the payload; each continuation knows
    // its exception statically (Figure 9) and re-materializes the tag.
    std::string Join = "hjoin" + std::to_string(I);
    line(Join + ":");
    ++Indent;
    line(HandlerBody1);
    line(HandlerRet);
    --Indent;
    for (unsigned K = 0; K < RandomRaiseTagCount; ++K) {
      line("continuation h" + std::to_string(K) + "(u):");
      ++Indent;
      line("t = " + std::to_string(RandomRaiseTagBase + K) + ";");
      line("goto " + Join + ";");
      --Indent;
    }
  }
  --Indent;
  line("}");
}

/// Renders chain procedure \p I under CPS: the frame splits into the
/// pre-call procedure (jumped into), a success-continuation procedure
/// holding the post-call half, and optionally a handler procedure; live
/// variables travel through explicit heap closures.
void Emitter::cpsProc(unsigned I) {
  const ProcShape &P = S.Procs[I];
  std::string Name = "f" + std::to_string(I);
  line(Name + "(bits32 x, bits32 kcode, bits32 kenv, bits32 hcode, "
              "bits32 henv) {");
  ++Indent;
  line("bits32 a, b, c, d, t, u, kv, r, fr, hv;");
  line("a = " + P.InitA + ";");
  line("b = " + P.InitB + ";");
  line("c = " + P.InitC + ";");
  line("d = " + P.InitD + ";");
  block(P.Pre, Indent);

  if (P.IsLeaf) {
    if (P.MayRaise) {
      line("if " + P.RaiseCond + " {");
      ++Indent;
      line("jump hcode(henv, " + std::to_string(P.RaiseTag) + ", " +
           P.RaisePayload + ");");
      --Indent;
      line("}");
    }
    line("jump kcode(kenv, " + P.LeafRet + ");");
    --Indent;
    line("}");
    return;
  }

  // Success closure: the whole variable pool plus the caller continuation.
  line("fr = hp;");
  line("hp = hp + 28;");
  line("bits32[fr] = x;");
  line("bits32[fr + 4] = a;");
  line("bits32[fr + 8] = b;");
  line("bits32[fr + 12] = c;");
  line("bits32[fr + 16] = d;");
  line("bits32[fr + 20] = kcode;");
  line("bits32[fr + 24] = kenv;");
  std::string Callee = "f" + std::to_string(I + 1);
  if (P.HasHandler) {
    line("hv = hp;");
    line("hp = hp + 16;");
    line("bits32[hv] = a;");
    line("bits32[hv + 4] = b;");
    line("bits32[hv + 8] = kcode;");
    line("bits32[hv + 12] = kenv;");
    line("jump " + Callee + "(" + P.CallArg + ", " + Name + "_k, fr, " +
         Name + "_h, hv);");
  } else {
    line("jump " + Callee + "(" + P.CallArg + ", " + Name +
         "_k, fr, hcode, henv);");
  }
  --Indent;
  line("}");

  line(Name + "_k(bits32 env, bits32 r) {");
  ++Indent;
  line("bits32 x, a, b, c, d, t, u, kv, kcode, kenv;");
  line("x = bits32[env];");
  line("a = bits32[env + 4];");
  line("b = bits32[env + 8];");
  line("c = bits32[env + 12];");
  line("d = bits32[env + 16];");
  line("kcode = bits32[env + 20];");
  line("kenv = bits32[env + 24];");
  block(P.Post, Indent);
  line("jump kcode(kenv, (r + " + P.RetExpr + ") ^ b);");
  --Indent;
  line("}");

  if (P.HasHandler) {
    line(Name + "_h(bits32 env, bits32 t, bits32 u) {");
    ++Indent;
    line("bits32 a, b, d, kcode, kenv;");
    line("a = bits32[env];");
    line("b = bits32[env + 4];");
    line("kcode = bits32[env + 8];");
    line("kenv = bits32[env + 12];");
    line("d = ((a + b) ^ t) + (u * 3);");
    line("jump kcode(kenv, d + " + std::to_string(P.HandlerConst) + ");");
    --Indent;
    line("}");
  }
}

void Emitter::mainProc() {
  // Under the scheduled rendering the computation itself is `sched_body`;
  // the real main (schedMain) spawns it as a green thread and joins.
  line(std::string(Opts.Scheduled ? "sched_body" : "main") + "(bits32 x) {");
  ++Indent;
  line("bits32 r, t, u;");
  switch (T) {
  case DispatchTechnique::CutGenerated:
  case DispatchTechnique::CutRuntime:
    line("exn_top = exn_stack;");
    line("r = f0(x);");
    break;
  case DispatchTechnique::UnwindGenerated:
    if (Opts.UseHandlers) {
      // f0 returns through a 1-alternate bundle; the alternate is a
      // sentinel that is unreachable because f0 always installs a handler.
      line("r = f0(x) also returns to ks;");
    } else {
      line("r = f0(x);");
    }
    break;
  case DispatchTechnique::UnwindRuntime:
    line("r = f0(x);");
    break;
  case DispatchTechnique::Cps:
    line("hp = cps_frames;");
    line("r = f0(x, cps_done, 0, cps_trap, 0);");
    break;
  }
  line("return (r);");
  if (T == DispatchTechnique::UnwindGenerated && Opts.UseHandlers) {
    line("continuation ks(t, u):");
    ++Indent;
    line("return (424242);");
    --Indent;
  }
  --Indent;
  line("}");

  if (T == DispatchTechnique::Cps) {
    line("cps_done(bits32 env, bits32 v) {");
    ++Indent;
    line("return (v);");
    --Indent;
    line("}");
    // The top-level exception continuation: unreachable because f0 always
    // installs a handler, and loudly visible as a divergence if it is not.
    line("cps_trap(bits32 env, bits32 t, bits32 u) {");
    ++Indent;
    line("return (40404040 + t + u);");
    --Indent;
    line("}");
  }

  if (Opts.Scheduled) {
    // The scheduled entry: run the whole computation in a green thread of
    // its own (fresh stack, fresh memory image) and return what join
    // observes. Any per-strategy global initialization (exn_top, hp)
    // happens inside sched_body, in the spawned thread's own memory.
    line("main(bits32 x) {");
    ++Indent;
    line("bits32 t, r;");
    line("t = yield(" + schedTagLiteral(SchedTagSpawn) + ", sched_body, x);");
    line("r = yield(" + schedTagLiteral(SchedTagJoin) + ", t);");
    line("return (r);");
    --Indent;
    line("}");
  }
}

std::string Emitter::run() {
  header();
  for (unsigned I = 0; I < S.Procs.size(); ++I) {
    if (T == DispatchTechnique::Cps)
      cpsProc(I);
    else
      directProc(I);
  }
  mainProc();
  return std::move(Out);
}

} // namespace

std::string cmm::generateRandomProgram(uint64_t Seed,
                                       const RandomProgramOptions &Opts) {
  assert(Opts.NumProcs >= 2 && "call chain needs at least two procedures");
  (void)Opts;
  ProgramShape Shape = ShapeBuilder(Seed, Opts).run();
  return Emitter(Shape, Opts).run();
}
