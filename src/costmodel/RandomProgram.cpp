//===- costmodel/RandomProgram.cpp ----------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "costmodel/RandomProgram.h"

#include "support/Rng.h"

#include <vector>

using namespace cmm;

namespace {

class Generator {
public:
  Generator(uint64_t Seed, const RandomProgramOptions &Opts)
      : R(Seed), Opts(Opts) {}

  std::string run();

private:
  std::string var() {
    static const char *Pool[] = {"x", "a", "b", "c", "d"};
    return Pool[R.below(5)];
  }

  std::string expr(unsigned Depth) {
    if (Depth == 0 || R.chance(2, 5)) {
      if (R.chance(2, 5))
        return std::to_string(R.below(10));
      return var();
    }
    static const char *Ops[] = {"+", "-", "*", "&", "|", "^"};
    return "(" + expr(Depth - 1) + " " + Ops[R.below(6)] + " " +
           expr(Depth - 1) + ")";
  }

  std::string cond() {
    static const char *Cmps[] = {"<", "<=", ">", ">=", "==", "!="};
    return "(" + expr(1) + ") " + Cmps[R.below(6)] + " (" + expr(1) + ")";
  }

  void line(const std::string &Text) {
    Out.append(Indent * 2, ' ');
    Out += Text;
    Out += '\n';
  }

  void assigns(unsigned Count) {
    for (unsigned I = 0; I < Count; ++I) {
      if (R.chance(1, 5)) {
        // A bounded loop: c = k; L: if c > 0 { ...; c = c - 1; goto L; }
        std::string Label = "loop" + std::to_string(NextLabel++);
        line("c = " + std::to_string(2 + R.below(4)) + ";");
        line(Label + ":");
        line("if (c) > (0) {");
        ++Indent;
        line(var() + " = " + expr(2) + ";");
        line("c = c - 1;");
        line("goto " + Label + ";");
        --Indent;
        line("}");
        continue;
      }
      if (R.chance(1, 4)) {
        line("if " + cond() + " {");
        ++Indent;
        line(var() + " = " + expr(2) + ";");
        --Indent;
        line("} else {");
        ++Indent;
        line(var() + " = " + expr(2) + ";");
        --Indent;
        line("}");
        continue;
      }
      line(var() + " = " + expr(2) + ";");
    }
  }

  void proc(unsigned I);

  Rng R;
  RandomProgramOptions Opts;
  std::string Out;
  unsigned Indent = 0;
  unsigned NextLabel = 0;
};

void Generator::proc(unsigned I) {
  bool IsLeaf = I + 1 == Opts.NumProcs;
  // The outermost procedure always installs a handler so a raising leaf
  // always has a live target.
  bool HasHandler =
      !IsLeaf && Opts.UseHandlers && (I == 0 || R.chance(1, 2));

  line("f" + std::to_string(I) + "(bits32 x) {");
  ++Indent;
  // Initialize the whole variable pool before any random statement so the
  // generated program never reads an unbound variable (which would go
  // wrong, and optimizing a wrong program is not required to preserve its
  // behaviour).
  line("bits32 a, b, c, d, t, u, kv, r;");
  line("a = x + " + std::to_string(R.below(5)) + ";");
  line("b = x * " + std::to_string(1 + R.below(4)) + ";");
  line("c = (x ^ " + std::to_string(R.below(9)) + ") & 7;");
  line("d = x - " + std::to_string(R.below(6)) + ";");
  assigns(Opts.StmtsPerBlock);

  if (IsLeaf) {
    if (Opts.UseHandlers && R.chance(Opts.RaiseChancePct, 100)) {
      line("if ((" + expr(1) + ") & 3) == (0) {");
      ++Indent;
      line("kv = bits32[exn_top];");
      line("exn_top = exn_top - sizeof(kv);");
      line("cut to kv(" + std::to_string(10 + R.below(5)) + ", " + expr(1) +
           ");");
      --Indent;
      line("}");
    }
    line("return (" + expr(2) + ");");
    --Indent;
    line("}");
    return;
  }

  if (HasHandler) {
    line("exn_top = exn_top + sizeof(kv);");
    line("bits32[exn_top] = k;");
    line("r = f" + std::to_string(I + 1) + "(" + expr(1) +
         ") also cuts to k also aborts;");
    line("exn_top = exn_top - sizeof(kv);");
  } else {
    line("r = f" + std::to_string(I + 1) + "(" + expr(1) +
         ") also aborts;");
  }
  assigns(Opts.StmtsPerBlock / 2 + 1);
  line("return ((r + " + expr(2) + ") ^ b);");
  if (HasHandler) {
    // The handler mentions values computed before the call — the shape that
    // makes naive callee-saves placement and dead-code elimination unsound.
    line("continuation k(t, u):");
    ++Indent;
    line("d = ((a + b) ^ t) + (u * 3);");
    line("return (d + " + std::to_string(R.below(100)) + ");");
    --Indent;
  }
  --Indent;
  line("}");
}

std::string Generator::run() {
  line("export main;");
  line("global bits32 exn_top;");
  line("data exn_stack { bits32[64]; }");
  for (unsigned I = 0; I < Opts.NumProcs; ++I)
    proc(I);
  line("main(bits32 x) {");
  ++Indent;
  line("bits32 r;");
  line("exn_top = exn_stack;");
  line("r = f0(x);");
  line("return (r);");
  --Indent;
  line("}");
  return std::move(Out);
}

} // namespace

std::string cmm::generateRandomProgram(uint64_t Seed,
                                       const RandomProgramOptions &Opts) {
  return Generator(Seed, Opts).run();
}
