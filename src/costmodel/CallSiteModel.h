//===- costmodel/CallSiteModel.h - Figures 3/4 cost model -------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The call-site layout model of Figures 3 and 4 and the surrounding
/// discussion (Section 4.2): how alternate return continuations can be
/// implemented at a call site, and what each choice costs in space (words
/// per call site) and time (extra dynamically executed instructions on the
/// normal and abnormal return paths).
///
/// Three schemes:
///  - Standard (Figure 3): no alternate returns. Two words per site (the
///    call and its delay-slot instruction); the callee returns with
///    jmp %i7+8.
///  - Branch table (Figure 4, Atkinson/Liskov/Scheifler 1978): the call is
///    followed by one unconditional branch per alternate continuation; the
///    callee returns to %i7 + 8 + 4*i for continuation i, or past the table
///    for a normal return. "This technique has no dynamic overhead in the
///    normal case"; the abnormal case costs a branch to a branch.
///  - Test and branch (the rejected alternative): "return an additional
///    value from each procedure, which the caller could test ... such a
///    test, however, would add an overhead at every call."
///
//===----------------------------------------------------------------------===//

#ifndef CMM_COSTMODEL_CALLSITEMODEL_H
#define CMM_COSTMODEL_CALLSITEMODEL_H

#include <cstdint>

namespace cmm {

/// How alternate returns are compiled at a call site.
enum class ReturnScheme : uint8_t { Standard, BranchTable, TestAndBranch };

/// Cost parameters of one call site under one scheme.
struct CallSiteCost {
  /// Static words occupied at the call site.
  unsigned Words = 0;
  /// Extra instructions executed on a normal return, beyond the minimal
  /// call/return pair.
  unsigned NormalReturnExtra = 0;
  /// Extra instructions executed to reach alternate continuation i
  /// (0-based), beyond a minimal return.
  unsigned AbnormalReturnExtra = 0;
};

/// Cost of a call site with \p NumAltConts alternate return continuations
/// under \p Scheme; \p AltIndex selects which alternate is taken for the
/// abnormal-path figure.
CallSiteCost callSiteCost(ReturnScheme Scheme, unsigned NumAltConts,
                          unsigned AltIndex = 0);

/// Aggregate program-level model: \p CallSites annotated call sites,
/// \p NormalReturns and \p AbnormalReturns dynamic events.
struct ProgramCallCost {
  uint64_t SpaceWords = 0;
  uint64_t ExtraInstructions = 0;
};

ProgramCallCost programCallCost(ReturnScheme Scheme, uint64_t CallSites,
                                unsigned NumAltConts, uint64_t NormalReturns,
                                uint64_t AbnormalReturns);

} // namespace cmm

#endif // CMM_COSTMODEL_CALLSITEMODEL_H
