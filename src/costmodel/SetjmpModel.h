//===- costmodel/SetjmpModel.h - Section 2 setjmp model ---------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The quantitative comparison of Section 2: "the size of a jmp_buf is 6
/// pointers on Pentium/Linux, 19 on Sparc/Solaris, and 84 on
/// Alpha/Digital-Unix ... they are significantly more expensive than a
/// native-code stack cutter, which saves 2 pointers. On the SPARC, longjmp
/// pays the additional penalty of flushing register windows."
///
//===----------------------------------------------------------------------===//

#ifndef CMM_COSTMODEL_SETJMPMODEL_H
#define CMM_COSTMODEL_SETJMPMODEL_H

#include <array>
#include <cstdint>

namespace cmm {

/// One architecture's state-saving profile for non-local exits.
struct SetjmpProfile {
  const char *Name;
  unsigned JmpBufPointers;      ///< words saved by setjmp
  unsigned NativeCutterPointers; ///< words saved by a native stack cutter
  bool FlushesRegisterWindows;  ///< longjmp flushes windows (SPARC)
};

/// The paper's published measurements.
inline constexpr std::array<SetjmpProfile, 3> SetjmpProfiles = {{
    {"Pentium/Linux", 6, 2, false},
    {"Sparc/Solaris", 19, 2, true},
    {"Alpha/Digital-Unix", 84, 2, false},
}};

/// Words moved to enter a handler scope \p Times times under setjmp vs the
/// native cutter. The register-window flush is modeled as an extra 16-word
/// spill on the raise path.
struct NonLocalExitCost {
  uint64_t SetjmpWordsSaved = 0;
  uint64_t LongjmpWordsRestored = 0;
  uint64_t CutterWordsSaved = 0;
  uint64_t CutterWordsRestored = 0;
};

inline NonLocalExitCost nonLocalExitCost(const SetjmpProfile &P,
                                         uint64_t ScopeEntries,
                                         uint64_t Raises) {
  NonLocalExitCost C;
  C.SetjmpWordsSaved = ScopeEntries * P.JmpBufPointers;
  C.LongjmpWordsRestored =
      Raises * (P.JmpBufPointers + (P.FlushesRegisterWindows ? 16 : 0));
  C.CutterWordsSaved = ScopeEntries * P.NativeCutterPointers;
  C.CutterWordsRestored = Raises * P.NativeCutterPointers;
  return C;
}

} // namespace cmm

#endif // CMM_COSTMODEL_SETJMPMODEL_H
