//===- costmodel/DispatchWorkloads.h - Figure 2 workloads -------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One workload, five implementations — the design space of Figure 2 plus
/// continuation-passing style:
///
///                       | execute in generated code | in run-time system
///   no stack walk (cut) | CutGenerated (cut to)     | CutRuntime
///                       |                           |   (SetCutToCont)
///   stack walk (unwind) | UnwindGenerated           | UnwindRuntime
///                       |   (return <i/n>)          |   (SetActivation +
///                       |                           |    SetUnwindCont)
///   ------------------- + ------------------------- + ------------------
///   continuation-passing style: Cps (explicit closures + jump)
///
/// The workload: `bench(depth, do_raise)` descends `depth` activations,
/// optionally raises, and the handler (established at the top) observes the
/// payload. Every variant computes the same result so cost differences are
/// attributable to the dispatch technique alone.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_COSTMODEL_DISPATCHWORKLOADS_H
#define CMM_COSTMODEL_DISPATCHWORKLOADS_H

#include <string>

namespace cmm {

/// The five implementation techniques.
enum class DispatchTechnique : int {
  CutGenerated,    ///< Figure 10: cut to in generated code
  CutRuntime,      ///< SetCutToCont through the run-time system
  UnwindGenerated, ///< return <i/n> abnormal returns (branch-table method)
  UnwindRuntime,   ///< the Figure 9 dispatcher
  Cps,             ///< explicit closures + jump (SML/NJ style)
};

inline constexpr DispatchTechnique AllDispatchTechniques[] = {
    DispatchTechnique::CutGenerated, DispatchTechnique::CutRuntime,
    DispatchTechnique::UnwindGenerated, DispatchTechnique::UnwindRuntime,
    DispatchTechnique::Cps};

const char *dispatchTechniqueName(DispatchTechnique T);

/// True when raising under \p T involves the run-time system (a yield).
bool dispatchUsesRuntime(DispatchTechnique T);

/// C-- source exporting `bench(bits32 depth, bits32 do_raise)`, which
/// returns 1 on the normal path and 1099 via the handler (tag 99 + 1000).
/// The CutRuntime and UnwindRuntime variants expect the CuttingDispatcher /
/// UnwindingDispatcher respectively to service their yields.
std::string dispatchWorkloadSource(DispatchTechnique T);

/// C-- source exporting `sweep(bits32 iters, bits32 period, bits32 depth)`:
/// `iters` handler-scope entries, raising on every `period`-th iteration —
/// the workload for locating the Figure 2 cost crossover. Returns the sum
/// of iteration results. Only techniques with a per-scope-entry cost vs a
/// per-raise cost differ here; provided for CutGenerated, UnwindGenerated
/// and UnwindRuntime.
std::string sweepWorkloadSource(DispatchTechnique T);

} // namespace cmm

#endif // CMM_COSTMODEL_DISPATCHWORKLOADS_H
