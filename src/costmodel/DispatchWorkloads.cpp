//===- costmodel/DispatchWorkloads.cpp ------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "costmodel/DispatchWorkloads.h"

#include "support/Assert.h"

using namespace cmm;

const char *cmm::dispatchTechniqueName(DispatchTechnique T) {
  switch (T) {
  case DispatchTechnique::CutGenerated: return "cut/generated";
  case DispatchTechnique::CutRuntime: return "cut/runtime";
  case DispatchTechnique::UnwindGenerated: return "unwind/generated";
  case DispatchTechnique::UnwindRuntime: return "unwind/runtime";
  case DispatchTechnique::Cps: return "cps";
  }
  return "unknown";
}

bool cmm::dispatchUsesRuntime(DispatchTechnique T) {
  return T == DispatchTechnique::CutRuntime ||
         T == DispatchTechnique::UnwindRuntime;
}

std::string cmm::dispatchWorkloadSource(DispatchTechnique T) {
  switch (T) {
  case DispatchTechnique::CutGenerated:
    return R"(/* Figure 10: raise pops the handler stack and cuts, all in
   generated code. */
export bench;
global bits32 exn_top;
data exn_stack { bits32[512]; }

cg_raise() {
  bits32 kv;
  kv = bits32[exn_top];
  exn_top = exn_top - 4;
  cut to kv(99, 0);
}

cg_deep(bits32 n, bits32 do_raise) {
  bits32 r;
  if n == 0 {
    if do_raise == 1 { cg_raise() also aborts; }
    return (1);
  }
  r = cg_deep(n - 1, do_raise) also aborts;
  return (r);
}

bench(bits32 depth, bits32 do_raise) {
  bits32 t, a, kv, r;
  exn_top = exn_stack;
  exn_top = exn_top + 4;
  bits32[exn_top] = k;
  r = cg_deep(depth, do_raise) also cuts to k also aborts;
  exn_top = exn_top - 4;
  return (r);
continuation k(t, a):
  return (1000 + t + a);
}
)";

  case DispatchTechnique::CutRuntime:
    return R"(/* Figure 2, bottom-left: the program yields; the front-end
   runtime pops the handler stack and uses SetCutToCont. */
export bench;
global bits32 exn_top;
data exn_stack { bits32[512]; }

cr_deep(bits32 n, bits32 do_raise) {
  bits32 r;
  if n == 0 {
    if do_raise == 1 { yield(99, 0) also aborts; }
    return (1);
  }
  r = cr_deep(n - 1, do_raise) also aborts;
  return (r);
}

bench(bits32 depth, bits32 do_raise) {
  bits32 t, a, kv, r;
  exn_top = exn_stack;
  exn_top = exn_top + 4;
  bits32[exn_top] = k;
  r = cr_deep(depth, do_raise) also cuts to k also aborts;
  exn_top = exn_top - 4;
  return (r);
continuation k(t, a):
  return (1000 + t + a);
}
)";

  case DispatchTechnique::UnwindGenerated:
    return R"(/* Section 4.2's compiled unwinding: every frame propagates the
   exception through an abnormal return (the branch-table method), with no
   run-time system at all. */
export bench;

ug_deep(bits32 n, bits32 do_raise) {
  bits32 r, t, a;
  if n == 0 {
    if do_raise == 1 { return <0/1> (99, 0); }
    return <1/1> (1);
  }
  r = ug_deep(n - 1, do_raise) also returns to kp;
  return <1/1> (r);
continuation kp(t, a):
  return <0/1> (t, a);
}

bench(bits32 depth, bits32 do_raise) {
  bits32 r, t, a;
  r = ug_deep(depth, do_raise) also returns to k;
  return (r);
continuation k(t, a):
  return (1000 + t + a);
}
)";

  case DispatchTechnique::UnwindRuntime:
    return R"(/* Figures 8/9: raise yields; the dispatcher walks activations
   interpretively using descriptors and SetActivation/SetUnwindCont. */
export bench;

data desc_bench {
  bits32 1;
  bits32 99; bits32 0; bits32 1;
}

ur_deep(bits32 n, bits32 do_raise) {
  bits32 r;
  if n == 0 {
    if do_raise == 1 { yield(99, 0) also aborts; }
    return (1);
  }
  r = ur_deep(n - 1, do_raise) also aborts;
  return (r);
}

bench(bits32 depth, bits32 do_raise) {
  bits32 r, a;
  r = ur_deep(depth, do_raise)
      also unwinds to k also aborts descriptors desc_bench;
  return (r);
continuation k(a):
  return (1000 + 99 + a);
}
)";

  case DispatchTechnique::Cps:
    return R"(/* Continuation-passing style (SML/NJ): success and exception
   continuations are explicit closures; raising is one tail call. The
   paper supports this through fully general tail calls. */
export bench;
global bits32 hp;
data cps_frames { bits32[4096]; }

cps_after(bits32 env, bits32 v) {
  bits32 kc, ke;
  kc = bits32[env];
  ke = bits32[env + 4];
  jump kc(ke, v);
}

cps_done(bits32 env, bits32 v) {
  return (v);
}

cps_handler(bits32 env, bits32 t, bits32 a) {
  return (1000 + t + a);
}

cps_deep(bits32 n, bits32 do_raise, bits32 kcode, bits32 kenv,
         bits32 hcode, bits32 henv) {
  bits32 f;
  if n == 0 {
    if do_raise == 1 { jump hcode(henv, 99, 0); }
    jump kcode(kenv, 1);
  }
  f = hp;
  hp = hp + 8;
  bits32[f] = kcode;
  bits32[f + 4] = kenv;
  jump cps_deep(n - 1, do_raise, cps_after, f, hcode, henv);
}

bench(bits32 depth, bits32 do_raise) {
  bits32 r;
  hp = cps_frames;
  r = cps_deep(depth, do_raise, cps_done, 0, cps_handler, 0);
  return (r);
}
)";
  }
  cmm_unreachable("unknown dispatch technique");
}

std::string cmm::sweepWorkloadSource(DispatchTechnique T) {
  switch (T) {
  case DispatchTechnique::CutGenerated:
    return R"(export sweep;
global bits32 exn_top;
data exn_stack { bits32[512]; }

sw_body(bits32 i, bits32 period, bits32 depth) {
  bits32 r, kv;
  if depth == 0 {
    if %modu(i, period) == 0 {
      kv = bits32[exn_top];
      exn_top = exn_top - 4;
      cut to kv(99, 0);
    }
    return (1);
  }
  r = sw_body(i, period, depth - 1) also aborts;
  return (r);
}

sweep(bits32 iters, bits32 period, bits32 depth) {
  bits32 i, acc, r, t, a, kv;
  exn_top = exn_stack;
  i = 0;
  acc = 0;
loop:
  if i >= iters { return (acc); }
  exn_top = exn_top + 4;
  bits32[exn_top] = k;
  r = sw_body(i, period, depth) also cuts to k also aborts;
  exn_top = exn_top - 4;
join:
  acc = acc + r;
  i = i + 1;
  goto loop;
continuation k(t, a):
  r = 1000 + t;
  goto join;
}
)";

  case DispatchTechnique::UnwindGenerated:
    return R"(export sweep;

sw_body(bits32 i, bits32 period, bits32 depth) {
  bits32 r, t, a;
  if depth == 0 {
    if %modu(i, period) == 0 { return <0/1> (99, 0); }
    return <1/1> (1);
  }
  r = sw_body(i, period, depth - 1) also returns to kp;
  return <1/1> (r);
continuation kp(t, a):
  return <0/1> (t, a);
}

sweep(bits32 iters, bits32 period, bits32 depth) {
  bits32 i, acc, r, t, a;
  i = 0;
  acc = 0;
loop:
  if i >= iters { return (acc); }
  r = sw_body(i, period, depth) also returns to k;
join:
  acc = acc + r;
  i = i + 1;
  goto loop;
continuation k(t, a):
  r = 1000 + t;
  goto join;
}
)";

  case DispatchTechnique::UnwindRuntime:
    return R"(export sweep;

data desc_sweep {
  bits32 1;
  bits32 99; bits32 0; bits32 1;
}

sw_body(bits32 i, bits32 period, bits32 depth) {
  bits32 r;
  if depth == 0 {
    if %modu(i, period) == 0 { yield(99, 0) also aborts; }
    return (1);
  }
  r = sw_body(i, period, depth - 1) also aborts;
  return (r);
}

sweep(bits32 iters, bits32 period, bits32 depth) {
  bits32 i, acc, r, t;
  i = 0;
  acc = 0;
loop:
  if i >= iters { return (acc); }
  r = sw_body(i, period, depth)
      also unwinds to k also aborts descriptors desc_sweep;
join:
  acc = acc + r;
  i = i + 1;
  goto loop;
continuation k(t):
  /* The handler knows its exception statically (tag 99); the dispatcher
     delivers only the argument. */
  r = 1000 + 99 + t;
  goto join;
}
)";

  default:
    cmm_unreachable("sweep workload defined only for the techniques with a "
                    "scope-entry/raise cost trade-off");
  }
}
