//===- costmodel/DiffHarness.cpp ------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "costmodel/DiffHarness.h"

#include "engine/Engine.h"
#include "ir/IlText.h"
#include "ir/Serialize.h"
#include "rts/Dispatchers.h"
#include "sched/Scheduler.h"
#include "support/ByteIO.h"
#include "syntax/AstPrinter.h"
#include "syntax/Parser.h"

#include <functional>

using namespace cmm;

std::vector<DiffOptConfig> cmm::diffOptConfigs() {
  auto Base = [] {
    OptOptions O;
    O.ValidateEachPass = true;
    O.RunConstProp = O.RunCopyProp = O.RunDeadCode = false;
    return O;
  };
  std::vector<DiffOptConfig> Cs;
  Cs.push_back({"none", false, OptOptions(), false});
  {
    DiffOptConfig C{"constprop", true, Base(), false};
    C.Opts.RunConstProp = true;
    Cs.push_back(C);
  }
  {
    DiffOptConfig C{"copyprop", true, Base(), false};
    C.Opts.RunCopyProp = true;
    Cs.push_back(C);
  }
  {
    DiffOptConfig C{"deadcode", true, Base(), false};
    C.Opts.RunDeadCode = true;
    Cs.push_back(C);
  }
  {
    DiffOptConfig C{"calleesaves", true, Base(), false};
    C.Opts.PlaceCalleeSaves = true;
    Cs.push_back(C);
  }
  {
    DiffOptConfig C{"full", true, Base(), false};
    C.Opts.RunConstProp = C.Opts.RunCopyProp = C.Opts.RunDeadCode = true;
    C.Opts.PlaceCalleeSaves = true;
    Cs.push_back(C);
  }
  {
    // The Table 3 ablation: same full pipeline, `also` edges dropped from
    // every analysis. Soundness depends on those edges, so this column is
    // required to disagree on some seeds.
    DiffOptConfig C{"full-noedges", true, Base(), true};
    C.Opts.RunConstProp = C.Opts.RunCopyProp = C.Opts.RunDeadCode = true;
    C.Opts.PlaceCalleeSaves = true;
    C.Opts.WithExceptionalEdges = false;
    Cs.push_back(C);
  }
  return Cs;
}

bool DiffOutcome::comparable(const DiffOutcome &O) const {
  if (Status != O.Status)
    return false;
  switch (Status) {
  case MachineStatus::Halted:
    return Results == O.Results;
  case MachineStatus::Wrong:
    return WrongReason == O.WrongReason;
  default:
    return true;
  }
}

std::string DiffOutcome::str() const {
  switch (Status) {
  case MachineStatus::Halted: {
    std::string Out = "halted(";
    std::string Sep;
    for (const Value &V : Results) {
      Out += Sep + V.str();
      Sep = ", ";
    }
    return Out + ")";
  }
  case MachineStatus::Wrong:
    return "wrong: " + WrongReason;
  case MachineStatus::Suspended:
    return "suspended";
  case MachineStatus::Running:
    return "running (step budget)";
  case MachineStatus::Idle:
    return "idle";
  }
  return "?";
}

std::string DiffDivergence::str() const {
  std::string Out = "seed " + std::to_string(Seed) + " [" +
                    dispatchTechniqueName(Strategy) + " / " + Config + "]";
  if (Expected)
    Out += " (expected)";
  return Out + ": " + Detail;
}

bool DiffSeedResult::hasUnexpected() const {
  for (const DiffDivergence &D : Divergences)
    if (!D.Expected)
      return true;
  return false;
}

bool DiffSeedResult::ablationDiverged() const {
  for (const DiffDivergence &D : Divergences)
    if (D.Expected)
      return true;
  return false;
}

namespace {

/// Compiles one (strategy, configuration) cell: through \p Eng's
/// content-hash artifact cache when set (one compile per cell, shared by
/// every input and both backends), uncached otherwise. Failures travel
/// inside the artifact with the phase-prefixed errors the oracles match on.
std::shared_ptr<const engine::ProgramArtifact>
compileCell(const std::string &Src, const DiffOptConfig &Cfg,
            engine::Engine *Eng) {
  engine::CompileRequest Req;
  Req.Sources = {Src};
  Req.Optimize = Cfg.Optimize;
  Req.Opt = Cfg.Opts;
  return Eng ? Eng->compile(Req) : engine::compileArtifact(Req);
}

/// Runs one cell. With an engine, the run goes through Engine::runJob — the
/// same budgeted loop, but every cell then shows up in the engine's
/// metrics, lifecycle spans, and snapshot stream (runJob's per-resume-
/// segment fuel is exactly runWithRuntime's budget, so outcomes are
/// identical either way; the engineless path remains for harness callers
/// with no engine, e.g. the minimizer under test).
DiffOutcome runCell(const std::shared_ptr<const engine::ProgramArtifact> &Art,
                    engine::Backend B, DispatchTechnique T, uint64_t Input,
                    uint64_t MaxSteps, engine::Engine *Eng) {
  DiffOutcome O;
  if (Eng) {
    engine::Job J;
    J.Artifact = Art;
    J.B = B;
    J.Args = {Value::bits(32, Input)};
    J.MaxSteps = MaxSteps;
    J.Dispatcher = T == DispatchTechnique::CutRuntime
                       ? engine::DispatcherKind::Cut
                       : (T == DispatchTechnique::UnwindRuntime
                              ? engine::DispatcherKind::Unwind
                              : engine::DispatcherKind::None);
    engine::JobResult R = Eng->runJob(J);
    O.Status = R.Status;
    O.MachineStats = R.MachineStats;
    if (R.Status == MachineStatus::Halted)
      O.Results = std::move(R.Results);
    else if (R.Status == MachineStatus::Wrong)
      O.WrongReason = std::move(R.WrongReason);
    return O;
  }
  std::unique_ptr<Executor> Exec = Art->newExecutor(B);
  Executor &M = *Exec;
  M.start("main", {Value::bits(32, Input)});
  MachineStatus St;
  if (T == DispatchTechnique::CutRuntime) {
    CuttingDispatcher D(M);
    St = runWithRuntime(M, std::ref(D), MaxSteps);
  } else if (T == DispatchTechnique::UnwindRuntime) {
    UnwindingDispatcher D(M);
    St = runWithRuntime(M, std::ref(D), MaxSteps);
  } else {
    St = M.run(MaxSteps);
  }
  O.Status = St;
  O.MachineStats = M.stats();
  if (St == MachineStatus::Halted)
    O.Results = M.argArea();
  else if (St == MachineStatus::Wrong)
    O.WrongReason = M.wrongReason();
  return O;
}

/// Runs the scheduled rendering of a cell as a one-green-thread schedule on
/// a single driver (deterministic), with the scheduler's exception
/// dispatch matching the strategy's runtime needs. The per-thread fuel is
/// the harness step budget, so a direct run that would exhaust its budget
/// maps to a fuel-exhausted schedule (Status Running) — inconclusive, like
/// the direct case.
DiffOutcome
runScheduledCell(const std::shared_ptr<const engine::ProgramArtifact> &Art,
                 engine::Backend B, DispatchTechnique T, uint64_t Input,
                 uint64_t MaxSteps) {
  sched::SchedOptions SO;
  SO.Drivers = 1;
  SO.SliceFuel = 4096; // small enough that slicing actually happens
  SO.MaxStepsPerThread = MaxSteps;
  SO.Exn = T == DispatchTechnique::CutRuntime ? sched::ExnDispatch::Cut
           : T == DispatchTechnique::UnwindRuntime
               ? sched::ExnDispatch::Unwind
               : sched::ExnDispatch::None;
  sched::Scheduler S([Art, B] { return Art->newExecutor(B); }, SO);
  sched::SchedResult R = S.run("main", {Value::bits(32, Input)});
  DiffOutcome O;
  O.Status = R.Status;
  O.Results = std::move(R.Results);
  O.WrongReason = std::move(R.WrongReason);
  O.MachineStats = R.MachineStats;
  return O;
}

/// Backend conformance: the bytecode VM must agree with the tree walker not
/// just on the answer but on the entire observable outcome, including every
/// cost counter. Returns a description of the first disagreement.
std::string compareBackends(const DiffOutcome &Walk, const DiffOutcome &Vm) {
  if (Walk.Status != Vm.Status)
    return "walk " + Walk.str() + " vs vm " + Vm.str();
  if (!Walk.comparable(Vm))
    return "walk " + Walk.str() + " vs vm " + Vm.str();
  const Stats &A = Walk.MachineStats, &B = Vm.MachineStats;
  auto Eq = [](uint64_t X, uint64_t Y, const char *Name) -> std::string {
    if (X == Y)
      return "";
    return std::string(Name) + ": walk " + std::to_string(X) + " vs vm " +
           std::to_string(Y);
  };
  std::string E;
  if (!(E = Eq(A.Steps, B.Steps, "Steps")).empty() ||
      !(E = Eq(A.Calls, B.Calls, "Calls")).empty() ||
      !(E = Eq(A.Jumps, B.Jumps, "Jumps")).empty() ||
      !(E = Eq(A.Returns, B.Returns, "Returns")).empty() ||
      !(E = Eq(A.Cuts, B.Cuts, "Cuts")).empty() ||
      !(E = Eq(A.FramesCutOver, B.FramesCutOver, "FramesCutOver")).empty() ||
      !(E = Eq(A.Yields, B.Yields, "Yields")).empty() ||
      !(E = Eq(A.UnwindPops, B.UnwindPops, "UnwindPops")).empty() ||
      !(E = Eq(A.ContsBound, B.ContsBound, "ContsBound")).empty() ||
      !(E = Eq(A.Loads, B.Loads, "Loads")).empty() ||
      !(E = Eq(A.Stores, B.Stores, "Stores")).empty() ||
      !(E = Eq(A.CalleeSaveMoves, B.CalleeSaveMoves, "CalleeSaveMoves"))
           .empty() ||
      !(E = Eq(A.MaxStackDepth, B.MaxStackDepth, "MaxStackDepth")).empty())
    return "stats diverge: " + E;
  return "";
}

/// Technique-characterizing stats invariants, checked on the unoptimized
/// reference run when it halts. Each dispatch technique leaves a distinct
/// fingerprint in the counters; a violation means a rendering used a
/// mechanism its column of Figure 2 forbids.
std::string checkStatsInvariants(DispatchTechnique T, const DiffOutcome &O) {
  const Stats &S = O.MachineStats;
  auto Zero = [&](uint64_t V, const char *What) -> std::string {
    if (V != 0)
      return std::string(What) + " = " + std::to_string(V) +
             " (must be 0 for " + dispatchTechniqueName(T) + ")";
    return "";
  };
  if (S.Steps == 0)
    return "halted with Steps == 0";
  if (S.MaxStackDepth < 1)
    return "halted with MaxStackDepth < 1";
  if (S.Returns > S.Calls)
    return "Returns (" + std::to_string(S.Returns) + ") > Calls (" +
           std::to_string(S.Calls) + ")";
  if (O.Results.size() != 1)
    return "main returned " + std::to_string(O.Results.size()) +
           " results (want 1)";
  std::string E;
  switch (T) {
  case DispatchTechnique::CutGenerated:
    if (!(E = Zero(S.Yields, "Yields")).empty())
      return E;
    return Zero(S.UnwindPops, "UnwindPops");
  case DispatchTechnique::CutRuntime:
    return Zero(S.UnwindPops, "UnwindPops");
  case DispatchTechnique::UnwindGenerated:
    if (!(E = Zero(S.Yields, "Yields")).empty())
      return E;
    if (!(E = Zero(S.Cuts, "Cuts")).empty())
      return E;
    if (!(E = Zero(S.UnwindPops, "UnwindPops")).empty())
      return E;
    return Zero(S.FramesCutOver, "FramesCutOver");
  case DispatchTechnique::UnwindRuntime:
    if (!(E = Zero(S.Cuts, "Cuts")).empty())
      return E;
    return Zero(S.FramesCutOver, "FramesCutOver");
  case DispatchTechnique::Cps:
    if (!(E = Zero(S.Yields, "Yields")).empty())
      return E;
    if (!(E = Zero(S.Cuts, "Cuts")).empty())
      return E;
    if (!(E = Zero(S.UnwindPops, "UnwindPops")).empty())
      return E;
    if (!(E = Zero(S.FramesCutOver, "FramesCutOver")).empty())
      return E;
    if (S.Jumps == 0)
      return "CPS rendering halted with Jumps == 0";
    return "";
  }
  return "";
}

/// Binary serialize . deserialize . serialize must be byte-identical: the
/// persistent cache (docs/ENGINE.md § "Persistent cache") relies on reading
/// back exactly the program it stored. Returns a description of the first
/// violation, "" when the encoding is a fixed point.
std::string checkBinaryRoundTrip(const IrProgram &P) {
  ByteWriter W1;
  serializeIr(P, W1);
  ByteReader R(W1.buffer().data(), W1.size());
  std::string Err;
  std::unique_ptr<IrProgram> Q = deserializeIr(R, &Err);
  if (!Q)
    return "canonical encoding does not deserialize: " + Err;
  ByteWriter W2;
  serializeIr(*Q, W2);
  if (W1.buffer() != W2.buffer())
    return "serialize . deserialize . serialize is not byte-identical (" +
           std::to_string(W1.size()) + " vs " + std::to_string(W2.size()) +
           " bytes)";
  return "";
}

/// Textual IL print . parse . print must be a fixed point, and the parsed
/// program must re-serialize to the same canonical binary bytes — the two
/// encodings are faithful to each other, not merely self-consistent.
std::string checkIlRoundTrip(const IrProgram &P) {
  std::string T1 = printIl(P);
  std::string Err;
  std::unique_ptr<IrProgram> Q = parseIl(T1, &Err);
  if (!Q)
    return "printed IL does not parse back: " + Err;
  std::string T2 = printIl(*Q);
  if (T1 != T2)
    return "printIl . parseIl . printIl is not a fixed point";
  ByteWriter W1, W2;
  serializeIr(P, W1);
  serializeIr(*Q, W2);
  if (W1.buffer() != W2.buffer())
    return "IL-parsed program serializes to different canonical bytes";
  return "";
}

/// print . parse must reach a fixed point in one step on generator output.
std::string checkRoundTrip(const std::string &Src) {
  DiagnosticEngine D1;
  Parser P1(Src, D1);
  Module M1 = P1.parseModule();
  if (D1.hasErrors())
    return "generated source does not parse: " + D1.str();
  std::string Printed1 = printModule(M1);
  DiagnosticEngine D2;
  Parser P2(Printed1, D2);
  Module M2 = P2.parseModule();
  if (D2.hasErrors())
    return "printed module does not re-parse: " + D2.str();
  std::string Printed2 = printModule(M2);
  if (Printed1 != Printed2)
    return "print/parse round trip is not a fixed point";
  return "";
}

} // namespace

DiffSeedResult cmm::diffTestSeed(uint64_t Seed, const DiffOptions &Opts) {
  DiffSeedResult R;
  R.Seed = Seed;
  const std::vector<DiffOptConfig> Configs = diffOptConfigs();
  const size_t NumCfg = Configs.size();
  const size_t NumIn = Opts.Inputs.size();

  auto Report = [&](DispatchTechnique T, const std::string &Cfg,
                    bool Expected, std::string Detail) {
    R.Divergences.push_back({Seed, T, Cfg, Expected, std::move(Detail)});
  };

  // Outcome[strategy][config][input]; absent when the cell failed to
  // compile (itself reported as a divergence).
  std::vector<std::vector<std::vector<std::optional<DiffOutcome>>>> Outcome;

  for (DispatchTechnique T : AllDispatchTechniques) {
    RandomProgramOptions G = Opts.Gen;
    G.Strategy = T;
    std::string Src = generateRandomProgram(Seed, G);

    if (Opts.CheckRoundTrip) {
      std::string E = checkRoundTrip(Src);
      if (!E.empty())
        Report(T, "round-trip", false, E);
    }

    Outcome.emplace_back();
    auto &ByCfg = Outcome.back();
    for (size_t C = 0; C < NumCfg; ++C) {
      ByCfg.emplace_back(NumIn);
      auto Art = compileCell(Src, Configs[C], Opts.Eng);
      if (!Art->ok()) {
        // The ablation may legitimately break the graph structurally
        // (dead-code elimination without cut edges can strand a
        // continuation); everything else must compile clean.
        Report(T, Configs[C].Name, Configs[C].ExpectDivergence, Art->error());
        continue;
      }
      if (Opts.CheckSerialize &&
          (Configs[C].Name == "none" || Configs[C].Name == "full")) {
        // The serialization oracles are per-program, not per-input, and
        // bounded to the reference and full-pipeline cells: they cover both
        // a raw and a fully-transformed IR per strategy without tripling
        // the cost of the sweep.
        std::string E = checkBinaryRoundTrip(*Art->program());
        if (!E.empty())
          Report(T, Configs[C].Name + "/serialize-roundtrip", false, E);
        E = checkIlRoundTrip(*Art->program());
        if (!E.empty())
          Report(T, Configs[C].Name + "/il-roundtrip", false, E);
      }
      for (size_t I = 0; I < NumIn; ++I) {
        ByCfg[C][I] = runCell(Art, engine::Backend::Walk, T, Opts.Inputs[I],
                              Opts.MaxSteps, Opts.Eng);
        ++R.RunsExecuted;
        if (Opts.CheckVm) {
          // Backend columns: the bytecode VM and the threaded tier on the
          // identical program. A divergence here is a backend bug, never an
          // expected ablation effect (all backends run the same — possibly
          // mis-optimized — IR, so they must still agree with each other).
          DiffOutcome Vm = runCell(Art, engine::Backend::Vm, T,
                                   Opts.Inputs[I], Opts.MaxSteps, Opts.Eng);
          ++R.RunsExecuted;
          std::string E = compareBackends(*ByCfg[C][I], Vm);
          if (!E.empty())
            Report(T, Configs[C].Name + "/vm", false,
                   "input " + std::to_string(Opts.Inputs[I]) + ": " + E);
          DiffOutcome Th = runCell(Art, engine::Backend::Threaded, T,
                                   Opts.Inputs[I], Opts.MaxSteps, Opts.Eng);
          ++R.RunsExecuted;
          E = compareBackends(*ByCfg[C][I], Th);
          if (!E.empty())
            Report(T, Configs[C].Name + "/threaded", false,
                   "input " + std::to_string(Opts.Inputs[I]) + ": " + E);
        }
      }
    }

    // Scheduled-vs-direct: the same computation spawned as a green thread
    // under the M:N scheduler must reproduce the direct unoptimized
    // reference outcome exactly (status, results, goes-wrong reason). A
    // divergence here is a scheduler bug — suspension capture, resume
    // plumbing, or exception dispatch inside a green thread.
    if (Opts.CheckScheduled) {
      RandomProgramOptions GS = G;
      GS.Scheduled = true;
      auto SchedArt =
          compileCell(generateRandomProgram(Seed, GS), Configs[0], Opts.Eng);
      if (!SchedArt->ok()) {
        Report(T, "scheduled/compile", false, SchedArt->error());
      } else {
        for (size_t I = 0; I < NumIn; ++I) {
          const auto &Ref = Outcome.back()[0][I];
          if (!Ref || Ref->Status == MachineStatus::Running)
            continue;
          DiffOutcome Sc = runScheduledCell(SchedArt, engine::Backend::Walk,
                                            T, Opts.Inputs[I], Opts.MaxSteps);
          ++R.RunsExecuted;
          if (Sc.Status == MachineStatus::Running)
            continue; // schedule fuel: inconclusive, not divergent
          if (!Ref->comparable(Sc))
            Report(T, "scheduled", false,
                   "input " + std::to_string(Opts.Inputs[I]) + ": direct " +
                       Ref->str() + " vs scheduled " + Sc.str());
        }
      }
    }
  }

  // Oracle 1: every strategy's unoptimized rendering agrees with the first
  // strategy's on every input.
  const size_t RefStrategy = 0, RefCfg = 0;
  for (size_t S = 1; S < Outcome.size(); ++S) {
    DispatchTechnique T = AllDispatchTechniques[S];
    for (size_t I = 0; I < NumIn; ++I) {
      const auto &A = Outcome[RefStrategy][RefCfg][I];
      const auto &B = Outcome[S][RefCfg][I];
      if (!A || !B)
        continue;
      if (A->Status == MachineStatus::Running ||
          B->Status == MachineStatus::Running)
        continue; // step budget: inconclusive, not divergent
      if (!A->comparable(*B))
        Report(T, "cross-strategy", false,
               "input " + std::to_string(Opts.Inputs[I]) + ": " +
                   dispatchTechniqueName(AllDispatchTechniques[RefStrategy]) +
                   " " + A->str() + " vs " + B->str());
    }
  }

  // Oracle 2: technique fingerprints in the machine counters.
  if (Opts.CheckStats) {
    for (size_t S = 0; S < Outcome.size(); ++S) {
      DispatchTechnique T = AllDispatchTechniques[S];
      for (size_t I = 0; I < NumIn; ++I) {
        const auto &O = Outcome[S][RefCfg][I];
        if (!O || O->Status != MachineStatus::Halted)
          continue;
        std::string E = checkStatsInvariants(T, *O);
        if (!E.empty())
          Report(T, "stats", false,
                 "input " + std::to_string(Opts.Inputs[I]) + ": " + E);
      }
    }
  }

  // Oracle 3: every optimizer configuration agrees with its own strategy's
  // unoptimized reference. A reference that goes wrong (or exhausts the
  // step budget) constrains nothing: optimizing a wrong program is not
  // required to preserve its behaviour.
  for (size_t S = 0; S < Outcome.size(); ++S) {
    DispatchTechnique T = AllDispatchTechniques[S];
    for (size_t C = 1; C < NumCfg; ++C) {
      for (size_t I = 0; I < NumIn; ++I) {
        const auto &Ref = Outcome[S][RefCfg][I];
        const auto &Opt = Outcome[S][C][I];
        if (!Ref || !Opt)
          continue;
        if (Ref->Status != MachineStatus::Halted)
          continue;
        if (Opt->Status == MachineStatus::Running)
          continue;
        if (!Ref->comparable(*Opt))
          Report(T, Configs[C].Name, Configs[C].ExpectDivergence,
                 "input " + std::to_string(Opts.Inputs[I]) + ": reference " +
                     Ref->str() + " vs optimized " + Opt->str());
      }
    }
  }

  return R;
}

//===----------------------------------------------------------------------===//
// Minimizer
//===----------------------------------------------------------------------===//

namespace {

/// Source-length cost of a candidate (sum over renderings so a shrink must
/// help globally, not shuffle text between strategies).
size_t candidateCost(uint64_t Seed, const RandomProgramOptions &G) {
  size_t Cost = 0;
  for (DispatchTechnique T : AllDispatchTechniques) {
    RandomProgramOptions O = G;
    O.Strategy = T;
    Cost += generateRandomProgram(Seed, O).size();
  }
  return Cost;
}

} // namespace

std::optional<DiffRepro> cmm::minimizeDivergence(uint64_t Seed,
                                                 const DiffOptions &Opts) {
  DiffSeedResult First = diffTestSeed(Seed, Opts);
  if (First.Divergences.empty())
    return std::nullopt;
  const bool WantUnexpected = First.hasUnexpected();

  auto StillFails = [&](const DiffOptions &Cand) {
    DiffSeedResult R = diffTestSeed(Seed, Cand);
    return WantUnexpected ? R.hasUnexpected() : R.ablationDiverged();
  };

  DiffOptions Best = Opts;
  // Greedy descent over the generator parameters: accept any mutation that
  // shrinks the rendered source while the divergence class survives.
  bool Progress = true;
  while (Progress) {
    Progress = false;
    std::vector<std::function<bool(RandomProgramOptions &)>> Mutations = {
        [](RandomProgramOptions &G) {
          if (G.NumProcs <= 2)
            return false;
          --G.NumProcs;
          return true;
        },
        [](RandomProgramOptions &G) {
          if (G.StmtsPerBlock == 0)
            return false;
          --G.StmtsPerBlock;
          return true;
        },
        [](RandomProgramOptions &G) {
          if (!G.UseCheckedDiv)
            return false;
          G.UseCheckedDiv = false;
          return true;
        },
        [](RandomProgramOptions &G) {
          if (!G.UsePrims)
            return false;
          G.UsePrims = false;
          return true;
        },
        [](RandomProgramOptions &G) {
          if (G.WrongChancePct == 0)
            return false;
          G.WrongChancePct = 0;
          return true;
        },
    };
    for (auto &Mut : Mutations) {
      DiffOptions Cand = Best;
      if (!Mut(Cand.Gen))
        continue;
      if (candidateCost(Seed, Cand.Gen) >= candidateCost(Seed, Best.Gen))
        continue;
      if (StillFails(Cand)) {
        Best = Cand;
        Progress = true;
      }
    }
  }

  DiffSeedResult Final = diffTestSeed(Seed, Best);
  const DiffDivergence *Pick = nullptr;
  for (const DiffDivergence &D : Final.Divergences) {
    if (WantUnexpected && D.Expected)
      continue;
    Pick = &D;
    break;
  }
  if (!Pick)
    return std::nullopt; // should not happen: StillFails guarded every step

  DiffRepro Repro;
  Repro.Seed = Seed;
  Repro.Gen = Best.Gen;
  Repro.Gen.Strategy = Pick->Strategy;
  Repro.Strategy = Pick->Strategy;
  Repro.Config = Pick->Config;
  Repro.Detail = Pick->Detail;
  Repro.Source =
      "/* cmmdiff reproducer\n"
      "   seed=" + std::to_string(Seed) +
      " strategy=" + dispatchTechniqueName(Pick->Strategy) +
      " config=" + Pick->Config + "\n" +
      "   procs=" + std::to_string(Best.Gen.NumProcs) +
      " stmts=" + std::to_string(Best.Gen.StmtsPerBlock) +
      " raise-pct=" + std::to_string(Best.Gen.RaiseChancePct) +
      " checked-div=" + (Best.Gen.UseCheckedDiv ? "1" : "0") +
      " prims=" + (Best.Gen.UsePrims ? "1" : "0") +
      " wrong-pct=" + std::to_string(Best.Gen.WrongChancePct) + "\n" +
      "   divergence: " + Pick->Detail + " */\n" +
      generateRandomProgram(Seed, Repro.Gen);
  return Repro;
}
