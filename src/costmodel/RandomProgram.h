//===- costmodel/RandomProgram.h - Random C-- workloads ---------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic random generator of well-formed C-- programs that use
/// exceptions through stack cutting. The programs exercise the shapes the
/// paper's optimizer discussion cares about: values computed before a call,
/// used after its normal return, and/or used in a handler continuation the
/// call can cut to. Used by the property-based optimizer-soundness tests
/// and by the Table 3 ablation benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_COSTMODEL_RANDOMPROGRAM_H
#define CMM_COSTMODEL_RANDOMPROGRAM_H

#include <cstdint>
#include <string>

namespace cmm {

/// Generator parameters.
struct RandomProgramOptions {
  unsigned NumProcs = 4;        ///< call-chain depth (>= 2)
  unsigned StmtsPerBlock = 5;   ///< straight-line statements per block
  unsigned RaiseChancePct = 50; ///< probability the leaf raises
  bool UseHandlers = true;      ///< generate TRY-like handler scopes
};

/// Generates a self-contained C-- module exporting `main`, deterministic in
/// \p Seed. main takes one bits32 argument and returns one bits32 result.
std::string generateRandomProgram(uint64_t Seed,
                                  const RandomProgramOptions &Opts = {});

} // namespace cmm

#endif // CMM_COSTMODEL_RANDOMPROGRAM_H
