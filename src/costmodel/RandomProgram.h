//===- costmodel/RandomProgram.h - Random C-- workloads ---------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic random generator of well-formed C-- programs that raise
/// and handle exceptions. One seed describes one *computation*; the same
/// computation can be rendered under any of the paper's exception
/// implementations (Figure 2 plus CPS): stack cutting in generated code,
/// stack cutting through the run-time system, compiled unwinding via
/// abnormal returns, interpretive run-time unwinding with descriptors, and
/// continuation-passing style. Every rendering of a seed computes the same
/// answer, which is the oracle the differential harness (DiffHarness.h)
/// cross-checks. The programs exercise the shapes the paper's optimizer
/// discussion cares about: values computed before a call, used after its
/// normal return, and/or used in a handler continuation the call can reach
/// exceptionally.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_COSTMODEL_RANDOMPROGRAM_H
#define CMM_COSTMODEL_RANDOMPROGRAM_H

#include "costmodel/DispatchWorkloads.h"

#include <cstdint>
#include <string>

namespace cmm {

/// Generator parameters. All random draws are independent of Strategy, so
/// two options structs differing only in Strategy yield two renderings of
/// the same underlying computation.
struct RandomProgramOptions {
  unsigned NumProcs = 4;        ///< call-chain depth (>= 2)
  unsigned StmtsPerBlock = 5;   ///< straight-line statements per block
  unsigned RaiseChancePct = 50; ///< probability the leaf raises
  bool UseHandlers = true;      ///< generate TRY-like handler scopes
  /// The exception implementation to render (the Figure 2 design space
  /// plus CPS).
  DispatchTechnique Strategy = DispatchTechnique::CutGenerated;
  /// Use the checked %%divu/%%modu standard-library procedures (with
  /// guaranteed-nonzero divisors) in generated statements.
  bool UseCheckedDiv = true;
  /// Use %divu/%modu/%shra/%ltu/... primitives in expressions, with
  /// divisors forced nonzero so evaluation cannot fail.
  bool UsePrims = true;
  /// Percent chance, per generated statement slot, of an *unguarded*
  /// fast-path division whose divisor may be zero for some inputs. Such a
  /// program goes wrong — identically under every strategy.
  unsigned WrongChancePct = 0;
  /// Render for the green-threads scheduler (sched/Scheduler.h): the
  /// computation's entry becomes `sched_body`, and `main` spawns it as a
  /// green thread and joins on its result through the yield vocabulary of
  /// rts/SchedFormat.h. The underlying computation (all random draws) is
  /// identical to the direct rendering, which is what makes
  /// scheduled-vs-direct a differential oracle.
  bool Scheduled = false;
};

/// Generates a self-contained C-- module exporting `main`, deterministic in
/// \p Seed. main takes one bits32 argument and returns one bits32 result.
/// The renderings for DispatchTechnique::CutRuntime / UnwindRuntime expect
/// the CuttingDispatcher / UnwindingDispatcher to service their yields; the
/// other three run without a run-time system.
std::string generateRandomProgram(uint64_t Seed,
                                  const RandomProgramOptions &Opts = {});

/// The exception tags a generated leaf can raise ([RandomRaiseTagBase,
/// RandomRaiseTagBase + RandomRaiseTagCount)). The unwinding rendering
/// emits one descriptor entry and one handler continuation per tag.
inline constexpr unsigned RandomRaiseTagBase = 10;
inline constexpr unsigned RandomRaiseTagCount = 3;

} // namespace cmm

#endif // CMM_COSTMODEL_RANDOMPROGRAM_H
