//===- vm/Vm.cpp - Bytecode dispatch loop ---------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
// Every transition, goes-wrong rule, counter increment, and observer event
// mirrors sem/Machine.cpp exactly — that file is the reference; when the
// two disagree, the walker is right and the differential harness will say
// so. Budget accounting happens at node boundaries (FlagStartsNode), so a
// run split at any step budget agrees with the walker's run/resume split.
//
//===----------------------------------------------------------------------===//

#include "vm/Vm.h"

#include "sem/Observer.h"
#include "support/Assert.h"
#include "support/Casting.h"
#include "syntax/PrimOps.h"

#include <algorithm>

using namespace cmm;

VmMachine::VmMachine(const IrProgram &Prog)
    : VmMachine(Prog, std::make_shared<const CompiledProgram>(
                          compileToBytecode(Prog))) {}

VmMachine::VmMachine(const IrProgram &Prog,
                     std::shared_ptr<const CompiledProgram> Shared)
    : Prog(Prog), CPHold(std::move(Shared)), CP(*CPHold) {
  CodeTable.reserve(Prog.Procs.size());
  for (const auto &P : Prog.Procs) {
    CodeIndex.emplace(P.get(), CodeTable.size());
    CodeTable.push_back(P.get());
  }
  Staging.resize(std::max<uint32_t>(CP.MaxOut, 1));
  for (const CompiledProc &C : CP.Procs) {
    MaxRegs = std::max<uint32_t>(MaxRegs, C.NumRegs);
    MaxSlots = std::max<uint32_t>(MaxSlots, C.NumSlots);
  }
}

void VmMachine::goWrong(std::string Reason, SourceLoc Loc) {
  if (St == MachineStatus::Wrong)
    return; // keep the first reason
  St = MachineStatus::Wrong;
  WrongReason = std::move(Reason);
  WrongLoc = Loc;
  if (Obs)
    Obs->onWrong(*this, WrongReason, WrongLoc);
}

void VmMachine::wrongUnbound(uint16_t Slot, SourceLoc Loc) {
  goWrong("use of unbound variable '" +
              Prog.Names->spelling(Cur->SlotSyms[Slot]) +
              "' (never assigned, or killed along a cut edge)",
          Loc);
}

const Value *VmMachine::rvUnbound(uint16_t Slot, const VmInstr &I,
                                  unsigned Field) {
  // Report at the fused operand's own source location when one was
  // recorded — the walker diagnoses the variable reference, not the
  // consuming expression.
  auto It = Cur->RvSlotLocs.find(uint64_t(Pc) * 4 + Field);
  wrongUnbound(Slot, It != Cur->RvSlotLocs.end() ? It->second : I.Loc);
  return nullptr;
}

Value VmMachine::codeValue(const IrProc *P) const {
  auto It = CodeIndex.find(P);
  assert(It != CodeIndex.end() && "procedure not in this program");
  return Value::code(It->second);
}

const IrProc *VmMachine::decodeCode(const Value &V) const {
  if (!(V.isCode() || V.isBits()) || !Value::rawIsCode(V.Raw))
    return nullptr;
  if ((V.Raw - CodeBase) % CodeStride != 0)
    return nullptr;
  uint64_t Idx = V.codeIndex();
  if (Idx >= CodeTable.size())
    return nullptr;
  return CodeTable[Idx];
}

// decodeCodeIdx and newCont live in Vm.h: both dispatch loops hit them on
// every transfer (resp. every Entry node), and both are a handful of
// instructions once inlined.

const ContRecord *VmMachine::decodeCont(const Value &V) const {
  uint64_t Raw;
  if (V.isCont()) {
    Raw = V.Raw;
  } else if (V.isBits() && Value::rawIsCont(V.Raw)) {
    Raw = V.Raw;
  } else {
    return nullptr;
  }
  if ((Raw - ContBase) % ContStride != 0)
    return nullptr;
  uint64_t Handle = (Raw - ContBase) / ContStride;
  if (Handle >= ContTable.size())
    return nullptr;
  return &ContTable[Handle];
}

std::optional<Value> VmMachine::getGlobal(std::string_view Name) const {
  Symbol Sym = Prog.Names->lookup(Name);
  if (!Sym)
    return std::nullopt;
  const Value *V = GlobalEnv.lookup(Sym);
  if (!V)
    return std::nullopt;
  return *V;
}

void VmMachine::setGlobal(std::string_view Name, const Value &V) {
  Symbol Sym = Prog.Names->lookup(Name);
  assert(Sym && "unknown global");
  GlobalEnv.bind(Sym, V);
}

//===----------------------------------------------------------------------===//
// Start, frames
//===----------------------------------------------------------------------===//

void VmMachine::start(std::string_view ProcName, std::vector<Value> Args) {
  Symbol Sym = Prog.Names->lookup(ProcName);
  if (!Sym) {
    // Match the walker even before any state is reset: a failed start on a
    // fresh machine leaves it Wrong.
    goWrong("unknown start procedure '" + std::string(ProcName) + "'",
            SourceLoc());
    return;
  }

  // Reset all mutable state so the machine can be restarted.
  Stack.clear();
  ContTable.clear();
  GlobalEnv.clear();
  Sigma.clear();
  Mem = Memory();
  NextUid = 1;
  WrongReason.clear();
  St = MachineStatus::Running;

  // Load the static data image (bulk: per-page memcpy, not per-byte).
  if (!Prog.Image.Bytes.empty())
    Mem.storeBytes(Prog.Image.Base, Prog.Image.Bytes.data(),
                   Prog.Image.Bytes.size());
  for (const DataImage::Reloc &R : Prog.Image.Relocs) {
    uint64_t V = 0;
    if (const IrProc *P = Prog.findProc(R.Target)) {
      V = codeValue(P).Raw;
    } else {
      auto It = Prog.DataAddrs.find(R.Target);
      if (It == Prog.DataAddrs.end()) {
        goWrong("unresolved data relocation '" +
                    Prog.Names->spelling(R.Target) + "'",
                SourceLoc());
        return;
      }
      V = It->second;
    }
    Mem.storeBits(R.Addr, TargetInfo::pointerBytes(), V);
  }

  // Zero-initialize the global registers.
  for (const auto &[Name, Ty] : Prog.Globals)
    GlobalEnv.bind(Name, Ty.isFloat() ? Value::flt(Ty.Width, 0)
                                      : Value::bits(Ty.Width, 0));

  const IrProc *P = Prog.findProc(Sym);
  if (!P) {
    goWrong("unknown start procedure '" + Prog.Names->spelling(Sym) + "'",
            SourceLoc());
    return;
  }
  A = std::move(Args);
  enterProc(P, SourceLoc());
  if (Obs && St == MachineStatus::Running)
    Obs->onStart(*this, P);
}

void VmMachine::enterProc(const IrProc *P, SourceLoc Loc) {
  enterProcAt(CP.Index.at(P), P, Loc);
}

void VmMachine::enterProcAt(uint32_t ProcIdx, const IrProc *P,
                            SourceLoc Loc) {
  const CompiledProc &C = CP.Procs[ProcIdx];
  if (!C.HasBody) {
    goWrong("procedure '" + Prog.Names->spelling(P->Name) + "' has no body",
            Loc);
    return;
  }
  Cur = &C;
  CurIdx = ProcIdx;
  CurProc = P;
  Pc = C.EntryPc;
  Uid = NextUid++;
  // Grow-only register files: a file that is ever too small grows straight
  // to the program-wide maximum, so every file (including the recycled ones
  // in FreeFiles) converges to one size and this branch stops firing — the
  // resize was showing up on call-heavy profiles when differently-sized
  // files ping-ponged through FreeFiles. Registers past NumRegs are never
  // read — temporaries are written before use and slot reads are gated on
  // Bound, which is cleared for exactly NumSlots here.
  if (Regs.size() < C.NumRegs) [[unlikely]]
    Regs.resize(MaxRegs);
  if (Bound.size() < C.NumSlots) [[unlikely]]
    Bound.resize(MaxSlots);
  std::fill_n(Bound.begin(), C.NumSlots, 0);
  Sigma.clear();
}

// pushFrame and restoreFrame live in Vm.h: both dispatch loops execute them
// on every call and return, and inlining spares the spill of the loops'
// cached state around an out-of-line call.

//===----------------------------------------------------------------------===//
// Expression slow paths (exact copies of the walker's evaluator)
//===----------------------------------------------------------------------===//

// applyUnary and applyBinary live in Vm.h: they are the hottest slow paths
// of both dispatch loops, and the threaded tier (Threaded.cpp) needs them
// inlined just as this translation unit gets them inlined into exec.

bool VmMachine::applyPrim(Value &Out, unsigned PrimOp, const Value *Args,
                          unsigned Count, SourceLoc Loc) {
  PrimKind K = static_cast<PrimKind>(PrimOp);
  auto WrongZero = [&]() {
    goWrong(std::string("unspecified: ") + primName(K) +
                " with zero divisor (use the %% variant)",
            Loc);
    return false;
  };
  auto NeedBits = [&](unsigned N, unsigned Width) {
    for (unsigned I = 0; I < N; ++I) {
      if (!Args[I].isBits()) {
        goWrong(std::string(primName(K)) +
                    " applied to a floating-point operand",
                Loc);
        return false;
      }
      if (Width != 0 && Args[I].Width != Width) {
        goWrong(std::string(primName(K)) + " applied to a bits" +
                    std::to_string(Args[I].Width) + " operand",
                Loc);
        return false;
      }
    }
    return true;
  };
  auto NeedFloats = [&](unsigned N) {
    for (unsigned I = 0; I < N; ++I)
      if (!Args[I].isFloat()) {
        goWrong(std::string(primName(K)) + " applied to a bit operand", Loc);
        return false;
      }
    return true;
  };
  (void)Count;
  unsigned W = Count == 0 ? 32 : Args[0].Width;
  switch (K) {
  case PrimKind::DivU:
    if (!NeedBits(2, W))
      return false;
    if (Args[1].Raw == 0)
      return WrongZero();
    Out = Value::bits(W, Args[0].Raw / Args[1].Raw);
    return true;
  case PrimKind::ModU:
    if (!NeedBits(2, W))
      return false;
    if (Args[1].Raw == 0)
      return WrongZero();
    Out = Value::bits(W, Args[0].Raw % Args[1].Raw);
    return true;
  case PrimKind::DivS: {
    if (!NeedBits(2, W))
      return false;
    int64_t X = signExtend(Args[0].Raw, W), Y = signExtend(Args[1].Raw, W);
    if (Y == 0)
      return WrongZero();
    if (X == signExtend(signedMin(W), W) && Y == -1) {
      goWrong("unspecified: %divs overflow", Loc);
      return false;
    }
    Out = Value::bits(W, static_cast<uint64_t>(X / Y));
    return true;
  }
  case PrimKind::ModS: {
    if (!NeedBits(2, W))
      return false;
    int64_t X = signExtend(Args[0].Raw, W), Y = signExtend(Args[1].Raw, W);
    if (Y == 0)
      return WrongZero();
    if (X == signExtend(signedMin(W), W) && Y == -1) {
      Out = Value::bits(W, 0);
      return true;
    }
    Out = Value::bits(W, static_cast<uint64_t>(X % Y));
    return true;
  }
  case PrimKind::LtU:
    if (!NeedBits(2, W))
      return false;
    Out = Value::bits(32, Args[0].Raw < Args[1].Raw);
    return true;
  case PrimKind::LeU:
    if (!NeedBits(2, W))
      return false;
    Out = Value::bits(32, Args[0].Raw <= Args[1].Raw);
    return true;
  case PrimKind::GtU:
    if (!NeedBits(2, W))
      return false;
    Out = Value::bits(32, Args[0].Raw > Args[1].Raw);
    return true;
  case PrimKind::GeU:
    if (!NeedBits(2, W))
      return false;
    Out = Value::bits(32, Args[0].Raw >= Args[1].Raw);
    return true;
  case PrimKind::ShrA: {
    if (!NeedBits(2, W))
      return false;
    int64_t X = signExtend(Args[0].Raw, W);
    uint64_t C = Args[1].Raw;
    if (C >= W) {
      Out = Value::bits(W, X < 0 ? ~uint64_t(0) : 0);
      return true;
    }
    Out = Value::bits(W, static_cast<uint64_t>(X >> C));
    return true;
  }
  case PrimKind::Zx64:
    if (!NeedBits(1, 32))
      return false;
    Out = Value::bits(64, Args[0].Raw);
    return true;
  case PrimKind::Sx64:
    if (!NeedBits(1, 32))
      return false;
    Out = Value::bits(64, static_cast<uint64_t>(signExtend(Args[0].Raw, 32)));
    return true;
  case PrimKind::Lo32:
    if (!NeedBits(1, 64))
      return false;
    Out = Value::bits(32, Args[0].Raw);
    return true;
  case PrimKind::Hi32:
    if (!NeedBits(1, 64))
      return false;
    Out = Value::bits(32, Args[0].Raw >> 32);
    return true;
  case PrimKind::FAdd:
    if (!NeedFloats(2))
      return false;
    Out = Value::flt(Args[0].Width, Args[0].F + Args[1].F);
    return true;
  case PrimKind::FSub:
    if (!NeedFloats(2))
      return false;
    Out = Value::flt(Args[0].Width, Args[0].F - Args[1].F);
    return true;
  case PrimKind::FMul:
    if (!NeedFloats(2))
      return false;
    Out = Value::flt(Args[0].Width, Args[0].F * Args[1].F);
    return true;
  case PrimKind::FDiv:
    if (!NeedFloats(2))
      return false;
    Out = Value::flt(Args[0].Width, Args[0].F / Args[1].F);
    return true;
  case PrimKind::FNeg:
    if (!NeedFloats(1))
      return false;
    Out = Value::flt(Args[0].Width, -Args[0].F);
    return true;
  case PrimKind::FEq:
    if (!NeedFloats(2))
      return false;
    Out = Value::bits(32, Args[0].F == Args[1].F);
    return true;
  case PrimKind::FNe:
    if (!NeedFloats(2))
      return false;
    Out = Value::bits(32, Args[0].F != Args[1].F);
    return true;
  case PrimKind::FLt:
    if (!NeedFloats(2))
      return false;
    Out = Value::bits(32, Args[0].F < Args[1].F);
    return true;
  case PrimKind::FLe:
    if (!NeedFloats(2))
      return false;
    Out = Value::bits(32, Args[0].F <= Args[1].F);
    return true;
  case PrimKind::I2F:
    if (!NeedBits(1, 32))
      return false;
    Out = Value::flt(64, static_cast<double>(signExtend(Args[0].Raw, 32)));
    return true;
  case PrimKind::F2I: {
    if (!NeedFloats(1))
      return false;
    double D = Args[0].F;
    if (!(D >= -2147483648.0 && D < 2147483648.0)) {
      goWrong("unspecified: %f2i out of range", Loc);
      return false;
    }
    Out = Value::bits(32, static_cast<uint64_t>(static_cast<int64_t>(D)));
    return true;
  }
  }
  cmm_unreachable("unknown primitive kind");
}

//===----------------------------------------------------------------------===//
// The dispatch loop
//===----------------------------------------------------------------------===//

template <bool Observed> void VmMachine::exec(uint64_t &Budget) {
  if (St != MachineStatus::Running)
    return;
  // Hot-loop invariant: Code == Cur->Code.data(). Refreshed after every
  // operation that can change the current compiled procedure.
  const VmInstr *Code = Cur->Code.data();

  // Reads a fused operand: a constant-pool value, an always-defined
  // expression temporary, or a frame slot (bound-checked — the compiler
  // fuses slots only where the walker's check would run at this point).
  // Returns null after going wrong. The pointer is invalidated by frame
  // pushes and pops; transfer ops copy the Value out first.
  auto ReadOperand = [&](uint16_t Enc, const VmInstr &I,
                         unsigned Field) -> const Value * {
    if (Enc & OperandConst)
      return &Cur->Consts[Enc & OperandIndexMask];
    if (Enc < Cur->NumSlots && !Bound[Enc]) [[unlikely]]
      return rvUnbound(Enc, I, Field);
    return &Regs[Enc];
  };
  // Result routing for value producers: a register (binding the slot when
  // the instruction is an Assign's retargeted tail) or a staging cell.
  auto StoreValue = [&](const VmInstr &I, const Value &V) {
    if (I.Flags & FlagStagesOut) {
      Staging[I.A] = V;
      return;
    }
    Regs[I.A] = V;
    if (I.Flags & FlagSetsBound)
      Bound[I.A] = 1;
  };

  while (St == MachineStatus::Running) {
    const VmInstr &I = Code[Pc];
    if (I.Flags & FlagStartsNode) {
      if (Budget == 0)
        return; // step budget exhausted at a node boundary
      --Budget;
      if (I.K != Op::YieldOp) {
        // Yield suspensions are not transitions (the walker un-counts
        // them), so neither Steps nor onStep fires for them.
        ++S.Steps;
        if constexpr (Observed)
          Obs->onStep(*this, I.N);
      }
    }

    switch (I.K) {
    case Op::LoadConst: {
      StoreValue(I, Cur->Consts[I.Imm]);
      ++Pc;
      break;
    }
    case Op::LoadLocal: {
      if (!Bound[I.B]) {
        wrongUnbound(I.B, I.Loc);
        break;
      }
      StoreValue(I, Regs[I.B]);
      ++Pc;
      break;
    }
    case Op::LoadGlobal: {
      const Value *V = GlobalEnv.lookup(Cur->Syms[I.Imm]);
      if (!V) {
        goWrong("use of unknown global '" +
                    Prog.Names->spelling(Cur->Syms[I.Imm]) + "'",
                I.Loc);
        break;
      }
      StoreValue(I, *V);
      ++Pc;
      break;
    }
    case Op::LoadNameDyn: {
      const Value *V = GlobalEnv.lookup(Cur->Syms[I.Imm]);
      if (!V) {
        goWrong("unresolved name '" +
                    Prog.Names->spelling(Cur->Syms[I.Imm]) + "'",
                I.Loc);
        break;
      }
      StoreValue(I, *V);
      ++Pc;
      break;
    }
    case Op::Unary: {
      const Value *B = ReadOperand(I.B, I, 1);
      if (!B)
        break;
      Value Out;
      if (!applyUnary(Out, *B, I.Imm))
        break;
      StoreValue(I, Out);
      ++Pc;
      break;
    }
    case Op::Binary: {
      const Value *B = ReadOperand(I.B, I, 1);
      if (!B)
        break;
      const Value *C = ReadOperand(I.C, I, 2);
      if (!C)
        break;
      Value Out;
      if (!applyBinary(Out, *B, *C, I.Imm, I.Loc))
        break;
      StoreValue(I, Out);
      ++Pc;
      break;
    }
    case Op::Prim: {
      unsigned Count = I.Imm >> 16;
      Value Args[2];
      if (Count > 0) {
        const Value *P = ReadOperand(I.B, I, 1);
        if (!P)
          break;
        Args[0] = *P;
      }
      if (Count > 1) {
        const Value *P = ReadOperand(I.C, I, 2);
        if (!P)
          break;
        Args[1] = *P;
      }
      Value Out;
      if (!applyPrim(Out, I.Imm & 0xffff, Args, Count, I.Loc))
        break;
      StoreValue(I, Out);
      ++Pc;
      break;
    }
    case Op::MemLoad: {
      const Value *B = ReadOperand(I.B, I, 1);
      if (!B)
        break;
      ++S.Loads; // after the address check, like the walker
      unsigned W = I.Imm >> 1;
      uint64_t Addr = B->Raw;
      StoreValue(I, (I.Imm & 1) ? Value::flt(W, Mem.loadFloat(Addr, W / 8))
                                : Value::bits(W, Mem.loadBits(Addr, W / 8)));
      ++Pc;
      break;
    }
    case Op::Wrong: {
      goWrong(Cur->Msgs[I.Imm], I.Loc);
      break;
    }
    case Op::SetGlobal: {
      const Value *B = ReadOperand(I.B, I, 1);
      if (!B)
        break;
      GlobalEnv.bind(Cur->Syms[I.Imm], *B);
      ++Pc;
      break;
    }
    case Op::MemStore: {
      const Value *AddrV = ReadOperand(I.A, I, 0);
      if (!AddrV)
        break;
      const Value *B = ReadOperand(I.B, I, 1);
      if (!B)
        break;
      ++S.Stores; // after both operand checks, like the walker
      unsigned W = I.Imm >> 1;
      uint64_t Addr = AddrV->Raw;
      if (I.Imm & 1)
        Mem.storeFloat(Addr, W / 8, B->F);
      else
        Mem.storeBits(Addr, W / 8, B->Raw);
      ++Pc;
      break;
    }
    case Op::StageOut: {
      const Value *B = ReadOperand(I.B, I, 1);
      if (!B)
        break;
      Staging[I.Imm] = *B;
      ++Pc;
      break;
    }
    case Op::Commit: {
      A.assign(Staging.begin(), Staging.begin() + I.Imm);
      ++Pc;
      break;
    }
    case Op::CopyIn: {
      const std::vector<CopyDest> &Plan = Cur->CopyPlans[I.Imm];
      if (A.size() < Plan.size()) {
        goWrong("too few values in the argument-passing area: need " +
                    std::to_string(Plan.size()) + ", have " +
                    std::to_string(A.size()),
                I.Loc);
        break;
      }
      for (size_t J = 0; J < Plan.size(); ++J) {
        const CopyDest &D = Plan[J];
        if (D.Global) {
          GlobalEnv.bind(D.Sym, A[J]);
        } else {
          Regs[D.Slot] = A[J];
          Bound[D.Slot] = 1;
        }
      }
      A.clear(); // CopyIn replaces A by the empty list
      ++Pc;
      break;
    }
    case Op::CalleeSaves: {
      const std::vector<uint16_t> &Saved = Cur->SavePlans[I.Imm];
      for (uint16_t V : Saved)
        if (std::find(Sigma.begin(), Sigma.end(), V) == Sigma.end())
          ++S.CalleeSaveMoves;
      for (uint16_t V : Sigma)
        if (std::find(Saved.begin(), Saved.end(), V) == Saved.end())
          ++S.CalleeSaveMoves;
      Sigma = Saved;
      ++Pc;
      break;
    }
    case Op::EntryOp: {
      // Entry binds the procedure's continuations into an empty
      // environment; the incoming environment is discarded.
      std::fill_n(Bound.begin(), Cur->NumSlots, 0);
      Sigma.clear();
      for (const auto &[Slot, Target] : Cur->EntryPlans[I.Imm]) {
        uint64_t Handle = newCont(Target);
        Regs[Slot] = Value::cont(Handle);
        Bound[Slot] = 1;
      }
      ++Pc;
      break;
    }
    case Op::Goto:
      Pc = I.Imm;
      break;
    case Op::BranchIf: {
      const Value *B = ReadOperand(I.B, I, 1);
      if (!B)
        break;
      Pc = B->isTruthy() ? I.Imm : Pc + 1;
      break;
    }
    case Op::BranchCmp: {
      const Value *B = ReadOperand(I.B, I, 1);
      if (!B)
        break;
      const Value *C = ReadOperand(I.C, I, 2);
      if (!C)
        break;
      Value Out;
      if (!applyBinary(Out, *B, *C, I.A, I.Loc))
        break;
      Pc = Out.isTruthy() ? I.Imm : Pc + 1;
      break;
    }
    case Op::ExitOp: {
      unsigned ContIndex = I.A, AltCount = I.B;
      if (Stack.empty()) {
        if (ContIndex == 0 && AltCount == 0) {
          St = MachineStatus::Halted; // terminated normally
          if constexpr (Observed)
            Obs->onHalt(*this);
        } else {
          goWrong("abnormal return with an empty stack", I.Loc);
        }
        break;
      }
      VmFrame F = std::move(Stack.back());
      Stack.pop_back();
      const ContBundle &B = F.CallSite->Bundle;
      if (B.ReturnsTo.size() != size_t(AltCount) + 1) {
        goWrong("return <" + std::to_string(ContIndex) + "/" +
                    std::to_string(AltCount) + "> at a call site with " +
                    std::to_string(B.ReturnsTo.size() - 1) +
                    " alternate return continuations",
                I.Loc);
        break;
      }
      if (ContIndex >= B.ReturnsTo.size()) {
        goWrong("return continuation index out of range", I.Loc);
        break;
      }
      const IrProc *Callee = CurProc;
      restoreFrame(F);
      Pc = pcOf(*Cur, B.ReturnsTo[ContIndex]);
      Code = Cur->Code.data();
      ++S.Returns;
      if constexpr (Observed)
        Obs->onReturn(*this, F.CallSite, Callee, CurProc, ContIndex);
      break;
    }
    case Op::CallOp: {
      const Value *CalleeV = ReadOperand(I.B, I, 1);
      if (!CalleeV)
        break;
      const Value Callee = *CalleeV; // pushFrame moves Regs out
      const int64_t TargetIdx = decodeCodeIdx(Callee);
      if (TargetIdx < 0) {
        goWrong("call target is not code (" + Callee.str() + ")", I.Loc);
        break;
      }
      const IrProc *Target = CodeTable[TargetIdx];
      const auto *CN = cast<CallNode>(I.N);
      const IrProc *Caller = CurProc;
      pushFrame(CN);
      enterProcAt(uint32_t(TargetIdx), Target, I.Loc);
      Code = Cur->Code.data();
      ++S.Calls;
      if constexpr (Observed)
        Obs->onCall(*this, CN, Caller, Target);
      break;
    }
    case Op::JumpOp: {
      const Value *CalleeV = ReadOperand(I.B, I, 1);
      if (!CalleeV)
        break;
      const Value Callee = *CalleeV; // enterProc may grow Regs
      const int64_t TargetIdx = decodeCodeIdx(Callee);
      if (TargetIdx < 0) {
        goWrong("jump target is not code (" + Callee.str() + ")", I.Loc);
        break;
      }
      const IrProc *Target = CodeTable[TargetIdx];
      // Tail call: the caller's resources are deallocated before the call;
      // the continuation bundle on the stack is reused.
      const IrProc *Caller = CurProc;
      enterProcAt(uint32_t(TargetIdx), Target, I.Loc);
      Code = Cur->Code.data();
      ++S.Jumps;
      if constexpr (Observed)
        Obs->onJump(*this, cast<JumpNode>(I.N), Caller, Target);
      break;
    }
    case Op::CutToOp: {
      const Value *ContV = ReadOperand(I.B, I, 1);
      if (!ContV)
        break;
      const Value Cont = *ContV; // doCutTo pops frames under the operand
      doCutTo(Cont, cast<CutToNode>(I.N));
      Code = Cur->Code.data();
      break;
    }
    case Op::YieldOp: {
      ++S.Yields;
      St = MachineStatus::Suspended;
      if constexpr (Observed)
        Obs->onYield(*this);
      break;
    }
    }
  }
}

template void VmMachine::exec<true>(uint64_t &);
template void VmMachine::exec<false>(uint64_t &);

MachineStatus VmMachine::run(uint64_t MaxSteps) {
  uint64_t Budget = MaxSteps;
  if (Obs)
    exec<true>(Budget);
  else
    exec<false>(Budget);
  return St;
}

bool VmMachine::step() {
  if (St != MachineStatus::Running)
    return false;
  uint64_t Budget = 1;
  if (Obs)
    exec<true>(Budget);
  else
    exec<false>(Budget);
  return St == MachineStatus::Running;
}

//===----------------------------------------------------------------------===//
// Cuts
//===----------------------------------------------------------------------===//

bool VmMachine::doCutTo(const Value &ContVal, const CutToNode *FromNode) {
  SourceLoc Loc = FromNode ? FromNode->Loc : SourceLoc();
  const ContRecord *Rec = decodeCont(ContVal);
  if (!Rec) {
    goWrong("cut to a value that is not a continuation (" + ContVal.str() +
                ")",
            Loc);
    return false;
  }

  // Cut to a continuation of the current activation: permitted only when
  // the cut to statement itself carries an `also cuts to` naming it.
  if (FromNode && Rec->Uid == Uid) {
    bool Listed = std::find(FromNode->AlsoCutsTo.begin(),
                            FromNode->AlsoCutsTo.end(),
                            Rec->Target) != FromNode->AlsoCutsTo.end();
    if (!Listed) {
      goWrong("cut to a continuation of the current activation that is not "
              "named in this statement's also cuts to",
              Loc);
      return false;
    }
    for (uint16_t V : Sigma) // callee-saves values are not restored by a cut
      Bound[V] = 0;
    Sigma.clear();
    Pc = pcOf(*Cur, Rec->Target);
    ++S.Cuts;
    if (Obs)
      Obs->onCut(*this, FromNode, Rec->Proc, 0, /*SameActivation=*/true);
    return true;
  }

  // Remove activations until the target's frame is on top. Each removed
  // frame's suspended call must be annotated `also aborts`.
  uint64_t Discarded = 0;
  while (!Stack.empty() && Stack.back().Uid != Rec->Uid) {
    if (!Stack.back().CallSite->Bundle.Abort) {
      goWrong("cut truncates the stack past a call site that lacks an "
              "also aborts annotation",
              Loc);
      return false;
    }
    if (Obs)
      Obs->onCutFrameDiscarded(*this, Stack.back().CallSite,
                               Stack.back().Proc);
    FreeFiles.emplace_back(std::move(Stack.back().Regs),
                           std::move(Stack.back().Bound));
    Stack.pop_back();
    ++S.FramesCutOver;
    ++Discarded;
  }
  if (Stack.empty()) {
    goWrong("cut to a dead continuation (its activation is no longer on "
            "the stack)",
            Loc);
    return false;
  }

  VmFrame F = std::move(Stack.back());
  Stack.pop_back();
  const ContBundle &B = F.CallSite->Bundle;
  if (std::find(B.CutsTo.begin(), B.CutsTo.end(), Rec->Target) ==
      B.CutsTo.end()) {
    goWrong("cut to a continuation that is not listed in the suspended "
            "call site's also cuts to",
            Loc);
    return false;
  }
  restoreFrame(F);
  for (uint16_t V : Sigma) // cuts do not restore callee-saves registers
    Bound[V] = 0;
  Sigma.clear();
  Pc = pcOf(*Cur, Rec->Target);
  ++S.Cuts;
  if (Obs)
    Obs->onCut(*this, FromNode, Rec->Proc, Discarded,
               /*SameActivation=*/false);
  return true;
}

//===----------------------------------------------------------------------===//
// Run-time-system substrate (the checked Yield transitions)
//===----------------------------------------------------------------------===//

bool VmMachine::rtUnwindTop(size_t Count) {
  if (St != MachineStatus::Suspended) {
    goWrong("run-time system acted on a machine that is not suspended",
            SourceLoc());
    return false;
  }
  for (size_t I = 0; I < Count; ++I) {
    if (Stack.empty()) {
      goWrong("run-time system unwound past the bottom of the stack",
              SourceLoc());
      return false;
    }
    if (!Stack.back().CallSite->Bundle.Abort) {
      goWrong("run-time system unwound past a call site that lacks an "
              "also aborts annotation",
              Stack.back().CallSite->Loc);
      return false;
    }
    if (Obs)
      Obs->onUnwindPop(*this, Stack.back().CallSite, Stack.back().Proc,
                       /*Resumed=*/false);
    FreeFiles.emplace_back(std::move(Stack.back().Regs),
                           std::move(Stack.back().Bound));
    Stack.pop_back();
    ++S.UnwindPops;
  }
  return true;
}

bool VmMachine::rtResume(const ResumeChoice &Choice,
                         std::vector<Value> Params) {
  if (St != MachineStatus::Suspended) {
    goWrong("run-time system resumed a machine that is not suspended",
            SourceLoc());
    return false;
  }
  std::optional<unsigned> Expected = resumeParamCount(Choice);
  if (!Expected) {
    goWrong("run-time system chose an invalid resumption continuation",
            SourceLoc());
    return false;
  }
  if (Params.size() != *Expected) {
    goWrong("run-time system passed " + std::to_string(Params.size()) +
                " continuation parameters where " +
                std::to_string(*Expected) + " are expected",
            SourceLoc());
    return false;
  }

  if (Choice.K == ResumeChoice::Kind::Cut) {
    St = MachineStatus::Running; // doCutTo acts from the running state
    if (!doCutTo(Choice.ContValue, nullptr))
      return false;
    A = std::move(Params);
    return true;
  }

  if (Stack.empty()) {
    goWrong("run-time system resumed with an empty stack", SourceLoc());
    return false;
  }
  VmFrame F = std::move(Stack.back());
  Stack.pop_back();
  const ContBundle &B = F.CallSite->Bundle;
  Node *Target = Choice.K == ResumeChoice::Kind::Return
                     ? B.ReturnsTo[Choice.Index]
                     : B.UnwindsTo[Choice.Index];
  // This transition restores callee-saves registers: the full saved
  // environment comes back.
  restoreFrame(F);
  Pc = pcOf(*Cur, Target);
  A = std::move(Params);
  if (Choice.K == ResumeChoice::Kind::Unwind) {
    ++S.UnwindPops;
    if (Obs)
      Obs->onUnwindPop(*this, F.CallSite, F.Proc, /*Resumed=*/true);
  }
  St = MachineStatus::Running;
  if (Obs)
    Obs->onResume(*this, Choice.K, Choice.Index);
  return true;
}
