//===- vm/Vm.h - Bytecode executor for Abstract C-- -------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bytecode VM: compiles the checked IR to the register bytecode of
/// vm/Bytecode.h (once, at construction) and runs it in a dispatch loop.
/// Observable semantics are identical to the reference tree walker
/// (sem/Machine.h): the seven-component state, every goes-wrong rule with
/// the same diagnostic strings, Suspended at Yield nodes, the Table 1
/// run-time substrate, the same Stats counters, and MachineObserver events
/// at the same sites. docs/BYTECODE.md carries the preservation argument;
/// costmodel/DiffHarness.h cross-checks the two executors on every seed.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_VM_VM_H
#define CMM_VM_VM_H

#include "sem/Env.h"
#include "sem/Executor.h"
#include "vm/Bytecode.h"

namespace cmm {

/// One suspended activation: the walker's (Γ, ρ, σ, uid) with ρ as a
/// register file plus bound flags instead of a symbol map.
struct VmFrame {
  const CallNode *CallSite = nullptr;
  const IrProc *Proc = nullptr;
  const CompiledProc *Compiled = nullptr;
  std::vector<Value> Regs;
  std::vector<uint8_t> Bound; ///< per-slot definedness (the domain of ρ)
  std::vector<uint16_t> Sigma;
  uint64_t Uid = 0;
};

/// The bytecode executor. One VmMachine is one C-- thread.
class VmMachine final : public Executor {
public:
  explicit VmMachine(const IrProgram &Prog);

  /// Shares pre-compiled bytecode (the engine's artifact cache compiles
  /// once and hands the same CompiledProgram to every VM over the same
  /// program). \p Shared must be non-null and compiled from \p Prog.
  VmMachine(const IrProgram &Prog, std::shared_ptr<const CompiledProgram> Shared);

  std::string_view backendName() const override { return "vm"; }

  void start(std::string_view ProcName, std::vector<Value> Args = {}) override;

  MachineStatus status() const override { return St; }

  bool step() override;
  MachineStatus run(uint64_t MaxSteps = ~uint64_t(0)) override;

  const std::vector<Value> &argArea() const override { return A; }
  const std::string &wrongReason() const override { return WrongReason; }
  SourceLoc wrongLoc() const override { return WrongLoc; }

  const Stats &stats() const override { return S; }
  void resetStats() override { S.reset(); }

  void setObserver(MachineObserver *O) override { Obs = O; }
  MachineObserver *observer() const override { return Obs; }

  Memory &memory() override { return Mem; }
  const Memory &memory() const override { return Mem; }
  const IrProgram &program() const override { return Prog; }

  std::optional<Value> getGlobal(std::string_view Name) const override;
  void setGlobal(std::string_view Name, const Value &V) override;

  Value codeValue(const IrProc *P) const override;
  const ContRecord *decodeCont(const Value &V) const override;

  size_t stackDepth() const override { return Stack.size(); }
  const CallNode *frameCallSite(size_t I) const override {
    return Stack[Stack.size() - 1 - I].CallSite;
  }
  const IrProc *frameProc(size_t I) const override {
    return Stack[Stack.size() - 1 - I].Proc;
  }
  const IrProc *currentProc() const override { return CurProc; }

  bool rtUnwindTop(size_t Count) override;
  bool rtResume(const ResumeChoice &Choice, std::vector<Value> Params) override;

  /// The compiled form (for cmmi --dump-bytecode and tests).
  const CompiledProgram &compiled() const { return CP; }

private:
  template <bool Observed> void exec(uint64_t &Budget);

  void goWrong(std::string Reason, SourceLoc Loc);
  void wrongUnbound(uint16_t Slot, SourceLoc Loc);
  /// Failure path of a fused-operand read; kept out of line so its
  /// RvSlotLocs lookup does not bloat the 16 inlined call sites in the
  /// dispatch loop. Always returns null.
  const Value *rvUnbound(uint16_t Slot, const VmInstr &I, unsigned Field);
  void enterProc(const IrProc *P, SourceLoc Loc);
  void pushFrame(const CallNode *Site);
  void restoreFrame(VmFrame &F);
  bool doCutTo(const Value &ContVal, const CutToNode *FromNode);
  const IrProc *decodeCode(const Value &V) const;
  uint64_t newCont(Node *Target);
  uint32_t pcOf(const CompiledProc &C, const Node *N) const {
    return C.PcOfNode[N->Id];
  }

  // Shared slow paths of the dispatch loop (exact walker semantics).
  bool applyUnary(Value &Out, const Value &V, unsigned OpKind);
  bool applyBinary(Value &Out, const Value &L, const Value &R,
                   unsigned OpKind, SourceLoc Loc);
  bool applyPrim(Value &Out, unsigned PrimOp, const Value *Args,
                 unsigned Count, SourceLoc Loc);

  const IrProgram &Prog;
  /// Owns the bytecode (solely, or jointly with an artifact cache and
  /// other VMs; CompiledProgram is immutable after compilation, so
  /// sharing is safe). CP is the alias the hot paths read through.
  std::shared_ptr<const CompiledProgram> CPHold;
  const CompiledProgram &CP;

  // The seven state components (p as a pc into the current compiled proc;
  // ρ as Regs+Bound; σ as slot indices).
  uint32_t Pc = 0;
  std::vector<Value> Regs;
  std::vector<uint8_t> Bound;
  std::vector<uint16_t> Sigma;
  uint64_t Uid = 0;
  Memory Mem;
  std::vector<Value> A;
  std::vector<VmFrame> Stack;

  // Bookkeeping beyond the formal state.
  const CompiledProc *Cur = nullptr;
  const IrProc *CurProc = nullptr;
  Env GlobalEnv;
  uint64_t NextUid = 1;
  std::vector<ContRecord> ContTable;
  std::unordered_map<const IrProc *, uint64_t> CodeIndex;
  std::vector<const IrProc *> CodeTable;
  std::vector<Value> Staging;
  /// Recycled (Regs, Bound) pairs so calls do not allocate in steady state.
  std::vector<std::pair<std::vector<Value>, std::vector<uint8_t>>> FreeFiles;
  MachineStatus St = MachineStatus::Idle;
  std::string WrongReason;
  SourceLoc WrongLoc;
  Stats S;
  MachineObserver *Obs = nullptr;
};

} // namespace cmm

#endif // CMM_VM_VM_H
