//===- vm/Vm.h - Bytecode executor for Abstract C-- -------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bytecode VM: compiles the checked IR to the register bytecode of
/// vm/Bytecode.h (once, at construction) and runs it in a dispatch loop.
/// Observable semantics are identical to the reference tree walker
/// (sem/Machine.h): the seven-component state, every goes-wrong rule with
/// the same diagnostic strings, Suspended at Yield nodes, the Table 1
/// run-time substrate, the same Stats counters, and MachineObserver events
/// at the same sites. docs/BYTECODE.md carries the preservation argument;
/// costmodel/DiffHarness.h cross-checks the two executors on every seed.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_VM_VM_H
#define CMM_VM_VM_H

#include "sem/Env.h"
#include "sem/Executor.h"
#include "support/Assert.h"
#include "support/Bits.h"
#include "vm/Bytecode.h"

namespace cmm {

/// One suspended activation: the walker's (Γ, ρ, σ, uid) with ρ as a
/// register file plus bound flags instead of a symbol map.
struct VmFrame {
  const CallNode *CallSite = nullptr;
  const IrProc *Proc = nullptr;
  const CompiledProc *Compiled = nullptr;
  uint32_t CompiledIdx = 0; ///< dense index of Compiled in CP.Procs
  std::vector<Value> Regs;
  std::vector<uint8_t> Bound; ///< per-slot definedness (the domain of ρ)
  std::vector<uint16_t> Sigma;
  uint64_t Uid = 0;
};

/// The bytecode executor. One VmMachine is one C-- thread. The threaded
/// tier (vm/Threaded.h) derives from it: everything except the dispatch
/// loop itself — frames, cuts, the run-time substrate, the expression slow
/// paths — is shared, so the two tiers cannot drift apart anywhere but the
/// loop.
class VmMachine : public Executor {
public:
  explicit VmMachine(const IrProgram &Prog);

  /// Shares pre-compiled bytecode (the engine's artifact cache compiles
  /// once and hands the same CompiledProgram to every VM over the same
  /// program). \p Shared must be non-null and compiled from \p Prog.
  VmMachine(const IrProgram &Prog, std::shared_ptr<const CompiledProgram> Shared);

  std::string_view backendName() const override { return "vm"; }

  void start(std::string_view ProcName, std::vector<Value> Args = {}) override;

  MachineStatus status() const override { return St; }

  bool step() override;
  MachineStatus run(uint64_t MaxSteps = ~uint64_t(0)) override;

  const std::vector<Value> &argArea() const override { return A; }
  const std::string &wrongReason() const override { return WrongReason; }
  SourceLoc wrongLoc() const override { return WrongLoc; }

  const Stats &stats() const override { return S; }
  void resetStats() override { S.reset(); }

  void setObserver(MachineObserver *O) override { Obs = O; }
  MachineObserver *observer() const override { return Obs; }

  Memory &memory() override { return Mem; }
  const Memory &memory() const override { return Mem; }
  const IrProgram &program() const override { return Prog; }

  std::optional<Value> getGlobal(std::string_view Name) const override;
  void setGlobal(std::string_view Name, const Value &V) override;

  Value codeValue(const IrProc *P) const override;
  const ContRecord *decodeCont(const Value &V) const override;

  size_t stackDepth() const override { return Stack.size(); }
  const CallNode *frameCallSite(size_t I) const override {
    return Stack[Stack.size() - 1 - I].CallSite;
  }
  const IrProc *frameProc(size_t I) const override {
    return Stack[Stack.size() - 1 - I].Proc;
  }
  const IrProc *currentProc() const override { return CurProc; }

  bool rtUnwindTop(size_t Count) override;
  bool rtResume(const ResumeChoice &Choice, std::vector<Value> Params) override;

  /// The compiled form (for cmmi --dump-bytecode and tests).
  const CompiledProgram &compiled() const { return CP; }

private:
  template <bool Observed> void exec(uint64_t &Budget);

protected:
#if defined(__GNUC__) || defined(__clang__)
#define CMM_VM_INLINE __attribute__((always_inline)) inline
#else
#define CMM_VM_INLINE inline
#endif

  void goWrong(std::string Reason, SourceLoc Loc);
  void wrongUnbound(uint16_t Slot, SourceLoc Loc);
  /// Failure path of a fused-operand read; kept out of line so its
  /// RvSlotLocs lookup does not bloat the 16 inlined call sites in the
  /// dispatch loop. Always returns null.
  const Value *rvUnbound(uint16_t Slot, const VmInstr &I, unsigned Field);
  void enterProc(const IrProc *P, SourceLoc Loc);
  // The per-call/per-return frame shuffles: forced inline so the dispatch
  // loops keep their cached state in registers across them (GCC declines
  // the inline at -O2, and the out-of-line call spills on every transfer).
  CMM_VM_INLINE void pushFrame(const CallNode *Site);
  CMM_VM_INLINE void restoreFrame(VmFrame &F);
  bool doCutTo(const Value &ContVal, const CutToNode *FromNode);
  const IrProc *decodeCode(const Value &V) const;
  /// decodeCode, but yielding the dense procedure index (-1 when \p V is
  /// not a valid code value). CodeTable and CP.Procs share IrProgram::Procs
  /// order, so one index addresses both; the dispatch loops resolve call
  /// and jump targets through it without byProc's hash lookup.
  int64_t decodeCodeIdx(const Value &V) const;
  /// enterProc for a target already resolved to its dense index.
  void enterProcAt(uint32_t ProcIdx, const IrProc *P, SourceLoc Loc);
  uint64_t newCont(Node *Target);
  uint32_t pcOf(const CompiledProc &C, const Node *N) const {
    return C.PcOfNode[N->Id];
  }

  // Shared slow paths of the dispatch loop (exact walker semantics).
  // applyUnary/applyBinary are defined inline below: both the VM's switch
  // loop and the threaded tier's loop (a separate translation unit) must be
  // able to inline them — they dominate expression-heavy workloads.
  bool applyUnary(Value &Out, const Value &V, unsigned OpKind);
  bool applyBinary(Value &Out, const Value &L, const Value &R,
                   unsigned OpKind, SourceLoc Loc);
  bool applyPrim(Value &Out, unsigned PrimOp, const Value *Args,
                 unsigned Count, SourceLoc Loc);

  const IrProgram &Prog;
  /// Owns the bytecode (solely, or jointly with an artifact cache and
  /// other VMs; CompiledProgram is immutable after compilation, so
  /// sharing is safe). CP is the alias the hot paths read through.
  std::shared_ptr<const CompiledProgram> CPHold;
  const CompiledProgram &CP;

  // The seven state components (p as a pc into the current compiled proc;
  // ρ as Regs+Bound; σ as slot indices).
  uint32_t Pc = 0;
  std::vector<Value> Regs;
  std::vector<uint8_t> Bound;
  std::vector<uint16_t> Sigma;
  uint64_t Uid = 0;
  Memory Mem;
  std::vector<Value> A;
  std::vector<VmFrame> Stack;

  // Bookkeeping beyond the formal state.
  const CompiledProc *Cur = nullptr;
  /// Dense index of Cur in CP.Procs (== index of CurProc in Prog.Procs and
  /// CodeTable). The threaded tier's reload path addresses its parallel
  /// per-proc tables through it without a pointer-difference division.
  uint32_t CurIdx = 0;
  const IrProc *CurProc = nullptr;
  Env GlobalEnv;
  uint64_t NextUid = 1;
  std::vector<ContRecord> ContTable;
  std::unordered_map<const IrProc *, uint64_t> CodeIndex;
  std::vector<const IrProc *> CodeTable;
  std::vector<Value> Staging;
  /// Program-wide maxima of CompiledProc::NumRegs/NumSlots: register files
  /// grow straight to these so recycling never resizes (enterProcAt).
  uint32_t MaxRegs = 0, MaxSlots = 0;
  /// Recycled (Regs, Bound) pairs so calls do not allocate in steady state.
  std::vector<std::pair<std::vector<Value>, std::vector<uint8_t>>> FreeFiles;
  MachineStatus St = MachineStatus::Idle;
  std::string WrongReason;
  SourceLoc WrongLoc;
  Stats S;
  MachineObserver *Obs = nullptr;
};

inline int64_t VmMachine::decodeCodeIdx(const Value &V) const {
  if (!(V.isCode() || V.isBits()) || !Value::rawIsCode(V.Raw))
    return -1;
  if ((V.Raw - CodeBase) % CodeStride != 0)
    return -1;
  uint64_t Idx = V.codeIndex();
  if (Idx >= CodeTable.size())
    return -1;
  return int64_t(Idx);
}

inline uint64_t VmMachine::newCont(Node *Target) {
  ContTable.push_back({Target, Uid, CurProc});
  ++S.ContsBound;
  return ContTable.size() - 1;
}

inline void VmMachine::pushFrame(const CallNode *Site) {
  VmFrame &F = Stack.emplace_back(); // built in place: no temporary to move
  F.CallSite = Site;
  F.Proc = CurProc;
  F.Compiled = Cur;
  F.CompiledIdx = CurIdx;
  F.Uid = Uid;
  F.Regs = std::move(Regs);
  F.Bound = std::move(Bound);
  F.Sigma = std::move(Sigma);
  if (!FreeFiles.empty()) {
    Regs = std::move(FreeFiles.back().first);
    Bound = std::move(FreeFiles.back().second);
    FreeFiles.pop_back();
  } else {
    Regs = {};
    Bound = {};
  }
  Sigma.clear();
  S.MaxStackDepth = std::max<uint64_t>(S.MaxStackDepth, Stack.size());
}

inline void VmMachine::restoreFrame(VmFrame &F) {
  FreeFiles.emplace_back(std::move(Regs), std::move(Bound));
  Regs = std::move(F.Regs);
  Bound = std::move(F.Bound);
  Sigma = std::move(F.Sigma);
  Uid = F.Uid;
  CurProc = F.Proc;
  Cur = F.Compiled;
  CurIdx = F.CompiledIdx;
}

inline bool VmMachine::applyUnary(Value &Out, const Value &V,
                                  unsigned OpKind) {
  switch (static_cast<UnOp>(OpKind)) {
  case UnOp::Neg:
    Out = V.isFloat() ? Value::flt(V.Width, -V.F)
                      : Value::bits(V.Width, 0 - V.Raw);
    return true;
  case UnOp::Com:
    Out = Value::bits(V.Width, ~V.Raw);
    return true;
  case UnOp::Not:
    Out = Value::bits(32, V.Raw == 0 ? 1 : 0);
    return true;
  }
  cmm_unreachable("unknown unary operator");
}

inline bool VmMachine::applyBinary(Value &Out, const Value &L, const Value &R,
                                   unsigned OpKind, SourceLoc Loc) {
  BinOp Op = static_cast<BinOp>(OpKind);
  if (L.isFloat() || R.isFloat()) [[unlikely]] {
    if (!(L.isFloat() && R.isFloat())) {
      goWrong("mixed floating-point and bit operands", Loc);
      return false;
    }
    double X = L.F, Y = R.F;
    switch (Op) {
    case BinOp::Add: Out = Value::flt(L.Width, X + Y); return true;
    case BinOp::Sub: Out = Value::flt(L.Width, X - Y); return true;
    case BinOp::Mul: Out = Value::flt(L.Width, X * Y); return true;
    case BinOp::Div: Out = Value::flt(L.Width, X / Y); return true;
    case BinOp::Eq: Out = Value::bits(32, X == Y); return true;
    case BinOp::Ne: Out = Value::bits(32, X != Y); return true;
    case BinOp::LtS: Out = Value::bits(32, X < Y); return true;
    case BinOp::LeS: Out = Value::bits(32, X <= Y); return true;
    case BinOp::GtS: Out = Value::bits(32, X > Y); return true;
    case BinOp::GeS: Out = Value::bits(32, X >= Y); return true;
    default:
      goWrong("bit operation on floating-point operands", Loc);
      return false;
    }
  }

  unsigned W = L.Width;
  uint64_t X = L.Raw, Y = R.Raw;
  int64_t SX = signExtend(X, W), SY = signExtend(Y, W);
  switch (Op) {
  case BinOp::Add: Out = Value::bits(W, X + Y); return true;
  case BinOp::Sub: Out = Value::bits(W, X - Y); return true;
  case BinOp::Mul: Out = Value::bits(W, X * Y); return true;
  case BinOp::Div:
    if (SY == 0) {
      goWrong("unspecified: signed division by zero (use %%divs for the "
              "checked variant)",
              Loc);
      return false;
    }
    if (SX == signExtend(signedMin(W), W) && SY == -1) {
      goWrong("unspecified: signed division overflow", Loc);
      return false;
    }
    Out = Value::bits(W, static_cast<uint64_t>(SX / SY));
    return true;
  case BinOp::Mod:
    if (SY == 0) {
      goWrong("unspecified: signed modulus by zero (use %%mods for the "
              "checked variant)",
              Loc);
      return false;
    }
    if (SX == signExtend(signedMin(W), W) && SY == -1) {
      Out = Value::bits(W, 0);
      return true;
    }
    Out = Value::bits(W, static_cast<uint64_t>(SX % SY));
    return true;
  case BinOp::And: Out = Value::bits(W, X & Y); return true;
  case BinOp::Or: Out = Value::bits(W, X | Y); return true;
  case BinOp::Xor: Out = Value::bits(W, X ^ Y); return true;
  case BinOp::Shl: Out = Value::bits(W, Y >= W ? 0 : X << Y); return true;
  case BinOp::Shr: Out = Value::bits(W, Y >= W ? 0 : X >> Y); return true;
  case BinOp::Eq: Out = Value::bits(32, X == Y); return true;
  case BinOp::Ne: Out = Value::bits(32, X != Y); return true;
  case BinOp::LtS: Out = Value::bits(32, SX < SY); return true;
  case BinOp::LeS: Out = Value::bits(32, SX <= SY); return true;
  case BinOp::GtS: Out = Value::bits(32, SX > SY); return true;
  case BinOp::GeS: Out = Value::bits(32, SX >= SY); return true;
  }
  cmm_unreachable("unknown binary operator");
}

} // namespace cmm

#endif // CMM_VM_VM_H
