//===- vm/Fuse.cpp - Superinstruction fusion pass -------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "vm/Fuse.h"

#include "support/Assert.h"

using namespace cmm;

//===----------------------------------------------------------------------===//
// The supported pair set
//===----------------------------------------------------------------------===//

const std::vector<FusionPair> &FusionTable::supportedPairs() {
  // Every First here falls through unconditionally (no transfers, no
  // Wrong), so executing the pair as one handler is a straight line. The
  // set covers the sequences the bench corpus spends its dispatches on:
  // assign/branch loop latches, CopyOut staging runs, commit-then-transfer
  // call sequences, and the Entry/CopyIn procedure prologue.
  static const std::vector<FusionPair> Pairs = {
      {Op::Binary, Op::Binary, TOp::BinaryBinary},
      {Op::Binary, Op::Goto, TOp::BinaryGoto},
      {Op::Binary, Op::BranchIf, TOp::BinaryBranchIf},
      {Op::Binary, Op::BranchCmp, TOp::BinaryBranchCmp},
      {Op::Unary, Op::BranchIf, TOp::UnaryBranchIf},
      {Op::LoadGlobal, Op::Binary, TOp::LoadGlobalBinary},
      {Op::SetGlobal, Op::Goto, TOp::SetGlobalGoto},
      {Op::StageOut, Op::StageOut, TOp::StageStage},
      {Op::StageOut, Op::Commit, TOp::StageCommit},
      {Op::Commit, Op::CallOp, TOp::CommitCall},
      {Op::Commit, Op::ExitOp, TOp::CommitExit},
      {Op::Commit, Op::JumpOp, TOp::CommitJump},
      {Op::Commit, Op::CutToOp, TOp::CommitCut},
      {Op::EntryOp, Op::CopyIn, TOp::EntryCopyIn},
      {Op::CopyIn, Op::Goto, TOp::CopyInGoto},
  };
  return Pairs;
}

const char *cmm::superOpName(TOp K) {
  switch (K) {
  case TOp::BinaryBinary: return "bin+bin";
  case TOp::BinaryGoto: return "bin+goto";
  case TOp::BinaryBranchIf: return "bin+brt";
  case TOp::BinaryBranchCmp: return "bin+brc";
  case TOp::UnaryBranchIf: return "un+brt";
  case TOp::LoadGlobalBinary: return "ldg+bin";
  case TOp::SetGlobalGoto: return "stg+goto";
  case TOp::StageStage: return "stage+stage";
  case TOp::StageCommit: return "stage+commit";
  case TOp::CommitCall: return "commit+call";
  case TOp::CommitExit: return "commit+exit";
  case TOp::CommitJump: return "commit+jump";
  case TOp::CommitCut: return "commit+cut";
  case TOp::EntryCopyIn: return "entry+copyin";
  case TOp::CopyInGoto: return "copyin+goto";
  default:
    break;
  }
  switch (Op(K)) {
  case Op::LoadConst: return "ldc";
  case Op::LoadLocal: return "ldl";
  case Op::LoadGlobal: return "ldg";
  case Op::LoadNameDyn: return "ldn";
  case Op::Unary: return "un";
  case Op::Binary: return "bin";
  case Op::Prim: return "prim";
  case Op::MemLoad: return "load";
  case Op::Wrong: return "wrong";
  case Op::SetGlobal: return "stg";
  case Op::MemStore: return "store";
  case Op::StageOut: return "stage";
  case Op::Commit: return "commit";
  case Op::CopyIn: return "copyin";
  case Op::CalleeSaves: return "saves";
  case Op::EntryOp: return "entry";
  case Op::Goto: return "goto";
  case Op::BranchIf: return "brt";
  case Op::BranchCmp: return "brc";
  case Op::ExitOp: return "exit";
  case Op::CallOp: return "call";
  case Op::JumpOp: return "jump";
  case Op::CutToOp: return "cut";
  case Op::YieldOp: return "yield";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// FusionTable
//===----------------------------------------------------------------------===//

FusionTable::FusionTable() { Map.fill(uint8_t(TOp::NumTOps)); }

void FusionTable::enable(const FusionPair &P) {
  Map[unsigned(P.First) * NumBaseOps + unsigned(P.Second)] = uint8_t(P.Fused);
  Enabled = true;
}

FusionTable FusionTable::all() {
  FusionTable T;
  for (const FusionPair &P : supportedPairs())
    T.enable(P);
  return T;
}

FusionTable FusionTable::none() { return FusionTable(); }

FusionTable FusionTable::fromProfile(
    const CompiledProgram &CP,
    const std::unordered_map<const IrProc *, ProcProfile> &Procs,
    double MinShare) {
  // Weighted static pair counts: each adjacent straight-line pair in a
  // procedure contributes that procedure's profiled step count (or 1 when
  // the profile never saw it). The share threshold keeps only pairs that
  // carry real dispatch mass.
  std::array<double, size_t(TOp::NumTOps)> Weight{};
  double Total = 0;
  FusionTable Everything = all();
  for (const CompiledProc &C : CP.Procs) {
    if (!C.HasBody)
      continue;
    double W = 1;
    if (auto It = Procs.find(C.Proc); It != Procs.end() && It->second.Steps)
      W = double(It->second.Steps);
    for (size_t Pc = 0; Pc + 1 < C.Code.size(); ++Pc) {
      TOp F = Everything.lookup(C.Code[Pc].K, C.Code[Pc + 1].K);
      if (F == TOp::NumTOps)
        continue;
      Weight[size_t(F)] += W;
      Total += W;
    }
  }
  FusionTable T;
  if (Total == 0)
    return T;
  for (const FusionPair &P : supportedPairs())
    if (Weight[size_t(P.Fused)] / Total >= MinShare)
      T.enable(P);
  return T;
}

//===----------------------------------------------------------------------===//
// The pass
//===----------------------------------------------------------------------===//

namespace {

/// True when \p K always falls through to pc+1 on success — the condition
/// for being the first half of a pair. (Transfers, branches, Wrong, and
/// Yield never appear as a First in supportedPairs(), so this is a
/// belt-and-braces check against future table entries.)
bool fallsThrough(Op K) {
  switch (K) {
  case Op::Goto:
  case Op::BranchIf:
  case Op::BranchCmp:
  case Op::ExitOp:
  case Op::CallOp:
  case Op::JumpOp:
  case Op::CutToOp:
  case Op::YieldOp:
  case Op::Wrong:
    return false;
  default:
    return true;
  }
}

} // namespace

std::shared_ptr<const ThreadedProgram>
cmm::fuseProgram(std::shared_ptr<const CompiledProgram> Bytecode,
                 const FusionTable &Table) {
  assert(Bytecode && "fuseProgram needs bytecode");
  auto TP = std::make_shared<ThreadedProgram>();
  TP->Bytecode = std::move(Bytecode);
  TP->Procs.resize(TP->Bytecode->Procs.size());
  for (size_t PI = 0; PI < TP->Bytecode->Procs.size(); ++PI) {
    const CompiledProc &C = TP->Bytecode->Procs[PI];
    ThreadedProc &T = TP->Procs[PI];
    T.Keys.resize(C.Code.size());
    for (size_t Pc = 0; Pc < C.Code.size(); ++Pc)
      T.Keys[Pc] = uint8_t(C.Code[Pc].K);
    // Greedy pairing. Overlap is harmless by construction: a fused key at
    // pc executes Code[pc] and Code[pc+1] then dispatches at pc+2, and the
    // key at pc+1 — itself possibly fused — only runs when control reaches
    // pc+1 directly (a branch target, or a budget-suspended resume at its
    // node boundary).
    for (size_t Pc = 0; Pc + 1 < C.Code.size(); ++Pc) {
      if (!fallsThrough(C.Code[Pc].K))
        continue;
      TOp F = Table.lookup(C.Code[Pc].K, C.Code[Pc + 1].K);
      if (F == TOp::NumTOps) {
        ++TP->Fusion.MissedSites;
        continue;
      }
      T.Keys[Pc] = uint8_t(F);
      ++TP->Fusion.FusedSites;
      ++TP->Fusion.SitesByOp[size_t(F)];
    }
  }
  return TP;
}

//===----------------------------------------------------------------------===//
// Disassembly
//===----------------------------------------------------------------------===//

std::string cmm::disassembleThreaded(const ThreadedProgram &TP,
                                     uint32_t ProcIdx, const Interner &Names) {
  const CompiledProc &C = TP.Bytecode->Procs[ProcIdx];
  const ThreadedProc &T = TP.Procs[ProcIdx];
  std::string S;
  S += "proc " + Names.spelling(C.Proc->Name) + " (" +
       std::to_string(C.NumSlots) + " slots, " + std::to_string(C.NumRegs) +
       " regs, threaded)\n";
  if (!C.HasBody) {
    S += "  <no body>\n";
    return S;
  }
  auto Rv = [](uint16_t Enc) {
    return (Enc & OperandConst)
               ? "k" + std::to_string(Enc & OperandIndexMask)
               : "r" + std::to_string(Enc);
  };
  for (size_t I = 0; I < C.Code.size(); ++I) {
    const VmInstr &Ins = C.Code[I];
    TOp K = TOp(T.Keys[I]);
    S += (Ins.Flags & FlagStartsNode) ? "* " : "  ";
    S += std::to_string(I) + ":\t" + superOpName(K) + "\ta=" +
         std::to_string(Ins.A) + " b=" + Rv(Ins.B) + " c=" + Rv(Ins.C) +
         " imm=" + std::to_string(Ins.Imm);
    if (Ins.Flags & FlagSetsBound)
      S += " [bind]";
    if (Ins.Flags & FlagStagesOut)
      S += " [stage]";
    if (unsigned(K) >= NumBaseOps)
      S += " [fused with " + std::to_string(I + 1) + "]";
    S += "\n";
  }
  return S;
}
