//===- vm/BytecodeIO.cpp - Bytecode encode/decode -------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
//
// Layout (all integers little-endian, see support/ByteIO.h):
//
//   u32  BytecodeFormatVersion
//   u64  proc count                  — must equal IrProgram::Procs.size()
//   per proc, in IrProgram::Procs order (CompiledProc::Proc binds
//   positionally; procedure indices in the encoding are implicit):
//     u8   HasBody
//     u32  EntryPc
//     u16  NumSlots, u16 NumRegs
//     u64  code length; per VmInstr:
//       u8 Op, u8 Flags, u16 A, u16 B, u16 C, u32 Imm,
//       u32 node ref (Node::Id + 1 within this proc, 0 = none),
//       u32 Loc.Line, u32 Loc.Col
//     u64  PcOfNode length; u32 each
//     u64  const count; per Value: u8 Kind, u8 Width, u64 Raw, f64 F
//     u64  message count; length-prefixed strings
//     u64  Syms count;    per Symbol: u8 valid, spelling when valid
//     u64  SlotSyms count; encoded the same way
//     u64  CopyPlans count;  per plan: u64 count; u8 Global, u16 Slot, sym
//     u64  SavePlans count;  per plan: u64 count; u16 each
//     u64  EntryPlans count; per plan: u64 count; u16 slot, node ref
//     u64  RvSlotLocs count; sorted ascending by key: u64 key, u32 Line,
//          u32 Col — the one unordered container here, so sorting makes
//          the encoding canonical
//   u32  MaxOut
//
// Symbols are re-interned into the program's interner at decode time, which
// mutates shared state: callers must decode before publishing the artifact
// to other threads (engine/ArtifactStore.cpp does so under the cache's
// single-flight slot). CompiledProgram::Index is rebuilt, not serialized.
//
//===----------------------------------------------------------------------===//

#include "vm/BytecodeIO.h"

#include <algorithm>

namespace cmm {

namespace {

constexpr uint8_t MaxOpByte = static_cast<uint8_t>(Op::YieldOp);
constexpr uint8_t MaxValueKindByte =
    static_cast<uint8_t>(Value::Kind::Cont);

void writeLoc(ByteWriter &W, SourceLoc Loc) {
  W.u32(Loc.Line);
  W.u32(Loc.Col);
}

SourceLoc readLoc(ByteReader &R) {
  uint32_t Line = R.u32();
  uint32_t Col = R.u32();
  return SourceLoc(Line, Col);
}

void writeNodeRef(ByteWriter &W, const Node *N) {
  W.u32(N ? N->Id + 1 : 0);
}

void writeSym(ByteWriter &W, Symbol S, const Interner &Names) {
  W.u8(S.isValid() ? 1 : 0);
  if (S.isValid())
    W.str(Names.spelling(S));
}

/// Decoding context for one procedure: resolves node refs against the
/// owning IrProc and symbols against the program interner.
struct ProcReader {
  ByteReader &R;
  const IrProc &Proc;
  Interner &Names;

  Node *nodeRef() {
    uint32_t Ref = R.u32();
    if (Ref == 0)
      return nullptr;
    if (Ref - 1 >= Proc.Nodes.size()) {
      R.fail();
      return nullptr;
    }
    return Proc.Nodes[Ref - 1].get();
  }

  Symbol sym() {
    if (R.u8() == 0)
      return Symbol();
    return Names.intern(R.str());
  }
};

void writeProc(const CompiledProc &C, const Interner &Names, ByteWriter &W) {
  W.u8(C.HasBody ? 1 : 0);
  W.u32(C.EntryPc);
  W.u16(C.NumSlots);
  W.u16(C.NumRegs);

  W.u64(C.Code.size());
  for (const VmInstr &I : C.Code) {
    W.u8(static_cast<uint8_t>(I.K));
    W.u8(I.Flags);
    W.u16(I.A);
    W.u16(I.B);
    W.u16(I.C);
    W.u32(I.Imm);
    writeNodeRef(W, I.N);
    writeLoc(W, I.Loc);
  }

  W.u64(C.PcOfNode.size());
  for (uint32_t Pc : C.PcOfNode)
    W.u32(Pc);

  W.u64(C.Consts.size());
  for (const Value &V : C.Consts) {
    W.u8(static_cast<uint8_t>(V.K));
    W.u8(V.Width);
    W.u64(V.Raw);
    W.f64(V.F);
  }

  W.u64(C.Msgs.size());
  for (const std::string &M : C.Msgs)
    W.str(M);

  W.u64(C.Syms.size());
  for (Symbol S : C.Syms)
    writeSym(W, S, Names);
  W.u64(C.SlotSyms.size());
  for (Symbol S : C.SlotSyms)
    writeSym(W, S, Names);

  W.u64(C.CopyPlans.size());
  for (const std::vector<CopyDest> &Plan : C.CopyPlans) {
    W.u64(Plan.size());
    for (const CopyDest &D : Plan) {
      W.u8(D.Global ? 1 : 0);
      W.u16(D.Slot);
      writeSym(W, D.Sym, Names);
    }
  }

  W.u64(C.SavePlans.size());
  for (const std::vector<uint16_t> &Plan : C.SavePlans) {
    W.u64(Plan.size());
    for (uint16_t Slot : Plan)
      W.u16(Slot);
  }

  W.u64(C.EntryPlans.size());
  for (const auto &Plan : C.EntryPlans) {
    W.u64(Plan.size());
    for (const auto &[Slot, N] : Plan) {
      W.u16(Slot);
      writeNodeRef(W, N);
    }
  }

  std::vector<std::pair<uint64_t, SourceLoc>> Locs(C.RvSlotLocs.begin(),
                                                   C.RvSlotLocs.end());
  std::sort(Locs.begin(), Locs.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  W.u64(Locs.size());
  for (const auto &[Key, Loc] : Locs) {
    W.u64(Key);
    writeLoc(W, Loc);
  }
}

bool readProc(ProcReader &P, CompiledProc &C) {
  ByteReader &R = P.R;
  C.Proc = &P.Proc;
  C.HasBody = R.u8() != 0;
  C.EntryPc = R.u32();
  C.NumSlots = R.u16();
  C.NumRegs = R.u16();

  uint64_t NumCode = R.count(/*MinBytesPer=*/22);
  C.Code.reserve(NumCode);
  for (uint64_t I = 0; R.ok() && I < NumCode; ++I) {
    VmInstr In;
    uint8_t K = R.u8();
    if (K > MaxOpByte)
      return R.fail(), false;
    In.K = static_cast<Op>(K);
    In.Flags = R.u8();
    In.A = R.u16();
    In.B = R.u16();
    In.C = R.u16();
    In.Imm = R.u32();
    In.N = P.nodeRef();
    In.Loc = readLoc(R);
    C.Code.push_back(In);
  }

  uint64_t NumPc = R.count(/*MinBytesPer=*/4);
  C.PcOfNode.reserve(NumPc);
  for (uint64_t I = 0; R.ok() && I < NumPc; ++I)
    C.PcOfNode.push_back(R.u32());

  uint64_t NumConsts = R.count(/*MinBytesPer=*/18);
  C.Consts.reserve(NumConsts);
  for (uint64_t I = 0; R.ok() && I < NumConsts; ++I) {
    Value V;
    uint8_t K = R.u8();
    if (K > MaxValueKindByte)
      return R.fail(), false;
    V.K = static_cast<Value::Kind>(K);
    V.Width = R.u8();
    V.Raw = R.u64();
    V.F = R.f64();
    C.Consts.push_back(V);
  }

  uint64_t NumMsgs = R.count(/*MinBytesPer=*/8);
  C.Msgs.reserve(NumMsgs);
  for (uint64_t I = 0; R.ok() && I < NumMsgs; ++I)
    C.Msgs.push_back(R.str());

  uint64_t NumSyms = R.count(/*MinBytesPer=*/1);
  C.Syms.reserve(NumSyms);
  for (uint64_t I = 0; R.ok() && I < NumSyms; ++I)
    C.Syms.push_back(P.sym());
  uint64_t NumSlotSyms = R.count(/*MinBytesPer=*/1);
  C.SlotSyms.reserve(NumSlotSyms);
  for (uint64_t I = 0; R.ok() && I < NumSlotSyms; ++I)
    C.SlotSyms.push_back(P.sym());

  uint64_t NumCopyPlans = R.count(/*MinBytesPer=*/8);
  C.CopyPlans.reserve(NumCopyPlans);
  for (uint64_t I = 0; R.ok() && I < NumCopyPlans; ++I) {
    uint64_t N = R.count(/*MinBytesPer=*/4);
    std::vector<CopyDest> Plan;
    Plan.reserve(N);
    for (uint64_t J = 0; R.ok() && J < N; ++J) {
      CopyDest D;
      D.Global = R.u8() != 0;
      D.Slot = R.u16();
      D.Sym = P.sym();
      Plan.push_back(D);
    }
    C.CopyPlans.push_back(std::move(Plan));
  }

  uint64_t NumSavePlans = R.count(/*MinBytesPer=*/8);
  C.SavePlans.reserve(NumSavePlans);
  for (uint64_t I = 0; R.ok() && I < NumSavePlans; ++I) {
    uint64_t N = R.count(/*MinBytesPer=*/2);
    std::vector<uint16_t> Plan;
    Plan.reserve(N);
    for (uint64_t J = 0; R.ok() && J < N; ++J)
      Plan.push_back(R.u16());
    C.SavePlans.push_back(std::move(Plan));
  }

  uint64_t NumEntryPlans = R.count(/*MinBytesPer=*/8);
  C.EntryPlans.reserve(NumEntryPlans);
  for (uint64_t I = 0; R.ok() && I < NumEntryPlans; ++I) {
    uint64_t N = R.count(/*MinBytesPer=*/6);
    std::vector<std::pair<uint16_t, Node *>> Plan;
    Plan.reserve(N);
    for (uint64_t J = 0; R.ok() && J < N; ++J) {
      uint16_t Slot = R.u16();
      Node *Target = P.nodeRef();
      Plan.emplace_back(Slot, Target);
    }
    C.EntryPlans.push_back(std::move(Plan));
  }

  uint64_t NumLocs = R.count(/*MinBytesPer=*/16);
  C.RvSlotLocs.reserve(NumLocs);
  for (uint64_t I = 0; R.ok() && I < NumLocs; ++I) {
    uint64_t Key = R.u64();
    C.RvSlotLocs[Key] = readLoc(R);
  }

  return R.ok();
}

} // namespace

void serializeBytecode(const CompiledProgram &C, const IrProgram &Prog,
                       ByteWriter &W) {
  W.u32(BytecodeFormatVersion);
  W.u64(C.Procs.size());
  for (const CompiledProc &P : C.Procs)
    writeProc(P, *Prog.Names, W);
  W.u32(C.MaxOut);
}

std::unique_ptr<CompiledProgram>
deserializeBytecode(ByteReader &R, const IrProgram &Prog, std::string *Err) {
  auto Fail = [&](const char *Msg) -> std::unique_ptr<CompiledProgram> {
    if (Err)
      *Err = Msg;
    return nullptr;
  };

  uint32_t Version = R.u32();
  if (!R.ok())
    return Fail("truncated bytecode blob");
  if (Version != BytecodeFormatVersion)
    return Fail("bytecode format version mismatch");

  uint64_t NumProcs = R.count(/*MinBytesPer=*/9);
  if (!R.ok() || NumProcs != Prog.Procs.size())
    return Fail("bytecode proc count does not match program");

  auto C = std::make_unique<CompiledProgram>();
  C->Procs.resize(NumProcs);
  for (uint64_t I = 0; I < NumProcs; ++I) {
    ProcReader P{R, *Prog.Procs[I], *Prog.Names};
    if (!readProc(P, C->Procs[I]))
      return Fail("malformed bytecode blob");
  }
  C->MaxOut = R.u32();
  if (!R.ok())
    return Fail("truncated bytecode blob");

  C->Index.reserve(NumProcs);
  for (uint64_t I = 0; I < NumProcs; ++I)
    C->Index.emplace(C->Procs[I].Proc, static_cast<uint32_t>(I));
  return C;
}

} // namespace cmm
