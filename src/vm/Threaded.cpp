//===- vm/Threaded.cpp - Threaded dispatch loop ---------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
// The loop body below is a transcription of VmMachine::exec (vm/Vm.cpp)
// into per-handler form: every check, counter increment, observer event,
// and goes-wrong path appears in the same order at the same point. The
// structural differences are (a) dispatch — each handler jumps straight to
// the next instruction's handler through a label table instead of returning
// to a shared switch head, (b) superinstructions — a fused key runs two
// adjacent instructions in one handler, performing the second component's
// node-boundary accounting inline exactly where the loop head would have,
// and (c) state caching — the pc and the register-file/constant-pool data
// pointers live in locals for the whole loop. The caching discipline:
//
//  - the member Pc is written back at every exit from the loop (TRET),
//    so between texec calls the member state is exactly the VM's;
//  - the three helpers that read or write the member Pc mid-loop get a
//    sync around the call: rvUnbound (reads it to key RvSlotLocs),
//    enterProc (writes the entry pc), and doCutTo (writes the target pc);
//  - RELOAD refreshes every cached pointer after any operation that can
//    move the underlying storage (frame pushes/pops, procedure changes).
//
// When the two loops disagree, Vm.cpp (and behind it sem/Machine.cpp) is
// right; the cmmdiff sweep and VmConformanceTest exist to say so.
//
//===----------------------------------------------------------------------===//

#include "vm/Threaded.h"

#include "sem/Observer.h"
#include "support/Assert.h"
#include "support/Casting.h"

#include <algorithm>
#include <iterator>

using namespace cmm;

// Dispatch model selection. CMM_NO_COMPUTED_GOTO (a CMake option) forces
// the portable switch loop even on compilers with the labels-as-values
// extension; the two builds are observably identical and CI runs tier-1 on
// both.
#if !defined(CMM_NO_COMPUTED_GOTO) && (defined(__GNUC__) || defined(__clang__))
#define CMM_THREADED_CGOTO 1
#else
#define CMM_THREADED_CGOTO 0
#endif

const char *cmm::threadedDispatchKind() {
#if CMM_THREADED_CGOTO
  return "computed-goto";
#else
  return "switch";
#endif
}

ThreadedMachine::ThreadedMachine(const IrProgram &Prog)
    : ThreadedMachine(Prog,
                      fuseProgram(std::make_shared<const CompiledProgram>(
                          compileToBytecode(Prog)))) {}

ThreadedMachine::ThreadedMachine(const IrProgram &Prog,
                                 std::shared_ptr<const ThreadedProgram> Shared)
    : VmMachine(Prog, Shared->Bytecode), TP(std::move(Shared)) {}

//===----------------------------------------------------------------------===//
// The threaded dispatch loop
//===----------------------------------------------------------------------===//

// Exit the loop: write the cached fuel, step count, and shadow pc back so
// the machine's between-runs state is byte-identical to the VM's (resume,
// suspension, goes-wrong states, and stats() all read the members).
#define TRET()                                                                 \
  do {                                                                         \
    Budget = Fuel;                                                             \
    if constexpr (!Observed)                                                   \
      S.Steps += StepsTaken;                                                   \
    this->Pc = Pc;                                                             \
    return;                                                                    \
  } while (0)

// One abstract-machine transition begins at every FlagStartsNode
// instruction: charge the budget, count the step, notify the observer —
// identical to the loop head of VmMachine::exec. A budget-exhausted return
// leaves Pc at the node boundary, so a resumed run (or a fused pair whose
// second component hits the boundary) continues in exactly the state one
// combined run reaches. Fuel and the step count stay in locals: the budget
// is invisible to everything but this loop, and S.Steps only has to be
// current when an observer (which may read stats()) can run — so the
// unobserved instantiation accumulates a delta and flushes it at TRET.
#define NODE_PROLOGUE(In)                                                      \
  if ((In).Flags & FlagStartsNode) {                                           \
    if (Fuel == 0)                                                             \
      TRET(); /* step budget exhausted at a node boundary */                   \
    --Fuel;                                                                    \
    if constexpr (Observed) {                                                  \
      ++S.Steps;                                                               \
      Obs->onStep(*this, (In).N);                                              \
    } else {                                                                   \
      ++StepsTaken;                                                            \
    }                                                                          \
  }

// Yield suspensions are not transitions (the walker un-counts them): the
// budget is still charged at the boundary, but neither Steps nor onStep
// fires.
#define YIELD_PROLOGUE(In)                                                     \
  if ((In).Flags & FlagStartsNode) {                                           \
    if (Fuel == 0)                                                             \
      TRET();                                                                  \
    --Fuel;                                                                    \
  }

// Refresh every cached pointer after any operation that can change the
// current compiled procedure or move the register files (the VM's
// Code-pointer invariant, extended to the key stream and the state cache).
#define RELOAD()                                                               \
  do {                                                                         \
    Code = Cur->Code.data();                                                   \
    Keys = TP->Procs[CurIdx].Keys.data();               \
    ConstsP = Cur->Consts.data();                                              \
    RegsP = Regs.data();                                                       \
    BoundP = Bound.data();                                                     \
    NumSlots = Cur->NumSlots;                                                  \
  } while (0)

// The integer fast path of applyBinary. The generic routine is too large
// for the compiler to inline at the loop's many call sites, so every binary
// node would pay an out-of-line call — and the call clobbers the cached
// state pointers around it. This subset covers the operators with no
// goes-wrong path on bit operands and is forced inline; it computes exactly
// what applyBinary computes for them (same Value::bits widths, same
// signExtend comparisons). Floats, division, and modulus decline (return
// false) and take the out-of-line generic routine, which owns every
// diagnostic string.
#if defined(__GNUC__) || defined(__clang__)
#define CMM_THREADED_INLINE __attribute__((always_inline)) inline
#else
#define CMM_THREADED_INLINE inline
#endif

namespace {
CMM_THREADED_INLINE bool binFast(Value &Out, const Value &L, const Value &R,
                                 unsigned OpKind) {
  if (L.isFloat() || R.isFloat()) [[unlikely]]
    return false;
  const unsigned W = L.Width;
  const uint64_t X = L.Raw, Y = R.Raw;
  switch (static_cast<BinOp>(OpKind)) {
  case BinOp::Add: Out = Value::bits(W, X + Y); return true;
  case BinOp::Sub: Out = Value::bits(W, X - Y); return true;
  case BinOp::Mul: Out = Value::bits(W, X * Y); return true;
  case BinOp::And: Out = Value::bits(W, X & Y); return true;
  case BinOp::Or: Out = Value::bits(W, X | Y); return true;
  case BinOp::Xor: Out = Value::bits(W, X ^ Y); return true;
  case BinOp::Shl: Out = Value::bits(W, Y >= W ? 0 : X << Y); return true;
  case BinOp::Shr: Out = Value::bits(W, Y >= W ? 0 : X >> Y); return true;
  case BinOp::Eq: Out = Value::bits(32, X == Y); return true;
  case BinOp::Ne: Out = Value::bits(32, X != Y); return true;
  case BinOp::LtS:
    Out = Value::bits(32, signExtend(X, W) < signExtend(Y, W));
    return true;
  case BinOp::LeS:
    Out = Value::bits(32, signExtend(X, W) <= signExtend(Y, W));
    return true;
  case BinOp::GtS:
    Out = Value::bits(32, signExtend(X, W) > signExtend(Y, W));
    return true;
  case BinOp::GeS:
    Out = Value::bits(32, signExtend(X, W) >= signExtend(Y, W));
    return true;
  default:
    return false; // Div/Mod (goes-wrong paths) and anything unknown
  }
}
} // namespace

//===----------------------------------------------------------------------===//
// Instruction bodies. Each macro is the corresponding VmMachine::exec case
// with `break`-on-failure rewritten as `TRET()` (the loop-head status
// re-check it stood for). Bodies that fall through leave Pc at the next
// instruction; transfer bodies set Pc and RELOAD().
//===----------------------------------------------------------------------===//

#define BODY_UNARY()                                                           \
  {                                                                            \
    const Value *Bv = ReadOperand(I->B, *I, 1);                                \
    if (!Bv)                                                                   \
      TRET();                                                                  \
    Value Out;                                                                 \
    if (!applyUnary(Out, *Bv, I->Imm))                                         \
      TRET();                                                                  \
    StoreValue(*I, Out);                                                       \
    ++Pc;                                                                      \
  }

#define BODY_BINARY()                                                          \
  {                                                                            \
    const Value *Bv = ReadOperand(I->B, *I, 1);                                \
    if (!Bv)                                                                   \
      TRET();                                                                  \
    const Value *Cv = ReadOperand(I->C, *I, 2);                                \
    if (!Cv)                                                                   \
      TRET();                                                                  \
    Value Out;                                                                 \
    if (!binFast(Out, *Bv, *Cv, I->Imm)) [[unlikely]]                          \
      if (!applyBinary(Out, *Bv, *Cv, I->Imm, I->Loc))                         \
        TRET();                                                                \
    StoreValue(*I, Out);                                                       \
    ++Pc;                                                                      \
  }

#define BODY_LOADGLOBAL()                                                      \
  {                                                                            \
    const Value *V = GlobalEnv.lookup(Cur->Syms[I->Imm]);                      \
    if (!V) {                                                                  \
      goWrong("use of unknown global '" +                                      \
                  Prog.Names->spelling(Cur->Syms[I->Imm]) + "'",               \
              I->Loc);                                                         \
      TRET();                                                                  \
    }                                                                          \
    StoreValue(*I, *V);                                                        \
    ++Pc;                                                                      \
  }

#define BODY_SETGLOBAL()                                                       \
  {                                                                            \
    const Value *Bv = ReadOperand(I->B, *I, 1);                                \
    if (!Bv)                                                                   \
      TRET();                                                                  \
    GlobalEnv.bind(Cur->Syms[I->Imm], *Bv);                                    \
    ++Pc;                                                                      \
  }

#define BODY_STAGEOUT()                                                        \
  {                                                                            \
    const Value *Bv = ReadOperand(I->B, *I, 1);                                \
    if (!Bv)                                                                   \
      TRET();                                                                  \
    StagingP[I->Imm] = *Bv;                                                    \
    ++Pc;                                                                      \
  }

// assign() would call the library's memmove for a handful of Values;
// clear+push_back stays inline, and only the first few commits pay the
// capacity growth.
#define BODY_COMMIT()                                                          \
  {                                                                            \
    /* Value is trivially copyable: assign is one bounds check + memmove. */   \
    A.assign(StagingP, StagingP + I->Imm);                                     \
    ++Pc;                                                                      \
  }

#define BODY_COPYIN()                                                          \
  {                                                                            \
    const std::vector<CopyDest> &Plan = Cur->CopyPlans[I->Imm];                \
    if (A.size() < Plan.size()) {                                              \
      goWrong("too few values in the argument-passing area: need " +           \
                  std::to_string(Plan.size()) + ", have " +                    \
                  std::to_string(A.size()),                                    \
              I->Loc);                                                         \
      TRET();                                                                  \
    }                                                                          \
    for (size_t J = 0; J < Plan.size(); ++J) {                                 \
      const CopyDest &D = Plan[J];                                             \
      if (D.Global) {                                                          \
        GlobalEnv.bind(D.Sym, A[J]);                                           \
      } else {                                                                 \
        RegsP[D.Slot] = A[J];                                                  \
        BoundP[D.Slot] = 1;                                                    \
      }                                                                        \
    }                                                                          \
    A.clear(); /* CopyIn replaces A by the empty list */                       \
    ++Pc;                                                                      \
  }

#define BODY_ENTRY()                                                           \
  {                                                                            \
    std::fill_n(BoundP, NumSlots, 0);                                          \
    Sigma.clear();                                                             \
    for (const auto &[Slot, Target] : Cur->EntryPlans[I->Imm]) {               \
      uint64_t Handle = newCont(Target);                                       \
      RegsP[Slot] = Value::cont(Handle);                                       \
      BoundP[Slot] = 1;                                                        \
    }                                                                          \
    ++Pc;                                                                      \
  }

#define BODY_GOTO() Pc = I->Imm;

#define BODY_BRANCHIF()                                                        \
  {                                                                            \
    const Value *Bv = ReadOperand(I->B, *I, 1);                                \
    if (!Bv)                                                                   \
      TRET();                                                                  \
    Pc = Bv->isTruthy() ? I->Imm : Pc + 1;                                     \
  }

#define BODY_BRANCHCMP()                                                       \
  {                                                                            \
    const Value *Bv = ReadOperand(I->B, *I, 1);                                \
    if (!Bv)                                                                   \
      TRET();                                                                  \
    const Value *Cv = ReadOperand(I->C, *I, 2);                                \
    if (!Cv)                                                                   \
      TRET();                                                                  \
    Value Out;                                                                 \
    if (!binFast(Out, *Bv, *Cv, I->A)) [[unlikely]]                            \
      if (!applyBinary(Out, *Bv, *Cv, I->A, I->Loc))                           \
        TRET();                                                                \
    Pc = Out.isTruthy() ? I->Imm : Pc + 1;                                     \
  }

#define BODY_EXIT()                                                            \
  {                                                                            \
    unsigned ContIndex = I->A, AltCount = I->B;                                \
    if (Stack.empty()) {                                                       \
      if (ContIndex == 0 && AltCount == 0) {                                   \
        St = MachineStatus::Halted; /* terminated normally */                  \
        if constexpr (Observed)                                                \
          Obs->onHalt(*this);                                                  \
      } else {                                                                 \
        goWrong("abnormal return with an empty stack", I->Loc);                \
      }                                                                        \
      TRET();                                                                  \
    }                                                                          \
    VmFrame F = std::move(Stack.back());                                       \
    Stack.pop_back();                                                          \
    const ContBundle &Bundle = F.CallSite->Bundle;                             \
    if (Bundle.ReturnsTo.size() != size_t(AltCount) + 1) {                     \
      goWrong("return <" + std::to_string(ContIndex) + "/" +                   \
                  std::to_string(AltCount) + "> at a call site with " +        \
                  std::to_string(Bundle.ReturnsTo.size() - 1) +                \
                  " alternate return continuations",                           \
              I->Loc);                                                         \
      TRET();                                                                  \
    }                                                                          \
    if (ContIndex >= Bundle.ReturnsTo.size()) {                                \
      goWrong("return continuation index out of range", I->Loc);               \
      TRET();                                                                  \
    }                                                                          \
    const IrProc *Callee = CurProc;                                            \
    restoreFrame(F);                                                           \
    Pc = pcOf(*Cur, Bundle.ReturnsTo[ContIndex]);                              \
    RELOAD();                                                                  \
    ++S.Returns;                                                               \
    if constexpr (Observed)                                                    \
      Obs->onReturn(*this, F.CallSite, Callee, CurProc, ContIndex);            \
  }

#define BODY_CALL()                                                            \
  {                                                                            \
    const Value *CalleeV = ReadOperand(I->B, *I, 1);                           \
    if (!CalleeV)                                                              \
      TRET();                                                                  \
    const Value Callee = *CalleeV; /* pushFrame moves Regs out */              \
    const int64_t TargetIdx = decodeCodeIdx(Callee);                           \
    if (TargetIdx < 0) [[unlikely]] {                                          \
      goWrong("call target is not code (" + Callee.str() + ")", I->Loc);       \
      TRET();                                                                  \
    }                                                                          \
    const IrProc *Target = CodeTable[TargetIdx];                               \
    const auto *CN = cast<CallNode>(I->N);                                     \
    const IrProc *Caller = CurProc;                                            \
    this->Pc = Pc; /* enterProcAt sets the member pc (or, on a bodiless       \
                      procedure, leaves it at this instruction) */             \
    pushFrame(CN);                                                             \
    enterProcAt(uint32_t(TargetIdx), Target, I->Loc);                          \
    Pc = this->Pc;                                                             \
    RELOAD();                                                                  \
    ++S.Calls;                                                                 \
    if constexpr (Observed)                                                    \
      Obs->onCall(*this, CN, Caller, Target);                                  \
    if (St != MachineStatus::Running)                                          \
      TRET(); /* bodiless procedure */                                         \
  }

#define BODY_JUMP()                                                            \
  {                                                                            \
    const Value *CalleeV = ReadOperand(I->B, *I, 1);                           \
    if (!CalleeV)                                                              \
      TRET();                                                                  \
    const Value Callee = *CalleeV; /* enterProcAt may grow Regs */             \
    const int64_t TargetIdx = decodeCodeIdx(Callee);                           \
    if (TargetIdx < 0) [[unlikely]] {                                          \
      goWrong("jump target is not code (" + Callee.str() + ")", I->Loc);       \
      TRET();                                                                  \
    }                                                                          \
    const IrProc *Target = CodeTable[TargetIdx];                               \
    const IrProc *Caller = CurProc;                                            \
    this->Pc = Pc;                                                             \
    enterProcAt(uint32_t(TargetIdx), Target, I->Loc);                          \
    Pc = this->Pc;                                                             \
    RELOAD();                                                                  \
    ++S.Jumps;                                                                 \
    if constexpr (Observed)                                                    \
      Obs->onJump(*this, cast<JumpNode>(I->N), Caller, Target);                \
    if (St != MachineStatus::Running)                                          \
      TRET(); /* bodiless procedure */                                         \
  }

#define BODY_CUTTO()                                                           \
  {                                                                            \
    const Value *ContV = ReadOperand(I->B, *I, 1);                             \
    if (!ContV)                                                                \
      TRET();                                                                  \
    const Value Cont = *ContV; /* doCutTo pops frames under the operand */     \
    this->Pc = Pc; /* doCutTo writes the member pc on success */               \
    doCutTo(Cont, cast<CutToNode>(I->N));                                      \
    Pc = this->Pc;                                                             \
    RELOAD();                                                                  \
    if (St != MachineStatus::Running)                                          \
      TRET();                                                                  \
  }

template <bool Observed> void ThreadedMachine::texec(uint64_t &Budget) {
  if (St != MachineStatus::Running)
    return;
  // The state cache: the shadow pc and every hot data pointer live in
  // locals (see the file header for the sync discipline). Staging is sized
  // once at construction and never reallocated, so its pointer needs no
  // refresh.
  uint32_t Pc = this->Pc;
  uint64_t Fuel = Budget;
  [[maybe_unused]] uint64_t StepsTaken = 0; // flushed into S.Steps at TRET
  const VmInstr *Code = nullptr;
  const uint8_t *Keys = nullptr;
  const Value *ConstsP = nullptr;
  Value *RegsP = nullptr;
  uint8_t *BoundP = nullptr;
  uint32_t NumSlots = 0;
  Value *StagingP = Staging.data();
  RELOAD();
  const VmInstr *I = nullptr;

  // Identical to VmMachine::exec's operand read: constant pool, bound-
  // checked named slot, or register. Null after going wrong. rvUnbound keys
  // RvSlotLocs off the member Pc, so the shadow is synced before the call —
  // the member then holds the executing instruction's own pc, including for
  // the second component of a fused pair.
  auto ReadOperand = [&](uint16_t Enc, const VmInstr &In,
                         unsigned Field) -> const Value * {
    if (Enc & OperandConst)
      return &ConstsP[Enc & OperandIndexMask];
    if (Enc < NumSlots && !BoundP[Enc]) [[unlikely]] {
      this->Pc = Pc;
      return rvUnbound(Enc, In, Field);
    }
    return &RegsP[Enc];
  };
  auto StoreValue = [&](const VmInstr &In, const Value &V) {
    if (In.Flags & FlagStagesOut) {
      StagingP[In.A] = V;
      return;
    }
    RegsP[In.A] = V;
    if (In.Flags & FlagSetsBound)
      BoundP[In.A] = 1;
  };

#if CMM_THREADED_CGOTO
  // Label-address dispatch: the key stream indexes this table and every
  // handler ends with its own indirect jump, so the branch predictor sees
  // one branch site per (predecessor op, successor op) pair instead of a
  // single shared dispatch branch.
  static const void *const Labels[] = {
      &&H_LoadConst,   &&H_LoadLocal,      &&H_LoadGlobal,
      &&H_LoadNameDyn, &&H_Unary,          &&H_Binary,
      &&H_Prim,        &&H_MemLoad,        &&H_Wrong,
      &&H_SetGlobal,   &&H_MemStore,       &&H_StageOut,
      &&H_Commit,      &&H_CopyIn,         &&H_CalleeSaves,
      &&H_EntryOp,     &&H_Goto,           &&H_BranchIf,
      &&H_BranchCmp,   &&H_ExitOp,         &&H_CallOp,
      &&H_JumpOp,      &&H_CutToOp,        &&H_YieldOp,
      &&H_BinaryBinary,    &&H_BinaryGoto,      &&H_BinaryBranchIf,
      &&H_BinaryBranchCmp, &&H_UnaryBranchIf,   &&H_LoadGlobalBinary,
      &&H_SetGlobalGoto,   &&H_StageStage,      &&H_StageCommit,
      &&H_CommitCall,      &&H_CommitExit,      &&H_CommitJump,
      &&H_CommitCut,       &&H_EntryCopyIn,     &&H_CopyInGoto,
  };
  static_assert(std::size(Labels) == size_t(TOp::NumTOps),
                "one label per dispatch key, in TOp order");
#define OPCASE(name) H_##name:
#define DISPATCH()                                                             \
  do {                                                                         \
    I = &Code[Pc];                                                             \
    goto *Labels[Keys[Pc]];                                                    \
  } while (0)
  DISPATCH();
#else
#define OPCASE(name) case TOp::name:
#define DISPATCH() goto DispatchTop
DispatchTop:
  I = &Code[Pc];
  switch (TOp(Keys[Pc])) {
#endif

  OPCASE(LoadConst) {
    NODE_PROLOGUE(*I);
    StoreValue(*I, ConstsP[I->Imm]);
    ++Pc;
    DISPATCH();
  }
  OPCASE(LoadLocal) {
    NODE_PROLOGUE(*I);
    if (!BoundP[I->B]) {
      wrongUnbound(I->B, I->Loc);
      TRET();
    }
    StoreValue(*I, RegsP[I->B]);
    ++Pc;
    DISPATCH();
  }
  OPCASE(LoadGlobal) {
    NODE_PROLOGUE(*I);
    BODY_LOADGLOBAL();
    DISPATCH();
  }
  OPCASE(LoadNameDyn) {
    NODE_PROLOGUE(*I);
    {
      const Value *V = GlobalEnv.lookup(Cur->Syms[I->Imm]);
      if (!V) {
        goWrong("unresolved name '" +
                    Prog.Names->spelling(Cur->Syms[I->Imm]) + "'",
                I->Loc);
        TRET();
      }
      StoreValue(*I, *V);
      ++Pc;
    }
    DISPATCH();
  }
  OPCASE(Unary) {
    NODE_PROLOGUE(*I);
    BODY_UNARY();
    DISPATCH();
  }
  OPCASE(Binary) {
    NODE_PROLOGUE(*I);
    BODY_BINARY();
    DISPATCH();
  }
  OPCASE(Prim) {
    NODE_PROLOGUE(*I);
    {
      unsigned Count = I->Imm >> 16;
      Value Args[2];
      if (Count > 0) {
        const Value *P = ReadOperand(I->B, *I, 1);
        if (!P)
          TRET();
        Args[0] = *P;
      }
      if (Count > 1) {
        const Value *P = ReadOperand(I->C, *I, 2);
        if (!P)
          TRET();
        Args[1] = *P;
      }
      Value Out;
      if (!applyPrim(Out, I->Imm & 0xffff, Args, Count, I->Loc))
        TRET();
      StoreValue(*I, Out);
      ++Pc;
    }
    DISPATCH();
  }
  OPCASE(MemLoad) {
    NODE_PROLOGUE(*I);
    {
      const Value *Bv = ReadOperand(I->B, *I, 1);
      if (!Bv)
        TRET();
      ++S.Loads; // after the address check, like the walker
      unsigned W = I->Imm >> 1;
      uint64_t Addr = Bv->Raw;
      StoreValue(*I, (I->Imm & 1)
                         ? Value::flt(W, Mem.loadFloat(Addr, W / 8))
                         : Value::bits(W, Mem.loadBits(Addr, W / 8)));
      ++Pc;
    }
    DISPATCH();
  }
  OPCASE(Wrong) {
    NODE_PROLOGUE(*I);
    goWrong(Cur->Msgs[I->Imm], I->Loc);
    TRET();
  }
  OPCASE(SetGlobal) {
    NODE_PROLOGUE(*I);
    BODY_SETGLOBAL();
    DISPATCH();
  }
  OPCASE(MemStore) {
    NODE_PROLOGUE(*I);
    {
      const Value *AddrV = ReadOperand(I->A, *I, 0);
      if (!AddrV)
        TRET();
      const Value *Bv = ReadOperand(I->B, *I, 1);
      if (!Bv)
        TRET();
      ++S.Stores; // after both operand checks, like the walker
      unsigned W = I->Imm >> 1;
      uint64_t Addr = AddrV->Raw;
      if (I->Imm & 1)
        Mem.storeFloat(Addr, W / 8, Bv->F);
      else
        Mem.storeBits(Addr, W / 8, Bv->Raw);
      ++Pc;
    }
    DISPATCH();
  }
  OPCASE(StageOut) {
    NODE_PROLOGUE(*I);
    BODY_STAGEOUT();
    DISPATCH();
  }
  OPCASE(Commit) {
    NODE_PROLOGUE(*I);
    BODY_COMMIT();
    DISPATCH();
  }
  OPCASE(CopyIn) {
    NODE_PROLOGUE(*I);
    BODY_COPYIN();
    DISPATCH();
  }
  OPCASE(CalleeSaves) {
    NODE_PROLOGUE(*I);
    {
      const std::vector<uint16_t> &Saved = Cur->SavePlans[I->Imm];
      for (uint16_t V : Saved)
        if (std::find(Sigma.begin(), Sigma.end(), V) == Sigma.end())
          ++S.CalleeSaveMoves;
      for (uint16_t V : Sigma)
        if (std::find(Saved.begin(), Saved.end(), V) == Saved.end())
          ++S.CalleeSaveMoves;
      Sigma = Saved;
      ++Pc;
    }
    DISPATCH();
  }
  OPCASE(EntryOp) {
    NODE_PROLOGUE(*I);
    BODY_ENTRY();
    DISPATCH();
  }
  OPCASE(Goto) {
    NODE_PROLOGUE(*I);
    BODY_GOTO();
    DISPATCH();
  }
  OPCASE(BranchIf) {
    NODE_PROLOGUE(*I);
    BODY_BRANCHIF();
    DISPATCH();
  }
  OPCASE(BranchCmp) {
    NODE_PROLOGUE(*I);
    BODY_BRANCHCMP();
    DISPATCH();
  }
  OPCASE(ExitOp) {
    NODE_PROLOGUE(*I);
    BODY_EXIT();
    DISPATCH();
  }
  OPCASE(CallOp) {
    NODE_PROLOGUE(*I);
    BODY_CALL();
    DISPATCH();
  }
  OPCASE(JumpOp) {
    NODE_PROLOGUE(*I);
    BODY_JUMP();
    DISPATCH();
  }
  OPCASE(CutToOp) {
    NODE_PROLOGUE(*I);
    BODY_CUTTO();
    DISPATCH();
  }
  OPCASE(YieldOp) {
    YIELD_PROLOGUE(*I);
    ++S.Yields;
    St = MachineStatus::Suspended;
    if constexpr (Observed)
      Obs->onYield(*this);
    TRET();
  }

  // Superinstructions: component 1's handler body, then component 2's
  // node-boundary prologue and body inline. A budget-exhausted prologue
  // returns with Pc at the second component, whose standalone key resumes
  // it — the split is invisible, exactly like the plain loop's.

  OPCASE(BinaryBinary) {
    NODE_PROLOGUE(*I);
    BODY_BINARY();
    I = &Code[Pc];
    NODE_PROLOGUE(*I);
    BODY_BINARY();
    DISPATCH();
  }
  OPCASE(BinaryGoto) {
    NODE_PROLOGUE(*I);
    BODY_BINARY();
    I = &Code[Pc];
    NODE_PROLOGUE(*I);
    BODY_GOTO();
    DISPATCH();
  }
  OPCASE(BinaryBranchIf) {
    NODE_PROLOGUE(*I);
    BODY_BINARY();
    I = &Code[Pc];
    NODE_PROLOGUE(*I);
    BODY_BRANCHIF();
    DISPATCH();
  }
  OPCASE(BinaryBranchCmp) {
    NODE_PROLOGUE(*I);
    BODY_BINARY();
    I = &Code[Pc];
    NODE_PROLOGUE(*I);
    BODY_BRANCHCMP();
    DISPATCH();
  }
  OPCASE(UnaryBranchIf) {
    NODE_PROLOGUE(*I);
    BODY_UNARY();
    I = &Code[Pc];
    NODE_PROLOGUE(*I);
    BODY_BRANCHIF();
    DISPATCH();
  }
  OPCASE(LoadGlobalBinary) {
    NODE_PROLOGUE(*I);
    BODY_LOADGLOBAL();
    I = &Code[Pc];
    NODE_PROLOGUE(*I);
    BODY_BINARY();
    DISPATCH();
  }
  OPCASE(SetGlobalGoto) {
    NODE_PROLOGUE(*I);
    BODY_SETGLOBAL();
    I = &Code[Pc];
    NODE_PROLOGUE(*I);
    BODY_GOTO();
    DISPATCH();
  }
  OPCASE(StageStage) {
    NODE_PROLOGUE(*I);
    BODY_STAGEOUT();
    I = &Code[Pc];
    NODE_PROLOGUE(*I);
    BODY_STAGEOUT();
    DISPATCH();
  }
  OPCASE(StageCommit) {
    NODE_PROLOGUE(*I);
    BODY_STAGEOUT();
    I = &Code[Pc];
    NODE_PROLOGUE(*I);
    BODY_COMMIT();
    DISPATCH();
  }
  OPCASE(CommitCall) {
    NODE_PROLOGUE(*I);
    BODY_COMMIT();
    I = &Code[Pc];
    NODE_PROLOGUE(*I);
    BODY_CALL();
    DISPATCH();
  }
  OPCASE(CommitExit) {
    NODE_PROLOGUE(*I);
    BODY_COMMIT();
    I = &Code[Pc];
    NODE_PROLOGUE(*I);
    BODY_EXIT();
    DISPATCH();
  }
  OPCASE(CommitJump) {
    NODE_PROLOGUE(*I);
    BODY_COMMIT();
    I = &Code[Pc];
    NODE_PROLOGUE(*I);
    BODY_JUMP();
    DISPATCH();
  }
  OPCASE(CommitCut) {
    NODE_PROLOGUE(*I);
    BODY_COMMIT();
    I = &Code[Pc];
    NODE_PROLOGUE(*I);
    BODY_CUTTO();
    DISPATCH();
  }
  OPCASE(EntryCopyIn) {
    NODE_PROLOGUE(*I);
    BODY_ENTRY();
    I = &Code[Pc];
    NODE_PROLOGUE(*I);
    BODY_COPYIN();
    DISPATCH();
  }
  OPCASE(CopyInGoto) {
    NODE_PROLOGUE(*I);
    BODY_COPYIN();
    I = &Code[Pc];
    NODE_PROLOGUE(*I);
    BODY_GOTO();
    DISPATCH();
  }

#if !CMM_THREADED_CGOTO
  case TOp::NumTOps:
    break;
  }
  cmm_unreachable("bad dispatch key");
#endif
}

template void ThreadedMachine::texec<true>(uint64_t &);
template void ThreadedMachine::texec<false>(uint64_t &);

MachineStatus ThreadedMachine::run(uint64_t MaxSteps) {
  uint64_t Budget = MaxSteps;
  if (observer())
    texec<true>(Budget);
  else
    texec<false>(Budget);
  return status();
}

bool ThreadedMachine::step() {
  if (status() != MachineStatus::Running)
    return false;
  uint64_t Budget = 1;
  if (observer())
    texec<true>(Budget);
  else
    texec<false>(Budget);
  return status() == MachineStatus::Running;
}
