//===- vm/Compiler.cpp - IR-to-bytecode compiler --------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
// Lowers each procedure graph to the register bytecode of vm/Bytecode.h.
// Expression trees compile left-to-right into temporaries, so every
// observable effect (goes-wrong checks, load counting) happens in exactly
// the order the tree walker performs it. Anything the walker resolves to a
// constant per evaluation — literals, data labels, procedure code values,
// string addresses — is resolved here once; failures the walker reports
// only when an expression is reached become Wrong instructions in place,
// so dead wrong code stays dead.
//
//===----------------------------------------------------------------------===//

#include "vm/Bytecode.h"

#include "support/Assert.h"
#include "support/Casting.h"
#include "syntax/PrimOps.h"

#include <unordered_set>

using namespace cmm;

namespace {

class ProcCompiler {
public:
  ProcCompiler(const IrProgram &Prog, const IrProc &P, CompiledProc &Out,
               uint32_t &MaxOut)
      : Prog(Prog), P(P), Out(Out), MaxOut(MaxOut) {}

  void compile();

private:
  //===-- Slot assignment -------------------------------------------------===//
  void assignSlots();
  void collectExprSyms(const Expr *E);
  void addSlot(Symbol S) {
    if (SlotOf.count(S))
      return;
    uint16_t Idx = static_cast<uint16_t>(Out.SlotSyms.size());
    SlotOf.emplace(S, Idx);
    Out.SlotSyms.push_back(S);
  }
  /// True when the walker's bindVar would route \p S to the local
  /// environment rather than a global register.
  bool isLocalBind(Symbol S) const {
    return P.VarTypes.count(S) || !Prog.Globals.count(S);
  }

  //===-- Emission helpers ------------------------------------------------===//
  uint16_t newTemp() {
    uint16_t R = NextTemp++;
    if (NextTemp > MaxRegs)
      MaxRegs = NextTemp;
    return R;
  }
  void resetTemps() { NextTemp = static_cast<uint16_t>(Out.SlotSyms.size()); }

  VmInstr &emit(Op K, SourceLoc Loc) {
    VmInstr I;
    I.K = K;
    I.Loc = Loc;
    Out.Code.push_back(I);
    return Out.Code.back();
  }
  uint32_t constIdx(const Value &V) {
    Out.Consts.push_back(V);
    return static_cast<uint32_t>(Out.Consts.size() - 1);
  }
  uint32_t msgIdx(std::string M) {
    Out.Msgs.push_back(std::move(M));
    return static_cast<uint32_t>(Out.Msgs.size() - 1);
  }
  uint32_t symIdx(Symbol S) {
    Out.Syms.push_back(S);
    return static_cast<uint32_t>(Out.Syms.size() - 1);
  }
  static uint32_t tyEnc(Type T) {
    return (uint32_t(T.Width) << 1) | (T.isFloat() ? 1 : 0);
  }

  //===-- Expressions ------------------------------------------------------===//
  uint16_t compileExpr(const Expr *E);
  /// The fused-operand encoding of \p E when it is a leaf the consuming
  /// instruction can read directly: a constant (literal, sizeof, resolved
  /// data/procedure/string address) or, when \p AllowSlot, a frame slot.
  /// Slot operands are bound-checked by the consumer, so a slot may only be
  /// fused when nothing the walker evaluates after it can go wrong first —
  /// callers pass AllowSlot = false for a left operand whose right-hand
  /// side is not itself a leaf.
  std::optional<uint16_t> leafOperand(const Expr *E, bool AllowSlot = true);
  std::optional<uint16_t> constOperand(const Value &V) {
    uint32_t Idx = constIdx(V);
    if (Idx > OperandIndexMask) // pool too large to encode; use LoadConst
      return std::nullopt;
    return static_cast<uint16_t>(OperandConst | Idx);
  }
  /// Compiles a left/right operand pair in walker evaluation order, fusing
  /// each side when that preserves the order of goes-wrong checks.
  void compileOperandPair(const Expr *L, const Expr *R, uint16_t &LEnc,
                          uint16_t &REnc);
  /// Records the source location of a fused named-slot operand just placed
  /// in field \p Field (0 = A, 1 = B, 2 = C) of the most recently emitted
  /// instruction, so a failed bound check reports the variable reference
  /// itself (CompiledProc::RvSlotLocs). No-op for constants and temps.
  void noteRvLoc(unsigned Field, uint16_t Enc, const Expr *E) {
    if ((Enc & OperandConst) || Enc >= Out.SlotSyms.size())
      return;
    Out.RvSlotLocs.emplace((uint64_t(Out.Code.size()) - 1) * 4 + Field,
                           E->loc());
  }
  uint16_t emitWrong(std::string Msg, SourceLoc Loc) {
    uint16_t R = newTemp();
    VmInstr &I = emit(Op::Wrong, Loc);
    I.A = R;
    I.Imm = msgIdx(std::move(Msg));
    return R;
  }
  /// Compile-time constant resolution, mirroring Executor::evalConstExpr.
  std::optional<Value> resolveConst(const Expr *E) const;
  Value codeValueOf(const IrProc *Target) const;

  //===-- Nodes ------------------------------------------------------------===//
  void layout();
  void placeChain(const Node *N);
  static const Node *fallthroughOf(const Node *N);
  void emitNode(const Node *N, const Node *LaidOutNext);
  void branchTo(Op K, uint16_t CondReg, const Node *Target, SourceLoc Loc);

  const IrProgram &Prog;
  const IrProc &P;
  CompiledProc &Out;
  uint32_t &MaxOut;

  std::unordered_map<Symbol, uint16_t> SlotOf;
  uint16_t NextTemp = 0, MaxRegs = 0;
  std::vector<const Node *> Order;
  std::vector<std::pair<uint32_t, uint32_t>> Fixups; ///< (instr, node id)
};

//===----------------------------------------------------------------------===//
// Slot assignment
//===----------------------------------------------------------------------===//

void ProcCompiler::collectExprSyms(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::Name: {
    const auto *N = cast<NameExpr>(E);
    if (N->Ref == RefKind::Local || N->Ref == RefKind::Continuation)
      addSlot(N->Name);
    return;
  }
  case Expr::Kind::Load:
    collectExprSyms(cast<LoadExpr>(E)->Addr.get());
    return;
  case Expr::Kind::Unary:
    collectExprSyms(cast<UnaryExpr>(E)->Operand.get());
    return;
  case Expr::Kind::Binary:
    collectExprSyms(cast<BinaryExpr>(E)->Lhs.get());
    collectExprSyms(cast<BinaryExpr>(E)->Rhs.get());
    return;
  case Expr::Kind::Prim:
    for (const ExprPtr &A : cast<PrimExpr>(E)->Args)
      collectExprSyms(A.get());
    return;
  default:
    return;
  }
}

void ProcCompiler::assignSlots() {
  // Declared locals and parameters first, then anything else a node binds
  // or reads locally (the walker's ρ accepts any symbol).
  for (const auto &N : P.Nodes) {
    switch (N->kind()) {
    case Node::Kind::Entry:
      for (const auto &[Name, Target] : cast<EntryNode>(N.get())->Conts)
        addSlot(Name);
      break;
    case Node::Kind::CopyIn:
      for (Symbol V : cast<CopyInNode>(N.get())->Vars)
        if (isLocalBind(V))
          addSlot(V);
      break;
    case Node::Kind::CopyOut:
      for (const Expr *E : cast<CopyOutNode>(N.get())->Exprs)
        collectExprSyms(E);
      break;
    case Node::Kind::CalleeSaves:
      for (Symbol V : cast<CalleeSavesNode>(N.get())->Saved)
        addSlot(V);
      break;
    case Node::Kind::Assign: {
      const auto *A = cast<AssignNode>(N.get());
      if (!A->IsGlobal)
        addSlot(A->Var);
      collectExprSyms(A->Value);
      break;
    }
    case Node::Kind::Store:
      collectExprSyms(cast<StoreNode>(N.get())->Addr);
      collectExprSyms(cast<StoreNode>(N.get())->Value);
      break;
    case Node::Kind::Branch:
      collectExprSyms(cast<BranchNode>(N.get())->Cond);
      break;
    case Node::Kind::Call:
      collectExprSyms(cast<CallNode>(N.get())->Callee);
      break;
    case Node::Kind::Jump:
      collectExprSyms(cast<JumpNode>(N.get())->Callee);
      break;
    case Node::Kind::CutTo:
      collectExprSyms(cast<CutToNode>(N.get())->Cont);
      break;
    default:
      break;
    }
  }
  Out.NumSlots = static_cast<uint16_t>(Out.SlotSyms.size());
  MaxRegs = Out.NumSlots;
}

//===----------------------------------------------------------------------===//
// Constant resolution
//===----------------------------------------------------------------------===//

Value ProcCompiler::codeValueOf(const IrProc *Target) const {
  for (size_t I = 0; I < Prog.Procs.size(); ++I)
    if (Prog.Procs[I].get() == Target)
      return Value::code(I);
  cmm_unreachable("procedure not in this program");
}

std::optional<Value> ProcCompiler::resolveConst(const Expr *E) const {
  switch (E->kind()) {
  case Expr::Kind::StrLit: {
    auto It = Prog.StrAddrs.find(cast<StrLitExpr>(E));
    if (It == Prog.StrAddrs.end())
      return std::nullopt;
    return Value::bits(TargetInfo::nativePointer().Width, It->second);
  }
  case Expr::Kind::Name: {
    const auto *N = cast<NameExpr>(E);
    if (N->Ref == RefKind::DataLabel) {
      auto It = Prog.DataAddrs.find(N->Name);
      if (It == Prog.DataAddrs.end())
        return std::nullopt;
      return Value::bits(TargetInfo::nativePointer().Width, It->second);
    }
    if (N->Ref == RefKind::Proc || N->Ref == RefKind::Import) {
      if (const IrProc *Target = Prog.findProc(N->Name))
        return codeValueOf(Target);
      auto It = Prog.DataAddrs.find(N->Name);
      if (It != Prog.DataAddrs.end())
        return Value::bits(TargetInfo::nativePointer().Width, It->second);
      return std::nullopt;
    }
    return std::nullopt;
  }
  default:
    return std::nullopt;
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

std::optional<uint16_t> ProcCompiler::leafOperand(const Expr *E,
                                                  bool AllowSlot) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    return constOperand(Value::bits(E->Ty.Width, cast<IntLitExpr>(E)->Value));
  case Expr::Kind::FloatLit:
    return constOperand(Value::flt(E->Ty.Width, cast<FloatLitExpr>(E)->Value));
  case Expr::Kind::Sizeof:
    return constOperand(Value::bits(32, cast<SizeofExpr>(E)->SizeInBytes));
  case Expr::Kind::StrLit:
    if (std::optional<Value> V = resolveConst(E))
      return constOperand(*V);
    return std::nullopt;
  case Expr::Kind::Name: {
    const auto *N = cast<NameExpr>(E);
    if (N->Ref == RefKind::Local || N->Ref == RefKind::Continuation) {
      if (!AllowSlot)
        return std::nullopt;
      return SlotOf.at(N->Name);
    }
    if (N->Ref == RefKind::Proc || N->Ref == RefKind::DataLabel ||
        N->Ref == RefKind::Import)
      if (std::optional<Value> V = resolveConst(E))
        return constOperand(*V);
    return std::nullopt;
  }
  default:
    return std::nullopt;
  }
}

void ProcCompiler::compileOperandPair(const Expr *L, const Expr *R,
                                      uint16_t &LEnc, uint16_t &REnc) {
  if (std::optional<uint16_t> RC = leafOperand(R)) {
    // The right side is a leaf: nothing can go wrong between the left
    // operand's check at the instruction and the right's, so a left slot
    // may be fused too.
    if (std::optional<uint16_t> LC = leafOperand(L))
      LEnc = *LC;
    else
      LEnc = compileExpr(L);
    REnc = *RC;
    return;
  }
  // The right side emits code that may go wrong; a fused left slot would
  // be checked after that code runs, inverting the walker's order. Only a
  // constant (checked nowhere) may still be fused on the left.
  if (std::optional<uint16_t> LC = leafOperand(L, /*AllowSlot=*/false))
    LEnc = *LC;
  else
    LEnc = compileExpr(L);
  REnc = compileExpr(R);
}

uint16_t ProcCompiler::compileExpr(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::IntLit: {
    uint16_t R = newTemp();
    VmInstr &I = emit(Op::LoadConst, E->loc());
    I.A = R;
    I.Imm = constIdx(Value::bits(E->Ty.Width, cast<IntLitExpr>(E)->Value));
    return R;
  }
  case Expr::Kind::FloatLit: {
    uint16_t R = newTemp();
    VmInstr &I = emit(Op::LoadConst, E->loc());
    I.A = R;
    I.Imm = constIdx(Value::flt(E->Ty.Width, cast<FloatLitExpr>(E)->Value));
    return R;
  }
  case Expr::Kind::Sizeof: {
    uint16_t R = newTemp();
    VmInstr &I = emit(Op::LoadConst, E->loc());
    I.A = R;
    I.Imm = constIdx(Value::bits(32, cast<SizeofExpr>(E)->SizeInBytes));
    return R;
  }
  case Expr::Kind::StrLit: {
    if (std::optional<Value> V = resolveConst(E)) {
      uint16_t R = newTemp();
      VmInstr &I = emit(Op::LoadConst, E->loc());
      I.A = R;
      I.Imm = constIdx(*V);
      return R;
    }
    return emitWrong("string literal without a data address", E->loc());
  }
  case Expr::Kind::Name: {
    const auto *N = cast<NameExpr>(E);
    switch (N->Ref) {
    case RefKind::Local:
    case RefKind::Continuation: {
      uint16_t R = newTemp();
      VmInstr &I = emit(Op::LoadLocal, E->loc());
      I.A = R;
      I.B = SlotOf.at(N->Name);
      return R;
    }
    case RefKind::Global: {
      uint16_t R = newTemp();
      VmInstr &I = emit(Op::LoadGlobal, E->loc());
      I.A = R;
      I.Imm = symIdx(N->Name);
      return R;
    }
    case RefKind::Proc:
    case RefKind::DataLabel:
    case RefKind::Import: {
      if (std::optional<Value> V = resolveConst(E)) {
        uint16_t R = newTemp();
        VmInstr &I = emit(Op::LoadConst, E->loc());
        I.A = R;
        I.Imm = constIdx(*V);
        return R;
      }
      // Imports may also name globals of another module: resolve through
      // the global environment at run time, like the walker does.
      uint16_t R = newTemp();
      VmInstr &I = emit(Op::LoadNameDyn, E->loc());
      I.A = R;
      I.Imm = symIdx(N->Name);
      return R;
    }
    case RefKind::Unresolved:
      break;
    }
    return emitWrong("internal: unresolved name reached the evaluator",
                     E->loc());
  }
  case Expr::Kind::Load: {
    const auto *L = cast<LoadExpr>(E);
    uint16_t Addr;
    if (std::optional<uint16_t> Enc = leafOperand(L->Addr.get()))
      Addr = *Enc;
    else
      Addr = compileExpr(L->Addr.get());
    uint16_t R = newTemp();
    VmInstr &I = emit(Op::MemLoad, E->loc());
    I.A = R;
    I.B = Addr;
    I.Imm = tyEnc(L->AccessTy);
    noteRvLoc(1, Addr, L->Addr.get());
    return R;
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    uint16_t Operand;
    if (std::optional<uint16_t> Enc = leafOperand(U->Operand.get()))
      Operand = *Enc;
    else
      Operand = compileExpr(U->Operand.get());
    uint16_t R = newTemp();
    VmInstr &I = emit(Op::Unary, E->loc());
    I.A = R;
    I.B = Operand;
    I.Imm = static_cast<uint32_t>(U->Op);
    noteRvLoc(1, Operand, U->Operand.get());
    return R;
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    uint16_t L, R2;
    compileOperandPair(B->Lhs.get(), B->Rhs.get(), L, R2);
    uint16_t R = newTemp();
    VmInstr &I = emit(Op::Binary, E->loc());
    I.A = R;
    I.B = L;
    I.C = R2;
    I.Imm = static_cast<uint32_t>(B->Op);
    noteRvLoc(1, L, B->Lhs.get());
    noteRvLoc(2, R2, B->Rhs.get());
    return R;
  }
  case Expr::Kind::Prim: {
    const auto *Pr = cast<PrimExpr>(E);
    std::optional<PrimKind> K = lookupPrim(Prog.Names->spelling(Pr->Name));
    if (!K) {
      // The walker rejects the primitive before evaluating its arguments.
      return emitWrong("unknown primitive", E->loc());
    }
    uint16_t Regs[2] = {0, 0};
    unsigned Count = static_cast<unsigned>(Pr->Args.size());
    if (Count == 1) {
      if (std::optional<uint16_t> Enc = leafOperand(Pr->Args[0].get()))
        Regs[0] = *Enc;
      else
        Regs[0] = compileExpr(Pr->Args[0].get());
    } else if (Count == 2) {
      compileOperandPair(Pr->Args[0].get(), Pr->Args[1].get(), Regs[0],
                         Regs[1]);
    } else {
      // Rare arities take the unfused path (extra arguments are still
      // compiled: their goes-wrong checks run in order).
      unsigned Idx = 0;
      for (const ExprPtr &A : Pr->Args) {
        uint16_t R = compileExpr(A.get());
        if (Idx < 2)
          Regs[Idx] = R;
        ++Idx;
      }
    }
    uint16_t R = newTemp();
    VmInstr &I = emit(Op::Prim, E->loc());
    I.A = R;
    I.B = Regs[0];
    I.C = Regs[1];
    I.Imm = static_cast<uint32_t>(*K) |
            (std::min(Count, 2u) << 16);
    if (Count > 0)
      noteRvLoc(1, Regs[0], Pr->Args[0].get());
    if (Count > 1)
      noteRvLoc(2, Regs[1], Pr->Args[1].get());
    return R;
  }
  }
  cmm_unreachable("unknown expression kind");
}

//===----------------------------------------------------------------------===//
// Layout and node emission
//===----------------------------------------------------------------------===//

const Node *ProcCompiler::fallthroughOf(const Node *N) {
  switch (N->kind()) {
  case Node::Kind::Entry:
    return cast<EntryNode>(N)->Next;
  case Node::Kind::CopyIn:
    return cast<CopyInNode>(N)->Next;
  case Node::Kind::CopyOut:
    return cast<CopyOutNode>(N)->Next;
  case Node::Kind::CalleeSaves:
    return cast<CalleeSavesNode>(N)->Next;
  case Node::Kind::Assign:
    return cast<AssignNode>(N)->Next;
  case Node::Kind::Store:
    return cast<StoreNode>(N)->Next;
  case Node::Kind::Branch:
    return cast<BranchNode>(N)->FalseDst;
  default:
    return nullptr;
  }
}

void ProcCompiler::placeChain(const Node *N) {
  while (N && Out.PcOfNode[N->Id] == ~0u) {
    Out.PcOfNode[N->Id] = 0; // placed marker; real pc assigned at emission
    Order.push_back(N);
    N = fallthroughOf(N);
  }
}

void ProcCompiler::layout() {
  Out.PcOfNode.assign(P.Nodes.size(), ~0u);
  placeChain(P.EntryPoint);
  // Chains started from secondary successors, in discovery order.
  for (size_t I = 0; I < Order.size(); ++I) {
    const Node *N = Order[I];
    switch (N->kind()) {
    case Node::Kind::Entry:
      for (const auto &[Name, Target] : cast<EntryNode>(N)->Conts)
        placeChain(Target);
      break;
    case Node::Kind::Branch:
      placeChain(cast<BranchNode>(N)->TrueDst);
      break;
    case Node::Kind::Call: {
      const ContBundle &B = cast<CallNode>(N)->Bundle;
      for (Node *T : B.ReturnsTo)
        placeChain(T);
      for (Node *T : B.UnwindsTo)
        placeChain(T);
      for (Node *T : B.CutsTo)
        placeChain(T);
      break;
    }
    case Node::Kind::CutTo:
      for (Node *T : cast<CutToNode>(N)->AlsoCutsTo)
        placeChain(T);
      break;
    default:
      break;
    }
  }
  // Stragglers (nodes reachable only through continuation values created
  // elsewhere, or plain dead code) still get code so every Node* can be
  // mapped to a pc.
  for (const auto &N : P.Nodes)
    placeChain(N.get());
}

void ProcCompiler::branchTo(Op K, uint16_t CondReg, const Node *Target,
                            SourceLoc Loc) {
  VmInstr &I = emit(K, Loc);
  I.B = CondReg;
  Fixups.emplace_back(static_cast<uint32_t>(Out.Code.size() - 1),
                      Target->Id);
}

void ProcCompiler::emitNode(const Node *N, const Node *LaidOutNext) {
  uint32_t StartPc = static_cast<uint32_t>(Out.Code.size());
  Out.PcOfNode[N->Id] = StartPc;
  resetTemps();

  switch (N->kind()) {
  case Node::Kind::Entry: {
    const auto *E = cast<EntryNode>(N);
    std::vector<std::pair<uint16_t, Node *>> Plan;
    Plan.reserve(E->Conts.size());
    for (const auto &[Name, Target] : E->Conts)
      Plan.emplace_back(SlotOf.at(Name), Target);
    Out.EntryPlans.push_back(std::move(Plan));
    VmInstr &I = emit(Op::EntryOp, N->Loc);
    I.Imm = static_cast<uint32_t>(Out.EntryPlans.size() - 1);
    break;
  }
  case Node::Kind::Exit: {
    const auto *E = cast<ExitNode>(N);
    VmInstr &I = emit(Op::ExitOp, N->Loc);
    I.A = static_cast<uint16_t>(E->ContIndex);
    I.B = static_cast<uint16_t>(E->AltCount);
    break;
  }
  case Node::Kind::CopyIn: {
    const auto *C = cast<CopyInNode>(N);
    std::vector<CopyDest> Plan;
    Plan.reserve(C->Vars.size());
    for (Symbol V : C->Vars) {
      CopyDest D;
      if (isLocalBind(V)) {
        D.Slot = SlotOf.at(V);
      } else {
        D.Global = true;
        D.Sym = V;
      }
      Plan.push_back(D);
    }
    Out.CopyPlans.push_back(std::move(Plan));
    VmInstr &I = emit(Op::CopyIn, N->Loc);
    I.Imm = static_cast<uint32_t>(Out.CopyPlans.size() - 1);
    break;
  }
  case Node::Kind::CopyOut: {
    const auto *C = cast<CopyOutNode>(N);
    if (C->Exprs.size() > MaxOut)
      MaxOut = static_cast<uint32_t>(C->Exprs.size());
    for (size_t I = 0; I < C->Exprs.size(); ++I) {
      if (std::optional<uint16_t> Enc = leafOperand(C->Exprs[I])) {
        VmInstr &S = emit(Op::StageOut, C->Exprs[I]->loc());
        S.B = *Enc;
        S.Imm = static_cast<uint32_t>(I);
        continue;
      }
      uint16_t R = compileExpr(C->Exprs[I]);
      VmInstr &Last = Out.Code.back();
      if (Last.K != Op::Wrong && Last.A == R) {
        // Stage straight out of the expression's final instruction; the
        // argument area is still only written at Commit.
        Last.Flags |= FlagStagesOut;
        Last.A = static_cast<uint16_t>(I);
      } else {
        VmInstr &S = emit(Op::StageOut, C->Exprs[I]->loc());
        S.B = R;
        S.Imm = static_cast<uint32_t>(I);
      }
      resetTemps(); // the staged value is safe; temps are dead
    }
    VmInstr &I = emit(Op::Commit, N->Loc);
    I.Imm = static_cast<uint32_t>(C->Exprs.size());
    break;
  }
  case Node::Kind::CalleeSaves: {
    const auto *C = cast<CalleeSavesNode>(N);
    std::vector<uint16_t> Plan;
    Plan.reserve(C->Saved.size());
    for (Symbol V : C->Saved)
      Plan.push_back(SlotOf.at(V));
    Out.SavePlans.push_back(std::move(Plan));
    VmInstr &I = emit(Op::CalleeSaves, N->Loc);
    I.Imm = static_cast<uint32_t>(Out.SavePlans.size() - 1);
    break;
  }
  case Node::Kind::Assign: {
    const auto *A = cast<AssignNode>(N);
    if (A->IsGlobal) {
      uint16_t R;
      if (std::optional<uint16_t> Enc = leafOperand(A->Value))
        R = *Enc;
      else
        R = compileExpr(A->Value);
      VmInstr &I = emit(Op::SetGlobal, N->Loc);
      I.B = R;
      I.Imm = symIdx(A->Var);
      noteRvLoc(1, R, A->Value);
      break;
    }
    (void)compileExpr(A->Value);
    VmInstr &Last = Out.Code.back();
    if (Last.K != Op::Wrong) {
      // Retarget the expression's final (value-producing) instruction at
      // the variable's slot; the walker binds only after the whole
      // expression evaluates, which FlagSetsBound preserves.
      Last.A = SlotOf.at(A->Var);
      Last.Flags |= FlagSetsBound;
    }
    break;
  }
  case Node::Kind::Store: {
    const auto *St = cast<StoreNode>(N);
    uint16_t Addr, V;
    compileOperandPair(St->Addr, St->Value, Addr, V);
    VmInstr &I = emit(Op::MemStore, N->Loc);
    I.A = Addr;
    I.B = V;
    I.Imm = tyEnc(St->AccessTy);
    noteRvLoc(0, Addr, St->Addr);
    noteRvLoc(1, V, St->Value);
    break;
  }
  case Node::Kind::Branch: {
    const auto *B = cast<BranchNode>(N);
    if (std::optional<uint16_t> Enc = leafOperand(B->Cond)) {
      branchTo(Op::BranchIf, *Enc, B->TrueDst, N->Loc);
      noteRvLoc(1, *Enc, B->Cond);
    } else {
      uint16_t Cond = compileExpr(B->Cond);
      VmInstr &Last = Out.Code.back();
      if (Last.K == Op::Binary && Last.A == Cond) {
        // Fuse the condition's compare into the branch (the temporary is
        // dead past this node; the BinOp moves to the A field).
        Last.K = Op::BranchCmp;
        Last.A = static_cast<uint16_t>(Last.Imm);
        Fixups.emplace_back(static_cast<uint32_t>(Out.Code.size() - 1),
                            B->TrueDst->Id);
      } else {
        branchTo(Op::BranchIf, Cond, B->TrueDst, N->Loc);
      }
    }
    if (B->FalseDst != LaidOutNext)
      branchTo(Op::Goto, 0, B->FalseDst, N->Loc);
    break;
  }
  case Node::Kind::Call: {
    const auto *C = cast<CallNode>(N);
    uint16_t Callee;
    if (std::optional<uint16_t> Enc = leafOperand(C->Callee))
      Callee = *Enc;
    else
      Callee = compileExpr(C->Callee);
    VmInstr &I = emit(Op::CallOp, N->Loc);
    I.B = Callee;
    I.N = N;
    noteRvLoc(1, Callee, C->Callee);
    break;
  }
  case Node::Kind::Jump: {
    const auto *J = cast<JumpNode>(N);
    uint16_t Callee;
    if (std::optional<uint16_t> Enc = leafOperand(J->Callee))
      Callee = *Enc;
    else
      Callee = compileExpr(J->Callee);
    VmInstr &I = emit(Op::JumpOp, N->Loc);
    I.B = Callee;
    I.N = N;
    noteRvLoc(1, Callee, J->Callee);
    break;
  }
  case Node::Kind::CutTo: {
    const auto *C = cast<CutToNode>(N);
    uint16_t Cont;
    if (std::optional<uint16_t> Enc = leafOperand(C->Cont))
      Cont = *Enc;
    else
      Cont = compileExpr(C->Cont);
    VmInstr &I = emit(Op::CutToOp, N->Loc);
    I.B = Cont;
    I.N = N;
    noteRvLoc(1, Cont, C->Cont);
    break;
  }
  case Node::Kind::Yield: {
    emit(Op::YieldOp, N->Loc);
    break;
  }
  }

  // Explicit jump when the fall-through successor is laid out elsewhere.
  if (const Node *Next = fallthroughOf(N))
    if (N->kind() != Node::Kind::Branch && Next != LaidOutNext)
      branchTo(Op::Goto, 0, Next, N->Loc);

  VmInstr &First = Out.Code[StartPc];
  First.Flags |= FlagStartsNode;
  First.N = N;
}

void ProcCompiler::compile() {
  if (!P.EntryPoint) {
    Out.HasBody = false;
    return;
  }
  Out.HasBody = true;
  assignSlots();
  layout();
  for (size_t I = 0; I < Order.size(); ++I)
    emitNode(Order[I], I + 1 < Order.size() ? Order[I + 1] : nullptr);
  for (const auto &[InstrIdx, NodeId] : Fixups)
    Out.Code[InstrIdx].Imm = Out.PcOfNode[NodeId];
  Out.EntryPc = Out.PcOfNode[P.EntryPoint->Id];
  Out.NumRegs = MaxRegs;
}

} // namespace

CompiledProgram cmm::compileToBytecode(const IrProgram &Prog) {
  CompiledProgram CP;
  CP.Procs.resize(Prog.Procs.size());
  for (size_t I = 0; I < Prog.Procs.size(); ++I) {
    const IrProc *P = Prog.Procs[I].get();
    CP.Index.emplace(P, static_cast<uint32_t>(I));
    CP.Procs[I].Proc = P;
    ProcCompiler(Prog, *P, CP.Procs[I], CP.MaxOut).compile();
  }
  return CP;
}

//===----------------------------------------------------------------------===//
// Disassembly
//===----------------------------------------------------------------------===//

std::string cmm::disassemble(const CompiledProc &C, const Interner &Names) {
  auto OpName = [](Op K) -> const char * {
    switch (K) {
    case Op::LoadConst: return "ldc";
    case Op::LoadLocal: return "ldl";
    case Op::LoadGlobal: return "ldg";
    case Op::LoadNameDyn: return "ldn";
    case Op::Unary: return "un";
    case Op::Binary: return "bin";
    case Op::Prim: return "prim";
    case Op::MemLoad: return "load";
    case Op::Wrong: return "wrong";
    case Op::SetGlobal: return "stg";
    case Op::MemStore: return "store";
    case Op::StageOut: return "stage";
    case Op::Commit: return "commit";
    case Op::CopyIn: return "copyin";
    case Op::CalleeSaves: return "saves";
    case Op::EntryOp: return "entry";
    case Op::Goto: return "goto";
    case Op::BranchIf: return "brt";
    case Op::BranchCmp: return "brc";
    case Op::ExitOp: return "exit";
    case Op::CallOp: return "call";
    case Op::JumpOp: return "jump";
    case Op::CutToOp: return "cut";
    case Op::YieldOp: return "yield";
    }
    return "?";
  };
  std::string S;
  S += "proc " + Names.spelling(C.Proc->Name) + " (" +
       std::to_string(C.NumSlots) + " slots, " + std::to_string(C.NumRegs) +
       " regs)\n";
  if (!C.HasBody) {
    S += "  <no body>\n";
    return S;
  }
  // Fused operands render as r<n> (register) or k<n> (constant pool).
  auto Rv = [](uint16_t Enc) {
    return (Enc & OperandConst)
               ? "k" + std::to_string(Enc & OperandIndexMask)
               : "r" + std::to_string(Enc);
  };
  for (size_t I = 0; I < C.Code.size(); ++I) {
    const VmInstr &Ins = C.Code[I];
    S += (Ins.Flags & FlagStartsNode) ? "* " : "  ";
    S += std::to_string(I) + ":\t" + OpName(Ins.K) + "\ta=" +
         std::to_string(Ins.A) + " b=" + Rv(Ins.B) + " c=" + Rv(Ins.C) +
         " imm=" + std::to_string(Ins.Imm);
    if (Ins.Flags & FlagSetsBound)
      S += " [bind]";
    if (Ins.Flags & FlagStagesOut)
      S += " [stage]";
    S += "\n";
  }
  return S;
}
