//===- vm/Fuse.h - Superinstruction fusion for the threaded tier -*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The peephole fusion pass behind the threaded executor (vm/Threaded.h).
/// It post-processes a CompiledProgram into a ThreadedProgram: a per-pc
/// dispatch-key stream in which hot adjacent instruction pairs are collapsed
/// into superinstructions. The bytecode itself is untouched and the key
/// stream is pc-for-pc parallel to it, which is what makes the pass
/// observably invisible:
///
///  - every branch target, PcOfNode entry, and RvSlotLocs key keeps its
///    meaning (threaded pc == bytecode pc);
///  - the second half of a fused pair stays in place as an ordinary
///    instruction, so control that lands on it directly — a branch target,
///    or a budget-exhausted run resuming at its node boundary — executes it
///    standalone with identical semantics;
///  - a superinstruction performs both components' node-boundary accounting
///    (budget, Steps, onStep) and goes-wrong checks in exactly the order
///    the plain dispatch loop would.
///
/// The supported pair set is fixed at build time (each pair has a dedicated
/// handler in the dispatch loop); a FusionTable selects which pairs are
/// live, either wholesale (all / none — the bench ablation) or derived from
/// Profiler data (fromProfile: static pair sites weighted by the profiler's
/// per-procedure step counts).
///
//===----------------------------------------------------------------------===//

#ifndef CMM_VM_FUSE_H
#define CMM_VM_FUSE_H

#include "obs/Profiler.h"
#include "vm/Bytecode.h"

#include <array>
#include <memory>

namespace cmm {

/// Dispatch keys of the threaded tier. The first NumBaseOps values mirror
/// Op exactly (a key stream with no fusion is the op stream); the rest name
/// the fused pairs.
enum class TOp : uint8_t {
  LoadConst,
  LoadLocal,
  LoadGlobal,
  LoadNameDyn,
  Unary,
  Binary,
  Prim,
  MemLoad,
  Wrong,
  SetGlobal,
  MemStore,
  StageOut,
  Commit,
  CopyIn,
  CalleeSaves,
  EntryOp,
  Goto,
  BranchIf,
  BranchCmp,
  ExitOp,
  CallOp,
  JumpOp,
  CutToOp,
  YieldOp,

  // Superinstructions. Every First falls through unconditionally, so the
  // pair is a straight line; Second may be anything, including a transfer.
  BinaryBinary, ///< two chained Binary ops (b = ...; c = b ...)
  BinaryGoto,   ///< loop latch: assign then back-edge
  BinaryBranchIf,
  BinaryBranchCmp, ///< assign then fused compare-and-branch
  UnaryBranchIf,
  LoadGlobalBinary,
  SetGlobalGoto,
  StageStage,  ///< adjacent CopyOut stages
  StageCommit, ///< last stage and its commit
  CommitCall,  ///< argument-area commit feeding the transfer
  CommitExit,
  CommitJump,
  CommitCut,
  EntryCopyIn, ///< procedure prologue: Entry node then CopyIn node
  CopyInGoto,

  NumTOps,
};

inline constexpr unsigned NumBaseOps = unsigned(Op::YieldOp) + 1;
static_assert(unsigned(TOp::YieldOp) == unsigned(Op::YieldOp),
              "TOp must mirror Op over the base range");

/// Short mnemonic for \p K ("bin+brc", ... falls back to the base-op name).
const char *superOpName(TOp K);

/// One supported fusion: Keys[pc] becomes Fused where Code[pc].K == First
/// and Code[pc+1].K == Second.
struct FusionPair {
  Op First;
  Op Second;
  TOp Fused;
};

/// Selects which of the supported pairs the fusion pass applies.
class FusionTable {
public:
  /// Every pair the dispatch loop has a handler for, in TOp order.
  static const std::vector<FusionPair> &supportedPairs();

  /// All supported pairs live (the default configuration).
  static FusionTable all();
  /// Fusion disabled — the key stream degenerates to the op stream. This is
  /// the bench_interp ablation configuration.
  static FusionTable none();

  /// Derives a table from profile data: a supported pair is enabled when
  /// its static occurrence count, weighted by the profiler's per-procedure
  /// step counts (hot procedures vote with their executed steps), reaches
  /// \p MinShare of the total weighted pair mass. With an empty profile
  /// every procedure weighs 1, degrading gracefully to static frequency.
  static FusionTable
  fromProfile(const CompiledProgram &CP,
              const std::unordered_map<const IrProc *, ProcProfile> &Procs,
              double MinShare = 0.01);

  /// The superinstruction for (First, Second), or TOp::NumTOps when the
  /// pair is unsupported or disabled.
  TOp lookup(Op First, Op Second) const {
    return TOp(Map[unsigned(First) * NumBaseOps + unsigned(Second)]);
  }

  bool anyEnabled() const { return Enabled; }

private:
  FusionTable();
  void enable(const FusionPair &P);

  std::array<uint8_t, NumBaseOps * NumBaseOps> Map;
  bool Enabled = false;
};

/// Fuse-time statistics (static counts — the dispatch loop is never taxed
/// with dynamic fusion counters).
struct FusionStats {
  /// Pairs collapsed into a superinstruction (fusion hits).
  uint64_t FusedSites = 0;
  /// Adjacent straight-line pairs examined that no live table entry
  /// covered (fusion misses).
  uint64_t MissedSites = 0;
  /// Fused sites per superinstruction kind (indexed by TOp).
  std::array<uint64_t, size_t(TOp::NumTOps)> SitesByOp{};
};

/// One procedure's dispatch-key stream, pc-for-pc parallel to the bytecode
/// of the CompiledProc at the same index.
struct ThreadedProc {
  std::vector<uint8_t> Keys;
};

/// A threaded program: the shared bytecode plus one key stream per
/// procedure. Immutable after fuseProgram returns, so any number of
/// ThreadedMachines on any number of threads may share one.
struct ThreadedProgram {
  std::shared_ptr<const CompiledProgram> Bytecode;
  std::vector<ThreadedProc> Procs; ///< parallel to Bytecode->Procs
  FusionStats Fusion;
};

/// Runs the fusion pass over \p Bytecode under \p Table. \p Bytecode must
/// be non-null; the returned program co-owns it.
std::shared_ptr<const ThreadedProgram>
fuseProgram(std::shared_ptr<const CompiledProgram> Bytecode,
            const FusionTable &Table = FusionTable::all());

/// Renders procedure \p ProcIdx of \p TP as a listing in the style of
/// disassemble(), with fused sites prefixed by their superinstruction
/// mnemonic (cmmi --dump-bytecode under --backend=threaded).
std::string disassembleThreaded(const ThreadedProgram &TP, uint32_t ProcIdx,
                                const Interner &Names);

} // namespace cmm

#endif // CMM_VM_FUSE_H
