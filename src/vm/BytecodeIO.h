//===- vm/BytecodeIO.h - Bytecode encode/decode -----------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary encode/decode for CompiledProgram — the bytecode half of the
/// `cmmex-artifact-v2` persistent-cache format (docs/ENGINE.md § "Persistent
/// cache"). The encoding is positional against the owning IrProgram: the
/// i-th CompiledProc binds to IrProgram::Procs[i], graph-node pointers
/// travel as node ids, and symbols travel as spellings re-interned into the
/// program's interner on decode (which must therefore happen before the
/// artifact is published to other threads). Like ir/Serialize.h the
/// encoding is canonical — unordered containers are emitted sorted — so
/// encode(decode(encode(C))) is byte-identical.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_VM_BYTECODEIO_H
#define CMM_VM_BYTECODEIO_H

#include "support/ByteIO.h"
#include "vm/Bytecode.h"

#include <memory>
#include <string>

namespace cmm {

/// Version of the bytecode blob layout; bumped on any instruction-set or
/// encoding change so stale cache files are rejected and recompiled.
inline constexpr uint32_t BytecodeFormatVersion = 2;

/// Appends the canonical encoding of \p C (compiled from \p Prog) to \p W.
void serializeBytecode(const CompiledProgram &C, const IrProgram &Prog,
                       ByteWriter &W);

/// Decodes a program serialized by serializeBytecode, relinking node and
/// procedure pointers against \p Prog (which must be the deserialized form
/// of the IR the bytecode was compiled from). Returns null with \p Err set
/// (when non-null) on malformed, truncated, or version-mismatched input.
std::unique_ptr<CompiledProgram>
deserializeBytecode(ByteReader &R, const IrProgram &Prog,
                    std::string *Err = nullptr);

} // namespace cmm

#endif // CMM_VM_BYTECODEIO_H
