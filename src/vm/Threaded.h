//===- vm/Threaded.h - Threaded-code executor for Abstract C-- --*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The third executor tier: runs the register bytecode of vm/Bytecode.h
/// through a threaded dispatch loop (computed-goto label-address dispatch on
/// GCC/Clang; a portable switch fallback when CMM_NO_COMPUTED_GOTO is
/// defined at configure time) over the superinstruction key stream produced
/// by the fusion pass in vm/Fuse.h.
///
/// ThreadedMachine derives from VmMachine and replaces only the dispatch
/// loop: frames, cuts, the Table 1 run-time substrate, global access, and
/// the expression slow paths are the VM's own code, so every observable —
/// goes-wrong reasons and locations (including fused-operand wrongLoc via
/// RvSlotLocs), the 13 Stats counters, MachineObserver events, and
/// node-boundary fuel accounting — is preserved by construction everywhere
/// except the loop, and the loop's preservation argument is in
/// docs/BYTECODE.md § "Threaded tier".
///
//===----------------------------------------------------------------------===//

#ifndef CMM_VM_THREADED_H
#define CMM_VM_THREADED_H

#include "vm/Fuse.h"
#include "vm/Vm.h"

namespace cmm {

/// The dispatch model this build selected: "computed-goto" on GCC/Clang, or
/// "switch" under -DCMM_NO_COMPUTED_GOTO (recorded in bench metadata so the
/// two builds' numbers are never conflated).
const char *threadedDispatchKind();

/// The threaded-code executor. One ThreadedMachine is one C-- thread.
class ThreadedMachine final : public VmMachine {
public:
  /// Compiles the bytecode and fuses it under the default table.
  explicit ThreadedMachine(const IrProgram &Prog);

  /// Shares a pre-fused program (the engine's artifact cache fuses once and
  /// hands the same ThreadedProgram to every executor over the same
  /// program). \p Shared must be non-null and fused from \p Prog 's
  /// bytecode.
  ThreadedMachine(const IrProgram &Prog,
                  std::shared_ptr<const ThreadedProgram> Shared);

  std::string_view backendName() const override { return "threaded"; }

  bool step() override;
  MachineStatus run(uint64_t MaxSteps = ~uint64_t(0)) override;

  /// The fused form (for cmmi --dump-bytecode and tests).
  const ThreadedProgram &threadedProgram() const { return *TP; }

private:
  template <bool Observed> void texec(uint64_t &Budget);

  std::shared_ptr<const ThreadedProgram> TP;
};

} // namespace cmm

#endif // CMM_VM_THREADED_H
