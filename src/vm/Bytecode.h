//===- vm/Bytecode.h - Register bytecode for Abstract C-- -------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact register bytecode for the checked IR, executed by vm/Vm.h. One
/// CompiledProc per IrProc: graph nodes are linearized with fall-through,
/// environment symbols become dense frame-slot indices, and everything the
/// tree walker resolves per step (literal values, data addresses, procedure
/// code values, continuation-bundle edges) is resolved once at compile time.
///
/// The instruction encoding and its semantics-preservation argument are
/// documented in docs/BYTECODE.md.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_VM_BYTECODE_H
#define CMM_VM_BYTECODE_H

#include "ir/Ir.h"
#include "sem/Value.h"

#include <string>
#include <vector>

namespace cmm {

/// Fused-operand encoding. Operand fields marked "rv" below hold either a
/// register (bit 15 clear) or a constant-pool index (bit 15 set): leaf
/// expressions — literals, data labels, procedure values, and frame slots —
/// feed consuming instructions directly, with no LoadConst/LoadLocal
/// dispatch. A register operand below NumSlots is a named local and is
/// bound-checked on read (temporaries, at NumSlots and above, are always
/// written before use). Fusion never reorders observable effects: a slot
/// operand is only fused when every sub-expression the walker would
/// evaluate after it is itself a leaf (docs/BYTECODE.md).
enum : uint16_t {
  OperandConst = 0x8000,     ///< rv operand is Consts[operand & mask]
  OperandIndexMask = 0x7fff, ///< const-pool index bits of an rv operand
};

/// Bytecode operations. Value-producing ops write register A; statement and
/// transfer ops use A/B/C/Imm as documented per op in docs/BYTECODE.md.
enum class Op : uint8_t {
  // Value producers (dest = A).
  LoadConst,   ///< A ← Consts[Imm]
  LoadLocal,   ///< A ← slot B; wrong when the slot is unbound
  LoadGlobal,  ///< A ← global Syms[Imm]; wrong when unknown
  LoadNameDyn, ///< A ← global Syms[Imm]; wrong "unresolved name" when absent
  Unary,       ///< A ← unop(Imm = UnOp, rv B)
  Binary,      ///< A ← binop(Imm = BinOp, rv B, rv C)
  Prim,        ///< A ← prim(rv B [, rv C]); Imm = PrimKind | argcount << 16
  MemLoad,     ///< A ← load mem[rv B]; Imm = (Width << 1) | isFloat

  // Deferred compile-time-detectable failures: the walker only reports
  // these when the expression is actually evaluated, so dead wrong code
  // must not change behaviour.
  Wrong, ///< goWrong(Msgs[Imm], Loc)

  // Statements.
  SetGlobal,   ///< global Syms[Imm] ← rv B
  MemStore,    ///< store mem[rv A] ← rv B; Imm = (Width << 1) | isFloat
  StageOut,    ///< Staging[Imm] ← rv B
  Commit,      ///< argument area ← Staging[0..Imm)
  CopyIn,      ///< bind argument area per CopyPlans[Imm]
  CalleeSaves, ///< σ ← SavePlans[Imm], counting spills/reloads
  EntryOp,     ///< clear ρ and σ, bind continuations per EntryPlans[Imm]

  // Control transfer.
  Goto,      ///< Pc = Imm
  BranchIf,  ///< if truthy(rv B) Pc = Imm else fall through
  BranchCmp, ///< if truthy(binop(A = BinOp, rv B, rv C)) Pc = Imm
  ExitOp,    ///< return <A/B> through the suspended call site
  CallOp,    ///< call code value in rv B (N is the CallNode)
  JumpOp,    ///< tail call code value in rv B (N is the JumpNode)
  CutToOp,   ///< cut the stack to continuation value in rv B
  YieldOp,   ///< suspend into the run-time system
};

enum : uint8_t {
  /// First instruction of a graph node: one abstract-machine transition
  /// starts here (budget accounting and onStep fire at this boundary).
  FlagStartsNode = 1,
  /// After this instruction succeeds, mark slot A bound (an Assign's
  /// destination: the expression's final instruction is retargeted at the
  /// variable's slot, so no extra move is needed).
  FlagSetsBound = 2,
  /// The value this instruction produces goes to Staging[A], not a
  /// register (a CopyOut expression's final instruction; the staged values
  /// only reach the argument area at the node's Commit).
  FlagStagesOut = 4,
};

/// One instruction. 16-bit register operands, a 32-bit immediate, and the
/// owning graph node for observability and node-payload access.
struct VmInstr {
  Op K;
  uint8_t Flags = 0;
  uint16_t A = 0, B = 0, C = 0;
  uint32_t Imm = 0;
  /// The graph node this instruction belongs to. Set on every FlagStartsNode
  /// instruction (for onStep) and on node-action ops that read node fields
  /// (CallOp → CallNode, ExitOp → ExitNode, ...).
  const Node *N = nullptr;
  SourceLoc Loc;
};

/// A CopyIn destination: a frame slot, or a global register for variables
/// the walker's bindVar routes to the global environment.
struct CopyDest {
  bool Global = false;
  uint16_t Slot = 0;
  Symbol Sym; ///< the global's name when Global
};

/// One compiled procedure.
struct CompiledProc {
  const IrProc *Proc = nullptr;
  bool HasBody = false;
  uint32_t EntryPc = 0;
  /// Frame-slot count (named locals and continuations) and total register
  /// count (slots plus expression temporaries).
  uint16_t NumSlots = 0, NumRegs = 0;
  std::vector<VmInstr> Code;
  /// Node::Id → pc of the node's first instruction. Continuation records
  /// and bundle edges keep Node* targets; control transfers map them to a
  /// pc through this table at transfer time.
  std::vector<uint32_t> PcOfNode;
  std::vector<Value> Consts;
  std::vector<std::string> Msgs;
  std::vector<Symbol> Syms;
  std::vector<Symbol> SlotSyms; ///< slot → symbol, for diagnostics
  std::vector<std::vector<CopyDest>> CopyPlans;
  std::vector<std::vector<uint16_t>> SavePlans;
  std::vector<std::vector<std::pair<uint16_t, Node *>>> EntryPlans;
  /// Source location of each fused named-slot operand, keyed by
  /// pc * 4 + field (0 = A, 1 = B, 2 = C). Consulted only when the slot's
  /// bound check fails, so the unbound-variable diagnostic points at the
  /// variable reference itself — exactly where the walker reports it —
  /// rather than at the consuming expression.
  std::unordered_map<uint64_t, SourceLoc> RvSlotLocs;
};

/// A compiled program: one CompiledProc per IrProc, in IrProgram::Procs
/// order (so code-value indices agree with the walker's).
struct CompiledProgram {
  std::vector<CompiledProc> Procs;
  std::unordered_map<const IrProc *, uint32_t> Index;
  /// Largest CopyOut arity in the program (sizes the staging area).
  uint32_t MaxOut = 0;

  const CompiledProc &byProc(const IrProc *P) const {
    return Procs[Index.at(P)];
  }
};

/// Compiles every procedure of \p Prog to bytecode.
CompiledProgram compileToBytecode(const IrProgram &Prog);

/// Renders \p C as a human-readable listing (for cmmi --dump-bytecode).
std::string disassemble(const CompiledProc &C, const Interner &Names);

} // namespace cmm

#endif // CMM_VM_BYTECODE_H
