//===- opt/ConstProp.cpp --------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "opt/ConstProp.h"

#include "support/Assert.h"
#include "syntax/PrimOps.h"

#include <functional>

using namespace cmm;

namespace {

//===----------------------------------------------------------------------===//
// Folding
//===----------------------------------------------------------------------===//

using LookupFn = std::function<std::optional<Value>(Symbol)>;

/// Evaluates \p E when all leaves are known and evaluation cannot fail.
std::optional<Value> fold(const Expr *E, const LookupFn &Lookup,
                          const Interner &Names) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    return Value::bits(E->Ty.Width, cast<IntLitExpr>(E)->Value);
  case Expr::Kind::FloatLit:
    return Value::flt(E->Ty.Width, cast<FloatLitExpr>(E)->Value);
  case Expr::Kind::Sizeof:
    return Value::bits(32, cast<SizeofExpr>(E)->SizeInBytes);
  case Expr::Kind::Name: {
    const auto *N = cast<NameExpr>(E);
    if (N->Ref == RefKind::Local || N->Ref == RefKind::Global)
      return Lookup(N->Name);
    return std::nullopt; // procedure/data addresses stay symbolic
  }
  case Expr::Kind::StrLit:
  case Expr::Kind::Load:
    return std::nullopt;

  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    std::optional<Value> V = fold(U->Operand.get(), Lookup, Names);
    if (!V)
      return std::nullopt;
    switch (U->Op) {
    case UnOp::Neg:
      if (V->isFloat())
        return Value::flt(V->Width, -V->F);
      return Value::bits(V->Width, 0 - V->Raw);
    case UnOp::Com:
      if (!V->isBits())
        return std::nullopt;
      return Value::bits(V->Width, ~V->Raw);
    case UnOp::Not:
      if (!V->isBits())
        return std::nullopt;
      return Value::bits(32, V->Raw == 0 ? 1 : 0);
    }
    return std::nullopt;
  }

  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    std::optional<Value> L = fold(B->Lhs.get(), Lookup, Names);
    std::optional<Value> R = fold(B->Rhs.get(), Lookup, Names);
    if (!L || !R)
      return std::nullopt;
    if (L->isFloat() || R->isFloat()) {
      if (!(L->isFloat() && R->isFloat()))
        return std::nullopt;
      switch (B->Op) {
      case BinOp::Add: return Value::flt(L->Width, L->F + R->F);
      case BinOp::Sub: return Value::flt(L->Width, L->F - R->F);
      case BinOp::Mul: return Value::flt(L->Width, L->F * R->F);
      case BinOp::Div: return Value::flt(L->Width, L->F / R->F);
      case BinOp::Eq: return Value::bits(32, L->F == R->F);
      case BinOp::Ne: return Value::bits(32, L->F != R->F);
      case BinOp::LtS: return Value::bits(32, L->F < R->F);
      case BinOp::LeS: return Value::bits(32, L->F <= R->F);
      case BinOp::GtS: return Value::bits(32, L->F > R->F);
      case BinOp::GeS: return Value::bits(32, L->F >= R->F);
      default: return std::nullopt;
      }
    }
    if (!L->isBits() || !R->isBits() || L->Width != R->Width)
      return std::nullopt;
    unsigned W = L->Width;
    uint64_t X = L->Raw, Y = R->Raw;
    int64_t SX = signExtend(X, W), SY = signExtend(Y, W);
    switch (B->Op) {
    case BinOp::Add: return Value::bits(W, X + Y);
    case BinOp::Sub: return Value::bits(W, X - Y);
    case BinOp::Mul: return Value::bits(W, X * Y);
    case BinOp::Div:
      // Fold only when the division provably succeeds: the failure
      // behaviour of the fast variant is unspecified and must be preserved.
      if (SY == 0 || (SX == signExtend(signedMin(W), W) && SY == -1))
        return std::nullopt;
      return Value::bits(W, static_cast<uint64_t>(SX / SY));
    case BinOp::Mod:
      if (SY == 0 || (SX == signExtend(signedMin(W), W) && SY == -1))
        return std::nullopt;
      return Value::bits(W, static_cast<uint64_t>(SX % SY));
    case BinOp::And: return Value::bits(W, X & Y);
    case BinOp::Or: return Value::bits(W, X | Y);
    case BinOp::Xor: return Value::bits(W, X ^ Y);
    case BinOp::Shl: return Value::bits(W, Y >= W ? 0 : X << Y);
    case BinOp::Shr: return Value::bits(W, Y >= W ? 0 : X >> Y);
    case BinOp::Eq: return Value::bits(32, X == Y);
    case BinOp::Ne: return Value::bits(32, X != Y);
    case BinOp::LtS: return Value::bits(32, SX < SY);
    case BinOp::LeS: return Value::bits(32, SX <= SY);
    case BinOp::GtS: return Value::bits(32, SX > SY);
    case BinOp::GeS: return Value::bits(32, SX >= SY);
    }
    return std::nullopt;
  }

  case Expr::Kind::Prim: {
    const auto *P = cast<PrimExpr>(E);
    std::optional<PrimKind> K = lookupPrim(Names.spelling(P->Name));
    if (!K)
      return std::nullopt;
    std::vector<Value> Args;
    for (const ExprPtr &AE : P->Args) {
      std::optional<Value> V = fold(AE.get(), Lookup, Names);
      if (!V)
        return std::nullopt;
      Args.push_back(*V);
    }
    // Fold only operand shapes the machine would accept: Bits operands of
    // the width the primitive expects. A float or mixed-width operand
    // (reachable dynamically through an indirect call even though the
    // static checker rejects it at direct call sites) must keep its
    // go-wrong behaviour rather than fold to a .Raw reinterpretation.
    auto BitsSameWidth = [&](unsigned W) {
      return Args[0].isBits() && Args[1].isBits() && Args[0].Width == W &&
             Args[1].Width == W;
    };
    auto BitsOfWidth = [&](unsigned W) {
      return Args[0].isBits() && Args[0].Width == W;
    };
    unsigned W = Args.empty() ? 32 : Args[0].Width;
    switch (*K) {
    case PrimKind::DivU:
      if (!BitsSameWidth(W) || Args[1].Raw == 0)
        return std::nullopt;
      return Value::bits(W, Args[0].Raw / Args[1].Raw);
    case PrimKind::ModU:
      if (!BitsSameWidth(W) || Args[1].Raw == 0)
        return std::nullopt;
      return Value::bits(W, Args[0].Raw % Args[1].Raw);
    case PrimKind::LtU:
      if (!BitsSameWidth(W))
        return std::nullopt;
      return Value::bits(32, Args[0].Raw < Args[1].Raw);
    case PrimKind::LeU:
      if (!BitsSameWidth(W))
        return std::nullopt;
      return Value::bits(32, Args[0].Raw <= Args[1].Raw);
    case PrimKind::GtU:
      if (!BitsSameWidth(W))
        return std::nullopt;
      return Value::bits(32, Args[0].Raw > Args[1].Raw);
    case PrimKind::GeU:
      if (!BitsSameWidth(W))
        return std::nullopt;
      return Value::bits(32, Args[0].Raw >= Args[1].Raw);
    case PrimKind::Zx64:
      if (!BitsOfWidth(32))
        return std::nullopt;
      return Value::bits(64, Args[0].Raw);
    case PrimKind::Sx64:
      if (!BitsOfWidth(32))
        return std::nullopt;
      return Value::bits(64,
                         static_cast<uint64_t>(signExtend(Args[0].Raw, 32)));
    case PrimKind::Lo32:
      if (!BitsOfWidth(64))
        return std::nullopt;
      return Value::bits(32, Args[0].Raw);
    case PrimKind::Hi32:
      if (!BitsOfWidth(64))
        return std::nullopt;
      return Value::bits(32, Args[0].Raw >> 32);
    default:
      // Signed division, shifts and float primitives: folded rarely enough
      // that the conservative answer costs nothing.
      return std::nullopt;
    }
  }
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// The lattice
//===----------------------------------------------------------------------===//

/// Lattice cell per variable: Top (no information yet, optimistic), a known
/// constant, or NAC (not a constant).
struct Cell {
  enum class Kind : uint8_t { Top, Const, Nac };
  Kind K = Kind::Top;
  Value V;

  static Cell nac() { return {Kind::Nac, Value()}; }
  static Cell constant(Value V) { return {Kind::Const, V}; }

  friend bool operator==(const Cell &A, const Cell &B) {
    if (A.K != B.K)
      return false;
    return A.K != Kind::Const || A.V == B.V;
  }
};

Cell meet(const Cell &A, const Cell &B) {
  if (A.K == Cell::Kind::Top)
    return B;
  if (B.K == Cell::Kind::Top)
    return A;
  if (A.K == Cell::Kind::Const && B.K == Cell::Kind::Const && A.V == B.V)
    return A;
  return Cell::nac();
}

using State = std::vector<Cell>; // indexed by variable index in the universe

class ConstPropImpl {
public:
  ConstPropImpl(IrProc &P, const IrProgram &Prog, bool WithExceptionalEdges)
      : P(P), Prog(Prog), Names(*Prog.Names),
        WithExceptional(WithExceptionalEdges),
        U(LocUniverse::forProc(P, Prog)) {}

  ConstPropReport run();

private:
  std::optional<Value> lookupIn(const State &S, Symbol V) const {
    std::optional<unsigned> I = U.varIndex(V);
    if (!I || !U.isVar(*I))
      return std::nullopt;
    if (S[*I].K != Cell::Kind::Const)
      return std::nullopt;
    return S[*I].V;
  }

  /// Applies \p N's effect to \p S (variables only; A and M are not
  /// tracked). \p EdgeIsCut marks transfer along a cut edge.
  void transfer(const Node *N, State &S) const;
  void clobberOnEdge(const Node *N, EdgeKind Kind, State &S) const;

  const Expr *rewriteExpr(const Expr *E, const State &S, bool &Changed);
  const Expr *makeLiteral(const Value &V, SourceLoc Loc);

  IrProc &P;
  const IrProgram &Prog;
  const Interner &Names;
  bool WithExceptional;
  LocUniverse U;
  std::vector<BitVector> MaySigma;
  ConstPropReport Report;
};

void ConstPropImpl::transfer(const Node *N, State &S) const {
  switch (N->kind()) {
  case Node::Kind::Entry:
    // Continuation values are per-activation, never compile-time constants.
    for (const auto &[Name, Target] : cast<EntryNode>(N)->Conts) {
      (void)Target;
      if (std::optional<unsigned> I = U.varIndex(Name))
        S[*I] = Cell::nac();
    }
    return;
  case Node::Kind::CopyIn:
    for (Symbol V : cast<CopyInNode>(N)->Vars)
      if (std::optional<unsigned> I = U.varIndex(V))
        S[*I] = Cell::nac();
    return;
  case Node::Kind::Assign: {
    const auto *A = cast<AssignNode>(N);
    std::optional<unsigned> I = U.varIndex(A->Var);
    if (!I)
      return;
    auto Lookup = [&](Symbol V) { return lookupIn(S, V); };
    if (std::optional<Value> V = fold(A->Value, Lookup, Names))
      S[*I] = Cell::constant(*V);
    else
      S[*I] = Cell::nac();
    return;
  }
  default:
    return;
  }
}

void ConstPropImpl::clobberOnEdge(const Node *N, EdgeKind Kind,
                                  State &S) const {
  if (!isa<CallNode>(N))
    return;
  // A call may assign any global register.
  for (unsigned I = 0; I < U.numVars(); ++I)
    if (!P.VarTypes.count(U.varAt(I)))
      S[I] = Cell::nac();
  // Along a cut edge, values in callee-saves registers are destroyed.
  if (Kind == EdgeKind::Cut && N->Id < MaySigma.size())
    MaySigma[N->Id].forEach([&](size_t I) {
      if (U.isVar(static_cast<unsigned>(I)))
        S[I] = Cell::nac();
    });
}

const Expr *ConstPropImpl::makeLiteral(const Value &V, SourceLoc Loc) {
  if (V.isFloat()) {
    auto E = std::make_unique<FloatLitExpr>(Loc, V.F);
    E->Ty = Type::flt(V.Width);
    const Expr *Raw = E.get();
    P.ExprPool.push_back(std::move(E));
    return Raw;
  }
  auto E = std::make_unique<IntLitExpr>(Loc, V.Raw);
  E->Ty = Type::bits(V.Width);
  const Expr *Raw = E.get();
  P.ExprPool.push_back(std::move(E));
  return Raw;
}

const Expr *ConstPropImpl::rewriteExpr(const Expr *E, const State &S,
                                       bool &Changed) {
  if (isa<IntLitExpr>(E) || isa<FloatLitExpr>(E))
    return E;
  auto Lookup = [&](Symbol V) { return lookupIn(S, V); };
  if (std::optional<Value> V = fold(E, Lookup, Names)) {
    // Fold only bits/float results; code and continuation values must stay
    // symbolic.
    if (V->isBits() || V->isFloat()) {
      Changed = true;
      ++Report.ExprsRewritten;
      return makeLiteral(*V, E->loc());
    }
  }
  return E;
}

ConstPropReport ConstPropImpl::run() {
  MaySigma = computeMaySigma(P, U);
  std::vector<Node *> Order = reachableNodes(P);

  std::vector<State> In(P.Nodes.size(), State(U.numVars()));
  std::vector<bool> Reached(P.Nodes.size(), false);
  Reached[P.EntryPoint->Id] = true;
  // Parameters and globals are unknown at entry.
  for (Cell &C : In[P.EntryPoint->Id])
    C = Cell::nac();

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (Node *N : Order) {
      if (!Reached[N->Id])
        continue;
      State OutBase = In[N->Id];
      transfer(N, OutBase);
      forEachSucc(
          *N,
          [&](Node *SNode, EdgeKind Kind) {
            State Out = OutBase;
            clobberOnEdge(N, Kind, Out);
            if (!Reached[SNode->Id]) {
              Reached[SNode->Id] = true;
              In[SNode->Id] = Out;
              Changed = true;
              return;
            }
            for (size_t I = 0; I < Out.size(); ++I) {
              Cell M = meet(In[SNode->Id][I], Out[I]);
              if (!(M == In[SNode->Id][I])) {
                In[SNode->Id][I] = M;
                Changed = true;
              }
            }
          },
          WithExceptional);
    }
  }

  // Rewrite expressions with the solved facts.
  bool Dummy = false;
  for (Node *N : Order) {
    if (!Reached[N->Id])
      continue;
    const State &S = In[N->Id];
    switch (N->kind()) {
    case Node::Kind::Assign: {
      auto *A = cast<AssignNode>(N);
      A->Value = rewriteExpr(A->Value, S, Dummy);
      break;
    }
    case Node::Kind::Store: {
      auto *St = cast<StoreNode>(N);
      St->Addr = rewriteExpr(St->Addr, S, Dummy);
      St->Value = rewriteExpr(St->Value, S, Dummy);
      break;
    }
    case Node::Kind::CopyOut: {
      auto *C = cast<CopyOutNode>(N);
      for (const Expr *&E : C->Exprs)
        E = rewriteExpr(E, S, Dummy);
      break;
    }
    case Node::Kind::Branch: {
      auto *B = cast<BranchNode>(N);
      B->Cond = rewriteExpr(B->Cond, S, Dummy);
      if (const auto *Lit = dyn_cast<IntLitExpr>(B->Cond)) {
        Node *Taken = Lit->Value != 0 ? B->TrueDst : B->FalseDst;
        if (B->TrueDst != B->FalseDst) {
          B->TrueDst = B->FalseDst = Taken;
          ++Report.BranchesResolved;
        }
      }
      break;
    }
    default:
      break;
    }
  }
  return Report;
}

} // namespace

ConstPropReport cmm::propagateConstants(IrProc &P, const IrProgram &Prog,
                                        bool WithExceptionalEdges) {
  if (P.isYieldIntrinsic())
    return ConstPropReport();
  return ConstPropImpl(P, Prog, WithExceptionalEdges).run();
}

std::optional<Value> cmm::foldConstExpr(const Expr *E, const Interner &Names) {
  return fold(E, [](Symbol) { return std::optional<Value>(); }, Names);
}
