//===- opt/CalleeSaves.h - Callee-saves placement ---------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimization at the heart of Section 4.2's trade-off: keeping
/// variables that are live across a call in callee-saves registers instead
/// of the activation record. "Such code improvements must take into account
/// control flow along also cuts to edges; such flow destroys values stored
/// in callee-saves registers" — the stack-cutting technique cannot restore
/// them. This pass inserts CalleeSaves nodes before calls; with
/// RespectCutEdges=false it reproduces the classic miscompilation (a
/// handler-live variable placed in a register the cut kills), which the
/// abstract machine then reports as "use of unbound variable".
///
//===----------------------------------------------------------------------===//

#ifndef CMM_OPT_CALLEESAVES_H
#define CMM_OPT_CALLEESAVES_H

#include "opt/Liveness.h"

namespace cmm {

/// Pass configuration.
struct CalleeSavesOptions {
  /// Callee-saves registers available on the target.
  unsigned NumRegisters = 8;
  /// When false, liveness ignores the exceptional edges and no variable is
  /// excluded on account of cut edges: the unsound ablation.
  bool RespectCutEdges = true;
};

/// What the pass did, for the Section 4.2 benchmark.
struct CalleeSavesReport {
  unsigned CallsAnnotated = 0;
  unsigned VarsPlaced = 0;
  /// Variables that were live across a call but had to stay in the frame
  /// because a cut edge would kill them.
  unsigned VarsExcludedByCutEdges = 0;
  /// Variables that could not be placed for lack of registers (spills).
  unsigned VarsSpilledForPressure = 0;
  /// Cut-edged calls that received an empty CalleeSaves node purely to
  /// flush registers left full by an earlier call's placement: a set stays
  /// in effect until the next CalleeSaves node, so without the flush a cut
  /// over the call would kill values its continuation needs.
  unsigned CutHazardFlushes = 0;
};

/// Places CalleeSaves nodes before every call of \p P.
CalleeSavesReport placeCalleeSaves(IrProc &P, const IrProgram &Prog,
                                   const CalleeSavesOptions &Opts);

/// Post-placement soundness check: reports (as a count) every variable that
/// may be in callee-saves registers at a call and is live into one of that
/// call's cut continuations — exactly the killed-live-value bug. A sound
/// placement yields zero.
unsigned countKilledLiveValues(const IrProc &P, const IrProgram &Prog);

} // namespace cmm

#endif // CMM_OPT_CALLEESAVES_H
