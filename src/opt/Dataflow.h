//===- opt/Dataflow.h - Table 3 dataflow facts ------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dataflow rules of Table 3, "in terms of definitions, uses, copies,
/// and kills". The location domain has three kinds: ordinary variables
/// (locals and global registers), the memory pseudo-variable M, and the
/// argument-passing-area slots A[i]. "This information is enough to enable
/// standard optimizations ... the optimizer can perform all the usual
/// rearrangements, provided it respects the dataflow and it doesn't insert
/// code after Exit, Jump, CutTo, or the abort part of a continuation
/// bundle."
///
//===----------------------------------------------------------------------===//

#ifndef CMM_OPT_DATAFLOW_H
#define CMM_OPT_DATAFLOW_H

#include "ir/Succ.h"
#include "support/BitVector.h"

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace cmm {

/// Dense numbering of the dataflow locations of one procedure: its
/// variables (including referenced globals), then M, then A[0..MaxArgs).
class LocUniverse {
public:
  static LocUniverse forProc(const IrProc &P, const IrProgram &Prog);

  unsigned size() const {
    return static_cast<unsigned>(Vars.size()) + 1 + MaxArgs;
  }
  unsigned memIndex() const { return static_cast<unsigned>(Vars.size()); }
  unsigned argIndex(unsigned I) const { return memIndex() + 1 + I; }
  unsigned maxArgs() const { return MaxArgs; }
  unsigned numVars() const { return static_cast<unsigned>(Vars.size()); }

  std::optional<unsigned> varIndex(Symbol V) const {
    auto It = Index.find(V);
    if (It == Index.end())
      return std::nullopt;
    return It->second;
  }
  Symbol varAt(unsigned I) const { return Vars[I]; }
  bool isVar(unsigned I) const { return I < Vars.size(); }
  bool isArg(unsigned I) const { return I > memIndex(); }
  /// True when location \p I is a global register rather than a local of
  /// the procedure. Globals escape: calls may read and write them, and they
  /// are live at every procedure exit.
  bool isGlobalVar(unsigned I) const {
    return I < Globals.size() && Globals[I];
  }

  /// Human-readable location name for dumps.
  std::string describe(unsigned I, const Interner &Names) const;

private:
  std::vector<Symbol> Vars;
  std::vector<bool> Globals; ///< parallel to Vars
  std::unordered_map<Symbol, unsigned> Index;
  unsigned MaxArgs = 0;
};

/// Node-local facts. Edge-located facts (the A[i] definitions along call
/// edges and the callee-saves kills along cut edges) are handled by the
/// solvers, which know the edges.
struct NodeFacts {
  BitVector Use, Def;
  /// dst <- src pairs for CopyIn (v[i] = A[i]) and CopyOut (A[i] = e when e
  /// is a plain variable); used by copy propagation and coalescing.
  std::vector<std::pair<unsigned, unsigned>> Copies;
};

/// Computes the Table 3 facts for \p N.
NodeFacts computeFacts(const Node &N, const LocUniverse &U);

/// Adds the variables free in \p E (including the M pseudo-variable for
/// loads) to \p Out.
void addFreeVars(const Expr *E, const LocUniverse &U, BitVector &Out);

/// True when evaluating \p E can make the machine go wrong (the fast-but-
/// dangerous division family); such expressions must not be duplicated or
/// deleted by the optimizer.
bool exprCanFail(const Expr *E, const Interner &Names);

/// Forward may-analysis: the variables that *could be* in callee-saves
/// registers (σ) when each node executes, per the CalleeSaves nodes placed
/// by the optimizer. Index by Node::Id.
std::vector<BitVector> computeMaySigma(const IrProc &P, const LocUniverse &U);

/// Rewires every control-flow edge of \p P that targets \p From to target
/// \p To instead (used to insert or delete nodes).
void replaceAllSuccessorUses(IrProc &P, Node *From, Node *To);

} // namespace cmm

#endif // CMM_OPT_DATAFLOW_H
