//===- opt/CopyProp.cpp ---------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "opt/CopyProp.h"

#include "support/Assert.h"

using namespace cmm;

namespace {

/// Per-variable lattice value: Top (no information yet), NoCopy, or the
/// index of the variable it copies.
constexpr unsigned TopVal = ~0u;
constexpr unsigned NoCopy = ~0u - 1;

using State = std::vector<unsigned>;

unsigned meetCell(unsigned A, unsigned B) {
  if (A == TopVal)
    return B;
  if (B == TopVal)
    return A;
  return A == B ? A : NoCopy;
}

class CopyPropImpl {
public:
  CopyPropImpl(IrProc &P, const IrProgram &Prog, bool WithExceptionalEdges)
      : P(P), Prog(Prog), WithExceptional(WithExceptionalEdges),
        U(LocUniverse::forProc(P, Prog)) {}

  CopyPropReport run();

private:
  /// Removes every copy fact involving \p V, as source or destination.
  static void killVar(State &S, unsigned V) {
    S[V] = NoCopy;
    for (unsigned &Cell : S)
      if (Cell == V)
        Cell = NoCopy;
  }

  void transfer(const Node *N, State &S) const;
  void clobberOnEdge(const Node *N, EdgeKind Kind, State &S) const;

  /// Clones \p E with every propagatable variable use replaced.
  const Expr *rewriteExpr(const Expr *E, const State &S);

  IrProc &P;
  const IrProgram &Prog;
  bool WithExceptional;
  LocUniverse U;
  std::vector<BitVector> MaySigma;
  CopyPropReport Report;
};

void CopyPropImpl::transfer(const Node *N, State &S) const {
  switch (N->kind()) {
  case Node::Kind::Entry:
    for (const auto &[Name, Target] : cast<EntryNode>(N)->Conts) {
      (void)Target;
      if (std::optional<unsigned> I = U.varIndex(Name))
        killVar(S, *I);
    }
    return;
  case Node::Kind::CopyIn:
    for (Symbol V : cast<CopyInNode>(N)->Vars)
      if (std::optional<unsigned> I = U.varIndex(V))
        killVar(S, *I);
    return;
  case Node::Kind::Assign: {
    const auto *A = cast<AssignNode>(N);
    std::optional<unsigned> Dst = U.varIndex(A->Var);
    if (!Dst)
      return;
    killVar(S, *Dst);
    if (const auto *Src = dyn_cast<NameExpr>(A->Value)) {
      if (Src->Ref != RefKind::Local && Src->Ref != RefKind::Global)
        return;
      std::optional<unsigned> SrcI = U.varIndex(Src->Name);
      // Record only same-typed variable-to-variable copies.
      if (SrcI && *SrcI != *Dst && Src->Ty == A->Value->Ty)
        S[*Dst] = *SrcI;
    }
    return;
  }
  default:
    return;
  }
}

void CopyPropImpl::clobberOnEdge(const Node *N, EdgeKind Kind,
                                 State &S) const {
  if (!isa<CallNode>(N))
    return;
  // The callee may assign any global register: kill copies touching them.
  for (unsigned I = 0; I < U.numVars(); ++I)
    if (U.isGlobalVar(I))
      killVar(S, I);
  if (Kind == EdgeKind::Cut && N->Id < MaySigma.size())
    MaySigma[N->Id].forEach([&](size_t I) {
      if (U.isVar(static_cast<unsigned>(I)))
        killVar(S, static_cast<unsigned>(I));
    });
}

const Expr *CopyPropImpl::rewriteExpr(const Expr *E, const State &S) {
  switch (E->kind()) {
  case Expr::Kind::Name: {
    const auto *N = cast<NameExpr>(E);
    if (N->Ref != RefKind::Local && N->Ref != RefKind::Global)
      return E;
    std::optional<unsigned> I = U.varIndex(N->Name);
    if (!I || S[*I] == NoCopy || S[*I] == TopVal || !U.isVar(S[*I]))
      return E;
    Symbol Src = U.varAt(S[*I]);
    auto New = std::make_unique<NameExpr>(N->loc(), Src);
    New->Ty = N->Ty;
    New->Ref = P.VarTypes.count(Src) ? RefKind::Local : RefKind::Global;
    const Expr *Raw = New.get();
    P.ExprPool.push_back(std::move(New));
    ++Report.UsesRewritten;
    return Raw;
  }
  default:
    // Whole-expression uses only: nested occurrences are caught on later
    // pipeline rounds once constant propagation and dead-code elimination
    // shrink the trees. Rewriting inside shared subtrees would require
    // cloning whole expressions; not worth it here.
    return E;
  }
}

CopyPropReport CopyPropImpl::run() {
  MaySigma = computeMaySigma(P, U);
  std::vector<Node *> Order = reachableNodes(P);

  std::vector<State> In(P.Nodes.size(), State(U.numVars(), TopVal));
  std::vector<bool> Reached(P.Nodes.size(), false);
  Reached[P.EntryPoint->Id] = true;
  for (unsigned &Cell : In[P.EntryPoint->Id])
    Cell = NoCopy;

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (Node *N : Order) {
      if (!Reached[N->Id])
        continue;
      State OutBase = In[N->Id];
      transfer(N, OutBase);
      forEachSucc(
          *N,
          [&](Node *SNode, EdgeKind Kind) {
            State Out = OutBase;
            clobberOnEdge(N, Kind, Out);
            if (!Reached[SNode->Id]) {
              Reached[SNode->Id] = true;
              In[SNode->Id] = Out;
              Changed = true;
              return;
            }
            for (size_t I = 0; I < Out.size(); ++I) {
              unsigned M = meetCell(In[SNode->Id][I], Out[I]);
              if (M != In[SNode->Id][I]) {
                In[SNode->Id][I] = M;
                Changed = true;
              }
            }
          },
          WithExceptional);
    }
  }

  // Rewrite top-level variable uses. Only whole-expression Name uses and
  // direct children that are Names are rewritten; nested occurrences are
  // picked up by iterating the pass (the pipeline runs multiple rounds).
  for (Node *N : Order) {
    if (!Reached[N->Id])
      continue;
    const State &S = In[N->Id];
    auto Rw = [&](const Expr *&Slot) { Slot = rewriteExpr(Slot, S); };
    switch (N->kind()) {
    case Node::Kind::Assign:
      Rw(cast<AssignNode>(N)->Value);
      break;
    case Node::Kind::Store:
      Rw(cast<StoreNode>(N)->Addr);
      Rw(cast<StoreNode>(N)->Value);
      break;
    case Node::Kind::Branch:
      Rw(cast<BranchNode>(N)->Cond);
      break;
    case Node::Kind::CopyOut:
      for (const Expr *&E : cast<CopyOutNode>(N)->Exprs)
        Rw(E);
      break;
    case Node::Kind::Call:
      Rw(cast<CallNode>(N)->Callee);
      break;
    case Node::Kind::Jump:
      Rw(cast<JumpNode>(N)->Callee);
      break;
    case Node::Kind::CutTo:
      Rw(cast<CutToNode>(N)->Cont);
      break;
    default:
      break;
    }
  }
  return Report;
}

} // namespace

CopyPropReport cmm::propagateCopies(IrProc &P, const IrProgram &Prog,
                                    bool WithExceptionalEdges) {
  if (P.isYieldIntrinsic())
    return CopyPropReport();
  return CopyPropImpl(P, Prog, WithExceptionalEdges).run();
}
