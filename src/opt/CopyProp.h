//===- opt/CopyProp.h - Copy propagation ------------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Global copy propagation over Abstract C-- graphs — another of the
/// "standard optimizations" Table 3's facts enable (the CopyIn/CopyOut
/// copies are first-class in the fact layer precisely so passes like this
/// one can see through the value-passing area). Calls kill copies involving
/// global registers; cut edges additionally kill copies involving variables
/// that may sit in callee-saves registers.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_OPT_COPYPROP_H
#define CMM_OPT_COPYPROP_H

#include "opt/Dataflow.h"

namespace cmm {

/// What the pass changed.
struct CopyPropReport {
  unsigned UsesRewritten = 0;
};

/// Replaces uses of x with y wherever the copy x := y is available.
CopyPropReport propagateCopies(IrProc &P, const IrProgram &Prog,
                               bool WithExceptionalEdges = true);

} // namespace cmm

#endif // CMM_OPT_COPYPROP_H
