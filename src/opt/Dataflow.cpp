//===- opt/Dataflow.cpp ---------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "opt/Dataflow.h"

#include "support/Assert.h"
#include "syntax/PrimOps.h"

#include <functional>

using namespace cmm;

//===----------------------------------------------------------------------===//
// LocUniverse
//===----------------------------------------------------------------------===//

namespace {

void collectExprVars(const Expr *E, std::vector<Symbol> &Out) {
  switch (E->kind()) {
  case Expr::Kind::Name: {
    const auto *N = cast<NameExpr>(E);
    if (N->Ref == RefKind::Local || N->Ref == RefKind::Global ||
        N->Ref == RefKind::Continuation)
      Out.push_back(N->Name);
    return;
  }
  case Expr::Kind::Load:
    collectExprVars(cast<LoadExpr>(E)->Addr.get(), Out);
    return;
  case Expr::Kind::Unary:
    collectExprVars(cast<UnaryExpr>(E)->Operand.get(), Out);
    return;
  case Expr::Kind::Binary:
    collectExprVars(cast<BinaryExpr>(E)->Lhs.get(), Out);
    collectExprVars(cast<BinaryExpr>(E)->Rhs.get(), Out);
    return;
  case Expr::Kind::Prim:
    for (const ExprPtr &A : cast<PrimExpr>(E)->Args)
      collectExprVars(A.get(), Out);
    return;
  default:
    return;
  }
}

void forEachNodeExpr(const Node &N,
                     const std::function<void(const Expr *)> &F) {
  switch (N.kind()) {
  case Node::Kind::CopyOut:
    for (const Expr *E : cast<CopyOutNode>(&N)->Exprs)
      F(E);
    return;
  case Node::Kind::Assign:
    F(cast<AssignNode>(&N)->Value);
    return;
  case Node::Kind::Store:
    F(cast<StoreNode>(&N)->Addr);
    F(cast<StoreNode>(&N)->Value);
    return;
  case Node::Kind::Branch:
    F(cast<BranchNode>(&N)->Cond);
    return;
  case Node::Kind::Call:
    F(cast<CallNode>(&N)->Callee);
    return;
  case Node::Kind::Jump:
    F(cast<JumpNode>(&N)->Callee);
    return;
  case Node::Kind::CutTo:
    F(cast<CutToNode>(&N)->Cont);
    return;
  default:
    return;
  }
}

} // namespace

LocUniverse LocUniverse::forProc(const IrProc &P, const IrProgram &Prog) {
  (void)Prog;
  LocUniverse U;
  auto AddVar = [&](Symbol V) {
    if (U.Index.emplace(V, U.Vars.size()).second) {
      U.Vars.push_back(V);
      U.Globals.push_back(!P.VarTypes.count(V));
    }
  };
  for (const auto &[V, Ty] : P.VarTypes) {
    (void)Ty;
    AddVar(V);
  }

  unsigned MaxA = static_cast<unsigned>(P.Params.size());
  for (const std::unique_ptr<Node> &N : P.Nodes) {
    // Referenced globals and continuation names become locations too.
    std::vector<Symbol> Vars;
    forEachNodeExpr(*N, [&](const Expr *E) { collectExprVars(E, Vars); });
    if (const auto *A = dyn_cast<AssignNode>(N.get()))
      Vars.push_back(A->Var);
    if (const auto *C = dyn_cast<CopyInNode>(N.get())) {
      for (Symbol V : C->Vars)
        Vars.push_back(V);
      MaxA = std::max(MaxA, static_cast<unsigned>(C->Vars.size()));
    }
    if (const auto *C = dyn_cast<CopyOutNode>(N.get()))
      MaxA = std::max(MaxA, static_cast<unsigned>(C->Exprs.size()));
    if (const auto *C = dyn_cast<CallNode>(N.get()))
      MaxA = std::max(MaxA, C->NumArgs);
    if (const auto *J = dyn_cast<JumpNode>(N.get()))
      MaxA = std::max(MaxA, J->NumArgs);
    if (const auto *C = dyn_cast<CutToNode>(N.get()))
      MaxA = std::max(MaxA, C->NumArgs);
    if (const auto *E = dyn_cast<EntryNode>(N.get()))
      for (const auto &[Name, Target] : E->Conts) {
        (void)Target;
        Vars.push_back(Name);
      }
    for (Symbol V : Vars)
      AddVar(V);
  }
  U.MaxArgs = MaxA;
  return U;
}

std::string LocUniverse::describe(unsigned I, const Interner &Names) const {
  if (I < Vars.size())
    return Names.spelling(Vars[I]);
  if (I == memIndex())
    return "M";
  return "A[" + std::to_string(I - memIndex() - 1) + "]";
}

void cmm::addFreeVars(const Expr *E, const LocUniverse &U, BitVector &Out) {
  if (E->kind() == Expr::Kind::Load)
    Out.set(U.memIndex());
  std::vector<Symbol> Vars;
  collectExprVars(E, Vars);
  // Loads may be nested anywhere; re-scan for them.
  struct LoadScan {
    static bool hasLoad(const Expr *E) {
      switch (E->kind()) {
      case Expr::Kind::Load:
        return true;
      case Expr::Kind::Unary:
        return hasLoad(cast<UnaryExpr>(E)->Operand.get());
      case Expr::Kind::Binary:
        return hasLoad(cast<BinaryExpr>(E)->Lhs.get()) ||
               hasLoad(cast<BinaryExpr>(E)->Rhs.get());
      case Expr::Kind::Prim:
        for (const ExprPtr &A : cast<PrimExpr>(E)->Args)
          if (hasLoad(A.get()))
            return true;
        return false;
      default:
        return false;
      }
    }
  };
  if (LoadScan::hasLoad(E))
    Out.set(U.memIndex());
  for (Symbol V : Vars)
    if (std::optional<unsigned> I = U.varIndex(V))
      Out.set(*I);
}

bool cmm::exprCanFail(const Expr *E, const Interner &Names) {
  switch (E->kind()) {
  case Expr::Kind::Unary:
    return exprCanFail(cast<UnaryExpr>(E)->Operand.get(), Names);
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    if ((B->Op == BinOp::Div || B->Op == BinOp::Mod) && B->Lhs->Ty.isBits())
      return true;
    return exprCanFail(B->Lhs.get(), Names) || exprCanFail(B->Rhs.get(), Names);
  }
  case Expr::Kind::Prim: {
    const auto *P = cast<PrimExpr>(E);
    if (std::optional<PrimKind> K = lookupPrim(Names.spelling(P->Name)))
      if (primCanFail(*K))
        return true;
    for (const ExprPtr &A : P->Args)
      if (exprCanFail(A.get(), Names))
        return true;
    return false;
  }
  case Expr::Kind::Load:
    return exprCanFail(cast<LoadExpr>(E)->Addr.get(), Names);
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Per-node facts (Table 3)
//===----------------------------------------------------------------------===//

NodeFacts cmm::computeFacts(const Node &N, const LocUniverse &U) {
  NodeFacts F;
  F.Use = BitVector(U.size());
  F.Def = BitVector(U.size());
  auto DefAllArgs = [&] {
    for (unsigned I = 0; I < U.maxArgs(); ++I)
      F.Def.set(U.argIndex(I));
  };
  auto UseArgs = [&](unsigned Count) {
    for (unsigned I = 0; I < Count && I < U.maxArgs(); ++I)
      F.Use.set(U.argIndex(I));
  };
  // Global registers escape the procedure: every exit leaves them live for
  // the caller, and a call may read or write any of them.
  auto UseGlobals = [&] {
    for (unsigned I = 0; I < U.numVars(); ++I)
      if (U.isGlobalVar(I))
        F.Use.set(I);
  };
  auto DefGlobals = [&] {
    for (unsigned I = 0; I < U.numVars(); ++I)
      if (U.isGlobalVar(I))
        F.Def.set(I);
  };

  switch (N.kind()) {
  case Node::Kind::Entry: {
    // Parameters arrive in A; continuations are bound; memory is live-in.
    const auto *E = cast<EntryNode>(&N);
    DefAllArgs();
    F.Def.set(U.memIndex());
    for (const auto &[Name, Target] : E->Conts) {
      (void)Target;
      if (std::optional<unsigned> I = U.varIndex(Name))
        F.Def.set(*I);
    }
    return F;
  }
  case Node::Kind::Exit:
    // use M; use A[i] for the procedure's results. The exact result count
    // depends on the reaching CopyOut; using every slot is conservative.
    F.Use.set(U.memIndex());
    UseArgs(U.maxArgs());
    UseGlobals();
    return F;
  case Node::Kind::CopyIn: {
    const auto *C = cast<CopyInNode>(&N);
    for (size_t I = 0; I < C->Vars.size(); ++I) {
      std::optional<unsigned> VI = U.varIndex(C->Vars[I]);
      if (!VI)
        continue;
      F.Def.set(*VI);
      unsigned AI = U.argIndex(static_cast<unsigned>(I));
      F.Use.set(AI);
      F.Copies.emplace_back(*VI, AI);
    }
    return F;
  }
  case Node::Kind::CopyOut: {
    const auto *C = cast<CopyOutNode>(&N);
    // CopyOut may overwrite the whole area: every slot is defined.
    DefAllArgs();
    for (size_t I = 0; I < C->Exprs.size(); ++I) {
      addFreeVars(C->Exprs[I], U, F.Use);
      if (const auto *Name = dyn_cast<NameExpr>(C->Exprs[I]))
        if (std::optional<unsigned> VI = U.varIndex(Name->Name))
          F.Copies.emplace_back(U.argIndex(static_cast<unsigned>(I)), *VI);
    }
    return F;
  }
  case Node::Kind::CalleeSaves:
    // "No effect on dataflow."
    return F;
  case Node::Kind::Assign: {
    const auto *A = cast<AssignNode>(&N);
    addFreeVars(A->Value, U, F.Use);
    if (std::optional<unsigned> VI = U.varIndex(A->Var)) {
      F.Def.set(*VI);
      if (const auto *Src = dyn_cast<NameExpr>(A->Value))
        if (std::optional<unsigned> SI = U.varIndex(Src->Name))
          F.Copies.emplace_back(*VI, *SI);
    }
    return F;
  }
  case Node::Kind::Store: {
    const auto *St = cast<StoreNode>(&N);
    addFreeVars(St->Addr, U, F.Use);
    addFreeVars(St->Value, U, F.Use);
    // A store both reads and writes the memory pseudo-variable: other
    // addresses keep their contents.
    F.Use.set(U.memIndex());
    F.Def.set(U.memIndex());
    return F;
  }
  case Node::Kind::Branch:
    addFreeVars(cast<BranchNode>(&N)->Cond, U, F.Use);
    return F;
  case Node::Kind::Call: {
    const auto *C = cast<CallNode>(&N);
    addFreeVars(C->Callee, U, F.Use);
    F.Use.set(U.memIndex());
    F.Def.set(U.memIndex());
    UseArgs(C->NumArgs);
    UseGlobals();
    DefGlobals();
    if (C->Bundle.Abort) {
      // Table 3: "if abort is True, place use A[i] ... along the edge to
      // the exit node"; attaching the uses to the node is conservative.
      UseArgs(U.maxArgs());
    }
    return F;
  }
  case Node::Kind::Jump: {
    const auto *J = cast<JumpNode>(&N);
    addFreeVars(J->Callee, U, F.Use);
    F.Use.set(U.memIndex());
    UseArgs(J->NumArgs);
    UseGlobals();
    return F;
  }
  case Node::Kind::CutTo: {
    const auto *C = cast<CutToNode>(&N);
    addFreeVars(C->Cont, U, F.Use);
    F.Use.set(U.memIndex());
    UseArgs(C->NumArgs);
    UseGlobals();
    return F;
  }
  case Node::Kind::Yield:
    // "Not in any optimized procedure."
    return F;
  }
  cmm_unreachable("unknown node kind");
}

//===----------------------------------------------------------------------===//
// May-σ analysis
//===----------------------------------------------------------------------===//

std::vector<BitVector> cmm::computeMaySigma(const IrProc &P,
                                            const LocUniverse &U) {
  std::vector<BitVector> In(P.Nodes.size(), BitVector(U.size()));
  std::vector<BitVector> Out(P.Nodes.size(), BitVector(U.size()));
  std::vector<Node *> Order = reachableNodes(P);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (Node *N : Order) {
      BitVector NewOut = In[N->Id];
      if (const auto *CS = dyn_cast<CalleeSavesNode>(N)) {
        NewOut.clear();
        for (Symbol V : CS->Saved)
          if (std::optional<unsigned> I = U.varIndex(V))
            NewOut.set(*I);
      }
      if (!(NewOut == Out[N->Id])) {
        Out[N->Id] = NewOut;
        Changed = true;
      }
      forEachSucc(*N, [&](Node *S, EdgeKind) {
        if (In[S->Id].unionWith(Out[N->Id]))
          Changed = true;
      });
    }
  }
  return In;
}

//===----------------------------------------------------------------------===//
// Edge rewiring
//===----------------------------------------------------------------------===//

void cmm::replaceAllSuccessorUses(IrProc &P, Node *From, Node *To) {
  for (const std::unique_ptr<Node> &Owned : P.Nodes) {
    Node *N = Owned.get();
    auto Fix = [&](Node *&Slot) {
      if (Slot == From)
        Slot = To;
    };
    switch (N->kind()) {
    case Node::Kind::Entry: {
      auto *E = cast<EntryNode>(N);
      Fix(E->Next);
      for (auto &[Name, Target] : E->Conts) {
        (void)Name;
        Fix(Target);
      }
      break;
    }
    case Node::Kind::CopyIn:
      Fix(cast<CopyInNode>(N)->Next);
      break;
    case Node::Kind::CopyOut:
      Fix(cast<CopyOutNode>(N)->Next);
      break;
    case Node::Kind::CalleeSaves:
      Fix(cast<CalleeSavesNode>(N)->Next);
      break;
    case Node::Kind::Assign:
      Fix(cast<AssignNode>(N)->Next);
      break;
    case Node::Kind::Store:
      Fix(cast<StoreNode>(N)->Next);
      break;
    case Node::Kind::Branch:
      Fix(cast<BranchNode>(N)->TrueDst);
      Fix(cast<BranchNode>(N)->FalseDst);
      break;
    case Node::Kind::Call: {
      auto *C = cast<CallNode>(N);
      for (Node *&T : C->Bundle.ReturnsTo)
        Fix(T);
      for (Node *&T : C->Bundle.UnwindsTo)
        Fix(T);
      for (Node *&T : C->Bundle.CutsTo)
        Fix(T);
      break;
    }
    case Node::Kind::CutTo:
      for (Node *&T : cast<CutToNode>(N)->AlsoCutsTo)
        Fix(T);
      break;
    default:
      break;
    }
  }
  if (P.EntryPoint == From)
    P.EntryPoint = To;
}
