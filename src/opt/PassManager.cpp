//===- opt/PassManager.cpp ------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "opt/PassManager.h"

using namespace cmm;

OptReport cmm::optimizeProc(IrProc &P, const IrProgram &Prog,
                            const OptOptions &Opts) {
  OptReport R;
  if (P.isYieldIntrinsic())
    return R;
  for (unsigned Round = 0; Round < Opts.Rounds; ++Round) {
    ConstPropReport CP =
        propagateConstants(P, Prog, Opts.WithExceptionalEdges);
    R.ConstProp.ExprsRewritten += CP.ExprsRewritten;
    R.ConstProp.BranchesResolved += CP.BranchesResolved;
    CopyPropReport CopyP = propagateCopies(P, Prog, Opts.WithExceptionalEdges);
    R.CopyProp.UsesRewritten += CopyP.UsesRewritten;
    DeadCodeReport DC = eliminateDeadCode(P, Prog, Opts.WithExceptionalEdges);
    R.DeadCode.AssignsRemoved += DC.AssignsRemoved;
    if (CP.ExprsRewritten == 0 && CP.BranchesResolved == 0 &&
        CopyP.UsesRewritten == 0 && DC.AssignsRemoved == 0)
      break;
  }
  if (Opts.PlaceCalleeSaves) {
    CalleeSavesOptions CS = Opts.CalleeSaves;
    CS.RespectCutEdges = CS.RespectCutEdges && Opts.WithExceptionalEdges;
    if (!Opts.WithExceptionalEdges)
      CS.RespectCutEdges = false;
    R.CalleeSaves = placeCalleeSaves(P, Prog, CS);
  }
  return R;
}

OptReport cmm::optimizeProgram(IrProgram &Prog, const OptOptions &Opts) {
  OptReport Total;
  for (const std::unique_ptr<IrProc> &P : Prog.Procs) {
    OptReport R = optimizeProc(*P, Prog, Opts);
    Total.ConstProp.ExprsRewritten += R.ConstProp.ExprsRewritten;
    Total.ConstProp.BranchesResolved += R.ConstProp.BranchesResolved;
    Total.CopyProp.UsesRewritten += R.CopyProp.UsesRewritten;
    Total.DeadCode.AssignsRemoved += R.DeadCode.AssignsRemoved;
    Total.CalleeSaves.CallsAnnotated += R.CalleeSaves.CallsAnnotated;
    Total.CalleeSaves.VarsPlaced += R.CalleeSaves.VarsPlaced;
    Total.CalleeSaves.VarsExcludedByCutEdges +=
        R.CalleeSaves.VarsExcludedByCutEdges;
    Total.CalleeSaves.VarsSpilledForPressure +=
        R.CalleeSaves.VarsSpilledForPressure;
  }
  return Total;
}
