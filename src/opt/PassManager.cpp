//===- opt/PassManager.cpp ------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "opt/PassManager.h"

#include "ir/Succ.h"
#include "ir/Validate.h"

#include <chrono>
#include <cstdio>

using namespace cmm;

const char *cmm::passName(PassId Id) {
  switch (Id) {
  case PassId::ConstProp:
    return "constprop";
  case PassId::CopyProp:
    return "copyprop";
  case PassId::DeadCode:
    return "deadcode";
  case PassId::CalleeSaves:
    return "calleesaves";
  }
  return "?";
}

uint64_t cmm::countAlsoEdges(const IrProc &P) {
  uint64_t Edges = 0;
  if (!P.EntryPoint || P.isYieldIntrinsic())
    return 0;
  for (const Node *N : reachableNodes(P))
    forEachSucc(*N, [&](Node *, EdgeKind K) {
      if (isExceptionalEdge(K))
        ++Edges;
    });
  return Edges;
}

namespace {

using Clock = std::chrono::steady_clock;

/// Times one pass execution over one procedure and records the IR delta.
/// \p Run returns the pass's own change count.
template <typename Fn>
void instrumented(OptReport &R, PassId Id, IrProc &P, const IrProgram &Prog,
                  const OptOptions &Opts, Fn Run) {
  uint64_t NodesBefore = reachableNodes(P).size();
  uint64_t EdgesBefore = countAlsoEdges(P);
  Clock::time_point T0 = Clock::now();
  uint64_t Changes = Run();
  double Ms = std::chrono::duration<double, std::milli>(Clock::now() - T0)
                  .count();
  uint64_t NodesAfter = reachableNodes(P).size();
  uint64_t EdgesAfter = countAlsoEdges(P);

  PassStat &S = R.pass(Id);
  ++S.Runs;
  S.Millis += Ms;
  S.Changes += Changes;
  S.NodesDelta +=
      static_cast<int64_t>(NodesAfter) - static_cast<int64_t>(NodesBefore);
  S.AlsoEdgesDelta +=
      static_cast<int64_t>(EdgesAfter) - static_cast<int64_t>(EdgesBefore);
  R.TotalMillis += Ms;

  if (Opts.Verbose)
    std::fprintf(stderr,
                 "[opt] %-11s %-20s %8.3f ms  changes=%-6llu "
                 "nodes=%llu->%llu also-edges=%llu->%llu\n",
                 passName(Id), Prog.Names->spelling(P.Name).c_str(), Ms,
                 (unsigned long long)Changes, (unsigned long long)NodesBefore,
                 (unsigned long long)NodesAfter,
                 (unsigned long long)EdgesBefore,
                 (unsigned long long)EdgesAfter);

  if (Opts.ValidateEachPass) {
    DiagnosticEngine VDiags;
    if (!validateProc(P, *Prog.Names, VDiags))
      R.ValidationErrors.push_back(std::string(passName(Id)) + " broke " +
                                   Prog.Names->spelling(P.Name) + ": " +
                                   VDiags.str());
  }
}

} // namespace

std::string cmm::optReportText(const OptReport &R) {
  std::string Out = "=== optimizer passes ===\n";
  Out += "        pass      runs    time(ms)   changes     nodes"
         "  also-edges\n";
  char Buf[160];
  for (size_t I = 0; I < NumPassIds; ++I) {
    const PassStat &S = R.Passes[I];
    std::snprintf(Buf, sizeof(Buf), "%12s %9llu %11.3f %9llu %+9lld %+11lld\n",
                  passName(static_cast<PassId>(I)),
                  (unsigned long long)S.Runs, S.Millis,
                  (unsigned long long)S.Changes, (long long)S.NodesDelta,
                  (long long)S.AlsoEdgesDelta);
    Out += Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "total: %.3f ms, rewrites: cp=%u+%u "
                "copy=%u dce=%u cs=%u\n",
                R.TotalMillis, R.ConstProp.ExprsRewritten,
                R.ConstProp.BranchesResolved, R.CopyProp.UsesRewritten,
                R.DeadCode.AssignsRemoved, R.CalleeSaves.VarsPlaced);
  Out += Buf;
  return Out;
}

OptReport cmm::optimizeProc(IrProc &P, const IrProgram &Prog,
                            const OptOptions &Opts) {
  OptReport R;
  if (P.isYieldIntrinsic())
    return R;
  for (unsigned Round = 0; Round < Opts.Rounds; ++Round) {
    ConstPropReport CP;
    if (Opts.RunConstProp) {
      instrumented(R, PassId::ConstProp, P, Prog, Opts, [&] {
        CP = propagateConstants(P, Prog, Opts.WithExceptionalEdges);
        return uint64_t(CP.ExprsRewritten) + CP.BranchesResolved;
      });
      R.ConstProp.ExprsRewritten += CP.ExprsRewritten;
      R.ConstProp.BranchesResolved += CP.BranchesResolved;
    }

    CopyPropReport CopyP;
    if (Opts.RunCopyProp) {
      instrumented(R, PassId::CopyProp, P, Prog, Opts, [&] {
        CopyP = propagateCopies(P, Prog, Opts.WithExceptionalEdges);
        return uint64_t(CopyP.UsesRewritten);
      });
      R.CopyProp.UsesRewritten += CopyP.UsesRewritten;
    }

    DeadCodeReport DC;
    if (Opts.RunDeadCode) {
      instrumented(R, PassId::DeadCode, P, Prog, Opts, [&] {
        DC = eliminateDeadCode(P, Prog, Opts.WithExceptionalEdges);
        return uint64_t(DC.AssignsRemoved);
      });
      R.DeadCode.AssignsRemoved += DC.AssignsRemoved;
    }

    if (CP.ExprsRewritten == 0 && CP.BranchesResolved == 0 &&
        CopyP.UsesRewritten == 0 && DC.AssignsRemoved == 0)
      break;
  }
  if (Opts.PlaceCalleeSaves) {
    CalleeSavesOptions CS = Opts.CalleeSaves;
    CS.RespectCutEdges = CS.RespectCutEdges && Opts.WithExceptionalEdges;
    if (!Opts.WithExceptionalEdges)
      CS.RespectCutEdges = false;
    instrumented(R, PassId::CalleeSaves, P, Prog, Opts, [&] {
      R.CalleeSaves = placeCalleeSaves(P, Prog, CS);
      return uint64_t(R.CalleeSaves.VarsPlaced);
    });
  }
  return R;
}

OptReport cmm::optimizeProgram(IrProgram &Prog, const OptOptions &Opts) {
  OptReport Total;
  for (const std::unique_ptr<IrProc> &P : Prog.Procs) {
    OptReport R = optimizeProc(*P, Prog, Opts);
    Total.ConstProp.ExprsRewritten += R.ConstProp.ExprsRewritten;
    Total.ConstProp.BranchesResolved += R.ConstProp.BranchesResolved;
    Total.CopyProp.UsesRewritten += R.CopyProp.UsesRewritten;
    Total.DeadCode.AssignsRemoved += R.DeadCode.AssignsRemoved;
    Total.CalleeSaves.CallsAnnotated += R.CalleeSaves.CallsAnnotated;
    Total.CalleeSaves.VarsPlaced += R.CalleeSaves.VarsPlaced;
    Total.CalleeSaves.VarsExcludedByCutEdges +=
        R.CalleeSaves.VarsExcludedByCutEdges;
    Total.CalleeSaves.VarsSpilledForPressure +=
        R.CalleeSaves.VarsSpilledForPressure;
    Total.CalleeSaves.CutHazardFlushes += R.CalleeSaves.CutHazardFlushes;
    for (size_t I = 0; I < NumPassIds; ++I) {
      Total.Passes[I].Runs += R.Passes[I].Runs;
      Total.Passes[I].Millis += R.Passes[I].Millis;
      Total.Passes[I].Changes += R.Passes[I].Changes;
      Total.Passes[I].NodesDelta += R.Passes[I].NodesDelta;
      Total.Passes[I].AlsoEdgesDelta += R.Passes[I].AlsoEdgesDelta;
    }
    Total.TotalMillis += R.TotalMillis;
    for (std::string &E : R.ValidationErrors)
      Total.ValidationErrors.push_back(std::move(E));
  }
  return Total;
}
