//===- opt/CalleeSaves.cpp ------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "opt/CalleeSaves.h"

using namespace cmm;

CalleeSavesReport cmm::placeCalleeSaves(IrProc &P, const IrProgram &Prog,
                                        const CalleeSavesOptions &Opts) {
  CalleeSavesReport Report;
  if (P.isYieldIntrinsic())
    return Report;

  LocUniverse U = LocUniverse::forProc(P, Prog);
  Liveness L = computeLiveness(P, U,
                               /*WithExceptionalEdges=*/Opts.RespectCutEdges);

  // Snapshot the calls before we start inserting nodes.
  std::vector<CallNode *> Calls;
  for (Node *N : reachableNodes(P))
    if (auto *C = dyn_cast<CallNode>(N))
      Calls.push_back(C);

  for (CallNode *C : Calls) {
    // Variables whose values must survive into the normal continuation.
    Node *Normal = C->Bundle.normalReturn();
    BitVector LiveAcross = liveIntoContinuation(L, U, Normal);

    // Only the procedure's own variables live in its frame or its
    // callee-saves registers; globals are dedicated machine registers.
    std::vector<unsigned> Candidates;
    LiveAcross.forEach([&](size_t I) {
      if (U.isVar(static_cast<unsigned>(I)) &&
          P.VarTypes.count(U.varAt(static_cast<unsigned>(I))))
        Candidates.push_back(static_cast<unsigned>(I));
    });
    if (Candidates.empty())
      continue;

    // A value needed by a cut continuation must not be in a callee-saves
    // register across this call: the cut cannot restore it (Section 4.2).
    // Unwind and alternate-return continuations impose no such constraint —
    // those transfers restore callee-saves registers.
    BitVector KilledByCuts(U.size());
    if (Opts.RespectCutEdges)
      for (Node *Cut : C->Bundle.CutsTo)
        KilledByCuts.unionWith(liveIntoContinuation(L, U, Cut));

    std::vector<Symbol> Chosen;
    for (unsigned I : Candidates) {
      if (KilledByCuts.test(I)) {
        ++Report.VarsExcludedByCutEdges;
        continue;
      }
      if (Chosen.size() >= Opts.NumRegisters) {
        ++Report.VarsSpilledForPressure;
        continue;
      }
      Chosen.push_back(U.varAt(I));
    }
    if (Chosen.empty())
      continue;

    auto *CS = P.make<CalleeSavesNode>();
    CS->Loc = C->Loc;
    CS->Saved = std::move(Chosen);
    replaceAllSuccessorUses(P, C, CS);
    CS->Next = C;
    ++Report.CallsAnnotated;
    Report.VarsPlaced += static_cast<unsigned>(CS->Saved.size());
  }

  // A CalleeSaves set stays in effect until the next CalleeSaves node, so a
  // call we chose not to annotate can still execute with variables in
  // callee-saves registers, left there by an earlier call's node on the
  // same path. If such a variable is live into one of the call's cut
  // continuations, the cut kills it — the very hazard the exclusion above
  // guards against. Flush: give every such call an empty CalleeSaves node,
  // returning the registers' contents to the frame before the call. Empty
  // sets only shrink the downstream may-Sigma, so one pass suffices.
  if (Opts.RespectCutEdges) {
    std::vector<BitVector> MaySigma = computeMaySigma(P, U);
    std::vector<CallNode *> Hazardous;
    for (Node *N : reachableNodes(P)) {
      auto *C = dyn_cast<CallNode>(N);
      if (!C || C->Bundle.CutsTo.empty())
        continue;
      BitVector Hazard(U.size());
      for (Node *Cut : C->Bundle.CutsTo)
        Hazard.unionWith(liveIntoContinuation(L, U, Cut));
      Hazard.intersectWith(MaySigma[C->Id]);
      if (Hazard.count() != 0)
        Hazardous.push_back(C);
    }
    for (CallNode *C : Hazardous) {
      auto *CS = P.make<CalleeSavesNode>();
      CS->Loc = C->Loc;
      replaceAllSuccessorUses(P, C, CS);
      CS->Next = C;
      ++Report.CutHazardFlushes;
    }
  }
  return Report;
}

unsigned cmm::countKilledLiveValues(const IrProc &P, const IrProgram &Prog) {
  if (P.isYieldIntrinsic())
    return 0;
  LocUniverse U = LocUniverse::forProc(P, Prog);
  Liveness L = computeLiveness(P, U, /*WithExceptionalEdges=*/true);
  std::vector<BitVector> Sigma = computeMaySigma(P, U);

  unsigned Bugs = 0;
  for (Node *N : reachableNodes(P)) {
    const auto *C = dyn_cast<CallNode>(N);
    if (!C)
      continue;
    for (Node *Cut : C->Bundle.CutsTo) {
      BitVector Killed = Sigma[N->Id];
      Killed.intersectWith(liveIntoContinuation(L, U, Cut));
      Bugs += static_cast<unsigned>(Killed.count());
    }
  }
  return Bugs;
}
