//===- opt/DeadCode.cpp ---------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "opt/DeadCode.h"

using namespace cmm;

DeadCodeReport cmm::eliminateDeadCode(IrProc &P, const IrProgram &Prog,
                                      bool WithExceptionalEdges) {
  DeadCodeReport Report;
  if (P.isYieldIntrinsic())
    return Report;

  bool Changed = true;
  while (Changed) {
    Changed = false;
    LocUniverse U = LocUniverse::forProc(P, Prog);
    Liveness L = computeLiveness(P, U, WithExceptionalEdges);
    for (Node *N : reachableNodes(P)) {
      auto *A = dyn_cast<AssignNode>(N);
      if (!A)
        continue;
      std::optional<unsigned> I = U.varIndex(A->Var);
      if (!I || L.LiveOut[N->Id].test(*I))
        continue;
      // Evaluating the right-hand side must not be observable: expressions
      // are pure, but the fast-but-dangerous primitives can make the
      // machine go wrong, and that behaviour must be preserved.
      if (exprCanFail(A->Value, *Prog.Names))
        continue;
      replaceAllSuccessorUses(P, A, A->Next);
      ++Report.AssignsRemoved;
      Changed = true;
    }
  }
  return Report;
}
