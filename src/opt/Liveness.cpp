//===- opt/Liveness.cpp ---------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "opt/Liveness.h"

using namespace cmm;

Liveness cmm::computeLiveness(const IrProc &P, const LocUniverse &U,
                              bool WithExceptionalEdges) {
  Liveness L;
  L.LiveIn.assign(P.Nodes.size(), BitVector(U.size()));
  L.LiveOut.assign(P.Nodes.size(), BitVector(U.size()));

  std::vector<Node *> Order = reachableNodes(P);
  std::vector<NodeFacts> Facts(P.Nodes.size());
  for (Node *N : Order)
    Facts[N->Id] = computeFacts(*N, U);

  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Backward problem: visit in reverse DFS order.
    for (auto It = Order.rbegin(); It != Order.rend(); ++It) {
      Node *N = *It;
      BitVector Out(U.size());
      bool IsCall = isa<CallNode>(N);
      forEachSucc(
          *N,
          [&](Node *S, EdgeKind) {
            BitVector Contribution = L.LiveIn[S->Id];
            if (IsCall) {
              // Every outgoing edge of a call redefines the whole
              // argument-passing area (results or continuation parameters).
              for (unsigned I = 0; I < U.maxArgs(); ++I)
                Contribution.reset(U.argIndex(I));
            }
            Out.unionWith(Contribution);
          },
          WithExceptionalEdges);
      if (!(Out == L.LiveOut[N->Id])) {
        L.LiveOut[N->Id] = Out;
        Changed = true;
      }
      BitVector In = Out;
      In.subtract(Facts[N->Id].Def);
      In.unionWith(Facts[N->Id].Use);
      if (!(In == L.LiveIn[N->Id])) {
        L.LiveIn[N->Id] = In;
        Changed = true;
      }
    }
  }
  return L;
}

BitVector cmm::liveIntoContinuation(const Liveness &L, const LocUniverse &U,
                                    const Node *Target) {
  BitVector Live = L.LiveIn[Target->Id];
  for (unsigned I = 0; I < U.maxArgs(); ++I)
    Live.reset(U.argIndex(I));
  return Live;
}
