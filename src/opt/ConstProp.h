//===- opt/ConstProp.h - Constant propagation -------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iterative constant propagation and folding over Abstract C-- graphs —
/// one of the "standard optimizations" Table 3's dataflow information is
/// meant to enable without treating exceptions as a special case. Calls
/// invalidate global registers; cut edges additionally invalidate variables
/// that may sit in callee-saves registers.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_OPT_CONSTPROP_H
#define CMM_OPT_CONSTPROP_H

#include "opt/Dataflow.h"
#include "sem/Value.h"

namespace cmm {

/// What the pass changed.
struct ConstPropReport {
  unsigned ExprsRewritten = 0;
  unsigned BranchesResolved = 0;
};

/// Propagates and folds constants in \p P. \p WithExceptionalEdges selects
/// whether the `also` edges participate (the ablation switch).
ConstPropReport propagateConstants(IrProc &P, const IrProgram &Prog,
                                   bool WithExceptionalEdges = true);

/// Folds \p E to a constant when every leaf is a literal; used by tests.
/// Never folds expressions whose evaluation could fail.
std::optional<Value> foldConstExpr(const Expr *E, const Interner &Names);

} // namespace cmm

#endif // CMM_OPT_CONSTPROP_H
