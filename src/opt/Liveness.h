//===- opt/Liveness.h - Live-variable analysis ------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backward liveness over Abstract C-- graphs, built on the Table 3 facts.
/// The exceptional edges contributed by the `also` annotations are included
/// by default; WithExceptionalEdges=false gives the unsound approximation
/// whose consequences the Table 3 ablation benchmark measures (compare
/// Hennessy 1981 and Section 6 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef CMM_OPT_LIVENESS_H
#define CMM_OPT_LIVENESS_H

#include "opt/Dataflow.h"

namespace cmm {

/// Per-node live sets, indexed by Node::Id.
struct Liveness {
  std::vector<BitVector> LiveIn, LiveOut;
};

/// Solves liveness for \p P.
Liveness computeLiveness(const IrProc &P, const LocUniverse &U,
                         bool WithExceptionalEdges = true);

/// The locations live along the edge from Call node \p C into continuation
/// \p Target: LiveIn(Target) minus the argument-area slots (every outgoing
/// edge of a call redefines A).
BitVector liveIntoContinuation(const Liveness &L, const LocUniverse &U,
                               const Node *Target);

} // namespace cmm

#endif // CMM_OPT_LIVENESS_H
