//===- opt/PassManager.h - Optimization pipeline ----------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "single optimizer [that] should suffice for all C-- programs,
/// regardless of the original source language" (Section 1). One pipeline,
/// driven purely by the Table 3 dataflow facts and the annotation edges; no
/// pass knows anything about any source language's exception semantics.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_OPT_PASSMANAGER_H
#define CMM_OPT_PASSMANAGER_H

#include "opt/CalleeSaves.h"
#include "opt/ConstProp.h"
#include "opt/CopyProp.h"
#include "opt/DeadCode.h"

#include <array>
#include <string>
#include <vector>

namespace cmm {

/// Pipeline configuration.
struct OptOptions {
  /// Include the `also`-annotation flow edges in every analysis. False is
  /// the unsound ablation the Table 3 benchmark measures.
  bool WithExceptionalEdges = true;
  /// Rounds of constant propagation + dead-code elimination.
  unsigned Rounds = 2;
  /// Pass selection. The differential harness runs each scalar pass alone
  /// to attribute a divergence to the pass that introduced it.
  bool RunConstProp = true;
  bool RunCopyProp = true;
  bool RunDeadCode = true;
  /// Run the callee-saves placement pass after scalar cleanup.
  bool PlaceCalleeSaves = false;
  CalleeSavesOptions CalleeSaves;
  /// Re-verify the graph (ir/Validate) after every pass execution; any
  /// problem is recorded in OptReport::ValidationErrors tagged with the
  /// offending pass and procedure.
  bool ValidateEachPass = false;
  /// Print one line per pass execution (procedure, wall time, IR delta) to
  /// stderr as the pipeline runs. Machine-readable stats are always
  /// collected in OptReport::Passes regardless of this flag.
  bool Verbose = false;
};

/// Identifies a pipeline pass in OptReport::Passes.
enum class PassId : uint8_t { ConstProp, CopyProp, DeadCode, CalleeSaves };
inline constexpr size_t NumPassIds = 4;
const char *passName(PassId Id);

/// Per-pass instrumentation, aggregated over every execution of the pass
/// (all rounds, all procedures).
struct PassStat {
  uint64_t Runs = 0;       ///< executions (procedures x rounds)
  double Millis = 0;       ///< total wall time
  uint64_t Changes = 0;    ///< pass-specific rewrite count
  /// Reachable-node and `also`-edge deltas (after - before), summed. The
  /// also-edge count is the number of annotation-induced flow edges of
  /// Table 3 (alt-return + unwind + cut edges over the reachable graph).
  int64_t NodesDelta = 0;
  int64_t AlsoEdgesDelta = 0;
};

/// Aggregate pass statistics.
struct OptReport {
  ConstPropReport ConstProp;
  CopyPropReport CopyProp;
  DeadCodeReport DeadCode;
  CalleeSavesReport CalleeSaves;
  /// Indexed by PassId.
  std::array<PassStat, NumPassIds> Passes;
  double TotalMillis = 0;
  /// With OptOptions::ValidateEachPass, one entry per pass execution that
  /// left the graph structurally invalid ("<pass> broke <proc>: <detail>").
  std::vector<std::string> ValidationErrors;

  PassStat &pass(PassId Id) { return Passes[static_cast<size_t>(Id)]; }
  const PassStat &pass(PassId Id) const {
    return Passes[static_cast<size_t>(Id)];
  }
};

/// Renders \p R as a short human-readable per-pass table.
std::string optReportText(const OptReport &R);

/// Number of `also`-annotation flow edges over the reachable graph of
/// \p P (the Table 3 edge count; used for pass IR deltas and tests).
uint64_t countAlsoEdges(const IrProc &P);

/// Optimizes one procedure.
OptReport optimizeProc(IrProc &P, const IrProgram &Prog,
                       const OptOptions &Opts = OptOptions());

/// Optimizes every procedure of \p Prog (the yield intrinsic is skipped:
/// "Yield: not in any optimized procedure").
OptReport optimizeProgram(IrProgram &Prog,
                          const OptOptions &Opts = OptOptions());

} // namespace cmm

#endif // CMM_OPT_PASSMANAGER_H
