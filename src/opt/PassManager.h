//===- opt/PassManager.h - Optimization pipeline ----------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "single optimizer [that] should suffice for all C-- programs,
/// regardless of the original source language" (Section 1). One pipeline,
/// driven purely by the Table 3 dataflow facts and the annotation edges; no
/// pass knows anything about any source language's exception semantics.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_OPT_PASSMANAGER_H
#define CMM_OPT_PASSMANAGER_H

#include "opt/CalleeSaves.h"
#include "opt/ConstProp.h"
#include "opt/CopyProp.h"
#include "opt/DeadCode.h"

namespace cmm {

/// Pipeline configuration.
struct OptOptions {
  /// Include the `also`-annotation flow edges in every analysis. False is
  /// the unsound ablation the Table 3 benchmark measures.
  bool WithExceptionalEdges = true;
  /// Rounds of constant propagation + dead-code elimination.
  unsigned Rounds = 2;
  /// Run the callee-saves placement pass after scalar cleanup.
  bool PlaceCalleeSaves = false;
  CalleeSavesOptions CalleeSaves;
};

/// Aggregate pass statistics.
struct OptReport {
  ConstPropReport ConstProp;
  CopyPropReport CopyProp;
  DeadCodeReport DeadCode;
  CalleeSavesReport CalleeSaves;
};

/// Optimizes one procedure.
OptReport optimizeProc(IrProc &P, const IrProgram &Prog,
                       const OptOptions &Opts = OptOptions());

/// Optimizes every procedure of \p Prog (the yield intrinsic is skipped:
/// "Yield: not in any optimized procedure").
OptReport optimizeProgram(IrProgram &Prog,
                          const OptOptions &Opts = OptOptions());

} // namespace cmm

#endif // CMM_OPT_PASSMANAGER_H
