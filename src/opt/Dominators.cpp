//===- opt/Dominators.cpp -------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "opt/Dominators.h"

#include "support/Assert.h"

#include <algorithm>

using namespace cmm;

bool DomInfo::dominates(const Node *A, const Node *B) const {
  assert(isReachable(A) && isReachable(B) && "unreachable node");
  const Node *N = B;
  while (true) {
    if (N == A)
      return true;
    const Node *Up = Idom[N->Id];
    if (Up == N)
      return false; // reached the entry
    N = Up;
  }
}

DomInfo cmm::computeDominators(const IrProc &P) {
  DomInfo D;

  // Post-order DFS, then reverse.
  std::vector<Node *> Post;
  std::vector<uint8_t> State(P.Nodes.size(), 0); // 0 new, 1 open, 2 done
  std::vector<std::pair<Node *, size_t>> Stack;
  std::vector<std::vector<Node *>> Succs(P.Nodes.size());
  if (P.EntryPoint) {
    Stack.push_back({P.EntryPoint, 0});
    State[P.EntryPoint->Id] = 1;
    forEachSucc(*P.EntryPoint, [&](Node *S, EdgeKind) {
      Succs[P.EntryPoint->Id].push_back(S);
    });
  }
  while (!Stack.empty()) {
    auto &[N, Next] = Stack.back();
    if (Next < Succs[N->Id].size()) {
      Node *S = Succs[N->Id][Next++];
      if (State[S->Id] == 0) {
        State[S->Id] = 1;
        forEachSucc(*S,
                    [&](Node *T, EdgeKind) { Succs[S->Id].push_back(T); });
        Stack.push_back({S, 0});
      }
      continue;
    }
    State[N->Id] = 2;
    Post.push_back(N);
    Stack.pop_back();
  }

  D.Rpo.assign(Post.rbegin(), Post.rend());
  D.RpoIndex.assign(P.Nodes.size(), ~0u);
  for (unsigned I = 0; I < D.Rpo.size(); ++I)
    D.RpoIndex[D.Rpo[I]->Id] = I;

  // Predecessors (reachable only).
  D.Preds.assign(P.Nodes.size(), {});
  for (Node *N : D.Rpo)
    for (Node *S : Succs[N->Id])
      D.Preds[S->Id].push_back(N);

  // Cooper-Harvey-Kennedy.
  D.Idom.assign(P.Nodes.size(), nullptr);
  Node *Entry = P.EntryPoint;
  D.Idom[Entry->Id] = Entry;
  auto Intersect = [&](Node *A, Node *B) {
    while (A != B) {
      while (D.RpoIndex[A->Id] > D.RpoIndex[B->Id])
        A = D.Idom[A->Id];
      while (D.RpoIndex[B->Id] > D.RpoIndex[A->Id])
        B = D.Idom[B->Id];
    }
    return A;
  };
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (Node *N : D.Rpo) {
      if (N == Entry)
        continue;
      Node *NewIdom = nullptr;
      for (Node *Pred : D.Preds[N->Id]) {
        if (!D.Idom[Pred->Id])
          continue;
        NewIdom = NewIdom ? Intersect(NewIdom, Pred) : Pred;
      }
      if (NewIdom && D.Idom[N->Id] != NewIdom) {
        D.Idom[N->Id] = NewIdom;
        Changed = true;
      }
    }
  }

  D.DomChildren.assign(P.Nodes.size(), {});
  for (Node *N : D.Rpo)
    if (N != Entry)
      D.DomChildren[D.Idom[N->Id]->Id].push_back(N);

  // Dominance frontiers (Cytron et al.).
  D.Frontier.assign(P.Nodes.size(), {});
  for (Node *N : D.Rpo) {
    if (D.Preds[N->Id].size() < 2)
      continue;
    for (Node *Pred : D.Preds[N->Id]) {
      Node *Runner = Pred;
      while (Runner != D.Idom[N->Id]) {
        auto &F = D.Frontier[Runner->Id];
        if (std::find(F.begin(), F.end(), N) == F.end())
          F.push_back(N);
        Runner = D.Idom[Runner->Id];
      }
    }
  }
  return D;
}
