//===- opt/Ssa.h - SSA numbering (Figure 6) ---------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "The dataflow information is expressed as a static single-assignment
/// numbering of the variables" (Section 6, Figure 6). SSA here is an
/// *overlay*: the graph keeps the Table 2 node kinds, and this analysis
/// assigns a version to every definition and use — including the elements
/// of the value-passing area A and the memory pseudo-variable M — with
/// φ-functions recorded at join points.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_OPT_SSA_H
#define CMM_OPT_SSA_H

#include "opt/Dataflow.h"
#include "opt/Dominators.h"

namespace cmm {

/// SSA numbering of one procedure.
struct SsaNumbering {
  /// A φ-function at a join node.
  struct Phi {
    unsigned Loc;                ///< location index in the universe
    unsigned Result;             ///< version defined by the φ
    std::vector<unsigned> Args;  ///< versions per predecessor (Preds order)
  };

  LocUniverse Universe;
  DomInfo Dom;
  std::vector<std::vector<Phi>> Phis;   ///< by Node::Id
  /// Versions defined at each node: (loc, version).
  std::vector<std::vector<std::pair<unsigned, unsigned>>> Defs;
  /// Versions used at each node: (loc, version).
  std::vector<std::vector<std::pair<unsigned, unsigned>>> Uses;

  /// Renders the numbering in the style of Figure 6, one node per line.
  std::string print(const IrProc &P, const Interner &Names) const;
};

/// Computes the SSA numbering of \p P (exceptional edges included, so the
/// φ-functions at handler continuations reflect the extra flow edges the
/// annotations introduce).
SsaNumbering computeSsa(const IrProc &P, const IrProgram &Prog);

} // namespace cmm

#endif // CMM_OPT_SSA_H
