//===- opt/Dominators.h - Dominator tree and frontiers ----------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree (Cooper-Harvey-Kennedy iterative algorithm) and dominance
/// frontiers over Abstract C-- graphs, exceptional edges included; the
/// substrate for the Figure 6 SSA numbering.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_OPT_DOMINATORS_H
#define CMM_OPT_DOMINATORS_H

#include "ir/Succ.h"

#include <unordered_map>
#include <vector>

namespace cmm {

/// Dominance information for one procedure. Only reachable nodes appear.
struct DomInfo {
  /// Reachable nodes in reverse post-order.
  std::vector<Node *> Rpo;
  /// Position of each node in Rpo, by Node::Id (~0u when unreachable).
  std::vector<unsigned> RpoIndex;
  /// Immediate dominator by Node::Id (the entry maps to itself).
  std::vector<Node *> Idom;
  /// Dominator-tree children by Node::Id.
  std::vector<std::vector<Node *>> DomChildren;
  /// Dominance frontier by Node::Id.
  std::vector<std::vector<Node *>> Frontier;
  /// CFG predecessors by Node::Id (edge order follows forEachSucc).
  std::vector<std::vector<Node *>> Preds;

  bool isReachable(const Node *N) const {
    return N->Id < RpoIndex.size() && RpoIndex[N->Id] != ~0u;
  }
  /// True when \p A dominates \p B.
  bool dominates(const Node *A, const Node *B) const;
};

/// Computes dominance information for \p P.
DomInfo computeDominators(const IrProc &P);

} // namespace cmm

#endif // CMM_OPT_DOMINATORS_H
