//===- opt/DeadCode.h - Dead-assignment elimination -------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Removes assignments whose target is dead. With the exceptional edges in
/// the liveness problem this is safe in the presence of exceptions — "a
/// variable mentioned in a handler" stays live across the calls that can
/// reach the handler. Without them (the ablation) it deletes exactly the
/// assignments Hennessy (1981) warns about, and the abstract machine
/// observes the damage as a use of an unbound variable.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_OPT_DEADCODE_H
#define CMM_OPT_DEADCODE_H

#include "opt/Liveness.h"

namespace cmm {

/// What the pass removed.
struct DeadCodeReport {
  unsigned AssignsRemoved = 0;
};

/// Removes dead assignments from \p P; iterates to a fixpoint.
DeadCodeReport eliminateDeadCode(IrProc &P, const IrProgram &Prog,
                                 bool WithExceptionalEdges = true);

} // namespace cmm

#endif // CMM_OPT_DEADCODE_H
