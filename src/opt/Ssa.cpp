//===- opt/Ssa.cpp --------------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "opt/Ssa.h"

#include "ir/IrPrinter.h"
#include "support/Assert.h"

#include <unordered_set>

using namespace cmm;

namespace {

class SsaBuilder {
public:
  SsaBuilder(const IrProc &P, const IrProgram &Prog)
      : P(P), U(LocUniverse::forProc(P, Prog)), D(computeDominators(P)) {}

  SsaNumbering run();

private:
  /// The Table 3 defs of \p N, with the per-edge A definitions of calls
  /// folded into the node.
  BitVector nodeDefs(const Node *N, const NodeFacts &F) const;
  void rename(Node *N, std::vector<std::vector<unsigned>> &VersionStack);

  const IrProc &P;
  LocUniverse U;
  DomInfo D;
  std::vector<NodeFacts> Facts;
  SsaNumbering Out;
  std::vector<unsigned> NextVersion;
  std::vector<uint8_t> Visited;
};

BitVector SsaBuilder::nodeDefs(const Node *N, const NodeFacts &F) const {
  BitVector Defs = F.Def;
  if (isa<CallNode>(N)) {
    // Every outgoing edge of a call redefines the value-passing area; fold
    // the edge definitions into the node for numbering purposes.
    for (unsigned I = 0; I < U.maxArgs(); ++I)
      Defs.set(U.argIndex(I));
  }
  return Defs;
}

SsaNumbering SsaBuilder::run() {
  Out.Universe = U;
  Out.Dom = D;
  Out.Phis.assign(P.Nodes.size(), {});
  Out.Defs.assign(P.Nodes.size(), {});
  Out.Uses.assign(P.Nodes.size(), {});
  NextVersion.assign(U.size(), 0);
  Facts.resize(P.Nodes.size());
  for (Node *N : D.Rpo)
    Facts[N->Id] = computeFacts(*N, U);

  // Phi placement: iterated dominance frontiers of each location's defs.
  for (unsigned Loc = 0; Loc < U.size(); ++Loc) {
    std::vector<Node *> Work;
    for (Node *N : D.Rpo)
      if (nodeDefs(N, Facts[N->Id]).test(Loc))
        Work.push_back(N);
    std::unordered_set<const Node *> HasPhi;
    while (!Work.empty()) {
      Node *N = Work.back();
      Work.pop_back();
      for (Node *F : D.Frontier[N->Id]) {
        if (!HasPhi.insert(F).second)
          continue;
        SsaNumbering::Phi Phi;
        Phi.Loc = Loc;
        Phi.Result = 0; // assigned during renaming
        Phi.Args.assign(D.Preds[F->Id].size(), 0);
        Out.Phis[F->Id].push_back(Phi);
        Work.push_back(F);
      }
    }
  }

  // Renaming over the dominator tree.
  std::vector<std::vector<unsigned>> VersionStack(U.size());
  for (unsigned Loc = 0; Loc < U.size(); ++Loc)
    VersionStack[Loc].push_back(0); // version 0 = "live-in/undefined"
  Visited.assign(P.Nodes.size(), 0);
  rename(P.EntryPoint, VersionStack);
  return std::move(Out);
}

void SsaBuilder::rename(Node *N,
                        std::vector<std::vector<unsigned>> &VersionStack) {
  std::vector<unsigned> Pushed; // locations we pushed, for unwinding

  // Phi results are defined before the node's own uses.
  for (SsaNumbering::Phi &Phi : Out.Phis[N->Id]) {
    Phi.Result = ++NextVersion[Phi.Loc];
    VersionStack[Phi.Loc].push_back(Phi.Result);
    Pushed.push_back(Phi.Loc);
  }

  // Uses see the versions on top of the stacks.
  Facts[N->Id].Use.forEach([&](size_t Loc) {
    Out.Uses[N->Id].emplace_back(static_cast<unsigned>(Loc),
                                 VersionStack[Loc].back());
  });

  // Definitions create fresh versions.
  nodeDefs(N, Facts[N->Id]).forEach([&](size_t Loc) {
    unsigned V = ++NextVersion[Loc];
    Out.Defs[N->Id].emplace_back(static_cast<unsigned>(Loc), V);
    VersionStack[Loc].push_back(static_cast<unsigned>(V));
    Pushed.push_back(static_cast<unsigned>(Loc));
  });

  // Fill φ arguments of successors.
  forEachSucc(*N, [&](Node *S, EdgeKind) {
    if (!D.isReachable(S))
      return;
    // Which predecessor of S are we?
    const std::vector<Node *> &Preds = D.Preds[S->Id];
    for (size_t PI = 0; PI < Preds.size(); ++PI) {
      if (Preds[PI] != N)
        continue;
      for (SsaNumbering::Phi &Phi : Out.Phis[S->Id])
        Phi.Args[PI] = VersionStack[Phi.Loc].back();
    }
  });

  // Recurse into dominator-tree children.
  for (Node *C : D.DomChildren[N->Id])
    rename(C, VersionStack);

  for (auto It = Pushed.rbegin(); It != Pushed.rend(); ++It)
    VersionStack[*It].pop_back();
}

} // namespace

SsaNumbering cmm::computeSsa(const IrProc &P, const IrProgram &Prog) {
  return SsaBuilder(P, Prog).run();
}

std::string SsaNumbering::print(const IrProc &P,
                                const Interner &Names) const {
  std::string Out;
  for (const Node *N : Dom.Rpo) {
    Out += "n" + std::to_string(N->Id) + ":";
    for (const Phi &Phi : Phis[N->Id]) {
      Out += " " + Universe.describe(Phi.Loc, Names) + "_" +
             std::to_string(Phi.Result) + "=phi(";
      for (size_t I = 0; I < Phi.Args.size(); ++I) {
        if (I)
          Out += ",";
        Out += std::to_string(Phi.Args[I]);
      }
      Out += ")";
    }
    if (!Uses[N->Id].empty()) {
      Out += " use[";
      for (size_t I = 0; I < Uses[N->Id].size(); ++I) {
        if (I)
          Out += " ";
        Out += Universe.describe(Uses[N->Id][I].first, Names) + "_" +
               std::to_string(Uses[N->Id][I].second);
      }
      Out += "]";
    }
    if (!Defs[N->Id].empty()) {
      Out += " def[";
      for (size_t I = 0; I < Defs[N->Id].size(); ++I) {
        if (I)
          Out += " ";
        Out += Universe.describe(Defs[N->Id][I].first, Names) + "_" +
               std::to_string(Defs[N->Id][I].second);
      }
      Out += "]";
    }
    Out += "\n";
  }
  (void)P;
  return Out;
}
