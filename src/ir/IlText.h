//===- ir/IlText.h - Textual IL round-trip format ---------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A complete, machine-oriented textual rendering of checked IrPrograms:
/// the `.cmmil` sibling of the binary `cmmex-artifact-v2` encoding
/// (ir/Serialize.h). Unlike ir/IrPrinter.h — a lossy, human-first listing of
/// the reachable graph — this format carries every field (parameters, var
/// types, expression tables with sharing, descriptors, continuation names,
/// source locations, the data image) and parses back to an equivalent
/// program: printIl(parseIl(printIl(P))) == printIl(P) is a fixed point,
/// pinned by SerializeTest and the cmmdiff round-trip oracle.
///
/// Floats travel as their IEEE-754 bit pattern and expression sharing is
/// explicit (`#index` references into a per-procedure table), so the text
/// form is exactly as faithful as the binary one.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_IR_ILTEXT_H
#define CMM_IR_ILTEXT_H

#include "ir/Ir.h"

#include <memory>
#include <string>

namespace cmm {

/// Renders \p P in the textual IL format.
std::string printIl(const IrProgram &P);

/// Parses a printIl rendering. Returns null with \p Err set (when non-null)
/// on any syntax or reference error.
std::unique_ptr<IrProgram> parseIl(std::string_view Text,
                                   std::string *Err = nullptr);

} // namespace cmm

#endif // CMM_IR_ILTEXT_H
