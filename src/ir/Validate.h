//===- ir/Validate.h - Abstract C-- verifier --------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural invariants of Abstract C-- graphs, checked after translation
/// and after every optimizer pass: no dangling successors, bundles have a
/// normal return, bundle and cut targets are CopyIn nodes of the same
/// procedure, Yield appears only as the intrinsic procedure's body.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_IR_VALIDATE_H
#define CMM_IR_VALIDATE_H

#include "ir/Ir.h"
#include "support/Diagnostics.h"

namespace cmm {

/// Verifies \p P; reports problems to \p Diags. Returns true when clean.
bool validateProc(const IrProc &P, const Interner &Names,
                  DiagnosticEngine &Diags);

/// Verifies every procedure of \p Prog.
bool validateProgram(const IrProgram &Prog, DiagnosticEngine &Diags);

} // namespace cmm

#endif // CMM_IR_VALIDATE_H
