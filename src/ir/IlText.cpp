//===- ir/IlText.cpp - Textual IL round-trip format -----------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
//
// Line-oriented, token-positional grammar (every count is explicit, so the
// parser is a plain token stream walk):
//
//   cmmex-il v2
//   global <sym> <type>
//   dataaddr <sym> <addr>
//   image <base> <hexbytes|->
//   reloc <addr> <sym>
//   dataend <n>
//   proc <sym>
//     param <type> <sym>
//     var <sym> <type>
//     expr <i> int <u64> <type> <loc>
//     expr <i> flt <hexbits> <type> <loc>
//     expr <i> str <"quoted"> <type> <loc>
//     expr <i> name <sym> <refkind> <type> <loc>
//     expr <i> load <type> #a <type> <loc>
//     expr <i> un <op> #a <type> <loc>
//     expr <i> bin <op> #a #b <type> <loc>
//     expr <i> prim <sym> <n> #a... <type> <loc>
//     expr <i> sizeof <sym> <bytes> <type> <loc>
//     straddr <i> <addr>
//     node <i> <kind> <payload...> <loc>
//     entry ^r
//   endproc
//
// Symbols print as their raw spelling (identifiers and %prim names contain
// no whitespace); the invalid symbol prints as "!". Node references are
// "^id" ("^-" = null), expression references "#index" ("#-" = null), types
// ":bits32", locations "@line.col". Maps print sorted by spelling and
// expression tables in first-visit order — the same canonical orders as the
// binary encoding — which is what makes print∘parse∘print a fixed point.
//
//===----------------------------------------------------------------------===//

#include "ir/IlText.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

using namespace cmm;

namespace {

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

const char *refKindName(RefKind K) {
  switch (K) {
  case RefKind::Unresolved:
    return "unresolved";
  case RefKind::Local:
    return "local";
  case RefKind::Global:
    return "global";
  case RefKind::Proc:
    return "proc";
  case RefKind::Continuation:
    return "cont";
  case RefKind::DataLabel:
    return "data";
  case RefKind::Import:
    return "import";
  }
  return "unresolved";
}

const char *unOpName(UnOp O) {
  switch (O) {
  case UnOp::Neg:
    return "neg";
  case UnOp::Com:
    return "com";
  case UnOp::Not:
    return "not";
  }
  return "neg";
}

const char *binOpName(BinOp O) {
  static const char *Names[] = {"add", "sub", "mul", "div", "mod", "and",
                                "or",  "xor", "shl", "shr", "eq",  "ne",
                                "lts", "les", "gts", "ges"};
  return Names[size_t(O)];
}

std::string quoted(const std::string &S) {
  std::string Out = "\"";
  for (unsigned char C : S) {
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += char(C);
    } else if (C >= 0x20 && C < 0x7f) {
      Out += char(C);
    } else {
      char Buf[8];
      std::snprintf(Buf, sizeof Buf, "\\x%02x", C);
      Out += Buf;
    }
  }
  Out += '"';
  return Out;
}

struct IlPrinter {
  const IrProgram &P;
  std::string Out;

  explicit IlPrinter(const IrProgram &P) : P(P) {}

  void f(const char *Fmt, ...) __attribute__((format(printf, 2, 3))) {
    char Buf[256];
    va_list Ap;
    va_start(Ap, Fmt);
    std::vsnprintf(Buf, sizeof Buf, Fmt, Ap);
    va_end(Ap);
    Out += Buf;
  }
  void sym(Symbol S) {
    Out += ' ';
    Out += S.isValid() ? P.Names->spelling(S) : "!";
  }
  void type(Type T) { f(" :%s%u", T.isBits() ? "bits" : "float", T.Width); }
  void loc(SourceLoc L) { f(" @%u.%u", L.Line, L.Col); }
  void nodeRef(const Node *N) {
    if (N)
      f(" ^%u", N->Id);
    else
      Out += " ^-";
  }

  std::unordered_map<const Expr *, uint32_t> ExprId;
  std::vector<const Expr *> ExprList;

  uint32_t visitExpr(const Expr *E) {
    if (!E)
      return ~0u;
    auto It = ExprId.find(E);
    if (It != ExprId.end())
      return It->second;
    switch (E->kind()) {
    case Expr::Kind::Load:
      visitExpr(static_cast<const LoadExpr *>(E)->Addr.get());
      break;
    case Expr::Kind::Unary:
      visitExpr(static_cast<const UnaryExpr *>(E)->Operand.get());
      break;
    case Expr::Kind::Binary:
      visitExpr(static_cast<const BinaryExpr *>(E)->Lhs.get());
      visitExpr(static_cast<const BinaryExpr *>(E)->Rhs.get());
      break;
    case Expr::Kind::Prim:
      for (const ExprPtr &A : static_cast<const PrimExpr *>(E)->Args)
        visitExpr(A.get());
      break;
    default:
      break;
    }
    uint32_t Id = uint32_t(ExprList.size());
    ExprId.emplace(E, Id);
    ExprList.push_back(E);
    return Id;
  }

  void visitNodeExprs(const Node &N) {
    switch (N.kind()) {
    case Node::Kind::CopyOut:
      for (const Expr *E : static_cast<const CopyOutNode &>(N).Exprs)
        visitExpr(E);
      break;
    case Node::Kind::Assign:
      visitExpr(static_cast<const AssignNode &>(N).Value);
      break;
    case Node::Kind::Store:
      visitExpr(static_cast<const StoreNode &>(N).Addr);
      visitExpr(static_cast<const StoreNode &>(N).Value);
      break;
    case Node::Kind::Branch:
      visitExpr(static_cast<const BranchNode &>(N).Cond);
      break;
    case Node::Kind::Call: {
      const auto &C = static_cast<const CallNode &>(N);
      visitExpr(C.Callee);
      for (const Expr *E : C.Descriptors)
        visitExpr(E);
      break;
    }
    case Node::Kind::Jump:
      visitExpr(static_cast<const JumpNode &>(N).Callee);
      break;
    case Node::Kind::CutTo:
      visitExpr(static_cast<const CutToNode &>(N).Cont);
      break;
    default:
      break;
    }
  }

  void expr(const Expr *E) {
    if (E)
      f(" #%u", ExprId.at(E));
    else
      Out += " #-";
  }

  void printExprEntry(uint32_t I, const Expr *E) {
    f("  expr %u", I);
    switch (E->kind()) {
    case Expr::Kind::IntLit:
      f(" int %" PRIu64, static_cast<const IntLitExpr *>(E)->Value);
      break;
    case Expr::Kind::FloatLit: {
      uint64_t Bits;
      double V = static_cast<const FloatLitExpr *>(E)->Value;
      std::memcpy(&Bits, &V, sizeof Bits);
      f(" flt 0x%016" PRIx64, Bits);
      break;
    }
    case Expr::Kind::StrLit:
      Out += " str ";
      Out += quoted(static_cast<const StrLitExpr *>(E)->Value);
      break;
    case Expr::Kind::Name: {
      const auto *NE = static_cast<const NameExpr *>(E);
      Out += " name";
      sym(NE->Name);
      f(" %s", refKindName(NE->Ref));
      break;
    }
    case Expr::Kind::Load: {
      const auto *L = static_cast<const LoadExpr *>(E);
      f(" load %s", L->AccessTy.str().c_str());
      expr(L->Addr.get());
      break;
    }
    case Expr::Kind::Unary: {
      const auto *U = static_cast<const UnaryExpr *>(E);
      f(" un %s", unOpName(U->Op));
      expr(U->Operand.get());
      break;
    }
    case Expr::Kind::Binary: {
      const auto *B = static_cast<const BinaryExpr *>(E);
      f(" bin %s", binOpName(B->Op));
      expr(B->Lhs.get());
      expr(B->Rhs.get());
      break;
    }
    case Expr::Kind::Prim: {
      const auto *Pr = static_cast<const PrimExpr *>(E);
      Out += " prim";
      sym(Pr->Name);
      f(" %zu", Pr->Args.size());
      for (const ExprPtr &A : Pr->Args)
        expr(A.get());
      break;
    }
    case Expr::Kind::Sizeof: {
      const auto *S = static_cast<const SizeofExpr *>(E);
      Out += " sizeof";
      sym(S->Name);
      f(" %u", S->SizeInBytes);
      break;
    }
    }
    type(E->Ty);
    loc(E->loc());
    Out += '\n';
  }

  void printNode(const Node &N) {
    f("  node %u", N.Id);
    switch (N.kind()) {
    case Node::Kind::Entry: {
      const auto &E = static_cast<const EntryNode &>(N);
      f(" entry %zu", E.Conts.size());
      for (const auto &[S, T] : E.Conts) {
        sym(S);
        nodeRef(T);
      }
      nodeRef(E.Next);
      break;
    }
    case Node::Kind::Exit: {
      const auto &E = static_cast<const ExitNode &>(N);
      f(" exit %u %u", E.ContIndex, E.AltCount);
      break;
    }
    case Node::Kind::CopyIn: {
      const auto &C = static_cast<const CopyInNode &>(N);
      f(" copyin %zu", C.Vars.size());
      for (Symbol V : C.Vars)
        sym(V);
      nodeRef(C.Next);
      break;
    }
    case Node::Kind::CopyOut: {
      const auto &C = static_cast<const CopyOutNode &>(N);
      f(" copyout %zu", C.Exprs.size());
      for (const Expr *E : C.Exprs)
        expr(E);
      nodeRef(C.Next);
      break;
    }
    case Node::Kind::CalleeSaves: {
      const auto &C = static_cast<const CalleeSavesNode &>(N);
      f(" calleesaves %zu", C.Saved.size());
      for (Symbol V : C.Saved)
        sym(V);
      nodeRef(C.Next);
      break;
    }
    case Node::Kind::Assign: {
      const auto &A = static_cast<const AssignNode &>(N);
      Out += " assign";
      sym(A.Var);
      f(" %u", A.IsGlobal ? 1 : 0);
      expr(A.Value);
      nodeRef(A.Next);
      break;
    }
    case Node::Kind::Store: {
      const auto &S = static_cast<const StoreNode &>(N);
      f(" store %s", S.AccessTy.str().c_str());
      expr(S.Addr);
      expr(S.Value);
      nodeRef(S.Next);
      break;
    }
    case Node::Kind::Branch: {
      const auto &B = static_cast<const BranchNode &>(N);
      Out += " branch";
      expr(B.Cond);
      nodeRef(B.TrueDst);
      nodeRef(B.FalseDst);
      break;
    }
    case Node::Kind::Call: {
      const auto &C = static_cast<const CallNode &>(N);
      Out += " call";
      expr(C.Callee);
      auto Refs = [&](const std::vector<Node *> &V) {
        f(" %zu", V.size());
        for (const Node *T : V)
          nodeRef(T);
      };
      Refs(C.Bundle.ReturnsTo);
      Refs(C.Bundle.UnwindsTo);
      Refs(C.Bundle.CutsTo);
      f(" %u %u", C.Bundle.Abort ? 1 : 0, C.NumArgs);
      f(" %zu", C.Descriptors.size());
      for (const Expr *E : C.Descriptors)
        expr(E);
      auto Names = [&](const std::vector<Symbol> &V) {
        f(" %zu", V.size());
        for (Symbol S : V)
          sym(S);
      };
      Names(C.ReturnsToNames);
      Names(C.UnwindsToNames);
      Names(C.CutsToNames);
      break;
    }
    case Node::Kind::Jump: {
      const auto &J = static_cast<const JumpNode &>(N);
      Out += " jump";
      expr(J.Callee);
      f(" %u", J.NumArgs);
      break;
    }
    case Node::Kind::CutTo: {
      const auto &C = static_cast<const CutToNode &>(N);
      Out += " cutto";
      expr(C.Cont);
      f(" %u %zu", C.NumArgs, C.AlsoCutsTo.size());
      for (const Node *T : C.AlsoCutsTo)
        nodeRef(T);
      f(" %zu", C.AlsoCutsToNames.size());
      for (Symbol S : C.AlsoCutsToNames)
        sym(S);
      break;
    }
    case Node::Kind::Yield:
      Out += " yield";
      break;
    }
    loc(N.Loc);
    Out += '\n';
  }

  template <typename MapT>
  std::vector<std::pair<Symbol, typename MapT::mapped_type>>
  sorted(const MapT &M) {
    std::vector<std::pair<Symbol, typename MapT::mapped_type>> V(M.begin(),
                                                                 M.end());
    std::sort(V.begin(), V.end(), [&](const auto &A, const auto &B) {
      return P.Names->spelling(A.first) < P.Names->spelling(B.first);
    });
    return V;
  }

  std::string print() {
    Out += "cmmex-il v2\n";
    for (const auto &[S, T] : sorted(P.Globals)) {
      Out += "global";
      sym(S);
      f(" %s\n", T.str().c_str());
    }
    for (const auto &[S, A] : sorted(P.DataAddrs)) {
      Out += "dataaddr";
      sym(S);
      f(" %" PRIu64 "\n", A);
    }
    f("image %" PRIu64 " ", P.Image.Base);
    if (P.Image.Bytes.empty()) {
      Out += '-';
    } else {
      for (uint8_t B : P.Image.Bytes)
        f("%02x", B);
    }
    Out += '\n';
    for (const DataImage::Reloc &R : P.Image.Relocs) {
      f("reloc %" PRIu64, R.Addr);
      sym(R.Target);
      Out += '\n';
    }
    f("dataend %" PRIu64 "\n", P.DataEnd);
    for (const auto &ProcPtr : P.Procs) {
      const IrProc &Proc = *ProcPtr;
      Out += "proc";
      sym(Proc.Name);
      Out += '\n';
      for (const Param &Pa : Proc.Params) {
        f("  param %s", Pa.Ty.str().c_str());
        sym(Pa.Name);
        Out += '\n';
      }
      for (const auto &[S, T] : sorted(Proc.VarTypes)) {
        Out += "  var";
        sym(S);
        f(" %s\n", T.str().c_str());
      }
      ExprId.clear();
      ExprList.clear();
      for (const auto &N : Proc.Nodes)
        visitNodeExprs(*N);
      for (uint32_t I = 0; I < ExprList.size(); ++I)
        printExprEntry(I, ExprList[I]);
      for (uint32_t I = 0; I < ExprList.size(); ++I)
        if (const auto *S = dyn_cast<StrLitExpr>(ExprList[I])) {
          auto It = P.StrAddrs.find(S);
          if (It != P.StrAddrs.end())
            f("  straddr %u %" PRIu64 "\n", I, It->second);
        }
      for (const auto &N : Proc.Nodes)
        printNode(*N);
      Out += "  entry";
      nodeRef(Proc.EntryPoint);
      Out += '\n';
      Out += "endproc\n";
    }
    return std::move(Out);
  }
};

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

/// Whitespace-separated tokens with double-quoted string literals; sticky
/// failure like ByteReader.
struct Tokens {
  std::vector<std::string> Toks;
  size_t Pos = 0;
  bool Ok = true;
  std::string Error;

  void fail(const std::string &Why) {
    if (Ok) {
      Ok = false;
      Error = Why;
    }
  }

  static bool tokenize(std::string_view Text, Tokens &T) {
    size_t I = 0;
    while (I < Text.size()) {
      char C = Text[I];
      if (C == ' ' || C == '\t' || C == '\n' || C == '\r') {
        ++I;
        continue;
      }
      if (C == '"') {
        std::string S = "\"";
        ++I;
        while (I < Text.size() && Text[I] != '"') {
          if (Text[I] == '\\' && I + 1 < Text.size()) {
            S += Text[I];
            S += Text[I + 1];
            I += 2;
          } else {
            S += Text[I++];
          }
        }
        if (I >= Text.size())
          return false; // unterminated string
        S += '"';
        ++I;
        T.Toks.push_back(std::move(S));
        continue;
      }
      size_t Start = I;
      while (I < Text.size() && Text[I] != ' ' && Text[I] != '\t' &&
             Text[I] != '\n' && Text[I] != '\r')
        ++I;
      T.Toks.emplace_back(Text.substr(Start, I - Start));
    }
    return true;
  }

  bool atEnd() const { return Pos >= Toks.size(); }
  const std::string &peek() {
    static const std::string Empty;
    if (atEnd())
      return Empty;
    return Toks[Pos];
  }
  std::string next() {
    if (atEnd()) {
      fail("unexpected end of input");
      return std::string();
    }
    return Toks[Pos++];
  }
  /// Consumes \p Word or fails.
  void expect(const char *Word) {
    std::string T = next();
    if (Ok && T != Word)
      fail(std::string("expected '") + Word + "', got '" + T + "'");
  }
  /// True (and consumes) when the next token is \p Word.
  bool accept(const char *Word) {
    if (!Ok || atEnd() || Toks[Pos] != Word)
      return false;
    ++Pos;
    return true;
  }
  uint64_t u64() {
    std::string T = next();
    if (!Ok)
      return 0;
    char *End = nullptr;
    uint64_t V = std::strtoull(T.c_str(), &End, 0);
    if (End != T.c_str() + T.size() || T.empty())
      fail("expected a number, got '" + T + "'");
    return V;
  }
};

struct IlParser {
  Tokens &T;
  IrProgram &P;

  // Per-proc state.
  std::vector<Expr *> Exprs;
  std::vector<ExprPtr> Owned;
  std::vector<std::pair<uint32_t, uint64_t>> PendingStrAddrs;

  IlParser(Tokens &T, IrProgram &P) : T(T), P(P) {}

  Symbol sym() {
    std::string S = T.next();
    if (!T.Ok)
      return Symbol();
    if (S == "!")
      return Symbol();
    return P.Names->intern(S);
  }
  Type type() {
    std::string S = T.next();
    if (!T.Ok)
      return Type();
    // ":bits32" in expr positions, "bits32" in decl positions.
    std::string_view V = S;
    if (!V.empty() && V[0] == ':')
      V.remove_prefix(1);
    Type::Kind K;
    if (V.substr(0, 4) == "bits") {
      K = Type::Kind::Bits;
      V.remove_prefix(4);
    } else if (V.substr(0, 5) == "float") {
      K = Type::Kind::Float;
      V.remove_prefix(5);
    } else {
      T.fail("expected a type, got '" + S + "'");
      return Type();
    }
    return Type(K, uint8_t(std::strtoul(std::string(V).c_str(), nullptr, 10)));
  }
  SourceLoc loc() {
    std::string S = T.next();
    if (!T.Ok)
      return SourceLoc();
    if (S.empty() || S[0] != '@') {
      T.fail("expected a @line.col location, got '" + S + "'");
      return SourceLoc();
    }
    char *End = nullptr;
    uint32_t Line = uint32_t(std::strtoul(S.c_str() + 1, &End, 10));
    uint32_t Col = *End == '.' ? uint32_t(std::strtoul(End + 1, nullptr, 10))
                               : (T.fail("bad location '" + S + "'"), 0);
    return SourceLoc(Line, Col);
  }
  Node *nodeRef(IrProc &Proc) {
    std::string S = T.next();
    if (!T.Ok)
      return nullptr;
    if (S == "^-")
      return nullptr;
    if (S.size() < 2 || S[0] != '^') {
      T.fail("expected a ^node reference, got '" + S + "'");
      return nullptr;
    }
    uint64_t I = std::strtoull(S.c_str() + 1, nullptr, 10);
    if (I >= Proc.Nodes.size()) {
      T.fail("node reference out of range: " + S);
      return nullptr;
    }
    return Proc.Nodes[size_t(I)].get();
  }
  uint32_t exprIndex() {
    std::string S = T.next();
    if (!T.Ok)
      return ~0u;
    if (S == "#-")
      return ~0u;
    if (S.size() < 2 || S[0] != '#') {
      T.fail("expected a #expr reference, got '" + S + "'");
      return ~0u;
    }
    uint64_t I = std::strtoull(S.c_str() + 1, nullptr, 10);
    if (I >= Exprs.size() || !Exprs[size_t(I)]) {
      T.fail("expr reference out of range: " + S);
      return ~0u;
    }
    return uint32_t(I);
  }
  Expr *expr() {
    uint32_t I = exprIndex();
    return I == ~0u ? nullptr : Exprs[I];
  }
  ExprPtr adopt() {
    uint32_t I = exprIndex();
    if (I == ~0u)
      return nullptr;
    if (!Owned[I]) {
      T.fail("expr adopted twice: #" + std::to_string(I));
      return nullptr;
    }
    return std::move(Owned[I]);
  }

  std::string unquote(const std::string &S) {
    if (S.size() < 2 || S.front() != '"' || S.back() != '"') {
      T.fail("expected a quoted string, got '" + S + "'");
      return std::string();
    }
    std::string Out;
    for (size_t I = 1; I + 1 < S.size(); ++I) {
      if (S[I] != '\\') {
        Out += S[I];
        continue;
      }
      ++I;
      if (I + 1 >= S.size()) {
        T.fail("bad escape in string literal");
        return std::string();
      }
      if (S[I] == 'x' && I + 2 < S.size()) {
        char Hex[3] = {S[I + 1], S[I + 2], 0};
        Out += char(std::strtoul(Hex, nullptr, 16));
        I += 2;
      } else {
        Out += S[I];
      }
    }
    return Out;
  }

  void parseExprLine() {
    uint64_t Index = T.u64();
    if (Index != Exprs.size()) {
      T.fail("expression table indices must be dense and in order");
      return;
    }
    std::string Kind = T.next();
    ExprPtr E;
    if (Kind == "int") {
      uint64_t V = T.u64();
      Type Ty = type();
      SourceLoc L = loc();
      E = std::make_unique<IntLitExpr>(L, V);
      E->Ty = Ty;
    } else if (Kind == "flt") {
      uint64_t Bits = T.u64();
      double V;
      std::memcpy(&V, &Bits, sizeof V);
      Type Ty = type();
      SourceLoc L = loc();
      E = std::make_unique<FloatLitExpr>(L, V);
      E->Ty = Ty;
    } else if (Kind == "str") {
      std::string V = unquote(T.next());
      Type Ty = type();
      SourceLoc L = loc();
      E = std::make_unique<StrLitExpr>(L, std::move(V));
      E->Ty = Ty;
    } else if (Kind == "name") {
      Symbol S = sym();
      std::string RefName = T.next();
      RefKind Ref = RefKind::Unresolved;
      if (RefName == "local")
        Ref = RefKind::Local;
      else if (RefName == "global")
        Ref = RefKind::Global;
      else if (RefName == "proc")
        Ref = RefKind::Proc;
      else if (RefName == "cont")
        Ref = RefKind::Continuation;
      else if (RefName == "data")
        Ref = RefKind::DataLabel;
      else if (RefName == "import")
        Ref = RefKind::Import;
      else if (RefName != "unresolved")
        T.fail("unknown refkind '" + RefName + "'");
      Type Ty = type();
      SourceLoc L = loc();
      auto NE = std::make_unique<NameExpr>(L, S);
      NE->Ref = Ref;
      NE->Ty = Ty;
      E = std::move(NE);
    } else if (Kind == "load") {
      Type AccessTy = type();
      ExprPtr Addr = adopt();
      Type Ty = type();
      SourceLoc L = loc();
      E = std::make_unique<LoadExpr>(L, AccessTy, std::move(Addr));
      E->Ty = Ty;
    } else if (Kind == "un") {
      std::string OpName = T.next();
      UnOp Op = UnOp::Neg;
      if (OpName == "com")
        Op = UnOp::Com;
      else if (OpName == "not")
        Op = UnOp::Not;
      else if (OpName != "neg")
        T.fail("unknown unary op '" + OpName + "'");
      ExprPtr Operand = adopt();
      Type Ty = type();
      SourceLoc L = loc();
      E = std::make_unique<UnaryExpr>(L, Op, std::move(Operand));
      E->Ty = Ty;
    } else if (Kind == "bin") {
      std::string OpName = T.next();
      static const char *Names[] = {"add", "sub", "mul", "div", "mod", "and",
                                    "or",  "xor", "shl", "shr", "eq",  "ne",
                                    "lts", "les", "gts", "ges"};
      size_t OpIdx = 0;
      for (; OpIdx < std::size(Names); ++OpIdx)
        if (OpName == Names[OpIdx])
          break;
      if (OpIdx == std::size(Names))
        T.fail("unknown binary op '" + OpName + "'");
      ExprPtr Lhs = adopt();
      ExprPtr Rhs = adopt();
      Type Ty = type();
      SourceLoc L = loc();
      E = std::make_unique<BinaryExpr>(L, BinOp(OpIdx), std::move(Lhs),
                                       std::move(Rhs));
      E->Ty = Ty;
    } else if (Kind == "prim") {
      Symbol S = sym();
      uint64_t N = T.u64();
      std::vector<ExprPtr> Args;
      for (uint64_t I = 0; I < N && T.Ok; ++I)
        Args.push_back(adopt());
      Type Ty = type();
      SourceLoc L = loc();
      E = std::make_unique<PrimExpr>(L, S, std::move(Args));
      E->Ty = Ty;
    } else if (Kind == "sizeof") {
      Symbol S = sym();
      uint64_t Bytes = T.u64();
      Type Ty = type();
      SourceLoc L = loc();
      auto SE = std::make_unique<SizeofExpr>(L, S);
      SE->SizeInBytes = unsigned(Bytes);
      SE->Ty = Ty;
      E = std::move(SE);
    } else {
      T.fail("unknown expr kind '" + Kind + "'");
      return;
    }
    if (!T.Ok)
      return;
    Exprs.push_back(E.get());
    Owned.push_back(std::move(E));
  }

  /// Consumes exactly one node payload (plus its location) without
  /// resolving anything: the shell pass, which must walk every record
  /// before forward ^references can resolve. Driven by the same explicit
  /// counts as parseNodePayload, so a symbol spelled like a keyword can
  /// never derail it.
  void skipNodePayload(const std::string &Kind) {
    auto Skip = [&](size_t N) {
      for (size_t I = 0; I < N && T.Ok; ++I)
        T.next();
    };
    auto SkipCounted = [&] { Skip(size_t(T.u64())); };
    if (Kind == "entry") {
      size_t C = size_t(T.u64());
      Skip(2 * C + 1);
    } else if (Kind == "exit") {
      Skip(2);
    } else if (Kind == "copyin" || Kind == "copyout" ||
               Kind == "calleesaves") {
      SkipCounted();
      Skip(1);
    } else if (Kind == "assign") {
      Skip(4);
    } else if (Kind == "store") {
      Skip(4);
    } else if (Kind == "branch") {
      Skip(3);
    } else if (Kind == "call") {
      Skip(1); // callee
      SkipCounted();
      SkipCounted();
      SkipCounted(); // bundle edges
      Skip(2);       // abort, numargs
      SkipCounted(); // descriptors
      SkipCounted();
      SkipCounted();
      SkipCounted(); // name vectors
    } else if (Kind == "jump") {
      Skip(2);
    } else if (Kind == "cutto") {
      Skip(2);
      SkipCounted();
      SkipCounted();
    } else if (Kind == "yield") {
      // no payload
    } else {
      T.fail("unknown node kind '" + Kind + "'");
    }
    Skip(1); // location
  }

  void parseNodePayload(IrProc &Proc, Node &N) {
    switch (N.kind()) {
    case Node::Kind::Entry: {
      auto &E = static_cast<EntryNode &>(N);
      uint64_t C = T.u64();
      for (uint64_t I = 0; I < C && T.Ok; ++I) {
        Symbol S = sym();
        Node *Tgt = nodeRef(Proc);
        E.Conts.emplace_back(S, Tgt);
      }
      E.Next = nodeRef(Proc);
      break;
    }
    case Node::Kind::Exit: {
      auto &E = static_cast<ExitNode &>(N);
      E.ContIndex = unsigned(T.u64());
      E.AltCount = unsigned(T.u64());
      break;
    }
    case Node::Kind::CopyIn: {
      auto &C = static_cast<CopyInNode &>(N);
      uint64_t K = T.u64();
      for (uint64_t I = 0; I < K && T.Ok; ++I)
        C.Vars.push_back(sym());
      C.Next = nodeRef(Proc);
      break;
    }
    case Node::Kind::CopyOut: {
      auto &C = static_cast<CopyOutNode &>(N);
      uint64_t K = T.u64();
      for (uint64_t I = 0; I < K && T.Ok; ++I)
        C.Exprs.push_back(expr());
      C.Next = nodeRef(Proc);
      break;
    }
    case Node::Kind::CalleeSaves: {
      auto &C = static_cast<CalleeSavesNode &>(N);
      uint64_t K = T.u64();
      for (uint64_t I = 0; I < K && T.Ok; ++I)
        C.Saved.push_back(sym());
      C.Next = nodeRef(Proc);
      break;
    }
    case Node::Kind::Assign: {
      auto &A = static_cast<AssignNode &>(N);
      A.Var = sym();
      A.IsGlobal = T.u64() != 0;
      A.Value = expr();
      A.Next = nodeRef(Proc);
      break;
    }
    case Node::Kind::Store: {
      auto &S = static_cast<StoreNode &>(N);
      S.AccessTy = type();
      S.Addr = expr();
      S.Value = expr();
      S.Next = nodeRef(Proc);
      break;
    }
    case Node::Kind::Branch: {
      auto &B = static_cast<BranchNode &>(N);
      B.Cond = expr();
      B.TrueDst = nodeRef(Proc);
      B.FalseDst = nodeRef(Proc);
      break;
    }
    case Node::Kind::Call: {
      auto &C = static_cast<CallNode &>(N);
      C.Callee = expr();
      auto Refs = [&](std::vector<Node *> &V) {
        uint64_t K = T.u64();
        for (uint64_t I = 0; I < K && T.Ok; ++I)
          V.push_back(nodeRef(Proc));
      };
      Refs(C.Bundle.ReturnsTo);
      Refs(C.Bundle.UnwindsTo);
      Refs(C.Bundle.CutsTo);
      C.Bundle.Abort = T.u64() != 0;
      C.NumArgs = unsigned(T.u64());
      uint64_t D = T.u64();
      for (uint64_t I = 0; I < D && T.Ok; ++I)
        C.Descriptors.push_back(expr());
      auto Names = [&](std::vector<Symbol> &V) {
        uint64_t K = T.u64();
        for (uint64_t I = 0; I < K && T.Ok; ++I)
          V.push_back(sym());
      };
      Names(C.ReturnsToNames);
      Names(C.UnwindsToNames);
      Names(C.CutsToNames);
      if (T.Ok && C.Bundle.ReturnsTo.empty())
        T.fail("call bundle with no normal-return continuation");
      break;
    }
    case Node::Kind::Jump: {
      auto &J = static_cast<JumpNode &>(N);
      J.Callee = expr();
      J.NumArgs = unsigned(T.u64());
      break;
    }
    case Node::Kind::CutTo: {
      auto &C = static_cast<CutToNode &>(N);
      C.Cont = expr();
      C.NumArgs = unsigned(T.u64());
      uint64_t K = T.u64();
      for (uint64_t I = 0; I < K && T.Ok; ++I)
        C.AlsoCutsTo.push_back(nodeRef(Proc));
      uint64_t M = T.u64();
      for (uint64_t I = 0; I < M && T.Ok; ++I)
        C.AlsoCutsToNames.push_back(sym());
      break;
    }
    case Node::Kind::Yield:
      break;
    }
    N.Loc = loc();
  }

  Node *makeNodeOfKind(IrProc &Proc, const std::string &Kind) {
    if (Kind == "entry")
      return Proc.make<EntryNode>();
    if (Kind == "exit")
      return Proc.make<ExitNode>();
    if (Kind == "copyin")
      return Proc.make<CopyInNode>();
    if (Kind == "copyout")
      return Proc.make<CopyOutNode>();
    if (Kind == "calleesaves")
      return Proc.make<CalleeSavesNode>();
    if (Kind == "assign")
      return Proc.make<AssignNode>();
    if (Kind == "store")
      return Proc.make<StoreNode>();
    if (Kind == "branch")
      return Proc.make<BranchNode>();
    if (Kind == "call")
      return Proc.make<CallNode>();
    if (Kind == "jump")
      return Proc.make<JumpNode>();
    if (Kind == "cutto")
      return Proc.make<CutToNode>();
    if (Kind == "yield")
      return Proc.make<YieldNode>();
    T.fail("unknown node kind '" + Kind + "'");
    return nullptr;
  }

  bool parseProc() {
    auto Proc = std::make_unique<IrProc>();
    Proc->Name = sym();
    while (T.accept("param")) {
      Type Ty = type();
      Symbol S = sym();
      Proc->Params.push_back(Param{Ty, S});
    }
    while (T.accept("var")) {
      Symbol S = sym();
      Type Ty = type();
      if (T.Ok)
        Proc->VarTypes.emplace(S, Ty);
    }
    Exprs.clear();
    Owned.clear();
    PendingStrAddrs.clear();
    while (T.accept("expr"))
      parseExprLine();
    while (T.accept("straddr")) {
      uint32_t I = uint32_t(T.u64());
      uint64_t Addr = T.u64();
      if (!T.Ok)
        break;
      if (I >= Exprs.size() || !isa<StrLitExpr>(Exprs[I])) {
        T.fail("straddr does not name a string literal");
        break;
      }
      PendingStrAddrs.emplace_back(I, Addr);
    }
    // Node shells first: walk every record consuming its counted payload,
    // then rewind and fill the payloads so forward ^references resolve.
    size_t NodesStart = T.Pos;
    std::vector<std::string> Kinds;
    while (T.accept("node")) {
      T.u64(); // id (dense, by construction order)
      std::string Kind = T.next();
      skipNodePayload(Kind);
      Kinds.push_back(std::move(Kind));
    }
    if (!T.Ok)
      return false;
    for (const std::string &K : Kinds)
      if (!makeNodeOfKind(*Proc, K))
        return false;
    size_t AfterNodes = T.Pos;
    T.Pos = NodesStart;
    for (size_t I = 0; I < Kinds.size() && T.Ok; ++I) {
      T.expect("node");
      uint64_t Id = T.u64();
      if (T.Ok && Id != I) {
        T.fail("node ids must be dense and in order");
        return false;
      }
      T.next(); // kind, already consumed structurally
      parseNodePayload(*Proc, *Proc->Nodes[I]);
    }
    if (T.Ok && T.Pos != AfterNodes) {
      T.fail("node payload token count mismatch");
      return false;
    }
    T.expect("entry");
    Proc->EntryPoint = nodeRef(*Proc);
    T.expect("endproc");
    if (!T.Ok)
      return false;

    for (const auto &[I, Addr] : PendingStrAddrs)
      P.StrAddrs.emplace(static_cast<const StrLitExpr *>(Exprs[I]), Addr);
    for (ExprPtr &E : Owned)
      if (E)
        Proc->ExprPool.push_back(std::move(E));
    P.ProcByName.emplace(Proc->Name, Proc.get());
    P.Procs.push_back(std::move(Proc));
    return true;
  }

  bool parse() {
    T.expect("cmmex-il");
    T.expect("v2");
    while (T.accept("global")) {
      Symbol S = sym();
      Type Ty = type();
      if (T.Ok)
        P.Globals.emplace(S, Ty);
    }
    while (T.accept("dataaddr")) {
      Symbol S = sym();
      uint64_t A = T.u64();
      if (T.Ok)
        P.DataAddrs.emplace(S, A);
    }
    T.expect("image");
    P.Image.Base = T.u64();
    {
      std::string Hex = T.next();
      if (T.Ok && Hex != "-") {
        if (Hex.size() % 2 != 0) {
          T.fail("image bytes must be whole hex pairs");
          return false;
        }
        P.Image.Bytes.reserve(Hex.size() / 2);
        for (size_t I = 0; I < Hex.size(); I += 2) {
          char Buf[3] = {Hex[I], Hex[I + 1], 0};
          char *End = nullptr;
          P.Image.Bytes.push_back(uint8_t(std::strtoul(Buf, &End, 16)));
          if (End != Buf + 2) {
            T.fail("bad hex in image bytes");
            return false;
          }
        }
      }
    }
    while (T.accept("reloc")) {
      uint64_t A = T.u64();
      Symbol S = sym();
      if (T.Ok)
        P.Image.Relocs.push_back(DataImage::Reloc{A, S});
    }
    T.expect("dataend");
    P.DataEnd = T.u64();
    while (T.accept("proc"))
      if (!parseProc())
        return false;
    if (T.Ok && !T.atEnd())
      T.fail("trailing tokens after the last proc: '" + T.peek() + "'");
    return T.Ok;
  }
};

} // namespace

std::string cmm::printIl(const IrProgram &P) { return IlPrinter(P).print(); }

std::unique_ptr<IrProgram> cmm::parseIl(std::string_view Text,
                                        std::string *Err) {
  Tokens T;
  if (!Tokens::tokenize(Text, T)) {
    if (Err)
      *Err = "unterminated string literal";
    return nullptr;
  }
  auto P = std::make_unique<IrProgram>();
  P->Names = std::make_shared<Interner>();
  IlParser Parser(T, *P);
  if (!Parser.parse()) {
    if (Err)
      *Err = T.Error.empty() ? "parse error" : T.Error;
    return nullptr;
  }
  return P;
}
