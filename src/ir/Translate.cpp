//===- ir/Translate.cpp ---------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "ir/Translate.h"

#include "support/Assert.h"
#include "support/Casting.h"
#include "syntax/Parser.h"

#include <unordered_set>

using namespace cmm;

namespace {

//===----------------------------------------------------------------------===//
// Per-procedure translation (Section 5.3)
//===----------------------------------------------------------------------===//

/// Where control currently flows: unfilled successor slots plus labels whose
/// head is the next node to be emitted.
struct OpenEnds {
  std::vector<Node **> Slots;
  std::vector<Symbol> Labels;

  bool empty() const { return Slots.empty() && Labels.empty(); }
  void clear() {
    Slots.clear();
    Labels.clear();
  }
  void merge(OpenEnds Other) {
    for (Node **S : Other.Slots)
      Slots.push_back(S);
    for (Symbol L : Other.Labels)
      Labels.push_back(L);
  }
};

class ProcTranslator {
public:
  ProcTranslator(IrProgram &Prog, IrProc &P, const ProcDecl &Decl,
                 const ProcInfo &Info, DiagnosticEngine &Diags)
      : Prog(Prog), P(P), Decl(Decl), Info(Info), Diags(Diags) {}

  void run();

private:
  void emit(Node *N, Node **NextSlot);
  void translateList(const std::vector<StmtPtr> &Stmts);
  void translateStmt(const Stmt *S);
  void translateGoto(const GotoStmt *G);
  void translateCall(const CallStmt *C);
  CopyOutNode *emitCopyOut(const std::vector<ExprPtr> &Exprs, SourceLoc Loc);
  void collectStrings(const Expr *E);
  const Expr *constExpr(uint64_t Value, SourceLoc Loc);
  void threadGotoBranches();

  IrProgram &Prog;
  IrProc &P;
  const ProcDecl &Decl;
  const ProcInfo &Info;
  DiagnosticEngine &Diags;

  std::unordered_map<Symbol, CopyInNode *> ContNodes;
  std::unordered_map<Symbol, Node *> LabelHeads;
  std::unordered_map<Symbol, std::vector<Node **>> PendingLabelRefs;
  OpenEnds Open;
  std::vector<BranchNode *> GotoBranches;
};

void ProcTranslator::run() {
  auto *Entry = P.make<EntryNode>();
  Entry->Loc = Decl.Loc;
  P.EntryPoint = Entry;

  // Pre-create each continuation's CopyIn so call-site bundles and cut
  // annotations can reference it before its body is reached.
  for (const StmtPtr &S : Decl.Body) {
    const auto *C = dyn_cast<ContinuationStmt>(S.get());
    if (!C)
      continue;
    auto *In = P.make<CopyInNode>();
    In->Loc = C->loc();
    In->Vars = C->Params;
    ContNodes.emplace(C->Name, In);
    Entry->Conts.emplace_back(C->Name, In);
  }

  // Entry -> CopyIn(params): "the values of parameters are bound later by a
  // CopyIn node" (Section 5.2).
  auto *ParamsIn = P.make<CopyInNode>();
  ParamsIn->Loc = Decl.Loc;
  for (const Param &Prm : Decl.Params)
    ParamsIn->Vars.push_back(Prm.Name);
  Entry->Next = ParamsIn;
  Open.Slots.push_back(&ParamsIn->Next);

  translateList(Decl.Body);

  // Falling off the end of the body is an implicit "return <0/0> ();".
  if (!Open.empty()) {
    CopyOutNode *Out = emitCopyOut({}, Decl.Loc);
    auto *Exit = P.make<ExitNode>();
    Exit->Loc = Decl.Loc;
    Out->Next = Exit;
  }

  for (const auto &[Label, Refs] : PendingLabelRefs)
    if (!Refs.empty())
      Diags.error(Decl.Loc, "internal: unresolved label '" +
                                Prog.Names->spelling(Label) +
                                "' after translation");
  threadGotoBranches();
}

void ProcTranslator::emit(Node *N, Node **NextSlot) {
  for (Node **S : Open.Slots)
    *S = N;
  for (Symbol L : Open.Labels) {
    LabelHeads[L] = N;
    auto It = PendingLabelRefs.find(L);
    if (It != PendingLabelRefs.end()) {
      for (Node **Ref : It->second)
        *Ref = N;
      It->second.clear();
    }
  }
  Open.clear();
  if (NextSlot)
    Open.Slots.push_back(NextSlot);
}

void ProcTranslator::translateList(const std::vector<StmtPtr> &Stmts) {
  for (const StmtPtr &S : Stmts)
    translateStmt(S.get());
}

CopyOutNode *ProcTranslator::emitCopyOut(const std::vector<ExprPtr> &Exprs,
                                         SourceLoc Loc) {
  auto *Out = P.make<CopyOutNode>();
  Out->Loc = Loc;
  for (const ExprPtr &E : Exprs) {
    collectStrings(E.get());
    Out->Exprs.push_back(E.get());
  }
  emit(Out, &Out->Next);
  return Out;
}

void ProcTranslator::collectStrings(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::StrLit: {
    const auto *S = cast<StrLitExpr>(E);
    if (Prog.StrAddrs.count(S))
      return;
    // Lay the bytes (NUL-terminated) into the data image.
    uint64_t Addr = Prog.DataEnd;
    Prog.StrAddrs.emplace(S, Addr);
    for (char C : S->Value)
      Prog.Image.Bytes.push_back(static_cast<uint8_t>(C));
    Prog.Image.Bytes.push_back(0);
    Prog.DataEnd = Prog.Image.Base + Prog.Image.Bytes.size();
    // Keep subsequent blocks pointer-aligned.
    while (Prog.DataEnd % 8 != 0) {
      Prog.Image.Bytes.push_back(0);
      ++Prog.DataEnd;
    }
    return;
  }
  case Expr::Kind::Load:
    collectStrings(cast<LoadExpr>(E)->Addr.get());
    return;
  case Expr::Kind::Unary:
    collectStrings(cast<UnaryExpr>(E)->Operand.get());
    return;
  case Expr::Kind::Binary:
    collectStrings(cast<BinaryExpr>(E)->Lhs.get());
    collectStrings(cast<BinaryExpr>(E)->Rhs.get());
    return;
  case Expr::Kind::Prim:
    for (const ExprPtr &A : cast<PrimExpr>(E)->Args)
      collectStrings(A.get());
    return;
  default:
    return;
  }
}

const Expr *ProcTranslator::constExpr(uint64_t Value, SourceLoc Loc) {
  auto E = std::make_unique<IntLitExpr>(Loc, Value);
  E->Ty = Type::bits(32);
  const Expr *Raw = E.get();
  P.ExprPool.push_back(std::move(E));
  return Raw;
}

void ProcTranslator::translateGoto(const GotoStmt *G) {
  // A goto becomes a constant branch; threadGotoBranches removes it again.
  auto *B = P.make<BranchNode>();
  B->Loc = G->loc();
  B->Cond = constExpr(1, G->loc());
  emit(B, nullptr);
  GotoBranches.push_back(B);
  auto It = LabelHeads.find(G->Target);
  if (It != LabelHeads.end()) {
    B->TrueDst = B->FalseDst = It->second;
  } else {
    PendingLabelRefs[G->Target].push_back(&B->TrueDst);
    PendingLabelRefs[G->Target].push_back(&B->FalseDst);
  }
}

void ProcTranslator::translateCall(const CallStmt *C) {
  collectStrings(C->Callee.get());
  for (const ExprPtr &D : C->Annots.Descriptors)
    collectStrings(D.get());
  emitCopyOut(C->Args, C->loc());

  auto *Call = P.make<CallNode>();
  Call->Loc = C->loc();
  Call->Callee = C->Callee.get();
  Call->NumArgs = static_cast<unsigned>(C->Args.size());
  for (const ExprPtr &D : C->Annots.Descriptors)
    Call->Descriptors.push_back(D.get());
  Call->ReturnsToNames = C->Annots.ReturnsTo;
  Call->UnwindsToNames = C->Annots.UnwindsTo;
  Call->CutsToNames = C->Annots.CutsTo;
  Call->Bundle.Abort = C->Annots.Aborts;
  for (Symbol K : C->Annots.ReturnsTo)
    Call->Bundle.ReturnsTo.push_back(ContNodes.at(K));
  for (Symbol K : C->Annots.UnwindsTo)
    Call->Bundle.UnwindsTo.push_back(ContNodes.at(K));
  for (Symbol K : C->Annots.CutsTo)
    Call->Bundle.CutsTo.push_back(ContNodes.at(K));

  // Normal return continuation, always last in the bundle.
  if (C->Results.empty()) {
    Call->Bundle.ReturnsTo.push_back(nullptr);
    emit(Call, &Call->Bundle.ReturnsTo.back());
    return;
  }
  auto *ResultsIn = P.make<CopyInNode>();
  ResultsIn->Loc = C->loc();
  ResultsIn->Vars = C->Results;
  Call->Bundle.ReturnsTo.push_back(ResultsIn);
  emit(Call, nullptr);
  Open.Slots.push_back(&ResultsIn->Next);
}

void ProcTranslator::translateStmt(const Stmt *S) {
  switch (S->kind()) {
  case Stmt::Kind::VarDecl:
    return;

  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    collectStrings(A->Value.get());
    auto *N = P.make<AssignNode>();
    N->Loc = A->loc();
    N->Var = A->Target;
    N->IsGlobal = !Info.Vars.count(A->Target);
    N->Value = A->Value.get();
    emit(N, &N->Next);
    return;
  }

  case Stmt::Kind::MemAssign: {
    const auto *M = cast<MemAssignStmt>(S);
    collectStrings(M->Addr.get());
    collectStrings(M->Value.get());
    auto *N = P.make<StoreNode>();
    N->Loc = M->loc();
    N->AccessTy = M->AccessTy;
    N->Addr = M->Addr.get();
    N->Value = M->Value.get();
    emit(N, &N->Next);
    return;
  }

  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    collectStrings(If->Cond.get());
    auto *B = P.make<BranchNode>();
    B->Loc = If->loc();
    B->Cond = If->Cond.get();
    emit(B, nullptr);
    Open.Slots.push_back(&B->TrueDst);
    translateList(If->Then);
    OpenEnds ThenOpen = std::move(Open);
    Open = OpenEnds();
    Open.Slots.push_back(&B->FalseDst);
    translateList(If->Else);
    Open.merge(std::move(ThenOpen));
    return;
  }

  case Stmt::Kind::Goto:
    translateGoto(cast<GotoStmt>(S));
    return;

  case Stmt::Kind::Label:
    Open.Labels.push_back(cast<LabelStmt>(S)->Name);
    return;

  case Stmt::Kind::Call:
    translateCall(cast<CallStmt>(S));
    return;

  case Stmt::Kind::Jump: {
    const auto *J = cast<JumpStmt>(S);
    collectStrings(J->Callee.get());
    emitCopyOut(J->Args, J->loc());
    auto *N = P.make<JumpNode>();
    N->Loc = J->loc();
    N->Callee = J->Callee.get();
    N->NumArgs = static_cast<unsigned>(J->Args.size());
    emit(N, nullptr);
    return;
  }

  case Stmt::Kind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    emitCopyOut(R->Values, R->loc());
    auto *N = P.make<ExitNode>();
    N->Loc = R->loc();
    N->ContIndex = R->ContIndex;
    N->AltCount = R->AltCount;
    emit(N, nullptr);
    return;
  }

  case Stmt::Kind::CutTo: {
    const auto *C = cast<CutToStmt>(S);
    collectStrings(C->Cont.get());
    emitCopyOut(C->Args, C->loc());
    auto *N = P.make<CutToNode>();
    N->Loc = C->loc();
    N->Cont = C->Cont.get();
    N->NumArgs = static_cast<unsigned>(C->Args.size());
    N->AlsoCutsToNames = C->AlsoCutsTo;
    for (Symbol K : C->AlsoCutsTo)
      N->AlsoCutsTo.push_back(ContNodes.at(K));
    emit(N, nullptr);
    return;
  }

  case Stmt::Kind::Continuation: {
    const auto *C = cast<ContinuationStmt>(S);
    CopyInNode *In = ContNodes.at(C->Name);
    // Sema rejects fallthrough into a continuation, but be safe: bind any
    // open ends to the CopyIn so the graph stays connected.
    emit(In, &In->Next);
    return;
  }
  }
  cmm_unreachable("unknown statement kind");
}

/// Rewrites every edge that targets a goto-branch (constant condition, both
/// destinations equal) to target its destination, then leaves the dead
/// branch nodes unreachable.
void ProcTranslator::threadGotoBranches() {
  if (GotoBranches.empty())
    return;
  std::unordered_set<const Node *> GotoSet(GotoBranches.begin(),
                                           GotoBranches.end());
  auto Thread = [&](Node *N) -> Node * {
    std::unordered_set<const Node *> Seen;
    while (N && GotoSet.count(N) && Seen.insert(N).second)
      N = cast<BranchNode>(N)->TrueDst;
    return N;
  };
  for (const std::unique_ptr<Node> &Owned : P.Nodes) {
    Node *N = Owned.get();
    switch (N->kind()) {
    case Node::Kind::Entry: {
      auto *E = cast<EntryNode>(N);
      E->Next = Thread(E->Next);
      break;
    }
    case Node::Kind::CopyIn:
      cast<CopyInNode>(N)->Next = Thread(cast<CopyInNode>(N)->Next);
      break;
    case Node::Kind::CopyOut:
      cast<CopyOutNode>(N)->Next = Thread(cast<CopyOutNode>(N)->Next);
      break;
    case Node::Kind::CalleeSaves:
      cast<CalleeSavesNode>(N)->Next = Thread(cast<CalleeSavesNode>(N)->Next);
      break;
    case Node::Kind::Assign:
      cast<AssignNode>(N)->Next = Thread(cast<AssignNode>(N)->Next);
      break;
    case Node::Kind::Store:
      cast<StoreNode>(N)->Next = Thread(cast<StoreNode>(N)->Next);
      break;
    case Node::Kind::Branch: {
      auto *B = cast<BranchNode>(N);
      B->TrueDst = Thread(B->TrueDst);
      B->FalseDst = Thread(B->FalseDst);
      break;
    }
    case Node::Kind::Call: {
      auto *C = cast<CallNode>(N);
      for (Node *&T : C->Bundle.ReturnsTo)
        T = Thread(T);
      break;
    }
    default:
      break;
    }
  }
}

//===----------------------------------------------------------------------===//
// Linking
//===----------------------------------------------------------------------===//

class Linker {
public:
  Linker(std::vector<AnalyzedModule> Mods, DiagnosticEngine &Diags)
      : Mods(std::move(Mods)), Diags(Diags) {}

  std::unique_ptr<IrProgram> run();

private:
  void layoutData(const DataDecl &D);
  void checkImports();

  std::vector<AnalyzedModule> Mods;
  DiagnosticEngine &Diags;
  std::unique_ptr<IrProgram> Prog;
};

std::unique_ptr<IrProgram> Linker::run() {
  if (Mods.empty()) {
    Diags.error(SourceLoc(), "no modules to link");
    return nullptr;
  }
  Prog = std::make_unique<IrProgram>();
  Prog->Names = Mods.front().Mod->Names;
  Prog->Image.Base = DataBase;
  Prog->DataEnd = DataBase;

  for (AnalyzedModule &AM : Mods) {
    if (AM.Mod->Names != Prog->Names) {
      Diags.error(SourceLoc(), "modules of one program must share an "
                               "interner");
      return nullptr;
    }
  }

  // Install the intrinsic yield procedure: X(yield) is a bare Yield node.
  {
    auto YieldProc = std::make_unique<IrProc>();
    YieldProc->Name = Prog->Names->intern("yield");
    YieldProc->EntryPoint = YieldProc->make<YieldNode>();
    Prog->ProcByName.emplace(YieldProc->Name, YieldProc.get());
    Prog->Procs.push_back(std::move(YieldProc));
  }

  // Module-level namespace is program-wide: collect globals and data first
  // (procedures reference data addresses only at run time).
  for (AnalyzedModule &AM : Mods) {
    for (const GlobalDecl &G : AM.Mod->Globals) {
      if (!Prog->Globals.emplace(G.Name, G.Ty).second)
        Diags.error(G.Loc, "global '" + Prog->Names->spelling(G.Name) +
                               "' defined in more than one module");
    }
    for (const DataDecl &D : AM.Mod->Data) {
      if (Prog->DataAddrs.count(D.Name)) {
        Diags.error(D.Loc, "data block '" + Prog->Names->spelling(D.Name) +
                               "' defined in more than one module");
        continue;
      }
      layoutData(D);
    }
  }

  // Translate procedures.
  for (AnalyzedModule &AM : Mods) {
    for (const ProcDecl &Decl : AM.Mod->Procs) {
      if (Prog->ProcByName.count(Decl.Name)) {
        Diags.error(Decl.Loc, "procedure '" +
                                  Prog->Names->spelling(Decl.Name) +
                                  "' defined in more than one module");
        continue;
      }
      auto P = std::make_unique<IrProc>();
      P->Name = Decl.Name;
      P->Params = Decl.Params;
      const ProcInfo &PI = AM.Info.Procs.at(&Decl);
      P->VarTypes.reserve(PI.Vars.size() + PI.Continuations.size());
      for (const auto &[Name, Ty] : PI.Vars)
        P->VarTypes.emplace(Name, Ty);
      // Continuation names denote per-activation values bound at Entry;
      // for dataflow purposes they are locals of the native pointer type.
      for (const auto &[Name, C] : PI.Continuations) {
        (void)C;
        P->VarTypes.emplace(Name, TargetInfo::nativePointer());
      }
      ProcTranslator(*Prog, *P, Decl, PI, Diags).run();
      Prog->ProcByName.emplace(P->Name, P.get());
      Prog->Procs.push_back(std::move(P));
    }
  }

  checkImports();
  if (Diags.hasErrors())
    return nullptr;

  // The program co-owns the modules: graphs reference their expressions.
  for (AnalyzedModule &AM : Mods)
    Prog->SourceModules.push_back(std::move(AM.Mod));
  return std::move(Prog);
}

void Linker::layoutData(const DataDecl &D) {
  // Align each block to 8 bytes.
  while ((Prog->Image.Base + Prog->Image.Bytes.size()) % 8 != 0)
    Prog->Image.Bytes.push_back(0);
  uint64_t Addr = Prog->Image.Base + Prog->Image.Bytes.size();
  Prog->DataAddrs.emplace(D.Name, Addr);

  auto PutInt = [&](uint64_t V, unsigned Bytes) {
    for (unsigned I = 0; I < Bytes; ++I)
      Prog->Image.Bytes.push_back(static_cast<uint8_t>(V >> (8 * I)));
  };
  for (const DataItem &Item : D.Items) {
    switch (Item.K) {
    case DataItem::Kind::Int:
      PutInt(Item.IntValue, Item.Ty.sizeInBytes());
      break;
    case DataItem::Kind::Str:
      for (char C : Item.StrValue)
        Prog->Image.Bytes.push_back(static_cast<uint8_t>(C));
      Prog->Image.Bytes.push_back(0);
      break;
    case DataItem::Kind::Name: {
      uint64_t At = Prog->Image.Base + Prog->Image.Bytes.size();
      Prog->Image.Relocs.push_back({At, Item.NameValue});
      PutInt(0, TargetInfo::pointerBytes());
      break;
    }
    case DataItem::Kind::Reserve:
      for (uint64_t I = 0; I < Item.ReserveCount; ++I)
        PutInt(0, Item.Ty.sizeInBytes());
      break;
    }
  }
  Prog->DataEnd = Prog->Image.Base + Prog->Image.Bytes.size();
}

void Linker::checkImports() {
  for (AnalyzedModule &AM : Mods) {
    for (Symbol S : AM.Mod->Imports) {
      if (Prog->ProcByName.count(S) || Prog->DataAddrs.count(S) ||
          Prog->Globals.count(S))
        continue;
      Diags.error(SourceLoc(), "unresolved import '" +
                                   Prog->Names->spelling(S) + "'");
    }
  }
  // Unresolved %%name references recorded as implicit imports by Sema.
  for (AnalyzedModule &AM : Mods) {
    for (Symbol S : AM.Info.ImportNames) {
      if (Prog->ProcByName.count(S) || Prog->DataAddrs.count(S) ||
          Prog->Globals.count(S))
        continue;
      Diags.error(SourceLoc(), "unresolved reference to '" +
                                   Prog->Names->spelling(S) + "'");
    }
  }
}

} // namespace

std::unique_ptr<IrProgram>
cmm::translateProgram(std::vector<AnalyzedModule> Mods,
                      DiagnosticEngine &Diags) {
  return Linker(std::move(Mods), Diags).run();
}

const char *cmm::stdLibSource() {
  return R"(/* cmmex standard library: slow-but-solid primitives (Section 4.3).
   Each maps failure into a yield; the front-end run-time system is expected
   to unwind or cut the stack past the faulting activation. */
export %%divu, %%divs, %%modu, %%mods;

%%divu(bits32 p, bits32 q) {
  if q == 0 { yield(53744) also aborts; }
  return (%divu(p, q));
}

%%divs(bits32 p, bits32 q) {
  if q == 0 { yield(53744) also aborts; }
  return (%divs(p, q));
}

%%modu(bits32 p, bits32 q) {
  if q == 0 { yield(53744) also aborts; }
  return (%modu(p, q));
}

%%mods(bits32 p, bits32 q) {
  if q == 0 { yield(53744) also aborts; }
  return (%mods(p, q));
}
)";
}

std::unique_ptr<IrProgram>
cmm::compileProgram(const std::vector<std::string> &Sources,
                    DiagnosticEngine &Diags, bool IncludeStdLib) {
  auto Names = std::make_shared<Interner>();
  std::vector<AnalyzedModule> Mods;
  auto AddSource = [&](const std::string &Src) {
    Parser P(Src, Diags, Names);
    auto Mod = std::make_shared<Module>(P.parseModule());
    SemaInfo Info = analyze(*Mod, Diags);
    Mods.push_back({std::move(Mod), std::move(Info)});
  };
  for (const std::string &Src : Sources)
    AddSource(Src);
  if (IncludeStdLib)
    AddSource(stdLibSource());
  if (Diags.hasErrors())
    return nullptr;
  return translateProgram(std::move(Mods), Diags);
}
