//===- ir/IrPrinter.h - Abstract C-- dumps ----------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Textual dumps of Abstract C-- graphs in the style of Figure 6, used by
/// golden tests and the optimizer_tour example.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_IR_IRPRINTER_H
#define CMM_IR_IRPRINTER_H

#include "ir/Ir.h"

#include <string>

namespace cmm {

/// Renders one procedure's graph, one node per line in reachable
/// depth-first order: "n3: x := n + 1 -> n4".
std::string printProc(const IrProc &P, const Interner &Names);

/// Renders every procedure of \p Prog.
std::string printProgram(const IrProgram &Prog);

} // namespace cmm

#endif // CMM_IR_IRPRINTER_H
