//===- ir/Succ.h - CFG edge enumeration -------------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Successor enumeration for Abstract C-- graphs. The `also` annotations add
/// extra flow edges from call sites to continuations (Section 4.4); these
/// are first-class edges here, with kinds so analyses can distinguish them
/// (the callee-saves kill applies only along cut edges, Table 3) and so the
/// ablation benchmarks can drop them.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_IR_SUCC_H
#define CMM_IR_SUCC_H

#include "ir/Ir.h"

#include <vector>

namespace cmm {

/// Classifies a control-flow edge.
enum class EdgeKind : uint8_t {
  Seq,       ///< ordinary sequential / branch / normal-return edge
  AltReturn, ///< call -> `also returns to` continuation
  Unwind,    ///< call -> `also unwinds to` continuation
  Cut,       ///< call or cut-to -> `also cuts to` continuation
};

/// True for the edges contributed by exception annotations.
inline bool isExceptionalEdge(EdgeKind K) { return K != EdgeKind::Seq; }

/// Invokes \p F(Succ, Kind) for each successor of \p N. When
/// \p IncludeExceptional is false, only Seq edges are visited — this is the
/// unsound approximation the ablation experiments measure.
template <typename Fn>
void forEachSucc(const Node &N, Fn F, bool IncludeExceptional = true) {
  auto Visit = [&](Node *S, EdgeKind K) {
    if (S && (IncludeExceptional || !isExceptionalEdge(K)))
      F(S, K);
  };
  switch (N.kind()) {
  case Node::Kind::Entry:
    Visit(cast<EntryNode>(&N)->Next, EdgeKind::Seq);
    return;
  case Node::Kind::CopyIn:
    Visit(cast<CopyInNode>(&N)->Next, EdgeKind::Seq);
    return;
  case Node::Kind::CopyOut:
    Visit(cast<CopyOutNode>(&N)->Next, EdgeKind::Seq);
    return;
  case Node::Kind::CalleeSaves:
    Visit(cast<CalleeSavesNode>(&N)->Next, EdgeKind::Seq);
    return;
  case Node::Kind::Assign:
    Visit(cast<AssignNode>(&N)->Next, EdgeKind::Seq);
    return;
  case Node::Kind::Store:
    Visit(cast<StoreNode>(&N)->Next, EdgeKind::Seq);
    return;
  case Node::Kind::Branch:
    Visit(cast<BranchNode>(&N)->TrueDst, EdgeKind::Seq);
    Visit(cast<BranchNode>(&N)->FalseDst, EdgeKind::Seq);
    return;
  case Node::Kind::Call: {
    const auto &B = cast<CallNode>(&N)->Bundle;
    // Normal return is the last entry; the others are alternate returns.
    for (size_t I = 0; I + 1 < B.ReturnsTo.size(); ++I)
      Visit(B.ReturnsTo[I], EdgeKind::AltReturn);
    Visit(B.ReturnsTo.back(), EdgeKind::Seq);
    for (Node *U : B.UnwindsTo)
      Visit(U, EdgeKind::Unwind);
    for (Node *C : B.CutsTo)
      Visit(C, EdgeKind::Cut);
    return;
  }
  case Node::Kind::CutTo:
    for (Node *C : cast<CutToNode>(&N)->AlsoCutsTo)
      Visit(C, EdgeKind::Cut);
    return;
  case Node::Kind::Exit:
  case Node::Kind::Jump:
  case Node::Kind::Yield:
    return;
  }
}

/// Nodes reachable from the entry, in depth-first preorder (successors in
/// enumeration order). Exceptional edges included.
std::vector<Node *> reachableNodes(const IrProc &P);

} // namespace cmm

#endif // CMM_IR_SUCC_H
