//===- ir/IrPrinter.cpp ---------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "ir/IrPrinter.h"

#include "ir/Succ.h"
#include "support/Assert.h"
#include "syntax/AstPrinter.h"

using namespace cmm;

namespace {

std::string ref(const Node *N) {
  if (!N)
    return "<null>";
  return "n" + std::to_string(N->Id);
}

std::string symList(const std::vector<Symbol> &Syms, const Interner &Names) {
  std::string Out;
  for (size_t I = 0; I < Syms.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Names.spelling(Syms[I]);
  }
  return Out;
}

std::string exprList(const std::vector<const Expr *> &Exprs,
                     const Interner &Names) {
  std::string Out;
  for (size_t I = 0; I < Exprs.size(); ++I) {
    if (I)
      Out += ", ";
    Out += printExpr(*Exprs[I], Names);
  }
  return Out;
}

std::string nodeText(const Node *N, const Interner &Names) {
  switch (N->kind()) {
  case Node::Kind::Entry: {
    const auto *E = cast<EntryNode>(N);
    std::string Out = "Entry [";
    for (size_t I = 0; I < E->Conts.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Names.spelling(E->Conts[I].first) + "=" + ref(E->Conts[I].second);
    }
    return Out + "] -> " + ref(E->Next);
  }
  case Node::Kind::Exit: {
    const auto *E = cast<ExitNode>(N);
    return "Exit <" + std::to_string(E->ContIndex) + "/" +
           std::to_string(E->AltCount) + ">";
  }
  case Node::Kind::CopyIn: {
    const auto *C = cast<CopyInNode>(N);
    return "CopyIn [" + symList(C->Vars, Names) + "] -> " + ref(C->Next);
  }
  case Node::Kind::CopyOut: {
    const auto *C = cast<CopyOutNode>(N);
    return "CopyOut [" + exprList(C->Exprs, Names) + "] -> " + ref(C->Next);
  }
  case Node::Kind::CalleeSaves: {
    const auto *C = cast<CalleeSavesNode>(N);
    return "CalleeSaves {" + symList(C->Saved, Names) + "} -> " +
           ref(C->Next);
  }
  case Node::Kind::Assign: {
    const auto *A = cast<AssignNode>(N);
    return Names.spelling(A->Var) + " := " + printExpr(*A->Value, Names) +
           " -> " + ref(A->Next);
  }
  case Node::Kind::Store: {
    const auto *S = cast<StoreNode>(N);
    return S->AccessTy.str() + "[" + printExpr(*S->Addr, Names) +
           "] := " + printExpr(*S->Value, Names) + " -> " + ref(S->Next);
  }
  case Node::Kind::Branch: {
    const auto *B = cast<BranchNode>(N);
    return "Branch " + printExpr(*B->Cond, Names) + " ? " + ref(B->TrueDst) +
           " : " + ref(B->FalseDst);
  }
  case Node::Kind::Call: {
    const auto *C = cast<CallNode>(N);
    std::string Out = "Call " + printExpr(*C->Callee, Names) + "/" +
                      std::to_string(C->NumArgs) + " returns[";
    for (size_t I = 0; I < C->Bundle.ReturnsTo.size(); ++I) {
      if (I)
        Out += ", ";
      Out += ref(C->Bundle.ReturnsTo[I]);
    }
    Out += "]";
    if (!C->Bundle.UnwindsTo.empty()) {
      Out += " unwinds[";
      for (size_t I = 0; I < C->Bundle.UnwindsTo.size(); ++I) {
        if (I)
          Out += ", ";
        Out += ref(C->Bundle.UnwindsTo[I]);
      }
      Out += "]";
    }
    if (!C->Bundle.CutsTo.empty()) {
      Out += " cuts[";
      for (size_t I = 0; I < C->Bundle.CutsTo.size(); ++I) {
        if (I)
          Out += ", ";
        Out += ref(C->Bundle.CutsTo[I]);
      }
      Out += "]";
    }
    if (C->Bundle.Abort)
      Out += " aborts";
    return Out;
  }
  case Node::Kind::Jump: {
    const auto *J = cast<JumpNode>(N);
    return "Jump " + printExpr(*J->Callee, Names) + "/" +
           std::to_string(J->NumArgs);
  }
  case Node::Kind::CutTo: {
    const auto *C = cast<CutToNode>(N);
    std::string Out = "CutTo " + printExpr(*C->Cont, Names) + "/" +
                      std::to_string(C->NumArgs);
    if (!C->AlsoCutsTo.empty()) {
      Out += " cuts[";
      for (size_t I = 0; I < C->AlsoCutsTo.size(); ++I) {
        if (I)
          Out += ", ";
        Out += ref(C->AlsoCutsTo[I]);
      }
      Out += "]";
    }
    return Out;
  }
  case Node::Kind::Yield:
    return "Yield";
  }
  cmm_unreachable("unknown node kind");
}

} // namespace

std::string cmm::printProc(const IrProc &P, const Interner &Names) {
  std::string Out = Names.spelling(P.Name) + ":\n";
  for (const Node *N : reachableNodes(P))
    Out += "  n" + std::to_string(N->Id) + ": " + nodeText(N, Names) + "\n";
  return Out;
}

std::string cmm::printProgram(const IrProgram &Prog) {
  std::string Out;
  for (const auto &P : Prog.Procs)
    Out += printProc(*P, *Prog.Names);
  return Out;
}
