//===- ir/Translate.h - C-- to Abstract C-- ---------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 5.3 translation from C-- source to Abstract C-- control-flow
/// graphs, plus linking of multiple modules into one program (imports
/// resolved, data laid out, the intrinsic `yield` procedure installed).
///
//===----------------------------------------------------------------------===//

#ifndef CMM_IR_TRANSLATE_H
#define CMM_IR_TRANSLATE_H

#include "ir/Ir.h"
#include "support/Diagnostics.h"
#include "syntax/Sema.h"

#include <memory>
#include <vector>

namespace cmm {

/// A parsed and analyzed module awaiting translation. All modules of one
/// program must share one Interner.
struct AnalyzedModule {
  std::shared_ptr<Module> Mod;
  SemaInfo Info;
};

/// Translates and links \p Mods into one Abstract C-- program. Returns null
/// (with diagnostics) on errors: unresolved imports, cross-module name
/// collisions, or mixed interners. The returned program co-owns the source
/// modules, whose expressions the graphs reference.
std::unique_ptr<IrProgram> translateProgram(std::vector<AnalyzedModule> Mods,
                                            DiagnosticEngine &Diags);

/// Convenience front door: parse, analyze, translate and link the given C--
/// sources (plus the standard library unless \p IncludeStdLib is false).
/// Returns null with diagnostics on any error.
std::unique_ptr<IrProgram>
compileProgram(const std::vector<std::string> &Sources,
               DiagnosticEngine &Diags, bool IncludeStdLib = true);

/// The C-- standard library: the slow-but-solid %%name procedures of
/// Section 4.3, written in C-- on top of `yield`.
const char *stdLibSource();

/// The tag passed to `yield` by the %%div family on a zero divisor.
inline constexpr uint64_t DivZeroYieldTag = 0xD1F0;

} // namespace cmm

#endif // CMM_IR_TRANSLATE_H
