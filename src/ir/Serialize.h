//===- ir/Serialize.h - Binary IR serialization -----------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stable, versioned binary encoding for checked IrPrograms — the IR half
/// of the `cmmex-artifact-v2` persistent-cache format (docs/ENGINE.md
/// § "Persistent cache"). Every multi-byte field is little-endian
/// (support/ByteIO.h) and the encoding is *canonical*: symbols are remapped
/// to dense first-use ids and every unordered container is emitted in a
/// content-determined order, so serialize(deserialize(serialize(P))) is
/// byte-identical to serialize(P). SerializeTest and the cmmdiff round-trip
/// oracle pin that property.
///
/// The deserialized program owns everything it references: expressions land
/// in each procedure's ExprPool and SourceModules stays empty (the source
/// ASTs are not part of the format).
///
//===----------------------------------------------------------------------===//

#ifndef CMM_IR_SERIALIZE_H
#define CMM_IR_SERIALIZE_H

#include "ir/Ir.h"
#include "support/ByteIO.h"

#include <memory>
#include <string>

namespace cmm {

/// Version of the IR blob layout; bumped on any encoding change so stale
/// cache files are rejected and recompiled rather than misread.
inline constexpr uint32_t IrFormatVersion = 2;

/// Appends the canonical encoding of \p P to \p W.
void serializeIr(const IrProgram &P, ByteWriter &W);

/// Decodes a program serialized by serializeIr. Returns null with \p Err
/// set (when non-null) on any malformed, truncated, or version-mismatched
/// input; never trusts an index or count it has not bounds-checked.
std::unique_ptr<IrProgram> deserializeIr(ByteReader &R,
                                         std::string *Err = nullptr);

} // namespace cmm

#endif // CMM_IR_SERIALIZE_H
