//===- ir/Ir.h - Abstract C-- control-flow graphs ---------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract C-- (Section 5 of the paper): "a language that resembles the
/// flow-graph representations used in optimizing compilers". A program is a
/// partial map X from names to procedures; a procedure is a control-flow
/// graph formed from exactly the node kinds of Table 2. The range of X
/// includes only nodes of the form `Entry kk p` or `Yield`.
///
/// Expressions are shared with the front end: they are the side-effect-free,
/// Sema-resolved syntax::Expr trees. The optimizer may allocate replacement
/// expressions from a procedure's expression pool.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_IR_IR_H
#define CMM_IR_IR_H

#include "support/Casting.h"
#include "support/Interner.h"
#include "syntax/Ast.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace cmm {

class Node;

/// A continuation bundle (Table 2): "encodes the possible outcomes of a
/// procedure call". The quadruple (kp_r, kp_u, kp_c, abort).
struct ContBundle {
  /// Nodes for continuations listed in `also returns to`, plus the node for
  /// normal returns **last** ("the normal return continuation is always the
  /// last", Section 4.2).
  std::vector<Node *> ReturnsTo;
  /// Nodes for continuations listed in `also unwinds to`.
  std::vector<Node *> UnwindsTo;
  /// Nodes for continuations listed in `also cuts to`.
  std::vector<Node *> CutsTo;
  /// True when the call site is annotated `also aborts`.
  bool Abort = false;

  Node *normalReturn() const { return ReturnsTo.back(); }
  /// Number of *alternate* return continuations (the n of return <i/n>).
  unsigned altReturnCount() const {
    return static_cast<unsigned>(ReturnsTo.size()) - 1;
  }
};

/// Base of all Abstract C-- graph nodes. Kinds are exactly those of Table 2
/// (the paper's Assign covers both variable and memory assignment; we give
/// the two forms distinct kinds, Assign and Store).
class Node {
public:
  enum class Kind : uint8_t {
    Entry,
    Exit,
    CopyIn,
    CopyOut,
    CalleeSaves,
    Assign,
    Store,
    Branch,
    Call,
    Jump,
    CutTo,
    Yield,
  };

  Kind kind() const { return K; }

  /// Dense per-procedure id; index into IrProc::Nodes.
  uint32_t Id = 0;
  SourceLoc Loc;

  virtual ~Node() = default;

protected:
  explicit Node(Kind K) : K(K) {}

private:
  Kind K;
};

/// `Entry kk p` — the unique entry node of a procedure with continuations kk
/// and first node p. Binds the procedure's continuations into an empty
/// environment; parameter values are bound later by a CopyIn node.
class EntryNode : public Node {
public:
  /// The continuations declared in the procedure body: (name, node) pairs
  /// where the node is the continuation's CopyIn.
  std::vector<std::pair<Symbol, Node *>> Conts;
  Node *Next = nullptr;

  EntryNode() : Node(Kind::Entry) {}
  static bool classof(const Node *N) { return N->kind() == Kind::Entry; }
};

/// `Exit j n` — normal exit from a procedure, returning to return
/// continuation j; the suspended call site must have exactly n alternate
/// return continuations tagged with `also returns to`.
class ExitNode : public Node {
public:
  unsigned ContIndex = 0;
  unsigned AltCount = 0;

  ExitNode() : Node(Kind::Exit) {}
  static bool classof(const Node *N) { return N->kind() == Kind::Exit; }
};

/// `CopyIn kv p` — put results from a call, or parameters to a procedure or
/// continuation, into variables kv; empties the argument-passing area.
class CopyInNode : public Node {
public:
  std::vector<Symbol> Vars;
  Node *Next = nullptr;

  CopyInNode() : Node(Kind::CopyIn) {}
  static bool classof(const Node *N) { return N->kind() == Kind::CopyIn; }
};

/// `CopyOut ke p` — make the values of expressions ke the results of a call,
/// or the parameters to a procedure or continuation.
class CopyOutNode : public Node {
public:
  std::vector<const Expr *> Exprs;
  Node *Next = nullptr;

  CopyOutNode() : Node(Kind::CopyOut) {}
  static bool classof(const Node *N) { return N->kind() == Kind::CopyOut; }
};

/// `CalleeSaves s p` — make s the set of variables in callee-saves registers
/// (by spilling or reloading). Introduced only by optimizers; not part of
/// the direct translation of any C-- program (Section 5.2).
class CalleeSavesNode : public Node {
public:
  std::vector<Symbol> Saved;
  Node *Next = nullptr;

  CalleeSavesNode() : Node(Kind::CalleeSaves) {}
  static bool classof(const Node *N) {
    return N->kind() == Kind::CalleeSaves;
  }
};

/// `Assign v e p` — assign e to variable v (local or global register).
class AssignNode : public Node {
public:
  Symbol Var;
  bool IsGlobal = false;
  const Expr *Value = nullptr;
  Node *Next = nullptr;

  AssignNode() : Node(Kind::Assign) {}
  static bool classof(const Node *N) { return N->kind() == Kind::Assign; }
};

/// `Assign type[a] e p` — store e to memory at address a.
class StoreNode : public Node {
public:
  Type AccessTy;
  const Expr *Addr = nullptr;
  const Expr *Value = nullptr;
  Node *Next = nullptr;

  StoreNode() : Node(Kind::Store) {}
  static bool classof(const Node *N) { return N->kind() == Kind::Store; }
};

/// `Branch c pt pf` — branch to pt or pf when c is true or false.
class BranchNode : public Node {
public:
  const Expr *Cond = nullptr;
  Node *TrueDst = nullptr;
  Node *FalseDst = nullptr;

  BranchNode() : Node(Kind::Branch) {}
  static bool classof(const Node *N) { return N->kind() == Kind::Branch; }
};

/// `Call ef Γ` — call procedure ef, returning to one of the nodes in the
/// continuation bundle Γ. Arguments were placed in the value-passing area by
/// the preceding CopyOut.
class CallNode : public Node {
public:
  const Expr *Callee = nullptr;
  ContBundle Bundle;
  unsigned NumArgs = 0;
  /// Static descriptors deposited by the front end for this call site,
  /// retrievable at run time through GetDescriptor (Section 3.3). Each is a
  /// link-time-constant expression.
  std::vector<const Expr *> Descriptors;
  /// Continuation names as written in the source annotations (for printing).
  std::vector<Symbol> ReturnsToNames, UnwindsToNames, CutsToNames;

  CallNode() : Node(Kind::Call) {}
  static bool classof(const Node *N) { return N->kind() == Kind::Call; }
};

/// `Jump ef` — tail call; exits the current procedure.
class JumpNode : public Node {
public:
  const Expr *Callee = nullptr;
  unsigned NumArgs = 0;

  JumpNode() : Node(Kind::Jump) {}
  static bool classof(const Node *N) { return N->kind() == Kind::Jump; }
};

/// `CutTo e` — cut the stack to continuation e; exits the current procedure
/// unless the target is named in this statement's own `also cuts to`
/// annotation (Section 4.4).
class CutToNode : public Node {
public:
  const Expr *Cont = nullptr;
  unsigned NumArgs = 0;
  /// CopyIn nodes of same-procedure continuations this cut may target.
  std::vector<Node *> AlsoCutsTo;
  std::vector<Symbol> AlsoCutsToNames;

  CutToNode() : Node(Kind::CutTo) {}
  static bool classof(const Node *N) { return N->kind() == Kind::CutTo; }
};

/// `Yield` — execute a procedure in the run-time system. The reserved
/// program name "yield" maps directly to this node; it appears in no
/// optimized procedure (Table 3).
class YieldNode : public Node {
public:
  YieldNode() : Node(Kind::Yield) {}
  static bool classof(const Node *N) { return N->kind() == Kind::Yield; }
};

//===----------------------------------------------------------------------===//
// Procedures and programs
//===----------------------------------------------------------------------===//

/// One Abstract C-- procedure: a named control-flow graph.
struct IrProc {
  Symbol Name;
  std::vector<Param> Params;
  /// Entry node, or the bare Yield node for the intrinsic "yield" procedure.
  Node *EntryPoint = nullptr;
  /// All nodes, owned; Node::Id indexes this vector.
  std::vector<std::unique_ptr<Node>> Nodes;
  /// Types of locals and parameters (copied from Sema).
  std::unordered_map<Symbol, Type> VarTypes;
  /// Expressions created by the optimizer (the translated graph references
  /// expressions owned by the source Module).
  std::vector<ExprPtr> ExprPool;

  /// Creates a node of type \p T owned by this procedure.
  template <typename T> T *make() {
    auto Owned = std::make_unique<T>();
    T *N = Owned.get();
    N->Id = static_cast<uint32_t>(Nodes.size());
    Nodes.push_back(std::move(Owned));
    return N;
  }

  bool isYieldIntrinsic() const {
    return EntryPoint && isa<YieldNode>(EntryPoint);
  }
};

/// An initialized data segment plus relocations for symbolic items.
struct DataImage {
  struct Reloc {
    uint64_t Addr;  ///< where to store the pointer
    Symbol Target;  ///< data label or procedure whose address is stored
  };
  uint64_t Base = 0;
  std::vector<uint8_t> Bytes;
  std::vector<Reloc> Relocs;
};

/// A complete linked Abstract C-- program: the partial map X from names to
/// procedures, plus globals and the static data image.
struct IrProgram {
  std::shared_ptr<Interner> Names;
  std::vector<std::unique_ptr<IrProc>> Procs;
  std::unordered_map<Symbol, IrProc *> ProcByName;
  /// Global register variables and their types.
  std::unordered_map<Symbol, Type> Globals;
  /// Addresses of data blocks.
  std::unordered_map<Symbol, uint64_t> DataAddrs;
  /// Addresses of string literals appearing in expressions.
  std::unordered_map<const StrLitExpr *, uint64_t> StrAddrs;
  DataImage Image;
  /// One past the highest statically allocated data address; the machine
  /// places dynamic allocations above this.
  uint64_t DataEnd = 0;
  /// The source modules, kept alive because graphs reference their
  /// expression trees.
  std::vector<std::shared_ptr<Module>> SourceModules;

  IrProc *findProc(Symbol Name) const {
    auto It = ProcByName.find(Name);
    return It == ProcByName.end() ? nullptr : It->second;
  }
  IrProc *findProc(std::string_view Name) const {
    Symbol S = Names->lookup(Name);
    return S ? findProc(S) : nullptr;
  }
};

/// Base address of the static data segment.
inline constexpr uint64_t DataBase = 0x10000000;

} // namespace cmm

#endif // CMM_IR_IR_H
