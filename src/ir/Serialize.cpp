//===- ir/Serialize.cpp - Binary IR serialization -------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
//
// Layout (all integers little-endian, docs/ENGINE.md § "Persistent cache"):
//
//   u32 IrFormatVersion
//   symbol table: u64 count, count length-prefixed spellings
//     (symbol references below are u32 indices; 0 = the invalid symbol,
//     i >= 1 names the i-th spelling)
//   globals:    u64 count, (sym, type) sorted by spelling
//   data addrs: u64 count, (sym, u64) sorted by spelling
//   image:      u64 base, u64 byte count + raw bytes,
//               u64 reloc count, (u64 addr, sym) in image order
//   u64 data end
//   procs:      u64 count, then per proc (in IrProgram::Procs order):
//     sym name, params, var types (sorted by spelling),
//     expr table (children strictly before parents; node payloads refer to
//       exprs by u32 table index, 0xffffffff = null),
//     string-literal addresses: (expr index, u64 addr) in table order,
//     node kinds (u8 each, so the reader can build all shells before any
//       payload resolves a forward node reference),
//     node payloads in Node::Id order (node refs are u32 id+1, 0 = null),
//     entry-point node ref
//
// Canonical form: the symbol table is in first-use order of the traversal
// above and expression ids are in first-visit DFS order, both pure
// functions of program content, which is what makes re-serializing a
// deserialized program byte-identical.
//
//===----------------------------------------------------------------------===//

#include "ir/Serialize.h"

#include <algorithm>
#include <unordered_map>

using namespace cmm;

namespace {

constexpr uint32_t NullExpr = 0xffffffffu;

//===----------------------------------------------------------------------===//
// Writing
//===----------------------------------------------------------------------===//

/// Dense first-use symbol numbering for one serialization.
struct SymTable {
  const Interner &Names;
  std::unordered_map<uint32_t, uint32_t> Map;
  std::vector<const std::string *> Spellings;

  explicit SymTable(const Interner &Names) : Names(Names) {}

  uint32_t id(Symbol S) {
    if (!S.isValid())
      return 0;
    auto It = Map.find(S.Id);
    if (It != Map.end())
      return It->second;
    uint32_t New = uint32_t(Map.size()) + 1;
    Map.emplace(S.Id, New);
    Spellings.push_back(&Names.spelling(S));
    return New;
  }
};

/// Entries of a map keyed by Symbol, sorted by spelling (a content-
/// determined order, unlike the unordered_map's).
template <typename MapT>
std::vector<std::pair<Symbol, typename MapT::mapped_type>>
sortedBySpelling(const MapT &M, const Interner &Names) {
  std::vector<std::pair<Symbol, typename MapT::mapped_type>> V(M.begin(),
                                                               M.end());
  std::sort(V.begin(), V.end(), [&](const auto &A, const auto &B) {
    return Names.spelling(A.first) < Names.spelling(B.first);
  });
  return V;
}

struct IrWriter {
  const IrProgram &P;
  SymTable Syms;
  ByteWriter Body; ///< assembled after the symbol table is complete

  explicit IrWriter(const IrProgram &P) : P(P), Syms(*P.Names) {}

  void sym(Symbol S) { Body.u32(Syms.id(S)); }
  void type(Type T) {
    Body.u8(uint8_t(T.K));
    Body.u8(T.Width);
  }
  void loc(SourceLoc L) {
    Body.u32(L.Line);
    Body.u32(L.Col);
  }
  void nodeRef(const Node *N) { Body.u32(N ? N->Id + 1 : 0); }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  std::unordered_map<const Expr *, uint32_t> ExprId;
  std::vector<const Expr *> ExprList;

  /// Assigns \p E (and, first, its children) the next table ids.
  uint32_t visitExpr(const Expr *E) {
    if (!E)
      return NullExpr;
    auto It = ExprId.find(E);
    if (It != ExprId.end())
      return It->second;
    switch (E->kind()) {
    case Expr::Kind::IntLit:
    case Expr::Kind::FloatLit:
    case Expr::Kind::StrLit:
    case Expr::Kind::Name:
    case Expr::Kind::Sizeof:
      break;
    case Expr::Kind::Load:
      visitExpr(static_cast<const LoadExpr *>(E)->Addr.get());
      break;
    case Expr::Kind::Unary:
      visitExpr(static_cast<const UnaryExpr *>(E)->Operand.get());
      break;
    case Expr::Kind::Binary:
      visitExpr(static_cast<const BinaryExpr *>(E)->Lhs.get());
      visitExpr(static_cast<const BinaryExpr *>(E)->Rhs.get());
      break;
    case Expr::Kind::Prim:
      for (const ExprPtr &A : static_cast<const PrimExpr *>(E)->Args)
        visitExpr(A.get());
      break;
    }
    uint32_t Id = uint32_t(ExprList.size());
    ExprId.emplace(E, Id);
    ExprList.push_back(E);
    return Id;
  }

  /// Every expression field of \p N, in declaration order.
  void visitNodeExprs(const Node &N) {
    switch (N.kind()) {
    case Node::Kind::CopyOut:
      for (const Expr *E : static_cast<const CopyOutNode &>(N).Exprs)
        visitExpr(E);
      break;
    case Node::Kind::Assign:
      visitExpr(static_cast<const AssignNode &>(N).Value);
      break;
    case Node::Kind::Store:
      visitExpr(static_cast<const StoreNode &>(N).Addr);
      visitExpr(static_cast<const StoreNode &>(N).Value);
      break;
    case Node::Kind::Branch:
      visitExpr(static_cast<const BranchNode &>(N).Cond);
      break;
    case Node::Kind::Call: {
      const auto &C = static_cast<const CallNode &>(N);
      visitExpr(C.Callee);
      for (const Expr *E : C.Descriptors)
        visitExpr(E);
      break;
    }
    case Node::Kind::Jump:
      visitExpr(static_cast<const JumpNode &>(N).Callee);
      break;
    case Node::Kind::CutTo:
      visitExpr(static_cast<const CutToNode &>(N).Cont);
      break;
    default:
      break;
    }
  }

  void expr(const Expr *E) { Body.u32(E ? ExprId.at(E) : NullExpr); }

  void writeExprEntry(const Expr *E) {
    Body.u8(uint8_t(E->kind()));
    type(E->Ty);
    loc(E->loc());
    switch (E->kind()) {
    case Expr::Kind::IntLit:
      Body.u64(static_cast<const IntLitExpr *>(E)->Value);
      break;
    case Expr::Kind::FloatLit:
      Body.f64(static_cast<const FloatLitExpr *>(E)->Value);
      break;
    case Expr::Kind::StrLit:
      Body.str(static_cast<const StrLitExpr *>(E)->Value);
      break;
    case Expr::Kind::Name: {
      const auto *NE = static_cast<const NameExpr *>(E);
      sym(NE->Name);
      Body.u8(uint8_t(NE->Ref));
      break;
    }
    case Expr::Kind::Load: {
      const auto *L = static_cast<const LoadExpr *>(E);
      type(L->AccessTy);
      expr(L->Addr.get());
      break;
    }
    case Expr::Kind::Unary: {
      const auto *U = static_cast<const UnaryExpr *>(E);
      Body.u8(uint8_t(U->Op));
      expr(U->Operand.get());
      break;
    }
    case Expr::Kind::Binary: {
      const auto *B = static_cast<const BinaryExpr *>(E);
      Body.u8(uint8_t(B->Op));
      expr(B->Lhs.get());
      expr(B->Rhs.get());
      break;
    }
    case Expr::Kind::Prim: {
      const auto *Pr = static_cast<const PrimExpr *>(E);
      sym(Pr->Name);
      Body.u64(Pr->Args.size());
      for (const ExprPtr &A : Pr->Args)
        expr(A.get());
      break;
    }
    case Expr::Kind::Sizeof: {
      const auto *S = static_cast<const SizeofExpr *>(E);
      sym(S->Name);
      Body.u32(S->SizeInBytes);
      break;
    }
    }
  }

  //===--------------------------------------------------------------------===//
  // Nodes
  //===--------------------------------------------------------------------===//

  void writeNodePayload(const Node &N) {
    loc(N.Loc);
    switch (N.kind()) {
    case Node::Kind::Entry: {
      const auto &E = static_cast<const EntryNode &>(N);
      Body.u64(E.Conts.size());
      for (const auto &[S, Target] : E.Conts) {
        sym(S);
        nodeRef(Target);
      }
      nodeRef(E.Next);
      break;
    }
    case Node::Kind::Exit: {
      const auto &E = static_cast<const ExitNode &>(N);
      Body.u32(E.ContIndex);
      Body.u32(E.AltCount);
      break;
    }
    case Node::Kind::CopyIn: {
      const auto &C = static_cast<const CopyInNode &>(N);
      Body.u64(C.Vars.size());
      for (Symbol V : C.Vars)
        sym(V);
      nodeRef(C.Next);
      break;
    }
    case Node::Kind::CopyOut: {
      const auto &C = static_cast<const CopyOutNode &>(N);
      Body.u64(C.Exprs.size());
      for (const Expr *E : C.Exprs)
        expr(E);
      nodeRef(C.Next);
      break;
    }
    case Node::Kind::CalleeSaves: {
      const auto &C = static_cast<const CalleeSavesNode &>(N);
      Body.u64(C.Saved.size());
      for (Symbol V : C.Saved)
        sym(V);
      nodeRef(C.Next);
      break;
    }
    case Node::Kind::Assign: {
      const auto &A = static_cast<const AssignNode &>(N);
      sym(A.Var);
      Body.u8(A.IsGlobal);
      expr(A.Value);
      nodeRef(A.Next);
      break;
    }
    case Node::Kind::Store: {
      const auto &S = static_cast<const StoreNode &>(N);
      type(S.AccessTy);
      expr(S.Addr);
      expr(S.Value);
      nodeRef(S.Next);
      break;
    }
    case Node::Kind::Branch: {
      const auto &B = static_cast<const BranchNode &>(N);
      expr(B.Cond);
      nodeRef(B.TrueDst);
      nodeRef(B.FalseDst);
      break;
    }
    case Node::Kind::Call: {
      const auto &C = static_cast<const CallNode &>(N);
      expr(C.Callee);
      auto Refs = [&](const std::vector<Node *> &V) {
        Body.u64(V.size());
        for (const Node *T : V)
          nodeRef(T);
      };
      Refs(C.Bundle.ReturnsTo);
      Refs(C.Bundle.UnwindsTo);
      Refs(C.Bundle.CutsTo);
      Body.u8(C.Bundle.Abort);
      Body.u32(C.NumArgs);
      Body.u64(C.Descriptors.size());
      for (const Expr *E : C.Descriptors)
        expr(E);
      auto Names = [&](const std::vector<Symbol> &V) {
        Body.u64(V.size());
        for (Symbol S : V)
          sym(S);
      };
      Names(C.ReturnsToNames);
      Names(C.UnwindsToNames);
      Names(C.CutsToNames);
      break;
    }
    case Node::Kind::Jump: {
      const auto &J = static_cast<const JumpNode &>(N);
      expr(J.Callee);
      Body.u32(J.NumArgs);
      break;
    }
    case Node::Kind::CutTo: {
      const auto &C = static_cast<const CutToNode &>(N);
      expr(C.Cont);
      Body.u32(C.NumArgs);
      Body.u64(C.AlsoCutsTo.size());
      for (const Node *T : C.AlsoCutsTo)
        nodeRef(T);
      Body.u64(C.AlsoCutsToNames.size());
      for (Symbol S : C.AlsoCutsToNames)
        sym(S);
      break;
    }
    case Node::Kind::Yield:
      break;
    }
  }

  void writeProc(const IrProc &Proc) {
    sym(Proc.Name);
    Body.u64(Proc.Params.size());
    for (const Param &Pa : Proc.Params) {
      type(Pa.Ty);
      sym(Pa.Name);
    }
    auto Vars = sortedBySpelling(Proc.VarTypes, *P.Names);
    Body.u64(Vars.size());
    for (const auto &[S, T] : Vars) {
      sym(S);
      type(T);
    }

    // Expression table: first-visit order over the nodes.
    ExprId.clear();
    ExprList.clear();
    for (const auto &N : Proc.Nodes)
      visitNodeExprs(*N);
    Body.u64(ExprList.size());
    for (const Expr *E : ExprList)
      writeExprEntry(E);

    // String-literal addresses for table entries this program assigned one.
    std::vector<std::pair<uint32_t, uint64_t>> SAddrs;
    for (uint32_t I = 0; I < ExprList.size(); ++I)
      if (const auto *S = dyn_cast<StrLitExpr>(ExprList[I])) {
        auto It = P.StrAddrs.find(S);
        if (It != P.StrAddrs.end())
          SAddrs.emplace_back(I, It->second);
      }
    Body.u64(SAddrs.size());
    for (const auto &[I, Addr] : SAddrs) {
      Body.u32(I);
      Body.u64(Addr);
    }

    Body.u64(Proc.Nodes.size());
    for (const auto &N : Proc.Nodes)
      Body.u8(uint8_t(N->kind()));
    for (const auto &N : Proc.Nodes)
      writeNodePayload(*N);
    nodeRef(Proc.EntryPoint);
  }

  void writeProgram() {
    auto Globals = sortedBySpelling(P.Globals, *P.Names);
    Body.u64(Globals.size());
    for (const auto &[S, T] : Globals) {
      sym(S);
      type(T);
    }
    auto DataAddrs = sortedBySpelling(P.DataAddrs, *P.Names);
    Body.u64(DataAddrs.size());
    for (const auto &[S, A] : DataAddrs) {
      sym(S);
      Body.u64(A);
    }
    Body.u64(P.Image.Base);
    Body.u64(P.Image.Bytes.size());
    Body.bytes(P.Image.Bytes.data(), P.Image.Bytes.size());
    Body.u64(P.Image.Relocs.size());
    for (const DataImage::Reloc &R : P.Image.Relocs) {
      Body.u64(R.Addr);
      sym(R.Target);
    }
    Body.u64(P.DataEnd);
    Body.u64(P.Procs.size());
    for (const auto &Proc : P.Procs)
      writeProc(*Proc);
  }
};

//===----------------------------------------------------------------------===//
// Reading
//===----------------------------------------------------------------------===//

struct IrReader {
  ByteReader &R;
  IrProgram &P;
  std::vector<Symbol> SymOf; ///< table index -> interned symbol

  // Per-proc expression table: every entry, plus ownership for entries not
  // yet adopted by a parent expression.
  std::vector<Expr *> Exprs;
  std::vector<ExprPtr> Owned;

  IrReader(ByteReader &R, IrProgram &P) : R(R), P(P) {}

  Symbol sym() {
    uint32_t I = R.u32();
    if (I >= SymOf.size())
      return R.fail(), Symbol();
    return SymOf[I];
  }
  Type type() {
    uint8_t K = R.u8(), W = R.u8();
    if (K > uint8_t(Type::Kind::Float))
      R.fail();
    return Type(Type::Kind(K), W);
  }
  SourceLoc loc() {
    uint32_t Line = R.u32(), Col = R.u32();
    return SourceLoc(Line, Col);
  }
  Node *nodeRef(IrProc &Proc) {
    uint32_t I = R.u32();
    if (I == 0)
      return nullptr;
    if (I > Proc.Nodes.size())
      return R.fail(), nullptr;
    return Proc.Nodes[I - 1].get();
  }

  /// A previously materialized expression, by table index (never forward).
  Expr *expr(uint32_t Limit) {
    uint32_t I = R.u32();
    if (I == NullExpr)
      return nullptr;
    if (I >= Limit)
      return R.fail(), nullptr;
    return Exprs[I];
  }
  /// As expr(), but transfers ownership to the caller (a parent adopting a
  /// child). A second adoption of the same entry means corrupt input.
  ExprPtr adopt(uint32_t Limit) {
    uint32_t I = R.u32();
    if (I == NullExpr)
      return nullptr;
    if (I >= Limit || !Owned[I])
      return R.fail(), nullptr;
    return std::move(Owned[I]);
  }

  void readExprEntry(uint32_t Index) {
    uint8_t KindByte = R.u8();
    if (KindByte > uint8_t(Expr::Kind::Sizeof)) {
      R.fail();
      return;
    }
    Type Ty = type();
    SourceLoc Loc = loc();
    ExprPtr E;
    switch (Expr::Kind(KindByte)) {
    case Expr::Kind::IntLit:
      E = std::make_unique<IntLitExpr>(Loc, R.u64());
      break;
    case Expr::Kind::FloatLit:
      E = std::make_unique<FloatLitExpr>(Loc, R.f64());
      break;
    case Expr::Kind::StrLit:
      E = std::make_unique<StrLitExpr>(Loc, R.str());
      break;
    case Expr::Kind::Name: {
      Symbol S = sym();
      uint8_t Ref = R.u8();
      if (Ref > uint8_t(RefKind::Import))
        R.fail();
      auto NE = std::make_unique<NameExpr>(Loc, S);
      NE->Ref = RefKind(Ref);
      E = std::move(NE);
      break;
    }
    case Expr::Kind::Load: {
      Type AccessTy = type();
      ExprPtr Addr = adopt(Index);
      E = std::make_unique<LoadExpr>(Loc, AccessTy, std::move(Addr));
      break;
    }
    case Expr::Kind::Unary: {
      uint8_t Op = R.u8();
      if (Op > uint8_t(UnOp::Not))
        R.fail();
      ExprPtr Operand = adopt(Index);
      E = std::make_unique<UnaryExpr>(Loc, UnOp(Op), std::move(Operand));
      break;
    }
    case Expr::Kind::Binary: {
      uint8_t Op = R.u8();
      if (Op > uint8_t(BinOp::GeS))
        R.fail();
      ExprPtr Lhs = adopt(Index);
      ExprPtr Rhs = adopt(Index);
      E = std::make_unique<BinaryExpr>(Loc, BinOp(Op), std::move(Lhs),
                                       std::move(Rhs));
      break;
    }
    case Expr::Kind::Prim: {
      Symbol S = sym();
      size_t N = R.count(4);
      std::vector<ExprPtr> Args;
      Args.reserve(N);
      for (size_t I = 0; I < N; ++I)
        Args.push_back(adopt(Index));
      E = std::make_unique<PrimExpr>(Loc, S, std::move(Args));
      break;
    }
    case Expr::Kind::Sizeof: {
      Symbol S = sym();
      auto SE = std::make_unique<SizeofExpr>(Loc, S);
      SE->SizeInBytes = R.u32();
      E = std::move(SE);
      break;
    }
    }
    E->Ty = Ty;
    Exprs[Index] = E.get();
    Owned[Index] = std::move(E);
  }

  void readNodePayload(IrProc &Proc, Node &N, uint32_t ExprCount) {
    N.Loc = loc();
    switch (N.kind()) {
    case Node::Kind::Entry: {
      auto &E = static_cast<EntryNode &>(N);
      size_t C = R.count(8);
      E.Conts.reserve(C);
      for (size_t I = 0; I < C; ++I) {
        Symbol S = sym();
        Node *T = nodeRef(Proc);
        E.Conts.emplace_back(S, T);
      }
      E.Next = nodeRef(Proc);
      break;
    }
    case Node::Kind::Exit: {
      auto &E = static_cast<ExitNode &>(N);
      E.ContIndex = R.u32();
      E.AltCount = R.u32();
      break;
    }
    case Node::Kind::CopyIn: {
      auto &C = static_cast<CopyInNode &>(N);
      size_t K = R.count(4);
      C.Vars.reserve(K);
      for (size_t I = 0; I < K; ++I)
        C.Vars.push_back(sym());
      C.Next = nodeRef(Proc);
      break;
    }
    case Node::Kind::CopyOut: {
      auto &C = static_cast<CopyOutNode &>(N);
      size_t K = R.count(4);
      C.Exprs.reserve(K);
      for (size_t I = 0; I < K; ++I)
        C.Exprs.push_back(expr(ExprCount));
      C.Next = nodeRef(Proc);
      break;
    }
    case Node::Kind::CalleeSaves: {
      auto &C = static_cast<CalleeSavesNode &>(N);
      size_t K = R.count(4);
      C.Saved.reserve(K);
      for (size_t I = 0; I < K; ++I)
        C.Saved.push_back(sym());
      C.Next = nodeRef(Proc);
      break;
    }
    case Node::Kind::Assign: {
      auto &A = static_cast<AssignNode &>(N);
      A.Var = sym();
      A.IsGlobal = R.u8() != 0;
      A.Value = expr(ExprCount);
      A.Next = nodeRef(Proc);
      break;
    }
    case Node::Kind::Store: {
      auto &S = static_cast<StoreNode &>(N);
      S.AccessTy = type();
      S.Addr = expr(ExprCount);
      S.Value = expr(ExprCount);
      S.Next = nodeRef(Proc);
      break;
    }
    case Node::Kind::Branch: {
      auto &B = static_cast<BranchNode &>(N);
      B.Cond = expr(ExprCount);
      B.TrueDst = nodeRef(Proc);
      B.FalseDst = nodeRef(Proc);
      break;
    }
    case Node::Kind::Call: {
      auto &C = static_cast<CallNode &>(N);
      C.Callee = expr(ExprCount);
      auto Refs = [&](std::vector<Node *> &V) {
        size_t K = R.count(4);
        V.reserve(K);
        for (size_t I = 0; I < K; ++I)
          V.push_back(nodeRef(Proc));
      };
      Refs(C.Bundle.ReturnsTo);
      Refs(C.Bundle.UnwindsTo);
      Refs(C.Bundle.CutsTo);
      C.Bundle.Abort = R.u8() != 0;
      C.NumArgs = R.u32();
      size_t D = R.count(4);
      C.Descriptors.reserve(D);
      for (size_t I = 0; I < D; ++I)
        C.Descriptors.push_back(expr(ExprCount));
      auto Names = [&](std::vector<Symbol> &V) {
        size_t K = R.count(4);
        V.reserve(K);
        for (size_t I = 0; I < K; ++I)
          V.push_back(sym());
      };
      Names(C.ReturnsToNames);
      Names(C.UnwindsToNames);
      Names(C.CutsToNames);
      // Every checked program has a normal-return continuation; an empty
      // ReturnsTo would make normalReturn() read past the front.
      if (C.Bundle.ReturnsTo.empty())
        R.fail();
      break;
    }
    case Node::Kind::Jump: {
      auto &J = static_cast<JumpNode &>(N);
      J.Callee = expr(ExprCount);
      J.NumArgs = R.u32();
      break;
    }
    case Node::Kind::CutTo: {
      auto &C = static_cast<CutToNode &>(N);
      C.Cont = expr(ExprCount);
      C.NumArgs = R.u32();
      size_t K = R.count(4);
      C.AlsoCutsTo.reserve(K);
      for (size_t I = 0; I < K; ++I)
        C.AlsoCutsTo.push_back(nodeRef(Proc));
      size_t M = R.count(4);
      C.AlsoCutsToNames.reserve(M);
      for (size_t I = 0; I < M; ++I)
        C.AlsoCutsToNames.push_back(sym());
      break;
    }
    case Node::Kind::Yield:
      break;
    }
  }

  bool readProc(IrProc &Proc) {
    Proc.Name = sym();
    size_t NParams = R.count(4);
    Proc.Params.reserve(NParams);
    for (size_t I = 0; I < NParams; ++I) {
      Type T = type();
      Symbol S = sym();
      Proc.Params.push_back(Param{T, S});
    }
    size_t NVars = R.count(4);
    for (size_t I = 0; I < NVars; ++I) {
      Symbol S = sym();
      Type T = type();
      if (R.ok())
        Proc.VarTypes.emplace(S, T);
    }

    size_t NExprs = R.count(4);
    Exprs.assign(NExprs, nullptr);
    Owned.clear();
    Owned.resize(NExprs);
    for (uint32_t I = 0; I < NExprs && R.ok(); ++I)
      readExprEntry(I);
    if (!R.ok())
      return false;

    size_t NAddrs = R.count(8);
    for (size_t I = 0; I < NAddrs; ++I) {
      uint32_t EI = R.u32();
      uint64_t Addr = R.u64();
      if (EI >= NExprs) {
        R.fail();
        return false;
      }
      const auto *S = dyn_cast<StrLitExpr>(Exprs[EI]);
      if (!S) {
        R.fail();
        return false;
      }
      P.StrAddrs.emplace(S, Addr);
    }

    size_t NNodes = R.count(1);
    for (size_t I = 0; I < NNodes && R.ok(); ++I) {
      uint8_t K = R.u8();
      switch (Node::Kind(K)) {
      case Node::Kind::Entry:
        Proc.make<EntryNode>();
        break;
      case Node::Kind::Exit:
        Proc.make<ExitNode>();
        break;
      case Node::Kind::CopyIn:
        Proc.make<CopyInNode>();
        break;
      case Node::Kind::CopyOut:
        Proc.make<CopyOutNode>();
        break;
      case Node::Kind::CalleeSaves:
        Proc.make<CalleeSavesNode>();
        break;
      case Node::Kind::Assign:
        Proc.make<AssignNode>();
        break;
      case Node::Kind::Store:
        Proc.make<StoreNode>();
        break;
      case Node::Kind::Branch:
        Proc.make<BranchNode>();
        break;
      case Node::Kind::Call:
        Proc.make<CallNode>();
        break;
      case Node::Kind::Jump:
        Proc.make<JumpNode>();
        break;
      case Node::Kind::CutTo:
        Proc.make<CutToNode>();
        break;
      case Node::Kind::Yield:
        Proc.make<YieldNode>();
        break;
      default:
        R.fail();
      }
    }
    if (!R.ok())
      return false;
    for (size_t I = 0; I < NNodes && R.ok(); ++I)
      readNodePayload(Proc, *Proc.Nodes[I], uint32_t(NExprs));
    Proc.EntryPoint = nodeRef(Proc);

    // Hand any expression not adopted by a parent to the proc's pool.
    for (ExprPtr &E : Owned)
      if (E)
        Proc.ExprPool.push_back(std::move(E));
    return R.ok();
  }

  bool readProgram() {
    size_t NGlobals = R.count(6);
    for (size_t I = 0; I < NGlobals; ++I) {
      Symbol S = sym();
      Type T = type();
      if (R.ok())
        P.Globals.emplace(S, T);
    }
    size_t NAddrs = R.count(12);
    for (size_t I = 0; I < NAddrs; ++I) {
      Symbol S = sym();
      uint64_t A = R.u64();
      if (R.ok())
        P.DataAddrs.emplace(S, A);
    }
    P.Image.Base = R.u64();
    size_t NBytes = R.count(1);
    R.bytes(P.Image.Bytes, NBytes);
    size_t NRelocs = R.count(12);
    P.Image.Relocs.reserve(NRelocs);
    for (size_t I = 0; I < NRelocs; ++I) {
      uint64_t A = R.u64();
      Symbol S = sym();
      if (R.ok())
        P.Image.Relocs.push_back(DataImage::Reloc{A, S});
    }
    P.DataEnd = R.u64();
    size_t NProcs = R.count(8);
    for (size_t I = 0; I < NProcs && R.ok(); ++I) {
      auto Proc = std::make_unique<IrProc>();
      if (!readProc(*Proc))
        return false;
      P.ProcByName.emplace(Proc->Name, Proc.get());
      P.Procs.push_back(std::move(Proc));
    }
    return R.ok();
  }
};

} // namespace

void cmm::serializeIr(const IrProgram &P, ByteWriter &W) {
  IrWriter IW(P);
  IW.writeProgram();
  W.u32(IrFormatVersion);
  W.u64(IW.Syms.Spellings.size());
  for (const std::string *S : IW.Syms.Spellings)
    W.str(*S);
  W.bytes(IW.Body.buffer().data(), IW.Body.size());
}

std::unique_ptr<IrProgram> cmm::deserializeIr(ByteReader &R,
                                              std::string *Err) {
  auto Fail = [&](const char *Why) -> std::unique_ptr<IrProgram> {
    if (Err)
      *Err = Why;
    return nullptr;
  };
  uint32_t Version = R.u32();
  if (!R.ok())
    return Fail("truncated IR blob");
  if (Version != IrFormatVersion)
    return Fail("IR format version mismatch");

  auto P = std::make_unique<IrProgram>();
  P->Names = std::make_shared<Interner>();

  IrReader IR(R, *P);
  size_t NSyms = R.count(8);
  IR.SymOf.reserve(NSyms + 1);
  IR.SymOf.push_back(Symbol()); // index 0 = invalid
  for (size_t I = 0; I < NSyms && R.ok(); ++I)
    IR.SymOf.push_back(P->Names->intern(R.str()));
  if (!R.ok())
    return Fail("malformed IR symbol table");

  if (!IR.readProgram())
    return Fail("malformed IR body");
  return P;
}
