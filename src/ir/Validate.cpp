//===- ir/Validate.cpp ----------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "ir/Validate.h"

#include "ir/Succ.h"

#include <unordered_set>

using namespace cmm;

bool cmm::validateProc(const IrProc &P, const Interner &Names,
                       DiagnosticEngine &Diags) {
  unsigned Before = Diags.errorCount();
  auto Error = [&](const Node *N, const std::string &Msg) {
    Diags.error(N ? N->Loc : SourceLoc(),
                "invalid graph in '" + Names.spelling(P.Name) + "': " + Msg);
  };

  if (!P.EntryPoint) {
    Error(nullptr, "no entry point");
    return false;
  }
  if (P.isYieldIntrinsic())
    return true;
  if (!isa<EntryNode>(P.EntryPoint)) {
    Error(P.EntryPoint, "entry point is not an Entry node");
    return false;
  }

  std::unordered_set<const Node *> Owned;
  for (const std::unique_ptr<Node> &N : P.Nodes) {
    Owned.insert(N.get());
    if (N->Id >= P.Nodes.size() || P.Nodes[N->Id].get() != N.get())
      Error(N.get(), "node id does not index the owner vector");
  }

  auto CheckTarget = [&](const Node *From, const Node *To, const char *What) {
    if (!To) {
      Error(From, std::string("null ") + What + " target");
      return;
    }
    if (!Owned.count(To))
      Error(From, std::string(What) + " target not owned by this procedure");
  };

  for (Node *N : reachableNodes(P)) {
    switch (N->kind()) {
    case Node::Kind::Entry: {
      if (N != P.EntryPoint)
        Error(N, "secondary Entry node");
      const auto *E = cast<EntryNode>(N);
      CheckTarget(N, E->Next, "entry");
      if (E->Next && !isa<CopyInNode>(E->Next))
        Error(N, "entry successor must be the parameter CopyIn");
      for (const auto &[Name, C] : E->Conts) {
        (void)Name;
        CheckTarget(N, C, "continuation");
        if (C && !isa<CopyInNode>(C))
          Error(N, "continuation node must be a CopyIn");
      }
      break;
    }
    case Node::Kind::CopyIn:
      CheckTarget(N, cast<CopyInNode>(N)->Next, "CopyIn successor");
      break;
    case Node::Kind::CopyOut: {
      const auto *C = cast<CopyOutNode>(N);
      CheckTarget(N, C->Next, "CopyOut successor");
      for (const Expr *E : C->Exprs)
        if (!E)
          Error(N, "null expression in CopyOut");
      break;
    }
    case Node::Kind::CalleeSaves:
      CheckTarget(N, cast<CalleeSavesNode>(N)->Next, "CalleeSaves successor");
      break;
    case Node::Kind::Assign: {
      const auto *A = cast<AssignNode>(N);
      CheckTarget(N, A->Next, "Assign successor");
      if (!A->Value)
        Error(N, "null expression in Assign");
      break;
    }
    case Node::Kind::Store: {
      const auto *S = cast<StoreNode>(N);
      CheckTarget(N, S->Next, "Store successor");
      if (!S->Addr || !S->Value)
        Error(N, "null expression in Store");
      break;
    }
    case Node::Kind::Branch: {
      const auto *B = cast<BranchNode>(N);
      CheckTarget(N, B->TrueDst, "branch true");
      CheckTarget(N, B->FalseDst, "branch false");
      if (!B->Cond)
        Error(N, "null branch condition");
      break;
    }
    case Node::Kind::Call: {
      const auto *C = cast<CallNode>(N);
      if (!C->Callee)
        Error(N, "null callee");
      if (C->Bundle.ReturnsTo.empty()) {
        Error(N, "continuation bundle lacks a normal return");
        break;
      }
      auto CheckCont = [&](Node *T, const char *What, bool MustBeCopyIn) {
        CheckTarget(N, T, What);
        if (T && MustBeCopyIn && !isa<CopyInNode>(T))
          Error(N, std::string(What) + " target must be a CopyIn");
      };
      // Alternate returns, unwinds and cuts target declared continuations
      // (always CopyIn); the normal return may be any node.
      for (size_t I = 0; I + 1 < C->Bundle.ReturnsTo.size(); ++I)
        CheckCont(C->Bundle.ReturnsTo[I], "alternate return", true);
      CheckCont(C->Bundle.ReturnsTo.back(), "normal return", false);
      for (Node *U : C->Bundle.UnwindsTo)
        CheckCont(U, "unwind", true);
      for (Node *K : C->Bundle.CutsTo)
        CheckCont(K, "cut", true);
      break;
    }
    case Node::Kind::Jump:
      if (!cast<JumpNode>(N)->Callee)
        Error(N, "null jump callee");
      break;
    case Node::Kind::CutTo: {
      const auto *C = cast<CutToNode>(N);
      if (!C->Cont)
        Error(N, "null cut-to continuation expression");
      for (Node *K : C->AlsoCutsTo) {
        CheckTarget(N, K, "also cuts to");
        if (K && !isa<CopyInNode>(K))
          Error(N, "also cuts to target must be a CopyIn");
      }
      break;
    }
    case Node::Kind::Exit:
      break;
    case Node::Kind::Yield:
      Error(N, "Yield node inside an ordinary procedure; yield must be "
               "called, not inlined");
      break;
    }
  }
  return Diags.errorCount() == Before;
}

bool cmm::validateProgram(const IrProgram &Prog, DiagnosticEngine &Diags) {
  bool Ok = true;
  for (const auto &P : Prog.Procs)
    Ok &= validateProc(*P, *Prog.Names, Diags);
  return Ok;
}
