//===- ir/Succ.cpp --------------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "ir/Succ.h"

using namespace cmm;

std::vector<Node *> cmm::reachableNodes(const IrProc &P) {
  std::vector<Node *> Order;
  if (!P.EntryPoint)
    return Order;
  std::vector<bool> Seen(P.Nodes.size(), false);
  std::vector<Node *> Stack = {P.EntryPoint};
  Seen[P.EntryPoint->Id] = true;
  while (!Stack.empty()) {
    Node *N = Stack.back();
    Stack.pop_back();
    Order.push_back(N);
    // Collect successors, then push in reverse so DFS visits them in
    // enumeration order.
    std::vector<Node *> Succs;
    forEachSucc(*N, [&](Node *S, EdgeKind) {
      if (!Seen[S->Id]) {
        Seen[S->Id] = true;
        Succs.push_back(S);
      }
    });
    for (auto It = Succs.rbegin(); It != Succs.rend(); ++It)
      Stack.push_back(*It);
  }
  return Order;
}
