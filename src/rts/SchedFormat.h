//===- rts/SchedFormat.h - Scheduler runtime vocabulary ---------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The yield-tag vocabulary between guest C-- programs and the green-thread
/// scheduler (src/sched, docs/SCHEDULER.md). The paper leaves the meaning
/// of `yield` to the front-end run-time system; the scheduler is one such
/// runtime, and this header is its calling convention — the same role
/// rts/ExnFormat.h plays for the exception dispatchers.
///
/// A scheduler request is an ordinary yield whose first argument is one of
/// the tags below; the remaining arguments are the operands. Requests with
/// a result must be written as a binding call (`h = yield(SCHED_CHAN_NEW,
/// 1);`), requests without one as a statement — the scheduler resumes
/// through the normal return continuation of the yield site, so the arity
/// of the resume must match what the continuation binds (a mismatch goes
/// wrong with the machine's own precise reason, like any Table 1 misuse).
///
/// Tags live in a reserved high range so they can never collide with the
/// source-language exception tags (small integers; rts/Dispatchers.h) or
/// the %%div family's DivZeroYieldTag — a yield whose tag is outside this
/// range is NOT a scheduler request and is delegated to the green thread's
/// exception dispatcher.
///
///   tag                     operands            resumes with
///   SchedTagSpawn           proc, arg           tid
///   SchedTagYield           —                   —
///   SchedTagSleep           ticks               —           (virtual time)
///   SchedTagChanNew         capacity            handle
///   SchedTagChanSend        handle, value       —           (parks if full)
///   SchedTagChanRecv        handle              value       (parks if empty)
///   SchedTagJoin            tid                 value       (parks till exit)
///   SchedTagSelf            —                   tid
///
//===----------------------------------------------------------------------===//

#ifndef CMM_RTS_SCHEDFORMAT_H
#define CMM_RTS_SCHEDFORMAT_H

#include "sem/Executor.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cmm {

/// Base of the reserved scheduler tag range ("SC" in ASCII, shifted high).
inline constexpr uint64_t SchedTagBase = 0x53430000;

inline constexpr uint64_t SchedTagSpawn = SchedTagBase + 1;
inline constexpr uint64_t SchedTagYield = SchedTagBase + 2;
inline constexpr uint64_t SchedTagSleep = SchedTagBase + 3;
inline constexpr uint64_t SchedTagChanNew = SchedTagBase + 4;
inline constexpr uint64_t SchedTagChanSend = SchedTagBase + 5;
inline constexpr uint64_t SchedTagChanRecv = SchedTagBase + 6;
inline constexpr uint64_t SchedTagJoin = SchedTagBase + 7;
inline constexpr uint64_t SchedTagSelf = SchedTagBase + 8;
inline constexpr uint64_t SchedTagEnd = SchedTagBase + 9; ///< one past last

/// True when \p Tag is a scheduler request (vs. an exception or any other
/// runtime's yield).
inline bool isSchedTag(uint64_t Tag) {
  return Tag >= SchedTagBase && Tag < SchedTagEnd;
}

/// The C-- source spelling of a tag (the grammar has no named constants, so
/// generated and hand-written guests embed the literal; keeping the
/// rendering here keeps the numbers in exactly one place).
inline std::string schedTagLiteral(uint64_t Tag) { return std::to_string(Tag); }

/// A decoded scheduler request: the tag plus every operand after it, in
/// yield order. Valid is false when the suspension is not a well-formed
/// scheduler request (no Bits tag, or a tag outside the reserved range).
struct SchedRequest {
  uint64_t Tag = 0;
  std::vector<Value> Operands;
  bool Valid = false;
};

/// Reads the scheduler request of a suspended executor (whole argument
/// area, unlike readYieldRequest's two-slot exception convention).
inline SchedRequest readSchedRequest(const Executor &M) {
  SchedRequest R;
  if (M.status() != MachineStatus::Suspended)
    return R;
  const std::vector<Value> &A = M.argArea();
  if (A.empty() || !A[0].isBits() || !isSchedTag(A[0].Raw))
    return R;
  R.Tag = A[0].Raw;
  R.Operands.assign(A.begin() + 1, A.end());
  R.Valid = true;
  return R;
}

} // namespace cmm

#endif // CMM_RTS_SCHEDFORMAT_H
