//===- rts/Dispatchers.cpp ------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "rts/Dispatchers.h"

using namespace cmm;

YieldRequest cmm::readYieldRequest(const Machine &T) {
  YieldRequest R;
  if (T.status() != MachineStatus::Suspended)
    return R;
  const std::vector<Value> &A = T.argArea();
  if (A.empty() || !A[0].isBits())
    return R;
  R.Tag = A[0].Raw;
  if (A.size() >= 2) {
    R.Arg = A[1];
    R.HasArg = true;
  }
  R.Valid = true;
  return R;
}

DispatchResult UnwindingDispatcher::dispatch() {
  YieldRequest Req = readYieldRequest(T);
  if (!Req.Valid)
    return DispatchResult::NotAnExn;
  ++Dispatches;

  // The Figure 9 loop: walk activations, map each to its exception
  // descriptor, and unwind to the first handler whose tag matches.
  CmmRuntime Rt(T);
  Activation A;
  if (!Rt.firstActivation(A))
    return DispatchResult::Unhandled;
  do {
    std::optional<Value> Desc = Rt.getDescriptor(A, 0);
    if (!Desc)
      continue;
    for (const ExnHandler &H :
         readExnDescriptor(T.memory(), Desc->Raw)) {
      if (H.ExnTag != Req.Tag)
        continue;
      if (!Rt.setActivation(A))
        return DispatchResult::Unhandled;
      if (!Rt.setUnwindCont(H.ContNum))
        return DispatchResult::Unhandled;
      if (H.TakesArg) {
        Value *Slot = Rt.findContParam(0);
        if (!Slot)
          return DispatchResult::Unhandled;
        *Slot = Req.HasArg ? Req.Arg : Value::bits(32, 0);
      }
      if (!Rt.resume())
        return DispatchResult::Unhandled;
      accumulate(Rt.stats());
      return DispatchResult::Handled;
    }
  } while (Rt.nextActivation(A));
  accumulate(Rt.stats());
  return DispatchResult::Unhandled; // Figure 9: abort(); dump core
}

DispatchResult CuttingDispatcher::dispatch() {
  YieldRequest Req = readYieldRequest(T);
  if (!Req.Valid)
    return DispatchResult::NotAnExn;
  ++Dispatches;

  // Pop the topmost handler continuation from the in-memory handler stack.
  std::optional<Value> Top = T.getGlobal(ExnTopGlobal);
  if (!Top || Top->Raw == 0)
    return DispatchResult::Unhandled;
  Value K = Value::bits(32, T.memory().loadBits(Top->Raw, 4));
  T.setGlobal(ExnTopGlobal,
              Value::bits(Top->Width, Top->Raw - TargetInfo::pointerBytes()));

  CmmRuntime Rt(T);
  if (!Rt.setCutToCont(K))
    return DispatchResult::Unhandled;
  if (Value *P0 = Rt.findContParam(0))
    *P0 = Value::bits(32, Req.Tag);
  if (Value *P1 = Rt.findContParam(1))
    *P1 = Req.HasArg ? Req.Arg : Value::bits(32, 0);
  if (!Rt.resume())
    return DispatchResult::Unhandled;
  return DispatchResult::Handled;
}
