//===- rts/Dispatchers.cpp ------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "rts/Dispatchers.h"

#include "sem/Observer.h"

using namespace cmm;

YieldRequest cmm::readYieldRequest(const Executor &T) {
  YieldRequest R;
  if (T.status() != MachineStatus::Suspended)
    return R;
  const std::vector<Value> &A = T.argArea();
  if (A.empty() || !A[0].isBits())
    return R;
  R.Tag = A[0].Raw;
  if (A.size() >= 2) {
    R.Arg = A[1];
    R.HasArg = true;
  }
  R.Valid = true;
  return R;
}

DispatchResult UnwindingDispatcher::dispatch() {
  YieldRequest Req = readYieldRequest(T);
  if (!Req.Valid)
    return DispatchResult::NotAnExn;
  ++Dispatches;

  // Annotate the yield so traces separate dispatcher work from mutator
  // work (the observer shows a "dispatch:unwind" span on its own track).
  MachineObserver *Obs = T.observer();
  if (Obs)
    Obs->onDispatchBegin(T, "unwind", Req.Tag);

  // The Figure 9 loop: walk activations, map each to its exception
  // descriptor, and unwind to the first handler whose tag matches.
  CmmRuntime Rt(T);
  auto Done = [&](DispatchResult R) {
    accumulate(Rt.stats());
    if (Obs)
      Obs->onDispatchEnd(T, "unwind", R == DispatchResult::Handled,
                         Rt.stats().ActivationsVisited);
    return R;
  };
  Activation A;
  if (!Rt.firstActivation(A))
    return Done(DispatchResult::Unhandled);
  do {
    std::optional<Value> Desc = Rt.getDescriptor(A, 0);
    if (!Desc)
      continue;
    for (const ExnHandler &H :
         readExnDescriptor(T.memory(), Desc->Raw)) {
      if (H.ExnTag != Req.Tag)
        continue;
      if (!Rt.setActivation(A))
        return Done(DispatchResult::Unhandled);
      if (!Rt.setUnwindCont(H.ContNum))
        return Done(DispatchResult::Unhandled);
      if (H.TakesArg) {
        Value *Slot = Rt.findContParam(0);
        if (!Slot)
          return Done(DispatchResult::Unhandled);
        *Slot = Req.HasArg ? Req.Arg : Value::bits(32, 0);
      }
      if (!Rt.resume())
        return Done(DispatchResult::Unhandled);
      return Done(DispatchResult::Handled);
    }
  } while (Rt.nextActivation(A));
  return Done(DispatchResult::Unhandled); // Figure 9: abort(); dump core
}

DispatchResult CuttingDispatcher::dispatch() {
  YieldRequest Req = readYieldRequest(T);
  if (!Req.Valid)
    return DispatchResult::NotAnExn;
  ++Dispatches;

  MachineObserver *Obs = T.observer();
  if (Obs)
    Obs->onDispatchBegin(T, "cut", Req.Tag);
  // Constant-time dispatch: no stack walk, zero activations visited.
  auto Done = [&](DispatchResult R) {
    if (Obs)
      Obs->onDispatchEnd(T, "cut", R == DispatchResult::Handled, 0);
    return R;
  };

  // Pop the topmost handler continuation from the in-memory handler stack.
  std::optional<Value> Top = T.getGlobal(ExnTopGlobal);
  if (!Top || Top->Raw == 0)
    return Done(DispatchResult::Unhandled);
  Value K = Value::bits(32, T.memory().loadBits(Top->Raw, 4));
  T.setGlobal(ExnTopGlobal,
              Value::bits(Top->Width, Top->Raw - TargetInfo::pointerBytes()));

  CmmRuntime Rt(T);
  if (!Rt.setCutToCont(K))
    return Done(DispatchResult::Unhandled);
  if (Value *P0 = Rt.findContParam(0))
    *P0 = Value::bits(32, Req.Tag);
  if (Value *P1 = Rt.findContParam(1))
    *P1 = Req.HasArg ? Req.Arg : Value::bits(32, 0);
  if (!Rt.resume())
    return Done(DispatchResult::Unhandled);
  return Done(DispatchResult::Handled);
}
