//===- rts/RuntimeInterface.cpp -------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "rts/RuntimeInterface.h"

#include "support/Casting.h"

using namespace cmm;

bool CmmRuntime::firstActivation(Activation &A) {
  if (T.status() != MachineStatus::Suspended || T.stackDepth() == 0) {
    A.Valid = false;
    return false;
  }
  A.IndexFromTop = 0;
  A.Valid = true;
  ++S.ActivationsVisited;
  return true;
}

bool CmmRuntime::nextActivation(Activation &A) {
  if (!A.Valid)
    return false;
  if (A.IndexFromTop + 1 >= T.stackDepth()) {
    A.Valid = false;
    return false;
  }
  ++A.IndexFromTop;
  ++S.ActivationsVisited;
  return true;
}

const IrProc *CmmRuntime::activationProc(const Activation &A) const {
  if (!A.Valid || A.IndexFromTop >= T.stackDepth())
    return nullptr;
  return T.frameProc(A.IndexFromTop);
}

const CallNode *CmmRuntime::activationCallSite(const Activation &A) const {
  if (!A.Valid || A.IndexFromTop >= T.stackDepth())
    return nullptr;
  return T.frameCallSite(A.IndexFromTop);
}

std::optional<Value> CmmRuntime::getDescriptor(const Activation &A,
                                               unsigned N) {
  const CallNode *Site = activationCallSite(A);
  if (!Site || N >= Site->Descriptors.size())
    return std::nullopt;
  ++S.DescriptorReads;
  return T.evalConstExpr(Site->Descriptors[N]);
}

bool CmmRuntime::setActivation(const Activation &A) {
  if (!A.Valid || A.IndexFromTop >= T.stackDepth())
    return false;
  TargetIndex = A.IndexFromTop;
  // Default resumption point: the normal return continuation.
  ChoiceIsCut = ChoiceIsUnwind = false;
  const CallNode *Site = T.frameCallSite(TargetIndex);
  ChoiceIndex = static_cast<unsigned>(Site->Bundle.ReturnsTo.size()) - 1;
  refreshParams();
  return true;
}

bool CmmRuntime::setUnwindCont(unsigned N) {
  if (TargetIndex >= T.stackDepth())
    return false;
  const CallNode *Site = T.frameCallSite(TargetIndex);
  if (N >= Site->Bundle.UnwindsTo.size())
    return false;
  ChoiceIsUnwind = true;
  ChoiceIsCut = false;
  ChoiceIndex = N;
  refreshParams();
  return true;
}

bool CmmRuntime::setCutToCont(Value K) {
  if (!T.decodeCont(K))
    return false;
  ChoiceIsCut = true;
  ChoiceIsUnwind = false;
  CutValue = K;
  refreshParams();
  return true;
}

const CallNode *CmmRuntime::targetCallSite() const {
  if (TargetIndex >= T.stackDepth())
    return nullptr;
  return T.frameCallSite(TargetIndex);
}

void CmmRuntime::refreshParams() {
  const Node *Target = nullptr;
  if (ChoiceIsCut) {
    if (const ContRecord *Rec = T.decodeCont(CutValue))
      Target = Rec->Target;
  } else if (const CallNode *Site = targetCallSite()) {
    const ContBundle &B = Site->Bundle;
    if (ChoiceIsUnwind) {
      if (ChoiceIndex < B.UnwindsTo.size())
        Target = B.UnwindsTo[ChoiceIndex];
    } else if (ChoiceIndex < B.ReturnsTo.size()) {
      Target = B.ReturnsTo[ChoiceIndex];
    }
  }
  size_t Count = 0;
  if (Target)
    if (const auto *In = dyn_cast<CopyInNode>(Target))
      Count = In->Vars.size();
  Params.assign(Count, Value::bits(32, 0));
}

Value *CmmRuntime::findContParam(unsigned N) {
  if (N >= Params.size())
    return nullptr;
  return &Params[N];
}

bool CmmRuntime::resume() {
  ++S.Resumes;
  if (ChoiceIsCut) {
    // SetCutToCont: the cut itself truncates the stack (with the abort
    // checks of the formal rules); no explicit unwinding first.
    return T.rtResume(ResumeChoice::cut(CutValue), Params);
  }
  if (!T.rtUnwindTop(TargetIndex))
    return false;
  TargetIndex = 0;
  ResumeChoice C = ChoiceIsUnwind ? ResumeChoice::unwind(ChoiceIndex)
                                  : ResumeChoice::ret(ChoiceIndex);
  return T.rtResume(C, Params);
}
