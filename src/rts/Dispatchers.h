//===- rts/Dispatchers.h - Front-end exception dispatchers ------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Front-end run-time systems built on the Table 1 interface. These are the
/// "(probably large) front-end run-time system" of Section 3.3, here written
/// in C++ as the paper's examples are written in C:
///
///  - UnwindingDispatcher is the Figure 9 dispatcher: it walks the stack one
///    activation at a time, consults each activation's static descriptor,
///    and unwinds to the first matching handler (run-time stack unwinding:
///    zero cost to enter a handler scope, O(depth) to raise).
///
///  - CuttingDispatcher implements the SetCutToCont column of Figure 2: the
///    program keeps a stack of handler continuations in memory (pointed to
///    by a global register); raising pops the topmost and cuts to it in
///    constant time.
///
/// Yield convention shared with the generated code and the standard library:
/// the arguments of the yield(...) call are (tag) or (tag, argument), where
/// the tag identifies the source-language exception. The %%div family yields
/// tag DivZeroYieldTag.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_RTS_DISPATCHERS_H
#define CMM_RTS_DISPATCHERS_H

#include "rts/ExnFormat.h"
#include "rts/RuntimeInterface.h"

#include <string>

namespace cmm {

/// Outcome of one dispatch attempt.
enum class DispatchResult : uint8_t {
  Handled,   ///< a handler was found and the thread resumed
  Unhandled, ///< no activation handles this exception
  NotAnExn,  ///< the yield was not an exception request
};

/// The Figure 9 exception dispatcher (run-time stack unwinding).
class UnwindingDispatcher {
public:
  explicit UnwindingDispatcher(Executor &T) : T(T) {}

  /// Services the current suspension: reads (tag, arg?) from the argument
  /// area, walks the stack, and resumes at the matching handler.
  DispatchResult dispatch();

  /// Adapter for runWithRuntime.
  bool operator()(Executor &) { return dispatch() == DispatchResult::Handled; }

  /// Cumulative walk statistics over every dispatch this object serviced.
  const RtStats &walkStats() const { return Walk; }
  uint64_t dispatches() const { return Dispatches; }

private:
  void accumulate(const RtStats &S) {
    Walk.ActivationsVisited += S.ActivationsVisited;
    Walk.DescriptorReads += S.DescriptorReads;
    Walk.Resumes += S.Resumes;
  }

  Executor &T;
  RtStats Walk;
  uint64_t Dispatches = 0;
};

/// A constant-time dispatcher using SetCutToCont (Figure 2, bottom-left).
/// The generated code maintains a stack of handler continuation values in
/// memory; a global register holds the address of the topmost slot. Raising
/// pops that continuation and cuts to it, passing (tag, arg).
class CuttingDispatcher {
public:
  /// \p ExnTopGlobal names the global register holding the address of the
  /// topmost handler-continuation slot (0 when no handler is active).
  CuttingDispatcher(Executor &T, std::string ExnTopGlobal = "exn_top")
      : T(T), ExnTopGlobal(std::move(ExnTopGlobal)) {}

  DispatchResult dispatch();

  bool operator()(Executor &) { return dispatch() == DispatchResult::Handled; }

  uint64_t dispatches() const { return Dispatches; }

private:
  Executor &T;
  std::string ExnTopGlobal;
  uint64_t Dispatches = 0;
};

/// Decodes the yield arguments under the shared convention.
struct YieldRequest {
  uint64_t Tag = 0;
  Value Arg;     ///< meaningful only when HasArg
  bool HasArg = false;
  bool Valid = false;
};

/// Reads the yield request of a suspended machine.
YieldRequest readYieldRequest(const Executor &T);

} // namespace cmm

#endif // CMM_RTS_DISPATCHERS_H
