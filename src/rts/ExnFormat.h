//===- rts/ExnFormat.h - Exception descriptor encoding ----------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static exception-descriptor format shared between the front end
/// (which emits descriptors as C-- data blocks attached to call sites) and
/// the unwinding dispatcher (which parses them out of machine memory). It
/// mirrors Figure 9's struct exn_descriptor:
///
///   struct exn_descriptor {
///     bits32 handler_count;
///     struct { bits32 exn_tag; bits32 cont_num; bits32 takes_arg; }
///       handlers[handler_count];
///   };
///
/// cont_num indexes the `also unwinds to` list of the call site, counting
/// from zero, as required by SetUnwindCont.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_RTS_EXNFORMAT_H
#define CMM_RTS_EXNFORMAT_H

#include "sem/Memory.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cmm {

/// One handler entry of a descriptor.
struct ExnHandler {
  uint64_t ExnTag = 0;
  unsigned ContNum = 0;
  bool TakesArg = false;
};

/// Renders a descriptor as a C-- data block named \p Name.
inline std::string emitExnDescriptor(const std::string &Name,
                                     const std::vector<ExnHandler> &Handlers) {
  std::string Out = "data " + Name + " {\n";
  Out += "  bits32 " + std::to_string(Handlers.size()) + ";\n";
  for (const ExnHandler &H : Handlers) {
    Out += "  bits32 " + std::to_string(H.ExnTag) + ";\n";
    Out += "  bits32 " + std::to_string(H.ContNum) + ";\n";
    Out += "  bits32 " + std::to_string(H.TakesArg ? 1 : 0) + ";\n";
  }
  Out += "}\n";
  return Out;
}

/// Parses a descriptor from machine memory at \p Addr.
inline std::vector<ExnHandler> readExnDescriptor(const Memory &Mem,
                                                 uint64_t Addr) {
  std::vector<ExnHandler> Handlers;
  uint64_t Count = Mem.loadBits(Addr, 4);
  // Guard against corrupted descriptors: a handler table larger than this
  // is certainly not one the front end emitted.
  if (Count > 4096)
    return Handlers;
  for (uint64_t I = 0; I < Count; ++I) {
    uint64_t Entry = Addr + 4 + I * 12;
    ExnHandler H;
    H.ExnTag = Mem.loadBits(Entry, 4);
    H.ContNum = static_cast<unsigned>(Mem.loadBits(Entry + 4, 4));
    H.TakesArg = Mem.loadBits(Entry + 8, 4) != 0;
    Handlers.push_back(H);
  }
  return Handlers;
}

} // namespace cmm

#endif // CMM_RTS_EXNFORMAT_H
