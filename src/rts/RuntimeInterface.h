//===- rts/RuntimeInterface.h - The Table 1 interface -----------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The C-- run-time interface of Table 1. "The main service provided by the
/// C-- run-time interface is to present the state of a suspended C--
/// computation ('thread') as a stack of abstract activations. Operations are
/// provided to walk down the stack; to get information from an activation;
/// to make a particular activation become the topmost one; and to change the
/// resumption point of the topmost activation."
///
/// Every mutation is validated against the formal Yield transitions of
/// Section 5.2, so a front-end runtime cannot drive the machine into a state
/// the semantics forbids — attempting to do so makes the machine go wrong
/// with a diagnostic instead.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_RTS_RUNTIMEINTERFACE_H
#define CMM_RTS_RUNTIMEINTERFACE_H

#include "sem/Executor.h"

#include <optional>

namespace cmm {

/// An activation handle, initialized by FirstActivation and advanced by
/// NextActivation.
struct Activation {
  size_t IndexFromTop = 0;
  bool Valid = false;
};

/// Cost counters for the run-time interface itself (the interpretive stack
/// walk of the unwinding technique).
struct RtStats {
  uint64_t ActivationsVisited = 0;
  uint64_t DescriptorReads = 0;
  uint64_t Resumes = 0;
};

/// One front-end runtime's view of one suspended thread.
///
/// Typical use, mirroring the paper's dispatcher (Figure 9):
/// \code
///   CmmRuntime Rt(M);
///   Activation A;
///   Rt.firstActivation(A);
///   do {
///     if (/* descriptor of A handles the exception */) {
///       Rt.setActivation(A);
///       Rt.setUnwindCont(ContNum);
///       *Rt.findContParam(0) = Arg;
///       Rt.resume();
///       break;
///     }
///   } while (Rt.nextActivation(A));
/// \endcode
class CmmRuntime {
public:
  explicit CmmRuntime(Executor &T) : T(T) {}

  /// FirstActivation(t, &a): sets \p A to the "currently executing"
  /// activation of the thread — the activation suspended at the call to
  /// yield. Returns false when the thread is not suspended.
  bool firstActivation(Activation &A);

  /// NextActivation(&a): mutates \p A to point to the activation to which
  /// \p A will return (normally its caller). The walk restores callee-saves
  /// values automatically (each frame carries its saved environment).
  /// Returns false at the bottom of the stack.
  bool nextActivation(Activation &A);

  /// GetDescriptor(a, n): the n'th static descriptor associated with the
  /// call site at which \p A is suspended, or nullopt when absent.
  std::optional<Value> getDescriptor(const Activation &A, unsigned N);

  /// SetActivation(t, a): arranges for the thread to resume execution with
  /// activation \p A (activations above it will be unwound at Resume; each
  /// must be suspended at a call annotated `also aborts`).
  bool setActivation(const Activation &A);

  /// SetUnwindCont(t, n): arranges to resume by unwinding to the n'th
  /// continuation in the `also unwinds to` list of the call site of the
  /// activation with which the thread is set to resume.
  bool setUnwindCont(unsigned N);

  /// SetCutToCont(t, k): arranges to resume by cutting the stack to
  /// continuation value \p K.
  bool setCutToCont(Value K);

  /// FindContParam(t, n): a pointer to the location in which the n'th
  /// parameter of the currently-set continuation will be passed, or null
  /// when no continuation with that many parameters is set.
  Value *findContParam(unsigned N);

  /// Resume(t): performs the staged transition. On success the machine is
  /// Running again. On a rule violation the machine goes wrong and this
  /// returns false.
  bool resume();

  /// The number of frames on the abstract stack (for tests and stats).
  size_t stackDepth() const { return T.stackDepth(); }

  /// The procedure owning activation \p A (for diagnostics).
  const IrProc *activationProc(const Activation &A) const;

  /// The call site at which \p A is suspended.
  const CallNode *activationCallSite(const Activation &A) const;

  const RtStats &stats() const { return S; }
  Executor &thread() { return T; }

private:
  /// Call site of the frame the thread is currently staged to resume with.
  const CallNode *targetCallSite() const;
  /// Recomputes the parameter staging area for the current choice.
  void refreshParams();

  Executor &T;
  RtStats S;

  size_t TargetIndex = 0;       ///< frames above this are unwound at resume
  ResumeChoice Choice = ResumeChoice::ret(0); ///< recomputed lazily
  bool ChoiceIsCut = false;
  bool ChoiceIsUnwind = false;
  unsigned ChoiceIndex = 0;
  Value CutValue;
  std::vector<Value> Params;
};

/// Runs \p M until it halts, goes wrong, or yields with no willing handler.
/// \p Handler services each suspension (a front-end runtime); returning
/// false declines, which stops execution with the machine left suspended.
template <typename HandlerFn>
MachineStatus runWithRuntime(Executor &M, HandlerFn Handler,
                             uint64_t MaxSteps = ~uint64_t(0)) {
  while (true) {
    MachineStatus St = M.run(MaxSteps);
    if (St != MachineStatus::Suspended)
      return St;
    if (!Handler(M))
      return MachineStatus::Suspended;
    if (M.status() == MachineStatus::Suspended)
      return MachineStatus::Suspended; // handler did not actually resume
  }
}

} // namespace cmm

#endif // CMM_RTS_RUNTIMEINTERFACE_H
