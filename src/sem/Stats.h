//===- sem/Stats.h - Execution cost counters --------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instrumentation counters. These are the cost model of the reproduction:
/// the paper's claims about the four exception-dispatch techniques
/// (Figure 2) are claims about how these quantities scale, not about cycle
/// counts of a particular CPU.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SEM_STATS_H
#define CMM_SEM_STATS_H

#include <cstdint>

namespace cmm {

/// Counters accumulated by a Machine while it runs.
struct Stats {
  uint64_t Steps = 0;         ///< abstract-machine transitions
  uint64_t Calls = 0;         ///< Call transitions (frames pushed)
  uint64_t Jumps = 0;         ///< Jump transitions (tail calls)
  uint64_t Returns = 0;       ///< Exit transitions (frames popped)
  uint64_t Cuts = 0;          ///< successful cut-to transfers
  uint64_t FramesCutOver = 0; ///< frames discarded by cuts (constant-time on
                              ///< real hardware; counted to show the stack
                              ///< walk the cut avoids)
  uint64_t Yields = 0;        ///< suspensions into the run-time system
  uint64_t UnwindPops = 0;    ///< frames popped by the run-time system
  uint64_t ContsBound = 0;    ///< continuation values created at Entry
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t CalleeSaveMoves = 0; ///< spills/reloads implied by CalleeSaves
  uint64_t MaxStackDepth = 0;

  void reset() { *this = Stats(); }
};

} // namespace cmm

#endif // CMM_SEM_STATS_H
