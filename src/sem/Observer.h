//===- sem/Observer.h - Machine event hooks ---------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MachineObserver hook interface: a null-by-default listener the
/// executor (either backend) notifies about every interesting transition. The uninstrumented
/// hot loop pays exactly one branch-on-pointer per event site; with no
/// observer attached the machine's behaviour and Stats are bit-identical to
/// an unobserved run (tests/ObserverTest.cpp guards this).
///
/// Observers receive the machine *after* the transition completed, so
/// stackDepth(), currentProc() and stats() reflect the post-state. The
/// event vocabulary mirrors the Section 5.2 transitions plus the run-time
///-system actions of Table 1:
///
///   onStep        every counted transition (fires before the switch)
///   onCall        Call: a frame was pushed and the callee entered
///   onJump        Jump: a tail call replaced the current activation
///   onReturn      Exit: a frame was popped, control back in the caller
///   onCut         a successful cut to (same-activation or cross-frame)
///   onCutFrameDiscarded  one frame thrown away while cutting the stack
///   onYield       the machine suspended into the run-time system
///   onUnwindPop   the run-time system popped one frame (Yield unwind rule)
///   onResume      the run-time system restarted the machine
///   onWrong       the machine entered the Wrong state
///
/// The two onDispatch* events are emitted by the src/rts dispatchers (not
/// by the Machine) so traces can tell dispatcher work from mutator work.
///
/// Implementations of observers (trace sinks, profilers) live in src/obs;
/// this header stays in sem so the executors need no dependency on them.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SEM_OBSERVER_H
#define CMM_SEM_OBSERVER_H

#include "sem/Executor.h"

#include <string_view>
#include <vector>

namespace cmm {

/// Listener for Machine transitions. Every callback has an empty default
/// body so concrete observers override only what they need.
class MachineObserver {
public:
  virtual ~MachineObserver() = default;

  /// The machine entered \p Entry via start(). Fires once per start().
  virtual void onStart(const Executor &M, const IrProc *Entry) {
    (void)M;
    (void)Entry;
  }

  /// The machine reached Halted (normal Exit with an empty stack).
  virtual void onHalt(const Executor &M) { (void)M; }

  /// One counted transition is about to execute with control at \p N.
  /// Yield suspensions are not steps (the paper's cost model) and do not
  /// fire this; they fire onYield instead.
  virtual void onStep(const Executor &M, const Node *N) {
    (void)M;
    (void)N;
  }

  /// A Call transition completed: \p Site in \p Caller pushed a frame and
  /// entered \p Callee.
  virtual void onCall(const Executor &M, const CallNode *Site,
                      const IrProc *Caller, const IrProc *Callee) {
    (void)M;
    (void)Site;
    (void)Caller;
    (void)Callee;
  }

  /// A Jump transition completed: \p Caller tail-called \p Callee.
  virtual void onJump(const Executor &M, const JumpNode *Site,
                      const IrProc *Caller, const IrProc *Callee) {
    (void)M;
    (void)Site;
    (void)Caller;
    (void)Callee;
  }

  /// An Exit transition completed: \p Callee returned through \p Site back
  /// into \p Caller. \p ContIndex is the return continuation chosen
  /// (the i of return <i/n>; 0 is the normal return).
  virtual void onReturn(const Executor &M, const CallNode *Site,
                        const IrProc *Callee, const IrProc *Caller,
                        unsigned ContIndex) {
    (void)M;
    (void)Site;
    (void)Callee;
    (void)Caller;
    (void)ContIndex;
  }

  /// One frame, suspended at \p Site of \p Owner, was discarded while
  /// cutting the stack. Fires once per discarded frame, before onCut.
  virtual void onCutFrameDiscarded(const Executor &M, const CallNode *Site,
                                   const IrProc *Owner) {
    (void)M;
    (void)Site;
    (void)Owner;
  }

  /// A cut to completed. \p From is the cut to node, or null when the cut
  /// was staged by the run-time system (SetCutToCont). \p Target is the
  /// procedure owning the continuation. \p FramesDiscarded frames were
  /// thrown away (0 for a cut to a continuation of the current
  /// activation, flagged by \p SameActivation).
  virtual void onCut(const Executor &M, const CutToNode *From,
                     const IrProc *Target, uint64_t FramesDiscarded,
                     bool SameActivation) {
    (void)M;
    (void)From;
    (void)Target;
    (void)FramesDiscarded;
    (void)SameActivation;
  }

  /// The machine suspended at a Yield; the yield arguments are in
  /// M.argArea().
  virtual void onYield(const Executor &M) { (void)M; }

  /// The run-time system popped the frame suspended at \p Site of
  /// \p Owner (the Yield unwind rule; requires `also aborts`).
  /// \p Resumed is false for SetActivation-style pops that discard the
  /// frame, true for the final pop of an unwinding Resume, where control
  /// continues in this very frame at its `also unwinds to` continuation.
  virtual void onUnwindPop(const Executor &M, const CallNode *Site,
                           const IrProc *Owner, bool Resumed) {
    (void)M;
    (void)Site;
    (void)Owner;
    (void)Resumed;
  }

  /// The run-time system resumed the machine by Return or Unwind (a
  /// resumption by Cut fires onCut instead). \p Index picks the
  /// continuation in the bundle's respective list.
  virtual void onResume(const Executor &M, ResumeChoice::Kind K,
                        unsigned Index) {
    (void)M;
    (void)K;
    (void)Index;
  }

  /// The machine has gone wrong.
  virtual void onWrong(const Executor &M, const std::string &Reason,
                       SourceLoc Loc) {
    (void)M;
    (void)Reason;
    (void)Loc;
  }

  /// A front-end dispatcher began servicing the current suspension.
  /// Emitted by src/rts, not by the Machine.
  virtual void onDispatchBegin(const Executor &M, std::string_view Dispatcher,
                               uint64_t Tag) {
    (void)M;
    (void)Dispatcher;
    (void)Tag;
  }

  /// The dispatcher finished; \p ActivationsVisited is its interpretive
  /// stack-walk cost (0 for constant-time dispatchers).
  virtual void onDispatchEnd(const Executor &M, std::string_view Dispatcher,
                             bool Handled, uint64_t ActivationsVisited) {
    (void)M;
    (void)Dispatcher;
    (void)Handled;
    (void)ActivationsVisited;
  }
};

/// Fans one event stream out to several observers (e.g. a TraceSink and a
/// Profiler at once). Order of notification is the order of addition.
class MultiObserver final : public MachineObserver {
public:
  void add(MachineObserver *O) {
    if (O)
      Obs.push_back(O);
  }
  bool empty() const { return Obs.empty(); }
  size_t size() const { return Obs.size(); }
  /// The sole observer when size() == 1, so callers can skip the fan-out
  /// indirection entirely; null when empty.
  MachineObserver *front() const { return Obs.empty() ? nullptr : Obs[0]; }

  void onStart(const Executor &M, const IrProc *Entry) override {
    for (MachineObserver *O : Obs)
      O->onStart(M, Entry);
  }
  void onHalt(const Executor &M) override {
    for (MachineObserver *O : Obs)
      O->onHalt(M);
  }
  void onStep(const Executor &M, const Node *N) override {
    for (MachineObserver *O : Obs)
      O->onStep(M, N);
  }
  void onCall(const Executor &M, const CallNode *Site, const IrProc *Caller,
              const IrProc *Callee) override {
    for (MachineObserver *O : Obs)
      O->onCall(M, Site, Caller, Callee);
  }
  void onJump(const Executor &M, const JumpNode *Site, const IrProc *Caller,
              const IrProc *Callee) override {
    for (MachineObserver *O : Obs)
      O->onJump(M, Site, Caller, Callee);
  }
  void onReturn(const Executor &M, const CallNode *Site, const IrProc *Callee,
                const IrProc *Caller, unsigned ContIndex) override {
    for (MachineObserver *O : Obs)
      O->onReturn(M, Site, Callee, Caller, ContIndex);
  }
  void onCutFrameDiscarded(const Executor &M, const CallNode *Site,
                           const IrProc *Owner) override {
    for (MachineObserver *O : Obs)
      O->onCutFrameDiscarded(M, Site, Owner);
  }
  void onCut(const Executor &M, const CutToNode *From, const IrProc *Target,
             uint64_t FramesDiscarded, bool SameActivation) override {
    for (MachineObserver *O : Obs)
      O->onCut(M, From, Target, FramesDiscarded, SameActivation);
  }
  void onYield(const Executor &M) override {
    for (MachineObserver *O : Obs)
      O->onYield(M);
  }
  void onUnwindPop(const Executor &M, const CallNode *Site,
                   const IrProc *Owner, bool Resumed) override {
    for (MachineObserver *O : Obs)
      O->onUnwindPop(M, Site, Owner, Resumed);
  }
  void onResume(const Executor &M, ResumeChoice::Kind K,
                unsigned Index) override {
    for (MachineObserver *O : Obs)
      O->onResume(M, K, Index);
  }
  void onWrong(const Executor &M, const std::string &Reason,
               SourceLoc Loc) override {
    for (MachineObserver *O : Obs)
      O->onWrong(M, Reason, Loc);
  }
  void onDispatchBegin(const Executor &M, std::string_view Dispatcher,
                       uint64_t Tag) override {
    for (MachineObserver *O : Obs)
      O->onDispatchBegin(M, Dispatcher, Tag);
  }
  void onDispatchEnd(const Executor &M, std::string_view Dispatcher,
                     bool Handled, uint64_t ActivationsVisited) override {
    for (MachineObserver *O : Obs)
      O->onDispatchEnd(M, Dispatcher, Handled, ActivationsVisited);
  }

private:
  std::vector<MachineObserver *> Obs;
};

} // namespace cmm

#endif // CMM_SEM_OBSERVER_H
