//===- sem/Machine.h - The Abstract C-- machine -----------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The operational semantics of Section 5.2 as an executable machine. The
/// mutable state has the paper's seven components:
///
///   ⟨ p, ρ, σ, uid, M, A, S ⟩
///
///   p    the control (current node)            — Control
///   ρ    the local environment                 — Rho
///   σ    variables in callee-saves registers   — Sigma
///   uid  unique id of the current activation   — Uid
///   M    memory                                — Mem
///   A    the argument-passing area             — A
///   S    the stack of suspended activations    — Stack
///
/// The machine "goes wrong" exactly where the paper says an execution has no
/// permitted transition: invoking a dead continuation (uid check), cutting
/// past a call site without `also aborts`, cutting to a continuation not
/// listed in the call site's `also cuts to`, a return <i/n> arity mismatch,
/// or an unspecified primitive failure such as %divu(x, 0).
///
/// The underspecified Yield transitions are exposed as the rtUnwindTop /
/// rtResume operations, on which src/rts builds the Table 1 run-time
/// interface; every run-time-system action is validated against the formal
/// Yield rules, so no front-end runtime can express an unsound transition.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SEM_MACHINE_H
#define CMM_SEM_MACHINE_H

#include "ir/Ir.h"
#include "sem/Env.h"
#include "sem/Executor.h"
#include "sem/Memory.h"
#include "sem/Stats.h"
#include "sem/Value.h"

#include <optional>
#include <string>
#include <vector>

namespace cmm {

/// One suspended activation on the abstract stack: (Γ, ρ, σ, uid) plus the
/// procedure it belongs to. Γ is the continuation bundle of the call site at
/// which the activation is suspended.
struct Frame {
  const CallNode *CallSite = nullptr;
  const IrProc *Proc = nullptr;
  Env SavedEnv;
  std::vector<Symbol> SavedSigma;
  uint64_t Uid = 0;
};

/// The executable abstract machine: the reference tree-walking executor.
/// One Machine is one C-- thread.
class Machine final : public Executor {
public:
  explicit Machine(const IrProgram &Prog);

  std::string_view backendName() const override { return "walk"; }

  /// Initializes memory from the program image and enters \p ProcName with
  /// \p Args in the argument-passing area.
  void start(std::string_view ProcName, std::vector<Value> Args = {}) override;
  void start(Symbol ProcName, std::vector<Value> Args = {});

  MachineStatus status() const override { return St; }

  /// Performs one transition. Returns false when the machine is not
  /// Running (suspended machines must be resumed through rtResume).
  bool step() override { return Obs ? stepImpl<true>() : stepImpl<false>(); }

  /// Steps until the machine stops running or \p MaxSteps transitions have
  /// executed; returns the final status (Running on step-limit).
  MachineStatus run(uint64_t MaxSteps = ~uint64_t(0)) override;

  /// The argument-passing area A: procedure results after Halted, the
  /// arguments of the yield(...) call while Suspended.
  const std::vector<Value> &argArea() const override { return A; }

  /// Why the machine went wrong (valid after status() == Wrong).
  const std::string &wrongReason() const override { return WrongReason; }
  SourceLoc wrongLoc() const override { return WrongLoc; }

  const Stats &stats() const override { return S; }
  void resetStats() override { S.reset(); }

  /// Attaches \p O (null detaches). The machine does not own the observer;
  /// it must outlive the run. With no observer attached every event site
  /// costs exactly one branch-on-pointer, and behaviour is identical to an
  /// unobserved machine.
  void setObserver(MachineObserver *O) override { Obs = O; }
  MachineObserver *observer() const override { return Obs; }

  Memory &memory() override { return Mem; }
  const Memory &memory() const override { return Mem; }
  const IrProgram &program() const override { return Prog; }

  /// Global register access (globals model machine registers shared by all
  /// activations; they are never callee-saves and unaffected by cuts).
  std::optional<Value> getGlobal(std::string_view Name) const override;
  void setGlobal(std::string_view Name, const Value &V) override;

  /// The Code value denoting \p P.
  Value codeValue(const IrProc *P) const override;

  /// Decodes a value as a continuation; null when it is not one.
  const ContRecord *decodeCont(const Value &V) const override;

  //===--------------------------------------------------------------------===//
  // Substrate for the run-time system (Table 1 lives in src/rts)
  //===--------------------------------------------------------------------===//

  size_t stackDepth() const override { return Stack.size(); }
  /// \p I = 0 is the topmost suspended activation.
  const Frame &frameFromTop(size_t I) const {
    return Stack[Stack.size() - 1 - I];
  }
  const CallNode *frameCallSite(size_t I) const override {
    return frameFromTop(I).CallSite;
  }
  const IrProc *frameProc(size_t I) const override {
    return frameFromTop(I).Proc;
  }
  const IrProc *currentProc() const override { return CurProc; }
  const Node *control() const { return Control; }

  /// Yield unwind rule: pops \p Count frames; every popped frame's call site
  /// must be annotated `also aborts`, else the machine goes wrong. Only
  /// legal while Suspended.
  bool rtUnwindTop(size_t Count) override;

  /// Yield resume rules: pops the top frame and transfers control to the
  /// chosen continuation of its bundle (or cuts the stack for Kind::Cut),
  /// passing \p Params through the argument area. Only legal while
  /// Suspended. Returns false (machine Wrong) on any rule violation.
  bool rtResume(const ResumeChoice &Choice, std::vector<Value> Params) override;

private:
  /// The transition engine. Observed instantiates the event-emission sites;
  /// the unobserved instantiation carries zero extra branches, so an
  /// uninstrumented run pays nothing per step (the run() hot loop picks the
  /// instantiation once, outside the loop).
  template <bool Observed> bool stepImpl();

  void goWrong(std::string Reason, SourceLoc Loc);
  void pushFrame(const CallNode *Site);
  void enterProc(const IrProc *P, SourceLoc Loc);
  bool doCutTo(const Value &ContVal, const CutToNode *FromNode);
  const ContRecord *requireCont(const Value &V, SourceLoc Loc);
  uint64_t newCont(Node *Target, uint64_t Uid, const IrProc *Proc);
  void bindVar(Symbol V, const Value &Val);

  std::optional<Value> evalExpr(const Expr *E);
  std::optional<Value> evalName(const NameExpr *N);
  std::optional<Value> evalBinary(const BinaryExpr *B);
  std::optional<Value> evalUnary(const UnaryExpr *U);
  std::optional<Value> evalPrim(const PrimExpr *P);

  const IrProgram &Prog;

  // The seven state components.
  const Node *Control = nullptr;
  Env Rho;
  std::vector<Symbol> Sigma;
  uint64_t Uid = 0;
  Memory Mem;
  std::vector<Value> A;
  std::vector<Frame> Stack;

  // Bookkeeping beyond the formal state.
  const IrProc *CurProc = nullptr;
  Env GlobalEnv;
  uint64_t NextUid = 1;
  std::vector<ContRecord> ContTable;
  std::unordered_map<const IrProc *, uint64_t> CodeIndex;
  std::vector<const IrProc *> CodeTable;
  MachineStatus St = MachineStatus::Idle;
  std::string WrongReason;
  SourceLoc WrongLoc;
  Stats S;
  MachineObserver *Obs = nullptr;
};

} // namespace cmm

#endif // CMM_SEM_MACHINE_H
