//===- sem/Memory.h - Byte-addressed memory ---------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory M of the abstract machine: sparse, byte-addressed,
/// little-endian (the "native byte order of the target machine",
/// Section 5.1). Reads of never-written bytes yield zero.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SEM_MEMORY_H
#define CMM_SEM_MEMORY_H

#include "sem/Value.h"

#include <array>
#include <bit>
#include <cstring>
#include <unordered_map>

namespace cmm {

/// Sparse paged memory. A one-entry page cache makes the repeated
/// same-page accesses of real programs a pointer compare instead of a hash
/// lookup; the cache is pure optimization state (unordered_map node
/// addresses are stable, and it is dropped on copy and move).
///
/// NOT thread-safe, not even for concurrent reads: the `mutable` page
/// cache means every const load may write CachedIdx/CachedPage, so two
/// threads reading one Memory race on those fields (a torn pair can make
/// findPage return the wrong page's bytes, not just a stale pointer).
/// This is deliberate — one Memory belongs to one executor, one executor
/// is one C-- thread, and the batch engine (engine/Engine.h) preserves
/// the invariant by giving every job a private executor. Audited for the
/// engine's thread pool: nothing shared across jobs reaches a Memory, so
/// the cache needs no locks and stays a plain pointer compare on the
/// machine's hottest path.
class Memory {
public:
  /// Allocation granularity: pageCount() * PageSize is the footprint the
  /// engine's memory quota (engine/RunBudget.h) charges a job for.
  static constexpr uint64_t PageSize = 4096;

  Memory() = default;
  Memory(const Memory &O) : Pages(O.Pages) {}
  Memory(Memory &&O) noexcept : Pages(std::move(O.Pages)) {}
  Memory &operator=(const Memory &O) {
    Pages = O.Pages;
    dropCache();
    return *this;
  }
  Memory &operator=(Memory &&O) noexcept {
    Pages = std::move(O.Pages);
    dropCache();
    return *this;
  }

  uint8_t loadByte(uint64_t Addr) const {
    const std::array<uint8_t, PageSize> *P = findPage(Addr / PageSize);
    return P ? (*P)[Addr % PageSize] : 0;
  }

  void storeByte(uint64_t Addr, uint8_t V) {
    page(Addr)[Addr % PageSize] = V;
  }

  /// loadtype(M, addr) for bits values: little-endian.
  uint64_t loadBits(uint64_t Addr, unsigned Bytes) const {
    uint64_t Off = Addr % PageSize;
    if (Off + Bytes <= PageSize) { // one page: a single lookup
      const std::array<uint8_t, PageSize> *P = findPage(Addr / PageSize);
      if (!P)
        return 0; // never-written bytes read as zero
      // Little-endian hosts can read a value in one fixed-size memcpy
      // (the byte loop IS little-endian assembly — it compiles to a plain
      // load); others assemble explicitly. Widths are 8/16/32/64 bits.
      if constexpr (std::endian::native == std::endian::little) {
        const uint8_t *Src = P->data() + Off;
        switch (Bytes) {
        case 1:
          return *Src;
        case 2: {
          uint16_t V;
          std::memcpy(&V, Src, 2);
          return V;
        }
        case 4: {
          uint32_t V;
          std::memcpy(&V, Src, 4);
          return V;
        }
        case 8: {
          uint64_t V;
          std::memcpy(&V, Src, 8);
          return V;
        }
        default:
          break; // fall through to the byte loop
        }
      }
      uint64_t V = 0;
      for (unsigned I = 0; I < Bytes; ++I)
        V |= uint64_t((*P)[Off + I]) << (8 * I);
      return V;
    }
    uint64_t V = 0;
    for (unsigned I = 0; I < Bytes; ++I)
      V |= uint64_t(loadByte(Addr + I)) << (8 * I);
    return V;
  }

  /// storetype(M, addr, v) for bits values.
  void storeBits(uint64_t Addr, unsigned Bytes, uint64_t V) {
    uint64_t Off = Addr % PageSize;
    if (Off + Bytes <= PageSize) { // one page: a single lookup
      std::array<uint8_t, PageSize> &P = page(Addr);
      if constexpr (std::endian::native == std::endian::little) {
        uint8_t *Dst = P.data() + Off;
        switch (Bytes) {
        case 1:
          *Dst = static_cast<uint8_t>(V);
          return;
        case 2: {
          uint16_t T = static_cast<uint16_t>(V);
          std::memcpy(Dst, &T, 2);
          return;
        }
        case 4: {
          uint32_t T = static_cast<uint32_t>(V);
          std::memcpy(Dst, &T, 4);
          return;
        }
        case 8:
          std::memcpy(Dst, &V, 8);
          return;
        default:
          break; // fall through to the byte loop
        }
      }
      for (unsigned I = 0; I < Bytes; ++I)
        P[Off + I] = static_cast<uint8_t>(V >> (8 * I));
      return;
    }
    for (unsigned I = 0; I < Bytes; ++I)
      storeByte(Addr + I, static_cast<uint8_t>(V >> (8 * I)));
  }

  /// Bulk byte store: the data-segment image loader's path. Equivalent to
  /// storeByte over [Addr, Addr+N), but copies page-sized chunks, and skips
  /// the zero-fill of a freshly created page the chunk fully overwrites —
  /// per-machine-start image installation is a few memcpys, not a per-byte
  /// hash-cache probe (it dominated the short-workload benchmarks).
  void storeBytes(uint64_t Addr, const uint8_t *Src, size_t N) {
    while (N > 0) {
      uint64_t Idx = Addr / PageSize, Off = Addr % PageSize;
      size_t Chunk = std::min<uint64_t>(N, PageSize - Off);
      auto [It, Fresh] = Pages.try_emplace(Idx);
      if (Fresh && Chunk != PageSize)
        It->second.fill(0);
      std::memcpy(It->second.data() + Off, Src, Chunk);
      CachedIdx = Idx;
      CachedPage = &It->second;
      Addr += Chunk;
      Src += Chunk;
      N -= Chunk;
    }
  }

  double loadFloat(uint64_t Addr, unsigned Bytes) const {
    if (Bytes == 4) {
      uint32_t Raw = static_cast<uint32_t>(loadBits(Addr, 4));
      float F;
      std::memcpy(&F, &Raw, 4);
      return F;
    }
    uint64_t Raw = loadBits(Addr, 8);
    double D;
    std::memcpy(&D, &Raw, 8);
    return D;
  }

  void storeFloat(uint64_t Addr, unsigned Bytes, double V) {
    if (Bytes == 4) {
      float F = static_cast<float>(V);
      uint32_t Raw;
      std::memcpy(&Raw, &F, 4);
      storeBits(Addr, 4, Raw);
      return;
    }
    uint64_t Raw;
    std::memcpy(&Raw, &V, 8);
    storeBits(Addr, 8, Raw);
  }

  size_t pageCount() const { return Pages.size(); }

private:
  static constexpr uint64_t NoPage = ~uint64_t(0);

  void dropCache() const {
    CachedIdx = NoPage;
    CachedPage = nullptr;
  }

  /// The page holding \p Idx, or null when it was never written. Fills the
  /// cache; node addresses survive rehashing, so a hit stays valid until
  /// the map itself is replaced. The cache hit is the only inlined path:
  /// real programs hammer one page, and keeping the hash probe out of line
  /// leaves the dispatch loops' load/store handlers a compare and a branch.
  std::array<uint8_t, PageSize> *findPage(uint64_t Idx) const {
    if (Idx == CachedIdx) [[likely]]
      return CachedPage;
    return findPageSlow(Idx);
  }

  std::array<uint8_t, PageSize> &page(uint64_t Addr) {
    uint64_t Idx = Addr / PageSize;
    if (Idx == CachedIdx) [[likely]]
      return *CachedPage;
    return pageSlow(Idx);
  }

#if defined(__GNUC__) || defined(__clang__)
  __attribute__((noinline))
#endif
  std::array<uint8_t, PageSize> *findPageSlow(uint64_t Idx) const {
    auto It = Pages.find(Idx);
    if (It == Pages.end())
      return nullptr;
    CachedIdx = Idx;
    CachedPage = const_cast<std::array<uint8_t, PageSize> *>(&It->second);
    return CachedPage;
  }

#if defined(__GNUC__) || defined(__clang__)
  __attribute__((noinline))
#endif
  std::array<uint8_t, PageSize> &pageSlow(uint64_t Idx) {
    auto [It, Fresh] = Pages.try_emplace(Idx);
    if (Fresh)
      It->second.fill(0);
    CachedIdx = Idx;
    CachedPage = &It->second;
    return It->second;
  }

  std::unordered_map<uint64_t, std::array<uint8_t, PageSize>> Pages;
  mutable uint64_t CachedIdx = NoPage;
  mutable std::array<uint8_t, PageSize> *CachedPage = nullptr;
};

} // namespace cmm

#endif // CMM_SEM_MEMORY_H
