//===- sem/Memory.h - Byte-addressed memory ---------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory M of the abstract machine: sparse, byte-addressed,
/// little-endian (the "native byte order of the target machine",
/// Section 5.1). Reads of never-written bytes yield zero.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SEM_MEMORY_H
#define CMM_SEM_MEMORY_H

#include "sem/Value.h"

#include <array>
#include <cstring>
#include <unordered_map>

namespace cmm {

/// Sparse paged memory.
class Memory {
public:
  uint8_t loadByte(uint64_t Addr) const {
    auto It = Pages.find(Addr / PageSize);
    if (It == Pages.end())
      return 0;
    return It->second[Addr % PageSize];
  }

  void storeByte(uint64_t Addr, uint8_t V) {
    page(Addr)[Addr % PageSize] = V;
  }

  /// loadtype(M, addr) for bits values: little-endian.
  uint64_t loadBits(uint64_t Addr, unsigned Bytes) const {
    uint64_t V = 0;
    for (unsigned I = 0; I < Bytes; ++I)
      V |= uint64_t(loadByte(Addr + I)) << (8 * I);
    return V;
  }

  /// storetype(M, addr, v) for bits values.
  void storeBits(uint64_t Addr, unsigned Bytes, uint64_t V) {
    for (unsigned I = 0; I < Bytes; ++I)
      storeByte(Addr + I, static_cast<uint8_t>(V >> (8 * I)));
  }

  double loadFloat(uint64_t Addr, unsigned Bytes) const {
    if (Bytes == 4) {
      uint32_t Raw = static_cast<uint32_t>(loadBits(Addr, 4));
      float F;
      std::memcpy(&F, &Raw, 4);
      return F;
    }
    uint64_t Raw = loadBits(Addr, 8);
    double D;
    std::memcpy(&D, &Raw, 8);
    return D;
  }

  void storeFloat(uint64_t Addr, unsigned Bytes, double V) {
    if (Bytes == 4) {
      float F = static_cast<float>(V);
      uint32_t Raw;
      std::memcpy(&Raw, &F, 4);
      storeBits(Addr, 4, Raw);
      return;
    }
    uint64_t Raw;
    std::memcpy(&Raw, &V, 8);
    storeBits(Addr, 8, Raw);
  }

  size_t pageCount() const { return Pages.size(); }

private:
  static constexpr uint64_t PageSize = 4096;

  std::array<uint8_t, PageSize> &page(uint64_t Addr) {
    auto [It, Fresh] = Pages.try_emplace(Addr / PageSize);
    if (Fresh)
      It->second.fill(0);
    return It->second;
  }

  std::unordered_map<uint64_t, std::array<uint8_t, PageSize>> Pages;
};

} // namespace cmm

#endif // CMM_SEM_MEMORY_H
