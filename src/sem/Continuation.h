//===- sem/Continuation.h - First-class continuation handles ----*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Continuation is the first-class handle to a paused C-- thread: the
/// one-shot capability to continue a suspended (or fuel-stopped) executor
/// and run it to its next stopping point under a budget. It packages the
/// Table 1 suspend/resume substrate (Executor::rtResume / rtUnwindTop) plus
/// the budgeted run loop that every consumer used to re-implement — the
/// engine's job runner, its parked sessions, the service's resume-over-wire
/// path, and the green-thread scheduler (src/sched) all ride this type now.
///
/// Semantics, mirroring the paper's one-shot continuations:
///
///   - capture(M) takes the handle for M's current pause: Suspended (at a
///     Yield, resumable through a ResumeChoice) or Paused (stopped on fuel /
///     deadline / memory while Running, resumable by just continuing).
///   - resume(...) consumes the handle (state() becomes Spent) and runs the
///     executor until it halts, goes wrong, suspends again, or exhausts the
///     attached ResumeBudget. A thread that suspends again yields a fresh
///     handle via another capture — exactly the paper's discipline that
///     every continuation is cut to / returned through at most once.
///   - The handle is move-only and does not own the executor; like the
///     executor itself it must be driven by one host thread at a time,
///     though capture and resume may happen on different threads (the
///     scheduler migrates parked threads across pool workers this way).
///
/// The budget types and the budgeted run loop live here (not in engine/) so
/// that anything holding an Executor can use them; engine/RunBudget.h keeps
/// aliases for its old names.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SEM_CONTINUATION_H
#define CMM_SEM_CONTINUATION_H

#include "sem/Executor.h"
#include "sem/Memory.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

namespace cmm {

/// Budgets for one resume segment (resume-to-next-stop). Zero / all-ones
/// fields disable their check.
struct ResumeBudget {
  /// Abstract-machine transitions for this segment. Exhaustion leaves the
  /// executor Running (a Paused continuation can be captured from it).
  uint64_t MaxSteps = ~uint64_t(0);
  /// Wall-clock deadline in milliseconds from segment start; 0 disables.
  double DeadlineMillis = 0;
  /// Memory quota in bytes (page-granular: an executor's footprint is its
  /// page count times Memory::PageSize); 0 disables.
  uint64_t MaxMemoryBytes = 0;
};

/// How a budgeted segment stopped early (all false when it ran to a
/// terminal status or out of fuel).
struct ResumeOutcome {
  bool TimedOut = false;    ///< DeadlineMillis exceeded
  bool MemExceeded = false; ///< MaxMemoryBytes exceeded
};

namespace detail {

inline double millisSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

inline uint64_t memoryBytesOf(const Executor &M) {
  return uint64_t(M.memory().pageCount()) * Memory::PageSize;
}

/// The budgeted suspend/resume loop: run \p M under \p B, slicing execution
/// into \p SliceSteps-transition chunks whenever a deadline or memory quota
/// is armed (so enforcement granularity is one slice), and consulting the
/// budgets between suspend/resume cycles as well (a yield-heavy program
/// whose handler always resumes never completes a Running slice). \p
/// Handler services one suspension and returns true when the executor was
/// resumed. Increments \p ResumeCycles once per serviced yield.
template <typename HandlerFn>
MachineStatus runBudgeted(Executor &M, HandlerFn Handler, const ResumeBudget &B,
                          uint64_t SliceSteps, ResumeOutcome &Out,
                          uint64_t &ResumeCycles) {
  auto T0 = std::chrono::steady_clock::now();
  const bool Sliced = B.DeadlineMillis > 0 || B.MaxMemoryBytes > 0;
  auto overBudget = [&] {
    if (B.DeadlineMillis > 0 && millisSince(T0) >= B.DeadlineMillis) {
      Out.TimedOut = true;
      return true;
    }
    if (B.MaxMemoryBytes > 0 && memoryBytesOf(M) > B.MaxMemoryBytes) {
      Out.MemExceeded = true;
      return true;
    }
    return false;
  };
  for (;;) {
    // Checked here as well as inside the slice loop: the suspend/resume
    // cycle itself must consult the budgets.
    if (overBudget())
      return MachineStatus::Running;
    uint64_t Remaining = B.MaxSteps;
    MachineStatus St;
    for (;;) {
      uint64_t Slice = Remaining;
      if (Sliced)
        Slice = std::min<uint64_t>(Slice, SliceSteps);
      St = M.run(Slice);
      if (St != MachineStatus::Running)
        break;
      Remaining -= Slice;
      if (Remaining == 0)
        return MachineStatus::Running; // fuel exhausted
      if (overBudget())
        return MachineStatus::Running;
    }
    if (St != MachineStatus::Suspended)
      return St;
    if (!Handler(M))
      return MachineStatus::Suspended; // unhandled yield
    if (M.status() == MachineStatus::Suspended)
      return MachineStatus::Suspended; // handler did not actually resume
    ++ResumeCycles; // one serviced yield, machine running again
  }
}

} // namespace detail

/// The one-shot handle to a paused executor. See the file comment for the
/// capture/resume discipline.
class Continuation {
public:
  enum class State : uint8_t {
    Empty,     ///< default-constructed or moved-from
    Suspended, ///< captured at a Yield; resume via a ResumeChoice
    Paused,    ///< captured mid-run (fuel/deadline/memory); resume continues
    Spent,     ///< already resumed; this capability is used up
  };

  /// What one resume produced: where the executor now stands, plus the
  /// budget-stop flags for a Running status.
  struct Result {
    MachineStatus Status = MachineStatus::Idle;
    ResumeOutcome Outcome;
    /// True when the control transfer itself happened (the executor ran
    /// again). False when the handle was not resumable or the Table 1
    /// resume was refused as a rule violation (executor Wrong, no
    /// transition executed).
    bool Transferred = false;
  };

  /// Deadline/memory enforcement granularity of the budgeted loop, shared
  /// with Engine::DeadlineSliceSteps.
  static constexpr uint64_t SliceSteps = 1 << 16;

  Continuation() = default;
  Continuation(Continuation &&O) noexcept : M(O.M), St(O.St), B(O.B) {
    O.M = nullptr;
    O.St = State::Empty;
  }
  Continuation &operator=(Continuation &&O) noexcept {
    M = O.M;
    St = O.St;
    B = O.B;
    O.M = nullptr;
    O.St = State::Empty;
    return *this;
  }
  Continuation(const Continuation &) = delete;
  Continuation &operator=(const Continuation &) = delete;

  /// Captures the handle for \p M's current pause: a Suspended handle at a
  /// Yield, a Paused handle for a fuel/deadline/memory stop (status
  /// Running). Any other status yields an Empty handle.
  static Continuation capture(Executor &M) {
    Continuation C;
    switch (M.status()) {
    case MachineStatus::Suspended:
      C.M = &M;
      C.St = State::Suspended;
      break;
    case MachineStatus::Running:
      C.M = &M;
      C.St = State::Paused;
      break;
    default:
      break;
    }
    return C;
  }

  State state() const { return St; }
  /// True when the handle can still be resumed.
  explicit operator bool() const {
    return St == State::Suspended || St == State::Paused;
  }

  /// The underlying executor (argArea() carries the yield request while the
  /// handle is Suspended); null when Empty.
  Executor *executor() const { return M; }

  /// Attaches the budget every subsequent resume runs under (the default
  /// budget is unlimited).
  void setBudget(const ResumeBudget &Budget) { B = Budget; }
  const ResumeBudget &budget() const { return B; }

  /// Resumes with no values: a Suspended handle returns through the normal
  /// return continuation of the suspended call site with zero parameters; a
  /// Paused handle simply continues. Consumes the handle.
  Result resume() {
    if (St == State::Paused) {
      St = State::Spent;
      Result R = runOut();
      R.Transferred = true;
      return R;
    }
    return resume(normalReturn(), {});
  }

  /// Resumes a Suspended handle through the normal return continuation,
  /// passing one value (the shape of `r = yield(...)`). Consumes the handle.
  Result resume(Value V) { return resume(normalReturn(), {V}); }

  /// Resumes a Suspended handle through an explicit Table 1 choice
  /// (return / also-unwinds / cut) with \p Params. Consumes the handle. A
  /// rule violation leaves the executor Wrong with a precise reason, which
  /// is the result. Resuming a non-resumable handle returns its executor's
  /// current status (Idle for Empty) without touching anything.
  Result resume(const ResumeChoice &Choice, std::vector<Value> Params) {
    if (St != State::Suspended)
      return {M ? M->status() : MachineStatus::Idle, {}, false};
    St = State::Spent;
    if (!M->rtResume(Choice, std::move(Params)))
      return {M->status(), {}, false};
    Result R = runOut();
    R.Transferred = true;
    return R;
  }

  /// The Table 1 stack-walk primitive: pops \p Count suspended activations
  /// without executing a transition. The executor stays Suspended on
  /// success — the handle remains usable (unwinding narrows the capture, it
  /// does not consume it). On an un-abortable call site the executor goes
  /// Wrong and the handle is Spent. Only legal on a Suspended handle.
  bool unwindTop(size_t Count) {
    if (St != State::Suspended)
      return false;
    if (!M->rtUnwindTop(Count)) {
      St = State::Spent;
      return false;
    }
    return true;
  }

private:
  ResumeChoice normalReturn() const {
    // The normal return continuation is always the last entry of the
    // suspended call site's returns list (ir/Ir.h).
    unsigned Index = 0;
    if (St == State::Suspended && M->stackDepth() > 0)
      Index = unsigned(M->frameCallSite(0)->Bundle.ReturnsTo.size()) - 1;
    return ResumeChoice::ret(Index);
  }

  Result runOut() {
    Result R;
    uint64_t Cycles = 0; // no handler, so never incremented
    R.Status = detail::runBudgeted(
        *M, [](Executor &) { return false; }, B, SliceSteps, R.Outcome, Cycles);
    return R;
  }

  Executor *M = nullptr;
  State St = State::Empty;
  ResumeBudget B;
};

} // namespace cmm

#endif // CMM_SEM_CONTINUATION_H
