//===- sem/Value.h - Abstract machine values --------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Values of the Abstract C-- machine (Section 5.1): Bits-n k, Code p, and
/// Cont(p, u). Code and Cont values carry stable numeric encodings in
/// reserved address regions so they can round-trip through registers and
/// byte-addressed memory exactly as on a real machine, while the evaluator
/// retains the formal tags needed for side conditions such as the dead-
/// continuation uid check.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SEM_VALUE_H
#define CMM_SEM_VALUE_H

#include "support/Bits.h"
#include "syntax/Type.h"

#include <cstdint>
#include <string>

namespace cmm {

/// Address-space layout of the reference machine. Static data starts at
/// DataBase (ir/Ir.h); procedure "addresses" and continuation values live in
/// their own regions so a Bits value loaded from memory can be decoded back
/// to Code or Cont.
inline constexpr uint64_t CodeBase = 0x40000000;
inline constexpr uint64_t ContBase = 0xC0000000;
inline constexpr uint64_t CodeStride = 16;
inline constexpr uint64_t ContStride = 8;

/// One machine value.
struct Value {
  enum class Kind : uint8_t { Bits, Float, Code, Cont };

  Kind K = Kind::Bits;
  uint8_t Width = 32; ///< bit width for Bits/Float; pointer width otherwise
  uint64_t Raw = 0;   ///< bit pattern / encoded address
  double F = 0;       ///< payload for Float

  static Value bits(unsigned Width, uint64_t V) {
    Value R;
    R.K = Kind::Bits;
    R.Width = static_cast<uint8_t>(Width);
    R.Raw = truncateToWidth(V, Width);
    return R;
  }
  static Value flt(unsigned Width, double V) {
    Value R;
    R.K = Kind::Float;
    R.Width = static_cast<uint8_t>(Width);
    R.F = V;
    return R;
  }
  /// Code value for the procedure with table index \p ProcIndex.
  static Value code(uint64_t ProcIndex) {
    Value R;
    R.K = Kind::Code;
    R.Width = static_cast<uint8_t>(TargetInfo::nativeCode().Width);
    R.Raw = CodeBase + ProcIndex * CodeStride;
    return R;
  }
  /// Continuation value for the handle with table index \p Handle.
  static Value cont(uint64_t Handle) {
    Value R;
    R.K = Kind::Cont;
    R.Width = static_cast<uint8_t>(TargetInfo::nativePointer().Width);
    R.Raw = ContBase + Handle * ContStride;
    return R;
  }

  bool isBits() const { return K == Kind::Bits; }
  bool isFloat() const { return K == Kind::Float; }
  bool isCode() const { return K == Kind::Code; }
  bool isCont() const { return K == Kind::Cont; }

  /// True when the bit pattern (for Bits/Code/Cont) is in the code region.
  static bool rawIsCode(uint64_t Raw) {
    return Raw >= CodeBase && Raw < DataEndOfCode;
  }
  static bool rawIsCont(uint64_t Raw) { return Raw >= ContBase; }

  uint64_t codeIndex() const { return (Raw - CodeBase) / CodeStride; }
  uint64_t contHandle() const { return (Raw - ContBase) / ContStride; }

  /// Truth of a value as a branch condition: nonzero bits.
  bool isTruthy() const { return isBits() ? Raw != 0 : Raw != 0 || F != 0; }

  std::string str() const {
    switch (K) {
    case Kind::Bits:
      return "bits" + std::to_string(unsigned(Width)) + " " +
             std::to_string(Raw);
    case Kind::Float:
      return "float" + std::to_string(unsigned(Width)) + " " +
             std::to_string(F);
    case Kind::Code:
      return "code@" + std::to_string(Raw);
    case Kind::Cont:
      return "cont@" + std::to_string(Raw);
    }
    return "<value>";
  }

  friend bool operator==(const Value &X, const Value &Y) {
    if (X.K != Y.K || X.Width != Y.Width)
      return false;
    return X.isFloat() ? X.F == Y.F : X.Raw == Y.Raw;
  }

private:
  static constexpr uint64_t DataEndOfCode = ContBase;
};

} // namespace cmm

#endif // CMM_SEM_VALUE_H
