//===- sem/Machine.cpp ----------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "sem/Machine.h"

#include "sem/Observer.h"
#include "support/Assert.h"
#include "support/Casting.h"
#include "syntax/PrimOps.h"

#include <algorithm>

using namespace cmm;

Machine::Machine(const IrProgram &Prog) : Prog(Prog) {
  CodeTable.reserve(Prog.Procs.size());
  for (const auto &P : Prog.Procs) {
    CodeIndex.emplace(P.get(), CodeTable.size());
    CodeTable.push_back(P.get());
  }
}

void Machine::goWrong(std::string Reason, SourceLoc Loc) {
  if (St == MachineStatus::Wrong)
    return; // keep the first reason
  St = MachineStatus::Wrong;
  WrongReason = std::move(Reason);
  WrongLoc = Loc;
  if (Obs)
    Obs->onWrong(*this, WrongReason, WrongLoc);
}

Value Machine::codeValue(const IrProc *P) const {
  auto It = CodeIndex.find(P);
  assert(It != CodeIndex.end() && "procedure not in this program");
  return Value::code(It->second);
}

void Machine::start(std::string_view ProcName, std::vector<Value> Args) {
  Symbol S = Prog.Names->lookup(ProcName);
  if (!S) {
    goWrong("unknown start procedure '" + std::string(ProcName) + "'",
            SourceLoc());
    return;
  }
  start(S, std::move(Args));
}

void Machine::start(Symbol ProcName, std::vector<Value> Args) {
  // Reset all mutable state so a Machine can be restarted.
  Rho.clear();
  Sigma.clear();
  Stack.clear();
  ContTable.clear();
  GlobalEnv.clear();
  Mem = Memory();
  NextUid = 1;
  WrongReason.clear();
  St = MachineStatus::Running;

  // Load the static data image (bulk: per-page memcpy, not per-byte).
  if (!Prog.Image.Bytes.empty())
    Mem.storeBytes(Prog.Image.Base, Prog.Image.Bytes.data(),
                   Prog.Image.Bytes.size());
  for (const DataImage::Reloc &R : Prog.Image.Relocs) {
    uint64_t V = 0;
    if (const IrProc *P = Prog.findProc(R.Target)) {
      V = codeValue(P).Raw;
    } else {
      auto It = Prog.DataAddrs.find(R.Target);
      if (It == Prog.DataAddrs.end()) {
        goWrong("unresolved data relocation '" +
                    Prog.Names->spelling(R.Target) + "'",
                SourceLoc());
        return;
      }
      V = It->second;
    }
    Mem.storeBits(R.Addr, TargetInfo::pointerBytes(), V);
  }

  // Zero-initialize the global registers.
  for (const auto &[Name, Ty] : Prog.Globals)
    GlobalEnv.bind(Name, Ty.isFloat() ? Value::flt(Ty.Width, 0)
                                      : Value::bits(Ty.Width, 0));

  const IrProc *P = Prog.findProc(ProcName);
  if (!P) {
    goWrong("unknown start procedure '" + Prog.Names->spelling(ProcName) +
                "'",
            SourceLoc());
    return;
  }
  A = std::move(Args);
  enterProc(P, SourceLoc());
  if (Obs && St == MachineStatus::Running)
    Obs->onStart(*this, P);
}

void Machine::enterProc(const IrProc *P, SourceLoc Loc) {
  if (!P->EntryPoint) {
    goWrong("procedure '" + Prog.Names->spelling(P->Name) + "' has no body",
            Loc);
    return;
  }
  Control = P->EntryPoint;
  CurProc = P;
  Uid = NextUid++;
  Rho.clear();
  Sigma.clear();
}

void Machine::pushFrame(const CallNode *Site) {
  Frame F;
  F.CallSite = Site;
  F.Proc = CurProc;
  F.SavedEnv = std::move(Rho);
  F.SavedSigma = std::move(Sigma);
  F.Uid = Uid;
  Stack.push_back(std::move(F));
  Rho = Env();
  Sigma.clear();
  S.MaxStackDepth = std::max<uint64_t>(S.MaxStackDepth, Stack.size());
}

uint64_t Machine::newCont(Node *Target, uint64_t ContUid,
                          const IrProc *Proc) {
  ContTable.push_back({Target, ContUid, Proc});
  ++S.ContsBound;
  return ContTable.size() - 1;
}

const ContRecord *Machine::decodeCont(const Value &V) const {
  uint64_t Raw;
  if (V.isCont()) {
    Raw = V.Raw;
  } else if (V.isBits() && Value::rawIsCont(V.Raw)) {
    Raw = V.Raw;
  } else {
    return nullptr;
  }
  if ((Raw - ContBase) % ContStride != 0)
    return nullptr;
  uint64_t Handle = (Raw - ContBase) / ContStride;
  if (Handle >= ContTable.size())
    return nullptr;
  return &ContTable[Handle];
}

const ContRecord *Machine::requireCont(const Value &V, SourceLoc Loc) {
  const ContRecord *R = decodeCont(V);
  if (!R)
    goWrong("cut to a value that is not a continuation (" + V.str() + ")",
            Loc);
  return R;
}

void Machine::bindVar(Symbol V, const Value &Val) {
  if (CurProc && CurProc->VarTypes.count(V)) {
    Rho.bind(V, Val);
    return;
  }
  if (Prog.Globals.count(V)) {
    GlobalEnv.bind(V, Val);
    return;
  }
  Rho.bind(V, Val);
}

std::optional<Value> Machine::getGlobal(std::string_view Name) const {
  Symbol Sym = Prog.Names->lookup(Name);
  if (!Sym)
    return std::nullopt;
  const Value *V = GlobalEnv.lookup(Sym);
  if (!V)
    return std::nullopt;
  return *V;
}

void Machine::setGlobal(std::string_view Name, const Value &V) {
  Symbol Sym = Prog.Names->lookup(Name);
  assert(Sym && "unknown global");
  GlobalEnv.bind(Sym, V);
}

//===----------------------------------------------------------------------===//
// Expression evaluation: E[[e]] ρ M  (Section 5.1)
//===----------------------------------------------------------------------===//

std::optional<Value> Machine::evalName(const NameExpr *N) {
  switch (N->Ref) {
  case RefKind::Local:
  case RefKind::Continuation: {
    const Value *V = Rho.lookup(N->Name);
    if (!V) {
      goWrong("use of unbound variable '" + Prog.Names->spelling(N->Name) +
                  "' (never assigned, or killed along a cut edge)",
              N->loc());
      return std::nullopt;
    }
    return *V;
  }
  case RefKind::Global: {
    const Value *V = GlobalEnv.lookup(N->Name);
    if (!V) {
      goWrong("use of unknown global '" + Prog.Names->spelling(N->Name) +
                  "'",
              N->loc());
      return std::nullopt;
    }
    return *V;
  }
  case RefKind::Proc:
  case RefKind::DataLabel:
  case RefKind::Import: {
    std::optional<Value> V = evalConstExpr(N);
    if (!V) {
      // Imports may also name globals of another module.
      if (const Value *G = GlobalEnv.lookup(N->Name))
        return *G;
      goWrong("unresolved name '" + Prog.Names->spelling(N->Name) + "'",
              N->loc());
    }
    return V;
  }
  case RefKind::Unresolved:
    break;
  }
  goWrong("internal: unresolved name reached the evaluator", N->loc());
  return std::nullopt;
}

std::optional<Value> Machine::evalUnary(const UnaryExpr *U) {
  std::optional<Value> V = evalExpr(U->Operand.get());
  if (!V)
    return std::nullopt;
  switch (U->Op) {
  case UnOp::Neg:
    if (V->isFloat())
      return Value::flt(V->Width, -V->F);
    return Value::bits(V->Width, 0 - V->Raw);
  case UnOp::Com:
    return Value::bits(V->Width, ~V->Raw);
  case UnOp::Not:
    return Value::bits(32, V->Raw == 0 ? 1 : 0);
  }
  cmm_unreachable("unknown unary operator");
}

std::optional<Value> Machine::evalBinary(const BinaryExpr *B) {
  std::optional<Value> L = evalExpr(B->Lhs.get());
  if (!L)
    return std::nullopt;
  std::optional<Value> R = evalExpr(B->Rhs.get());
  if (!R)
    return std::nullopt;

  if (L->isFloat() || R->isFloat()) {
    // A Bits operand carries no meaningful .F, so mixing kinds would
    // silently compute with 0.0 — go wrong instead, like the other kind
    // confusions on this path.
    if (!(L->isFloat() && R->isFloat())) {
      goWrong("mixed floating-point and bit operands", B->loc());
      return std::nullopt;
    }
    double X = L->F, Y = R->F;
    switch (B->Op) {
    case BinOp::Add: return Value::flt(L->Width, X + Y);
    case BinOp::Sub: return Value::flt(L->Width, X - Y);
    case BinOp::Mul: return Value::flt(L->Width, X * Y);
    case BinOp::Div: return Value::flt(L->Width, X / Y);
    case BinOp::Eq: return Value::bits(32, X == Y);
    case BinOp::Ne: return Value::bits(32, X != Y);
    case BinOp::LtS: return Value::bits(32, X < Y);
    case BinOp::LeS: return Value::bits(32, X <= Y);
    case BinOp::GtS: return Value::bits(32, X > Y);
    case BinOp::GeS: return Value::bits(32, X >= Y);
    default:
      goWrong("bit operation on floating-point operands", B->loc());
      return std::nullopt;
    }
  }

  unsigned W = L->Width;
  uint64_t X = L->Raw, Y = R->Raw;
  int64_t SX = signExtend(X, W), SY = signExtend(Y, W);
  switch (B->Op) {
  case BinOp::Add: return Value::bits(W, X + Y);
  case BinOp::Sub: return Value::bits(W, X - Y);
  case BinOp::Mul: return Value::bits(W, X * Y);
  case BinOp::Div:
    // The fast-but-dangerous signed divide (Section 4.3): failure behaviour
    // is unspecified, which the abstract machine models as going wrong.
    if (SY == 0) {
      goWrong("unspecified: signed division by zero (use %%divs for the "
              "checked variant)",
              B->loc());
      return std::nullopt;
    }
    if (SX == signExtend(signedMin(W), W) && SY == -1) {
      goWrong("unspecified: signed division overflow", B->loc());
      return std::nullopt;
    }
    return Value::bits(W, static_cast<uint64_t>(SX / SY));
  case BinOp::Mod:
    if (SY == 0) {
      goWrong("unspecified: signed modulus by zero (use %%mods for the "
              "checked variant)",
              B->loc());
      return std::nullopt;
    }
    if (SX == signExtend(signedMin(W), W) && SY == -1)
      return Value::bits(W, 0);
    return Value::bits(W, static_cast<uint64_t>(SX % SY));
  case BinOp::And: return Value::bits(W, X & Y);
  case BinOp::Or: return Value::bits(W, X | Y);
  case BinOp::Xor: return Value::bits(W, X ^ Y);
  case BinOp::Shl:
    return Value::bits(W, Y >= W ? 0 : X << Y);
  case BinOp::Shr:
    return Value::bits(W, Y >= W ? 0 : X >> Y);
  case BinOp::Eq: return Value::bits(32, X == Y);
  case BinOp::Ne: return Value::bits(32, X != Y);
  case BinOp::LtS: return Value::bits(32, SX < SY);
  case BinOp::LeS: return Value::bits(32, SX <= SY);
  case BinOp::GtS: return Value::bits(32, SX > SY);
  case BinOp::GeS: return Value::bits(32, SX >= SY);
  }
  cmm_unreachable("unknown binary operator");
}

std::optional<Value> Machine::evalPrim(const PrimExpr *P) {
  std::optional<PrimKind> K = lookupPrim(Prog.Names->spelling(P->Name));
  if (!K) {
    goWrong("unknown primitive", P->loc());
    return std::nullopt;
  }
  std::vector<Value> Args;
  for (const ExprPtr &AE : P->Args) {
    std::optional<Value> V = evalExpr(AE.get());
    if (!V)
      return std::nullopt;
    Args.push_back(*V);
  }
  auto WrongZero = [&]() {
    goWrong(std::string("unspecified: ") + primName(*K) +
                " with zero divisor (use the %% variant)",
            P->loc());
    return std::optional<Value>();
  };
  // Operand-kind discipline, mirroring the binary-op path: the static
  // checker guarantees these shapes at direct call sites, but an indirect
  // call can launder a float (or a mis-sized word) into any parameter, so
  // reinterpreting .Raw / .F here would silently compute garbage.
  auto NeedBits = [&](unsigned Count, unsigned Width) {
    for (unsigned I = 0; I < Count; ++I) {
      if (!Args[I].isBits()) {
        goWrong(std::string(primName(*K)) +
                    " applied to a floating-point operand",
                P->loc());
        return false;
      }
      if (Width != 0 && Args[I].Width != Width) {
        goWrong(std::string(primName(*K)) + " applied to a bits" +
                    std::to_string(Args[I].Width) + " operand",
                P->loc());
        return false;
      }
    }
    return true;
  };
  auto NeedFloats = [&](unsigned Count) {
    for (unsigned I = 0; I < Count; ++I)
      if (!Args[I].isFloat()) {
        goWrong(std::string(primName(*K)) + " applied to a bit operand",
                P->loc());
        return false;
      }
    return true;
  };
  unsigned W = Args.empty() ? 32 : Args[0].Width;
  switch (*K) {
  case PrimKind::DivU:
    if (!NeedBits(2, W))
      return std::nullopt;
    if (Args[1].Raw == 0)
      return WrongZero();
    return Value::bits(W, Args[0].Raw / Args[1].Raw);
  case PrimKind::ModU:
    if (!NeedBits(2, W))
      return std::nullopt;
    if (Args[1].Raw == 0)
      return WrongZero();
    return Value::bits(W, Args[0].Raw % Args[1].Raw);
  case PrimKind::DivS: {
    if (!NeedBits(2, W))
      return std::nullopt;
    int64_t X = signExtend(Args[0].Raw, W), Y = signExtend(Args[1].Raw, W);
    if (Y == 0)
      return WrongZero();
    if (X == signExtend(signedMin(W), W) && Y == -1) {
      goWrong("unspecified: %divs overflow", P->loc());
      return std::nullopt;
    }
    return Value::bits(W, static_cast<uint64_t>(X / Y));
  }
  case PrimKind::ModS: {
    if (!NeedBits(2, W))
      return std::nullopt;
    int64_t X = signExtend(Args[0].Raw, W), Y = signExtend(Args[1].Raw, W);
    if (Y == 0)
      return WrongZero();
    if (X == signExtend(signedMin(W), W) && Y == -1)
      return Value::bits(W, 0);
    return Value::bits(W, static_cast<uint64_t>(X % Y));
  }
  case PrimKind::LtU:
    if (!NeedBits(2, W))
      return std::nullopt;
    return Value::bits(32, Args[0].Raw < Args[1].Raw);
  case PrimKind::LeU:
    if (!NeedBits(2, W))
      return std::nullopt;
    return Value::bits(32, Args[0].Raw <= Args[1].Raw);
  case PrimKind::GtU:
    if (!NeedBits(2, W))
      return std::nullopt;
    return Value::bits(32, Args[0].Raw > Args[1].Raw);
  case PrimKind::GeU:
    if (!NeedBits(2, W))
      return std::nullopt;
    return Value::bits(32, Args[0].Raw >= Args[1].Raw);
  case PrimKind::ShrA: {
    if (!NeedBits(2, W))
      return std::nullopt;
    int64_t X = signExtend(Args[0].Raw, W);
    uint64_t C = Args[1].Raw;
    if (C >= W)
      return Value::bits(W, X < 0 ? ~uint64_t(0) : 0);
    return Value::bits(W, static_cast<uint64_t>(X >> C));
  }
  case PrimKind::Zx64:
    if (!NeedBits(1, 32))
      return std::nullopt;
    return Value::bits(64, Args[0].Raw);
  case PrimKind::Sx64:
    if (!NeedBits(1, 32))
      return std::nullopt;
    return Value::bits(64, static_cast<uint64_t>(signExtend(Args[0].Raw, 32)));
  case PrimKind::Lo32:
    if (!NeedBits(1, 64))
      return std::nullopt;
    return Value::bits(32, Args[0].Raw);
  case PrimKind::Hi32:
    if (!NeedBits(1, 64))
      return std::nullopt;
    return Value::bits(32, Args[0].Raw >> 32);
  case PrimKind::FAdd:
    if (!NeedFloats(2))
      return std::nullopt;
    return Value::flt(Args[0].Width, Args[0].F + Args[1].F);
  case PrimKind::FSub:
    if (!NeedFloats(2))
      return std::nullopt;
    return Value::flt(Args[0].Width, Args[0].F - Args[1].F);
  case PrimKind::FMul:
    if (!NeedFloats(2))
      return std::nullopt;
    return Value::flt(Args[0].Width, Args[0].F * Args[1].F);
  case PrimKind::FDiv:
    if (!NeedFloats(2))
      return std::nullopt;
    return Value::flt(Args[0].Width, Args[0].F / Args[1].F);
  case PrimKind::FNeg:
    if (!NeedFloats(1))
      return std::nullopt;
    return Value::flt(Args[0].Width, -Args[0].F);
  case PrimKind::FEq:
    if (!NeedFloats(2))
      return std::nullopt;
    return Value::bits(32, Args[0].F == Args[1].F);
  case PrimKind::FNe:
    if (!NeedFloats(2))
      return std::nullopt;
    return Value::bits(32, Args[0].F != Args[1].F);
  case PrimKind::FLt:
    if (!NeedFloats(2))
      return std::nullopt;
    return Value::bits(32, Args[0].F < Args[1].F);
  case PrimKind::FLe:
    if (!NeedFloats(2))
      return std::nullopt;
    return Value::bits(32, Args[0].F <= Args[1].F);
  case PrimKind::I2F:
    if (!NeedBits(1, 32))
      return std::nullopt;
    return Value::flt(64, static_cast<double>(signExtend(Args[0].Raw, 32)));
  case PrimKind::F2I: {
    if (!NeedFloats(1))
      return std::nullopt;
    double D = Args[0].F;
    if (!(D >= -2147483648.0 && D < 2147483648.0)) {
      goWrong("unspecified: %f2i out of range", P->loc());
      return std::nullopt;
    }
    return Value::bits(32, static_cast<uint64_t>(static_cast<int64_t>(D)));
  }
  }
  cmm_unreachable("unknown primitive kind");
}

std::optional<Value> Machine::evalExpr(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    return Value::bits(E->Ty.Width, cast<IntLitExpr>(E)->Value);
  case Expr::Kind::FloatLit:
    return Value::flt(E->Ty.Width, cast<FloatLitExpr>(E)->Value);
  case Expr::Kind::StrLit: {
    std::optional<Value> V = evalConstExpr(E);
    if (!V)
      goWrong("string literal without a data address", E->loc());
    return V;
  }
  case Expr::Kind::Name:
    return evalName(cast<NameExpr>(E));
  case Expr::Kind::Load: {
    const auto *L = cast<LoadExpr>(E);
    std::optional<Value> Addr = evalExpr(L->Addr.get());
    if (!Addr)
      return std::nullopt;
    ++S.Loads;
    if (L->AccessTy.isFloat())
      return Value::flt(L->AccessTy.Width,
                        Mem.loadFloat(Addr->Raw, L->AccessTy.sizeInBytes()));
    return Value::bits(L->AccessTy.Width,
                       Mem.loadBits(Addr->Raw, L->AccessTy.sizeInBytes()));
  }
  case Expr::Kind::Unary:
    return evalUnary(cast<UnaryExpr>(E));
  case Expr::Kind::Binary:
    return evalBinary(cast<BinaryExpr>(E));
  case Expr::Kind::Prim:
    return evalPrim(cast<PrimExpr>(E));
  case Expr::Kind::Sizeof:
    return Value::bits(32, cast<SizeofExpr>(E)->SizeInBytes);
  }
  cmm_unreachable("unknown expression kind");
}

//===----------------------------------------------------------------------===//
// Transitions (Section 5.2)
//===----------------------------------------------------------------------===//

template <bool Observed> bool Machine::stepImpl() {
  if (St != MachineStatus::Running)
    return false;
  assert(Control && "running without control");
  ++S.Steps;
  // Yield suspensions are not transitions (the step is undone below), so
  // they do not fire onStep: profilers attributing steps per procedure stay
  // in agreement with Stats::Steps.
  if constexpr (Observed)
    if (Control->kind() != Node::Kind::Yield)
      Obs->onStep(*this, Control);

  switch (Control->kind()) {
  case Node::Kind::Entry: {
    // Entry binds the procedure's continuations into an empty environment;
    // the incoming environment is discarded.
    const auto *E = cast<EntryNode>(Control);
    Rho.clear();
    Sigma.clear();
    for (const auto &[Name, Target] : E->Conts) {
      uint64_t Handle = newCont(Target, Uid, CurProc);
      Rho.bind(Name, Value::cont(Handle));
    }
    Control = E->Next;
    return true;
  }

  case Node::Kind::Exit: {
    const auto *E = cast<ExitNode>(Control);
    if (Stack.empty()) {
      if (E->ContIndex == 0 && E->AltCount == 0) {
        St = MachineStatus::Halted; // terminated normally
        if constexpr (Observed)
          Obs->onHalt(*this);
      } else {
        goWrong("abnormal return with an empty stack", E->Loc);
      }
      return false;
    }
    Frame F = std::move(Stack.back());
    Stack.pop_back();
    const ContBundle &B = F.CallSite->Bundle;
    if (B.ReturnsTo.size() != size_t(E->AltCount) + 1) {
      goWrong("return <" + std::to_string(E->ContIndex) + "/" +
                  std::to_string(E->AltCount) + "> at a call site with " +
                  std::to_string(B.ReturnsTo.size() - 1) +
                  " alternate return continuations",
              E->Loc);
      return false;
    }
    if (E->ContIndex >= B.ReturnsTo.size()) {
      goWrong("return continuation index out of range", E->Loc);
      return false;
    }
    const IrProc *Callee = CurProc;
    Control = B.ReturnsTo[E->ContIndex];
    Rho = std::move(F.SavedEnv);
    Sigma = std::move(F.SavedSigma);
    Uid = F.Uid;
    CurProc = F.Proc;
    ++S.Returns;
    if constexpr (Observed)
      Obs->onReturn(*this, F.CallSite, Callee, CurProc, E->ContIndex);
    return true;
  }

  case Node::Kind::CopyIn: {
    const auto *C = cast<CopyInNode>(Control);
    if (A.size() < C->Vars.size()) {
      goWrong("too few values in the argument-passing area: need " +
                  std::to_string(C->Vars.size()) + ", have " +
                  std::to_string(A.size()),
              C->Loc);
      return false;
    }
    for (size_t I = 0; I < C->Vars.size(); ++I)
      bindVar(C->Vars[I], A[I]);
    A.clear(); // CopyIn replaces A by the empty list
    Control = C->Next;
    return true;
  }

  case Node::Kind::CopyOut: {
    const auto *C = cast<CopyOutNode>(Control);
    std::vector<Value> NewA;
    NewA.reserve(C->Exprs.size());
    for (const Expr *E : C->Exprs) {
      std::optional<Value> V = evalExpr(E);
      if (!V)
        return false;
      NewA.push_back(*V);
    }
    A = std::move(NewA);
    Control = C->Next;
    return true;
  }

  case Node::Kind::CalleeSaves: {
    const auto *C = cast<CalleeSavesNode>(Control);
    // Cost model: each variable entering or leaving the callee-saves set is
    // one register move (spill or reload).
    for (Symbol V : C->Saved)
      if (std::find(Sigma.begin(), Sigma.end(), V) == Sigma.end())
        ++S.CalleeSaveMoves;
    for (Symbol V : Sigma)
      if (std::find(C->Saved.begin(), C->Saved.end(), V) == C->Saved.end())
        ++S.CalleeSaveMoves;
    Sigma = C->Saved;
    Control = C->Next;
    return true;
  }

  case Node::Kind::Assign: {
    const auto *N = cast<AssignNode>(Control);
    std::optional<Value> V = evalExpr(N->Value);
    if (!V)
      return false;
    if (N->IsGlobal)
      GlobalEnv.bind(N->Var, *V);
    else
      Rho.bind(N->Var, *V);
    Control = N->Next;
    return true;
  }

  case Node::Kind::Store: {
    const auto *N = cast<StoreNode>(Control);
    std::optional<Value> Addr = evalExpr(N->Addr);
    if (!Addr)
      return false;
    std::optional<Value> V = evalExpr(N->Value);
    if (!V)
      return false;
    ++S.Stores;
    if (N->AccessTy.isFloat())
      Mem.storeFloat(Addr->Raw, N->AccessTy.sizeInBytes(), V->F);
    else
      Mem.storeBits(Addr->Raw, N->AccessTy.sizeInBytes(), V->Raw);
    Control = N->Next;
    return true;
  }

  case Node::Kind::Branch: {
    const auto *B = cast<BranchNode>(Control);
    std::optional<Value> C = evalExpr(B->Cond);
    if (!C)
      return false;
    Control = C->isTruthy() ? B->TrueDst : B->FalseDst;
    return true;
  }

  case Node::Kind::Call: {
    const auto *C = cast<CallNode>(Control);
    std::optional<Value> Callee = evalExpr(C->Callee);
    if (!Callee)
      return false;
    const IrProc *Target = nullptr;
    if ((Callee->isCode() || Callee->isBits()) &&
        Value::rawIsCode(Callee->Raw)) {
      uint64_t Idx = Callee->codeIndex();
      if ((Callee->Raw - CodeBase) % CodeStride == 0 &&
          Idx < CodeTable.size())
        Target = CodeTable[Idx];
    }
    if (!Target) {
      goWrong("call target is not code (" + Callee->str() + ")", C->Loc);
      return false;
    }
    const IrProc *Caller = CurProc;
    pushFrame(C);
    enterProc(Target, C->Loc);
    ++S.Calls;
    if constexpr (Observed)
      Obs->onCall(*this, C, Caller, Target);
    return true;
  }

  case Node::Kind::Jump: {
    const auto *J = cast<JumpNode>(Control);
    std::optional<Value> Callee = evalExpr(J->Callee);
    if (!Callee)
      return false;
    const IrProc *Target = nullptr;
    if ((Callee->isCode() || Callee->isBits()) &&
        Value::rawIsCode(Callee->Raw)) {
      uint64_t Idx = Callee->codeIndex();
      if ((Callee->Raw - CodeBase) % CodeStride == 0 &&
          Idx < CodeTable.size())
        Target = CodeTable[Idx];
    }
    if (!Target) {
      goWrong("jump target is not code (" + Callee->str() + ")", J->Loc);
      return false;
    }
    // Tail call: the caller's resources are deallocated before the call;
    // the continuation bundle on the stack is reused.
    const IrProc *Caller = CurProc;
    enterProc(Target, J->Loc);
    ++S.Jumps;
    if constexpr (Observed)
      Obs->onJump(*this, J, Caller, Target);
    return true;
  }

  case Node::Kind::CutTo: {
    const auto *C = cast<CutToNode>(Control);
    std::optional<Value> V = evalExpr(C->Cont);
    if (!V)
      return false;
    return doCutTo(*V, C);
  }

  case Node::Kind::Yield:
    // Execution passes to the run-time system. Undo the step count: the
    // suspension itself is not a transition.
    --S.Steps;
    ++S.Yields;
    St = MachineStatus::Suspended;
    if constexpr (Observed)
      Obs->onYield(*this);
    return false;
  }
  cmm_unreachable("unknown node kind");
}

// The inline step() in Machine.h dispatches to these from any TU.
template bool Machine::stepImpl<true>();
template bool Machine::stepImpl<false>();

bool Machine::doCutTo(const Value &ContVal, const CutToNode *FromNode) {
  SourceLoc Loc = FromNode ? FromNode->Loc : SourceLoc();
  const ContRecord *Rec = requireCont(ContVal, Loc);
  if (!Rec)
    return false;

  // Cut to a continuation of the current activation: permitted only when the
  // cut to statement itself carries an `also cuts to` naming it.
  if (FromNode && Rec->Uid == Uid) {
    bool Listed = std::find(FromNode->AlsoCutsTo.begin(),
                            FromNode->AlsoCutsTo.end(),
                            Rec->Target) != FromNode->AlsoCutsTo.end();
    if (!Listed) {
      goWrong("cut to a continuation of the current activation that is not "
              "named in this statement's also cuts to",
              Loc);
      return false;
    }
    Rho.erase(Sigma); // callee-saves values are not restored by a cut
    Sigma.clear();
    Control = Rec->Target;
    ++S.Cuts;
    if (Obs)
      Obs->onCut(*this, FromNode, Rec->Proc, 0, /*SameActivation=*/true);
    return true;
  }

  // Remove activations until the target's frame is on top. Each removed
  // frame's suspended call must be annotated `also aborts`.
  uint64_t Discarded = 0;
  while (!Stack.empty() && Stack.back().Uid != Rec->Uid) {
    if (!Stack.back().CallSite->Bundle.Abort) {
      goWrong("cut truncates the stack past a call site that lacks an "
              "also aborts annotation",
              Loc);
      return false;
    }
    if (Obs)
      Obs->onCutFrameDiscarded(*this, Stack.back().CallSite,
                               Stack.back().Proc);
    Stack.pop_back();
    ++S.FramesCutOver;
    ++Discarded;
  }
  if (Stack.empty()) {
    goWrong("cut to a dead continuation (its activation is no longer on "
            "the stack)",
            Loc);
    return false;
  }

  Frame F = std::move(Stack.back());
  Stack.pop_back();
  const ContBundle &B = F.CallSite->Bundle;
  if (std::find(B.CutsTo.begin(), B.CutsTo.end(), Rec->Target) ==
      B.CutsTo.end()) {
    goWrong("cut to a continuation that is not listed in the suspended "
            "call site's also cuts to",
            Loc);
    return false;
  }
  Control = Rec->Target;
  Rho = std::move(F.SavedEnv);
  Rho.erase(F.SavedSigma); // cuts do not restore callee-saves registers
  Sigma.clear();
  Uid = F.Uid;
  CurProc = F.Proc;
  ++S.Cuts;
  if (Obs)
    Obs->onCut(*this, FromNode, Rec->Proc, Discarded,
               /*SameActivation=*/false);
  return true;
}

MachineStatus Machine::run(uint64_t MaxSteps) {
  uint64_t Budget = MaxSteps;
  // Pick the step instantiation once, outside the hot loop: the unobserved
  // loop is branch-for-branch the loop this machine had before observers
  // existed.
  if (Obs) {
    while (St == MachineStatus::Running && Budget != 0) {
      stepImpl<true>();
      --Budget;
    }
  } else {
    while (St == MachineStatus::Running && Budget != 0) {
      stepImpl<false>();
      --Budget;
    }
  }
  return St;
}

//===----------------------------------------------------------------------===//
// Run-time-system substrate (the checked Yield transitions)
//===----------------------------------------------------------------------===//

bool Machine::rtUnwindTop(size_t Count) {
  if (St != MachineStatus::Suspended) {
    goWrong("run-time system acted on a machine that is not suspended",
            SourceLoc());
    return false;
  }
  for (size_t I = 0; I < Count; ++I) {
    if (Stack.empty()) {
      goWrong("run-time system unwound past the bottom of the stack",
              SourceLoc());
      return false;
    }
    if (!Stack.back().CallSite->Bundle.Abort) {
      goWrong("run-time system unwound past a call site that lacks an "
              "also aborts annotation",
              Stack.back().CallSite->Loc);
      return false;
    }
    if (Obs)
      Obs->onUnwindPop(*this, Stack.back().CallSite, Stack.back().Proc,
                       /*Resumed=*/false);
    Stack.pop_back();
    ++S.UnwindPops;
  }
  return true;
}

bool Machine::rtResume(const ResumeChoice &Choice,
                       std::vector<Value> Params) {
  if (St != MachineStatus::Suspended) {
    goWrong("run-time system resumed a machine that is not suspended",
            SourceLoc());
    return false;
  }
  std::optional<unsigned> Expected = resumeParamCount(Choice);
  if (!Expected) {
    goWrong("run-time system chose an invalid resumption continuation",
            SourceLoc());
    return false;
  }
  if (Params.size() != *Expected) {
    goWrong("run-time system passed " + std::to_string(Params.size()) +
                " continuation parameters where " +
                std::to_string(*Expected) + " are expected",
            SourceLoc());
    return false;
  }

  if (Choice.K == ResumeChoice::Kind::Cut) {
    St = MachineStatus::Running; // doCutTo acts from the running state
    if (!doCutTo(Choice.ContValue, nullptr))
      return false;
    A = std::move(Params);
    return true;
  }

  if (Stack.empty()) {
    goWrong("run-time system resumed with an empty stack", SourceLoc());
    return false;
  }
  Frame F = std::move(Stack.back());
  Stack.pop_back();
  const ContBundle &B = F.CallSite->Bundle;
  Node *Target = Choice.K == ResumeChoice::Kind::Return
                     ? B.ReturnsTo[Choice.Index]
                     : B.UnwindsTo[Choice.Index];
  // This transition restores callee-saves registers: the full saved
  // environment comes back.
  Control = Target;
  Rho = std::move(F.SavedEnv);
  Sigma = std::move(F.SavedSigma);
  Uid = F.Uid;
  CurProc = F.Proc;
  A = std::move(Params);
  if (Choice.K == ResumeChoice::Kind::Unwind) {
    ++S.UnwindPops;
    if (Obs)
      Obs->onUnwindPop(*this, F.CallSite, F.Proc, /*Resumed=*/true);
  }
  St = MachineStatus::Running;
  if (Obs)
    Obs->onResume(*this, Choice.K, Choice.Index);
  return true;
}
