//===- sem/Executor.h - Abstract C-- executor interface ---------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The backend-neutral interface to an Abstract C-- executor. Two executors
/// implement it:
///
///   - sem/Machine.h: the reference tree walker, a direct transcription of
///     the Section 5.2 operational semantics;
///   - vm/Vm.h: a bytecode VM that compiles the checked IR to a compact
///     register bytecode and runs it in a dispatch loop (docs/BYTECODE.md).
///
/// Both preserve the same observable semantics: the seven-component state,
/// every goes-wrong rule (identical reasons and source locations), the
/// Suspended status at Yield nodes, and the Table 1 run-time substrate
/// (rtUnwindTop / rtResume / resumeParamCount), so the run-time systems in
/// src/rts drive either backend unchanged. The differential harness
/// (costmodel/DiffHarness.h) cross-checks the two on every seed.
///
/// The hot loops stay non-virtual: each backend's run() is a concrete
/// member; only the (cold) run-time-system substrate and introspection go
/// through this interface.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SEM_EXECUTOR_H
#define CMM_SEM_EXECUTOR_H

#include "ir/Ir.h"
#include "sem/Memory.h"
#include "sem/Stats.h"
#include "sem/Value.h"

#include <optional>
#include <string>
#include <vector>

namespace cmm {

class MachineObserver; // sem/Observer.h

/// Lifecycle of an executor.
enum class MachineStatus : uint8_t {
  Idle,      ///< constructed, not started
  Running,   ///< transitions available
  Suspended, ///< at a Yield node: the run-time system has control
  Halted,    ///< normal termination: Exit <0/0> with an empty stack
  Wrong,     ///< no permitted transition ("the program has gone wrong")
};

/// Decoded continuation value: Cont(p, u) of Section 5.1. Shared by both
/// backends: the target is an IR node; the bytecode VM maps it to a program
/// counter only at the moment control is transferred.
struct ContRecord {
  Node *Target = nullptr;
  uint64_t Uid = 0;
  const IrProc *Proc = nullptr;
};

/// How the run-time system resumes a suspended executor (the Yield rules).
struct ResumeChoice {
  enum class Kind : uint8_t { Return, Unwind, Cut };
  Kind K = Kind::Return;
  /// For Return: index into the bundle's returns list (normal return is the
  /// last). For Unwind: index into the `also unwinds to` list.
  unsigned Index = 0;
  /// For Cut: the continuation value to cut to.
  Value ContValue;

  static ResumeChoice ret(unsigned Index) {
    return {Kind::Return, Index, Value()};
  }
  static ResumeChoice unwind(unsigned Index) {
    return {Kind::Unwind, Index, Value()};
  }
  static ResumeChoice cut(Value V) { return {Kind::Cut, 0, V}; }
};

/// The backend-neutral executor interface. One Executor is one C-- thread.
class Executor {
public:
  virtual ~Executor() = default;

  /// A short stable name for diagnostics and tools ("walk", "vm").
  virtual std::string_view backendName() const = 0;

  /// Initializes memory from the program image and enters \p ProcName with
  /// \p Args in the argument-passing area.
  virtual void start(std::string_view ProcName,
                     std::vector<Value> Args = {}) = 0;

  virtual MachineStatus status() const = 0;

  /// Performs one transition. Returns false when not Running (suspended
  /// executors must be resumed through rtResume).
  virtual bool step() = 0;

  /// Steps until the executor stops running or \p MaxSteps transitions have
  /// executed; returns the final status (Running on step-limit). A resumed
  /// run continues exactly where the budgeted run stopped.
  virtual MachineStatus run(uint64_t MaxSteps = ~uint64_t(0)) = 0;

  /// The argument-passing area A: procedure results after Halted, the
  /// arguments of the yield(...) call while Suspended.
  virtual const std::vector<Value> &argArea() const = 0;

  /// Why the executor went wrong (valid after status() == Wrong).
  virtual const std::string &wrongReason() const = 0;
  virtual SourceLoc wrongLoc() const = 0;

  virtual const Stats &stats() const = 0;
  virtual void resetStats() = 0;

  /// Attaches \p O (null detaches). The executor does not own the observer;
  /// it must outlive the run. With no observer attached every event site
  /// costs at most one branch, and behaviour is identical to an unobserved
  /// run.
  virtual void setObserver(MachineObserver *O) = 0;
  virtual MachineObserver *observer() const = 0;

  virtual Memory &memory() = 0;
  virtual const Memory &memory() const = 0;
  virtual const IrProgram &program() const = 0;

  /// Global register access (globals model machine registers shared by all
  /// activations; they are never callee-saves and unaffected by cuts).
  virtual std::optional<Value> getGlobal(std::string_view Name) const = 0;
  virtual void setGlobal(std::string_view Name, const Value &V) = 0;

  /// The Code value denoting \p P.
  virtual Value codeValue(const IrProc *P) const = 0;

  /// Decodes a value as a continuation; null when it is not one.
  virtual const ContRecord *decodeCont(const Value &V) const = 0;

  /// Evaluates a link-time-constant expression (descriptors). Returns
  /// nullopt for non-constant expressions. Both backends share the default
  /// implementation in Executor.cpp.
  virtual std::optional<Value> evalConstExpr(const Expr *E) const;

  //===--------------------------------------------------------------------===//
  // Substrate for the run-time system (Table 1 lives in src/rts)
  //===--------------------------------------------------------------------===//

  virtual size_t stackDepth() const = 0;
  /// Call site at which the \p I'th-from-top suspended activation waits
  /// (0 is the topmost). Precondition: I < stackDepth().
  virtual const CallNode *frameCallSite(size_t I) const = 0;
  /// Procedure owning the \p I'th-from-top suspended activation.
  virtual const IrProc *frameProc(size_t I) const = 0;
  virtual const IrProc *currentProc() const = 0;

  /// Yield unwind rule: pops \p Count frames; every popped frame's call site
  /// must be annotated `also aborts`, else the executor goes wrong. Only
  /// legal while Suspended.
  virtual bool rtUnwindTop(size_t Count) = 0;

  /// Yield resume rules: pops the top frame and transfers control to the
  /// chosen continuation of its bundle (or cuts the stack for Kind::Cut),
  /// passing \p Params through the argument area. Only legal while
  /// Suspended. Returns false (executor Wrong) on any rule violation.
  virtual bool rtResume(const ResumeChoice &Choice,
                        std::vector<Value> Params) = 0;

  /// Number of parameters the chosen continuation expects; nullopt when the
  /// choice is invalid. Used by FindContParam. Both backends share the
  /// default implementation in Executor.cpp.
  virtual std::optional<unsigned>
  resumeParamCount(const ResumeChoice &Choice) const;
};

} // namespace cmm

#endif // CMM_SEM_EXECUTOR_H
