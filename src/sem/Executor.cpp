//===- sem/Executor.cpp ---------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
// Backend-shared pieces of the executor interface: link-time-constant
// expression evaluation and the resume-parameter-count query. Both are pure
// functions of state every backend already exposes, so they live here once
// instead of twice.
//
//===----------------------------------------------------------------------===//

#include "sem/Executor.h"

#include "support/Casting.h"

using namespace cmm;

std::optional<Value> Executor::evalConstExpr(const Expr *E) const {
  const IrProgram &Prog = program();
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    return Value::bits(E->Ty.Width, cast<IntLitExpr>(E)->Value);
  case Expr::Kind::StrLit: {
    auto It = Prog.StrAddrs.find(cast<StrLitExpr>(E));
    if (It == Prog.StrAddrs.end())
      return std::nullopt;
    return Value::bits(TargetInfo::nativePointer().Width, It->second);
  }
  case Expr::Kind::Name: {
    const auto *N = cast<NameExpr>(E);
    if (N->Ref == RefKind::DataLabel) {
      auto It = Prog.DataAddrs.find(N->Name);
      if (It == Prog.DataAddrs.end())
        return std::nullopt;
      return Value::bits(TargetInfo::nativePointer().Width, It->second);
    }
    if (N->Ref == RefKind::Proc || N->Ref == RefKind::Import) {
      if (const IrProc *P = Prog.findProc(N->Name))
        return codeValue(P);
      auto It = Prog.DataAddrs.find(N->Name);
      if (It != Prog.DataAddrs.end())
        return Value::bits(TargetInfo::nativePointer().Width, It->second);
      return std::nullopt;
    }
    return std::nullopt;
  }
  default:
    return std::nullopt;
  }
}

std::optional<unsigned>
Executor::resumeParamCount(const ResumeChoice &Choice) const {
  const Node *Target = nullptr;
  switch (Choice.K) {
  case ResumeChoice::Kind::Return: {
    if (stackDepth() == 0)
      return std::nullopt;
    const ContBundle &B = frameCallSite(0)->Bundle;
    if (Choice.Index >= B.ReturnsTo.size())
      return std::nullopt;
    Target = B.ReturnsTo[Choice.Index];
    break;
  }
  case ResumeChoice::Kind::Unwind: {
    if (stackDepth() == 0)
      return std::nullopt;
    const ContBundle &B = frameCallSite(0)->Bundle;
    if (Choice.Index >= B.UnwindsTo.size())
      return std::nullopt;
    Target = B.UnwindsTo[Choice.Index];
    break;
  }
  case ResumeChoice::Kind::Cut: {
    const ContRecord *Rec = decodeCont(Choice.ContValue);
    if (!Rec)
      return std::nullopt;
    Target = Rec->Target;
    break;
  }
  }
  if (const auto *In = dyn_cast<CopyInNode>(Target))
    return static_cast<unsigned>(In->Vars.size());
  return 0;
}
