//===- sem/Env.h - Local environments ---------------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The local environment ρ of the abstract machine: a partial map from
/// names to values. Procedures have few variables, so a flat vector with
/// linear search beats hashing.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SEM_ENV_H
#define CMM_SEM_ENV_H

#include "sem/Value.h"
#include "support/Interner.h"

#include <vector>

namespace cmm {

/// A partial function from names to values (Section 5.1).
class Env {
public:
  /// ρ(v): null when v is unbound.
  const Value *lookup(Symbol V) const {
    for (const auto &[Name, Val] : Slots)
      if (Name == V)
        return &Val;
    return nullptr;
  }

  /// ρ[v ↦ e].
  void bind(Symbol V, const Value &Val) {
    for (auto &[Name, Existing] : Slots) {
      if (Name == V) {
        Existing = Val;
        return;
      }
    }
    Slots.emplace_back(V, Val);
  }

  /// ρ \ s: removes every variable in \p Vars. Models the loss of
  /// callee-saves registers along cut edges (Section 4.2).
  void erase(const std::vector<Symbol> &Vars) {
    for (Symbol V : Vars)
      for (size_t I = 0; I < Slots.size(); ++I)
        if (Slots[I].first == V) {
          Slots[I] = Slots.back();
          Slots.pop_back();
          break;
        }
  }

  void clear() { Slots.clear(); }
  size_t size() const { return Slots.size(); }
  auto begin() const { return Slots.begin(); }
  auto end() const { return Slots.end(); }

private:
  std::vector<std::pair<Symbol, Value>> Slots;
};

} // namespace cmm

#endif // CMM_SEM_ENV_H
