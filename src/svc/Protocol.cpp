//===- svc/Protocol.cpp ---------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "svc/Protocol.h"

#include <cstring>

using namespace cmm;
using namespace cmm::svc;

uint64_t cmm::svc::fnv64(const uint8_t *Data, size_t Size) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (size_t I = 0; I < Size; ++I) {
    H ^= Data[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

std::string_view cmm::svc::errCodeName(ErrCode C) {
  switch (C) {
  case ErrCode::BadFrame:
    return "bad-frame";
  case ErrCode::BadVersion:
    return "bad-version";
  case ErrCode::BadRequest:
    return "bad-request";
  case ErrCode::QuotaExceeded:
    return "quota-exceeded";
  case ErrCode::NoSuchSession:
    return "no-such-session";
  case ErrCode::SessionBusy:
    return "session-busy";
  case ErrCode::ShuttingDown:
    return "shutting-down";
  case ErrCode::Internal:
    break;
  }
  return "internal";
}

//===----------------------------------------------------------------------===//
// Frames
//===----------------------------------------------------------------------===//

void cmm::svc::encodeFrame(MsgType T, const ByteWriter &Payload,
                           std::vector<uint8_t> &Out) {
  ByteWriter H;
  H.bytes(FrameMagic, sizeof FrameMagic);
  H.u32(ProtocolVersion);
  H.u8(uint8_t(T));
  H.u64(Payload.size());
  const std::vector<uint8_t> &HB = H.buffer();
  Out.insert(Out.end(), HB.begin(), HB.end());
  const std::vector<uint8_t> &PB = Payload.buffer();
  Out.insert(Out.end(), PB.begin(), PB.end());
  ByteWriter Tail;
  Tail.u64(fnv64(PB.data(), PB.size()));
  const std::vector<uint8_t> &TB = Tail.buffer();
  Out.insert(Out.end(), TB.begin(), TB.end());
}

FrameError cmm::svc::decodeFrameHeader(const uint8_t Header[FrameHeaderSize],
                                       uint64_t MaxPayload, FrameHeader &Out) {
  if (std::memcmp(Header, FrameMagic, sizeof FrameMagic) != 0)
    return FrameError::BadMagic;
  ByteReader R(Header + 4, FrameHeaderSize - 4);
  uint32_t Version = R.u32();
  uint8_t Type = R.u8();
  uint64_t Len = R.u64();
  if (Version != ProtocolVersion)
    return FrameError::BadVersion;
  if (Len > MaxPayload || Len > AbsoluteMaxFramePayload)
    return FrameError::Oversized;
  bool Req = Type >= uint8_t(MsgType::ReqPing) &&
             Type <= uint8_t(MsgType::ReqShutdown);
  bool Resp = Type >= uint8_t(MsgType::RespPong) &&
              Type <= uint8_t(MsgType::RespError);
  if (!Req && !Resp)
    return FrameError::BadType;
  Out.Type = MsgType(Type);
  Out.PayloadLen = Len;
  return FrameError::None;
}

bool cmm::svc::verifyFrameChecksum(const uint8_t *Payload, size_t Len,
                                   uint64_t Sum) {
  return fnv64(Payload, Len) == Sum;
}

//===----------------------------------------------------------------------===//
// Values and statistics
//===----------------------------------------------------------------------===//

void cmm::svc::encodeValue(ByteWriter &W, const Value &V) {
  W.u8(uint8_t(V.K));
  W.u8(V.Width);
  W.u64(V.Raw);
  W.f64(V.F);
}

Value cmm::svc::decodeValue(ByteReader &R) {
  Value V;
  uint8_t K = R.u8();
  if (K > uint8_t(Value::Kind::Cont)) {
    R.fail();
    return V;
  }
  V.K = Value::Kind(K);
  V.Width = R.u8();
  V.Raw = R.u64();
  V.F = R.f64();
  return V;
}

void cmm::svc::encodeValues(ByteWriter &W, const std::vector<Value> &Vs) {
  W.u64(Vs.size());
  for (const Value &V : Vs)
    encodeValue(W, V);
}

std::vector<Value> cmm::svc::decodeValues(ByteReader &R) {
  size_t N = R.count(2 + 8 + 8);
  std::vector<Value> Vs;
  Vs.reserve(N);
  for (size_t I = 0; I < N && R.ok(); ++I)
    Vs.push_back(decodeValue(R));
  return Vs;
}

void cmm::svc::encodeStats(ByteWriter &W, const Stats &S) {
  W.u64(S.Steps);
  W.u64(S.Calls);
  W.u64(S.Jumps);
  W.u64(S.Returns);
  W.u64(S.Cuts);
  W.u64(S.FramesCutOver);
  W.u64(S.Yields);
  W.u64(S.UnwindPops);
  W.u64(S.ContsBound);
  W.u64(S.Loads);
  W.u64(S.Stores);
  W.u64(S.CalleeSaveMoves);
  W.u64(S.MaxStackDepth);
}

Stats cmm::svc::decodeStats(ByteReader &R) {
  Stats S;
  S.Steps = R.u64();
  S.Calls = R.u64();
  S.Jumps = R.u64();
  S.Returns = R.u64();
  S.Cuts = R.u64();
  S.FramesCutOver = R.u64();
  S.Yields = R.u64();
  S.UnwindPops = R.u64();
  S.ContsBound = R.u64();
  S.Loads = R.u64();
  S.Stores = R.u64();
  S.CalleeSaveMoves = R.u64();
  S.MaxStackDepth = R.u64();
  return S;
}

//===----------------------------------------------------------------------===//
// Payloads
//===----------------------------------------------------------------------===//

namespace {

void encodeSources(ByteWriter &W, const std::vector<std::string> &Sources) {
  W.u64(Sources.size());
  for (const std::string &S : Sources)
    W.str(S);
}

bool decodeSources(ByteReader &R, std::vector<std::string> &Sources) {
  size_t N = R.count(8);
  Sources.clear();
  Sources.reserve(N);
  for (size_t I = 0; I < N && R.ok(); ++I)
    Sources.push_back(R.str());
  return R.ok();
}

/// Decoders accept exactly the payload: trailing bytes are a violation
/// (they would mean the two sides disagree about the encoding).
bool finish(ByteReader &R) { return R.ok() && R.remaining() == 0; }

} // namespace

void cmm::svc::encodeCompileRequest(ByteWriter &W,
                                    const CompileRequestMsg &M) {
  W.u64(M.ReqId);
  W.str(M.Tenant);
  encodeSources(W, M.Sources);
  W.u8(M.Optimize);
}

bool cmm::svc::decodeCompileRequest(ByteReader &R, CompileRequestMsg &M) {
  M.ReqId = R.u64();
  M.Tenant = R.str();
  if (!decodeSources(R, M.Sources))
    return false;
  M.Optimize = R.u8() != 0;
  return finish(R);
}

void cmm::svc::encodeRunRequest(ByteWriter &W, const RunRequestMsg &M) {
  W.u64(M.ReqId);
  W.str(M.Tenant);
  encodeSources(W, M.Sources);
  W.u8(M.Optimize);
  W.u8(M.Backend);
  W.str(M.Entry);
  encodeValues(W, M.Args);
  W.u8(M.Dispatcher);
  W.u64(M.MaxSteps);
  W.f64(M.DeadlineMillis);
  W.u64(M.MaxMemoryBytes);
  W.u8(M.Park);
  W.u8(M.WantProfile);
}

bool cmm::svc::decodeRunRequest(ByteReader &R, RunRequestMsg &M) {
  M.ReqId = R.u64();
  M.Tenant = R.str();
  if (!decodeSources(R, M.Sources))
    return false;
  M.Optimize = R.u8() != 0;
  M.Backend = R.u8();
  M.Entry = R.str();
  M.Args = decodeValues(R);
  M.Dispatcher = R.u8();
  M.MaxSteps = R.u64();
  M.DeadlineMillis = R.f64();
  M.MaxMemoryBytes = R.u64();
  M.Park = R.u8() != 0;
  M.WantProfile = R.u8() != 0;
  return finish(R);
}

void cmm::svc::encodeResumeRequest(ByteWriter &W, const ResumeRequestMsg &M) {
  W.u64(M.ReqId);
  W.str(M.Tenant);
  W.u64(M.SessionId);
  W.u8(uint8_t(M.Op));
  W.u32(M.Index);
  encodeValue(W, M.ContValue);
  encodeValues(W, M.Params);
  W.u8(M.Dispatcher);
  W.u64(M.MaxSteps);
  W.f64(M.DeadlineMillis);
  W.u64(M.MaxMemoryBytes);
  W.u8(M.CloseAfter);
}

bool cmm::svc::decodeResumeRequest(ByteReader &R, ResumeRequestMsg &M) {
  M.ReqId = R.u64();
  M.Tenant = R.str();
  M.SessionId = R.u64();
  uint8_t Op = R.u8();
  if (Op > uint8_t(ResumeOp::Continue)) {
    R.fail();
    return false;
  }
  M.Op = ResumeOp(Op);
  M.Index = R.u32();
  M.ContValue = decodeValue(R);
  M.Params = decodeValues(R);
  M.Dispatcher = R.u8();
  M.MaxSteps = R.u64();
  M.DeadlineMillis = R.f64();
  M.MaxMemoryBytes = R.u64();
  M.CloseAfter = R.u8() != 0;
  return finish(R);
}

void cmm::svc::encodeResult(ByteWriter &W, const ResultMsg &M) {
  W.u64(M.ReqId);
  W.u64(M.JobId);
  W.u8(M.Status);
  W.str(M.CompileError);
  encodeValues(W, M.Results);
  W.str(M.WrongReason);
  W.u8(M.TimedOut);
  W.u8(M.MemExceeded);
  W.u8(M.CacheHit);
  W.u64(M.SessionId);
  W.u8(M.DispatchHandled);
  W.u64(M.ResumeCycles);
  encodeStats(W, M.MachineStats);
  W.f64(M.CompileMillis);
  W.f64(M.RunMillis);
  W.str(M.ProfileJson);
}

bool cmm::svc::decodeResult(ByteReader &R, ResultMsg &M) {
  M.ReqId = R.u64();
  M.JobId = R.u64();
  M.Status = R.u8();
  M.CompileError = R.str();
  M.Results = decodeValues(R);
  M.WrongReason = R.str();
  M.TimedOut = R.u8() != 0;
  M.MemExceeded = R.u8() != 0;
  M.CacheHit = R.u8() != 0;
  M.SessionId = R.u64();
  M.DispatchHandled = R.u8() != 0;
  M.ResumeCycles = R.u64();
  M.MachineStats = decodeStats(R);
  M.CompileMillis = R.f64();
  M.RunMillis = R.f64();
  M.ProfileJson = R.str();
  return finish(R);
}

void cmm::svc::encodeCompiled(ByteWriter &W, const CompiledMsg &M) {
  W.u64(M.ReqId);
  W.str(M.Key);
  W.u8(M.Ok);
  W.str(M.Error);
  W.u8(M.CacheHit);
}

bool cmm::svc::decodeCompiled(ByteReader &R, CompiledMsg &M) {
  M.ReqId = R.u64();
  M.Key = R.str();
  M.Ok = R.u8() != 0;
  M.Error = R.str();
  M.CacheHit = R.u8() != 0;
  return finish(R);
}

void cmm::svc::encodeError(ByteWriter &W, const ErrorMsg &M) {
  W.u64(M.ReqId);
  W.u8(uint8_t(M.Code));
  W.str(M.Message);
}

bool cmm::svc::decodeError(ByteReader &R, ErrorMsg &M) {
  M.ReqId = R.u64();
  uint8_t C = R.u8();
  if (C < uint8_t(ErrCode::BadFrame) || C > uint8_t(ErrCode::Internal)) {
    R.fail();
    return false;
  }
  M.Code = ErrCode(C);
  M.Message = R.str();
  return finish(R);
}
