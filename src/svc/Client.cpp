//===- svc/Client.cpp -----------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "svc/Client.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace cmm;
using namespace cmm::svc;

namespace {

bool sendAll(int Fd, const uint8_t *P, size_t N) {
  while (N) {
    ssize_t W = ::send(Fd, P, N, MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += W;
    N -= size_t(W);
  }
  return true;
}

ssize_t recvFull(int Fd, uint8_t *P, size_t N) {
  size_t Got = 0;
  while (Got < N) {
    ssize_t R = ::recv(Fd, P + Got, N - Got, 0);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (R == 0)
      break;
    Got += size_t(R);
  }
  return ssize_t(Got);
}

} // namespace

//===----------------------------------------------------------------------===//
// Connection
//===----------------------------------------------------------------------===//

std::unique_ptr<Client> Client::connectUnix(const std::string &Path,
                                            std::string *Err) {
  sockaddr_un Addr{};
  if (Path.size() >= sizeof Addr.sun_path) {
    if (Err)
      *Err = "unix socket path too long: " + Path;
    return nullptr;
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Err)
      *Err = std::string("socket: ") + std::strerror(errno);
    return nullptr;
  }
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size());
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) < 0) {
    if (Err)
      *Err = "connect " + Path + ": " + std::strerror(errno);
    ::close(Fd);
    return nullptr;
  }
  return std::unique_ptr<Client>(new Client(Fd));
}

std::unique_ptr<Client> Client::connectTcp(const std::string &Host,
                                           uint16_t Port, std::string *Err) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Err)
      *Err = std::string("socket: ") + std::strerror(errno);
    return nullptr;
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    if (Err)
      *Err = "bad address: " + Host;
    ::close(Fd);
    return nullptr;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) < 0) {
    if (Err)
      *Err = "connect " + Host + ": " + std::strerror(errno);
    ::close(Fd);
    return nullptr;
  }
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof One);
  return std::unique_ptr<Client>(new Client(Fd));
}

Client::~Client() {
  if (Fd >= 0)
    ::close(Fd);
}

void Client::fail(std::string Why) {
  if (Ok) {
    Ok = false;
    Err = std::move(Why);
  }
}

//===----------------------------------------------------------------------===//
// Sending
//===----------------------------------------------------------------------===//

uint64_t Client::sendFrame(MsgType T, const ByteWriter &Payload) {
  uint64_t Id = NextReq++; // caller already stamped Id into the payload
  std::vector<uint8_t> Frame;
  Frame.reserve(FrameHeaderSize + Payload.size() + FrameTrailerSize);
  encodeFrame(T, Payload, Frame);
  if (Ok && !sendAll(Fd, Frame.data(), Frame.size()))
    fail(std::string("send: ") + std::strerror(errno));
  return Id;
}

uint64_t Client::sendPing() {
  ByteWriter W;
  W.u64(NextReq);
  return sendFrame(MsgType::ReqPing, W);
}

uint64_t Client::sendStats() {
  ByteWriter W;
  W.u64(NextReq);
  return sendFrame(MsgType::ReqStats, W);
}

uint64_t Client::sendCompile(CompileRequestMsg M) {
  M.ReqId = NextReq;
  ByteWriter W;
  encodeCompileRequest(W, M);
  return sendFrame(MsgType::ReqCompile, W);
}

uint64_t Client::sendRun(RunRequestMsg M) {
  M.ReqId = NextReq;
  ByteWriter W;
  encodeRunRequest(W, M);
  return sendFrame(MsgType::ReqRun, W);
}

uint64_t Client::sendResume(ResumeRequestMsg M) {
  M.ReqId = NextReq;
  ByteWriter W;
  encodeResumeRequest(W, M);
  return sendFrame(MsgType::ReqResume, W);
}

uint64_t Client::sendClose(const std::string &Tenant, uint64_t SessionId) {
  ByteWriter W;
  W.u64(NextReq);
  W.str(Tenant);
  W.u64(SessionId);
  return sendFrame(MsgType::ReqClose, W);
}

uint64_t Client::sendShutdown() {
  ByteWriter W;
  W.u64(NextReq);
  return sendFrame(MsgType::ReqShutdown, W);
}

bool Client::sendRaw(const void *Data, size_t Size) {
  if (!Ok)
    return false;
  if (!sendAll(Fd, static_cast<const uint8_t *>(Data), Size)) {
    fail(std::string("send: ") + std::strerror(errno));
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Receiving
//===----------------------------------------------------------------------===//

bool Client::readReply(Reply &Out) {
  if (!Ok)
    return false;
  uint8_t Header[FrameHeaderSize];
  ssize_t Got = recvFull(Fd, Header, FrameHeaderSize);
  if (Got < 0)
    return fail(std::string("recv: ") + std::strerror(errno)), false;
  if (Got == 0)
    return fail("connection closed by server"), false;
  if (size_t(Got) < FrameHeaderSize)
    return fail("truncated frame header"), false;
  FrameHeader H;
  if (decodeFrameHeader(Header, AbsoluteMaxFramePayload, H) !=
      FrameError::None)
    return fail("malformed frame from server"), false;
  std::vector<uint8_t> Payload(size_t(H.PayloadLen));
  if (H.PayloadLen &&
      recvFull(Fd, Payload.data(), Payload.size()) < ssize_t(Payload.size()))
    return fail("truncated frame payload"), false;
  uint8_t Trailer[FrameTrailerSize];
  if (recvFull(Fd, Trailer, FrameTrailerSize) < ssize_t(FrameTrailerSize))
    return fail("truncated frame checksum"), false;
  ByteReader TR(Trailer, FrameTrailerSize);
  if (!verifyFrameChecksum(Payload.data(), Payload.size(), TR.u64()))
    return fail("frame checksum mismatch"), false;

  Out = Reply{};
  Out.Type = H.Type;
  ByteReader R(Payload.data(), Payload.size());
  switch (H.Type) {
  case MsgType::RespPong:
  case MsgType::RespShutdown:
    Out.ReqId = R.u64();
    return R.ok() && R.remaining() == 0 ? true
                                        : (fail("malformed response"), false);
  case MsgType::RespStats:
    Out.ReqId = R.u64();
    Out.StatsJson = R.str();
    return R.ok() && R.remaining() == 0 ? true
                                        : (fail("malformed response"), false);
  case MsgType::RespClosed:
    Out.ReqId = R.u64();
    Out.Closed = R.u8() != 0;
    return R.ok() && R.remaining() == 0 ? true
                                        : (fail("malformed response"), false);
  case MsgType::RespResult:
    if (!decodeResult(R, Out.Result))
      return fail("malformed result payload"), false;
    Out.ReqId = Out.Result.ReqId;
    return true;
  case MsgType::RespCompiled:
    if (!decodeCompiled(R, Out.Compiled))
      return fail("malformed compiled payload"), false;
    Out.ReqId = Out.Compiled.ReqId;
    return true;
  case MsgType::RespError:
    if (!decodeError(R, Out.Error))
      return fail("malformed error payload"), false;
    Out.ReqId = Out.Error.ReqId;
    return true;
  default:
    return fail("request frame from server"), false;
  }
}

std::optional<Reply> Client::wait(uint64_t ReqId) {
  auto It = Pending.find(ReqId);
  if (It != Pending.end()) {
    Reply R = std::move(It->second);
    Pending.erase(It);
    return R;
  }
  Reply R;
  while (readReply(R)) {
    if (R.ReqId == ReqId)
      return R;
    // A ReqId of 0 marks a connection-level error (the request id was
    // unrecoverable); surface it to whoever is waiting.
    if (R.Type == MsgType::RespError && R.ReqId == 0)
      return R;
    Pending.emplace(R.ReqId, std::move(R));
  }
  return std::nullopt;
}

std::optional<Reply> Client::waitAny() {
  if (!Pending.empty()) {
    auto It = Pending.begin();
    Reply R = std::move(It->second);
    Pending.erase(It);
    return R;
  }
  Reply R;
  if (!readReply(R))
    return std::nullopt;
  return R;
}

//===----------------------------------------------------------------------===//
// Synchronous wrappers
//===----------------------------------------------------------------------===//

std::optional<ResultMsg> Client::run(RunRequestMsg M, ErrorMsg *E) {
  std::optional<Reply> R = wait(sendRun(std::move(M)));
  if (!R)
    return std::nullopt;
  if (R->Type == MsgType::RespResult)
    return std::move(R->Result);
  if (R->Type == MsgType::RespError && E)
    *E = std::move(R->Error);
  return std::nullopt;
}

std::optional<ResultMsg> Client::resume(ResumeRequestMsg M, ErrorMsg *E) {
  std::optional<Reply> R = wait(sendResume(std::move(M)));
  if (!R)
    return std::nullopt;
  if (R->Type == MsgType::RespResult)
    return std::move(R->Result);
  if (R->Type == MsgType::RespError && E)
    *E = std::move(R->Error);
  return std::nullopt;
}

std::optional<CompiledMsg> Client::compile(CompileRequestMsg M, ErrorMsg *E) {
  std::optional<Reply> R = wait(sendCompile(std::move(M)));
  if (!R)
    return std::nullopt;
  if (R->Type == MsgType::RespCompiled)
    return std::move(R->Compiled);
  if (R->Type == MsgType::RespError && E)
    *E = std::move(R->Error);
  return std::nullopt;
}

std::optional<std::string> Client::statsJson() {
  std::optional<Reply> R = wait(sendStats());
  if (!R || R->Type != MsgType::RespStats)
    return std::nullopt;
  return std::move(R->StatsJson);
}

bool Client::ping() {
  std::optional<Reply> R = wait(sendPing());
  return R && R->Type == MsgType::RespPong;
}

bool Client::shutdownServer() {
  std::optional<Reply> R = wait(sendShutdown());
  return R && R->Type == MsgType::RespShutdown;
}

bool Client::closeSession(const std::string &Tenant, uint64_t SessionId) {
  std::optional<Reply> R = wait(sendClose(Tenant, SessionId));
  return R && R->Type == MsgType::RespClosed && R->Closed;
}
