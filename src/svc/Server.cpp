//===- svc/Server.cpp -----------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "svc/Server.h"

#include "engine/Session.h"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace cmm;
using namespace cmm::svc;
using SteadyClock = std::chrono::steady_clock;

//===----------------------------------------------------------------------===//
// Socket plumbing
//===----------------------------------------------------------------------===//

namespace {

bool sendAll(int Fd, const uint8_t *P, size_t N) {
  while (N) {
    ssize_t W = ::send(Fd, P, N, MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += W;
    N -= size_t(W);
  }
  return true;
}

/// Reads exactly \p N bytes unless the peer closes first; returns bytes
/// read (short on EOF) or -1 on a hard error.
ssize_t recvFull(int Fd, uint8_t *P, size_t N) {
  size_t Got = 0;
  while (Got < N) {
    ssize_t R = ::recv(Fd, P + Got, N - Got, 0);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (R == 0)
      break;
    Got += size_t(R);
  }
  return ssize_t(Got);
}

uint64_t steadyMicros() {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      SteadyClock::now().time_since_epoch())
                      .count());
}

void fillResult(ResultMsg &Out, const engine::JobResult &R) {
  Out.JobId = R.Id;
  Out.Status = uint8_t(R.Status);
  Out.CompileError = R.CompileError;
  Out.Results = R.Results;
  Out.WrongReason = R.WrongReason;
  Out.TimedOut = R.TimedOut;
  Out.MemExceeded = R.MemExceeded;
  Out.CacheHit = R.CacheHit;
  Out.ResumeCycles = R.ResumeCycles;
  Out.MachineStats = R.MachineStats;
  Out.CompileMillis = R.CompileMillis;
  Out.RunMillis = R.RunMillis;
  Out.ProfileJson = R.ProfileJson;
}

} // namespace

//===----------------------------------------------------------------------===//
// Internal structs
//===----------------------------------------------------------------------===//

struct Server::Conn {
  int Fd = -1;
  uint64_t Id = 0;
  /// Serializes response frames (any pool task may answer on this
  /// connection).
  std::mutex WriteMu;
  /// A write failed; no further frames are attempted.
  std::atomic<bool> Dead{false};
  /// Reader thread exited; the fd is closed when the entry is reaped.
  std::atomic<bool> Finished{false};
};

struct Server::Tenant {
  std::atomic<int64_t> InFlight{0};
  std::atomic<int64_t> Sessions{0};
};

struct Server::SessionEntry {
  std::unique_ptr<engine::JobSession> S;
  std::string TenantName;
  std::shared_ptr<Tenant> Owner;
  /// One wire request drives a session at a time; acquired by admission,
  /// released when the segment's response is sent (or kept by close).
  std::atomic<bool> Busy{false};
  std::atomic<uint64_t> LastUsedMicros{0};
};

struct Server::SvcMetrics {
  Counter &Connections, &Requests, &Ping, &Compile, &Run, &Resume, &Stats,
      &Close, &Shutdown, &BadFrames, &Errors, &QuotaRejects, &SessionsOpened,
      &SessionsClosed, &SessionsExpired, &BytesIn, &BytesOut;
  Gauge &ConnectionsOpen, &SessionsOpen, &InFlight;
  Histogram &RequestMicros;
  explicit SvcMetrics(MetricsRegistry &R)
      : Connections(R.counter("svc.connections")),
        Requests(R.counter("svc.requests")),
        Ping(R.counter("svc.requests_ping")),
        Compile(R.counter("svc.requests_compile")),
        Run(R.counter("svc.requests_run")),
        Resume(R.counter("svc.requests_resume")),
        Stats(R.counter("svc.requests_stats")),
        Close(R.counter("svc.requests_close")),
        Shutdown(R.counter("svc.requests_shutdown")),
        BadFrames(R.counter("svc.bad_frames")),
        Errors(R.counter("svc.errors")),
        QuotaRejects(R.counter("svc.quota_rejects")),
        SessionsOpened(R.counter("svc.sessions")),
        SessionsClosed(R.counter("svc.sessions_closed")),
        SessionsExpired(R.counter("svc.sessions_expired")),
        BytesIn(R.counter("svc.bytes_in")),
        BytesOut(R.counter("svc.bytes_out")),
        ConnectionsOpen(R.gauge("svc.connections_open")),
        SessionsOpen(R.gauge("svc.sessions_open")),
        InFlight(R.gauge("svc.inflight")),
        RequestMicros(R.histogram("svc.request_micros")) {}
};

//===----------------------------------------------------------------------===//
// Construction / lifecycle
//===----------------------------------------------------------------------===//

Server::Server(ServerOptions O) : Opts(std::move(O)) {
  engine::EngineOptions EO;
  EO.Threads = Opts.Threads;
  EO.CacheCapacity = Opts.CacheCapacity;
  EO.CacheDir = Opts.CacheDir;
  EO.SnapshotTo = Opts.SnapshotTo;
  EO.SnapshotIntervalMillis = Opts.SnapshotIntervalMillis;
  Eng = std::make_unique<engine::Engine>(EO);
  SM = std::make_unique<SvcMetrics>(Eng->metrics());
}

Server::~Server() {
  if (Started)
    requestStop();
  join();
}

bool Server::start(std::string *Err) {
  auto fail = [&](std::string Msg) {
    if (Err)
      *Err = std::move(Msg);
    if (ListenFd >= 0) {
      ::close(ListenFd);
      ListenFd = -1;
    }
    return false;
  };
  if (Started)
    return fail("server already started");
  if (Opts.UseTcp == !Opts.UnixPath.empty())
    return fail("exactly one of UnixPath / UseTcp must be set");

  if (Opts.UseTcp) {
    ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (ListenFd < 0)
      return fail(std::string("socket: ") + std::strerror(errno));
    int One = 1;
    ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof One);
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    Addr.sin_port = htons(Opts.TcpPort);
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) < 0)
      return fail(std::string("bind: ") + std::strerror(errno));
    socklen_t Len = sizeof Addr;
    if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len) < 0)
      return fail(std::string("getsockname: ") + std::strerror(errno));
    BoundPort = ntohs(Addr.sin_port);
  } else {
    sockaddr_un Addr{};
    if (Opts.UnixPath.size() >= sizeof Addr.sun_path)
      return fail("unix socket path too long: " + Opts.UnixPath);
    ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (ListenFd < 0)
      return fail(std::string("socket: ") + std::strerror(errno));
    ::unlink(Opts.UnixPath.c_str());
    Addr.sun_family = AF_UNIX;
    std::memcpy(Addr.sun_path, Opts.UnixPath.c_str(), Opts.UnixPath.size());
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) < 0)
      return fail(std::string("bind ") + Opts.UnixPath + ": " +
                  std::strerror(errno));
  }
  if (::listen(ListenFd, 128) < 0)
    return fail(std::string("listen: ") + std::strerror(errno));

  Started = true;
  Acceptor = std::thread([this] { acceptLoop(); });
  if (Opts.SessionTtlMillis > 0)
    Reaper = std::thread([this] { reaperLoop(); });
  return true;
}

void Server::requestStop() {
  std::lock_guard<std::mutex> L(StopMu);
  if (Closed.load())
    return;
  {
    // Raise Stopping under DrainMu so it cannot interleave with an
    // admission in beginRequest: every request is either counted into the
    // drain set before this point or refused ShuttingDown after it.
    std::lock_guard<std::mutex> D(DrainMu);
    Stopping.store(true);
  }
  waitDrained();
  stopSockets();
}

void Server::waitDrained() {
  std::unique_lock<std::mutex> L(DrainMu);
  DrainCv.wait(L, [&] { return InFlight.load() == 0; });
}

void Server::stopSockets() {
  Closed.store(true);
  if (ListenFd >= 0)
    ::shutdown(ListenFd, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> L(ConnMu);
    for (auto &[C, T] : Conns)
      if (!C->Finished.load())
        ::shutdown(C->Fd, SHUT_RDWR);
  }
  {
    std::lock_guard<std::mutex> L(ReaperMu);
    ReaperCv.notify_all();
  }
}

void Server::join() {
  if (Acceptor.joinable())
    Acceptor.join();
  if (Reaper.joinable())
    Reaper.join();
  {
    std::lock_guard<std::mutex> L(ConnMu);
    for (auto &[C, T] : Conns) {
      if (T.joinable())
        T.join();
      ::close(C->Fd);
    }
    Conns.clear();
  }
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  if (!Opts.UseTcp && Started)
    ::unlink(Opts.UnixPath.c_str());
  // Drained sessions are abandoned: destroying the entries counts each
  // job's final outcome in the engine (Session.h's accounting contract).
  std::map<uint64_t, std::shared_ptr<SessionEntry>> Left;
  {
    std::lock_guard<std::mutex> L(SessMu);
    Left.swap(Sessions);
  }
  for (auto &[Id, E] : Left) {
    (void)Id;
    E->Owner->Sessions.fetch_sub(1);
    SM->SessionsOpen.sub(1);
    SM->SessionsClosed.add(1);
  }
}

int64_t Server::connectionsOpen() const {
  return int64_t(SM->ConnectionsOpen.value());
}

int64_t Server::sessionsOpen() const {
  std::lock_guard<std::mutex> L(SessMu);
  return int64_t(Sessions.size());
}

//===----------------------------------------------------------------------===//
// Accept / read loops
//===----------------------------------------------------------------------===//

void Server::acceptLoop() {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break; // listen socket shut down
    }
    if (Closed.load()) {
      ::close(Fd);
      break;
    }
    if (Opts.UseTcp) {
      int One = 1;
      ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof One);
    }
    auto C = std::make_shared<Conn>();
    C->Fd = Fd;
    SM->Connections.add(1);
    SM->ConnectionsOpen.add(1);
    std::lock_guard<std::mutex> L(ConnMu);
    C->Id = NextConnId++;
    // Reap connections whose reader already exited so a long-lived server
    // doesn't accumulate dead threads.
    for (auto It = Conns.begin(); It != Conns.end();) {
      if (It->first->Finished.load()) {
        It->second.join();
        ::close(It->first->Fd);
        It = Conns.erase(It);
      } else {
        ++It;
      }
    }
    Conns.emplace_back(C, std::thread([this, C] { connLoop(C); }));
  }
}

void Server::connLoop(std::shared_ptr<Conn> C) {
  std::vector<uint8_t> Payload;
  for (;;) {
    uint8_t Header[FrameHeaderSize];
    ssize_t Got = recvFull(C->Fd, Header, FrameHeaderSize);
    if (Got <= 0)
      break; // clean close (or reset) at a frame boundary
    SM->BytesIn.add(uint64_t(Got));
    if (size_t(Got) < FrameHeaderSize) {
      SM->BadFrames.add(1);
      sendError(C, 0, ErrCode::BadFrame, "truncated frame header");
      break;
    }
    FrameHeader H;
    FrameError FE = decodeFrameHeader(Header, Opts.MaxFramePayload, H);
    if (FE != FrameError::None) {
      SM->BadFrames.add(1);
      switch (FE) {
      case FrameError::BadMagic:
        sendError(C, 0, ErrCode::BadFrame, "bad frame magic");
        break;
      case FrameError::BadVersion:
        sendError(C, 0, ErrCode::BadVersion, "unsupported protocol version");
        break;
      case FrameError::Oversized:
        sendError(C, 0, ErrCode::BadFrame, "oversized frame payload");
        break;
      default:
        sendError(C, 0, ErrCode::BadFrame, "unknown frame type");
        break;
      }
      break;
    }
    if (uint8_t(H.Type) >= uint8_t(MsgType::RespPong)) {
      SM->BadFrames.add(1);
      sendError(C, 0, ErrCode::BadRequest, "response frame sent to server");
      break;
    }
    Payload.assign(size_t(H.PayloadLen), 0); // bounded by MaxFramePayload
    if (H.PayloadLen) {
      Got = recvFull(C->Fd, Payload.data(), Payload.size());
      if (Got < 0 || size_t(Got) < Payload.size()) {
        // Truncated payload means the peer is gone mid-frame; count it but
        // there is nobody left to answer.
        SM->BadFrames.add(1);
        break;
      }
      SM->BytesIn.add(uint64_t(Got));
    }
    uint8_t Trailer[FrameTrailerSize];
    Got = recvFull(C->Fd, Trailer, FrameTrailerSize);
    if (Got < ssize_t(FrameTrailerSize)) {
      SM->BadFrames.add(1);
      break;
    }
    SM->BytesIn.add(uint64_t(Got));
    ByteReader TR(Trailer, FrameTrailerSize);
    if (!verifyFrameChecksum(Payload.data(), Payload.size(), TR.u64())) {
      SM->BadFrames.add(1);
      sendError(C, 0, ErrCode::BadFrame, "frame checksum mismatch");
      break;
    }
    if (!handleFrame(C, H.Type, Payload))
      break;
  }
  C->Dead.store(true);
  // Terminate the stream now so the peer sees EOF immediately; the fd
  // itself is closed only when the entry is reaped/joined (close here would
  // race fd reuse against stopSockets).
  ::shutdown(C->Fd, SHUT_RDWR);
  SM->ConnectionsOpen.sub(1);
  C->Finished.store(true);
}

//===----------------------------------------------------------------------===//
// Responses
//===----------------------------------------------------------------------===//

bool Server::sendFrame(const std::shared_ptr<Conn> &C, MsgType T,
                       const ByteWriter &Payload) {
  std::vector<uint8_t> Frame;
  Frame.reserve(FrameHeaderSize + Payload.size() + FrameTrailerSize);
  encodeFrame(T, Payload, Frame);
  std::lock_guard<std::mutex> L(C->WriteMu);
  if (C->Dead.load())
    return false;
  if (!sendAll(C->Fd, Frame.data(), Frame.size())) {
    C->Dead.store(true);
    return false;
  }
  SM->BytesOut.add(Frame.size());
  return true;
}

bool Server::sendError(const std::shared_ptr<Conn> &C, uint64_t ReqId,
                       ErrCode Code, std::string Message) {
  SM->Errors.add(1);
  ErrorMsg E;
  E.ReqId = ReqId;
  E.Code = Code;
  E.Message = std::move(Message);
  ByteWriter W;
  encodeError(W, E);
  return sendFrame(C, MsgType::RespError, W);
}

//===----------------------------------------------------------------------===//
// Admission
//===----------------------------------------------------------------------===//

std::shared_ptr<Server::Tenant> Server::tenant(const std::string &Name) {
  std::lock_guard<std::mutex> L(TenantMu);
  std::shared_ptr<Tenant> &T = Tenants[Name];
  if (!T)
    T = std::make_shared<Tenant>();
  return T;
}

engine::RunBudget Server::clampBudget(uint64_t MaxSteps, double DeadlineMillis,
                                      uint64_t MaxMemoryBytes) const {
  const TenantQuota &Q = Opts.Quota;
  engine::RunBudget B;
  bool NoFuel = MaxSteps == 0 || MaxSteps == ~uint64_t(0);
  B.MaxSteps = Q.MaxFuel == 0
                   ? (NoFuel ? ~uint64_t(0) : MaxSteps)
                   : (NoFuel ? Q.MaxFuel : std::min(MaxSteps, Q.MaxFuel));
  B.DeadlineMillis =
      Q.MaxDeadlineMillis <= 0
          ? (DeadlineMillis <= 0 ? 0 : DeadlineMillis)
          : (DeadlineMillis <= 0 ? Q.MaxDeadlineMillis
                                 : std::min(DeadlineMillis,
                                            Q.MaxDeadlineMillis));
  B.MaxMemoryBytes =
      Q.MaxMemoryBytes == 0
          ? MaxMemoryBytes
          : (MaxMemoryBytes == 0 ? Q.MaxMemoryBytes
                                 : std::min(MaxMemoryBytes,
                                            Q.MaxMemoryBytes));
  return B;
}

bool Server::beginRequest() {
  std::lock_guard<std::mutex> L(DrainMu);
  if (Stopping.load())
    return false;
  InFlight.fetch_add(1);
  SM->InFlight.add(1);
  return true;
}

void Server::endRequest(const std::shared_ptr<Tenant> &T,
                        SteadyClock::time_point T0) {
  if (T)
    T->InFlight.fetch_sub(1);
  SM->InFlight.sub(1);
  SM->RequestMicros.record(
      uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                   SteadyClock::now() - T0)
                   .count()));
  std::lock_guard<std::mutex> L(DrainMu);
  if (InFlight.fetch_sub(1) == 1)
    DrainCv.notify_all();
}

//===----------------------------------------------------------------------===//
// Request dispatch
//===----------------------------------------------------------------------===//

bool Server::handleFrame(const std::shared_ptr<Conn> &C, MsgType T,
                         const std::vector<uint8_t> &Payload) {
  SM->Requests.add(1);
  ByteReader R(Payload.data(), Payload.size());
  switch (T) {
  case MsgType::ReqPing: {
    SM->Ping.add(1);
    uint64_t Id = R.u64();
    if (!R.ok() || R.remaining())
      return sendError(C, 0, ErrCode::BadFrame, "malformed ping"), false;
    ByteWriter W;
    W.u64(Id);
    sendFrame(C, MsgType::RespPong, W);
    return true;
  }
  case MsgType::ReqStats: {
    SM->Stats.add(1);
    uint64_t Id = R.u64();
    if (!R.ok() || R.remaining())
      return sendError(C, 0, ErrCode::BadFrame, "malformed stats request"),
             false;
    ByteWriter W;
    W.u64(Id);
    W.str(Eng->metricsJson());
    sendFrame(C, MsgType::RespStats, W);
    return true;
  }
  case MsgType::ReqCompile: {
    SM->Compile.add(1);
    CompileRequestMsg M;
    if (!decodeCompileRequest(R, M))
      return sendError(C, 0, ErrCode::BadFrame, "malformed compile request"),
             false;
    if (Stopping.load()) {
      sendError(C, M.ReqId, ErrCode::ShuttingDown, "server is draining");
      return true;
    }
    auto Ten = tenant(M.Tenant);
    if (!beginRequest()) {
      sendError(C, M.ReqId, ErrCode::ShuttingDown, "server is draining");
      return true;
    }
    Ten->InFlight.fetch_add(1);
    Eng->pool().submit([this, C, M = std::move(M), Ten]() mutable {
      handleCompile(C, std::move(M), Ten);
    });
    return true;
  }
  case MsgType::ReqRun: {
    SM->Run.add(1);
    RunRequestMsg M;
    if (!decodeRunRequest(R, M))
      return sendError(C, 0, ErrCode::BadFrame, "malformed run request"),
             false;
    if (M.Backend > uint8_t(engine::Backend::Threaded) ||
        M.Dispatcher > uint8_t(engine::DispatcherKind::Cut)) {
      sendError(C, M.ReqId, ErrCode::BadRequest,
                "unknown backend or dispatcher");
      return true;
    }
    if (Stopping.load()) {
      sendError(C, M.ReqId, ErrCode::ShuttingDown, "server is draining");
      return true;
    }
    auto Ten = tenant(M.Tenant);
    if (uint64_t(Ten->InFlight.load()) >= Opts.Quota.MaxInFlight) {
      SM->QuotaRejects.add(1);
      sendError(C, M.ReqId, ErrCode::QuotaExceeded,
                "tenant in-flight request quota exceeded");
      return true;
    }
    if (M.Park) {
      // Reserve the session slot at admission so parallel parks cannot
      // overshoot; released if the job never actually parks.
      if (uint64_t(Ten->Sessions.fetch_add(1)) >= Opts.Quota.MaxSessions) {
        Ten->Sessions.fetch_sub(1);
        SM->QuotaRejects.add(1);
        sendError(C, M.ReqId, ErrCode::QuotaExceeded,
                  "tenant session quota exceeded");
        return true;
      }
    }
    if (!beginRequest()) {
      if (M.Park)
        Ten->Sessions.fetch_sub(1);
      sendError(C, M.ReqId, ErrCode::ShuttingDown, "server is draining");
      return true;
    }
    Ten->InFlight.fetch_add(1);
    Eng->pool().submit([this, C, M = std::move(M), Ten]() mutable {
      handleRun(C, std::move(M), Ten);
    });
    return true;
  }
  case MsgType::ReqResume: {
    SM->Resume.add(1);
    ResumeRequestMsg M;
    if (!decodeResumeRequest(R, M))
      return sendError(C, 0, ErrCode::BadFrame, "malformed resume request"),
             false;
    if (Stopping.load()) {
      sendError(C, M.ReqId, ErrCode::ShuttingDown, "server is draining");
      return true;
    }
    std::shared_ptr<SessionEntry> E;
    {
      std::lock_guard<std::mutex> L(SessMu);
      auto It = Sessions.find(M.SessionId);
      if (It != Sessions.end() && It->second->TenantName == M.Tenant)
        E = It->second;
    }
    if (!E) {
      sendError(C, M.ReqId, ErrCode::NoSuchSession, "no such session");
      return true;
    }
    if (E->Busy.exchange(true)) {
      sendError(C, M.ReqId, ErrCode::SessionBusy,
                "session is already being driven");
      return true;
    }
    auto Ten = tenant(M.Tenant);
    if (uint64_t(Ten->InFlight.load()) >= Opts.Quota.MaxInFlight) {
      E->Busy.store(false);
      SM->QuotaRejects.add(1);
      sendError(C, M.ReqId, ErrCode::QuotaExceeded,
                "tenant in-flight request quota exceeded");
      return true;
    }
    if (!beginRequest()) {
      E->Busy.store(false);
      sendError(C, M.ReqId, ErrCode::ShuttingDown, "server is draining");
      return true;
    }
    Ten->InFlight.fetch_add(1);
    Eng->pool().submit([this, C, M = std::move(M), E, Ten]() mutable {
      handleResume(C, std::move(M), E, Ten);
    });
    return true;
  }
  case MsgType::ReqClose: {
    SM->Close.add(1);
    uint64_t Id = R.u64();
    std::string Tn = R.str();
    uint64_t Sid = R.u64();
    if (!R.ok() || R.remaining())
      return sendError(C, 0, ErrCode::BadFrame, "malformed close request"),
             false;
    std::shared_ptr<SessionEntry> E;
    {
      std::lock_guard<std::mutex> L(SessMu);
      auto It = Sessions.find(Sid);
      if (It != Sessions.end() && It->second->TenantName == Tn)
        E = It->second;
    }
    if (E) {
      if (E->Busy.exchange(true)) {
        sendError(C, Id, ErrCode::SessionBusy,
                  "session is already being driven");
        return true;
      }
      closeSession(Sid, E, SM->SessionsClosed);
    }
    ByteWriter W;
    W.u64(Id);
    W.u8(E ? 1 : 0);
    sendFrame(C, MsgType::RespClosed, W);
    return true;
  }
  case MsgType::ReqShutdown: {
    SM->Shutdown.add(1);
    uint64_t Id = R.u64();
    if (!R.ok() || R.remaining())
      return sendError(C, 0, ErrCode::BadFrame, "malformed shutdown request"),
             false;
    handleShutdown(C, Id);
    return false; // this connection is done either way
  }
  default:
    SM->BadFrames.add(1);
    sendError(C, 0, ErrCode::BadFrame, "unknown request type");
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Request bodies (engine pool)
//===----------------------------------------------------------------------===//

void Server::handleCompile(std::shared_ptr<Conn> C, CompileRequestMsg M,
                           std::shared_ptr<Tenant> T) {
  auto T0 = SteadyClock::now();
  engine::CompileRequest Req;
  Req.Sources = std::move(M.Sources);
  Req.Optimize = M.Optimize;
  engine::CacheStats Before = Eng->cacheStats();
  std::shared_ptr<const engine::ProgramArtifact> Art = Eng->compile(Req);
  engine::CacheStats After = Eng->cacheStats();
  CompiledMsg Out;
  Out.ReqId = M.ReqId;
  Out.Key = Art->key().str();
  Out.Ok = Art->ok();
  Out.Error = Art->error();
  Out.CacheHit = After.Hits > Before.Hits;
  ByteWriter W;
  encodeCompiled(W, Out);
  sendFrame(C, MsgType::RespCompiled, W);
  endRequest(T, T0);
}

void Server::handleRun(std::shared_ptr<Conn> C, RunRequestMsg M,
                       std::shared_ptr<Tenant> T) {
  auto T0 = SteadyClock::now();
  engine::Job J;
  J.Request.Sources = std::move(M.Sources);
  J.Request.Optimize = M.Optimize;
  J.B = engine::Backend(M.Backend);
  J.Entry = std::move(M.Entry);
  J.Args = std::move(M.Args);
  J.Dispatcher = engine::DispatcherKind(M.Dispatcher);
  engine::RunBudget B =
      clampBudget(M.MaxSteps, M.DeadlineMillis, M.MaxMemoryBytes);
  J.MaxSteps = B.MaxSteps;
  J.DeadlineMillis = B.DeadlineMillis;
  J.MaxMemoryBytes = B.MaxMemoryBytes;
  J.CollectProfile = M.WantProfile && !M.Park;

  ResultMsg Out;
  Out.ReqId = M.ReqId;
  if (!M.Park) {
    engine::JobResult R = Eng->runJob(J);
    fillResult(Out, R);
  } else {
    engine::JobResult R;
    std::unique_ptr<engine::JobSession> S = Eng->startSession(J, R);
    fillResult(Out, R);
    if (S) {
      uint64_t Sid = S->id();
      auto E = std::make_shared<SessionEntry>();
      E->S = std::move(S);
      E->TenantName = M.Tenant;
      E->Owner = T;
      E->LastUsedMicros.store(steadyMicros());
      {
        std::lock_guard<std::mutex> L(SessMu);
        Sessions.emplace(Sid, E);
      }
      SM->SessionsOpened.add(1);
      SM->SessionsOpen.add(1);
      Out.SessionId = Sid;
    } else {
      T->Sessions.fetch_sub(1); // terminal first segment: release the slot
    }
  }
  ByteWriter W;
  encodeResult(W, Out);
  sendFrame(C, MsgType::RespResult, W);
  endRequest(T, T0);
}

void Server::handleResume(std::shared_ptr<Conn> C, ResumeRequestMsg M,
                          std::shared_ptr<SessionEntry> E,
                          std::shared_ptr<Tenant> T) {
  auto T0 = SteadyClock::now();
  engine::RunBudget B =
      clampBudget(M.MaxSteps, M.DeadlineMillis, M.MaxMemoryBytes);
  engine::JobSession &S = *E->S;
  engine::JobResult R;
  ResultMsg Out;
  Out.ReqId = M.ReqId;
  switch (M.Op) {
  case ResumeOp::Return:
    R = S.resumeRaw(ResumeChoice::ret(M.Index), std::move(M.Params), B);
    break;
  case ResumeOp::Unwind:
    R = S.resumeRaw(ResumeChoice::unwind(M.Index), std::move(M.Params), B);
    break;
  case ResumeOp::Cut:
    R = S.resumeRaw(ResumeChoice::cut(M.ContValue), std::move(M.Params), B);
    break;
  case ResumeOp::UnwindTop:
    R = S.unwindTop(M.Index, B);
    break;
  case ResumeOp::Dispatch: {
    engine::DispatcherKind K =
        M.Dispatcher <= uint8_t(engine::DispatcherKind::Cut)
            ? engine::DispatcherKind(M.Dispatcher)
            : engine::DispatcherKind::None;
    R = S.dispatchOnce(K, B);
    Out.DispatchHandled = S.lastDispatchHandled();
    break;
  }
  case ResumeOp::Continue:
    R = S.continueRun(B);
    break;
  }
  fillResult(Out, R);
  if (S.done() || M.CloseAfter) {
    closeSession(M.SessionId, E, SM->SessionsClosed);
  } else {
    Out.SessionId = M.SessionId;
    E->LastUsedMicros.store(steadyMicros());
    E->Busy.store(false);
  }
  ByteWriter W;
  encodeResult(W, Out);
  sendFrame(C, MsgType::RespResult, W);
  endRequest(T, T0);
}

void Server::handleShutdown(const std::shared_ptr<Conn> &C, uint64_t ReqId) {
  std::lock_guard<std::mutex> L(StopMu);
  if (!Closed.load()) {
    {
      std::lock_guard<std::mutex> D(DrainMu);
      Stopping.store(true);
    }
    waitDrained();
  }
  ByteWriter W;
  W.u64(ReqId);
  sendFrame(C, MsgType::RespShutdown, W);
  if (!Closed.load())
    stopSockets();
}

//===----------------------------------------------------------------------===//
// Sessions
//===----------------------------------------------------------------------===//

void Server::closeSession(uint64_t Id, const std::shared_ptr<SessionEntry> &E,
                          Counter &Outcome) {
  // Idempotent: only the caller that actually removes the table entry
  // releases the tenant slot and counts the outcome, so a close racing a
  // drain (or any future second caller) cannot double-count.
  {
    std::lock_guard<std::mutex> L(SessMu);
    if (Sessions.erase(Id) == 0)
      return;
  }
  E->Owner->Sessions.fetch_sub(1);
  SM->SessionsOpen.sub(1);
  Outcome.add(1);
  // The JobSession itself dies with the last SessionEntry reference; its
  // destructor counts the engine-side outcome for abandoned jobs.
}

void Server::reaperLoop() {
  const uint64_t TtlMicros = uint64_t(Opts.SessionTtlMillis * 1000.0);
  const auto Interval = std::chrono::milliseconds(
      std::max<int64_t>(10, int64_t(Opts.SessionTtlMillis / 4)));
  for (;;) {
    {
      std::unique_lock<std::mutex> L(ReaperMu);
      ReaperCv.wait_for(L, Interval, [&] { return Closed.load(); });
    }
    // Stand down once the drain starts: parked sessions left at shutdown
    // are accounted as closed by join(), and expiring them concurrently
    // with teardown would race that sweep.
    if (Closed.load() || Stopping.load())
      return;
    uint64_t Now = steadyMicros();
    std::vector<std::pair<uint64_t, std::shared_ptr<SessionEntry>>> Victims;
    {
      std::lock_guard<std::mutex> L(SessMu);
      for (auto &[Id, E] : Sessions) {
        if (Now - E->LastUsedMicros.load() < TtlMicros)
          continue;
        if (E->Busy.exchange(true)) // in use; it will refresh on release
          continue;
        // Re-check after claiming: a resume may have refreshed the
        // timestamp and released Busy between our read and the claim —
        // expiring it then would discard a session the tenant just used.
        if (Now - E->LastUsedMicros.load() < TtlMicros) {
          E->Busy.store(false);
          continue;
        }
        Victims.emplace_back(Id, E);
      }
    }
    for (auto &[Id, E] : Victims)
      closeSession(Id, E, SM->SessionsExpired);
  }
}
